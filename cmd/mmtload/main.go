// Command mmtload is a load generator for mmtserved. It submits a
// deterministic stream of bounded simulation jobs — a configurable
// fraction of which duplicate earlier specs — and reports throughput,
// client-observed latency quantiles, and how the server sourced the
// outcomes (fresh simulations vs dedup joins vs the persistent cache).
//
// Usage:
//
//	mmtload                                    # 32 jobs against 127.0.0.1:8377
//	mmtload -n 100 -c 16 -dup 0.7              # heavier, 70% duplicates
//	mmtload -server http://host:9000 -seed 7
//	mmtload -app twolf -max-insts 50000
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunLoad(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtload:", err)
		os.Exit(1)
	}
}
