// Command mmtprofile reproduces the paper's motivation study (§3): the
// instruction-sharing breakdown of Figure 1 and the divergent-path-length
// histogram of Figure 2, computed by aligning two contexts' functional
// traces.
//
// With -from-run it instead renders a saved per-PC attribution profile
// (a -profile-out file, or a -out outcome with an embedded profile)
// without resimulating, and -diff prints the CPI-stack and per-site
// movement between two of them.
//
// Usage:
//
//	mmtprofile                 # all applications
//	mmtprofile -app ammp       # one application
//	mmtprofile -maxinsts 500000
//	mmtprofile -from-run twolf.prof.json -top 20
//	mmtprofile -from-run before.json -diff after.json
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunProfile(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtprofile:", err)
		os.Exit(1)
	}
}
