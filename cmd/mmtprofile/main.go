// Command mmtprofile reproduces the paper's motivation study (§3): the
// instruction-sharing breakdown of Figure 1 and the divergent-path-length
// histogram of Figure 2, computed by aligning two contexts' functional
// traces.
//
// Usage:
//
//	mmtprofile                 # all applications
//	mmtprofile -app ammp       # one application
//	mmtprofile -maxinsts 500000
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunProfile(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtprofile:", err)
		os.Exit(1)
	}
}
