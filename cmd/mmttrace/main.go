// Command mmttrace stitches one trace's spans from every process in an
// mmt fleet — the router, each mmtserved node it reports, and any extra
// -sources such as an mmtcached — into a single tree, and renders a text
// waterfall of per-hop latency: router placement, node admission and
// queueing, dedup joins, cache probes, and the simulated build/run phases.
//
// Every daemon keeps its finished spans in a bounded in-memory ring served
// at GET /v1/spans; mmttrace is just the fetch-and-stitch client.
//
// Usage:
//
//	mmttrace                                   # list recent traces fleet-wide
//	mmttrace -slowest 10                       # the 10 slowest instead
//	mmttrace -trace load-5-0                   # stitched waterfall for one trace
//	mmttrace -trace load-5-0 -chrome t.json    # plus a Perfetto-ready timeline
//	mmttrace -server http://host:8378 -sources http://host:8380
//
// A deduplicated submission's trace carries a joiner span linking to the
// creator's trace; mmttrace follows such links, so the waterfall shows the
// execution that actually produced the joined result.
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunTrace(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmttrace:", err)
		os.Exit(1)
	}
}
