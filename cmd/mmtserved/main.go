// Command mmtserved is the simulation-as-a-service daemon: a long-running
// HTTP server that accepts simulation jobs as JSON, runs them on the
// internal/runner pool, deduplicates identical submissions into one
// simulation, and streams progress and outcomes over SSE.
//
// The API (see internal/serve):
//
//	POST /v1/jobs             submit a job
//	GET  /v1/jobs/{id}        poll a job
//	GET  /v1/jobs/{id}/stream follow a job over Server-Sent Events
//	GET  /v1/healthz          liveness (503 while draining)
//	GET  /v1/stats            serving counters and latency quantiles
//
// Usage:
//
//	mmtserved                                  # listen on 127.0.0.1:8377
//	mmtserved -addr :9000 -j 4 -queue 128
//	mmtserved -cache-dir ~/.cache/mmt          # warm restarts
//	mmtserved -deadline 2m                     # default queued-deadline
//	mmtserved -metrics-addr localhost:6060     # live /metrics, expvar, pprof
//
// SIGINT/SIGTERM drains: admission stops (submissions get 503), in-flight
// jobs finish (bounded by -drain-timeout), then the process exits. A
// second signal aborts the drain.
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunServe(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtserved:", err)
		os.Exit(1)
	}
}
