// Command mmtrouter is the fleet coordinator: a router that speaks the
// same /v1 job API as mmtserved and consistent-hashes every submission's
// content-addressed cache key onto a ring of backends. Identical
// submissions land on the same node, so per-node single-flight dedup
// becomes fleet-wide dedup — the MMT fetch-once idea at cluster scale.
//
// Beyond routing, the coordinator runs node lifecycle: it probes every
// backend's /v1/healthz and /v1/stats, stops routing new keys to draining
// or down nodes (jobs in flight on a draining node stay reachable through
// the router until the drain finishes), and diverts new keys off
// hot-queued owners to idle nodes, pinning each key's placement so dedup
// holds even while stealing.
//
// The API (see internal/cluster):
//
//	POST /v1/jobs             submit a job (routed by task cache key)
//	GET  /v1/jobs/{id}        poll a job (proxied to its node)
//	GET  /v1/jobs/{id}/stream follow a job over SSE (proxied)
//	GET  /v1/healthz          router liveness + fleet membership counts
//	GET  /v1/stats            fleet-aggregated serving stats
//	GET  /v1/cluster          per-node breakdown, routing counters, dedup ratio
//
// Usage:
//
//	mmtrouter -backends http://10.0.0.1:8377,http://10.0.0.2:8377
//	mmtrouter -backends http://big:8377*4,http://small:8377 -addr :8378
//	mmtrouter -backends ... -probe-every 500ms -steal-threshold 16
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunRouter(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtrouter:", err)
		os.Exit(1)
	}
}
