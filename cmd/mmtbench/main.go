// Command mmtbench regenerates every table and figure of the paper's
// evaluation (§6), the extension studies, and the ablations, printing them
// in order. With -out it also writes the report to a file.
//
// Simulations run through the internal/runner scheduler: -j workers in
// parallel (default: all CPUs), deduplicated by content-addressed job keys
// and optionally cached on disk across runs with -cache-dir. The report on
// stdout is byte-identical for any -j; progress and the scheduler summary
// go to stderr. Ctrl-C cancels the batch.
//
// Usage:
//
//	mmtbench                     # everything (several minutes)
//	mmtbench -only fig5a         # one artifact
//	mmtbench -only mp,ablations  # extensions
//	mmtbench -out report.txt
//	mmtbench -j 4 -cache-dir ~/.cache/mmt   # parallel + warm restarts
//	mmtbench -timeout 5m -retries 1         # bound and retry stuck jobs
//	mmtbench -metrics-addr localhost:6060   # live /metrics, expvar, pprof
//	mmtbench -trace-out runner.trace.json   # per-worker job timeline
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunBench(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtbench:", err)
		os.Exit(1)
	}
}
