// Command mmtbench regenerates every table and figure of the paper's
// evaluation (§6), the extension studies, and the ablations, printing them
// in order. With -out it also writes the report to a file.
//
// Usage:
//
//	mmtbench                     # everything (several minutes)
//	mmtbench -only fig5a         # one artifact
//	mmtbench -only mp,ablations  # extensions
//	mmtbench -out report.txt
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunBench(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtbench:", err)
		os.Exit(1)
	}
}
