// Command mmtpipe traces the pipeline cycle by cycle: per-cycle fetch/
// rename/issue/commit bandwidth, fetch-group states, and the core's event
// stream (divergences, remerges, catchups, rollbacks — the same events
// mmtsim -trace-out records). It is the debugging companion to mmtsim.
//
// Usage:
//
//	mmtpipe -app equake -preset MMT-FXR -threads 2 -cycles 120
//	mmtpipe -app twolf -from 500 -cycles 60 -dump 20
//	mmtpipe -app equake -cycles 200 -stalls
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunPipe(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtpipe:", err)
		os.Exit(1)
	}
}
