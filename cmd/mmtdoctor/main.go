// Command mmtdoctor is the fleet diagnostician. One invocation sweeps
// every process in an mmt fleet — the router, each mmtserved node its
// /v1/cluster reports, and any extra -sources such as an mmtcached — and
// pulls each one's always-on diagnostics surface into a bundle directory:
//
//   - the flight-recorder ring (recent events, admissions, completions,
//     spans, log lines and captured panics),
//   - the span ring, with the slowest recent traces stitched fleet-wide,
//   - the in-process metrics time series,
//   - the continuous profiler's CPU/heap/goroutine captures, with recent
//     CPU windows merged into a top-frames report,
//   - the node's resolved configuration.
//
// It then prints a triage report: which metrics moved during the window,
// the slowest traces and where their time went, what was hot on-CPU, and
// any recorded panics.
//
// Usage:
//
//	mmtdoctor -server http://host:8378 -out bundle/      # sweep + bundle
//	mmtdoctor -server http://host:8378                   # triage only
//	mmtdoctor -watch -max-job-p99 2s -max-queue 64       # exit 1 on breach
//	mmtdoctor -from-dump /tmp/mmt-flight-*.json          # render a dump
//
// A node killed with SIGQUIT writes its flight ring to disk first;
// -from-dump renders that file, so the last seconds before the kill stay
// readable with no process left to query.
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunDoctor(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtdoctor:", err)
		os.Exit(1)
	}
}
