// Command mmtcheck is the static pre-flight linter for workload programs:
// it decodes an assembled program into a basic-block CFG, computes
// dominator and post-dominator trees, and reports structural defects —
// invalid branch targets, unreachable code, paths that fall off the end
// of the text segment, registers read before any write reaches them,
// stores that overwrite program text — together with the static
// redundancy report (straight-line shareable regions, loops, per-branch
// predicted reconvergence PCs).
//
// With -against-profile it cross-validates the static predictions
// against a dynamic attribution profile: every observed remerge must
// land at a post-dominator of its divergence site.
//
// Usage:
//
//	mmtcheck -app equake
//	mmtcheck -all -format json
//	mmtcheck -src kernel.s -fail-on error
//	mmtcheck -app twolf -against-profile twolf.prof.json
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunCheck(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtcheck:", err)
		os.Exit(1)
	}
}
