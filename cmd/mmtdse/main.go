// Command mmtdse explores the MMT configuration space: it sweeps the
// declared dimensions (FHB size, fetch width, LVIP size, queue depths,
// sync policy, cache geometry), evaluates every candidate on two
// objectives — aggregate IPC up, energy per job down — and writes a
// reproducible study artifact holding every evaluated point and the
// Pareto frontier. Sampling is deterministic from the seed, the static
// reconvergence filter discards hopeless points before they cost a
// simulation, and evaluation runs on the in-process worker pool or a
// live mmtserved/mmtrouter fleet — with byte-identical artifacts either
// way.
//
// Usage:
//
//	mmtdse                                     # the default space, artifact to stdout
//	mmtdse -space smoke -seed 7 -out study.json
//	mmtdse -space halving -budget 40 -j 8 -cache-dir ~/.cache/mmt
//	mmtdse -space spaces/wide.json -server http://host:8377
//	mmtdse -resume study.json -out study.json  # continue an interrupted study
//	mmtdse -render study.json                  # print the frontier table
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunDSE(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtdse:", err)
		os.Exit(1)
	}
}
