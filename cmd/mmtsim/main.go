// Command mmtsim runs one workload on one simulated core configuration and
// prints detailed statistics. With -trace-out or -events-out it also
// captures the core's event stream — divergences, remerges, catchup
// episodes, rollbacks, fetch-mode and stall edges, plus periodic occupancy
// samples — as a Perfetto-loadable Chrome trace or a JSONL log.
//
// Usage:
//
//	mmtsim -app ammp -preset MMT-FXR -threads 2
//	mmtsim -list
//	mmtsim -app equake -disasm
//	mmtsim -app equake -preset Base -threads 4 -fhb 64 -fetchwidth 16
//	mmtsim -app equake -trace-out equake.trace.json -sample-every 500
//	mmtsim -app ammp -events-out ammp.jsonl -metrics-addr localhost:6060
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunSim(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtsim:", err)
		os.Exit(1)
	}
}
