// Command mmtsim runs one workload on one simulated core configuration and
// prints detailed statistics.
//
// Usage:
//
//	mmtsim -app ammp -preset MMT-FXR -threads 2
//	mmtsim -list
//	mmtsim -app equake -disasm
//	mmtsim -app equake -preset Base -threads 4 -fhb 64 -fetchwidth 16
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunSim(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtsim:", err)
		os.Exit(1)
	}
}
