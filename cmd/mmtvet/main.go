// mmtvet is the determinism vettool: it walks the import closure of the
// simulation roots (internal/core, internal/sim and every mmt/* package
// they reach) and flags constructs that make simulation results differ
// between runs — map range iteration, time.Now, math/rand. Simulation
// outcomes are content-addressed and memoized, so any nondeterminism on
// those paths silently poisons caches and golden tests.
//
// Run it from the module root:
//
//	mmtvet
//	mmtvet -roots mmt/internal/prof
//	mmtvet -format json
//
// Order-insensitive map ranges (sorted immediately after, commutative
// accumulation) are suppressed with a "mmtvet:ok" comment on the range
// line; the tool exits non-zero on any unsuppressed finding.
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunVet(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtvet:", err)
		os.Exit(1)
	}
}
