// Command mmtcached is the content-addressed remote result cache for a
// simulation fleet. Every mmtserved node's persistent cache tiers into it
// (checked on local miss, written through on store), so any node — and a
// cold-restarted one in particular — serves previously simulated outcomes
// without re-simulating. Entries are the disk-cache format verbatim and
// are re-validated on PUT, so a misbehaving client cannot poison the
// store.
//
// The API (see internal/cluster):
//
//	GET  /v1/cache/{key}  fetch an entry (200 raw blob | 404)
//	PUT  /v1/cache/{key}  store an entry (204 | 400 on invalid blobs)
//	GET  /v1/healthz      liveness
//	GET  /v1/stats        hits/misses/stores, entry count, bytes, evictions
//
// Usage:
//
//	mmtcached -dir /var/cache/mmt
//	mmtcached -dir /var/cache/mmt -max-bytes 1073741824 -addr :8380
package main

import (
	"fmt"
	"os"

	"mmt/internal/cli"
)

func main() {
	if err := cli.RunCached(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmtcached:", err)
		os.Exit(1)
	}
}
