// Quickstart: assemble a small program, run it as two identical processes
// on a baseline SMT core and on an MMT core, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mmt/internal/asm"
	"mmt/internal/core"
	"mmt/internal/prog"
)

// A toy kernel: sum a table of values many times over. Both instances do
// identical work, so MMT can fetch and execute almost everything once.
const src = `
        .equ  N, 64
        .equ  ROUNDS, 200
        li    r20, ROUNDS
round:  li    r5, 0
        li    r6, table
        li    r7, 0
sum:    ld    r8, 0(r6)
        add   r7, r7, r8
        addi  r6, r6, 8
        addi  r5, r5, 1
        blt   r5, r21, sum
        add   r22, r22, r7
        addi  r20, r20, -1
        bnez  r20, round
        halt
        .data
table:  .space N*8
`

func main() {
	// 1. Assemble.
	program, err := asm.Assemble("quickstart", src)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, cfg core.Config) *core.Stats {
		// 2. Build a two-instance multi-execution system with a small
		// per-instance input written into its private memory image.
		sys, err := prog.NewSystem(program, prog.ModeME, 2, func(ctx int, mem *prog.Memory) {
			for i := uint64(0); i < 64; i++ {
				mem.Write64(prog.DataBase+i*8, i*i+7)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range sys.Contexts {
			c.State.Reg[21] = 64 // inner loop bound
		}

		// 3. Simulate.
		machine, err := core.New(cfg, sys)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := machine.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8d cycles  IPC %5.2f  merged-exec %4.0f%%\n",
			name, stats.Cycles, stats.IPC(), 100*fracExec(stats))
		return stats
	}

	base := core.DefaultConfig(2)
	base.SharedFetch, base.SharedExec, base.RegMerge = false, false, false
	sBase := run("Base", base)

	mmt := core.DefaultConfig(2) // all MMT mechanisms on
	sMMT := run("MMT", mmt)

	fmt.Printf("\nspeedup: %.2fx with %.0f%% fewer executed operations\n",
		float64(sBase.Cycles)/float64(sMMT.Cycles),
		100*(1-float64(sMMT.IssuedUops)/float64(sBase.IssuedUops)))
}

func fracExec(s *core.Stats) float64 {
	x, xr, f, n := s.IdenticalFractions()
	_ = f
	_ = n
	return x + xr
}
