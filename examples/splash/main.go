// Shared-memory scenario: a SPLASH-2-style multi-threaded kernel where all
// threads read one molecule array (execute-identical loads) and write
// private force slabs. The demo scales the thread count and shows how the
// MMT advantage grows with threads, as in the paper's Fig. 5(a) vs 5(c).
//
//	go run ./examples/splash
package main

import (
	"fmt"
	"log"

	"mmt/internal/sim"
	"mmt/internal/workloads"
)

func main() {
	app, ok := workloads.ByName("water-ns")
	if !ok {
		log.Fatal("water-ns workload missing")
	}
	fmt.Printf("workload: %s — %s\n\n", app.Name, app.About)
	fmt.Printf("%8s %12s %12s %9s %14s\n", "threads", "Base cycles", "MMT cycles", "speedup", "exec-identical")

	for threads := 1; threads <= 4; threads++ {
		base, err := sim.Run(app, sim.PresetBase, threads, nil)
		if err != nil {
			log.Fatal(err)
		}
		mmt, err := sim.Run(app, sim.PresetMMTFXR, threads, nil)
		if err != nil {
			log.Fatal(err)
		}
		x, xr, _, _ := mmt.Stats.IdenticalFractions()
		fmt.Printf("%8d %12d %12d %9.3f %13.0f%%\n",
			threads, base.Stats.Cycles, mmt.Stats.Cycles,
			sim.Speedup(base, mmt), 100*(x+xr))
	}

	// Energy: the savings compound with the threads (paper Fig. 6).
	fmt.Println("\nenergy per job (normalized to Base at the same thread count):")
	for _, threads := range []int{2, 4} {
		base, err := sim.Run(app, sim.PresetBase, threads, nil)
		if err != nil {
			log.Fatal(err)
		}
		mmt, err := sim.Run(app, sim.PresetMMTFXR, threads, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d threads: %.2f  (MMT overhead %.2f%% of total energy)\n",
			threads, mmt.EnergyPerJob/base.EnergyPerJob,
			100*mmt.Energy.Overhead/mmt.Energy.Total())
	}
}
