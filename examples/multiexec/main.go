// Multi-execution scenario: the same binary runs as several processes with
// slightly different inputs (the paper's SPEC2000-style workloads). The
// demo shows the Load-Value-Identical Predictor at work: loads from the
// same virtual address in different processes are predicted identical,
// verified by the LSQ, and rolled back when the inputs actually differ.
//
//	go run ./examples/multiexec
package main

import (
	"fmt"
	"log"

	"mmt/internal/core"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

func main() {
	app, ok := workloads.ByName("equake")
	if !ok {
		log.Fatal("equake workload missing")
	}
	fmt.Printf("workload: %s — %s\n\n", app.Name, app.About)

	for _, preset := range []sim.Preset{sim.PresetBase, sim.PresetMMTFXR, sim.PresetLimit} {
		r, err := sim.Run(app, preset, 2, nil)
		if err != nil {
			log.Fatal(err)
		}
		s := r.Stats
		fmt.Printf("%-8s %8d cycles  IPC %5.2f\n", preset, s.Cycles, s.IPC())
		if preset == sim.PresetBase {
			continue
		}
		m, d, cu := s.FetchModeFractions()
		fmt.Printf("         fetch modes: MERGE %.0f%% DETECT %.0f%% CATCHUP %.0f%%\n",
			100*m, 100*d, 100*cu)
		fmt.Printf("         %d divergences, %d remerges, %d LVIP rollbacks\n",
			s.Divergences, s.Remerges, s.LVIPRollbacks)
		x, xr, _, _ := s.IdenticalFractions()
		fmt.Printf("         executed once for both processes: %.0f%% (+%.0f%% via register merging)\n\n",
			100*x, 100*xr)
	}

	// Sensitivity: the remerge detector's history size (paper §6.4).
	fmt.Println("FHB size sweep (speedup over Base):")
	base, err := sim.Run(app, sim.PresetBase, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, size := range []int{8, 16, 32, 64, 128} {
		size := size
		r, err := sim.Run(app, sim.PresetMMTFXR, 2, func(c *core.Config) { c.FHBSize = size })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  FHB %3d: %.3f\n", size, sim.Speedup(base, r))
	}
}
