// Multi-program co-scheduling (paper §4.4): the OS gang-schedules two
// instances each of two different applications onto one 4-thread MMT core.
// The two programs are assembled at disjoint text segments, so merging
// happens within each gang only — the demo shows how much of each pair's
// two-thread benefit survives the mixed schedule.
//
//	go run ./examples/coschedule
package main

import (
	"fmt"
	"log"

	"mmt/internal/asm"
	"mmt/internal/core"
	"mmt/internal/prog"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

func main() {
	a, ok := workloads.ByName("ammp")
	if !ok {
		log.Fatal("missing app ammp")
	}
	b, ok := workloads.ByName("twolf")
	if !ok {
		log.Fatal("missing app twolf")
	}

	// Assemble the two programs at disjoint bases so four hardware
	// contexts can hold 2+2 instances.
	pa, err := asm.Assemble(a.Name, a.Source)
	if err != nil {
		log.Fatal(err)
	}
	pb, err := asm.AssembleAt(b.Name, b.Source, 0x80000, 0x300000)
	if err != nil {
		log.Fatal(err)
	}

	build := func() *prog.System {
		sys, err := prog.NewMultiSystem([]*prog.Program{pa, pa, pb, pb}, func(ctx int, mem *prog.Memory) {
			if ctx < 2 {
				a.Init(pa, ctx, mem, false)
			} else {
				b.Init(pb, ctx-2, mem, false)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	run := func(preset sim.Preset) *core.Stats {
		cfg, err := sim.Configure(preset, 4)
		if err != nil {
			log.Fatal(err)
		}
		machine, err := core.New(cfg, build())
		if err != nil {
			log.Fatal(err)
		}
		st, err := machine.Run()
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	fmt.Printf("co-schedule: 2x %s + 2x %s on a 4-thread core\n\n", a.Name, b.Name)
	base := run(sim.PresetBase)
	mmt := run(sim.PresetMMTFXR)
	fmt.Printf("%-8s %10d cycles  IPC %5.2f\n", "Base", base.Cycles, base.IPC())
	fmt.Printf("%-8s %10d cycles  IPC %5.2f\n", "MMT", mmt.Cycles, mmt.IPC())
	x, xr, f, _ := mmt.IdenticalFractions()
	fmt.Printf("\nspeedup %.2fx — %.0f%% of instructions executed once per gang pair (+%.0f%% fetched together)\n",
		float64(base.Cycles)/float64(mmt.Cycles), 100*(x+xr), 100*f)
	fmt.Println("\nper-thread committed instructions:")
	for t := 0; t < 4; t++ {
		app := a.Name
		if t >= 2 {
			app = b.Name
		}
		fmt.Printf("  thread %d (%s): %d\n", t, app, mmt.Committed[t])
	}
}
