// Design-space exploration: sweep the Fetch History Buffer size (the
// remerge detector CAM) across all applications and print the Fig. 7(a)
// and 7(c) views side by side — the tradeoff the paper discusses in §6.4:
// bigger FHBs capture more remerge points but lengthen catchup episodes.
//
//	go run ./examples/fhbsweep            # three representative apps
//	go run ./examples/fhbsweep -all       # all sixteen
package main

import (
	"flag"
	"fmt"
	"log"

	"mmt/internal/core"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

func main() {
	all := flag.Bool("all", false, "sweep every application")
	flag.Parse()

	apps := []string{"equake", "twolf", "water-sp"}
	if *all {
		apps = workloads.Names()
	}

	fmt.Printf("%-14s", "app")
	for _, s := range sim.FHBSizes {
		fmt.Printf("  %13d", s)
	}
	fmt.Println("\n" + "(each cell: speedup over Base, MERGE-mode residency)")

	for _, name := range apps {
		app, ok := workloads.ByName(name)
		if !ok {
			log.Fatalf("unknown app %s", name)
		}
		base, err := sim.Run(app, sim.PresetBase, 2, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s", name)
		for _, size := range sim.FHBSizes {
			size := size
			r, err := sim.Run(app, sim.PresetMMTFXR, 2, func(c *core.Config) { c.FHBSize = size })
			if err != nil {
				log.Fatal(err)
			}
			m, _, _ := r.Stats.FetchModeFractions()
			fmt.Printf("  %5.3f %5.1f%%", sim.Speedup(base, r), 100*m)
		}
		fmt.Println()
	}
}
