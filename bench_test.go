// Package mmt_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§6). Each benchmark runs the
// corresponding experiment and reports the headline quantity as a custom
// metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The per-experiment mapping is recorded
// in DESIGN.md §4; EXPERIMENTS.md holds a captured run compared against
// the paper's numbers.
package mmt_test

import (
	"testing"

	"mmt/internal/core"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// profileInsts caps per-context instructions for the trace-profiling
// figures.
const profileInsts = 1_000_000

func BenchmarkFig1_InstructionSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure1(sim.NewSerial(), workloads.All(), profileInsts)
		if err != nil {
			b.Fatal(err)
		}
		var exec, fetchable float64
		for _, r := range rows {
			exec += r.ExecIdent
			fetchable += r.ExecIdent + r.FetchIdent
		}
		b.ReportMetric(exec/float64(len(rows)), "exec-ident-mean")
		b.ReportMetric(fetchable/float64(len(rows)), "fetchable-mean")
	}
}

func BenchmarkFig2_DivergenceLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure2(sim.NewSerial(), workloads.All(), profileInsts)
		if err != nil {
			b.Fatal(err)
		}
		// The paper's claim: all programs except equake and vortex have
		// >= 85% of divergences within 16 taken branches.
		within16 := 0
		for _, r := range rows {
			if r.Divergences > 0 && r.Cumulative[0] >= 0.85 {
				within16++
			}
		}
		b.ReportMetric(float64(within16), "apps-within16")
	}
}

func BenchmarkTable3_HardwareCost(b *testing.B) {
	var bits int
	for i := 0; i < b.N; i++ {
		h := core.EstimateHWCost(core.DefaultConfig(4))
		bits = h.TotalBits()
	}
	b.ReportMetric(float64(bits), "total-bits")
}

func benchSpeedups(b *testing.B, threads int) {
	for i := 0; i < b.N; i++ {
		_, gm, err := sim.Figure5Speedups(sim.NewSerial(), workloads.All(), threads)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gm.F, "geomean-F")
		b.ReportMetric(gm.FX, "geomean-FX")
		b.ReportMetric(gm.FXR, "geomean-FXR")
		b.ReportMetric(gm.Limit, "geomean-Limit")
	}
}

func BenchmarkFig5a_Speedup2T(b *testing.B) { benchSpeedups(b, 2) }
func BenchmarkFig5c_Speedup4T(b *testing.B) { benchSpeedups(b, 4) }

func BenchmarkFig5b_IdenticalIdentified(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure5b(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		var exec, regm float64
		for _, r := range rows {
			exec += r.ExecIdent
			regm += r.ExecIdentRegMerge
		}
		b.ReportMetric(exec/float64(len(rows)), "exec-ident-found")
		b.ReportMetric(regm/float64(len(rows)), "regmerge-found")
	}
}

func BenchmarkFig5d_FetchModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure5d(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		var merge, catchup float64
		for _, r := range rows {
			merge += r.Merge
			catchup += r.Catchup
		}
		b.ReportMetric(merge/float64(len(rows)), "merge-mean")
		b.ReportMetric(catchup/float64(len(rows)), "catchup-mean")
	}
}

func BenchmarkFig6_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure6(sim.NewSerial(), workloads.All())
		if err != nil {
			b.Fatal(err)
		}
		var ratios []float64
		var maxOverhead float64
		for _, r := range rows {
			if r.SMT4 > 0 {
				ratios = append(ratios, r.MMT4/r.SMT4)
			}
			if r.OverheadFrac > maxOverhead {
				maxOverhead = r.OverheadFrac
			}
		}
		b.ReportMetric(sim.Geomean(ratios), "mmt4-vs-smt4-energy")
		b.ReportMetric(maxOverhead, "max-overhead-frac")
	}
}

func BenchmarkFig7a_FHBSizePerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure7a(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		// Geomean speedup at the smallest and largest FHB.
		var small, large []float64
		for _, r := range rows {
			small = append(small, r.Speedups[0])
			large = append(large, r.Speedups[len(r.Speedups)-1])
		}
		b.ReportMetric(sim.Geomean(small), "geomean-fhb8")
		b.ReportMetric(sim.Geomean(large), "geomean-fhb128")
	}
}

func BenchmarkFig7b_LSPorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp, err := sim.Figure7b(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sp[0], "geomean-2ports")
		b.ReportMetric(sp[len(sp)-1], "geomean-12ports")
	}
}

func BenchmarkFig7c_FHBSizeModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.Figure7c(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		var m8, m128 float64
		for _, r := range rows {
			m8 += r.Merge[0]
			m128 += r.Merge[len(r.Merge)-1]
		}
		b.ReportMetric(m8/float64(len(rows)), "merge-mean-fhb8")
		b.ReportMetric(m128/float64(len(rows)), "merge-mean-fhb128")
	}
}

func BenchmarkFig7d_FetchWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp, err := sim.Figure7d(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sp[0], "geomean-width4")
		b.ReportMetric(sp[len(sp)-1], "geomean-width32")
	}
}

func BenchmarkSec63_RemergeDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := sim.RemergeWithin512(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, v := range m {
			total += v
		}
		b.ReportMetric(total/float64(len(m)), "within512-mean")
	}
}

// BenchmarkCoreThroughput measures raw simulator speed (simulated
// instructions per host second) — an engineering metric, not a paper
// artifact.
func BenchmarkCoreThroughput(b *testing.B) {
	app, ok := workloads.ByName("water-ns")
	if !ok {
		b.Fatal("missing app")
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(app, sim.PresetMMTFXR, 4, nil)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Stats.TotalCommitted()
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim-insts/s")
}

// --- Extension and ablation benchmarks (beyond the paper's figures) ---

func BenchmarkExtMP_MessagePassing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.ExtensionMP(sim.NewSerial())
		if err != nil {
			b.Fatal(err)
		}
		var g []float64
		for _, r := range rows {
			g = append(g, r.Speedup)
		}
		b.ReportMetric(sim.Geomean(g), "geomean-speedup")
	}
}

func BenchmarkAblationSyncPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, gms, err := sim.AblationSyncPolicy(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gms[0], "geomean-fhb")
		b.ReportMetric(gms[1], "geomean-hints")
		b.ReportMetric(gms[2], "geomean-none")
	}
}

func BenchmarkAblationLVIP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, gms, err := sim.AblationLVIP(sim.NewSerial(), workloads.All(), 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gms[0], "geomean-predict")
		b.ReportMetric(gms[1], "geomean-off")
		b.ReportMetric(gms[2], "geomean-oracle")
	}
}

func BenchmarkExtCoschedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := sim.ExtensionCoschedule(sim.NewSerial())
		if err != nil {
			b.Fatal(err)
		}
		var g []float64
		for _, r := range rows {
			g = append(g, r.Speedup)
		}
		b.ReportMetric(sim.Geomean(g), "geomean-speedup")
	}
}
