package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirPredictorLearnsBias(t *testing.T) {
	p := NewDirPredictor(1024, 10, 1)
	pc := uint64(0x1000)
	// Train always-taken.
	for i := 0; i < 32; i++ {
		p.Update(0, pc, true)
	}
	if !p.Predict(0, pc) {
		t.Error("did not learn always-taken")
	}
	// Flip to always-not-taken; must eventually relearn.
	for i := 0; i < 32; i++ {
		p.Update(0, pc, false)
	}
	if p.Predict(0, pc) {
		t.Error("did not relearn not-taken")
	}
}

func TestDirPredictorLearnsAlternation(t *testing.T) {
	// A strict alternation is perfectly predictable with global history.
	p := NewDirPredictor(1024, 10, 1)
	pc := uint64(0x2040)
	taken := false
	var wrong int
	for i := 0; i < 400; i++ {
		pred := p.Predict(0, pc)
		if i >= 100 && pred != taken {
			wrong++
		}
		p.Update(0, pc, taken)
		taken = !taken
	}
	if wrong != 0 {
		t.Errorf("alternating pattern mispredicted %d times after warmup", wrong)
	}
}

func TestDirPredictorPerThreadHistory(t *testing.T) {
	p := NewDirPredictor(1024, 10, 2)
	pc := uint64(0x3000)
	p.Update(0, pc, true)
	p.Update(0, pc, true)
	if p.HistoryCopy(0) != 0b11 {
		t.Errorf("t0 history = %b", p.HistoryCopy(0))
	}
	if p.HistoryCopy(1) != 0 {
		t.Errorf("t1 history = %b, want untouched", p.HistoryCopy(1))
	}
}

func TestDirPredictorCountsMispredicts(t *testing.T) {
	p := NewDirPredictor(16, 4, 1)
	pc := uint64(0x40)
	// Initial state is weakly not-taken: first taken outcome mispredicts.
	if correct := p.Update(0, pc, true); correct {
		t.Error("first taken predicted correctly from weakly-not-taken")
	}
	if p.Mispredict != 1 || p.Lookups != 1 {
		t.Errorf("counters = %d/%d", p.Mispredict, p.Lookups)
	}
}

func TestDirPredictorPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-power-of-two PHT")
		}
	}()
	NewDirPredictor(1000, 10, 1)
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(64)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("empty BTB hit")
	}
	b.Insert(0x1000, 0x2000)
	tgt, ok := b.Lookup(0x1000)
	if !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x/%v", tgt, ok)
	}
	// A conflicting PC (same index, different tag) must miss, then evict.
	conflict := uint64(0x1000 + 64*4)
	if _, ok := b.Lookup(conflict); ok {
		t.Error("conflicting tag hit")
	}
	b.Insert(conflict, 0x3000)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("evicted entry still hits")
	}
}

func TestBTBCounters(t *testing.T) {
	b := NewBTB(8)
	b.Lookup(0x10)
	b.Insert(0x10, 0x20)
	b.Lookup(0x10)
	if b.Hits != 1 || b.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", b.Hits, b.Misses)
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty RAS")
	}
	r.Push(0x100)
	r.Push(0x200)
	if r.Depth() != 2 {
		t.Errorf("depth = %d", r.Depth())
	}
	v, ok := r.Pop()
	if !ok || v != 0x200 {
		t.Errorf("pop = %#x/%v", v, ok)
	}
	v, _ = r.Pop()
	if v != 0x100 {
		t.Errorf("pop = %#x", v)
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites oldest
	if r.Depth() != 2 {
		t.Errorf("depth = %d", r.Depth())
	}
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("pop = %d", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("pop = %d", v)
	}
}

func TestRASLIFOProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ras := NewRAS(16)
		var model []uint64
		for i := 0; i < 100; i++ {
			if r.Intn(2) == 0 {
				v := r.Uint64()
				ras.Push(v)
				model = append(model, v)
				if len(model) > 16 {
					model = model[1:]
				}
			} else {
				got, ok := ras.Pop()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewUnitDefaults(t *testing.T) {
	u := NewUnit(DefaultConfig(4))
	if len(u.RAS) != 4 {
		t.Errorf("RAS count = %d", len(u.RAS))
	}
	if len(u.Dir.pht) != 1024 {
		t.Errorf("PHT entries = %d", len(u.Dir.pht))
	}
	if len(u.BTB.tags) != 2048 {
		t.Errorf("BTB entries = %d", len(u.BTB.tags))
	}
}
