// Package branch implements the front-end control-flow predictors of the
// simulated core: a two-level adaptive direction predictor (per Table 4 of
// the MMT paper: 1024-entry pattern history table, 10-bit global history),
// a branch target buffer, and a return address stack.
//
// In an SMT/MMT core each hardware thread has its own global history and
// RAS while the PHT and BTB are shared; Unit bundles the shared and
// per-thread pieces.
package branch

import "fmt"

// DirPredictor is a two-level GAs direction predictor: a global branch
// history register per thread indexes a shared table of 2-bit saturating
// counters, xored with the branch PC (gshare flavor).
type DirPredictor struct {
	pht        []uint8 // 2-bit counters
	histBits   uint
	history    []uint64 // per-thread global history
	Lookups    uint64
	Mispredict uint64
}

// NewDirPredictor builds a predictor with entries counters (power of two)
// and histBits bits of global history for nthreads threads.
func NewDirPredictor(entries int, histBits uint, nthreads int) *DirPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("branch: PHT entries %d not a power of two", entries))
	}
	p := &DirPredictor{
		pht:      make([]uint8, entries),
		histBits: histBits,
		history:  make([]uint64, nthreads),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

func (p *DirPredictor) index(tid int, pc uint64) int {
	h := p.history[tid] & (1<<p.histBits - 1)
	return int((pc>>2 ^ h) & uint64(len(p.pht)-1))
}

// Predict returns the predicted direction for the branch at pc in thread
// tid, without updating any state.
func (p *DirPredictor) Predict(tid int, pc uint64) bool {
	return p.pht[p.index(tid, pc)] >= 2
}

// Update trains the predictor with the actual outcome and records whether
// the prediction had been correct. It also shifts the outcome into the
// thread's global history.
func (p *DirPredictor) Update(tid int, pc uint64, taken bool) (correct bool) {
	idx := p.index(tid, pc)
	pred := p.pht[idx] >= 2
	correct = pred == taken
	p.Lookups++
	if !correct {
		p.Mispredict++
	}
	if taken {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.history[tid] = p.history[tid]<<1 | b2u(taken)
	return correct
}

// HistoryCopy exposes a thread's current global history for tests.
func (p *DirPredictor) HistoryCopy(tid int) uint64 {
	return p.history[tid] & (1<<p.histBits - 1)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer with tags.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	Hits    uint64
	Misses  uint64
}

// NewBTB builds a BTB with entries slots (power of two).
func NewBTB(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("branch: BTB entries %d not a power of two", entries))
	}
	return &BTB{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
	}
}

func (b *BTB) index(pc uint64) (int, uint64) {
	idx := int(pc >> 2 & uint64(len(b.tags)-1))
	return idx, pc >> 2 / uint64(len(b.tags))
}

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	idx, tag := b.index(pc)
	if b.valid[idx] && b.tags[idx] == tag {
		b.Hits++
		return b.targets[idx], true
	}
	b.Misses++
	return 0, false
}

// Insert records the target of a taken control instruction.
func (b *BTB) Insert(pc, target uint64) {
	idx, tag := b.index(pc)
	b.valid[idx] = true
	b.tags[idx] = tag
	b.targets[idx] = target
}

// RAS is a per-thread return address stack with wrap-around overwrite
// semantics (a full stack overwrites the oldest entry, as real hardware
// does).
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS builds a RAS with the given capacity.
func NewRAS(capacity int) *RAS {
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address (on call).
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts a return target (on return). Returns false when empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	v := r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return v, true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Unit bundles the shared predictor structures with per-thread RAS state,
// matching the paper's front end (Table 4: 2-level 1024-entry predictor,
// history length 10, 2048-entry BTB, 16-entry RAS).
type Unit struct {
	Dir *DirPredictor
	BTB *BTB
	RAS []*RAS
}

// Config sizes a Unit.
type Config struct {
	PHTEntries  int
	HistoryBits uint
	BTBEntries  int
	RASEntries  int
	Threads     int
}

// DefaultConfig matches Table 4 of the paper.
func DefaultConfig(threads int) Config {
	return Config{
		PHTEntries:  1024,
		HistoryBits: 10,
		BTBEntries:  2048,
		RASEntries:  16,
		Threads:     threads,
	}
}

// NewUnit builds the front-end predictors for cfg.
func NewUnit(cfg Config) *Unit {
	u := &Unit{
		Dir: NewDirPredictor(cfg.PHTEntries, cfg.HistoryBits, cfg.Threads),
		BTB: NewBTB(cfg.BTBEntries),
	}
	for i := 0; i < cfg.Threads; i++ {
		u.RAS = append(u.RAS, NewRAS(cfg.RASEntries))
	}
	return u
}
