package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mmt/internal/asm"
	"mmt/internal/prog"
)

func rec(pc uint64, taken bool, sig uint64) Record {
	return Record{PC: pc, Taken: taken, Sig: sig}
}

func TestAlignIdenticalTraces(t *testing.T) {
	var a []Record
	for i := 0; i < 100; i++ {
		a = append(a, rec(uint64(i*4), false, uint64(i)))
	}
	p := Align(a, a, DefaultAlignConfig())
	if p.ExecuteIdentical != 200 || p.FetchIdentical != 0 || p.NotIdentical != 0 {
		t.Errorf("profile %+v", p)
	}
	if p.Divergences != 0 {
		t.Errorf("divergences = %d", p.Divergences)
	}
}

func TestAlignFetchIdenticalOnly(t *testing.T) {
	var a, b []Record
	for i := 0; i < 50; i++ {
		a = append(a, rec(uint64(i*4), false, 1))
		b = append(b, rec(uint64(i*4), false, 2)) // same PCs, different values
	}
	p := Align(a, b, DefaultAlignConfig())
	if p.FetchIdentical != 100 || p.ExecuteIdentical != 0 {
		t.Errorf("profile %+v", p)
	}
}

func TestAlignDivergenceAndReconverge(t *testing.T) {
	// Common prefix, divergent middles of different lengths, common tail.
	common := func(base uint64, n int) []Record {
		var out []Record
		for i := 0; i < n; i++ {
			out = append(out, rec(base+uint64(i*4), false, base+uint64(i)))
		}
		return out
	}
	divergent := func(base uint64, n, taken int) []Record {
		var out []Record
		for i := 0; i < n; i++ {
			out = append(out, rec(base+uint64(i*4), i < taken, 0))
		}
		return out
	}
	a := append(append(common(0, 10), divergent(0x1000, 5, 3)...), common(0x9000, 10)...)
	b := append(append(common(0, 10), divergent(0x2000, 8, 5)...), common(0x9000, 10)...)
	p := Align(a, b, DefaultAlignConfig())
	if p.Divergences != 1 {
		t.Fatalf("divergences = %d", p.Divergences)
	}
	if p.ExecuteIdentical != 40 {
		t.Errorf("exec-identical = %d, want 40", p.ExecuteIdentical)
	}
	if p.NotIdentical != 13 {
		t.Errorf("not-identical = %d, want 13", p.NotIdentical)
	}
	// Length difference = |3-5| = 2 taken branches -> first bucket.
	if p.LenDiff[0] != 1 {
		t.Errorf("len-diff histogram %v", p.LenDiff)
	}
}

func TestAlignNoReconvergence(t *testing.T) {
	var a, b []Record
	for i := 0; i < 30; i++ {
		a = append(a, rec(uint64(0x1000+i*4), false, 0))
		b = append(b, rec(uint64(0x8000+i*4), false, 0))
	}
	p := Align(a, b, DefaultAlignConfig())
	if p.NotIdentical != 60 || p.ExecuteIdentical != 0 {
		t.Errorf("profile %+v", p)
	}
}

func TestAlignShiftedTraces(t *testing.T) {
	// b runs 6 extra setup instructions, then both execute the same code:
	// reconvergence with di=0.
	var tail []Record
	for i := 0; i < 40; i++ {
		tail = append(tail, rec(uint64(0x4000+i*4), i%5 == 0, uint64(i)))
	}
	var setup []Record
	for i := 0; i < 6; i++ {
		setup = append(setup, rec(uint64(0x100+i*4), true, 0))
	}
	a := tail
	b := append(setup, tail...)
	p := Align(a, b, DefaultAlignConfig())
	if p.Divergences != 1 {
		t.Fatalf("divergences = %d (profile %+v)", p.Divergences, p)
	}
	if p.ExecuteIdentical != 80 {
		t.Errorf("exec-identical = %d", p.ExecuteIdentical)
	}
}

func TestDistBucketing(t *testing.T) {
	p := &Profile{}
	p.recordDiff(0)
	p.recordDiff(16)
	p.recordDiff(17)
	p.recordDiff(512)
	p.recordDiff(513)
	want := [7]uint64{2, 1, 0, 0, 0, 1, 1}
	if p.LenDiff != want {
		t.Errorf("histogram %v, want %v", p.LenDiff, want)
	}
	if got := p.DiffWithin(16); got != 0.4 {
		t.Errorf("within 16 = %f", got)
	}
	if got := p.DiffWithin(512); got != 0.8 {
		t.Errorf("within 512 = %f", got)
	}
}

func TestCaptureSignatures(t *testing.T) {
	src := `
        li   r4, input
        ld   r5, 0(r4)
        addi r6, r5, 1
        halt
        .data
input:  .word 0
`
	build := func(val uint64) []Record {
		p := asm.MustAssemble("t", src)
		sys, err := prog.NewSystem(p, prog.ModeME, 1, func(ctx int, mem *prog.Memory) {
			mem.Write64(prog.DataBase, val)
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := Capture(sys.Contexts[0], 100)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := build(7)
	b := build(7)
	c := build(8)
	if len(a) != 4 {
		t.Fatalf("trace length %d", len(a))
	}
	for i := range a {
		if a[i].Sig != b[i].Sig {
			t.Errorf("identical runs: sig differs at %d", i)
		}
	}
	// The load (index 1) and its consumer (index 2) must differ in c.
	if a[1].Sig == c[1].Sig {
		t.Error("different load value, same signature")
	}
	if a[2].Sig == c[2].Sig {
		t.Error("different operand value, same signature")
	}
	// The setup li (index 0) is identical.
	if a[0].Sig != c[0].Sig {
		t.Error("identical instruction got different signature")
	}
}

func TestCaptureRespectsMaxInsts(t *testing.T) {
	src := "loop: j loop\n"
	p := asm.MustAssemble("spin", src)
	sys, _ := prog.NewSystem(p, prog.ModeME, 1, nil)
	tr, err := Capture(sys.Contexts[0], 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 25 {
		t.Errorf("trace length %d", len(tr))
	}
	for _, r := range tr {
		if !r.Taken {
			t.Error("jump not marked taken")
		}
	}
}

func TestProfileSystem(t *testing.T) {
	src := `
        li   r4, input
        ld   r5, 0(r4)
        li   r6, 20
loop:   add  r7, r5, r6
        addi r6, r6, -1
        bnez r6, loop
        halt
        .data
input:  .word 1
`
	p := asm.MustAssemble("ps", src)
	sys, err := prog.NewSystem(p, prog.ModeME, 2, func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx))
	})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileSystem(sys, 100000, DefaultAlignConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Same control flow, partially different values: everything is at
	// least fetch-identical, some of it execute-identical.
	_, _, ni := prof.Fractions()
	if ni != 0 {
		t.Errorf("not-identical fraction = %f", ni)
	}
	if prof.FetchIdentical == 0 || prof.ExecuteIdentical == 0 {
		t.Errorf("profile %+v", prof)
	}
	// One context is required to be at least two.
	single, _ := prog.NewSystem(p, prog.ModeME, 1, nil)
	if _, err := ProfileSystem(single, 100, DefaultAlignConfig()); err == nil {
		t.Error("single-context profiling accepted")
	}
}

// TestAlignConstructedProperty builds traces from known common/divergent
// segment structures and verifies the aligner recovers the exact
// classification counts.
func TestAlignConstructedProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b []Record
		var wantExec, wantFetch, wantNot uint64
		var wantDivs uint64
		pcBase := uint64(0x1000)
		segs := 1 + r.Intn(6)
		for s := 0; s < segs; s++ {
			// Common segment with unique PCs.
			n := 4 + r.Intn(20)
			for i := 0; i < n; i++ {
				pc := pcBase
				pcBase += 4
				sig := uint64(r.Intn(4))
				sigB := sig
				if r.Intn(3) == 0 { // fetch-identical only
					sigB = sig + 100
					wantFetch += 2
				} else {
					wantExec += 2
				}
				a = append(a, Record{PC: pc, Sig: sig})
				b = append(b, Record{PC: pc, Sig: sigB})
			}
			if s == segs-1 {
				break
			}
			// Divergent segment: disjoint unique PC ranges, possibly
			// empty on one side.
			da := r.Intn(6)
			db := r.Intn(6)
			if da == 0 && db == 0 {
				da = 1
			}
			for i := 0; i < da; i++ {
				a = append(a, Record{PC: 0x100000 + uint64(s)*0x1000 + uint64(i)*4, Taken: true})
			}
			for i := 0; i < db; i++ {
				b = append(b, Record{PC: 0x200000 + uint64(s)*0x1000 + uint64(i)*4, Taken: true})
			}
			wantNot += uint64(da + db)
			wantDivs++
		}
		p := Align(a, b, DefaultAlignConfig())
		return p.ExecuteIdentical == wantExec &&
			p.FetchIdentical == wantFetch &&
			p.NotIdentical == wantNot &&
			p.Divergences == wantDivs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
