// Package trace implements the paper's profiling methodology (§3.2–3.3):
// it captures committed-path instruction traces from the functional oracle,
// aligns the traces of different threads by finding their common subtraces,
// and classifies every dynamic instruction as execute-identical,
// fetch-identical, or not identical (Fig. 1), while measuring the
// difference in length of divergent execution paths in taken branches
// (Fig. 2).
//
// This is a limit study independent of the MMT hardware: it measures how
// much redundancy exists, not how much the mechanisms capture.
package trace

import (
	"fmt"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

// Record is one dynamic instruction of one thread.
type Record struct {
	PC    uint64
	Taken bool
	// Sig summarizes the computation: opcode, source operand values and
	// (for loads) the loaded value. Two aligned records with equal PC
	// and equal Sig are execute-identical.
	Sig uint64
}

// Capture runs ctx functionally to completion (or maxInsts) and returns
// its trace.
func Capture(ctx *prog.Context, maxInsts int) ([]Record, error) {
	var out []Record
	for !ctx.Halted() && len(out) < maxInsts {
		inst, ok := ctx.Prog.InstAt(ctx.State.PC)
		if !ok {
			return nil, fmt.Errorf("trace: context %d: PC %#x outside text", ctx.ID, ctx.State.PC)
		}
		pc := ctx.State.PC
		sig := sigInit(inst)
		srcs, n := inst.Sources()
		for i := 0; i < n; i++ {
			sig = sigMix(sig, ctx.State.Reg[srcs[i]])
		}
		_, eff, err := ctx.Step()
		if err != nil {
			return nil, err
		}
		if eff.IsMem && !eff.IsStore {
			sig = sigMix(sig, eff.LoadVal)
		}
		out = append(out, Record{PC: pc, Taken: eff.Taken, Sig: sig})
	}
	return out, nil
}

func sigInit(inst isa.Inst) uint64 {
	w, err := inst.Encode()
	if err != nil {
		w = uint64(inst.Op)
	}
	return sigMix(0x9e3779b97f4a7c15, w)
}

func sigMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}

// Class is the Fig. 1 classification.
type Class uint8

const (
	NotIdentical Class = iota
	FetchIdentical
	ExecuteIdentical
)

// DistBuckets are the Fig. 2 histogram bucket bounds (taken branches).
var DistBuckets = []uint64{16, 32, 64, 128, 256, 512}

// Profile is the result of aligning two traces.
type Profile struct {
	// Counts are per-thread dynamic instructions in each class (both
	// threads counted, as in Fig. 1).
	ExecuteIdentical uint64
	FetchIdentical   uint64
	NotIdentical     uint64

	// Divergences is the number of divergent regions found.
	Divergences uint64
	// LenDiff histograms |len(pathA) - len(pathB)| in taken branches per
	// divergence; the last bin is "> 512".
	LenDiff [7]uint64
}

// Total returns the classified per-thread instruction count.
func (p *Profile) Total() uint64 {
	return p.ExecuteIdentical + p.FetchIdentical + p.NotIdentical
}

// Fractions returns the Fig. 1 fractions.
func (p *Profile) Fractions() (execIdent, fetchIdent, notIdent float64) {
	t := float64(p.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(p.ExecuteIdentical) / t, float64(p.FetchIdentical) / t, float64(p.NotIdentical) / t
}

// DiffWithin returns the fraction of divergences whose length difference
// is within bound taken branches (Fig. 2 reading).
func (p *Profile) DiffWithin(bound uint64) float64 {
	var total, within uint64
	for i, c := range p.LenDiff {
		total += c
		if i < len(DistBuckets) && DistBuckets[i] <= bound {
			within += c
		}
	}
	if total == 0 {
		return 1
	}
	return float64(within) / float64(total)
}

func (p *Profile) recordDiff(d uint64) {
	for i, b := range DistBuckets {
		if d <= b {
			p.LenDiff[i]++
			return
		}
	}
	p.LenDiff[len(DistBuckets)]++
}

// AlignConfig tunes the common-subtrace search.
type AlignConfig struct {
	// Window bounds how far ahead the reconvergence search looks in each
	// trace (dynamic instructions).
	Window int
	// MinRun is the number of consecutive matching PCs required to call
	// two positions reconverged (suppresses accidental single-PC
	// matches).
	MinRun int
}

// DefaultAlignConfig mirrors the paper's "common subtraces" methodology
// with a generous search window.
func DefaultAlignConfig() AlignConfig {
	return AlignConfig{Window: 4096, MinRun: 4}
}

// Align walks two traces in lockstep, classifying matched instructions and
// measuring divergent regions, per §3.2–3.3.
func Align(a, b []Record, cfg AlignConfig) *Profile {
	p := &Profile{}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].PC == b[j].PC {
			if a[i].Sig == b[j].Sig {
				p.ExecuteIdentical += 2
			} else {
				p.FetchIdentical += 2
			}
			i++
			j++
			continue
		}
		di, dj, ok := reconverge(a[i:], b[j:], cfg)
		if !ok {
			// No reconvergence within the window: the remainders are
			// not identical.
			p.NotIdentical += uint64(len(a) - i + len(b) - j)
			return p
		}
		p.Divergences++
		ta := takenIn(a[i : i+di])
		tb := takenIn(b[j : j+dj])
		diff := ta - tb
		if tb > ta {
			diff = tb - ta
		}
		p.recordDiff(diff)
		p.NotIdentical += uint64(di + dj)
		i += di
		j += dj
	}
	p.NotIdentical += uint64(len(a) - i + len(b) - j)
	return p
}

func takenIn(rs []Record) uint64 {
	var n uint64
	for _, r := range rs {
		if r.Taken {
			n++
		}
	}
	return n
}

// reconverge finds the earliest re-alignment of the two divergent suffixes:
// the (di, dj) minimizing di+dj such that MinRun consecutive PCs match.
func reconverge(a, b []Record, cfg AlignConfig) (int, int, bool) {
	wa, wb := cfg.Window, cfg.Window
	if wa > len(a) {
		wa = len(a)
	}
	if wb > len(b) {
		wb = len(b)
	}
	// Index b's window by PC for fast candidate lookup.
	byPC := make(map[uint64][]int, wb)
	for j := 0; j < wb; j++ {
		byPC[b[j].PC] = append(byPC[b[j].PC], j)
	}
	bestDi, bestDj, best := 0, 0, -1
	for di := 0; di < wa; di++ {
		if best >= 0 && di >= best {
			break // no candidate can beat the current best sum
		}
		for _, dj := range byPC[a[di].PC] {
			if best >= 0 && di+dj >= best {
				continue
			}
			if di == 0 && dj == 0 {
				continue // the current positions already mismatch
			}
			if runMatches(a[di:], b[dj:], cfg.MinRun) {
				best, bestDi, bestDj = di+dj, di, dj
			}
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return bestDi, bestDj, true
}

func runMatches(a, b []Record, n int) bool {
	if len(a) < n || len(b) < n {
		n = min(len(a), len(b))
		if n == 0 {
			return false
		}
	}
	for k := 0; k < n; k++ {
		if a[k].PC != b[k].PC {
			return false
		}
	}
	return true
}

func min(x, y int) int {
	if x < y {
		return x
	}
	return y
}

// ProfileSystem captures and aligns the first two contexts of a freshly
// built system (the paper profiles thread pairs).
func ProfileSystem(sys *prog.System, maxInsts int, cfg AlignConfig) (*Profile, error) {
	if len(sys.Contexts) < 2 {
		return nil, fmt.Errorf("trace: profiling needs at least 2 contexts")
	}
	a, err := Capture(sys.Contexts[0], maxInsts)
	if err != nil {
		return nil, err
	}
	b, err := Capture(sys.Contexts[1], maxInsts)
	if err != nil {
		return nil, err
	}
	return Align(a, b, cfg), nil
}
