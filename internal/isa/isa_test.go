package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpNamesRoundTrip(t *testing.T) {
	for op := OpInvalid + 1; op < opMax; op++ {
		name := op.String()
		got, ok := OpByName(name)
		if !ok {
			t.Fatalf("OpByName(%q) not found", name)
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", name, got, op)
		}
	}
}

func TestOpByNameUnknown(t *testing.T) {
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName accepted an unknown mnemonic")
	}
}

func TestInvalidOpProperties(t *testing.T) {
	bad := []Op{OpInvalid, opMax, Op(200)}
	for _, op := range bad {
		if op.Valid() {
			t.Errorf("op %d reported valid", uint8(op))
		}
		if op.IsBranch() {
			t.Errorf("op %d reported branch", uint8(op))
		}
		if op.HasDest() {
			t.Errorf("op %d reported dest", uint8(op))
		}
		if !strings.Contains(op.String(), "op(") && op != OpInvalid {
			t.Errorf("op %d String = %q", uint8(op), op.String())
		}
	}
}

func TestClassAssignments(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpAdd, ClassIntALU},
		{OpMul, ClassIntMul},
		{OpDiv, ClassIntDiv},
		{OpRem, ClassIntDiv},
		{OpFadd, ClassFPALU},
		{OpFmul, ClassFPMul},
		{OpFdiv, ClassFPDiv},
		{OpFsqrt, ClassFPDiv},
		{OpLd, ClassLoad},
		{OpSt, ClassStore},
		{OpBeq, ClassBranch},
		{OpJal, ClassJump},
		{OpJalr, ClassJump},
		{OpNop, ClassNop},
		{OpHalt, ClassHalt},
		{OpTid, ClassIntALU},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestIsControl(t *testing.T) {
	for op := OpInvalid + 1; op < opMax; op++ {
		want := op.Class() == ClassBranch || op.Class() == ClassJump
		if got := op.IsControl(); got != want {
			t.Errorf("%v.IsControl() = %v, want %v", op, got, want)
		}
	}
}

func TestSourcesAndDest(t *testing.T) {
	i := Inst{Op: OpAdd, Rd: 3, Rs1: 4, Rs2: 5}
	srcs, n := i.Sources()
	if n != 2 || srcs[0] != 4 || srcs[1] != 5 {
		t.Errorf("add sources = %v/%d", srcs, n)
	}
	if d, ok := i.Dest(); !ok || d != 3 {
		t.Errorf("add dest = %d/%v", d, ok)
	}

	i = Inst{Op: OpAddi, Rd: 3, Rs1: 4, Imm: 7}
	srcs, n = i.Sources()
	if n != 1 || srcs[0] != 4 {
		t.Errorf("addi sources = %v/%d", srcs, n)
	}

	i = Inst{Op: OpSt, Rs1: 4, Rs2: 5, Imm: 8}
	srcs, n = i.Sources()
	if n != 2 {
		t.Errorf("st sources = %v/%d", srcs, n)
	}
	if _, ok := i.Dest(); ok {
		t.Error("store reported a dest register")
	}

	// Writes to r0 are discarded.
	i = Inst{Op: OpAdd, Rd: RegZero, Rs1: 1, Rs2: 2}
	if _, ok := i.Dest(); ok {
		t.Error("write to r0 reported as dest")
	}

	i = Inst{Op: OpJal, Rd: RegRA, Imm: 0x100}
	if _, n = i.Sources(); n != 0 {
		t.Errorf("jal sources n = %d", n)
	}
	if d, ok := i.Dest(); !ok || d != RegRA {
		t.Errorf("jal dest = %d/%v", d, ok)
	}
}

// randInst produces a uniformly random valid instruction.
func randInst(r *rand.Rand) Inst {
	return Inst{
		Op:  Op(1 + r.Intn(NumOps)),
		Rd:  uint8(r.Intn(NumRegs)),
		Rs1: uint8(r.Intn(NumRegs)),
		Rs2: uint8(r.Intn(NumRegs)),
		Imm: r.Int63n(immMax) - r.Int63n(immMax),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		i := randInst(r)
		w, err := i.Encode()
		if err != nil {
			t.Logf("encode %+v: %v", i, err)
			return false
		}
		got, err := Decode(w)
		if err != nil {
			t.Logf("decode %#x: %v", w, err)
			return false
		}
		return got == i
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	cases := []Inst{
		{Op: OpInvalid},
		{Op: opMax},
		{Op: OpAdd, Rd: 32},
		{Op: OpAdd, Rs1: 40},
		{Op: OpAdd, Rs2: 33},
		{Op: OpAddi, Imm: immMax + 1},
		{Op: OpAddi, Imm: immMin - 1},
	}
	for _, c := range cases {
		if _, err := c.Encode(); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", c)
		}
	}
}

func TestDecodeRejectsBadWords(t *testing.T) {
	if _, err := Decode(0); err == nil {
		t.Error("Decode(0) succeeded")
	}
	if _, err := Decode(uint64(opMax)); err == nil {
		t.Error("Decode(opMax) succeeded")
	}
	// Reserved bits set.
	w := Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}.MustEncode() | 1<<23
	if _, err := Decode(w); err == nil {
		t.Error("Decode with reserved bits succeeded")
	}
}

func TestImmediateSignExtension(t *testing.T) {
	for _, imm := range []int64{-1, -1024, immMin, immMax, 0, 1} {
		i := Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: imm}
		got, err := Decode(i.MustEncode())
		if err != nil {
			t.Fatalf("decode imm %d: %v", imm, err)
		}
		if got.Imm != imm {
			t.Errorf("imm %d round-tripped to %d", imm, got.Imm)
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode on invalid inst did not panic")
		}
	}()
	Inst{Op: OpInvalid}.MustEncode()
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		i    Inst
		want string
	}{
		{Inst{Op: OpNop}, "nop"},
		{Inst{Op: OpHalt}, "halt"},
		{Inst{Op: OpTid, Rd: 9}, "tid r9"},
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: OpLd, Rd: 5, Rs1: 2, Imm: 16}, "ld r5, 16(r2)"},
		{Inst{Op: OpSt, Rs2: 5, Rs1: 2, Imm: 16}, "st r5, 16(r2)"},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 2, Imm: 0x40}, "beq r1, r2, 0x40"},
		{Inst{Op: OpJal, Rd: 1, Imm: 0x80}, "jal r1, 0x80"},
		{Inst{Op: OpJalr, Rd: 0, Rs1: 1, Imm: 0}, "jalr r0, 0(r1)"},
		{Inst{Op: OpLui, Rd: 7, Imm: 123}, "lui r7, 123"},
		{Inst{Op: OpFneg, Rd: 4, Rs1: 6}, "fneg r4, r6"},
	}
	for _, c := range cases {
		if got := c.i.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
