package isa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mapMem is a trivial Memory for tests.
type mapMem map[uint64]uint64

func (m mapMem) Read64(a uint64) uint64     { return m[a] }
func (m mapMem) Write64(a uint64, v uint64) { m[a] = v }

func exec1(t *testing.T, i Inst, st *State, mem Memory) Effect {
	t.Helper()
	if mem == nil {
		mem = mapMem{}
	}
	eff, err := Exec(i, st, mem)
	if err != nil {
		t.Fatalf("Exec(%v): %v", i, err)
	}
	return eff
}

func TestExecIntALU(t *testing.T) {
	cases := []struct {
		i    Inst
		r4   uint64
		r5   uint64
		want uint64
	}{
		{Inst{Op: OpAdd, Rd: 3, Rs1: 4, Rs2: 5}, 7, 9, 16},
		{Inst{Op: OpSub, Rd: 3, Rs1: 4, Rs2: 5}, 7, 9, ^uint64(1)},
		{Inst{Op: OpMul, Rd: 3, Rs1: 4, Rs2: 5}, 7, 9, 63},
		{Inst{Op: OpDiv, Rd: 3, Rs1: 4, Rs2: 5}, 63, 9, 7},
		{Inst{Op: OpDiv, Rd: 3, Rs1: 4, Rs2: 5}, 63, 0, ^uint64(0)},
		{Inst{Op: OpRem, Rd: 3, Rs1: 4, Rs2: 5}, 65, 9, 2},
		{Inst{Op: OpRem, Rd: 3, Rs1: 4, Rs2: 5}, 65, 0, 65},
		{Inst{Op: OpAnd, Rd: 3, Rs1: 4, Rs2: 5}, 0b1100, 0b1010, 0b1000},
		{Inst{Op: OpOr, Rd: 3, Rs1: 4, Rs2: 5}, 0b1100, 0b1010, 0b1110},
		{Inst{Op: OpXor, Rd: 3, Rs1: 4, Rs2: 5}, 0b1100, 0b1010, 0b0110},
		{Inst{Op: OpSll, Rd: 3, Rs1: 4, Rs2: 5}, 1, 4, 16},
		{Inst{Op: OpSrl, Rd: 3, Rs1: 4, Rs2: 5}, 16, 4, 1},
		{Inst{Op: OpSra, Rd: 3, Rs1: 4, Rs2: 5}, ^uint64(0), 4, ^uint64(0)},
		{Inst{Op: OpSlt, Rd: 3, Rs1: 4, Rs2: 5}, ^uint64(0), 0, 1},
		{Inst{Op: OpSltu, Rd: 3, Rs1: 4, Rs2: 5}, ^uint64(0), 0, 0},
	}
	for _, c := range cases {
		st := &State{}
		st.Reg[4], st.Reg[5] = c.r4, c.r5
		eff := exec1(t, c.i, st, nil)
		if st.Reg[3] != c.want {
			t.Errorf("%v with r4=%d r5=%d: r3 = %d, want %d", c.i, c.r4, c.r5, st.Reg[3], c.want)
		}
		if !eff.WroteReg || eff.Dest != 3 || eff.DestVal != c.want {
			t.Errorf("%v: effect %+v inconsistent", c.i, eff)
		}
		if eff.NextPC != InstBytes {
			t.Errorf("%v: NextPC = %d", c.i, eff.NextPC)
		}
	}
}

func TestExecImmediates(t *testing.T) {
	st := &State{}
	st.Reg[4] = 10
	exec1(t, Inst{Op: OpAddi, Rd: 3, Rs1: 4, Imm: -3}, st, nil)
	if st.Reg[3] != 7 {
		t.Errorf("addi: r3 = %d", st.Reg[3])
	}
	exec1(t, Inst{Op: OpSlli, Rd: 3, Rs1: 4, Imm: 3}, st, nil)
	if st.Reg[3] != 80 {
		t.Errorf("slli: r3 = %d", st.Reg[3])
	}
	exec1(t, Inst{Op: OpLui, Rd: 3, Imm: 2}, st, nil)
	if st.Reg[3] != 2<<32 {
		t.Errorf("lui: r3 = %#x", st.Reg[3])
	}
	exec1(t, Inst{Op: OpSlti, Rd: 3, Rs1: 4, Imm: 11}, st, nil)
	if st.Reg[3] != 1 {
		t.Errorf("slti: r3 = %d", st.Reg[3])
	}
}

func TestExecFloat(t *testing.T) {
	st := &State{}
	st.Reg[4] = fb(2.5)
	st.Reg[5] = fb(1.5)
	exec1(t, Inst{Op: OpFadd, Rd: 3, Rs1: 4, Rs2: 5}, st, nil)
	if f(st.Reg[3]) != 4.0 {
		t.Errorf("fadd = %v", f(st.Reg[3]))
	}
	exec1(t, Inst{Op: OpFmul, Rd: 3, Rs1: 4, Rs2: 5}, st, nil)
	if f(st.Reg[3]) != 3.75 {
		t.Errorf("fmul = %v", f(st.Reg[3]))
	}
	exec1(t, Inst{Op: OpFdiv, Rd: 3, Rs1: 4, Rs2: 5}, st, nil)
	if math.Abs(f(st.Reg[3])-5.0/3.0) > 1e-15 {
		t.Errorf("fdiv = %v", f(st.Reg[3]))
	}
	st.Reg[6] = fb(9.0)
	exec1(t, Inst{Op: OpFsqrt, Rd: 3, Rs1: 6}, st, nil)
	if f(st.Reg[3]) != 3.0 {
		t.Errorf("fsqrt = %v", f(st.Reg[3]))
	}
	exec1(t, Inst{Op: OpFlt, Rd: 3, Rs1: 5, Rs2: 4}, st, nil)
	if st.Reg[3] != 1 {
		t.Errorf("flt = %d", st.Reg[3])
	}
	st.Reg[7] = 42
	exec1(t, Inst{Op: OpFcvt, Rd: 3, Rs1: 7}, st, nil)
	if f(st.Reg[3]) != 42.0 {
		t.Errorf("fcvt = %v", f(st.Reg[3]))
	}
	exec1(t, Inst{Op: OpFcvti, Rd: 8, Rs1: 3}, st, nil)
	if st.Reg[8] != 42 {
		t.Errorf("fcvti = %d", st.Reg[8])
	}
}

func TestExecMemory(t *testing.T) {
	mem := mapMem{}
	st := &State{}
	st.Reg[2] = 0x1000
	st.Reg[5] = 0xdeadbeef
	eff := exec1(t, Inst{Op: OpSt, Rs1: 2, Rs2: 5, Imm: 16}, st, mem)
	if !eff.IsMem || !eff.IsStore || eff.Addr != 0x1010 || eff.StoreVal != 0xdeadbeef {
		t.Errorf("store effect %+v", eff)
	}
	if mem[0x1010] != 0xdeadbeef {
		t.Errorf("store did not hit memory: %#x", mem[0x1010])
	}
	eff = exec1(t, Inst{Op: OpLd, Rd: 6, Rs1: 2, Imm: 16}, st, mem)
	if !eff.IsMem || eff.IsStore || eff.Addr != 0x1010 || eff.LoadVal != 0xdeadbeef {
		t.Errorf("load effect %+v", eff)
	}
	if st.Reg[6] != 0xdeadbeef {
		t.Errorf("load result %#x", st.Reg[6])
	}
}

func TestExecBranches(t *testing.T) {
	cases := []struct {
		op    Op
		a, b  uint64
		taken bool
	}{
		{OpBeq, 5, 5, true},
		{OpBeq, 5, 6, false},
		{OpBne, 5, 6, true},
		{OpBne, 5, 5, false},
		{OpBlt, ^uint64(0), 0, true}, // -1 < 0 signed
		{OpBlt, 0, ^uint64(0), false},
		{OpBge, 0, 0, true},
		{OpBltu, 0, ^uint64(0), true}, // 0 < max unsigned
		{OpBgeu, ^uint64(0), 0, true},
	}
	for _, c := range cases {
		st := &State{PC: 0x100}
		st.Reg[4], st.Reg[5] = c.a, c.b
		i := Inst{Op: c.op, Rs1: 4, Rs2: 5, Imm: 0x200}
		eff := exec1(t, i, st, nil)
		if eff.Taken != c.taken {
			t.Errorf("%v a=%d b=%d: taken = %v, want %v", c.op, c.a, c.b, eff.Taken, c.taken)
		}
		wantPC := uint64(0x104)
		if c.taken {
			wantPC = 0x200
		}
		if st.PC != wantPC {
			t.Errorf("%v: PC = %#x, want %#x", c.op, st.PC, wantPC)
		}
	}
}

func TestExecJumps(t *testing.T) {
	st := &State{PC: 0x100}
	eff := exec1(t, Inst{Op: OpJal, Rd: RegRA, Imm: 0x400}, st, nil)
	if !eff.Taken || st.PC != 0x400 || st.Reg[RegRA] != 0x104 {
		t.Errorf("jal: pc=%#x ra=%#x eff=%+v", st.PC, st.Reg[RegRA], eff)
	}
	st.Reg[7] = 0x800
	eff = exec1(t, Inst{Op: OpJalr, Rd: 0, Rs1: 7, Imm: 8}, st, nil)
	if !eff.Taken || st.PC != 0x808 {
		t.Errorf("jalr: pc=%#x eff=%+v", st.PC, eff)
	}
	if st.Reg[0] != 0 {
		t.Error("jalr wrote r0")
	}
}

func TestExecHaltAndTid(t *testing.T) {
	st := &State{PC: 0x100, CtxID: 3}
	exec1(t, Inst{Op: OpTid, Rd: 9}, st, nil)
	if st.Reg[9] != 3 {
		t.Errorf("tid = %d", st.Reg[9])
	}
	eff := exec1(t, Inst{Op: OpHalt}, st, nil)
	if !eff.Halted || !st.Halted {
		t.Error("halt did not halt")
	}
	if st.PC != 0x104 {
		t.Errorf("halt moved PC to %#x", st.PC)
	}
	if _, err := Exec(Nop(), st, mapMem{}); err == nil {
		t.Error("Exec on halted context succeeded")
	}
}

func TestExecRegZeroInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := &State{}
		mem := mapMem{}
		for k := range st.Reg {
			st.Reg[k] = r.Uint64()
		}
		st.Reg[0] = 0
		for n := 0; n < 50; n++ {
			i := randInst(r)
			if i.Op == OpHalt {
				continue
			}
			// Constrain memory addresses so the map stays small.
			if i.Op == OpLd || i.Op == OpSt {
				i.Rs1 = 0
				i.Imm = int64(r.Intn(1024)) * 8
			}
			if _, err := Exec(i, st, mem); err != nil {
				return false
			}
			if st.Reg[0] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestExecDeterministic checks the oracle property the whole simulator
// relies on: identical starting state and identical instructions produce
// identical effects and states.
func TestExecDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() (*State, mapMem) {
			rr := rand.New(rand.NewSource(seed ^ 0x5a5a))
			st := &State{}
			for k := 1; k < NumRegs; k++ {
				st.Reg[k] = rr.Uint64() % 4096
			}
			return st, mapMem{}
		}
		s1, m1 := mk()
		s2, m2 := mk()
		for n := 0; n < 30; n++ {
			i := randInst(r)
			if i.Op == OpHalt {
				continue
			}
			if i.Op == OpLd || i.Op == OpSt {
				i.Imm = int64(r.Intn(128)) * 8
				i.Rs1 = 0
			}
			e1, err1 := Exec(i, s1, m1)
			e2, err2 := Exec(i, s2, m2)
			if (err1 == nil) != (err2 == nil) || e1 != e2 {
				return false
			}
			if *s1 != *s2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
