package isa

import "fmt"

// Binary encoding (64 bits):
//
//	bits  0–7   opcode
//	bits  8–12  rd
//	bits 13–17  rs1
//	bits 18–22  rs2
//	bits 23–27  reserved (must be zero)
//	bits 28–63  imm, two's-complement 36-bit
//
// The 36-bit immediate covers all byte addresses the loader produces and
// every constant the assembler accepts; larger constants are composed with
// lui/ori by the assembler.

const (
	immBits = 36
	immMax  = int64(1)<<(immBits-1) - 1
	immMin  = -int64(1) << (immBits - 1)
)

// Encode packs i into its 64-bit binary representation. It returns an error
// when a field is out of range (register ≥ 32 or immediate outside the
// signed 36-bit range).
func (i Inst) Encode() (uint64, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", uint8(i.Op))
	}
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: encode %s: register out of range", i.Op)
	}
	if i.Imm > immMax || i.Imm < immMin {
		return 0, fmt.Errorf("isa: encode %s: immediate %d outside signed %d-bit range", i.Op, i.Imm, immBits)
	}
	w := uint64(i.Op) |
		uint64(i.Rd)<<8 |
		uint64(i.Rs1)<<13 |
		uint64(i.Rs2)<<18 |
		uint64(i.Imm&(1<<immBits-1))<<28
	return w, nil
}

// MustEncode is Encode but panics on error; for use with known-good
// constants in tests and generators.
func (i Inst) MustEncode() uint64 {
	w, err := i.Encode()
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 64-bit word produced by Encode.
func Decode(w uint64) (Inst, error) {
	op := Op(w & 0xff)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d", uint8(op))
	}
	if w>>23&0x1f != 0 {
		return Inst{}, fmt.Errorf("isa: decode %s: reserved bits set", op)
	}
	imm := int64(w >> 28)
	// Sign-extend the 36-bit immediate.
	imm = imm << (64 - immBits) >> (64 - immBits)
	return Inst{
		Op:  op,
		Rd:  uint8(w >> 8 & 0x1f),
		Rs1: uint8(w >> 13 & 0x1f),
		Rs2: uint8(w >> 18 & 0x1f),
		Imm: imm,
	}, nil
}
