package isa

import (
	"fmt"
	"math"
)

// Memory is the interface the functional semantics need from a memory
// image. Addresses are byte addresses; accesses are 64-bit and need not be
// aligned (the simulated workloads always use 8-byte alignment, but the
// semantics do not require it).
type Memory interface {
	Read64(addr uint64) uint64
	Write64(addr uint64, val uint64)
}

// State is the architectural state of one hardware context: the register
// file and the program counter. Reg[0] must read as zero; Exec maintains
// that invariant.
type State struct {
	Reg [NumRegs]uint64
	PC  uint64
	// CtxID is the hardware context id returned by the tid instruction.
	CtxID uint8
	// Halted is set once a halt instruction executes.
	Halted bool
}

// Effect describes the observable consequences of executing one
// instruction, for consumption by the timing model.
type Effect struct {
	// NextPC is the PC of the next dynamic instruction.
	NextPC uint64
	// Taken is set for control instructions that redirected the PC
	// (all jumps, and branches whose condition held).
	Taken bool
	// IsMem/Addr/StoreVal describe a memory access, if any.
	IsMem    bool
	IsStore  bool
	Addr     uint64
	StoreVal uint64
	// LoadVal is the value a load returned.
	LoadVal uint64
	// WroteReg / Dest / DestVal describe the register writeback, if any.
	WroteReg bool
	Dest     uint8
	DestVal  uint64
	// Halted is set by halt.
	Halted bool
}

func f(v uint64) float64  { return math.Float64frombits(v) }
func fb(v float64) uint64 { return math.Float64bits(v) }

// Exec executes i against st and mem, advancing st.PC, and returns the
// architectural effect. It is the functional oracle of the simulator: the
// timing model in internal/core never recomputes semantics.
func Exec(i Inst, st *State, mem Memory) (Effect, error) {
	if st.Halted {
		return Effect{}, fmt.Errorf("isa: exec on halted context %d", st.CtxID)
	}
	var eff Effect
	eff.NextPC = st.PC + InstBytes

	r := &st.Reg
	a, b := r[i.Rs1], r[i.Rs2]
	var dest uint64
	writeDest := false

	switch i.Op {
	case OpAdd:
		dest, writeDest = a+b, true
	case OpSub:
		dest, writeDest = a-b, true
	case OpMul:
		dest, writeDest = a*b, true
	case OpDiv:
		if b == 0 {
			dest = ^uint64(0)
		} else {
			dest = uint64(int64(a) / int64(b))
		}
		writeDest = true
	case OpRem:
		if b == 0 {
			dest = a
		} else {
			dest = uint64(int64(a) % int64(b))
		}
		writeDest = true
	case OpAnd:
		dest, writeDest = a&b, true
	case OpOr:
		dest, writeDest = a|b, true
	case OpXor:
		dest, writeDest = a^b, true
	case OpSll:
		dest, writeDest = a<<(b&63), true
	case OpSrl:
		dest, writeDest = a>>(b&63), true
	case OpSra:
		dest, writeDest = uint64(int64(a)>>(b&63)), true
	case OpSlt:
		dest, writeDest = boolTo(int64(a) < int64(b)), true
	case OpSltu:
		dest, writeDest = boolTo(a < b), true

	case OpAddi:
		dest, writeDest = a+uint64(i.Imm), true
	case OpAndi:
		dest, writeDest = a&uint64(i.Imm), true
	case OpOri:
		dest, writeDest = a|uint64(i.Imm), true
	case OpXori:
		dest, writeDest = a^uint64(i.Imm), true
	case OpSlli:
		dest, writeDest = a<<(uint64(i.Imm)&63), true
	case OpSrli:
		dest, writeDest = a>>(uint64(i.Imm)&63), true
	case OpSrai:
		dest, writeDest = uint64(int64(a)>>(uint64(i.Imm)&63)), true
	case OpSlti:
		dest, writeDest = boolTo(int64(a) < i.Imm), true
	case OpLui:
		dest, writeDest = uint64(i.Imm)<<32, true

	case OpFadd:
		dest, writeDest = fb(f(a)+f(b)), true
	case OpFsub:
		dest, writeDest = fb(f(a)-f(b)), true
	case OpFmul:
		dest, writeDest = fb(f(a)*f(b)), true
	case OpFdiv:
		dest, writeDest = fb(f(a)/f(b)), true
	case OpFsqrt:
		dest, writeDest = fb(math.Sqrt(f(a))), true
	case OpFneg:
		dest, writeDest = fb(-f(a)), true
	case OpFabs:
		dest, writeDest = fb(math.Abs(f(a))), true
	case OpFmin:
		dest, writeDest = fb(math.Min(f(a), f(b))), true
	case OpFmax:
		dest, writeDest = fb(math.Max(f(a), f(b))), true
	case OpFcvt:
		dest, writeDest = fb(float64(int64(a))), true
	case OpFcvti:
		dest, writeDest = uint64(int64(f(a))), true
	case OpFlt:
		dest, writeDest = boolTo(f(a) < f(b)), true
	case OpFle:
		dest, writeDest = boolTo(f(a) <= f(b)), true
	case OpFeq:
		dest, writeDest = boolTo(f(a) == f(b)), true

	case OpLd:
		addr := a + uint64(i.Imm)
		v := mem.Read64(addr)
		eff.IsMem, eff.Addr, eff.LoadVal = true, addr, v
		dest, writeDest = v, true
	case OpSt:
		addr := a + uint64(i.Imm)
		mem.Write64(addr, b)
		eff.IsMem, eff.IsStore, eff.Addr, eff.StoreVal = true, true, addr, b

	case OpBeq:
		eff.Taken = a == b
	case OpBne:
		eff.Taken = a != b
	case OpBlt:
		eff.Taken = int64(a) < int64(b)
	case OpBge:
		eff.Taken = int64(a) >= int64(b)
	case OpBltu:
		eff.Taken = a < b
	case OpBgeu:
		eff.Taken = a >= b

	case OpJal:
		dest, writeDest = st.PC+InstBytes, true
		eff.Taken = true
		eff.NextPC = uint64(i.Imm)
	case OpJalr:
		dest, writeDest = st.PC+InstBytes, true
		eff.Taken = true
		eff.NextPC = a + uint64(i.Imm)

	case OpNop:
		// nothing
	case OpHalt:
		st.Halted = true
		eff.Halted = true
		eff.NextPC = st.PC
	case OpTid:
		dest, writeDest = uint64(st.CtxID), true

	default:
		return Effect{}, fmt.Errorf("isa: exec: invalid opcode %d", uint8(i.Op))
	}

	if i.Op.IsBranch() && eff.Taken {
		eff.NextPC = uint64(i.Imm)
	}

	if writeDest && i.Rd != RegZero {
		r[i.Rd] = dest
		eff.WroteReg, eff.Dest, eff.DestVal = true, i.Rd, dest
	}
	st.PC = eff.NextPC
	return eff, nil
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
