// Package isa defines the instruction set architecture of the simulated
// machine: a small 64-bit load/store RISC with 32 general-purpose registers
// that hold either integer or IEEE-754 double-precision values.
//
// The ISA is deliberately minimal — it exists so that the MMT core
// (internal/core) has real instruction streams to fetch, split, rename,
// execute and commit. Semantics are defined by Exec, which the simulator
// uses as its functional oracle.
package isa

import "fmt"

// NumRegs is the number of architected general-purpose registers.
const NumRegs = 32

// Conventional register assignments used by the assembler and workloads.
const (
	RegZero = 0 // hard-wired zero
	RegRA   = 1 // return address
	RegSP   = 2 // stack pointer
)

// Op enumerates the instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero Op; decoding it is an error.
	OpInvalid Op = iota

	// Integer register-register ALU.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// Integer register-immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui // rd = imm << 32 (load upper immediate)

	// Floating point (operands are registers holding float64 bits).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpFsqrt
	OpFneg
	OpFabs
	OpFmin
	OpFmax
	OpFcvt  // int -> float64
	OpFcvti // float64 -> int (truncating)
	OpFlt   // rd = (f(rs1) < f(rs2)) ? 1 : 0
	OpFle
	OpFeq

	// Memory (64-bit words; addresses are byte addresses).
	OpLd // rd = mem[rs1+imm]
	OpSt // mem[rs1+imm] = rs2

	// Control flow. Branch/jump targets are absolute instruction
	// addresses carried in Imm.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal  // rd = pc+4; pc = imm
	OpJalr // rd = pc+4; pc = rs1+imm

	// Special.
	OpNop
	OpHalt
	OpTid // rd = hardware context id (differs per thread by construction)

	opMax // sentinel; keep last
)

// NumOps is the number of valid opcodes (excluding OpInvalid).
const NumOps = int(opMax) - 1

// Class groups opcodes by the functional unit and pipeline treatment they
// require.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPALU
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassHalt
)

var classNames = [...]string{
	ClassNop:    "nop",
	ClassIntALU: "int-alu",
	ClassIntMul: "int-mul",
	ClassIntDiv: "int-div",
	ClassFPALU:  "fp-alu",
	ClassFPMul:  "fp-mul",
	ClassFPDiv:  "fp-div",
	ClassLoad:   "load",
	ClassStore:  "store",
	ClassBranch: "branch",
	ClassJump:   "jump",
	ClassHalt:   "halt",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

type opInfo struct {
	name     string
	class    Class
	hasRd    bool
	hasRs1   bool
	hasRs2   bool
	hasImm   bool
	isBranch bool // conditional branch
}

var opTable = [opMax]opInfo{
	OpAdd:  {"add", ClassIntALU, true, true, true, false, false},
	OpSub:  {"sub", ClassIntALU, true, true, true, false, false},
	OpMul:  {"mul", ClassIntMul, true, true, true, false, false},
	OpDiv:  {"div", ClassIntDiv, true, true, true, false, false},
	OpRem:  {"rem", ClassIntDiv, true, true, true, false, false},
	OpAnd:  {"and", ClassIntALU, true, true, true, false, false},
	OpOr:   {"or", ClassIntALU, true, true, true, false, false},
	OpXor:  {"xor", ClassIntALU, true, true, true, false, false},
	OpSll:  {"sll", ClassIntALU, true, true, true, false, false},
	OpSrl:  {"srl", ClassIntALU, true, true, true, false, false},
	OpSra:  {"sra", ClassIntALU, true, true, true, false, false},
	OpSlt:  {"slt", ClassIntALU, true, true, true, false, false},
	OpSltu: {"sltu", ClassIntALU, true, true, true, false, false},

	OpAddi: {"addi", ClassIntALU, true, true, false, true, false},
	OpAndi: {"andi", ClassIntALU, true, true, false, true, false},
	OpOri:  {"ori", ClassIntALU, true, true, false, true, false},
	OpXori: {"xori", ClassIntALU, true, true, false, true, false},
	OpSlli: {"slli", ClassIntALU, true, true, false, true, false},
	OpSrli: {"srli", ClassIntALU, true, true, false, true, false},
	OpSrai: {"srai", ClassIntALU, true, true, false, true, false},
	OpSlti: {"slti", ClassIntALU, true, true, false, true, false},
	OpLui:  {"lui", ClassIntALU, true, false, false, true, false},

	OpFadd:  {"fadd", ClassFPALU, true, true, true, false, false},
	OpFsub:  {"fsub", ClassFPALU, true, true, true, false, false},
	OpFmul:  {"fmul", ClassFPMul, true, true, true, false, false},
	OpFdiv:  {"fdiv", ClassFPDiv, true, true, true, false, false},
	OpFsqrt: {"fsqrt", ClassFPDiv, true, true, false, false, false},
	OpFneg:  {"fneg", ClassFPALU, true, true, false, false, false},
	OpFabs:  {"fabs", ClassFPALU, true, true, false, false, false},
	OpFmin:  {"fmin", ClassFPALU, true, true, true, false, false},
	OpFmax:  {"fmax", ClassFPALU, true, true, true, false, false},
	OpFcvt:  {"fcvt", ClassFPALU, true, true, false, false, false},
	OpFcvti: {"fcvti", ClassFPALU, true, true, false, false, false},
	OpFlt:   {"flt", ClassFPALU, true, true, true, false, false},
	OpFle:   {"fle", ClassFPALU, true, true, true, false, false},
	OpFeq:   {"feq", ClassFPALU, true, true, true, false, false},

	OpLd: {"ld", ClassLoad, true, true, false, true, false},
	OpSt: {"st", ClassStore, false, true, true, true, false},

	OpBeq:  {"beq", ClassBranch, false, true, true, true, true},
	OpBne:  {"bne", ClassBranch, false, true, true, true, true},
	OpBlt:  {"blt", ClassBranch, false, true, true, true, true},
	OpBge:  {"bge", ClassBranch, false, true, true, true, true},
	OpBltu: {"bltu", ClassBranch, false, true, true, true, true},
	OpBgeu: {"bgeu", ClassBranch, false, true, true, true, true},
	OpJal:  {"jal", ClassJump, true, false, false, true, false},
	OpJalr: {"jalr", ClassJump, true, true, false, true, false},

	OpNop:  {"nop", ClassNop, false, false, false, false, false},
	OpHalt: {"halt", ClassHalt, false, false, false, false, false},
	OpTid:  {"tid", ClassIntALU, true, false, false, false, false},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if op.Valid() {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class returns the functional class of op.
func (op Op) Class() Class {
	if op.Valid() {
		return opTable[op].class
	}
	return ClassNop
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op.Valid() && opTable[op].isBranch }

// IsControl reports whether op can redirect the PC (branch or jump).
func (op Op) IsControl() bool {
	c := op.Class()
	return c == ClassBranch || c == ClassJump
}

// HasDest reports whether op writes a destination register.
func (op Op) HasDest() bool { return op.Valid() && opTable[op].hasRd }

// ControlTarget returns the statically known control-flow target of i: the
// absolute address a conditional branch or jal redirects to. The second
// return value is false for non-control instructions and for jalr, whose
// target is register-relative and unknowable without execution. The static
// analyzer (internal/static) and the disassembler both resolve targets
// through this single definition, so they cannot drift.
func (i Inst) ControlTarget() (uint64, bool) {
	if !i.Op.IsControl() || i.Op == OpJalr {
		return 0, false
	}
	return uint64(i.Imm), true
}

// IsCall reports whether i is a direct jump that links a return address
// (jal with a live destination): the static analyzer treats it as a call
// that falls through to the next instruction after the callee returns.
func (i Inst) IsCall() bool { return i.Op == OpJal && i.Rd != RegZero }

// IsReturn reports whether i is the conventional function return
// (jalr through the return-address register, discarding the link).
func (i Inst) IsReturn() bool { return i.Op == OpJalr && i.Rs1 == RegRA && i.Rd == RegZero }

// OpByName returns the opcode with the given assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := OpInvalid + 1; op < opMax; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// InstBytes is the architectural size of one instruction in memory.
// Instruction addresses advance by InstBytes.
const InstBytes = 4

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	Rd  uint8 // destination register, if Op.HasDest()
	Rs1 uint8
	Rs2 uint8
	Imm int64 // immediate operand or absolute branch/jump target
}

// Nop returns a no-op instruction.
func Nop() Inst { return Inst{Op: OpNop} }

// Sources returns the architected source registers read by i.
// The second return value is the number of valid entries (0–2).
func (i Inst) Sources() ([2]uint8, int) {
	var srcs [2]uint8
	n := 0
	info := opTable[i.Op]
	if info.hasRs1 {
		srcs[n] = i.Rs1
		n++
	}
	if info.hasRs2 {
		srcs[n] = i.Rs2
		n++
	}
	return srcs, n
}

// Dest returns the destination register and whether one exists. Writes to
// register zero are architecturally discarded and reported as no dest.
func (i Inst) Dest() (uint8, bool) {
	if opTable[i.Op].hasRd && i.Rd != RegZero {
		return i.Rd, true
	}
	return 0, false
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	info := opTable[i.Op]
	switch {
	case i.Op == OpNop || i.Op == OpHalt:
		return info.name
	case i.Op == OpTid:
		return fmt.Sprintf("%s r%d", info.name, i.Rd)
	case i.Op == OpLui:
		return fmt.Sprintf("%s r%d, %d", info.name, i.Rd, i.Imm)
	case i.Op == OpLd:
		return fmt.Sprintf("%s r%d, %d(r%d)", info.name, i.Rd, i.Imm, i.Rs1)
	case i.Op == OpSt:
		return fmt.Sprintf("%s r%d, %d(r%d)", info.name, i.Rs2, i.Imm, i.Rs1)
	case info.isBranch:
		return fmt.Sprintf("%s r%d, r%d, 0x%x", info.name, i.Rs1, i.Rs2, i.Imm)
	case i.Op == OpJal:
		return fmt.Sprintf("%s r%d, 0x%x", info.name, i.Rd, i.Imm)
	case i.Op == OpJalr:
		return fmt.Sprintf("%s r%d, %d(r%d)", info.name, i.Rd, i.Imm, i.Rs1)
	case info.hasRs2:
		return fmt.Sprintf("%s r%d, r%d, r%d", info.name, i.Rd, i.Rs1, i.Rs2)
	case info.hasImm:
		return fmt.Sprintf("%s r%d, r%d, %d", info.name, i.Rd, i.Rs1, i.Imm)
	case info.hasRs1:
		return fmt.Sprintf("%s r%d, r%d", info.name, i.Rd, i.Rs1)
	default:
		return info.name
	}
}
