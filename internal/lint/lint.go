// Package lint is the determinism vettool behind cmd/mmtvet. Simulation
// results must be byte-identical at any -j: the runner memoizes outcomes
// by content-addressed key, the golden tests pin dynamic instruction
// counts, and the serving layer dedups concurrent submissions — all of
// which collapses if a simulation path consults a nondeterministic
// source. The analyzer walks the import closure of the simulation roots
// (internal/core, internal/sim, and everything mmt/* they reach) and
// flags the classic leaks:
//
//   - ranging over a map (iteration order differs run to run);
//   - time.Now (wall-clock dependent results);
//   - importing math/rand or math/rand/v2 (unseeded global state);
//   - materializing maps.Keys/maps.Values without sorting (the slice
//     inherits map iteration order);
//   - floating-point accumulation in non-canonical order (+= on a float
//     inside a map or channel range: FP addition is not associative, so
//     even a "commutative" reduction changes bits with the order).
//
// A map range whose effect is order-insensitive (the results are sorted
// immediately afterwards, or it only accumulates a commutative reduction)
// is suppressed with a "mmtvet:ok" comment on the range line; the same
// annotation on the offending line suppresses the other rules. Note the
// float rule deliberately fires inside annotated map ranges: an integer
// sum is commutative, a float sum is not. time.Now and math/rand have no
// sanctioned use inside the closure.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one determinism violation.
type Finding struct {
	// Pkg is the import path of the offending package.
	Pkg string `json:"pkg"`
	// Pos is the file:line:col position string.
	Pos string `json:"pos"`
	// Code identifies the rule: map-range, time-now, math-rand.
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Code, f.Msg)
}

// Rule codes.
const (
	CodeMapRange = "map-range"
	CodeTimeNow  = "time-now"
	CodeMathRand = "math-rand"
	CodeMapKeys  = "map-keys"
	CodeFPAccum  = "fp-accum"
)

// Module is the import-path prefix of packages the analyzer follows.
const Module = "mmt"

// Check analyzes the import closure of roots (mmt/... import paths) in
// the module rooted at dir, and returns the findings sorted by position.
// The type checker resolves imports from source, so dir must be the
// module root (where go.mod lives).
func Check(dir string, roots []string) ([]Finding, error) {
	// srcimporter resolves "mmt/..." through go/build, which finds the
	// module only when the working directory is the module root.
	restore, err := enterDir(dir)
	if err != nil {
		return nil, err
	}
	defer restore()

	pkgs, err := closure(dir, roots)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := checkPackage(fset, imp, dir, pkg)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Code < findings[j].Code
	})
	return findings, nil
}

// enterDir chdirs to dir and returns a restore function.
func enterDir(dir string) (func(), error) {
	old, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	if err := os.Chdir(dir); err != nil {
		return nil, err
	}
	return func() { os.Chdir(old) }, nil //nolint:errcheck // best-effort restore
}

// pkgDir maps an mmt/... import path to its directory under the module
// root.
func pkgDir(root, path string) string {
	return filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(path, Module+"/")))
}

// closure BFS-walks mmt/* imports from the roots and returns the
// reachable import paths, sorted.
func closure(dir string, roots []string) ([]string, error) {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if seen[path] {
			continue
		}
		seen[path] = true
		imports, err := packageImports(pkgDir(dir, path))
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		for _, imp := range imports {
			if imp == Module || strings.HasPrefix(imp, Module+"/") {
				queue = append(queue, imp)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen { // mmtvet:ok — sorted immediately below
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// packageImports parses the non-test source files in dir and returns
// their import paths.
func packageImports(dir string) ([]string, error) {
	files, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// sourceFiles lists dir's buildable non-test Go files, sorted.
func sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// checkPackage type-checks one package and applies the determinism rules.
func checkPackage(fset *token.FileSet, imp types.Importer, dir, path string) ([]Finding, error) {
	names, err := sourceFiles(pkgDir(dir, path))
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	if _, err := conf.Check(path, fset, files, info); err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}

	var findings []Finding
	add := func(pos token.Pos, code, format string, args ...any) {
		findings = append(findings, Finding{
			Pkg:  path,
			Pos:  fset.Position(pos).String(),
			Code: code,
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		okLines := suppressedLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				p, _ := strconv.Unquote(n.Path.Value)
				if p == "math/rand" || p == "math/rand/v2" {
					add(n.Pos(), CodeMathRand,
						"import of %s: unseeded nondeterministic state on a simulation path", p)
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap &&
						!okLines[fset.Position(n.Pos()).Line] {
						add(n.Pos(), CodeMapRange,
							"range over %s: map iteration order varies run to run (sort first, or annotate mmtvet:ok if order-insensitive)",
							tv.Type)
					}
				}
			case *ast.SelectorExpr:
				if obj, ok := info.Uses[n.Sel]; ok {
					if fn, isFn := obj.(*types.Func); isFn && fn.Pkg() != nil &&
						fn.Pkg().Path() == "time" && fn.Name() == "Now" {
						add(n.Pos(), CodeTimeNow,
							"time.Now on a simulation path: results become wall-clock dependent")
					}
				}
			}
			return true
		})
		checkMapKeys(fset, info, f, okLines, add)
		checkFPAccum(fset, info, f, okLines, add)
	}
	return findings, nil
}

// calleeOf resolves a call's target to (package path, function name),
// unwrapping explicit generic instantiation. Non-package calls (methods,
// locals, builtins) return empty strings.
func calleeOf(info *types.Info, call *ast.CallExpr) (string, string) {
	fun := call.Fun
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = f.X
	case *ast.IndexListExpr:
		fun = f.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// isMapsKeys reports whether call is maps.Keys or maps.Values (stdlib or
// a vendored */maps package with the same shape).
func isMapsKeys(info *types.Info, call *ast.CallExpr) bool {
	pkg, name := calleeOf(info, call)
	if name != "Keys" && name != "Values" {
		return false
	}
	return pkg == "maps" || strings.HasSuffix(pkg, "/maps")
}

// sortsIdent reports whether stmt sorts id in place: sort.Strings(id),
// sort.Slice(id, ...), slices.Sort(id), and friends.
func sortsIdent(info *types.Info, stmt ast.Stmt, id *ast.Ident) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	pkg, name := calleeOf(info, call)
	isSort := (pkg == "sort" && (strings.HasPrefix(name, "Slice") ||
		name == "Strings" || name == "Ints" || name == "Float64s")) ||
		((pkg == "slices" || strings.HasSuffix(pkg, "/slices")) && strings.HasPrefix(name, "Sort"))
	if !isSort {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && info.ObjectOf(arg) == info.ObjectOf(id)
}

// checkMapKeys flags maps.Keys/maps.Values materializations that escape
// unsorted. Sanctioned shapes: the call is wrapped in slices.Sorted /
// SortedFunc / SortedStableFunc, or the materialized slice is sorted by
// the very next statement, or the line carries mmtvet:ok.
func checkMapKeys(fset *token.FileSet, info *types.Info, f *ast.File, okLines map[int]bool,
	add func(pos token.Pos, code, format string, args ...any)) {
	sorted := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := calleeOf(info, call); (pkg == "slices" || strings.HasSuffix(pkg, "/slices")) &&
			strings.HasPrefix(name, "Sorted") {
			for _, arg := range call.Args {
				markMapsKeys(info, arg, sorted)
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || i+1 >= len(block.List) || !sortsIdent(info, block.List[i+1], id) {
				continue
			}
			markMapsKeys(info, as.Rhs[0], sorted)
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMapsKeys(info, call) || sorted[call] {
			return true
		}
		if okLines[fset.Position(call.Pos()).Line] {
			return true
		}
		_, name := calleeOf(info, call)
		add(call.Pos(), CodeMapKeys,
			"maps.%s materialized without sorting: the slice inherits map iteration order (wrap in slices.Sorted, sort on the next line, or annotate mmtvet:ok)",
			name)
		return true
	})
}

// markMapsKeys records every maps.Keys/Values call under expr as sorted.
func markMapsKeys(info *types.Info, expr ast.Expr, sorted map[*ast.CallExpr]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isMapsKeys(info, c) {
			sorted[c] = true
		}
		return true
	})
}

// checkFPAccum flags floating-point compound accumulation (+=, -=, *=)
// inside a map or channel range: the iteration order is nondeterministic
// and FP addition is not associative, so the accumulated bits differ run
// to run even when every element is visited. This fires inside map
// ranges annotated mmtvet:ok — the annotation asserts commutativity,
// which float addition does not have; suppress on the accumulation line
// itself if the drift is genuinely acceptable.
func checkFPAccum(fset *token.FileSet, info *types.Info, f *ast.File, okLines map[int]bool,
	add func(pos token.Pos, code, format string, args ...any)) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		var kind string
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			kind = "map"
		case *types.Chan:
			kind = "channel"
		default:
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch as.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			default:
				return true
			}
			lt, ok := info.Types[as.Lhs[0]]
			if !ok {
				return true
			}
			b, ok := lt.Type.Underlying().(*types.Basic)
			if !ok || b.Info()&types.IsFloat == 0 {
				return true
			}
			if okLines[fset.Position(as.Pos()).Line] {
				return true
			}
			add(as.Pos(), CodeFPAccum,
				"floating-point accumulation in %s iteration order: FP addition is not associative, so the result bits depend on visit order (accumulate over a sorted slice instead)",
				kind)
			return true
		})
		return true
	})
}

// suppressedLines collects the lines carrying a "mmtvet:ok" annotation.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "mmtvet:ok") {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
