// Package badpkg is the mmtvet negative fixture: it commits every
// determinism sin the analyzer knows, plus one sanctioned (annotated)
// map range. The directory lives under testdata so the go tool never
// builds it; only the analyzer reads it.
package badpkg

import (
	"math/rand"
	"time"
)

// Tally sums a map's values (order-insensitive, annotated) and then
// leaks iteration order into the result slice (violation).
func Tally(m map[string]int) (int, []string) {
	sum := 0
	for _, v := range m { // mmtvet:ok — commutative sum
		sum += v
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return sum, keys
}

// Stamp depends on the wall clock (violation).
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter draws from the unseeded global source (import violation).
func Jitter() int { return rand.Int() }
