// Package badpkg is the mmtvet negative fixture: it commits every
// determinism sin the analyzer knows, plus one sanctioned (annotated)
// map range. The directory lives under testdata so the go tool never
// builds it; only the analyzer reads it.
package badpkg

import (
	"maps"
	"math/rand"
	"slices"
	"sort"
	"time"
)

// Tally sums a map's values (order-insensitive, annotated) and then
// leaks iteration order into the result slice (violation).
func Tally(m map[string]int) (int, []string) {
	sum := 0
	for _, v := range m { // mmtvet:ok — commutative sum
		sum += v
	}
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return sum, keys
}

// Stamp depends on the wall clock (violation).
func Stamp() int64 { return time.Now().UnixNano() }

// Labels materializes key order three ways: unsorted (violation),
// wrapped in slices.Sorted (sanctioned), and sorted on the next line
// (sanctioned).
func Labels(m map[string]int) ([]string, []string, []string) {
	unsorted := slices.Collect(maps.Keys(m))
	wrapped := slices.Sorted(maps.Keys(m))
	after := slices.Collect(maps.Keys(m))
	sort.Strings(after)
	return unsorted, wrapped, after
}

// Mean accumulates floats in map order (violation): the range
// annotation silences map-range, but a float sum is not commutative,
// so fp-accum still fires on the += line.
func Mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // mmtvet:ok — the annotation does not cover the float sum below
		sum += v
	}
	return sum / float64(len(m))
}

// Jitter draws from the unseeded global source (import violation).
func Jitter() int { return rand.Int() }
