package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// TestSimulationClosureClean is the enforcement test behind the CI vet
// step: the simulation packages' import closure carries no unsuppressed
// nondeterminism.
func TestSimulationClosureClean(t *testing.T) {
	findings, err := Check(moduleRoot(t), []string{"mmt/internal/core", "mmt/internal/sim"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("determinism: %s", f)
	}
}

// TestFixtureViolations proves the analyzer actually fires: the badpkg
// fixture commits one of each violation plus the sanctioned shapes
// (annotated map range, slices.Sorted-wrapped and sort-next-line
// maps.Keys) that must stay suppressed.
func TestFixtureViolations(t *testing.T) {
	findings, err := Check(moduleRoot(t), []string{"mmt/internal/lint/testdata/badpkg"})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Code]++
		if !strings.Contains(f.Pos, "bad.go") {
			t.Errorf("finding outside the fixture: %s", f)
		}
	}
	want := map[string]int{CodeMapRange: 1, CodeTimeNow: 1, CodeMathRand: 1, CodeMapKeys: 1, CodeFPAccum: 1}
	for code, n := range want {
		if counts[code] != n {
			t.Errorf("%s findings = %d, want %d (all: %v)", code, counts[code], n, findings)
		}
	}
	if len(findings) != 5 {
		t.Errorf("total findings = %d, want 5 (annotated/sorted sites must stay suppressed): %v",
			len(findings), findings)
	}
}

// TestClosureFollowsImports: the closure reaches transitive mmt/*
// dependencies of the roots, not just the roots themselves.
func TestClosureFollowsImports(t *testing.T) {
	pkgs, err := closure(moduleRoot(t), []string{"mmt/internal/sim"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, p := range pkgs {
		got[p] = true
	}
	for _, want := range []string{"mmt/internal/sim", "mmt/internal/core", "mmt/internal/prof", "mmt/internal/isa"} {
		if !got[want] {
			t.Errorf("closure missing %s (got %v)", want, pkgs)
		}
	}
}
