package core

import (
	"fmt"

	"mmt/internal/branch"
	"mmt/internal/cache"
	"mmt/internal/isa"
)

// Config holds every architectural parameter of the core. DefaultConfig
// reproduces Table 4 of the paper.
type Config struct {
	Threads int

	// Widths (instructions per cycle).
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	RenameWidth int

	// MaxFetchGroups bounds how many thread groups fetch in one cycle
	// (the ICOUNT.2.8 policy of Tullsen et al. [6], which the paper's
	// core follows): shared fetch lets one merged group use the whole
	// width where the baseline splits it across threads.
	MaxFetchGroups int

	// Window sizes.
	FetchQueue int
	IQSize     int
	ROBSize    int
	LSQSize    int

	// Functional units.
	IntALUs int
	FPUs    int
	LSPorts int

	// Front end.
	Branch          branch.Config
	TraceCacheBytes int
	// TraceHops is how many taken branches fetch may cross per cycle on
	// a trace-cache hit. The paper reports the trace cache's bandwidth
	// contribution was negligible (§5) — the baseline is limited by one
	// fetch block per thread turn — so the default keeps trace hits for
	// perfect trace prediction only.
	TraceHops int
	// MispredictPenalty is the front-end refill delay after a resolved
	// misprediction redirects fetch.
	MispredictPenalty uint64
	// DivergeRedirectPenalty is the cheaper front-end re-steer paid by a
	// subgroup that leaves the followed trace path at a divergence (the
	// target trace is typically resident; no resolution wait is needed
	// because the other subgroup's outcome already proves the branch
	// resolved both ways).
	DivergeRedirectPenalty uint64

	// Memory system.
	Mem cache.HierarchyConfig

	// MMT mechanisms (Table 5 design points).
	SharedFetch bool // MMT-F: ITID-tagged merged fetch + MERGE/DETECT/CATCHUP
	SharedExec  bool // MMT-FX: RST-driven split stage, merged execution
	RegMerge    bool // MMT-FXR: commit-time register value merging

	// Sync selects the remerge mechanism (ablation; Sync policies other
	// than SyncFHB reproduce prior-work baselines).
	Sync SyncPolicy
	// HintParkTimeout bounds how long a group parks at a software hint
	// waiting for the other threads (SyncHints only).
	HintParkTimeout uint64
	// LVIP selects the load-value-identical policy for private-memory
	// merged loads (ablation).
	LVIP LVIPMode
	// AheadDuty is the CATCHUP ahead-thread fetch duty cycle: it fetches
	// every AheadDuty-th cycle while being caught (0 = fully gated).
	AheadDuty uint64

	// FHBSize is the per-thread Fetch History Buffer CAM size (Table 4:
	// 32 entries; swept 8–128 in Fig. 7(a)/(c)).
	FHBSize int
	// LVIPSize is the Load-Value-Identical-Predictor table size
	// (Table 4: 4K entries).
	LVIPSize int
	// RegMergePorts bounds register-merge value comparisons per cycle
	// (the paper performs them only "if there are read ports available").
	RegMergePorts int

	// ValidateSplits cross-checks every split-stage decision against the
	// structural Filter+Chooser network of §4.2.2 (SplitNetwork) and
	// panics on divergence — a debug invariant used by the fuzzer.
	ValidateSplits bool

	// MaxInsts bounds per-thread committed instructions (0 = no bound);
	// the simulation also ends when all contexts halt.
	MaxInsts uint64
	// MaxCycles aborts runaway simulations (0 = no bound).
	MaxCycles uint64
}

// DefaultConfig returns the Table 4 machine for n hardware threads.
func DefaultConfig(n int) Config {
	return Config{
		Threads:                n,
		FetchWidth:             8,
		IssueWidth:             8,
		CommitWidth:            8,
		RenameWidth:            8,
		MaxFetchGroups:         1,
		FetchQueue:             32,
		IQSize:                 64,
		ROBSize:                256,
		LSQSize:                64,
		IntALUs:                6,
		FPUs:                   3,
		LSPorts:                2,
		Branch:                 branch.DefaultConfig(n),
		TraceCacheBytes:        1 << 20,
		MispredictPenalty:      8,
		DivergeRedirectPenalty: 3,
		Mem:                    cache.DefaultHierarchyConfig(),
		SharedFetch:            true,
		SharedExec:             true,
		RegMerge:               true,
		Sync:                   SyncFHB,
		HintParkTimeout:        200,
		LVIP:                   LVIPPredict,
		AheadDuty:              4,
		FHBSize:                32,
		LVIPSize:               4096,
		RegMergePorts:          2,
		MaxCycles:              0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Threads < 1 || c.Threads > MaxThreads {
		return fmt.Errorf("core: %d threads outside 1–%d", c.Threads, MaxThreads)
	}
	if c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 || c.RenameWidth < 1 {
		return fmt.Errorf("core: non-positive pipeline width")
	}
	if c.MaxFetchGroups < 1 {
		return fmt.Errorf("core: MaxFetchGroups must be >= 1")
	}
	if c.ROBSize < 1 || c.IQSize < 1 || c.LSQSize < 1 || c.FetchQueue < 1 {
		return fmt.Errorf("core: non-positive window size")
	}
	if c.IntALUs < 1 || c.FPUs < 1 || c.LSPorts < 1 {
		return fmt.Errorf("core: non-positive unit count")
	}
	if c.SharedExec && !c.SharedFetch {
		return fmt.Errorf("core: shared execution requires shared fetch")
	}
	if c.RegMerge && !c.SharedExec {
		return fmt.Errorf("core: register merging requires shared execution")
	}
	if c.SharedFetch && c.FHBSize < 1 {
		return fmt.Errorf("core: shared fetch requires FHBSize >= 1")
	}
	return nil
}

// SyncPolicy selects how divergent threads find their remerge points.
type SyncPolicy uint8

const (
	// SyncFHB is the paper's mechanism: Fetch History Buffers detect the
	// remerge point in hardware, CATCHUP resynchronizes (§4.1).
	SyncFHB SyncPolicy = iota
	// SyncHints models the Thread Fusion baseline [36]: software-provided
	// remerge points (statically, the join targets of forward branches);
	// a divergent thread group parks at a hint until the others arrive
	// or a timeout expires. No FHB, no CATCHUP priority boost.
	SyncHints
	// SyncNone disables remerge detection entirely: threads re-join only
	// if their fetch PCs happen to coincide.
	SyncNone
)

func (s SyncPolicy) String() string {
	switch s {
	case SyncFHB:
		return "fhb"
	case SyncHints:
		return "hints"
	case SyncNone:
		return "none"
	}
	return "?"
}

// ParseSyncPolicy resolves a policy by its String name.
func ParseSyncPolicy(name string) (SyncPolicy, error) {
	switch name {
	case "fhb":
		return SyncFHB, nil
	case "hints":
		return SyncHints, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("core: unknown sync policy %q (want fhb, hints or none)", name)
}

// LVIPMode selects the private-memory merged-load policy.
type LVIPMode uint8

const (
	// LVIPPredict is the paper's predictor: predict identical until the
	// PC mispredicts; verify and roll back (§4.2.5).
	LVIPPredict LVIPMode = iota
	// LVIPOff always splits private merged loads (no prediction).
	LVIPOff
	// LVIPOracle consults the actual values at the split stage: merge
	// exactly when the values match, with no rollbacks — the upper bound
	// on what any load-value-identical predictor could achieve.
	LVIPOracle
)

func (m LVIPMode) String() string {
	switch m {
	case LVIPPredict:
		return "predict"
	case LVIPOff:
		return "off"
	case LVIPOracle:
		return "oracle"
	}
	return "?"
}

// execLatency returns the execution latency in cycles for a uop class
// (loads and stores are handled by the memory path).
func execLatency(cl isa.Class) uint64 {
	switch cl {
	case isa.ClassIntALU, isa.ClassBranch, isa.ClassJump, isa.ClassNop, isa.ClassHalt:
		return 1
	case isa.ClassIntMul:
		return 3
	case isa.ClassIntDiv:
		return 12
	case isa.ClassFPALU:
		return 2
	case isa.ClassFPMul:
		return 4
	case isa.ClassFPDiv:
		return 12
	default:
		return 1
	}
}

// fuKind maps a class onto one of the two FU pools (int ALUs serve
// integer, branch and memory-address work; FPUs serve floating point).
type fuKind uint8

const (
	fuInt fuKind = iota
	fuFP
)

func fuOf(cl isa.Class) fuKind {
	switch cl {
	case isa.ClassFPALU, isa.ClassFPMul, isa.ClassFPDiv:
		return fuFP
	default:
		return fuInt
	}
}
