package core

import (
	"mmt/internal/isa"
	"mmt/internal/prog"
)

// RST is the Register Sharing Table (paper §4.2.1–4.2.3). The hardware
// keeps one bit per thread pair per architected register, set when the two
// threads' architected→physical mappings are identical. The model tracks
// the mappings themselves as *versions*: a merged register write installs
// one fresh version for every thread in the instruction's ITID, a split
// write installs distinct versions, and a pair's RST bit is "versions
// equal". This is exactly mapping identity — values are never consulted,
// except by the commit-time register-merging mechanism, which re-unifies
// versions after proving value equality.
type RST struct {
	nthreads int
	version  [MaxThreads][isa.NumRegs]uint64
	nextVer  uint64
	// byMerge marks registers whose current cross-thread equality was
	// established by register merging (for Fig. 5(b) attribution).
	byMerge [MaxThreads][isa.NumRegs]bool

	// Updates counts destination-register sharing updates (the RST is
	// written every rename; an energy event).
	Updates uint64
	// MergeSets counts pair bits set back to 1 by register merging.
	MergeSets uint64
}

// NewRST builds the table for n threads in the given workload mode. In ME
// mode all architected registers start mapping-identical; in MT mode all
// except the stack pointer do (paper §4.2.6).
func NewRST(n int, mode prog.Mode) *RST {
	r := &RST{nthreads: n}
	for reg := 0; reg < isa.NumRegs; reg++ {
		r.nextVer++
		v := r.nextVer
		for t := 0; t < n; t++ {
			r.version[t][reg] = v
		}
	}
	if mode == prog.ModeMT {
		for t := 0; t < n; t++ {
			r.nextVer++
			r.version[t][isa.RegSP] = r.nextVer
		}
	}
	return r
}

// Shared reports whether threads i and j currently have identical mappings
// for reg (the RST pair bit).
func (r *RST) Shared(i, j int, reg uint8) bool {
	return r.version[i][reg] == r.version[j][reg]
}

// WriteMerged installs one fresh destination mapping shared by every
// thread in itid (an execute-identical instruction's single physical
// destination recorded in all threads' RATs, §4.2.4).
func (r *RST) WriteMerged(itid ITID, reg uint8) {
	r.Updates++
	if reg == isa.RegZero {
		return
	}
	r.nextVer++
	v := r.nextVer
	for t := 0; t < r.nthreads; t++ {
		if itid.Has(t) {
			r.version[t][reg] = v
			r.byMerge[t][reg] = false
		}
	}
}

// WriteSplit installs a fresh private mapping for thread t.
func (r *RST) WriteSplit(t int, reg uint8) {
	r.Updates++
	if reg == isa.RegZero {
		return
	}
	r.nextVer++
	r.version[t][reg] = r.nextVer
	r.byMerge[t][reg] = false
}

// MergeInto records that register merging proved thread other's reg holds
// the same value as thread owner's: other adopts owner's mapping and the
// pair bit becomes 1 (§4.2.7).
func (r *RST) MergeInto(owner, other int, reg uint8) {
	if reg == isa.RegZero || r.version[owner][reg] == r.version[other][reg] {
		return
	}
	r.version[other][reg] = r.version[owner][reg]
	r.byMerge[other][reg] = true
	r.MergeSets++
}

// Partition splits itid into the minimal set of sub-ITIDs such that within
// each sub-ITID every source register in srcs is mapping-identical across
// all member threads. This is the architectural effect of the paper's
// Filter + Chooser cascade (§4.2.2): repeatedly choosing the valid sharing
// combination with the most threads yields exactly the equivalence classes
// of the "all sources shared" relation.
//
// The returned classes are ordered by descending size (chooser order),
// ties broken by lowest member thread. regMergeAssisted is set per class
// when the class has ≥2 threads and any member's source equality was
// established by register merging.
func (r *RST) Partition(itid ITID, srcs []uint8) (classes []ITID, regMergeAssisted []bool) {
	members := itid.Threads()
	if len(members) <= 1 {
		return []ITID{itid}, []bool{false}
	}
	assigned := make(map[int]int, len(members)) // thread -> class index
	for _, t := range members {
		placed := false
		for ci := range classes {
			rep := classes[ci].First()
			same := true
			for _, s := range srcs {
				if s != isa.RegZero && !r.Shared(rep, t, s) {
					same = false
					break
				}
			}
			if same {
				classes[ci] = classes[ci].With(t)
				assigned[t] = ci
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, ITIDOf(t))
			assigned[t] = len(classes) - 1
		}
	}
	// Chooser order: descending size, stable by first member.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && better(classes[j], classes[j-1]); j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	regMergeAssisted = make([]bool, len(classes))
	for ci, cl := range classes {
		if cl.Count() < 2 {
			continue
		}
		for _, t := range cl.Threads() {
			for _, s := range srcs {
				if s != isa.RegZero && r.byMerge[t][s] {
					regMergeAssisted[ci] = true
				}
			}
		}
	}
	return classes, regMergeAssisted
}

func better(a, b ITID) bool {
	if a.Count() != b.Count() {
		return a.Count() > b.Count()
	}
	return a.First() < b.First()
}

// Desync installs fresh private mappings for every register written while
// threads run divergent paths — the model calls WriteSplit directly; this
// helper exists for tests that force whole-file divergence.
func (r *RST) Desync(t int) {
	for reg := 1; reg < isa.NumRegs; reg++ {
		r.WriteSplit(t, uint8(reg))
	}
}

// SharedCount returns how many architected registers are mapping-identical
// between threads i and j (observability for tests/stats).
func (r *RST) SharedCount(i, j int) int {
	n := 0
	for reg := 0; reg < isa.NumRegs; reg++ {
		if r.Shared(i, j, uint8(reg)) {
			n++
		}
	}
	return n
}
