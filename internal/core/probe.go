package core

// This file is the attribution-probe seam: a second, finer-grained
// observer next to the obs.Recorder hooks. Where the recorder streams
// discrete events for timelines, a Probe receives per-PC attribution
// callbacks (commit classification, divergence/remerge/catchup/LVIP
// charging) plus a per-cycle CPI-stack component, so a profiler can
// answer "which static instruction paid for this run" without the core
// importing the profiler. Every call site guards on the probe being
// nil — an unprobed core pays one pointer compare per site and
// allocates nothing, exactly like the recorder hooks.

// CommitClass classifies one committed uop for per-PC attribution
// (the per-uop view of the Fig. 5b per-instruction classes).
type CommitClass uint8

const (
	// CommitMerged: executed once for several threads (execute-identical).
	CommitMerged CommitClass = iota
	// CommitSplit: fetched merged but executed per-thread.
	CommitSplit
	// CommitSolo: fetched and executed for a single thread.
	CommitSolo

	NumCommitClasses
)

func (c CommitClass) String() string {
	switch c {
	case CommitMerged:
		return "merged"
	case CommitSplit:
		return "split"
	case CommitSolo:
		return "solo"
	}
	return "?"
}

// CycleComponent is the CPI-stack bucket one core cycle is charged to.
// Every cycle lands in exactly one component, so over a run the
// component counts sum to Stats.Cycles. Classification priority:
// base (something committed) > rollback (inside an LVIP rollback
// redirect window) > catchup (a behind group is chasing an ahead group)
// > drain (some thread's stream is exhausted while others still run)
// > fetch-stall (no commit and none of the above — front-end or
// backpressure limited, the catch-all for memory/queue stalls).
type CycleComponent uint8

const (
	// CycBase: at least one uop committed this cycle.
	CycBase CycleComponent = iota
	// CycFetchStall: nothing committed; no more specific cause applies.
	CycFetchStall
	// CycCatchup: nothing committed while a CATCHUP episode was active.
	CycCatchup
	// CycRollback: nothing committed inside an LVIP rollback penalty
	// window.
	CycRollback
	// CycDrain: nothing committed and at least one thread has drained
	// (exhausted its stream) while the machine finishes the rest.
	CycDrain

	NumCycleComponents
)

func (c CycleComponent) String() string {
	switch c {
	case CycBase:
		return "base"
	case CycFetchStall:
		return "fetch-stall"
	case CycCatchup:
		return "catchup"
	case CycRollback:
		return "rollback"
	case CycDrain:
		return "drain"
	}
	return "?"
}

// Probe receives per-PC attribution callbacks from the core. The core is
// single-threaded, so implementations need no locking; calls carry the
// static PC being charged (0 when the site is unknown, e.g. a remerge of
// the initial groups). Attaching a probe never changes simulated
// behaviour, only reports it.
type Probe interface {
	// CommitUop: one uop at pc committed with the given classification
	// for threads member threads.
	CommitUop(pc uint64, class CommitClass, threads int)
	// Diverge: the group fetching pc split into parts subgroups.
	Diverge(pc uint64, parts int)
	// Remerge: two groups unified at remergePC (the common PC both will
	// fetch next); the episode began at divergence site divergePC (0 if
	// unknown) and spanned takenBranches taken branches. The
	// (divergePC, remergePC) pair is the dynamically observed
	// reconvergence edge internal/static cross-validates against its
	// post-dominator prediction.
	Remerge(divergePC, remergePC uint64, takenBranches uint64)
	// CatchupCycle: a behind group created at divergence site divergePC
	// spent this cycle in CATCHUP mode.
	CatchupCycle(divergePC uint64)
	// LVIPHit: a merged load at pc verified value-identical.
	LVIPHit(pc uint64)
	// LVIPMispredict: a merged load at pc failed verification; the
	// rollback costs penaltyCycles of redirect and squashed uops.
	LVIPMispredict(pc uint64, penaltyCycles, squashed uint64)
	// Cycle charges one core cycle to a CPI-stack component.
	Cycle(comp CycleComponent)
}

// AttachProbe wires an attribution probe into the core. Like Attach, it
// may be called at most once, before Run; passing nil leaves the core
// unprobed (the zero-cost default).
func (c *Core) AttachProbe(p Probe) { c.probe = p }

// probeCommit classifies and reports one committed uop.
func (c *Core) probeCommit(u *uop) {
	if c.probe == nil {
		return
	}
	class := CommitSolo
	switch {
	case u.execIdentical():
		class = CommitMerged
	case u.fetchIdenticalOnly():
		class = CommitSplit
	}
	c.probe.CommitUop(u.pc, class, u.itid.Count())
}

// probeCycle charges the cycle that just executed (index now) to a
// CPI-stack component and one CatchupCycle per live behind group. It
// runs at the end of Cycle, after the commit stage bumped the counters.
func (c *Core) probeCycle(now uint64) {
	if c.probe == nil {
		return
	}
	comp := CycFetchStall
	switch {
	case c.stats.CommittedUops > c.probeCommitted:
		comp = CycBase
	case now < c.rollbackUntil:
		comp = CycRollback
	case c.anyCatchup():
		comp = CycCatchup
	case c.anyDrained():
		comp = CycDrain
	}
	c.probeCommitted = c.stats.CommittedUops
	c.probe.Cycle(comp)
	for _, g := range c.groups {
		if !g.dead && g.ahead != nil {
			c.probe.CatchupCycle(g.divergePC)
		}
	}
}

// anyCatchup reports whether any live group is in a CATCHUP episode.
func (c *Core) anyCatchup() bool {
	for _, g := range c.groups {
		if !g.dead && g.ahead != nil {
			return true
		}
	}
	return false
}

// anyDrained reports whether any thread's stream is exhausted (halted or
// instruction-capped) while the machine still runs.
func (c *Core) anyDrained() bool {
	for _, s := range c.streams {
		if _, ok := s.nextPC(); !ok {
			return true
		}
	}
	return false
}
