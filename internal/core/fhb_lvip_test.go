package core

import "testing"

func TestFHBRecordContains(t *testing.T) {
	f := NewFHB(4)
	if f.Contains(0x100) {
		t.Error("empty FHB matched")
	}
	f.Record(0x100)
	f.Record(0x200)
	if !f.Contains(0x100) || !f.Contains(0x200) {
		t.Error("recorded targets missing")
	}
	if f.Occupancy() != 2 {
		t.Errorf("occupancy = %d", f.Occupancy())
	}
}

func TestFHBWrapsOldest(t *testing.T) {
	f := NewFHB(2)
	f.Record(1)
	f.Record(2)
	f.Record(3) // evicts 1
	if f.Contains(1) {
		t.Error("oldest entry survived")
	}
	if !f.Contains(2) || !f.Contains(3) {
		t.Error("recent entries missing")
	}
}

func TestFHBClear(t *testing.T) {
	f := NewFHB(4)
	f.Record(1)
	f.Clear()
	if f.Contains(1) || f.Occupancy() != 0 {
		t.Error("clear did not clear")
	}
}

func TestFHBCounters(t *testing.T) {
	f := NewFHB(4)
	f.Record(9)
	f.Contains(9)
	f.Contains(10)
	if f.Inserts != 1 || f.Searches != 2 || f.Matches != 1 {
		t.Errorf("counters = %d/%d/%d", f.Inserts, f.Searches, f.Matches)
	}
}

func TestLVIPDefaultsToIdentical(t *testing.T) {
	p := NewLVIP(16)
	if !p.PredictIdentical(0x1000) {
		t.Error("initial prediction not identical")
	}
}

func TestLVIPLearnsMispredicts(t *testing.T) {
	p := NewLVIP(16)
	p.RecordMispredict(0x1000)
	if p.PredictIdentical(0x1000) {
		t.Error("mispredicted PC still predicted identical")
	}
	// Other PCs unaffected.
	if !p.PredictIdentical(0x2000) {
		t.Error("unrelated PC affected")
	}
	// Re-learning.
	p.RecordIdentical(0x1000)
	if !p.PredictIdentical(0x1000) {
		t.Error("PC not rehabilitated")
	}
}

func TestLVIPSizeRounding(t *testing.T) {
	if NewLVIP(4096).Size() != 4096 {
		t.Error("power-of-two size changed")
	}
	if NewLVIP(5).Size() != 8 {
		t.Error("size not rounded up")
	}
}

func TestLVIPCounters(t *testing.T) {
	p := NewLVIP(16)
	p.PredictIdentical(0x10)
	p.RecordMispredict(0x10)
	p.PredictIdentical(0x10)
	if p.Lookups != 2 || p.PredIdent != 1 || p.PredDiffer != 1 || p.Mispredicts != 1 {
		t.Errorf("counters %+v", p)
	}
}
