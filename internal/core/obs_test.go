package core

import (
	"reflect"
	"testing"

	"mmt/internal/asm"
	"mmt/internal/obs"
	"mmt/internal/prog"
)

// TestObsEventsMatchStats runs the divergence workload with a Collector
// attached and cross-checks the discrete event stream against the final
// statistics: every counted divergence, remerge, catchup episode and
// rollback must appear as exactly one event.
func TestObsEventsMatchStats(t *testing.T) {
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	sys := buildSys(t, divergeSrc, prog.ModeME, 2, init)
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 2_000_000
	c, err := New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	c.Attach(col, 50)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	counts := map[obs.EventKind]uint64{}
	var lastTS uint64
	for _, e := range col.Events {
		counts[e.Kind]++
		if e.TS < lastTS {
			t.Fatalf("events out of order: %d after %d", e.TS, lastTS)
		}
		lastTS = e.TS
	}
	for _, chk := range []struct {
		kind obs.EventKind
		want uint64
	}{
		{obs.EvDiverge, st.Divergences},
		{obs.EvRemerge, st.Remerges},
		{obs.EvCatchupStart, st.CatchupsStarted},
		{obs.EvCatchupAbort, st.CatchupsAborted},
		{obs.EvRollback, st.LVIPRollbacks},
		{obs.EvMispredict, st.Mispredicts},
	} {
		if counts[chk.kind] != chk.want {
			t.Errorf("%s events: %d, stats say %d", chk.kind, counts[chk.kind], chk.want)
		}
	}
	if st.Divergences == 0 {
		t.Fatal("workload produced no divergences; test exercises nothing")
	}

	// Periodic samples: one every 50 cycles, monotone, final occupancies
	// drained.
	if want := st.Cycles / 50; uint64(len(col.Samples)) != want {
		t.Errorf("%d samples over %d cycles (want %d)", len(col.Samples), st.Cycles, want)
	}
	for i := 1; i < len(col.Samples); i++ {
		if col.Samples[i].TS <= col.Samples[i-1].TS || col.Samples[i].Committed < col.Samples[i-1].Committed {
			t.Fatalf("samples not monotone at %d: %+v %+v", i, col.Samples[i-1], col.Samples[i])
		}
	}
}

// TestAttachDoesNotChangeSimulation: an attached recorder must observe,
// never perturb — identical final statistics with and without one.
func TestAttachDoesNotChangeSimulation(t *testing.T) {
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	run := func(attach bool) *Stats {
		sys := buildSys(t, divergeSrc, prog.ModeME, 2, init)
		cfg := DefaultConfig(2)
		cfg.MaxCycles = 2_000_000
		c, err := New(cfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			c.Attach(obs.NewCollector(), 10)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain, traced := run(false), run(true)
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("recorder changed the simulation:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestNilRecorderZeroAllocs pins the disabled-path cost: every emission
// site is a nil compare, so instrumentation with no recorder attached must
// allocate nothing.
func TestNilRecorderZeroAllocs(t *testing.T) {
	sys := buildSys(t, wideLoopSrc, prog.ModeME, 2, nil)
	c, err := New(DefaultConfig(2), sys)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.emit(obs.EvDiverge, 0, 0x1000, 2)
		c.noteStall(obs.StallROB)
	}); allocs != 0 {
		t.Errorf("nil-recorder emit path allocates %v per run", allocs)
	}
}

// BenchmarkCycleNilRecorder measures a full pipeline cycle with no recorder
// attached — the baseline the instrumentation must not regress. Run with
// -benchmem: the report asserts the allocation story the package doc
// promises.
func BenchmarkCycleNilRecorder(b *testing.B) {
	benchmarkCycle(b, false)
}

// BenchmarkCycleCollector is the same loop with a Collector attached, for
// comparing the enabled-path overhead.
func BenchmarkCycleCollector(b *testing.B) {
	benchmarkCycle(b, true)
}

func benchmarkCycle(b *testing.B, attach bool) {
	p, err := asm.Assemble("bench", wideLoopSrc)
	if err != nil {
		b.Fatal(err)
	}
	newCore := func() *Core {
		sys, err := prog.NewSystem(p, prog.ModeME, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		c, err := New(DefaultConfig(2), sys)
		if err != nil {
			b.Fatal(err)
		}
		if attach {
			col := obs.NewCollector()
			c.Attach(col, 0)
		}
		return c
	}
	c := newCore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.allDone() {
			b.StopTimer()
			c = newCore()
			b.StartTimer()
		}
		c.Cycle()
	}
}
