package core

import "fmt"

// HWCost reports the storage added by the MMT mechanisms, mirroring
// Table 3 of the paper ("Conservative Estimate of Hardware Requirements").
// Sizes are in bits unless noted.
type HWCost struct {
	// InstWinITIDBits: 4 ITID bits per instruction-window entry.
	InstWinITIDBits int
	// FHBBits: per-thread CAM, entries × 32-bit target (paper: 32*32 b).
	FHBBits int
	// RSTBits: register sharing table. The paper stores 11 bits per
	// architected register for ~50 physical-register-tagged entries
	// (the first four entries are hard-coded): 6 pair bits + attribution
	// for a 4-thread machine, 11*50 b total.
	RSTBits int
	// RegStateBits: one "no active writer" bit per architected register
	// per thread, for the register-merge validity check (256*4 b scaled
	// to threads × regs in the paper's physical file).
	RegStateBits int
	// LVIPBytes: mispredicted-load PC table (paper: 4 B × 4K entries).
	LVIPBytes int
	// TrackRegBits: the shadow copy of the mapping table used at commit
	// (paper: 4*50*9 b).
	TrackRegBits int
	// SplitLogicUM2: synthesized area of the split network (paper:
	// 80k um² at 90 nm).
	SplitLogicUM2 int
}

// EstimateHWCost computes the Table 3 storage for a configuration.
func EstimateHWCost(cfg Config) HWCost {
	const archRegs = 50 // paper counts ~50 architected/mapping entries
	pairBits := cfg.Threads * (cfg.Threads - 1) / 2
	return HWCost{
		InstWinITIDBits: 4 * cfg.ROBSize,
		FHBBits:         cfg.FHBSize * 32 * cfg.Threads,
		RSTBits:         (pairBits + 5) * archRegs, // 6 pair bits + valid/attribution ≈ 11 at 4 threads
		RegStateBits:    256 * cfg.Threads,
		LVIPBytes:       4 * cfg.LVIPSize,
		TrackRegBits:    cfg.Threads * archRegs * 9,
		SplitLogicUM2:   80_000,
	}
}

// TotalBits sums the storage cost (LVIP converted to bits).
func (h HWCost) TotalBits() int {
	return h.InstWinITIDBits + h.FHBBits + h.RSTBits + h.RegStateBits +
		h.LVIPBytes*8 + h.TrackRegBits
}

// String renders the estimate as a Table 3-style listing.
func (h HWCost) String() string {
	return fmt.Sprintf(
		"Inst Win ITID: %d b\nFHB CAM: %d b\nRST: %d b\nReg State: %d b\nLVIP: %d B\nTrack Reg: %d b\nInst Split: %d um^2\nTotal storage: %d bits",
		h.InstWinITIDBits, h.FHBBits, h.RSTBits, h.RegStateBits,
		h.LVIPBytes, h.TrackRegBits, h.SplitLogicUM2, h.TotalBits())
}
