package core

import (
	"testing"

	"mmt/internal/prog"
)

// TestDebugCycleComparison is a diagnostic aid, skipped unless -run selects
// it explicitly with -v.
func TestDebugCycleComparison(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	run := func(name string, cfg Config) {
		st, c := runCore(t, cfg, loopSrc, prog.ModeME, nil)
		t.Logf("%s: cycles=%d committed=%d mispredicts=%d fetchUops=%d renamed=%d issued=%d tcHits=%d robFull=%d iqFull=%d fqFull=%d merges=%d div=%d",
			name, st.Cycles, st.TotalCommitted(), st.Mispredicts, st.FetchAccesses,
			st.RenamedUops, st.IssuedUops, st.TraceCacheHits,
			st.ROBFullStop, st.IQFullStop, st.FetchQFullStop, st.Remerges, st.Divergences)
		_ = c
	}
	b1 := DefaultConfig(1)
	b1.SharedFetch, b1.SharedExec, b1.RegMerge = false, false, false
	run("base-1T", b1)
	b2 := DefaultConfig(2)
	b2.SharedFetch, b2.SharedExec, b2.RegMerge = false, false, false
	run("base-2T", b2)
	f2 := DefaultConfig(2)
	f2.SharedExec, f2.RegMerge = false, false
	run("mmtF-2T", f2)
	x2 := DefaultConfig(2)
	x2.RegMerge = false
	run("mmtFX-2T", x2)
	run("mmtFXR-2T", DefaultConfig(2))
}
