package core

// commitStage retires completed uops in per-thread program order, up to
// CommitWidth per cycle. A merged uop consumes a single commit slot and
// must be at the head of every member thread's ROB queue; it retires for
// all of them at once — the commit-bandwidth side of the MMT savings.
func (c *Core) commitStage(now uint64) {
	slots := c.cfg.CommitWidth
	c.regMergeBudget = c.cfg.RegMergePorts
	for progress := true; progress && slots > 0; {
		progress = false
		for t := 0; t < c.cfg.Threads && slots > 0; t++ {
			q := c.robQ[t]
			if len(q) == 0 {
				continue
			}
			u := q[0]
			if u.state == uopSquashed {
				c.robQ[t] = q[1:]
				progress = true
				continue
			}
			if u.state != uopDone || !c.atAllHeads(u) {
				continue
			}
			c.commit(u, now)
			slots--
			progress = true
		}
	}
	c.compactWindow()
}

func (c *Core) atAllHeads(u *uop) bool {
	for _, t := range u.itid.Threads() {
		if len(c.robQ[t]) == 0 || c.robQ[t][0] != u {
			return false
		}
	}
	return true
}

// commit retires one uop for all its threads.
func (c *Core) commit(u *uop, now uint64) {
	for _, t := range u.itid.Threads() {
		c.robQ[t] = c.robQ[t][1:]
	}
	u.state = uopCommitted
	c.robOcc--
	if u.isMem() {
		c.lsqOcc -= u.lsqSlots
	}
	c.stats.CommittedUops++

	dest, hasDest := u.inst.Dest()
	// Invariant: an execute-identical instruction produced one result for
	// all its threads. Mapping identity plus LVIP verification guarantee
	// it; a violation is a model bug, not a workload property.
	if hasDest && u.execIdentical() {
		lead := u.effs[u.leader()].DestVal
		for _, t := range u.itid.Threads() {
			if u.effs[t].DestVal != lead {
				panic("core: execute-identical uop committed divergent values")
			}
		}
	}
	for _, t := range u.itid.Threads() {
		c.stats.Committed[t]++
		if hasDest {
			c.committedReg[t][dest] = u.effs[t].DestVal
			c.activeWriters[t][dest]--
			if c.lastWriter[t][dest] == u {
				c.lastWriter[t][dest] = nil
			}
		}
		c.streams[t].release(u.dynIdx[t] + 1)
	}
	c.retireTrace(u)

	// Stores write the cache at commit (paper Table 2: ME stores are
	// performed once per process).
	if u.isStore {
		if u.memPerThread {
			for _, t := range u.itid.Threads() {
				c.mem.AccessData(c.dataSpace(t, u.effs[t].Addr), u.effs[t].Addr, true, now)
				c.stats.LSQAccesses++
			}
		} else {
			t := u.leader()
			c.mem.AccessData(c.dataSpace(t, u.effs[t].Addr), u.effs[t].Addr, true, now)
			c.stats.LSQAccesses++
		}
	}

	c.probeCommit(u)

	// Commit classification (Fig. 5b): per-thread instructions.
	n := uint64(u.itid.Count())
	switch {
	case u.execIdentical() && u.regMergeAssisted:
		c.stats.ExecIdentRegMerge += n
	case u.execIdentical():
		c.stats.ExecIdentical += n
	case u.fetchIdenticalOnly():
		c.stats.FetchIdenticalOnly += n
	default:
		c.stats.NotIdentical += n
	}

	if hasDest && c.cfg.RegMerge && u.mode != FetchMerge {
		c.tryRegisterMerge(u, dest)
	}
}

// tryRegisterMerge implements §4.2.7: when an instruction fetched in
// DETECT or CATCHUP mode commits a register whose mapping is still valid,
// compare its value against the same architected register of the other
// threads (those with no in-flight writer) and, on a match, set the RST
// bits back to shared.
func (c *Core) tryRegisterMerge(u *uop, dest uint8) {
	for _, t := range u.itid.Threads() {
		// Mapping still valid: no younger in-flight instruction has
		// renamed the register in this thread.
		if c.rst.version[t][dest] != u.destVer[t] || c.activeWriters[t][dest] != 0 {
			continue
		}
		for o := 0; o < c.cfg.Threads; o++ {
			if o == t || u.itid.Has(o) {
				continue
			}
			if c.activeWriters[o][dest] != 0 || c.rst.Shared(t, o, dest) {
				continue
			}
			if c.regMergeBudget <= 0 {
				return // no register-file read ports left this cycle
			}
			c.regMergeBudget--
			c.stats.RegMergeCompares++
			if c.committedReg[o][dest] == c.committedReg[t][dest] {
				c.rst.MergeInto(t, o, dest)
				c.stats.RegMergeHits++
			}
		}
	}
}

// compactWindow drops committed and squashed uops from the head of the
// window and filters the memory queue.
func (c *Core) compactWindow() {
	i := 0
	for i < len(c.window) {
		st := c.window[i].state
		if st != uopCommitted && st != uopSquashed {
			break
		}
		i++
	}
	if i > 0 {
		c.window = c.window[i:]
	}
	if len(c.memQ) > 0 {
		keep := c.memQ[:0]
		for _, m := range c.memQ {
			if m.state != uopCommitted && m.state != uopSquashed {
				keep = append(keep, m)
			}
		}
		c.memQ = keep
	}
}

// threadDone reports whether thread t has drained: its stream is exhausted
// (halted or instruction-capped) and nothing remains in flight.
func (c *Core) threadDone(t int) bool {
	if _, ok := c.streams[t].nextPC(); ok {
		return false
	}
	if len(c.robQ[t]) > 0 {
		return false
	}
	for _, u := range c.fetchQ {
		if u.state != uopSquashed && u.itid.Has(t) {
			return false
		}
	}
	return true
}

// allDone reports whether every thread has drained.
func (c *Core) allDone() bool {
	for t := 0; t < c.cfg.Threads; t++ {
		if !c.threadDone(t) {
			return false
		}
	}
	return true
}
