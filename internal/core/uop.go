package core

import "mmt/internal/isa"

// uopState tracks a micro-op through the window.
type uopState uint8

const (
	uopWaiting   uopState = iota // in IQ, operands outstanding
	uopReady                     // operands available, not yet issued
	uopIssued                    // executing
	uopDone                      // result available
	uopCommitted                 // retired
	uopSquashed                  // rolled back (LVIP mispredict)
)

// FetchMode is the instruction-fetch synchronization mode (paper Fig. 3a).
type FetchMode uint8

const (
	// FetchMerge: thread group fetching one shared instruction stream.
	FetchMerge FetchMode = iota
	// FetchDetect: threads on divergent paths, recording taken-branch
	// targets and searching for a remerge point.
	FetchDetect
	// FetchCatchup: a remerge point was found; the behind thread fetches
	// with boosted priority to re-join the ahead thread.
	FetchCatchup
)

func (m FetchMode) String() string {
	switch m {
	case FetchMerge:
		return "MERGE"
	case FetchDetect:
		return "DETECT"
	case FetchCatchup:
		return "CATCHUP"
	}
	return "?"
}

// destUndo records the rename-time RST state a uop overwrote, so an LVIP
// rollback can restore the speculative mapping table.
type destUndo struct {
	oldVer     uint64
	oldByMerge bool
	valid      bool
}

// uop is one micro-op in the machine. A uop fetched for several threads
// carries their ITID; after the split stage its itid reflects the threads
// it executes for (execute-identical), while fetchITID remembers the fetch
// grouping.
type uop struct {
	seq   uint64 // global age
	pc    uint64
	inst  isa.Inst
	class isa.Class

	itid      ITID // threads this uop executes/commits for
	fetchITID ITID // threads it was fetched for
	mode      FetchMode

	// Per-thread oracle results, indexed by thread id (valid for members
	// of fetchITID).
	effs [MaxThreads]isa.Effect
	// dynIdx is each member thread's dynamic-instruction index, for
	// stream rewind on rollback.
	dynIdx [MaxThreads]uint64

	state     uopState
	ndeps     int
	consumers []*uop
	doneAt    uint64

	// Split bookkeeping.
	splitOff         bool // produced by splitting a fetch-identical uop
	forcedSplit      bool // merged ME load demoted by an LVIP mispredict
	regMergeAssisted bool // execute-identical thanks to register merging

	// Memory behaviour.
	isLoad  bool
	isStore bool
	// memPerThread: the LSQ performs one access per member thread
	// (multi-execution workloads; paper Table 2).
	memPerThread bool
	lsqSlots     int

	// LVIP: merged private-memory load predicted value-identical.
	lvipPredIdent bool
	// sharedVerify: merged shared-memory load whose same-value assumption
	// is verified at completion (an intervening racy write rolls back).
	sharedVerify bool

	// Rename undo state per member thread.
	destUndo [MaxThreads]destUndo
	destVer  [MaxThreads]uint64 // version installed for each member

	// Control handling: groups whose fetch stalls until this (mis-
	// predicted) control uop resolves.
	stalledGroups []*group

	// pendingPieces caches the split-stage result while the uop waits in
	// the fetch queue for rename bandwidth (the split latch).
	pendingPieces []*uop

	halt bool
}

// isMem reports whether the uop uses the LSQ.
func (u *uop) isMem() bool { return u.isLoad || u.isStore }

// execIdentical reports whether this uop executes once for several threads.
func (u *uop) execIdentical() bool { return u.itid.Count() >= 2 && !u.forcedSplit }

// fetchIdenticalOnly reports a uop fetched for several threads but split
// for execution.
func (u *uop) fetchIdenticalOnly() bool {
	return u.fetchITID.Count() >= 2 && !u.execIdentical()
}

// leader returns the representative thread id.
func (u *uop) leader() int { return u.itid.First() }
