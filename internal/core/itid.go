// Package core implements the paper's contribution: an out-of-order SMT
// core extended with the Minimal Multi-Threading (MMT) mechanisms —
// ITID-tagged shared fetch, MERGE/DETECT/CATCHUP fetch synchronization
// with per-thread Fetch History Buffers, a Register Sharing Table driven
// split stage that executes execute-identical instructions once for all
// threads, a Load-Value-Identical Predictor for multi-execution loads, and
// commit-time register merging.
//
// Every mechanism can be disabled independently (Config), which yields the
// paper's Base / MMT-F / MMT-FX / MMT-FXR design points (Table 5).
package core

import (
	"math/bits"
	"strings"
)

// MaxThreads is the architectural maximum number of hardware contexts; the
// ITID is a 4-bit mask (paper §4.1).
const MaxThreads = 4

// ITID (Instruction Thread ID) is the bitmask identifying which hardware
// threads an instruction was fetched (and possibly executes) for.
type ITID uint8

// ITIDOf returns the singleton ITID for thread t.
func ITIDOf(t int) ITID { return ITID(1) << t }

// Has reports whether thread t is in the mask.
func (m ITID) Has(t int) bool { return m>>t&1 == 1 }

// Count returns the number of threads in the mask.
func (m ITID) Count() int { return bits.OnesCount8(uint8(m)) }

// First returns the lowest-numbered thread in the mask; -1 when empty.
func (m ITID) First() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros8(uint8(m))
}

// Threads returns the thread ids in the mask in ascending order.
func (m ITID) Threads() []int {
	out := make([]int, 0, m.Count())
	for t := 0; t < MaxThreads; t++ {
		if m.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// With returns m with thread t added; Without with t removed.
func (m ITID) With(t int) ITID    { return m | ITIDOf(t) }
func (m ITID) Without(t int) ITID { return m &^ ITIDOf(t) }

// String renders the mask as the paper writes it, e.g. "0110" for threads
// 1 and 2 (bit position = thread id, leftmost is thread 0).
func (m ITID) String() string {
	var b strings.Builder
	for t := 0; t < MaxThreads; t++ {
		if m.Has(t) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
