package core

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"mmt/internal/asm"
	"mmt/internal/isa"
	"mmt/internal/prog"
)

// Differential fuzzing: generate random (but guaranteed-terminating)
// programs, run them through the full MMT pipeline under random
// configurations, and check the committed architectural state of every
// thread against the pure functional oracle. This exercises arbitrary
// interleavings of divergence, remerge, catchup, LVIP rollback, register
// merging and partial squashes.

// genProgram emits a random program as assembly text. Structure:
// a prologue that loads per-context inputs, then a nest of countdown
// loops (always terminating) whose bodies mix ALU ops, memory traffic
// within a bounded scratch region, and data-dependent diamonds.
func genProgram(r *rand.Rand) string {
	var b strings.Builder
	regs := []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	reg := func() int { return regs[r.Intn(len(regs))] }

	fmt.Fprintf(&b, "        li    r4, input\n")
	fmt.Fprintf(&b, "        ld    r25, 0(r4)\n") // per-context input
	fmt.Fprintf(&b, "        ld    r26, 8(r4)\n") // shared input
	fmt.Fprintf(&b, "        li    r27, scratch\n")

	emitOp := func(depth int) {
		switch r.Intn(10) {
		case 0:
			fmt.Fprintf(&b, "        add   r%d, r%d, r%d\n", reg(), reg(), reg())
		case 1:
			fmt.Fprintf(&b, "        sub   r%d, r%d, r%d\n", reg(), reg(), reg())
		case 2:
			fmt.Fprintf(&b, "        xor   r%d, r%d, r%d\n", reg(), reg(), reg())
		case 3:
			fmt.Fprintf(&b, "        mul   r%d, r%d, r%d\n", reg(), reg(), reg())
		case 4:
			fmt.Fprintf(&b, "        addi  r%d, r%d, %d\n", reg(), reg(), r.Intn(64)-32)
		case 5:
			fmt.Fprintf(&b, "        srli  r%d, r%d, %d\n", reg(), reg(), 1+r.Intn(8))
		case 6: // load from the bounded scratch region
			fmt.Fprintf(&b, "        andi  r%d, r%d, 63\n", reg(), reg())
			d := reg()
			a := reg()
			fmt.Fprintf(&b, "        slli  r%d, r%d, 3\n", a, a)
			fmt.Fprintf(&b, "        andi  r%d, r%d, 511\n", a, a)
			fmt.Fprintf(&b, "        add   r%d, r%d, r27\n", a, a)
			fmt.Fprintf(&b, "        ld    r%d, 0(r%d)\n", d, a)
		case 7: // store into the scratch region
			a := reg()
			v := reg()
			fmt.Fprintf(&b, "        slli  r%d, r%d, 3\n", a, a)
			fmt.Fprintf(&b, "        andi  r%d, r%d, 511\n", a, a)
			fmt.Fprintf(&b, "        add   r%d, r%d, r27\n", a, a)
			fmt.Fprintf(&b, "        st    r%d, 0(r%d)\n", v, a)
		case 8: // per-context dependence
			fmt.Fprintf(&b, "        add   r%d, r%d, r25\n", reg(), reg())
		case 9: // shared-value dependence
			fmt.Fprintf(&b, "        add   r%d, r%d, r26\n", reg(), reg())
		}
		_ = depth
	}

	var label int
	emitDiamond := func() {
		label++
		cond := reg()
		fmt.Fprintf(&b, "        andi  r28, r%d, %d\n", cond, 1+r.Intn(3))
		fmt.Fprintf(&b, "        beqz  r28, dia%delse\n", label)
		for i := 0; i < 1+r.Intn(4); i++ {
			emitOp(0)
		}
		fmt.Fprintf(&b, "        j     dia%dend\n", label)
		fmt.Fprintf(&b, "dia%delse:\n", label)
		for i := 0; i < 1+r.Intn(4); i++ {
			emitOp(0)
		}
		fmt.Fprintf(&b, "dia%dend:\n", label)
	}

	var emitLoop func(depth int)
	emitLoop = func(depth int) {
		label++
		l := label
		counter := 20 + r.Intn(21-depth*5)
		fmt.Fprintf(&b, "        li    r%d, %d\n", 17+depth, counter)
		fmt.Fprintf(&b, "lp%d:\n", l)
		n := 2 + r.Intn(5)
		for i := 0; i < n; i++ {
			switch {
			case depth < 2 && r.Intn(6) == 0:
				emitLoop(depth + 1)
			case r.Intn(4) == 0:
				emitDiamond()
			default:
				emitOp(depth)
			}
		}
		fmt.Fprintf(&b, "        addi  r%d, r%d, -1\n", 17+depth, 17+depth)
		fmt.Fprintf(&b, "        bnez  r%d, lp%d\n", 17+depth, l)
	}

	emitLoop(0)
	fmt.Fprintf(&b, "        halt\n")
	fmt.Fprintf(&b, "        .data\n")
	fmt.Fprintf(&b, "input:  .word 0, 0\n")
	fmt.Fprintf(&b, "scratch: .space 512\n")
	return b.String()
}

func genConfig(r *rand.Rand, threads int) Config {
	cfg := DefaultConfig(threads)
	cfg.FetchWidth = []int{2, 4, 8, 16}[r.Intn(4)]
	cfg.IssueWidth = []int{2, 4, 8}[r.Intn(3)]
	cfg.CommitWidth = cfg.IssueWidth
	cfg.RenameWidth = cfg.FetchWidth
	cfg.ROBSize = []int{32, 64, 256}[r.Intn(3)]
	cfg.IQSize = cfg.ROBSize / 2
	cfg.LSQSize = []int{8, 16, 64}[r.Intn(3)]
	cfg.FHBSize = []int{2, 8, 32}[r.Intn(3)]
	cfg.LVIPSize = []int{4, 64, 4096}[r.Intn(3)]
	cfg.IntALUs = 1 + r.Intn(6)
	cfg.FPUs = 1 + r.Intn(3)
	cfg.LSPorts = 1 + r.Intn(3)
	cfg.MaxFetchGroups = 1 + r.Intn(2)
	if r.Intn(4) == 0 {
		cfg.TraceCacheBytes = 0
	}
	if r.Intn(3) == 0 {
		cfg.TraceHops = r.Intn(4)
	}
	cfg.ValidateSplits = true
	switch r.Intn(4) {
	case 0:
		cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = false, false, false
	case 1:
		cfg.SharedExec, cfg.RegMerge = false, false
	case 2:
		cfg.RegMerge = false
	}
	cfg.MaxCycles = 10_000_000
	return cfg
}

func runFuzzCase(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	src := genProgram(r)
	p, err := asm.Assemble(fmt.Sprintf("fuzz-%d", seed), src)
	if err != nil {
		t.Fatalf("seed %d: assemble: %v\nsource:\n%s", seed, err, src)
	}
	threads := 1 + r.Intn(4)
	mode := prog.ModeME
	if r.Intn(2) == 0 && threads > 1 {
		mode = prog.ModeMT
	}
	sharedVal := r.Uint64() % 1024
	perCtxSame := r.Intn(3) == 0 // sometimes identical inputs (Limit-like)
	init := func(ctx int, mem *prog.Memory) {
		v := uint64(ctx) * 37
		if perCtxSame {
			v = 5
		}
		mem.Write64(prog.DataBase, v)
		mem.Write64(prog.DataBase+8, sharedVal)
	}
	// MT shared-memory stores from the scratch region race between
	// threads, which makes oracle comparison against an independent run
	// invalid; keep MT fuzzing to the in-sim oracle by using ME when the
	// program stores. (The generator always may store, so fuzz MT with a
	// shared read-only image: per-thread stores land in the same scratch
	// but threads write identical streams only in the perCtxSame case.)
	if mode == prog.ModeMT && !perCtxSame {
		mode = prog.ModeME
	}

	sys, err := prog.NewSystem(p, mode, threads, init)
	if err != nil {
		t.Fatalf("seed %d: system: %v", seed, err)
	}
	cfg := genConfig(r, threads)
	c, err := New(cfg, sys)
	if err != nil {
		t.Fatalf("seed %d: core: %v", seed, err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}

	if mode == prog.ModeMT {
		// Racy shared writes make an independent replay incomparable;
		// liveness and internal invariants (panics) are the check.
		return
	}
	ref, err := prog.NewSystem(p, mode, threads, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.RunFunctional(5_000_000); err != nil {
		t.Fatalf("seed %d: oracle: %v", seed, err)
	}
	for i, ctx := range ref.Contexts {
		if st.Committed[i] != ctx.DynCount {
			t.Fatalf("seed %d: thread %d committed %d, oracle %d\nconfig: %+v",
				seed, i, st.Committed[i], ctx.DynCount, cfg)
		}
		for reg := 0; reg < isa.NumRegs; reg++ {
			if got, want := c.CommittedReg(i, uint8(reg)), ctx.State.Reg[reg]; got != want {
				t.Fatalf("seed %d: thread %d reg %d: %#x vs oracle %#x", seed, i, reg, got, want)
			}
		}
	}
}

func TestFuzzDifferential(t *testing.T) {
	n := envSeeds(60)
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runFuzzCase(t, seed)
		})
	}
}

// envSeeds lets CI scale the fuzz budget: MMT_FUZZ_SEEDS=500 go test ...
func envSeeds(def int) int {
	if s := os.Getenv("MMT_FUZZ_SEEDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
