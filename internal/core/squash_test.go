package core

import (
	"testing"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

// lvipStormSrc loads a per-instance value repeatedly through the same
// static load, forcing an LVIP mispredict and rollback on the first
// iteration, with consumers in flight.
const lvipStormSrc = `
        li    r4, input
        li    r7, 60
loop:   ld    r5, 0(r4)          ; differing values across instances
        add   r6, r6, r5         ; consumer 1
        mul   r8, r5, r5         ; consumer 2
        xor   r9, r9, r8         ; consumer chain
        addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 0
`

func lvipInit(ctx int, mem *prog.Memory) {
	mem.Write64(prog.DataBase, uint64(1000+ctx*111))
}

func TestRollbackPreservesArchitecturalState(t *testing.T) {
	// The heavyweight invariant: after rollbacks, squashes, and
	// refetches, every thread's committed state still matches a pure
	// functional run. runCore checks this internally.
	for _, threads := range []int{2, 3, 4} {
		cfg := DefaultConfig(threads)
		st, _ := runCore(t, cfg, lvipStormSrc, prog.ModeME, lvipInit)
		if st.LVIPRollbacks == 0 {
			t.Errorf("%d threads: no rollback despite divergent load values", threads)
		}
		if st.SquashedUops == 0 {
			t.Errorf("%d threads: rollback squashed nothing", threads)
		}
	}
}

func TestRollbackDoesNotRepeatAfterLearning(t *testing.T) {
	cfg := DefaultConfig(2)
	st, c := runCore(t, cfg, lvipStormSrc, prog.ModeME, lvipInit)
	// One static load: after its first mispredict the LVIP must predict
	// "differ" and split, so rollbacks stay far below iteration count.
	if st.LVIPRollbacks > 5 {
		t.Errorf("rollbacks = %d; LVIP is not learning", st.LVIPRollbacks)
	}
	if c.LVIPStats().PredDiffer == 0 {
		t.Error("LVIP never predicted differing values")
	}
}

// TestRollbackWithAsymmetricValues runs four instances where three share a
// load value and one differs: the merged load's verification must catch
// the single outlier, roll all four back consistently, and the oracle
// cross-check in runCore validates every thread's final state.
func TestRollbackWithAsymmetricValues(t *testing.T) {
	src := `
        li    r4, input
        li    r7, 40
loop:   ld    r5, 0(r4)
        add   r6, r6, r5
        mul   r8, r5, r7
        addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 0
`
	init := func(ctx int, mem *prog.Memory) {
		v := uint64(7)
		if ctx == 3 {
			v = 99 // single outlier instance
		}
		mem.Write64(prog.DataBase, v)
	}
	cfg := DefaultConfig(4)
	st, _ := runCore(t, cfg, src, prog.ModeME, init)
	if st.LVIPRollbacks == 0 {
		t.Error("expected a rollback from the outlier instance")
	}
}

func TestSquashReleasesStalledGroups(t *testing.T) {
	// A branch that depends on a value-predicted load: when the load
	// rolls back, any group stalled on the (squashed) branch must be
	// released — otherwise fetch deadlocks. The run completing at all is
	// the assertion; runCore's oracle check covers correctness.
	src := `
        li    r4, input
        li    r7, 30
loop:   ld    r5, 0(r4)          ; rolls back (values differ)
        andi  r6, r5, 1
        beqz  r6, even
        addi  r8, r8, 1
        j     next
even:   addi  r9, r9, 1
next:   addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 0
`
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx)) // parity differs
	}
	cfg := DefaultConfig(2)
	st, _ := runCore(t, cfg, src, prog.ModeME, init)
	if st.LVIPRollbacks == 0 {
		t.Error("no rollback in stalled-group scenario")
	}
	if st.Divergences == 0 {
		t.Error("no divergence on parity branch")
	}
}

func TestCommittedValuesSurviveHeavyChurn(t *testing.T) {
	// Mix divergence, rollback, register merging and remerge on one
	// kernel; verify committed register state per thread against the
	// oracle (done by runCore) plus the final accumulator value.
	src := `
        li    r4, input
        ld    r25, 0(r4)
        li    r7, 25
loop:   andi  r6, r25, 1
        beqz  r6, evn
        li    r10, 77
        j     join
evn:    nop
        li    r10, 77
join:   add   r11, r10, r7
        mul   r12, r10, r10
        ld    r13, 8(r4)         ; identical across instances
        add   r14, r13, r11
        addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 0, 31337
`
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx))
	}
	cfg := DefaultConfig(2)
	st, c := runCore(t, cfg, src, prog.ModeME, init)
	if st.Divergences == 0 {
		t.Error("no divergences in churn test")
	}
	for tid := 0; tid < 2; tid++ {
		if got := c.CommittedReg(tid, 13); got != 31337 {
			t.Errorf("thread %d r13 = %d", tid, got)
		}
		if got := c.CommittedReg(tid, 10); got != 77 {
			t.Errorf("thread %d r10 = %d", tid, got)
		}
	}
}

// TestOracleEquivalenceAcrossConfigs runs one churny kernel over the whole
// configuration matrix; runCore cross-checks committed state against the
// functional oracle every time.
func TestOracleEquivalenceAcrossConfigs(t *testing.T) {
	type knobs struct {
		name string
		mut  func(*Config)
	}
	for _, k := range []knobs{
		{"tiny-rob", func(c *Config) { c.ROBSize = 16; c.IQSize = 8; c.LSQSize = 8 }},
		{"narrow", func(c *Config) { c.FetchWidth = 2; c.IssueWidth = 2; c.CommitWidth = 2; c.RenameWidth = 2 }},
		{"one-alu", func(c *Config) { c.IntALUs = 1; c.FPUs = 1; c.LSPorts = 1 }},
		{"small-fhb", func(c *Config) { c.FHBSize = 2 }},
		{"no-tracecache", func(c *Config) { c.TraceCacheBytes = 0 }},
		{"tiny-lvip", func(c *Config) { c.LVIPSize = 2 }},
		{"wide-machine", func(c *Config) { c.FetchWidth = 16; c.IssueWidth = 16; c.CommitWidth = 16; c.RenameWidth = 16 }},
	} {
		k := k
		t.Run(k.name, func(t *testing.T) {
			cfg := DefaultConfig(2)
			k.mut(&cfg)
			runCore(t, cfg, lvipStormSrc, prog.ModeME, lvipInit)
			runCore(t, cfg, divergeSrc, prog.ModeME, func(ctx int, mem *prog.Memory) {
				mem.Write64(prog.DataBase, uint64(ctx%2))
			})
		})
	}
}

func TestActiveWriterAccountingStaysConsistent(t *testing.T) {
	// After a full run every in-flight structure must be empty and
	// writer counters zero.
	cfg := DefaultConfig(2)
	_, c := runCore(t, cfg, lvipStormSrc, prog.ModeME, lvipInit)
	if c.robOcc != 0 || c.iqOcc != 0 || c.lsqOcc != 0 {
		t.Errorf("occupancy leak: rob=%d iq=%d lsq=%d", c.robOcc, c.iqOcc, c.lsqOcc)
	}
	for tid := 0; tid < 2; tid++ {
		for r := 0; r < isa.NumRegs; r++ {
			if c.activeWriters[tid][r] != 0 {
				t.Errorf("thread %d reg %d: %d active writers after drain", tid, r, c.activeWriters[tid][r])
			}
		}
	}
}
