package core

import (
	"testing"

	"mmt/internal/prog"
)

// countingProbe records every callback, for checking the probe seam fires.
type countingProbe struct {
	commits, diverges, remerges, catchups, hits, mispredicts int
	cycles                                                   [NumCycleComponents]uint64
}

func (p *countingProbe) CommitUop(pc uint64, class CommitClass, threads int) { p.commits++ }
func (p *countingProbe) Diverge(pc uint64, parts int)                        { p.diverges++ }
func (p *countingProbe) Remerge(divergePC, remergePC, takenBranches uint64)  { p.remerges++ }
func (p *countingProbe) CatchupCycle(divergePC uint64)                       { p.catchups++ }
func (p *countingProbe) LVIPHit(pc uint64)                                   { p.hits++ }
func (p *countingProbe) LVIPMispredict(pc uint64, penalty, squashed uint64)  { p.mispredicts++ }
func (p *countingProbe) Cycle(comp CycleComponent)                           { p.cycles[comp]++ }

// TestNilProbeZeroAllocs: every probe site guards on one nil compare, so
// an unprobed core's attribution seam must allocate nothing (the same
// contract the recorder hooks keep, see TestNilRecorderZeroAllocs).
func TestNilProbeZeroAllocs(t *testing.T) {
	sys := buildSys(t, wideLoopSrc, prog.ModeME, 2, nil)
	c, err := New(DefaultConfig(2), sys)
	if err != nil {
		t.Fatal(err)
	}
	u := &uop{pc: 0x40}
	if allocs := testing.AllocsPerRun(1000, func() {
		c.probeCommit(u)
		c.probeCycle(123)
	}); allocs != 0 {
		t.Errorf("nil-probe attribution path allocates %v per run", allocs)
	}
}

// TestProbeDoesNotChangeStats: attaching a probe observes the run without
// perturbing it — the simulated statistics must be identical.
func TestProbeDoesNotChangeStats(t *testing.T) {
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	run := func(p Probe) *Stats {
		sys := buildSys(t, divergeSrc, prog.ModeME, 2, init)
		cfg := DefaultConfig(2)
		cfg.MaxCycles = 2_000_000
		c, err := New(cfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			c.AttachProbe(p)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain := run(nil)
	probe := &countingProbe{}
	probed := run(probe)

	if plain.Cycles != probed.Cycles || plain.TotalCommitted() != probed.TotalCommitted() ||
		plain.Divergences != probed.Divergences || plain.Remerges != probed.Remerges {
		t.Errorf("probe changed the run: plain cycles=%d committed=%d div=%d, probed cycles=%d committed=%d div=%d",
			plain.Cycles, plain.TotalCommitted(), plain.Divergences,
			probed.Cycles, probed.TotalCommitted(), probed.Divergences)
	}

	// The per-cycle component stream must cover every cycle exactly once.
	var total uint64
	for _, n := range probe.cycles {
		total += n
	}
	if total != probed.Cycles {
		t.Errorf("probe saw %d cycle callbacks, run took %d cycles", total, probed.Cycles)
	}
	if probe.commits == 0 {
		t.Error("probe saw no commits")
	}
	if probe.diverges == 0 || probe.remerges == 0 {
		t.Errorf("probe saw %d diverges, %d remerges on a divergent workload", probe.diverges, probe.remerges)
	}
	if uint64(probe.diverges) != probed.Divergences {
		t.Errorf("probe diverges=%d, stats=%d", probe.diverges, probed.Divergences)
	}
}
