package core

import (
	"fmt"

	"mmt/internal/isa"
	"mmt/internal/obs"
)

// renameStage moves uops from the fetch queue through the split stage
// (paper §4.2.2) into the ROB/IQ/LSQ, consuming rename bandwidth. A
// fetch-identical uop that splits consumes one rename slot per resulting
// uop, exactly as the paper's extra pipeline stage produces "the minimal
// set of 1–4 instructions".
func (c *Core) renameStage(now uint64) {
	slots := c.cfg.RenameWidth
	for len(c.fetchQ) > 0 && slots > 0 {
		u := c.fetchQ[0]
		if u.state == uopSquashed { // squashed while still in the queue
			c.fetchQ = c.fetchQ[1:]
			continue
		}
		// The split latch: evaluate the split stage once per uop even
		// when rename retries across cycles.
		if u.pendingPieces == nil {
			u.pendingPieces = c.splitUop(u)
		}
		pieces := u.pendingPieces
		if len(pieces) > slots {
			if slots < c.cfg.RenameWidth {
				break // wait for a fresh cycle's full bandwidth
			}
			// A split wider than the rename stage itself (e.g. a 4-way
			// split on a 2-wide machine) occupies the whole cycle and
			// dispatches atomically.
		}
		if !c.windowSpace(pieces) {
			break
		}
		c.fetchQ = c.fetchQ[1:]
		for _, p := range pieces {
			c.rename(p, now)
		}
		slots -= len(pieces)
		if slots < 0 {
			slots = 0
		}
	}
}

// windowSpace checks ROB/IQ/LSQ capacity for all pieces at once (a split
// uop dispatches atomically).
func (c *Core) windowSpace(pieces []*uop) bool {
	lsq := 0
	for _, p := range pieces {
		if p.isMem() {
			lsq += p.lsqSlots
		}
	}
	if c.robOcc+len(pieces) > c.cfg.ROBSize {
		c.stats.ROBFullStop++
		c.noteStall(obs.StallROB)
		return false
	}
	if c.iqOcc+len(pieces) > c.cfg.IQSize {
		c.stats.IQFullStop++
		c.noteStall(obs.StallIQ)
		return false
	}
	if c.lsqOcc+lsq > c.cfg.LSQSize {
		c.stats.LSQFullStop++
		c.noteStall(obs.StallLSQ)
		return false
	}
	return true
}

// splitUop implements the decision logic of paper Table 2: given a
// fetch-identical uop, produce the minimal set of uops with disjoint
// ITIDs. With shared execution disabled (MMT-F), every fetch-identical uop
// splits into singletons at decode.
func (c *Core) splitUop(u *uop) []*uop {
	if u.fetchITID.Count() == 1 {
		u.lsqSlots = c.lsqSlotsFor(u, u.itid)
		u.memPerThread = false
		return []*uop{u}
	}
	if !c.cfg.SharedExec {
		// MMT-F: "always splitting into different instructions in the
		// decode stage" (§5).
		return c.splitIntoSingletons(u)
	}
	if u.inst.Op == isa.OpTid {
		// Thread-identity reads are inherently per-thread: identical
		// mappings do not imply identical results.
		return c.splitIntoSingletons(u)
	}

	c.stats.SplitOps++
	srcs, n := u.inst.Sources()
	classes, rmAssist := c.rst.Partition(u.fetchITID, srcs[:n])
	if c.cfg.ValidateSplits {
		c.validateSplit(u, srcs[:n], classes)
	}

	// Loads from private (per-process) memory: identical mappings mean
	// identical addresses in *different* address spaces; consult the
	// LVIP (Table 2: Load/ME/X-id → check LVIP). Mailbox-window loads in
	// MP mode behave like MT shared loads.
	if u.isLoad {
		var expanded []ITID
		var expandedRM []bool
		for i, cl := range classes {
			if cl.Count() >= 2 && c.memPrivate(u.effs[cl.First()].Addr) {
				split := false
				switch c.cfg.LVIP {
				case LVIPOff:
					split = true
				case LVIPOracle:
					// The upper bound: merge exactly the classes whose
					// values actually match; never roll back.
					first := u.effs[cl.First()].LoadVal
					for _, t := range cl.Threads() {
						if u.effs[t].LoadVal != first {
							split = true
							break
						}
					}
				default: // LVIPPredict, the paper's design
					c.stats.LVIPLookups++
					split = !c.lvip.PredictIdentical(u.pc)
				}
				if split {
					for _, t := range cl.Threads() {
						expanded = append(expanded, ITIDOf(t))
						expandedRM = append(expandedRM, false)
					}
					continue
				}
			}
			expanded = append(expanded, cl)
			expandedRM = append(expandedRM, rmAssist[i])
		}
		classes, rmAssist = expanded, expandedRM
	}

	stalled := u.stalledGroups
	u.stalledGroups = nil
	out := make([]*uop, 0, len(classes))
	for i, cl := range classes {
		var p *uop
		if i == 0 {
			p = u
		} else {
			cp := *u
			cp.splitOff = true
			p = &cp
		}
		p.itid = cl
		p.regMergeAssisted = cl.Count() >= 2 && rmAssist[i]
		private := u.isMem() && c.memPrivate(u.effs[cl.First()].Addr)
		// Verification (and rollback exposure) only exists under the
		// real predictor; the oracle mode merges exactly-correct classes.
		p.lvipPredIdent = u.isLoad && private && cl.Count() >= 2 && c.cfg.LVIP == LVIPPredict
		p.memPerThread = private && cl.Count() >= 2
		// Shared-memory merged loads perform one access; the assumption
		// that the value is identical for all threads ("if executed
		// without an intervening write", §3.1) is verified at completion
		// and rolled back on the rare race.
		p.sharedVerify = u.isLoad && !private && cl.Count() >= 2
		p.lsqSlots = c.lsqSlotsFor(p, cl)
		out = append(out, p)
	}
	distributeStalledGroups(stalled, out)
	return out
}

// distributeStalledGroups reattaches fetch groups waiting on a control uop
// to the split piece that executes for the group's threads, so each group
// resumes when *its* branch instance resolves (and a rollback squashing
// one piece cannot strand an unrelated group).
func distributeStalledGroups(stalled []*group, pieces []*uop) {
	for _, g := range stalled {
		attached := false
		for _, p := range pieces {
			if p.itid&g.members != 0 {
				p.stalledGroups = append(p.stalledGroups, g)
				g.waitBranch = p
				attached = true
				break
			}
		}
		if !attached {
			pieces[0].stalledGroups = append(pieces[0].stalledGroups, g)
			g.waitBranch = pieces[0]
		}
	}
}

// splitIntoSingletons breaks a fetch-identical uop into one uop per
// member thread.
func (c *Core) splitIntoSingletons(u *uop) []*uop {
	threads := u.fetchITID.Threads()
	stalled := u.stalledGroups
	u.stalledGroups = nil
	out := make([]*uop, 0, len(threads))
	for i, t := range threads {
		var p *uop
		if i == 0 {
			p = u
		} else {
			cp := *u
			cp.splitOff = true
			p = &cp
		}
		p.itid = ITIDOf(t)
		p.memPerThread = false
		p.lsqSlots = c.lsqSlotsFor(p, p.itid)
		out = append(out, p)
	}
	distributeStalledGroups(stalled, out)
	return out
}

// lsqSlotsFor returns LSQ occupancy. A merged multi-execution memory op
// occupies a single queue entry whose accesses are expanded and performed
// serially at access time (paper §4.2.5 — Table 3 adds no LSQ storage, so
// the expansion is a sequencer, not extra entries).
func (c *Core) lsqSlotsFor(u *uop, itid ITID) int {
	if !u.isMem() {
		return 0
	}
	return 1
}

// rename allocates the uop's dependences and destination mapping and
// dispatches it into the window.
func (c *Core) rename(u *uop, now uint64) {
	c.seq++
	u.seq = c.seq // rename order = age order; the window is seq-sorted
	c.stats.RenamedUops++

	// Source dependences: the union of last writers over member threads.
	// For a merged uop the mappings are identical, so the union is a
	// single producer; the union form stays correct across partial
	// squashes.
	srcs, n := u.inst.Sources()
	u.ndeps = 0
	seen := map[*uop]bool{}
	for i := 0; i < n; i++ {
		s := srcs[i]
		if s == isa.RegZero {
			continue
		}
		c.stats.RegReads++
		for _, t := range u.itid.Threads() {
			if w := c.lastWriter[t][s]; w != nil && !seen[w] {
				seen[w] = true
				if w.state != uopDone && w.state != uopSquashed {
					u.ndeps++
					w.consumers = append(w.consumers, u)
				}
			}
		}
	}

	// Memory ordering: a load depends on the youngest older store to the
	// same address in each of its threads (perfect store-to-load
	// disambiguation; addresses come from the oracle).
	if u.isLoad {
		for _, t := range u.itid.Threads() {
			if w := c.youngestStore(t, u.effs[t].Addr, u.seq); w != nil && !seen[w] {
				seen[w] = true
				if w.state != uopDone && w.state != uopSquashed {
					u.ndeps++
					w.consumers = append(w.consumers, u)
				}
			}
		}
	}

	// Destination mapping (RST update, §4.2.3/4.2.4).
	if dest, ok := u.inst.Dest(); ok {
		c.stats.RegWrites++
		for _, t := range u.itid.Threads() {
			u.destUndo[t] = destUndo{
				oldVer:     c.rst.version[t][dest],
				oldByMerge: c.rst.byMerge[t][dest],
				valid:      true,
			}
		}
		if c.cfg.SharedExec {
			if u.itid.Count() >= 2 {
				c.rst.WriteMerged(u.itid, dest)
			} else {
				c.rst.WriteSplit(u.itid.First(), dest)
			}
			c.stats.RSTUpdates++
		} else {
			for _, t := range u.itid.Threads() {
				c.rst.WriteSplit(t, dest)
			}
		}
		for _, t := range u.itid.Threads() {
			u.destVer[t] = c.rst.version[t][dest]
			c.activeWriters[t][dest]++
			c.lastWriter[t][dest] = u
		}
	}

	// Dispatch.
	u.state = uopWaiting
	if u.ndeps == 0 {
		u.state = uopReady
	}
	c.window = append(c.window, u)
	c.robOcc++
	c.iqOcc++
	if u.isMem() {
		c.lsqOcc += u.lsqSlots
		c.memQ = append(c.memQ, u)
	}
	for _, t := range u.itid.Threads() {
		c.robQ[t] = append(c.robQ[t], u)
	}
}

// youngestStore finds the youngest store older than seq writing addr in
// thread t.
func (c *Core) youngestStore(t int, addr uint64, seq uint64) *uop {
	for i := len(c.memQ) - 1; i >= 0; i-- {
		s := c.memQ[i]
		if !s.isStore || s.seq >= seq || s.state == uopSquashed || !s.itid.Has(t) {
			continue
		}
		if s.effs[t].Addr == addr {
			return s
		}
	}
	return nil
}

// validateSplit cross-checks one split decision against the structural
// §4.2.2 network (ValidateSplits debug mode).
func (c *Core) validateSplit(u *uop, srcs []uint8, classes []ITID) {
	if c.splitNet == nil {
		c.splitNet = NewSplitNetwork(c.cfg.Threads)
	}
	pair := func(i, j int) bool {
		for _, s := range srcs {
			if s != isa.RegZero && !c.rst.Shared(i, j, s) {
				return false
			}
		}
		return true
	}
	hw := c.splitNet.Evaluate(pair, u.fetchITID)
	if len(hw) != len(classes) {
		panic(fmt.Sprintf("core: split network disagrees at pc %#x: hardware %v vs partition %v", u.pc, hw, classes))
	}
	want := make(map[ITID]bool, len(classes))
	for _, cl := range classes {
		want[cl] = true
	}
	for _, e := range hw {
		if !want[e] {
			panic(fmt.Sprintf("core: split network disagrees at pc %#x: hardware %v vs partition %v", u.pc, hw, classes))
		}
	}
}
