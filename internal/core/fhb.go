package core

// FHB is one thread's Fetch History Buffer (paper §4.1): a small CAM that
// records the target PCs of recently taken branches while the thread is in
// DETECT or CATCHUP mode. Other threads search it to discover that their
// own fetch path has re-joined this thread's path.
type FHB struct {
	entries []uint64
	valid   []bool
	next    int // round-robin insertion point

	Inserts  uint64
	Searches uint64
	Matches  uint64
}

// NewFHB builds an n-entry buffer.
func NewFHB(n int) *FHB {
	return &FHB{entries: make([]uint64, n), valid: make([]bool, n)}
}

// Size returns the CAM capacity.
func (f *FHB) Size() int { return len(f.entries) }

// Record inserts a taken-branch target, overwriting the oldest entry.
func (f *FHB) Record(target uint64) {
	f.entries[f.next] = target
	f.valid[f.next] = true
	f.next = (f.next + 1) % len(f.entries)
	f.Inserts++
}

// Contains searches the CAM for target (one associative lookup).
func (f *FHB) Contains(target uint64) bool {
	f.Searches++
	for i, v := range f.valid {
		if v && f.entries[i] == target {
			f.Matches++
			return true
		}
	}
	return false
}

// Clear invalidates all entries (done when threads re-merge).
func (f *FHB) Clear() {
	for i := range f.valid {
		f.valid[i] = false
	}
	f.next = 0
}

// Occupancy returns the number of valid entries.
func (f *FHB) Occupancy() int {
	n := 0
	for _, v := range f.valid {
		if v {
			n++
		}
	}
	return n
}
