package core

import (
	"mmt/internal/obs"
	"mmt/internal/prog"
)

// dataSpace returns the address-space id for thread t's access to addr:
// multi-threaded workloads share one space, multi-execution processes have
// one each, and message-passing ranks are private except for the shared
// mailbox window.
func (c *Core) dataSpace(t int, addr uint64) uint8 {
	switch c.mode {
	case prog.ModeME:
		return uint8(t)
	case prog.ModeMP:
		if prog.InMbox(addr) {
			return 0
		}
		return uint8(t)
	default:
		return 0
	}
}

// memPrivate reports whether an access to addr goes to per-context memory
// (so a merged op must expand to one access per member).
func (c *Core) memPrivate(addr uint64) bool {
	switch c.mode {
	case prog.ModeME:
		return true
	case prog.ModeMP:
		return !prog.InMbox(addr)
	default:
		return false
	}
}

// issueStage selects ready uops oldest-first up to IssueWidth, subject to
// functional-unit and load/store-port availability.
func (c *Core) issueStage(now uint64) {
	issued := 0
	intFree := c.cfg.IntALUs
	fpFree := c.cfg.FPUs
	lsFree := c.cfg.LSPorts
	for _, u := range c.window {
		if issued >= c.cfg.IssueWidth {
			break
		}
		if u.state != uopReady {
			continue
		}
		switch {
		case u.isLoad:
			if lsFree < 1 {
				continue
			}
			ports := 1
			if u.memPerThread {
				// A merged multi-execution load expands to one access
				// per process; the LSQ performs them "serially"
				// (§4.2.5) across the ports available this cycle.
				ports = u.itid.Count()
				if ports > lsFree {
					ports = lsFree
				}
			}
			lsFree -= ports
			u.doneAt = c.issueLoad(u, ports, now)
		case u.isStore:
			// Stores compute their address at issue; the cache write
			// happens at commit.
			if lsFree < 1 {
				continue
			}
			lsFree--
			u.doneAt = now + 1
		default:
			switch fuOf(u.class) {
			case fuInt:
				if intFree < 1 {
					continue
				}
				intFree--
			case fuFP:
				if fpFree < 1 {
					continue
				}
				fpFree--
			}
			u.doneAt = now + execLatency(u.class)
		}
		u.state = uopIssued
		c.iqOcc--
		issued++
		c.stats.IssuedUops++
		c.stats.FUOps++
	}
}

// issueLoad performs the cache access(es) for a load. A merged
// multi-execution load reads the same address in each member's private
// space (paper §4.2.5: "expands the loads ... and performs them
// serially"); accesses beyond the ports granted this cycle start on later
// cycles, and completion is the slowest access.
func (c *Core) issueLoad(u *uop, ports int, now uint64) uint64 {
	if u.memPerThread {
		var done uint64
		for i, t := range u.itid.Threads() {
			start := now + uint64(i/ports)
			d := c.mem.AccessData(c.dataSpace(t, u.effs[t].Addr), u.effs[t].Addr, false, start)
			if d > done {
				done = d
			}
			c.stats.LSQAccesses++
		}
		return done
	}
	t := u.leader()
	c.stats.LSQAccesses++
	return c.mem.AccessData(c.dataSpace(t, u.effs[t].Addr), u.effs[t].Addr, false, now)
}

// completeStage retires execution results: uops whose doneAt has arrived
// become done, wake their consumers, release branch-stalled fetch groups,
// and — for value-predicted merged loads — verify the LVIP prediction,
// possibly triggering a rollback.
func (c *Core) completeStage(now uint64) {
	// Oldest-first so that an LVIP rollback squashes younger completions
	// before they act.
	for _, u := range c.window {
		if u.state != uopIssued || u.doneAt > now {
			continue
		}
		if u.state == uopSquashed {
			continue
		}
		u.state = uopDone

		// Verify merged-load value prediction (paper §4.2.5: "wait for
		// both loads to return, check the values, compare the result
		// to the prediction, and possibly trigger a rollback"). Merged
		// shared-memory loads verify the no-intervening-write
		// assumption the same way, without touching the predictor.
		if u.lvipPredIdent {
			if c.loadValuesDiffer(u) {
				c.lvipRollback(u, now, true)
			} else {
				c.lvip.RecordIdentical(u.pc)
				if c.probe != nil {
					c.probe.LVIPHit(u.pc)
				}
			}
		} else if u.sharedVerify && c.loadValuesDiffer(u) {
			c.lvipRollback(u, now, false)
		}
		if u.state == uopSquashed {
			continue
		}

		for _, cons := range u.consumers {
			if cons.state == uopWaiting {
				cons.ndeps--
				if cons.ndeps == 0 {
					cons.state = uopReady
				}
			}
		}
		for _, g := range u.stalledGroups {
			if g.waitBranch == u {
				g.waitBranch = nil
				if s := now + c.cfg.MispredictPenalty; s > g.stallUntil {
					g.stallUntil = s
				}
			}
		}
		u.stalledGroups = nil
	}
}

// loadValuesDiffer reports whether a merged ME load's per-process values
// disagree.
func (c *Core) loadValuesDiffer(u *uop) bool {
	threads := u.itid.Threads()
	first := u.effs[threads[0]].LoadVal
	for _, t := range threads[1:] {
		if u.effs[t].LoadVal != first {
			return true
		}
	}
	return false
}

// lvipRollback handles a value-identical mispredict on a merged load: the
// load is demoted to split (per-thread destinations), every younger uop of
// the affected threads is squashed, their streams rewind, and fetch
// restarts after a redirect penalty. train selects whether the LVIP
// records the event (private-memory loads) or not (shared-memory races).
func (c *Core) lvipRollback(u *uop, now uint64, train bool) {
	c.stats.LVIPRollbacks++
	if train {
		c.lvip.RecordMispredict(u.pc)
	}
	affected := u.itid
	c.emit(obs.EvRollback, int32(affected.First()), u.pc, uint64(affected.Count()))

	squashedBefore := c.stats.SquashedUops
	c.squashYounger(affected, u.seq, now)
	if n := c.stats.SquashedUops - squashedBefore; n > 0 {
		c.emit(obs.EvSquash, int32(affected.First()), u.pc, n)
	}
	if c.probe != nil {
		c.probe.LVIPMispredict(u.pc, c.cfg.MispredictPenalty, c.stats.SquashedUops-squashedBefore)
		if until := now + c.cfg.MispredictPenalty; until > c.rollbackUntil {
			c.rollbackUntil = until
		}
	}

	// The load itself survives but its destination becomes per-thread
	// (distinct mappings), as if the split stage had split it.
	u.forcedSplit = true
	u.lvipPredIdent = false
	u.sharedVerify = false
	if dest, ok := u.inst.Dest(); ok {
		for _, t := range affected.Threads() {
			c.rst.WriteSplit(t, dest)
			u.destVer[t] = c.rst.version[t][dest]
		}
	}
}

// squashYounger rolls back every uop younger than afterSeq whose ITID
// intersects affected: their destination mappings are undone (reverse
// order), streams rewind to the squash point, and the affected threads
// restart fetch in fresh singleton groups after the redirect penalty.
func (c *Core) squashYounger(affected ITID, afterSeq uint64, now uint64) {
	// Reverse order: undo rename effects youngest-first.
	for i := len(c.window) - 1; i >= 0; i-- {
		w := c.window[i]
		if w.seq <= afterSeq {
			break
		}
		if w.state == uopSquashed || w.itid&affected == 0 {
			continue
		}
		c.squashFrom(w, affected, now)
	}
	// Uops still in the fetch queue have no rename state to undo.
	// Everything in the fetch queue is younger than any renamed uop.
	keep := c.fetchQ[:0]
	for _, w := range c.fetchQ {
		if w.itid&affected != 0 {
			w.itid &^= affected
			w.fetchITID = w.itid
			w.pendingPieces = nil // invalidate the split latch
			if w.itid == 0 {
				w.state = uopSquashed
				c.stats.SquashedUops++
				for _, g := range w.stalledGroups {
					if g.waitBranch == w {
						g.waitBranch = nil
						if s := now + c.cfg.MispredictPenalty; s > g.stallUntil {
							g.stallUntil = s
						}
					}
				}
				w.stalledGroups = nil
				continue
			}
		}
		keep = append(keep, w)
	}
	c.fetchQ = keep

	// Rebuild rename bookkeeping for the affected threads.
	c.rebuildWriterState(affected)

	// Rewind streams and restart fetch.
	for _, t := range affected.Threads() {
		c.streams[t].rewindTo(c.rewindPoint(t, afterSeq))
	}
	c.regroupAfterSquash(affected, now)
}

// squashFrom removes the affected threads from one renamed uop, undoing
// their destination mappings; the uop dies entirely when no threads
// remain.
func (c *Core) squashFrom(w *uop, affected ITID, now uint64) {
	if dest, ok := w.inst.Dest(); ok {
		for _, t := range w.itid.Threads() {
			if !affected.Has(t) || !w.destUndo[t].valid {
				continue
			}
			c.rst.version[t][dest] = w.destUndo[t].oldVer
			c.rst.byMerge[t][dest] = w.destUndo[t].oldByMerge
			w.destUndo[t].valid = false
		}
	}
	removed := w.itid & affected
	w.itid &^= affected
	for _, t := range removed.Threads() {
		c.removeFromROBQ(t, w)
	}
	if w.itid == 0 {
		if w.state == uopWaiting || w.state == uopReady {
			c.iqOcc--
		}
		w.state = uopSquashed
		c.robOcc--
		if w.isMem() {
			c.lsqOcc -= w.lsqSlots
		}
		c.stats.SquashedUops++
		// Release any surviving consumers waiting on this producer
		// (possible when a merged consumer kept threads outside the
		// squash set).
		for _, cons := range w.consumers {
			if cons.state == uopWaiting {
				cons.ndeps--
				if cons.ndeps == 0 {
					cons.state = uopReady
				}
			}
		}
		// Release fetch groups stalled on this (now defunct) control
		// uop: the branch will never resolve, so the group must not
		// wait on it forever.
		for _, g := range w.stalledGroups {
			if g.waitBranch == w {
				g.waitBranch = nil
				if s := now + c.cfg.MispredictPenalty; s > g.stallUntil {
					g.stallUntil = s
				}
			}
		}
		w.stalledGroups = nil
		return
	}
	// Partial squash: the uop survives (and keeps its single LSQ entry)
	// for the remaining threads.
}

func (c *Core) removeFromROBQ(t int, w *uop) {
	q := c.robQ[t]
	for i := len(q) - 1; i >= 0; i-- {
		if q[i] == w {
			c.robQ[t] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// rewindPoint returns the dynamic index thread t must refetch from: the
// record after the youngest surviving (non-squashed) uop ≤ afterSeq —
// which, because squashing removed everything younger, is simply the
// record after the thread's youngest remaining ROB entry.
func (c *Core) rewindPoint(t int, afterSeq uint64) uint64 {
	q := c.robQ[t]
	if len(q) == 0 {
		return c.streams[t].base
	}
	last := q[len(q)-1]
	return last.dynIdx[t] + 1
}

// rebuildWriterState recomputes lastWriter and activeWriters for the
// affected threads by walking the surviving window in order.
func (c *Core) rebuildWriterState(affected ITID) {
	for _, t := range affected.Threads() {
		for r := range c.lastWriter[t] {
			c.lastWriter[t][r] = nil
			c.activeWriters[t][r] = 0
		}
	}
	for _, w := range c.window {
		if w.state == uopSquashed {
			continue
		}
		dest, ok := w.inst.Dest()
		if !ok {
			continue
		}
		for _, t := range w.itid.Threads() {
			if affected.Has(t) {
				c.lastWriter[t][dest] = w
				c.activeWriters[t][dest]++
			}
		}
	}
}

// regroupAfterSquash pulls the affected threads out of their fetch groups
// into fresh singleton groups that resume after the redirect penalty.
func (c *Core) regroupAfterSquash(affected ITID, now uint64) {
	for _, g := range c.groups {
		if g.dead || g.members&affected == 0 {
			continue
		}
		c.dissolveLinks(g)
		g.members &^= affected
		if g.members == 0 {
			g.dead = true
		}
	}
	for _, t := range affected.Threads() {
		c.fhb[t].Clear()
		c.groups = append(c.groups, &group{
			members:    ITIDOf(t),
			stallUntil: now + c.cfg.MispredictPenalty,
		})
	}
}
