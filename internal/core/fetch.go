package core

import (
	"fmt"

	"mmt/internal/isa"
	"mmt/internal/obs"
)

// group is a set of threads fetching the same instruction stream (one
// fetch PC). With shared fetch disabled every thread is a permanent
// singleton group. Groups split at divergent control instructions and
// merge back through DETECT/CATCHUP (or directly, when their fetch PCs
// coincide).
type group struct {
	members ITID
	// stallUntil delays fetch (I-cache miss fill, mispredict redirect,
	// rollback refetch penalty).
	stallUntil uint64
	// waitBranch is a mispredicted control uop this group's fetch waits
	// on; cleared at resolution.
	waitBranch *uop
	// ahead is the group this one is catching up to (behind role).
	ahead *group
	// behindCnt counts groups catching up to this one (ahead role).
	behindCnt int
	// takenSinceDiverge counts taken branches fetched since this group
	// was created by a divergence (remerge-distance statistic).
	takenSinceDiverge uint64
	// divergePC is the control-instruction PC whose divergence created
	// this group (0 for initial groups and post-squash regroups); the
	// attribution probe charges this group's catchup cycles and eventual
	// remerge to that site.
	divergePC uint64
	// catchupInsts counts instructions fetched while catching up; a
	// bound aborts catchups that fail to converge (liveness valve).
	catchupInsts uint64
	// Software-hint synchronization (SyncHints): the group is parked at
	// a remerge hint until parkDeadline; after a timeout it refuses to
	// re-park until parkCooldown.
	parked       bool
	parkDeadline uint64
	parkCooldown uint64
	dead         bool
}

// catchupLimit bounds instructions a behind group may fetch in one CATCHUP
// episode before the attempt is abandoned as a false positive.
const catchupLimit = 2048

// groupMode classifies the fetch mode of instructions this group fetches
// (paper Fig. 3a / Fig. 5d accounting). The boosted-priority behind thread
// is in CATCHUP; the ahead thread keeps fetching in its own mode.
func (g *group) fetchMode() FetchMode {
	if g.ahead != nil {
		return FetchCatchup
	}
	if g.members.Count() >= 2 {
		return FetchMerge
	}
	return FetchDetect
}

// canFetch reports whether the group can fetch at cycle now.
func (c *Core) canFetch(g *group, now uint64) bool {
	if g.dead || g.stallUntil > now || g.waitBranch != nil {
		return false
	}
	if g.parked {
		if now < g.parkDeadline {
			return false
		}
		// Timed out waiting at the hint: give up, resume, and refuse
		// to re-park for a cooldown period.
		g.parked = false
		g.parkCooldown = now + c.cfg.HintParkTimeout
	}
	_, ok := c.streams[g.members.First()].nextPC()
	return ok
}

// pruneExhausted removes members whose streams are exhausted (halted or
// instruction-capped, not errored) from a multi-member group, returning
// true if any were removed. Under a per-thread MaxInsts cap, members of a
// merged group can run out at different times — the divergent paths they
// took before merging left their cursors at different counts — and an
// exhausted member must not pin the whole group: with it still aboard,
// either fetch stalls forever on an exhausted leader (the remaining
// members never drain, so the run never ends) or buildUop trips its
// group invariant on an exhausted non-leader.
func (c *Core) pruneExhausted(g *group) bool {
	if g.members.Count() < 2 {
		return false
	}
	var live, done ITID
	for _, t := range g.members.Threads() {
		if c.streams[t].exhausted() {
			done = done.With(t)
		} else {
			live = live.With(t)
		}
	}
	if done == 0 || live == 0 {
		return false
	}
	// The exhausted threads need no group: they will never fetch again,
	// and their in-flight uops commit per-thread regardless.
	g.members = live
	return true
}

// cancelCatchup drops g's behind-role link.
func (c *Core) cancelCatchup(g *group) {
	if g.ahead != nil {
		g.ahead.behindCnt--
		g.ahead = nil
	}
}

// dissolveLinks removes every catchup association involving g.
func (c *Core) dissolveLinks(g *group) {
	c.cancelCatchup(g)
	if g.behindCnt > 0 {
		for _, o := range c.groups {
			if o.ahead == g {
				o.ahead = nil
			}
		}
		g.behindCnt = 0
	}
}

// liveGroups compacts the group list, dropping dead groups.
func (c *Core) liveGroups() []*group {
	out := c.groups[:0]
	for _, g := range c.groups {
		if !g.dead {
			out = append(out, g)
		}
	}
	c.groups = out
	return out
}

// attemptMerges unifies groups whose fetch PCs coincide. This covers both
// the CATCHUP completion case (the behind group reached the ahead group's
// PC) and the degenerate case where divergent paths re-join exactly in
// step.
func (c *Core) attemptMerges(now uint64) {
	if !c.cfg.SharedFetch {
		return
	}
	for changed := true; changed; {
		changed = false
		gs := c.liveGroups()
		for i := 0; i < len(gs) && !changed; i++ {
			for j := i + 1; j < len(gs); j++ {
				a, b := gs[i], gs[j]
				if a.stallUntil > now || b.stallUntil > now || a.waitBranch != nil || b.waitBranch != nil {
					continue
				}
				pa, oka := c.streams[a.members.First()].nextPC()
				pb, okb := c.streams[b.members.First()].nextPC()
				if !oka || !okb || pa != pb {
					continue
				}
				c.mergeGroups(a, b)
				changed = true
				break
			}
		}
	}
}

// mergeGroups unifies b into a.
func (c *Core) mergeGroups(a, b *group) {
	c.stats.Remerges++
	var mergePC uint64
	if c.rec != nil || c.probe != nil {
		// The groups merge because their next fetch PCs are equal; that
		// common PC is the observed reconvergence point.
		mergePC, _ = c.streams[a.members.First()].nextPC()
	}
	if c.rec != nil {
		c.emit(obs.EvRemerge, int32(a.members.First()), mergePC, uint64((a.members | b.members).Count()))
	}
	dist := a.takenSinceDiverge
	if b.takenSinceDiverge > dist {
		dist = b.takenSinceDiverge
	}
	c.stats.RecordRemergeDistance(dist)
	if c.probe != nil {
		dp := a.divergePC
		if dp == 0 {
			dp = b.divergePC
		}
		c.probe.Remerge(dp, mergePC, dist)
	}
	c.dissolveLinks(a)
	c.dissolveLinks(b)
	a.members |= b.members
	a.takenSinceDiverge = 0
	a.divergePC = 0
	a.parked = false
	a.parkCooldown = 0
	if b.stallUntil > a.stallUntil {
		a.stallUntil = b.stallUntil
	}
	b.dead = true
	b.members = 0
	// The FHBs keep their rolling history: if the merged group diverges
	// again soon, the recent common-path targets are still valid for
	// re-detecting the remerge (stale entries are handled by the
	// CATCHUP false-positive abort).
}

// splitGroup replaces g with one subgroup per distinct next PC after a
// divergent control instruction at pc (the attributed divergence site).
func (c *Core) splitGroup(g *group, parts []ITID, pc uint64) []*group {
	c.stats.Divergences++
	c.dissolveLinks(g)
	g.dead = true
	g.members = 0
	var out []*group
	for _, p := range parts {
		ng := &group{members: p, stallUntil: g.stallUntil, divergePC: pc}
		c.groups = append(c.groups, ng)
		out = append(out, ng)
	}
	return out
}

// fetchOrder returns groups in fetch priority order: behind (CATCHUP)
// groups first, then ordinary groups round-robin, then ahead-engaged
// groups — but only when every group catching up to them cannot fetch
// this cycle (the paper lowers the ahead thread's priority so the behind
// thread can close the gap).
func (c *Core) fetchOrder(now uint64) []*group {
	gs := c.liveGroups()
	var behind, normal, engaged []*group
	for _, g := range gs {
		switch {
		case g.ahead != nil:
			behind = append(behind, g)
		case g.behindCnt > 0:
			engaged = append(engaged, g)
		default:
			normal = append(normal, g)
		}
	}
	if len(normal) > 1 {
		r := int(c.rotate) % len(normal)
		normal = append(normal[r:], normal[:r]...)
	}
	c.rotate++
	order := append(behind, normal...)
	for _, g := range engaged {
		// The ahead thread keeps a reduced duty cycle (the paper lowers
		// its priority rather than freezing it) and always fetches when
		// every group catching up to it is stalled anyway.
		allStalled := true
		for _, b := range gs {
			if b.ahead == g && c.canFetch(b, now) {
				allStalled = false
				break
			}
		}
		if allStalled || (c.cfg.AheadDuty > 0 && now%c.cfg.AheadDuty == 0) {
			order = append(order, g)
		}
	}
	return order
}

// fetchStage fetches up to FetchWidth instructions into the fetch queue.
func (c *Core) fetchStage(now uint64) {
	c.attemptMerges(now)
	width := c.cfg.FetchWidth
	groupsLeft := c.cfg.MaxFetchGroups
	for _, g := range c.fetchOrder(now) {
		if width <= 0 || groupsLeft <= 0 {
			break
		}
		n := c.fetchGroup(g, width, now)
		width -= n
		if n > 0 {
			groupsLeft--
		}
		if g.ahead != nil {
			g.catchupInsts += uint64(n)
			if g.catchupInsts > catchupLimit {
				c.stats.CatchupsAborted++
				c.emit(obs.EvCatchupAbort, int32(g.members.First()), 0, g.catchupInsts)
				c.cancelCatchup(g)
				g.catchupInsts = 0
			}
		}
	}
}

// fetchGroup fetches a run of instructions for one group; returns the
// number of fetch slots consumed.
func (c *Core) fetchGroup(g *group, width int, now uint64) int {
	// A group waiting on an unresolved mispredicted branch fetches down
	// the wrong path: the slots are consumed (and never become uops),
	// instead of being silently re-assigned to other threads.
	if g.waitBranch != nil && g.stallUntil <= now && !g.dead {
		share := c.cfg.FetchWidth / c.cfg.MaxFetchGroups
		if share < 1 {
			share = 1
		}
		if share > width {
			share = width
		}
		c.stats.WrongPathFetchSlots += uint64(share)
		return share
	}
	c.pruneExhausted(g)
	if !c.canFetch(g, now) {
		return 0
	}
	leader := g.members.First()
	startPC, _ := c.streams[leader].nextPC()

	// Trace-cache lookup at the cycle's fetch point: a hit lets fetch
	// continue through taken branches, and — per §5's "perfect trace
	// prediction" — control flow inside a resident trace never pays a
	// resolution stall.
	hops := 0
	traceHit := false
	if c.tc != nil {
		if br, ok := c.tc.Lookup(startPC); ok {
			hops = br
			if hops > c.cfg.TraceHops {
				hops = c.cfg.TraceHops
			}
			traceHit = true
			c.stats.TraceCacheHits++
		}
	}

	fetched := 0
	var curLine uint64
	lineValid := false
	for fetched < width {
		if len(c.fetchQ) >= c.cfg.FetchQueue {
			c.stats.FetchQFullStop++
			c.noteStall(obs.StallFetchQ)
			break
		}
		rec, ok := c.streams[leader].peek()
		if !ok {
			break
		}
		// CATCHUP completion: the behind group's fetch PC reached the
		// (frozen) ahead group's PC — merge instead of fetching past
		// it. This check must be per-instruction: at 8-wide fetch the
		// behind thread would otherwise jump over the merge point
		// inside a cycle.
		if g.ahead != nil && !g.ahead.dead {
			if apc, aok := c.streams[g.ahead.members.First()].nextPC(); aok && apc == rec.pc {
				ahead := g.ahead
				c.mergeGroups(ahead, g)
				break
			}
		}
		// Software-hint synchronization (Thread Fusion baseline): park
		// at a remerge hint while other thread groups are still out,
		// so they can arrive and merge here.
		if c.cfg.Sync == SyncHints && c.hintPCs[rec.pc] && now >= g.parkCooldown &&
			g.members.Count() < c.cfg.Threads && len(c.liveGroups()) > 1 {
			g.parked = true
			g.parkDeadline = now + c.cfg.HintParkTimeout
			c.stats.HintParks++
			break
		}
		// Instruction-cache access at line granularity.
		line := rec.pc &^ uint64(c.cfg.Mem.L1I.LineBytes-1)
		if !lineValid || line != curLine {
			done := c.mem.FetchInst(rec.pc, now)
			curLine, lineValid = line, true
			if done > now+c.cfg.Mem.L1Latency {
				g.stallUntil = done
				break
			}
		}

		if c.pruneExhausted(g) {
			break // a member's cap hit mid-run; regroup next cycle
		}
		u := c.buildUop(g, rec, now, traceHit)
		fetched++
		if u == nil { // divergence or stall decided inside
			break
		}
		if u.halt {
			break
		}
		if u.inst.Op.IsControl() {
			taken := u.effs[leader].Taken
			if g.waitBranch != nil {
				break // mispredicted: stall until resolution
			}
			if taken {
				if hops > 0 {
					hops--
					continue // trace cache: fetch through the branch
				}
				break // redirect: resume next cycle
			}
		}
	}
	return fetched
}

// buildUop consumes one record from every member stream, creates the uop,
// places it in the fetch queue, and handles control-flow consequences
// (prediction, divergence, FHB bookkeeping). Returns nil when the group
// diverged (the uop itself is still enqueued).
func (c *Core) buildUop(g *group, leadRec *dynRec, now uint64, traceHit bool) *uop {
	u := &uop{
		pc:        leadRec.pc,
		inst:      leadRec.inst,
		class:     leadRec.inst.Op.Class(),
		itid:      g.members,
		fetchITID: g.members,
		mode:      g.fetchMode(),
		halt:      leadRec.inst.Op == isa.OpHalt,
		isLoad:    leadRec.inst.Op.Class() == isa.ClassLoad,
		isStore:   leadRec.inst.Op.Class() == isa.ClassStore,
	}
	for _, t := range g.members.Threads() {
		rec, ok := c.streams[t].peek()
		if !ok {
			panic(fmt.Sprintf("core: group invariant violated: thread %d exhausted, leader at %#x", t, u.pc))
		}
		if rec.pc != u.pc {
			panic(fmt.Sprintf("core: group invariant violated: thread %d at %#x, leader at %#x", t, rec.pc, u.pc))
		}
		u.effs[t] = rec.eff
		u.dynIdx[t] = rec.idx
		c.streams[t].advance()
	}
	c.fetchQ = append(c.fetchQ, u)
	c.stats.FetchAccesses++
	c.stats.FetchedByMode[u.mode] += uint64(g.members.Count())

	if !u.inst.Op.IsControl() {
		return u
	}
	return c.handleControl(g, u, now, traceHit)
}

// handleControl performs branch prediction, detects divergence, and drives
// the DETECT/CATCHUP state machine. Returns nil if the group diverged.
// traceHit enables perfect trace prediction: control flow along the
// (leader's) trace path pays no resolution stall, and subgroups leaving
// the trace pay only a fixed front-end redirect.
func (c *Core) handleControl(g *group, u *uop, now uint64, traceHit bool) *uop {
	leader := g.members.First()
	c.stats.BranchUops++

	// Partition members by actual next PC (the oracle's outcomes).
	var parts []ITID
	var partPC []uint64
	for _, t := range g.members.Threads() {
		np := u.effs[t].NextPC
		found := false
		for i, pc := range partPC {
			if pc == np {
				parts[i] = parts[i].With(t)
				found = true
				break
			}
		}
		if !found {
			parts = append(parts, ITIDOf(t))
			partPC = append(partPC, np)
		}
	}

	// Prediction. One front-end prediction per fetched control uop.
	predictedNext := u.pc + isa.InstBytes
	switch {
	case u.inst.Op.IsBranch():
		if c.bp.Dir.Predict(leader, u.pc) {
			predictedNext = uint64(u.inst.Imm)
		}
		// Train with each member's outcome (shared PHT, per-thread
		// history, as in an SMT front end).
		for _, t := range g.members.Threads() {
			if c.bp.Dir.Update(t, u.pc, u.effs[t].Taken) {
				if t == leader {
					c.stats.PredictorHits++
				}
			}
		}
	case u.inst.Op == isa.OpJal:
		predictedNext = uint64(u.inst.Imm)
		if u.inst.Rd == isa.RegRA {
			for _, t := range g.members.Threads() {
				c.bp.RAS[t].Push(u.pc + isa.InstBytes)
			}
			c.stats.RASPushes++
		}
	case u.inst.Op == isa.OpJalr:
		if u.inst.Rd == isa.RegZero && u.inst.Rs1 == isa.RegRA {
			// Return: predict with the RAS.
			c.stats.RASPops++
			for _, t := range g.members.Threads() {
				if tgt, ok := c.bp.RAS[t].Pop(); ok && t == leader {
					predictedNext = tgt
				}
			}
		} else {
			c.stats.BTBLookups++
			if tgt, ok := c.bp.BTB.Lookup(u.pc); ok {
				predictedNext = tgt
			}
			c.bp.BTB.Insert(u.pc, u.effs[leader].NextPC)
		}
	}

	// Taken-branch bookkeeping: FHB recording and catchup transitions
	// happen whenever the machine is not globally merged.
	takenAny := false
	for _, t := range g.members.Threads() {
		if u.effs[t].Taken {
			takenAny = true
		}
	}
	if takenAny && c.cfg.SharedFetch && len(c.liveGroups()) > 1 {
		g.takenSinceDiverge++
		if c.cfg.Sync == SyncFHB {
			target := u.effs[leader].NextPC
			for _, t := range g.members.Threads() {
				c.fhb[t].Record(target)
				c.stats.FHBInserts++
			}
			c.updateCatchup(g, target)
		}
	}

	// The path the front end follows without a redirect: the trace path
	// under perfect trace prediction, the predictor's path otherwise.
	followPath := predictedNext
	if traceHit {
		followPath = u.effs[leader].NextPC
	}

	if len(parts) > 1 {
		// Divergence: split the group. Subgroups leaving the followed
		// path redirect — a fixed front-end penalty under a trace hit,
		// a stall until the branch resolves otherwise.
		c.stats.RecordDivergencePC(u.pc)
		c.emit(obs.EvDiverge, int32(leader), u.pc, uint64(len(parts)))
		if c.probe != nil {
			c.probe.Diverge(u.pc, len(parts))
		}
		subs := c.splitGroup(g, parts, u.pc)
		for i, sg := range subs {
			if partPC[i] == followPath {
				continue
			}
			c.stats.Mispredicts++
			c.emit(obs.EvMispredict, int32(sg.members.First()), u.pc, 0)
			if traceHit {
				if s := now + c.cfg.DivergeRedirectPenalty; s > sg.stallUntil {
					sg.stallUntil = s
				}
			} else {
				sg.waitBranch = u
				u.stalledGroups = append(u.stalledGroups, sg)
			}
		}
		return nil
	}

	// Unanimous outcome: a wrong front-end path stalls the whole group.
	if u.effs[leader].NextPC != followPath {
		c.stats.Mispredicts++
		c.emit(obs.EvMispredict, int32(leader), u.pc, 0)
		g.waitBranch = u
		u.stalledGroups = append(u.stalledGroups, g)
	}
	return u
}

// updateCatchup advances the DETECT/CATCHUP state machine for group g
// after it fetched a taken branch to target.
func (c *Core) updateCatchup(g *group, target uint64) {
	c.stats.FHBSearches++
	if g.ahead != nil {
		// CATCHUP: the behind group must keep finding its targets in
		// the ahead group's history, else the match was a false
		// positive and we fall back to DETECT (§4.1).
		if !c.groupFHBContains(g.ahead, target) {
			c.stats.CatchupsAborted++
			c.emit(obs.EvCatchupAbort, int32(g.members.First()), target, g.catchupInsts)
			c.cancelCatchup(g)
		}
		return
	}
	// DETECT: search other groups' member FHBs for our target.
	for _, o := range c.groups {
		if o.dead || o == g || o.members&g.members != 0 {
			continue
		}
		if c.groupFHBContains(o, target) {
			g.ahead = o
			g.catchupInsts = 0
			o.behindCnt++
			c.stats.CatchupsStarted++
			c.emit(obs.EvCatchupStart, int32(g.members.First()), target, uint64(o.members.First()))
			return
		}
	}
}

func (c *Core) groupFHBContains(g *group, target uint64) bool {
	for _, t := range g.members.Threads() {
		if c.fhb[t].Contains(target) {
			return true
		}
	}
	return false
}

// retireTrace feeds the per-thread trace builders at commit.
func (c *Core) retireTrace(u *uop) {
	if c.tc == nil {
		return
	}
	for _, t := range u.itid.Threads() {
		c.tb[t].Retire(u.pc, u.effs[t].Taken)
	}
}
