package core

import (
	"testing"

	"mmt/internal/prog"
)

// Targeted coverage of configuration knobs on small programs; every run
// is oracle-checked by runCore.

func TestTraceHopsExtendFetch(t *testing.T) {
	// A fetch-bound loop (wide independent body, taken back-edge): with
	// TraceHops the front end fetches through the back-edge instead of
	// losing the rest of the cycle.
	src := `
        li   r5, 2000
loop:   addi r6, r6, 1
        addi r7, r7, 1
        addi r8, r8, 1
        addi r9, r9, 1
        addi r10, r10, 1
        addi r11, r11, 1
        addi r12, r12, 1
        addi r5, r5, -1
        bnez r5, loop
        halt
`
	run := func(hops int) *Stats {
		cfg := DefaultConfig(1)
		cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = false, false, false
		cfg.TraceHops = hops
		st, _ := runCore(t, cfg, src, prog.ModeME, nil)
		return st
	}
	without := run(0)
	with := run(3)
	if with.Cycles >= without.Cycles {
		t.Errorf("trace hops did not speed the loop: %d vs %d cycles", with.Cycles, without.Cycles)
	}
	if with.TraceCacheHits == 0 {
		t.Error("no trace-cache hits")
	}
}

func TestSyncNoneStillMergesAtPCCoincidence(t *testing.T) {
	// Identical instances never diverge, so even SyncNone keeps them
	// merged from the entry point.
	cfg := DefaultConfig(2)
	cfg.Sync = SyncNone
	st, _ := runCore(t, cfg, loopSrc, prog.ModeME, nil)
	ei, _, _, _ := st.IdenticalFractions()
	if ei < 0.99 {
		t.Errorf("SyncNone exec-identical = %f on identical instances", ei)
	}
	if st.FHBSearches != 0 {
		t.Error("SyncNone searched FHBs")
	}
}

func TestSyncNoneDivergedBehaviour(t *testing.T) {
	// With divergence, SyncNone relies purely on PC coincidence: no
	// catchup episodes, no FHB activity, and the run still completes
	// correctly (oracle-checked by runCore). Which policy merges more is
	// workload-dependent (see the sync ablation), so no ordering is
	// asserted here.
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	cfgN := DefaultConfig(2)
	cfgN.Sync = SyncNone
	stN, _ := runCore(t, cfgN, divergeSrc, prog.ModeME, init)
	if stN.CatchupsStarted != 0 || stN.FHBInserts != 0 {
		t.Errorf("SyncNone used the detector: catchups=%d inserts=%d",
			stN.CatchupsStarted, stN.FHBInserts)
	}
	if stN.Divergences == 0 {
		t.Error("no divergences on divergent inputs")
	}
}

func TestMaxFetchGroupsTwo(t *testing.T) {
	// Two fetch groups per cycle let independent threads share the front
	// end within a cycle; the run must stay correct either way.
	cfg := DefaultConfig(2)
	cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = false, false, false
	cfg.MaxFetchGroups = 2
	two, _ := runCore(t, cfg, wideLoopSrc, prog.ModeME, nil)
	cfg1 := DefaultConfig(2)
	cfg1.SharedFetch, cfg1.SharedExec, cfg1.RegMerge = false, false, false
	cfg1.MaxFetchGroups = 1
	one, _ := runCore(t, cfg1, wideLoopSrc, prog.ModeME, nil)
	if two.Cycles > one.Cycles {
		t.Errorf("two fetch groups slower than one: %d vs %d", two.Cycles, one.Cycles)
	}
}

func TestWrongPathFetchAccounting(t *testing.T) {
	// A hard-to-predict branch outside trace coverage burns wrong-path
	// fetch slots while resolving.
	src := `
        li    r4, input
        ld    r25, 0(r4)
        li    r5, 400
loop:   mul   r25, r25, r25
        addi  r25, r25, 13
        srli  r6, r25, 7
        andi  r6, r6, 1
        beqz  r6, skip
        addi  r7, r7, 1
skip:   addi  r5, r5, -1
        bnez  r5, loop
        halt
        .data
input:  .word 99
`
	cfg := DefaultConfig(1)
	cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = false, false, false
	cfg.TraceCacheBytes = 0 // no perfect trace prediction
	st, _ := runCore(t, cfg, src, prog.ModeME, nil)
	if st.Mispredicts == 0 {
		t.Fatal("no mispredicts on a random branch")
	}
	if st.WrongPathFetchSlots == 0 {
		t.Error("no wrong-path fetch accounted during branch resolution")
	}
}

func TestCatchupAbortValve(t *testing.T) {
	// The liveness valve: catchups that fail to converge are abandoned
	// rather than gating the ahead thread forever. Exercised by apps with
	// false-positive-prone FHB contents; here just verify the counter
	// stays consistent on a divergent kernel.
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	cfg := DefaultConfig(2)
	cfg.FHBSize = 2 // tiny history: catchup matches go stale quickly
	st, _ := runCore(t, cfg, divergeSrc, prog.ModeME, init)
	if st.CatchupsStarted < st.CatchupsAborted {
		t.Errorf("aborted (%d) exceeds started (%d)", st.CatchupsAborted, st.CatchupsStarted)
	}
}

func TestHintParkTimeout(t *testing.T) {
	// Under SyncHints with a partner that never reaches the hint, the
	// parked group must resume after the timeout (liveness).
	src := `
        li    r4, input
        ld    r5, 0(r4)
        li    r7, 40
loop:   bnez  r5, odd
        addi  r8, r8, 1
        addi  r8, r8, 2
        j     join
odd:    addi  r9, r9, 1
        addi  r9, r9, 2
        addi  r9, r9, 3
join:   addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 0
`
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	cfg := DefaultConfig(2)
	cfg.Sync = SyncHints
	cfg.HintParkTimeout = 25
	st, _ := runCore(t, cfg, src, prog.ModeME, init)
	if st.HintParks == 0 {
		t.Error("hints policy never parked on a divergent kernel")
	}
}

func TestRegMergePortsZeroDisables(t *testing.T) {
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	src := `
        li    r4, input
        ld    r5, 0(r4)
        bnez  r5, other
        li    r6, 99
        j     join
other:  nop
        li    r6, 99
join:   li    r7, 200
loop:   add   r8, r6, r7
        addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 0
`
	cfg := DefaultConfig(2)
	cfg.RegMergePorts = 0
	st, _ := runCore(t, cfg, src, prog.ModeME, init)
	if st.RegMergeCompares != 0 || st.RegMergeHits != 0 {
		t.Errorf("zero ports still compared: %d/%d", st.RegMergeCompares, st.RegMergeHits)
	}
}

func TestAheadDutyZeroFullyGates(t *testing.T) {
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	cfg := DefaultConfig(2)
	cfg.AheadDuty = 0
	st, _ := runCore(t, cfg, divergeSrc, prog.ModeME, init)
	// Correctness is the oracle check; the run must also still remerge.
	if st.Remerges == 0 {
		t.Error("fully gated catchup never remerged")
	}
}

func TestValidateSplitsInvariant(t *testing.T) {
	// Run a churny kernel with the split-network cross-check armed; a
	// panic fails the test.
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	cfg := DefaultConfig(2)
	cfg.ValidateSplits = true
	runCore(t, cfg, divergeSrc, prog.ModeME, init)
	cfg4 := DefaultConfig(4)
	cfg4.ValidateSplits = true
	runCore(t, cfg4, lvipStormSrc, prog.ModeME, lvipInit)
}
