package core

import (
	"testing"
	"testing/quick"
)

func TestITIDBasics(t *testing.T) {
	m := ITIDOf(1).With(3)
	if !m.Has(1) || !m.Has(3) || m.Has(0) || m.Has(2) {
		t.Errorf("membership wrong for %v", m)
	}
	if m.Count() != 2 {
		t.Errorf("count = %d", m.Count())
	}
	if m.First() != 1 {
		t.Errorf("first = %d", m.First())
	}
	got := m.Threads()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("threads = %v", got)
	}
	if m.Without(1) != ITIDOf(3) {
		t.Errorf("without = %v", m.Without(1))
	}
	if ITID(0).First() != -1 {
		t.Error("empty first")
	}
}

func TestITIDString(t *testing.T) {
	if s := ITIDOf(0).With(1).With(2).With(3).String(); s != "1111" {
		t.Errorf("full = %q", s)
	}
	if s := ITIDOf(1).With(2).String(); s != "0110" {
		t.Errorf("0110 = %q", s)
	}
	if s := ITID(0).String(); s != "0000" {
		t.Errorf("empty = %q", s)
	}
}

func TestITIDProperties(t *testing.T) {
	prop := func(raw uint8) bool {
		m := ITID(raw & 0xf)
		// Count equals number of Threads.
		if len(m.Threads()) != m.Count() {
			return false
		}
		// With/Without round trip.
		for _, th := range m.Threads() {
			if m.Without(th).With(th) != m {
				return false
			}
		}
		// First is the minimum member.
		if m != 0 && m.Threads()[0] != m.First() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
