package core

// SplitNetwork is a structural model of the paper's instruction-splitting
// logic (§4.2.2): the combinational cascade the authors synthesized in
// VHDL (§4.3, Table 3's "Inst Split" row). It computes the same minimal
// ITID set as RST.Partition, but the way the hardware does:
//
//  1. For every *entry* — every sharing combination of 2–4 threads — AND
//     together the RST pair bits of all source registers: the entry is 1
//     iff every pair inside the combination shares every source.
//  2. The Filter masks out entries that are not subsets of the incoming
//     ITID ("not possible outcomes of this ITID").
//  3. The Chooser outputs the surviving entry with the most threads.
//  4. The cascade repeats on the remaining threads — at most three splits
//     for four threads ("we can split the instruction up to three times").
//
// The equivalence of this cascade with the register-version partition is
// checked by TestSplitNetworkMatchesPartition; it holds because RST pair
// bits derived from mapping versions form an equivalence relation.
type SplitNetwork struct {
	threads int
	// entries are the candidate EIDs: every thread subset of size >= 2,
	// in chooser priority order (more threads first, then lower mask).
	entries []ITID
}

// NewSplitNetwork builds the network for n hardware threads.
func NewSplitNetwork(n int) *SplitNetwork {
	sn := &SplitNetwork{threads: n}
	// Enumerate subsets by descending popcount (chooser priority).
	for size := n; size >= 2; size-- {
		for m := ITID(1); m < 1<<n; m++ {
			if m.Count() == size {
				sn.entries = append(sn.entries, m)
			}
		}
	}
	return sn
}

// NumEntries returns the candidate-combination count (6 pair + 4 triple +
// 1 quad = 11 for four threads — the 11 bits per register of Table 3).
func (sn *SplitNetwork) NumEntries() int { return len(sn.entries) }

// PairBits is the per-instruction readout the splitter consumes: bit(i,j)
// must be 1 iff threads i and j have identical mappings for *every* source
// register of the instruction (the AND across source-register entries).
type PairBits func(i, j int) bool

// Evaluate runs the filter/chooser cascade and returns the minimal ITID
// set for an instruction fetched with itid.
func (sn *SplitNetwork) Evaluate(shared PairBits, itid ITID) []ITID {
	// Step 1: evaluate every entry's AND-of-pairs once.
	entryBit := make([]bool, len(sn.entries))
	for e, eid := range sn.entries {
		ok := true
		ths := eid.Threads()
		for a := 0; a < len(ths) && ok; a++ {
			for b := a + 1; b < len(ths); b++ {
				if !shared(ths[a], ths[b]) {
					ok = false
					break
				}
			}
		}
		entryBit[e] = ok
	}

	var out []ITID
	remaining := itid
	// Up to three chooser rounds; whatever remains is singletons.
	for round := 0; round < sn.threads-1 && remaining.Count() >= 2; round++ {
		chosen := ITID(0)
		for e, eid := range sn.entries {
			// Filter: the entry must be a possible outcome of the
			// remaining ITID.
			if !entryBit[e] || eid&remaining != eid {
				continue
			}
			chosen = eid // entries are in priority order
			break
		}
		if chosen == 0 {
			break
		}
		out = append(out, chosen)
		remaining &^= chosen
	}
	for t := 0; t < sn.threads; t++ {
		if remaining.Has(t) {
			out = append(out, ITIDOf(t))
		}
	}
	return out
}

// GateEstimate returns a rough two-input-gate count for the network,
// the supplementary structural figure behind Table 3's synthesized-area
// row: per source register, each entry ANDs its pair bits; the filter is
// one AND per entry; the chooser is a priority encoder; the cascade
// replicates filter+chooser three times.
func (sn *SplitNetwork) GateEstimate(sources int) int {
	pairANDs := 0
	for _, eid := range sn.entries {
		k := eid.Count()
		pairANDs += k*(k-1)/2 - 1 // AND tree over the entry's pair bits
	}
	perSource := pairANDs + len(sn.entries) // + source-combining ANDs
	filter := len(sn.entries)               // mask against the ITID
	chooser := 2 * len(sn.entries)          // priority encoder ~2 gates/entry
	cascade := sn.threads - 1
	return sources*perSource + cascade*(filter+chooser)
}
