package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

func TestSplitNetworkEntryCount(t *testing.T) {
	// Table 3: 11 sharing combinations for 4 threads (6 pairs, 4 triples,
	// 1 quad).
	if n := NewSplitNetwork(4).NumEntries(); n != 11 {
		t.Errorf("entries = %d, want 11", n)
	}
	if n := NewSplitNetwork(2).NumEntries(); n != 1 {
		t.Errorf("2-thread entries = %d, want 1", n)
	}
	if n := NewSplitNetwork(3).NumEntries(); n != 4 {
		t.Errorf("3-thread entries = %d, want 4", n)
	}
}

func TestSplitNetworkAllShared(t *testing.T) {
	sn := NewSplitNetwork(4)
	all := func(i, j int) bool { return true }
	got := sn.Evaluate(all, ITID(0b1111))
	if len(got) != 1 || got[0] != ITID(0b1111) {
		t.Errorf("all-shared = %v", got)
	}
	// Subset ITIDs stay merged within themselves.
	got = sn.Evaluate(all, ITID(0b0110))
	if len(got) != 1 || got[0] != ITID(0b0110) {
		t.Errorf("subset = %v", got)
	}
}

func TestSplitNetworkNoneShared(t *testing.T) {
	sn := NewSplitNetwork(4)
	none := func(i, j int) bool { return false }
	got := sn.Evaluate(none, ITID(0b1111))
	if len(got) != 4 {
		t.Errorf("none-shared = %v", got)
	}
	for _, e := range got {
		if e.Count() != 1 {
			t.Errorf("non-singleton %v", e)
		}
	}
}

func TestSplitNetworkPaperExample(t *testing.T) {
	// §4.2.2's example: ITID 0110 can stay merged or split into 0100 and
	// 0010 — entries outside {0110, 0100, 0010} are filtered out.
	sn := NewSplitNetwork(4)
	// Threads 1 and 2 do NOT share; everything else does.
	pair := func(i, j int) bool { return !(i == 1 && j == 2 || i == 2 && j == 1) }
	got := sn.Evaluate(pair, ITID(0b0110))
	if len(got) != 2 {
		t.Fatalf("split = %v", got)
	}
	set := map[ITID]bool{got[0]: true, got[1]: true}
	if !set[ITIDOf(1)] || !set[ITIDOf(2)] {
		t.Errorf("split = %v, want {0100, 0010}", got)
	}
}

func TestSplitNetworkChoosesLargest(t *testing.T) {
	sn := NewSplitNetwork(4)
	// {0,1,2} mutually share; 3 is alone.
	pair := func(i, j int) bool { return i != 3 && j != 3 }
	got := sn.Evaluate(pair, ITID(0b1111))
	if len(got) != 2 {
		t.Fatalf("split = %v", got)
	}
	if got[0] != ITID(0b0111) {
		t.Errorf("chooser picked %v, want 0111 first", got[0])
	}
	if got[1] != ITIDOf(3) {
		t.Errorf("remainder = %v", got[1])
	}
}

// TestSplitNetworkMatchesPartition is the hardware/model equivalence
// property: for random register-version states and random instructions,
// the §4.2.2 filter/chooser cascade produces exactly the partition the
// simulator's RST computes.
func TestSplitNetworkMatchesPartition(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nthreads := 2 + r.Intn(3)
		rst := NewRST(nthreads, prog.ModeME)
		// Random history of merged and split writes.
		for i := 0; i < 60; i++ {
			reg := uint8(1 + r.Intn(isa.NumRegs-1))
			if r.Intn(2) == 0 {
				var m ITID
				for m.Count() < 2 {
					m = ITID(r.Intn(1<<nthreads)) & (1<<nthreads - 1)
				}
				rst.WriteMerged(m, reg)
			} else {
				rst.WriteSplit(r.Intn(nthreads), reg)
			}
		}
		sn := NewSplitNetwork(nthreads)
		for trial := 0; trial < 30; trial++ {
			nsrc := r.Intn(3)
			srcs := make([]uint8, nsrc)
			for i := range srcs {
				srcs[i] = uint8(r.Intn(isa.NumRegs))
			}
			var itid ITID
			for itid == 0 {
				itid = ITID(r.Intn(1<<nthreads)) & (1<<nthreads - 1)
			}
			want, _ := rst.Partition(itid, srcs)
			pair := func(i, j int) bool {
				for _, s := range srcs {
					if s != isa.RegZero && !rst.Shared(i, j, s) {
						return false
					}
				}
				return true
			}
			got := sn.Evaluate(pair, itid)
			if !sameITIDSet(got, want) {
				t.Logf("seed %d: itid %v srcs %v: hardware %v vs partition %v",
					seed, itid, srcs, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func sameITIDSet(a, b []ITID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]ITID(nil), a...)
	bs := append([]ITID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestSplitNetworkGateEstimate(t *testing.T) {
	sn := NewSplitNetwork(4)
	g2 := sn.GateEstimate(2)
	g0 := sn.GateEstimate(0)
	if g2 <= g0 || g0 <= 0 {
		t.Errorf("gate estimates: %d (2 srcs) vs %d (0 srcs)", g2, g0)
	}
	// Order of magnitude: a few hundred gates, consistent with the
	// paper's small synthesized area.
	if g2 > 2000 {
		t.Errorf("gate estimate %d implausibly large", g2)
	}
}
