package core

import (
	"fmt"
	"strings"
)

// DumpState renders the machine's scheduling state for diagnostics: fetch
// groups, queue occupancies, per-thread ROB heads and stream positions.
func (c *Core) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d seq %d | fetchQ %d window %d robOcc %d iqOcc %d lsqOcc %d\n",
		c.now, c.seq, len(c.fetchQ), len(c.window), c.robOcc, c.iqOcc, c.lsqOcc)
	for i, g := range c.groups {
		if g.dead {
			continue
		}
		pc, ok := c.streams[g.members.First()].nextPC()
		status := "?"
		if ok {
			status = fmt.Sprintf("%#x", pc)
		} else {
			status = "exhausted"
		}
		wb := "-"
		if g.waitBranch != nil {
			wb = fmt.Sprintf("seq%d@%#x(state=%d)", g.waitBranch.seq, g.waitBranch.pc, g.waitBranch.state)
		}
		ahead := "-"
		if g.ahead != nil {
			ahead = g.ahead.members.String()
		}
		fmt.Fprintf(&b, "group %d members=%s nextPC=%s stallUntil=%d waitBranch=%s ahead=%s behindCnt=%d\n",
			i, g.members, status, g.stallUntil, wb, ahead, g.behindCnt)
	}
	for t := 0; t < c.cfg.Threads; t++ {
		head := "-"
		if len(c.robQ[t]) > 0 {
			u := c.robQ[t][0]
			head = fmt.Sprintf("seq%d@%#x %s itid=%s state=%d ndeps=%d doneAt=%d",
				u.seq, u.pc, u.inst, u.itid, u.state, u.ndeps, u.doneAt)
		}
		fmt.Fprintf(&b, "thread %d robQ=%d head: %s\n", t, len(c.robQ[t]), head)
	}
	n := 0
	for _, u := range c.window {
		if u.state == uopWaiting && n < 8 {
			fmt.Fprintf(&b, "waiting: seq%d@%#x %s itid=%s ndeps=%d\n", u.seq, u.pc, u.inst, u.itid, u.ndeps)
			n++
		}
	}
	return b.String()
}
