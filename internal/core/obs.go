package core

import "mmt/internal/obs"

// Attach wires an observer into the core: rec receives the typed event
// stream (divergences, remerges, catchup episodes, rollbacks, squashes,
// mispredicts, fetch-mode and stall-cause edges) and — when sampleEvery is
// non-zero — one occupancy/throughput sample every sampleEvery cycles.
//
// Every emission site guards on the recorder being nil, so an unattached
// core pays one pointer compare per site and allocates nothing; attaching
// never changes simulated behaviour, only reports it.
func (c *Core) Attach(rec obs.Recorder, sampleEvery uint64) {
	c.rec = rec
	c.sampleEvery = sampleEvery
}

// emit sends one discrete event at the current cycle.
func (c *Core) emit(kind obs.EventKind, track int32, pc, arg uint64) {
	if c.rec == nil {
		return
	}
	c.rec.Event(obs.Event{TS: c.now, Kind: kind, Track: track, PC: pc, Arg: arg})
}

// noteStall records this cycle's dominant backpressure cause (first site
// to report wins); observeCycle turns changes into EvStall edges.
func (c *Core) noteStall(cause obs.StallCause) {
	if c.rec != nil && c.cycleStall == obs.StallNone {
		c.cycleStall = cause
	}
}

// observeCycle runs at the end of every cycle while a recorder is
// attached: it emits stall-cause and fetch-mode-mix edges and the periodic
// occupancy sample.
func (c *Core) observeCycle() {
	if c.cycleStall != c.lastStall {
		c.emit(obs.EvStall, obs.TrackMachine, 0, uint64(c.cycleStall))
		c.lastStall = c.cycleStall
	}
	c.cycleStall = obs.StallNone

	m, d, cu := c.groupModeMix()
	packed := obs.PackModeMix(m, d, cu)
	if packed != c.lastModeMix {
		c.emit(obs.EvFetchMode, obs.TrackMachine, 0, packed)
		c.lastModeMix = packed
	}

	if c.sampleEvery > 0 && c.now%c.sampleEvery == 0 {
		c.rec.Sample(c.sample())
	}
}

// groupModeMix counts live fetch groups by mode.
func (c *Core) groupModeMix() (merge, detect, catchup int) {
	var mix [3]int
	for _, g := range c.groups {
		if !g.dead {
			mix[g.fetchMode()]++
		}
	}
	return mix[FetchMerge], mix[FetchDetect], mix[FetchCatchup]
}

// sample snapshots the machine for the periodic cycle sample.
func (c *Core) sample() obs.Sample {
	m, d, cu := c.groupModeMix()
	return obs.Sample{
		TS:             c.now,
		Committed:      c.stats.TotalCommitted(),
		FetchQ:         len(c.fetchQ),
		ROB:            c.robOcc,
		IQ:             c.iqOcc,
		LSQ:            c.lsqOcc,
		GroupsMerge:    m,
		GroupsDetect:   d,
		GroupsCatchup:  cu,
		FetchedMerge:   c.stats.FetchedByMode[FetchMerge],
		FetchedDetect:  c.stats.FetchedByMode[FetchDetect],
		FetchedCatchup: c.stats.FetchedByMode[FetchCatchup],
	}
}
