package core

// DistBuckets are the divergence-distance histogram bucket upper bounds in
// taken branches (paper Fig. 2 and §6.3).
var DistBuckets = []uint64{16, 32, 64, 128, 256, 512}

// Stats aggregates everything the experiments report.
type Stats struct {
	Cycles uint64

	// Per-thread committed architectural instructions.
	Committed [MaxThreads]uint64

	// Fetch behaviour. FetchedByMode counts per-thread instructions by
	// the fetch mode of the group that fetched them (Fig. 5d); merged
	// fetches count once per member thread. FetchAccesses counts actual
	// front-end fetch operations (the shared-fetch saving shows as
	// FetchAccesses < sum(FetchedByMode)).
	FetchedByMode [3]uint64
	FetchAccesses uint64

	// Commit-time classification of per-thread instructions (Fig. 5b).
	ExecIdentical      uint64 // committed merged (one execution, n threads)
	ExecIdentRegMerge  uint64 // merged only thanks to register merging
	FetchIdenticalOnly uint64 // fetched merged, executed split
	NotIdentical       uint64

	// Synchronization events.
	Divergences uint64
	// DivergencePCs histograms divergence sites (diagnostics). The map is
	// bounded: only the first MaxDivergencePCs distinct sites (in
	// deterministic simulation order) get dedicated counters; divergences
	// at any later site are pooled in DivergencePCOverflow, so long runs
	// cannot grow the map without bound.
	DivergencePCs map[uint64]uint64
	// DivergencePCOverflow counts divergences at sites beyond the
	// MaxDivergencePCs tracked ones.
	DivergencePCOverflow uint64
	Remerges             uint64
	CatchupsStarted      uint64
	CatchupsAborted      uint64
	// RemergeDistance histogram: taken branches between divergence and
	// remerge, bucketed per DistBuckets; the last bin is ">512".
	RemergeDistance [7]uint64

	// Branch prediction.
	BranchUops  uint64
	Mispredicts uint64
	// WrongPathFetchSlots counts fetch bandwidth burned on wrong-path
	// fetch while a mispredicted branch resolves.
	WrongPathFetchSlots uint64
	PredictorHits       uint64
	RASPushes           uint64
	RASPops             uint64
	BTBLookups          uint64
	TraceCacheHits      uint64

	// LVIP.
	LVIPRollbacks uint64

	// HintParks counts groups parked at software remerge hints
	// (SyncHints baseline only).
	HintParks uint64

	// Register merging.
	RegMergeCompares uint64
	RegMergeHits     uint64

	// Window/throughput events (also energy events).
	RenamedUops    uint64
	IssuedUops     uint64
	FUOps          uint64
	RegReads       uint64
	RegWrites      uint64
	LSQAccesses    uint64
	CommittedUops  uint64
	SquashedUops   uint64
	FetchQFullStop uint64
	ROBFullStop    uint64
	IQFullStop     uint64
	LSQFullStop    uint64

	// MMT overhead events (for the energy model).
	RSTUpdates  uint64
	FHBInserts  uint64
	FHBSearches uint64
	LVIPLookups uint64
	SplitOps    uint64
}

// MaxDivergencePCs bounds the DivergencePCs histogram. Real workloads have
// far fewer distinct divergence sites than this; the cap only matters for
// pathological or very long runs, where the overflow counter preserves the
// total while the per-site breakdown stays truncated.
const MaxDivergencePCs = 1024

// RecordDivergencePC counts one divergence at pc, respecting the
// MaxDivergencePCs bound.
func (s *Stats) RecordDivergencePC(pc uint64) {
	if s.DivergencePCs == nil {
		s.DivergencePCs = make(map[uint64]uint64)
	}
	if _, ok := s.DivergencePCs[pc]; ok || len(s.DivergencePCs) < MaxDivergencePCs {
		s.DivergencePCs[pc]++
		return
	}
	s.DivergencePCOverflow++
}

// TotalCommitted sums committed instructions over threads.
func (s *Stats) TotalCommitted() uint64 {
	var t uint64
	for _, c := range s.Committed {
		t += c
	}
	return t
}

// IPC returns committed per-thread instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalCommitted()) / float64(s.Cycles)
}

// FetchModeFractions returns the fraction of per-thread instructions
// fetched in MERGE, DETECT and CATCHUP modes.
func (s *Stats) FetchModeFractions() (merge, detect, catchup float64) {
	total := float64(s.FetchedByMode[0] + s.FetchedByMode[1] + s.FetchedByMode[2])
	if total == 0 {
		return 0, 0, 0
	}
	return float64(s.FetchedByMode[FetchMerge]) / total,
		float64(s.FetchedByMode[FetchDetect]) / total,
		float64(s.FetchedByMode[FetchCatchup]) / total
}

// IdenticalFractions returns the committed-instruction classification
// fractions of Fig. 5(b).
func (s *Stats) IdenticalFractions() (execIdent, execIdentRegMerge, fetchIdent, notIdent float64) {
	total := float64(s.ExecIdentical + s.ExecIdentRegMerge + s.FetchIdenticalOnly + s.NotIdentical)
	if total == 0 {
		return 0, 0, 0, 0
	}
	return float64(s.ExecIdentical) / total,
		float64(s.ExecIdentRegMerge) / total,
		float64(s.FetchIdenticalOnly) / total,
		float64(s.NotIdentical) / total
}

// RecordRemergeDistance buckets one divergence-to-remerge distance.
func (s *Stats) RecordRemergeDistance(takenBranches uint64) {
	for i, b := range DistBuckets {
		if takenBranches <= b {
			s.RemergeDistance[i]++
			return
		}
	}
	s.RemergeDistance[len(DistBuckets)]++
}

// RemergeWithin returns the fraction of remerges found within the bucket
// bound (inclusive), e.g. RemergeWithin(512) for the §6.3 claim.
func (s *Stats) RemergeWithin(bound uint64) float64 {
	var total, within uint64
	for i, c := range s.RemergeDistance {
		total += c
		if i < len(DistBuckets) && DistBuckets[i] <= bound {
			within += c
		}
	}
	if total == 0 {
		return 1
	}
	return float64(within) / float64(total)
}
