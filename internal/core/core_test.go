package core

import (
	"testing"

	"mmt/internal/asm"
	"mmt/internal/isa"
	"mmt/internal/prog"
)

// buildSys assembles src and builds an n-context system.
func buildSys(t *testing.T, src string, mode prog.Mode, n int, init prog.InitFunc) *prog.System {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := prog.NewSystem(p, mode, n, init)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runCore simulates src under cfg and cross-checks the timing model
// against a pure functional run: per-thread committed instruction counts
// and final committed register values must match the oracle exactly.
func runCore(t *testing.T, cfg Config, src string, mode prog.Mode, init prog.InitFunc) (*Stats, *Core) {
	t.Helper()
	sys := buildSys(t, src, mode, cfg.Threads, init)
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000
	}
	c, err := New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	ref := buildSys(t, src, mode, cfg.Threads, init)
	if err := ref.RunFunctional(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i, ctx := range ref.Contexts {
		if st.Committed[i] != ctx.DynCount {
			t.Errorf("thread %d committed %d instructions, oracle ran %d", i, st.Committed[i], ctx.DynCount)
		}
		for r := 0; r < isa.NumRegs; r++ {
			if got, want := c.CommittedReg(i, uint8(r)), ctx.State.Reg[r]; got != want {
				t.Errorf("thread %d reg %d: committed %#x, oracle %#x", i, r, got, want)
			}
		}
	}
	return st, c
}

const loopSrc = `
        li    r5, 0
        li    r6, 50
loop:   add   r5, r5, r6
        addi  r6, r6, -1
        bnez  r6, loop
        halt
`

func TestSingleThreadBaseline(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = false, false, false
	st, _ := runCore(t, cfg, loopSrc, prog.ModeME, nil)
	if st.Cycles == 0 || st.IPC() <= 0 {
		t.Errorf("cycles=%d ipc=%f", st.Cycles, st.IPC())
	}
	// 2 + 50*3 + 1 = 153 dynamic instructions.
	if st.Committed[0] != 153 {
		t.Errorf("committed = %d", st.Committed[0])
	}
}

func TestIdenticalThreadsFullyMerge(t *testing.T) {
	// Two identical ME instances (the paper's Limit setup): everything
	// except the initial fetch should be execute-identical.
	cfg := DefaultConfig(2)
	st, _ := runCore(t, cfg, loopSrc, prog.ModeME, nil)
	ei, _, _, ni := st.IdenticalFractions()
	if ei < 0.99 {
		t.Errorf("exec-identical fraction = %f, want ~1", ei)
	}
	if ni != 0 {
		t.Errorf("not-identical fraction = %f", ni)
	}
	merge, _, _ := st.FetchModeFractions()
	if merge < 0.99 {
		t.Errorf("MERGE fraction = %f", merge)
	}
	if st.Divergences != 0 {
		t.Errorf("divergences = %d", st.Divergences)
	}
}

// wideLoopSrc has a wide, mostly independent loop body: with several
// threads the baseline contends for fetch bandwidth and ALUs, which is
// where merged fetch/execution pays off.
const wideLoopSrc = `
        li    r6, 600
loop:   add   r10, r10, r6
        add   r11, r11, r6
        add   r12, r12, r6
        add   r13, r13, r6
        add   r14, r14, r6
        add   r15, r15, r6
        add   r16, r16, r6
        add   r17, r17, r6
        add   r18, r10, r11
        add   r19, r12, r13
        xor   r20, r18, r19
        add   r21, r21, r20
        addi  r6, r6, -1
        bnez  r6, loop
        halt
`

func TestMergedFasterThanBase(t *testing.T) {
	base := DefaultConfig(4)
	base.SharedFetch, base.SharedExec, base.RegMerge = false, false, false
	stBase, _ := runCore(t, base, wideLoopSrc, prog.ModeME, nil)

	mmt := DefaultConfig(4)
	stMMT, _ := runCore(t, mmt, wideLoopSrc, prog.ModeME, nil)

	if stMMT.Cycles >= stBase.Cycles {
		t.Errorf("MMT %d cycles, base %d cycles: no speedup on identical threads", stMMT.Cycles, stBase.Cycles)
	}
}

// divergeSrc makes the two ME instances take different paths depending on
// a per-instance input, then re-join at "join".
const divergeSrc = `
        li    r4, input
        ld    r5, 0(r4)          ; per-instance input: 0 or 1
        li    r6, 0
        li    r7, 20
outer:  bnez  r5, odd
        addi  r6, r6, 1          ; even path
        addi  r6, r6, 3
        j     join
odd:    addi  r6, r6, 2         ; odd path: different length
        addi  r6, r6, 1
        addi  r6, r6, 1
join:   addi  r7, r7, -1
        bnez  r7, outer
        halt
        .data
input:  .word 0
`

func TestDivergenceAndRemerge(t *testing.T) {
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	cfg := DefaultConfig(2)
	st, _ := runCore(t, cfg, divergeSrc, prog.ModeME, init)
	if st.Divergences == 0 {
		t.Error("no divergences on divergent inputs")
	}
	if st.Remerges == 0 {
		t.Error("threads never remerged")
	}
	m, d, cu := st.FetchModeFractions()
	if m == 0 || d == 0 {
		t.Errorf("mode fractions merge=%f detect=%f catchup=%f", m, d, cu)
	}
}

func TestLVIPRollback(t *testing.T) {
	// Both instances load the same address but see different values:
	// the LVIP first predicts identical and must roll back.
	src := `
        li    r4, input
        li    r7, 10
loop:   ld    r5, 0(r4)
        add   r6, r6, r5
        addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 5
`
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(100+ctx))
	}
	cfg := DefaultConfig(2)
	st, c := runCore(t, cfg, src, prog.ModeME, init)
	if st.LVIPRollbacks == 0 {
		t.Error("no LVIP rollback despite differing load values")
	}
	if c.LVIPStats().Mispredicts == 0 {
		t.Error("LVIP did not record the mispredict")
	}
	// After learning, later iterations split the load: rollbacks must be
	// far fewer than iterations.
	if st.LVIPRollbacks > 3 {
		t.Errorf("LVIP kept mispredicting: %d rollbacks", st.LVIPRollbacks)
	}
}

func TestLVIPIdenticalValuesStayMerged(t *testing.T) {
	// ME instances with identical memory: loads verify clean.
	src := `
        li    r4, input
        ld    r5, 0(r4)
        add   r6, r6, r5
        halt
        .data
input:  .word 42
`
	cfg := DefaultConfig(2)
	st, _ := runCore(t, cfg, src, prog.ModeME, nil)
	if st.LVIPRollbacks != 0 {
		t.Errorf("rollbacks = %d on identical memory", st.LVIPRollbacks)
	}
	if st.ExecIdentical == 0 {
		t.Error("nothing executed merged")
	}
}

func TestMultiThreadedSharedMemory(t *testing.T) {
	// MT: threads write to disjoint stack slots, read shared data.
	src := `
        tid   r4
        li    r5, shared
        ld    r6, 0(r5)           ; shared load: same address+space
        add   r7, r6, r4
        st    r7, -8(sp)          ; per-thread stack
        ld    r8, -8(sp)
        halt
        .data
shared: .word 7
`
	cfg := DefaultConfig(2)
	st, _ := runCore(t, cfg, src, prog.ModeMT, nil)
	if st.TotalCommitted() != 14 {
		t.Errorf("committed = %d", st.TotalCommitted())
	}
	// tid writes different values but the instructions are fetched
	// together; downstream uses of r4 split.
	if st.FetchIdenticalOnly == 0 {
		t.Error("no fetch-identical-only instructions despite tid split")
	}
}

func TestFourThreads(t *testing.T) {
	cfg := DefaultConfig(4)
	st, _ := runCore(t, cfg, loopSrc, prog.ModeME, nil)
	ei, _, _, _ := st.IdenticalFractions()
	if ei < 0.99 {
		t.Errorf("4-thread exec-identical = %f", ei)
	}
	for th := 0; th < 4; th++ {
		if st.Committed[th] != 153 {
			t.Errorf("thread %d committed %d", th, st.Committed[th])
		}
	}
}

func TestMMTFSplitsEverything(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.SharedExec, cfg.RegMerge = false, false // MMT-F
	st, _ := runCore(t, cfg, loopSrc, prog.ModeME, nil)
	if st.ExecIdentical != 0 || st.ExecIdentRegMerge != 0 {
		t.Error("MMT-F executed instructions merged")
	}
	if st.FetchIdenticalOnly == 0 {
		t.Error("MMT-F found no fetch-identical instructions")
	}
}

func TestRegisterMergingRecovers(t *testing.T) {
	// Instances diverge, both paths write the same value to r6, then
	// loop over r6-dependent work. Without register merging the post-
	// divergence instructions stay split; with it they re-merge.
	src := `
        li    r4, input
        ld    r5, 0(r4)
        bnez  r5, other
        li    r6, 99
        j     join
other:  nop
        li    r6, 99
join:   li    r7, 400
loop:   add   r8, r6, r7
        mul   r9, r6, r6
        addi  r7, r7, -1
        bnez  r7, loop
        halt
        .data
input:  .word 0
`
	init := func(ctx int, mem *prog.Memory) {
		mem.Write64(prog.DataBase, uint64(ctx%2))
	}
	with := DefaultConfig(2)
	stWith, _ := runCore(t, with, src, prog.ModeME, init)

	without := DefaultConfig(2)
	without.RegMerge = false
	stWithout, _ := runCore(t, without, src, prog.ModeME, init)

	if stWith.RegMergeHits == 0 {
		t.Error("register merging never fired")
	}
	if stWith.ExecIdentRegMerge == 0 {
		t.Error("no instructions attributed to register merging")
	}
	tot := func(s *Stats) uint64 { return s.ExecIdentical + s.ExecIdentRegMerge }
	if tot(stWith) <= tot(stWithout) {
		t.Errorf("regmerge did not increase merged execution: with=%d without=%d",
			tot(stWith), tot(stWithout))
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.SharedFetch = false // SharedExec still true: invalid
	if _, err := New(cfg, buildSys(t, loopSrc, prog.ModeME, 2, nil)); err == nil {
		t.Error("invalid config accepted")
	}
	cfg = DefaultConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Error("0 threads accepted")
	}
	cfg = DefaultConfig(2)
	cfg.SharedExec = false // RegMerge still true
	if err := cfg.Validate(); err == nil {
		t.Error("regmerge without shared exec accepted")
	}
	cfg = DefaultConfig(2)
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestThreadMismatch(t *testing.T) {
	sys := buildSys(t, loopSrc, prog.ModeME, 2, nil)
	if _, err := New(DefaultConfig(4), sys); err == nil {
		t.Error("thread/context mismatch accepted")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxCycles = 10
	sys := buildSys(t, loopSrc, prog.ModeME, 1, nil)
	c, err := New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("MaxCycles did not abort")
	}
}

func TestMaxInstsCapsRun(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxInsts = 20
	sys := buildSys(t, loopSrc, prog.ModeME, 1, nil)
	c, err := New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed[0] != 20 {
		t.Errorf("committed = %d, want 20", st.Committed[0])
	}
}

func TestStatsHelpers(t *testing.T) {
	var st Stats
	st.RecordRemergeDistance(10)
	st.RecordRemergeDistance(100)
	st.RecordRemergeDistance(600)
	if st.RemergeDistance[0] != 1 || st.RemergeDistance[3] != 1 || st.RemergeDistance[6] != 1 {
		t.Errorf("histogram %v", st.RemergeDistance)
	}
	if w := st.RemergeWithin(512); w < 0.66 || w > 0.67 {
		t.Errorf("within 512 = %f", w)
	}
	if w := st.RemergeWithin(16); w < 0.33 || w > 0.34 {
		t.Errorf("within 16 = %f", w)
	}
}
