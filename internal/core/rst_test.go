package core

import (
	"testing"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

func TestRSTInitialState(t *testing.T) {
	// ME: everything shared.
	r := NewRST(4, prog.ModeME)
	for reg := 0; reg < isa.NumRegs; reg++ {
		if !r.Shared(0, 3, uint8(reg)) {
			t.Errorf("ME reg %d not shared at init", reg)
		}
	}
	// MT: everything shared except SP (§4.2.6).
	r = NewRST(4, prog.ModeMT)
	if r.Shared(0, 1, isa.RegSP) {
		t.Error("MT stack pointers shared at init")
	}
	if !r.Shared(0, 1, isa.RegRA) {
		t.Error("MT other registers not shared at init")
	}
}

func TestRSTWriteMergedAndSplit(t *testing.T) {
	r := NewRST(2, prog.ModeME)
	r.WriteSplit(0, 5)
	if r.Shared(0, 1, 5) {
		t.Error("split write left register shared")
	}
	r.WriteMerged(ITIDOf(0).With(1), 5)
	if !r.Shared(0, 1, 5) {
		t.Error("merged write did not share register")
	}
	// Writes to r0 are ignored.
	r.WriteSplit(0, isa.RegZero)
	if !r.Shared(0, 1, isa.RegZero) {
		t.Error("r0 became unshared")
	}
}

func TestRSTMergeInto(t *testing.T) {
	r := NewRST(2, prog.ModeME)
	r.WriteSplit(0, 7)
	r.WriteSplit(1, 7)
	r.MergeInto(0, 1, 7)
	if !r.Shared(0, 1, 7) {
		t.Error("MergeInto did not share")
	}
	if !r.byMerge[1][7] {
		t.Error("byMerge attribution missing")
	}
	if r.MergeSets != 1 {
		t.Errorf("MergeSets = %d", r.MergeSets)
	}
	// Merging an already-shared register is a no-op.
	r.MergeInto(0, 1, 7)
	if r.MergeSets != 1 {
		t.Error("redundant merge counted")
	}
	// A subsequent write clears the attribution.
	r.WriteMerged(ITIDOf(0).With(1), 7)
	if r.byMerge[1][7] {
		t.Error("write did not clear byMerge")
	}
}

func TestRSTPartitionAllShared(t *testing.T) {
	r := NewRST(4, prog.ModeME)
	itid := ITID(0b1111)
	classes, rm := r.Partition(itid, []uint8{4, 5})
	if len(classes) != 1 || classes[0] != itid {
		t.Errorf("classes = %v", classes)
	}
	if rm[0] {
		t.Error("spurious regmerge attribution")
	}
}

func TestRSTPartitionSplitsByVersion(t *testing.T) {
	r := NewRST(4, prog.ModeME)
	// Thread 2 writes reg 4 privately: {0,1,3} stay together, {2} splits.
	r.WriteSplit(2, 4)
	classes, _ := r.Partition(ITID(0b1111), []uint8{4})
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}
	// Chooser order: biggest class first.
	if classes[0] != ITIDOf(0).With(1).With(3) || classes[1] != ITIDOf(2) {
		t.Errorf("classes = %v, %v", classes[0], classes[1])
	}
}

func TestRSTPartitionFullSplit(t *testing.T) {
	r := NewRST(4, prog.ModeME)
	for th := 0; th < 4; th++ {
		r.WriteSplit(th, 6)
	}
	classes, _ := r.Partition(ITID(0b1111), []uint8{6})
	if len(classes) != 4 {
		t.Errorf("classes = %v", classes)
	}
	for i, cl := range classes {
		if cl.Count() != 1 {
			t.Errorf("class %d = %v", i, cl)
		}
	}
}

func TestRSTPartitionPairs(t *testing.T) {
	r := NewRST(4, prog.ModeME)
	// Pair up {0,1} and {2,3} differently.
	r.WriteMerged(ITIDOf(0).With(1), 8)
	r.WriteMerged(ITIDOf(2).With(3), 8)
	classes, _ := r.Partition(ITID(0b1111), []uint8{8})
	if len(classes) != 2 || classes[0].Count() != 2 || classes[1].Count() != 2 {
		t.Errorf("classes = %v", classes)
	}
}

func TestRSTPartitionMultipleSources(t *testing.T) {
	r := NewRST(2, prog.ModeME)
	// reg4 shared, reg5 split: instruction reading both must split.
	r.WriteSplit(0, 5)
	classes, _ := r.Partition(ITID(0b11), []uint8{4, 5})
	if len(classes) != 2 {
		t.Errorf("classes = %v", classes)
	}
	// Instruction reading only reg4 stays merged.
	classes, _ = r.Partition(ITID(0b11), []uint8{4})
	if len(classes) != 1 {
		t.Errorf("classes = %v", classes)
	}
}

func TestRSTPartitionSingleton(t *testing.T) {
	r := NewRST(2, prog.ModeME)
	classes, rm := r.Partition(ITIDOf(1), []uint8{4})
	if len(classes) != 1 || classes[0] != ITIDOf(1) || rm[0] {
		t.Errorf("singleton partition = %v %v", classes, rm)
	}
}

func TestRSTPartitionRegZeroIgnored(t *testing.T) {
	r := NewRST(2, prog.ModeME)
	// r0 never splits an instruction even if versions were touched.
	classes, _ := r.Partition(ITID(0b11), []uint8{isa.RegZero})
	if len(classes) != 1 {
		t.Errorf("classes = %v", classes)
	}
}

func TestRSTPartitionRegMergeAttribution(t *testing.T) {
	r := NewRST(2, prog.ModeME)
	r.WriteSplit(0, 9)
	r.WriteSplit(1, 9)
	r.MergeInto(0, 1, 9)
	classes, rm := r.Partition(ITID(0b11), []uint8{9})
	if len(classes) != 1 || !rm[0] {
		t.Errorf("classes=%v rm=%v", classes, rm)
	}
}

func TestRSTSharedCount(t *testing.T) {
	r := NewRST(2, prog.ModeMT)
	if got := r.SharedCount(0, 1); got != isa.NumRegs-1 {
		t.Errorf("MT shared count = %d", got)
	}
	r.Desync(1)
	// Only r0 remains shared (Desync skips reg 0).
	if got := r.SharedCount(0, 1); got != 1 {
		t.Errorf("after desync = %d", got)
	}
}
