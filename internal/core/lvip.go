package core

// LVIP is the Load-Value-Identical Predictor (paper §4.2.5). For
// multi-execution workloads, a load whose address registers are
// mapping-identical across threads reads the *same virtual address* in
// *different processes*; the values usually — but not always — match.
//
// The predictor is a table of load PCs that have previously mispredicted:
// a load predicts "values identical" unless its PC is present. The LSQ
// performs the per-process accesses, verifies the prediction, and the core
// rolls back on a mispredict.
type LVIP struct {
	// tags holds hashed PCs of loads that mispredicted; a direct-mapped
	// table of the configured size.
	tags  []uint64
	valid []bool

	Lookups     uint64
	PredIdent   uint64
	PredDiffer  uint64
	Mispredicts uint64
}

// NewLVIP builds a predictor with n entries (n rounded up to a power of
// two).
func NewLVIP(n int) *LVIP {
	size := 1
	for size < n {
		size <<= 1
	}
	return &LVIP{tags: make([]uint64, size), valid: make([]bool, size)}
}

// Size returns the table capacity.
func (p *LVIP) Size() int { return len(p.tags) }

func (p *LVIP) index(pc uint64) (int, uint64) {
	idx := int(pc >> 2 & uint64(len(p.tags)-1))
	return idx, pc
}

// PredictIdentical predicts whether the load at pc returns identical
// values in all processes. The initial prediction for every load is
// "identical" (paper: "We begin by predicting the value will be
// identical").
func (p *LVIP) PredictIdentical(pc uint64) bool {
	p.Lookups++
	idx, tag := p.index(pc)
	if p.valid[idx] && p.tags[idx] == tag {
		p.PredDiffer++
		return false
	}
	p.PredIdent++
	return true
}

// RecordMispredict marks pc as a load whose values differed after an
// "identical" prediction.
func (p *LVIP) RecordMispredict(pc uint64) {
	p.Mispredicts++
	idx, tag := p.index(pc)
	p.valid[idx] = true
	p.tags[idx] = tag
}

// RecordIdentical lets a previously mispredicting load earn back the
// "identical" prediction when its values match again (simple
// last-outcome update: the entry is removed).
func (p *LVIP) RecordIdentical(pc uint64) {
	idx, tag := p.index(pc)
	if p.valid[idx] && p.tags[idx] == tag {
		p.valid[idx] = false
	}
}
