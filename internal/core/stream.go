package core

import (
	"mmt/internal/isa"
	"mmt/internal/prog"
)

// dynRec is one committed-path dynamic instruction of one thread, produced
// by the functional oracle (prog.Context.Step) and consumed by the timing
// model. Records are buffered so that squashes (branch-like rollbacks such
// as LVIP mispredicts) can re-fetch without re-executing.
type dynRec struct {
	idx  uint64 // position in the thread's dynamic instruction order
	pc   uint64
	inst isa.Inst
	eff  isa.Effect
}

// stream adapts one context's oracle into a rewindable record stream.
type stream struct {
	ctx    *prog.Context
	buf    []dynRec
	base   uint64 // dynamic index of buf[0]
	cursor uint64 // next index fetch will consume
	// maxInsts caps the records produced (0 = unbounded); the thread
	// then behaves as if it halted at the cap.
	maxInsts uint64
	err      error
}

func newStream(ctx *prog.Context, maxInsts uint64) *stream {
	return &stream{ctx: ctx, maxInsts: maxInsts}
}

// peek returns the record at the cursor, producing it from the oracle if
// necessary. ok is false when the thread has halted (no more records) or
// the oracle errored (check s.err).
func (s *stream) peek() (*dynRec, bool) {
	if s.err != nil {
		return nil, false
	}
	if s.maxInsts > 0 && s.cursor >= s.maxInsts {
		return nil, false
	}
	for s.cursor >= s.base+uint64(len(s.buf)) {
		if s.ctx.Halted() {
			return nil, false
		}
		pc := s.ctx.State.PC
		inst, eff, err := s.ctx.Step()
		if err != nil {
			s.err = err
			return nil, false
		}
		s.buf = append(s.buf, dynRec{
			idx: s.base + uint64(len(s.buf)), pc: pc, inst: inst, eff: eff,
		})
	}
	return &s.buf[s.cursor-s.base], true
}

// advance moves the cursor past the current record.
func (s *stream) advance() { s.cursor++ }

// rewindTo moves the cursor back to dynamic index idx (squash/replay).
// idx must not precede already-released records.
func (s *stream) rewindTo(idx uint64) {
	if idx < s.base {
		panic("core: stream rewind below released window")
	}
	if idx > s.cursor {
		panic("core: stream rewind forward")
	}
	s.cursor = idx
}

// release drops buffered records with index < idx (they have committed and
// can never be replayed).
func (s *stream) release(idx uint64) {
	if idx <= s.base {
		return
	}
	if idx > s.cursor {
		panic("core: releasing unfetched records")
	}
	drop := idx - s.base
	s.buf = s.buf[drop:]
	s.base = idx
}

// exhausted reports whether the thread has halted and every record has
// been consumed by fetch.
func (s *stream) exhausted() bool {
	_, ok := s.peek()
	return !ok && s.err == nil
}

// nextPC returns the PC of the record at the cursor (what the thread's
// fetch PC "is" right now); ok=false when halted.
func (s *stream) nextPC() (uint64, bool) {
	r, ok := s.peek()
	if !ok {
		return 0, false
	}
	return r.pc, true
}
