package core

import (
	"fmt"

	"mmt/internal/branch"
	"mmt/internal/cache"
	"mmt/internal/isa"
	"mmt/internal/obs"
	"mmt/internal/prog"
	"mmt/internal/tracecache"
)

// Core is one simulated MMT/SMT processor running a prog.System.
type Core struct {
	cfg  Config
	mode prog.Mode
	sys  *prog.System

	streams []*stream
	groups  []*group
	fhb     []*FHB
	rst     *RST
	lvip    *LVIP
	bp      *branch.Unit
	mem     *cache.Hierarchy
	tc      *tracecache.TraceCache
	tb      []*tracecache.Builder

	now uint64
	seq uint64 // rename-order sequence; window is sorted by it
	// rotate drives round-robin fetch priority among equal groups.
	rotate uint64

	fetchQ []*uop
	window []*uop // renamed, in seq order (the ROB contents)
	memQ   []*uop // in-flight memory uops, seq order
	robQ   [MaxThreads][]*uop

	// hintPCs are the software remerge points used by the SyncHints
	// baseline: join targets of forward branches and loop-exit
	// fall-throughs, derived statically from the program.
	hintPCs map[uint64]bool

	robOcc, iqOcc, lsqOcc int

	lastWriter    [MaxThreads][isa.NumRegs]*uop
	activeWriters [MaxThreads][isa.NumRegs]int
	committedReg  [MaxThreads][isa.NumRegs]uint64

	regMergeBudget int

	// splitNet is the structural split-network model, allocated lazily
	// for the ValidateSplits debug mode.
	splitNet *SplitNetwork

	// Observability (Attach): rec receives events and periodic samples;
	// every emission site guards on rec == nil, so an unattached core
	// pays one pointer compare per site. cycleStall/lastStall and
	// lastModeMix drive the stall-cause and fetch-mode edge events.
	rec         obs.Recorder
	sampleEvery uint64
	cycleStall  obs.StallCause
	lastStall   obs.StallCause
	lastModeMix uint64

	// Attribution probe (AttachProbe): per-PC and CPI-stack accounting,
	// nil-guarded at every site like rec. probeCommitted is the committed
	// uop count at the previous cycle boundary (detects base cycles);
	// rollbackUntil is the end of the latest LVIP rollback redirect
	// window, used to classify rollback cycles.
	probe          Probe
	probeCommitted uint64
	rollbackUntil  uint64

	stats Stats
}

// New builds a core for sys under cfg.
func New(cfg Config, sys *prog.System) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sys.Contexts) != cfg.Threads {
		return nil, fmt.Errorf("core: config has %d threads, system has %d contexts", cfg.Threads, len(sys.Contexts))
	}
	c := &Core{
		cfg:  cfg,
		mode: sys.Mode,
		sys:  sys,
		rst:  NewRST(cfg.Threads, sys.Mode),
		lvip: NewLVIP(cfg.LVIPSize),
		bp:   branch.NewUnit(cfg.Branch),
		mem:  cache.NewHierarchy(cfg.Mem),
	}
	if cfg.TraceCacheBytes > 0 {
		c.tc = tracecache.New(cfg.TraceCacheBytes)
	}
	if cfg.Sync == SyncHints {
		c.hintPCs = make(map[uint64]bool)
		seen := map[*prog.Program]bool{}
		for _, ctx := range sys.Contexts {
			if seen[ctx.Prog] {
				continue
			}
			seen[ctx.Prog] = true
			for pc := range remergeHints(ctx.Prog) { // mmtvet:ok — set union, order-insensitive
				c.hintPCs[pc] = true
			}
		}
	}
	for t := 0; t < cfg.Threads; t++ {
		c.streams = append(c.streams, newStream(sys.Contexts[t], cfg.MaxInsts))
		c.fhb = append(c.fhb, NewFHB(cfg.FHBSize))
		if c.tc != nil {
			c.tb = append(c.tb, tracecache.NewBuilder(c.tc))
		}
		for r := 0; r < isa.NumRegs; r++ {
			c.committedReg[t][r] = sys.Contexts[t].State.Reg[r]
		}
	}
	// Initial grouping: with shared fetch, threads at the same entry PC
	// start merged; without it, every thread fetches alone forever.
	if cfg.SharedFetch {
		byPC := map[uint64]ITID{}
		var order []uint64
		for t := 0; t < cfg.Threads; t++ {
			pc := sys.Contexts[t].State.PC
			if _, ok := byPC[pc]; !ok {
				order = append(order, pc)
			}
			byPC[pc] |= ITIDOf(t)
		}
		for _, pc := range order {
			c.groups = append(c.groups, &group{members: byPC[pc]})
		}
	} else {
		for t := 0; t < cfg.Threads; t++ {
			c.groups = append(c.groups, &group{members: ITIDOf(t)})
		}
	}
	return c, nil
}

// remergeHints derives the software remerge points a Thread-Fusion-style
// compiler would emit [36]: the join target of every forward conditional
// branch and the fall-through (exit) of every backward one.
func remergeHints(p *prog.Program) map[uint64]bool {
	hints := make(map[uint64]bool)
	for i, in := range p.Insts {
		if !in.Op.IsBranch() {
			continue
		}
		pc := p.Base + uint64(i)*isa.InstBytes
		target := uint64(in.Imm)
		if target > pc {
			hints[target] = true
		} else {
			hints[pc+isa.InstBytes] = true
		}
	}
	return hints
}

// Stats returns the accumulated statistics.
func (c *Core) Stats() *Stats { return &c.stats }

// MemEvents exposes the memory-hierarchy event counters.
func (c *Core) MemEvents() cache.Events { return c.mem.Events }

// Mem exposes the hierarchy for inspection.
func (c *Core) Mem() *cache.Hierarchy { return c.mem }

// LVIPStats exposes the load-value predictor.
func (c *Core) LVIPStats() *LVIP { return c.lvip }

// CommittedReg returns the committed architectural value of register r in
// thread t (for verification against a functional run).
func (c *Core) CommittedReg(t int, r uint8) uint64 { return c.committedReg[t][r] }

// RSTState exposes the register sharing table (tests/diagnostics).
func (c *Core) RSTState() *RST { return c.rst }

// FHBOf exposes thread t's fetch history buffer (tests/diagnostics).
func (c *Core) FHBOf(t int) *FHB { return c.fhb[t] }

// Cycle advances the machine by one clock: commit, complete, issue,
// rename, fetch — in that order, so results complete before dependents
// issue and freed resources are visible within the cycle.
func (c *Core) Cycle() {
	now := c.now
	c.commitStage(now)
	c.completeStage(now)
	c.issueStage(now)
	c.renameStage(now)
	c.fetchStage(now)
	c.now++
	c.stats.Cycles = c.now
	if c.rec != nil {
		c.observeCycle()
	}
	if c.probe != nil {
		c.probeCycle(now)
	}
}

// Run simulates until every thread drains (halts and empties the
// pipeline) or a bound is hit. It returns the final statistics.
func (c *Core) Run() (*Stats, error) {
	for !c.allDone() {
		if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
			return &c.stats, fmt.Errorf("core: exceeded %d cycles (livelock or undersized MaxCycles)", c.cfg.MaxCycles)
		}
		c.Cycle()
		for _, s := range c.streams {
			if s.err != nil {
				return &c.stats, s.err
			}
		}
	}
	return &c.stats, nil
}
