package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mmt/internal/asm"
	"mmt/internal/prog"
)

func streamFixture(t *testing.T, maxInsts uint64) *stream {
	t.Helper()
	src := `
        li    r5, 100
loop:   addi  r5, r5, -1
        bnez  r5, loop
        halt
`
	p := asm.MustAssemble("s", src)
	sys, err := prog.NewSystem(p, prog.ModeME, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return newStream(sys.Contexts[0], maxInsts)
}

func TestStreamSequentialConsumption(t *testing.T) {
	s := streamFixture(t, 0)
	var pcs []uint64
	for {
		r, ok := s.peek()
		if !ok {
			break
		}
		pcs = append(pcs, r.pc)
		s.advance()
	}
	// li + 100*(addi+bnez) + halt = 202 records
	if len(pcs) != 202 {
		t.Fatalf("consumed %d records", len(pcs))
	}
	if pcs[0] != prog.CodeBase {
		t.Errorf("first pc %#x", pcs[0])
	}
	if s.err != nil {
		t.Errorf("err %v", s.err)
	}
}

func TestStreamRewindReplaysIdenticalRecords(t *testing.T) {
	s := streamFixture(t, 0)
	var first []dynRec
	for i := 0; i < 50; i++ {
		r, ok := s.peek()
		if !ok {
			t.Fatal("stream ended early")
		}
		first = append(first, *r)
		s.advance()
	}
	s.rewindTo(10)
	for i := 10; i < 50; i++ {
		r, ok := s.peek()
		if !ok {
			t.Fatal("replay ended early")
		}
		if *r != first[i] {
			t.Fatalf("replay record %d differs: %+v vs %+v", i, *r, first[i])
		}
		s.advance()
	}
}

func TestStreamReleaseForbidsOldRewind(t *testing.T) {
	s := streamFixture(t, 0)
	for i := 0; i < 30; i++ {
		s.peek()
		s.advance()
	}
	s.release(20)
	defer func() {
		if recover() == nil {
			t.Error("rewind below released window did not panic")
		}
	}()
	s.rewindTo(10)
}

func TestStreamRewindForwardPanics(t *testing.T) {
	s := streamFixture(t, 0)
	s.peek()
	s.advance()
	defer func() {
		if recover() == nil {
			t.Error("forward rewind did not panic")
		}
	}()
	s.rewindTo(5)
}

func TestStreamReleaseUnfetchedPanics(t *testing.T) {
	s := streamFixture(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("release of unfetched records did not panic")
		}
	}()
	s.release(5)
}

func TestStreamMaxInstsActsAsHalt(t *testing.T) {
	s := streamFixture(t, 25)
	n := 0
	for {
		_, ok := s.peek()
		if !ok {
			break
		}
		n++
		s.advance()
	}
	if n != 25 {
		t.Errorf("capped stream yielded %d records", n)
	}
	if !s.exhausted() {
		t.Error("capped stream not exhausted")
	}
	if _, ok := s.nextPC(); ok {
		t.Error("nextPC after cap")
	}
}

// TestStreamRandomWalkProperty drives a random mix of advance/rewind/
// release against a recorded reference.
func TestStreamRandomWalkProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := streamFixture(t, 0)
		ref := map[uint64]dynRec{}
		base := uint64(0)
		for step := 0; step < 300; step++ {
			switch r.Intn(5) {
			case 0, 1, 2: // advance
				rec, ok := s.peek()
				if !ok {
					continue
				}
				if old, seen := ref[rec.idx]; seen && old != *rec {
					return false
				}
				ref[rec.idx] = *rec
				s.advance()
			case 3: // rewind somewhere in [base, cursor]
				if s.cursor > base {
					target := base + uint64(r.Int63n(int64(s.cursor-base+1)))
					s.rewindTo(target)
				}
			case 4: // release up to cursor
				if s.cursor > base {
					target := base + uint64(r.Int63n(int64(s.cursor-base+1)))
					s.release(target)
					if target > base {
						base = target
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
