// Package power implements an event-based energy model in the spirit of
// Wattch [46]: every micro-architectural structure has a per-access energy,
// total energy is Σ events × energy + cycles × static power. Constants are
// stated for a 32 nm-class core (the paper scales its 90 nm Synopsys
// numbers to 32 nm); only *relative* energy between configurations is
// meaningful, exactly as in the paper's Fig. 6.
package power

import (
	"fmt"
	"io"
	"sort"

	"mmt/internal/cache"
	"mmt/internal/core"
)

// Energy units are picojoules (pJ); powers in pJ/cycle.

// PerAccess holds the per-event energies.
type PerAccess struct {
	// Caches.
	L1I  float64
	L1D  float64
	L2   float64
	DRAM float64

	// Core structures.
	Fetch     float64 // decode/fetch pipeline per instruction
	Rename    float64
	IQWrite   float64
	FUOp      float64
	RegRead   float64
	RegWrite  float64
	Commit    float64
	Predictor float64

	// MMT overhead structures (paper Table 3 / §6.2).
	RSTUpdate     float64
	FHBInsert     float64
	FHBSearch     float64 // CAM search
	LVIPLookup    float64
	SplitOp       float64
	RegMergeCheck float64
}

// DefaultPerAccess returns per-access energies for a 32 nm-class 8-wide
// core. Values follow the relative magnitudes CACTI/Wattch-style models
// produce: large SRAM arrays (L2, DRAM interface) dominate, small CAMs and
// tables are one to two orders of magnitude cheaper, and the MMT additions
// are tiny (the paper measures their total below 2% of core power).
func DefaultPerAccess() PerAccess {
	return PerAccess{
		L1I:  60,
		L1D:  70,
		L2:   420,
		DRAM: 8000,

		Fetch:     18,
		Rename:    12,
		IQWrite:   10,
		FUOp:      25,
		RegRead:   8,
		RegWrite:  10,
		Commit:    10,
		Predictor: 6,

		RSTUpdate:     0.8,
		FHBInsert:     0.8,
		FHBSearch:     1.8, // 32-entry CAM
		LVIPLookup:    1.5,
		SplitOp:       1.6,
		RegMergeCheck: 6.0, // an extra register-file read + compare
	}
}

// StaticPerCycle is the leakage + clock-tree energy charged every cycle
// (pJ/cycle), for the whole core.
const StaticPerCycle = 120.0

// Breakdown is the Fig. 6 energy decomposition.
type Breakdown struct {
	Cache    float64 // pJ spent in the cache hierarchy
	Overhead float64 // pJ spent in the MMT additions
	Other    float64 // everything else (core + static)
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Cache + b.Overhead + b.Other }

// Model computes energies from simulation statistics.
type Model struct {
	Per PerAccess
}

// NewModel returns a model with the default constants.
func NewModel() *Model { return &Model{Per: DefaultPerAccess()} }

// Energy computes the energy breakdown for a finished run.
func (m *Model) Energy(st *core.Stats, ev cache.Events) Breakdown {
	p := m.Per
	var b Breakdown
	b.Cache = float64(ev.L1IAccesses)*p.L1I +
		float64(ev.L1DAccesses)*p.L1D +
		float64(ev.L2Accesses)*p.L2 +
		float64(ev.DRAMAccesses)*p.DRAM

	b.Overhead = float64(st.RSTUpdates)*p.RSTUpdate +
		float64(st.FHBInserts)*p.FHBInsert +
		float64(st.FHBSearches)*p.FHBSearch +
		float64(st.LVIPLookups)*p.LVIPLookup +
		float64(st.SplitOps)*p.SplitOp +
		float64(st.RegMergeCompares)*p.RegMergeCheck

	b.Other = float64(st.FetchAccesses)*p.Fetch +
		float64(st.RenamedUops)*(p.Rename+p.IQWrite) +
		float64(st.FUOps)*p.FUOp +
		float64(st.RegReads)*p.RegRead +
		float64(st.RegWrites)*p.RegWrite +
		float64(st.CommittedUops)*p.Commit +
		float64(st.BranchUops)*p.Predictor +
		float64(st.Cycles)*StaticPerCycle
	return b
}

// EnergyPerJob normalizes a run's energy by the work performed (committed
// per-thread instructions), the paper's "energy per job completed" metric.
func (m *Model) EnergyPerJob(st *core.Stats, ev cache.Events) float64 {
	total := st.TotalCommitted()
	if total == 0 {
		return 0
	}
	return m.Energy(st, ev).Total() / float64(total)
}

// Detailed returns the per-structure energy decomposition (pJ), keyed by
// structure name — the data behind Breakdown, at full resolution.
func (m *Model) Detailed(st *core.Stats, ev cache.Events) map[string]float64 {
	p := m.Per
	return map[string]float64{
		"l1i":       float64(ev.L1IAccesses) * p.L1I,
		"l1d":       float64(ev.L1DAccesses) * p.L1D,
		"l2":        float64(ev.L2Accesses) * p.L2,
		"dram":      float64(ev.DRAMAccesses) * p.DRAM,
		"fetch":     float64(st.FetchAccesses) * p.Fetch,
		"rename":    float64(st.RenamedUops) * (p.Rename + p.IQWrite),
		"fu":        float64(st.FUOps) * p.FUOp,
		"regread":   float64(st.RegReads) * p.RegRead,
		"regwrite":  float64(st.RegWrites) * p.RegWrite,
		"commit":    float64(st.CommittedUops) * p.Commit,
		"predictor": float64(st.BranchUops) * p.Predictor,
		"static":    float64(st.Cycles) * StaticPerCycle,
		"rst":       float64(st.RSTUpdates) * p.RSTUpdate,
		"fhb":       float64(st.FHBInserts)*p.FHBInsert + float64(st.FHBSearches)*p.FHBSearch,
		"lvip":      float64(st.LVIPLookups) * p.LVIPLookup,
		"split":     float64(st.SplitOps) * p.SplitOp,
		"regmerge":  float64(st.RegMergeCompares) * p.RegMergeCheck,
	}
}

// overheadKeys are the MMT-added structures within Detailed.
var overheadKeys = []string{"rst", "fhb", "lvip", "split", "regmerge"}

// cacheKeys are the memory-hierarchy structures within Detailed.
var cacheKeys = []string{"l1i", "l1d", "l2", "dram"}

// Component is one named structure's energy in a serialized breakdown.
// Detailed returns a map, whose Go-side iteration order is random;
// artifacts that embed energy breakdowns (mmtdse studies) serialize the
// sorted Component form instead, so the bytes are stable across runs and
// processes.
type Component struct {
	Name string  `json:"name"`
	PJ   float64 `json:"pj"`
}

// Components renders a Detailed map as a name-sorted slice — the
// canonical, byte-stable serialization order. Zero-energy structures are
// kept, so two breakdowns of the same model always align entry for entry.
func Components(detail map[string]float64) []Component {
	out := make([]Component, 0, len(detail))
	for name, pj := range detail { // mmtvet:ok — sorted immediately below
		out = append(out, Component{Name: name, PJ: pj})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ComponentsMap inverts Components back into the Detailed map form; the
// round trip Components(ComponentsMap(cs)) is the identity on canonical
// (sorted, duplicate-free) slices.
func ComponentsMap(cs []Component) map[string]float64 {
	m := make(map[string]float64, len(cs))
	for _, c := range cs {
		m[c.Name] = c.PJ
	}
	return m
}

// DetailedComponents is Detailed in canonical serialized form.
func (m *Model) DetailedComponents(st *core.Stats, ev cache.Events) []Component {
	return Components(m.Detailed(st, ev))
}

// AddComponents accumulates one breakdown into a running total keyed by
// structure name (for aggregating a breakdown across workloads).
func AddComponents(total map[string]float64, cs []Component) {
	for _, c := range cs {
		total[c.Name] += c.PJ
	}
}

// WriteComponents renders a breakdown for terminals, largest first with a
// deterministic name tie-break.
func WriteComponents(w io.Writer, cs []Component) {
	sorted := append([]Component(nil), cs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PJ != sorted[j].PJ {
			return sorted[i].PJ > sorted[j].PJ
		}
		return sorted[i].Name < sorted[j].Name
	})
	var total float64
	for _, c := range sorted {
		total += c.PJ
	}
	for _, c := range sorted {
		pct := 0.0
		if total > 0 {
			pct = 100 * c.PJ / total
		}
		fmt.Fprintf(w, "  %-10s %14.1f pJ  %5.1f%%\n", c.Name, c.PJ, pct)
	}
}
