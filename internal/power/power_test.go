package power

import (
	"encoding/json"
	"testing"

	"mmt/internal/cache"
	"mmt/internal/core"
)

func jsonBytes(v any) ([]byte, error) { return json.Marshal(v) }

func sampleStats() (*core.Stats, cache.Events) {
	st := &core.Stats{
		Cycles:        1000,
		FetchAccesses: 4000,
		RenamedUops:   4000,
		FUOps:         4000,
		RegReads:      6000,
		RegWrites:     3500,
		CommittedUops: 4000,
		BranchUops:    800,
		RSTUpdates:    4000,
		FHBInserts:    50,
		FHBSearches:   50,
		LVIPLookups:   100,
		SplitOps:      900,
	}
	st.Committed[0] = 4000
	ev := cache.Events{
		L1IAccesses: 1200, L1DAccesses: 900, L2Accesses: 40, DRAMAccesses: 5,
	}
	return st, ev
}

func TestEnergyBreakdownPositive(t *testing.T) {
	m := NewModel()
	st, ev := sampleStats()
	b := m.Energy(st, ev)
	if b.Cache <= 0 || b.Overhead <= 0 || b.Other <= 0 {
		t.Errorf("breakdown %+v has non-positive component", b)
	}
	if b.Total() != b.Cache+b.Overhead+b.Other {
		t.Error("total mismatch")
	}
}

func TestOverheadIsSmallFraction(t *testing.T) {
	// The paper reports MMT overhead below 2% of total power; the model's
	// constants must reproduce that property on representative counts.
	m := NewModel()
	st, ev := sampleStats()
	b := m.Energy(st, ev)
	if frac := b.Overhead / b.Total(); frac > 0.02 {
		t.Errorf("overhead fraction = %.4f, want < 0.02", frac)
	}
}

func TestEnergyPerJob(t *testing.T) {
	m := NewModel()
	st, ev := sampleStats()
	epj := m.EnergyPerJob(st, ev)
	if epj <= 0 {
		t.Errorf("energy per job = %f", epj)
	}
	// Doubling the work at equal energy halves energy/job.
	st2, _ := sampleStats()
	st2.Committed[0] *= 2
	if got := m.EnergyPerJob(st2, ev); got >= epj {
		t.Errorf("more work did not lower energy/job: %f vs %f", got, epj)
	}
	var empty core.Stats
	if m.EnergyPerJob(&empty, cache.Events{}) != 0 {
		t.Error("zero-work energy/job not zero")
	}
}

func TestFewerEventsLessEnergy(t *testing.T) {
	m := NewModel()
	st, ev := sampleStats()
	full := m.Energy(st, ev).Total()
	ev.L1IAccesses /= 2 // shared fetch halves I-cache traffic
	st.FUOps /= 2       // shared execution halves FU work
	reduced := m.Energy(st, ev).Total()
	if reduced >= full {
		t.Errorf("reduced events did not reduce energy: %f vs %f", reduced, full)
	}
}

func TestDetailedSumsToBreakdown(t *testing.T) {
	m := NewModel()
	st, ev := sampleStats()
	d := m.Detailed(st, ev)
	b := m.Energy(st, ev)

	sum := func(keys []string) float64 {
		var s float64
		for _, k := range keys {
			s += d[k]
		}
		return s
	}
	if got := sum(cacheKeys); !close2(got, b.Cache) {
		t.Errorf("cache detail %f vs breakdown %f", got, b.Cache)
	}
	if got := sum(overheadKeys); !close2(got, b.Overhead) {
		t.Errorf("overhead detail %f vs breakdown %f", got, b.Overhead)
	}
	var total float64
	for _, v := range d {
		total += v
	}
	if !close2(total, b.Total()) {
		t.Errorf("detail total %f vs breakdown total %f", total, b.Total())
	}
	// Every structure appears.
	for _, k := range []string{"fetch", "fu", "static", "predictor", "rename"} {
		if _, ok := d[k]; !ok {
			t.Errorf("missing structure %q", k)
		}
	}
}

// TestComponentsCanonical: the serialized breakdown must be name-sorted
// (byte-stable regardless of map iteration order) and round-trip exactly
// back to the Detailed map.
func TestComponentsCanonical(t *testing.T) {
	m := NewModel()
	st, ev := sampleStats()
	d := m.Detailed(st, ev)

	cs := Components(d)
	if len(cs) != len(d) {
		t.Fatalf("components dropped entries: %d vs %d", len(cs), len(d))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Name >= cs[i].Name {
			t.Fatalf("components not strictly name-sorted at %d: %q >= %q",
				i, cs[i-1].Name, cs[i].Name)
		}
	}

	// Round trip: slice -> map -> slice is the identity.
	back := Components(ComponentsMap(cs))
	if len(back) != len(cs) {
		t.Fatalf("round trip changed length")
	}
	for i := range cs {
		if back[i] != cs[i] {
			t.Errorf("round trip changed entry %d: %+v vs %+v", i, back[i], cs[i])
		}
	}

	// The map round trip preserves every value bit-exactly.
	m2 := ComponentsMap(cs)
	for k, v := range d {
		if m2[k] != v {
			t.Errorf("%s: %v != %v after round trip", k, m2[k], v)
		}
	}

	// Serialization is deterministic across repeated renderings (the
	// property the study artifact's byte-identity rests on).
	json1, err1 := jsonBytes(cs)
	json2, err2 := jsonBytes(Components(m.Detailed(st, ev)))
	if err1 != nil || err2 != nil {
		t.Fatalf("marshal: %v %v", err1, err2)
	}
	if string(json1) != string(json2) {
		t.Error("two renderings of the same breakdown serialized differently")
	}
}

func TestAddComponentsAggregates(t *testing.T) {
	m := NewModel()
	st, ev := sampleStats()
	cs := m.DetailedComponents(st, ev)
	total := map[string]float64{}
	AddComponents(total, cs)
	AddComponents(total, cs)
	for _, c := range cs {
		if got := total[c.Name]; !close2(got, 2*c.PJ) {
			t.Errorf("%s: aggregated %v, want %v", c.Name, got, 2*c.PJ)
		}
	}
}

func close2(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+b)
}
