package sim

import (
	"math"
	"strings"
	"testing"

	"mmt/internal/core"
	"mmt/internal/workloads"
)

func TestPresetConfigurations(t *testing.T) {
	cases := []struct {
		p                Preset
		fetch, exec, reg bool
	}{
		{PresetBase, false, false, false},
		{PresetMMTF, true, false, false},
		{PresetMMTFX, true, true, false},
		{PresetMMTFXR, true, true, true},
		{PresetLimit, true, true, true},
	}
	for _, c := range cases {
		cfg, err := Configure(c.p, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.SharedFetch != c.fetch || cfg.SharedExec != c.exec || cfg.RegMerge != c.reg {
			t.Errorf("%s: got %v/%v/%v", c.p, cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid config: %v", c.p, err)
		}
	}
	if _, err := Configure(Preset("bogus"), 2); err == nil {
		t.Error("unknown preset accepted")
	}
	if !PresetLimit.IdenticalInputs() || PresetMMTFXR.IdenticalInputs() {
		t.Error("IdenticalInputs wrong")
	}
	if len(Presets()) != 5 {
		t.Error("preset list")
	}
}

func TestTable4Defaults(t *testing.T) {
	// The default machine must match Table 4 of the paper.
	cfg := core.DefaultConfig(4)
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"threads", cfg.Threads, 4},
		{"issue width", cfg.IssueWidth, 8},
		{"commit width", cfg.CommitWidth, 8},
		{"LSQ size", cfg.LSQSize, 64},
		{"ROB size", cfg.ROBSize, 256},
		{"int ALUs", cfg.IntALUs, 6},
		{"FPUs", cfg.FPUs, 3},
		{"PHT entries", cfg.Branch.PHTEntries, 1024},
		{"history bits", int(cfg.Branch.HistoryBits), 10},
		{"BTB entries", cfg.Branch.BTBEntries, 2048},
		{"RAS entries", cfg.Branch.RASEntries, 16},
		{"LVIP entries", cfg.LVIPSize, 4096},
		{"FHB entries", cfg.FHBSize, 32},
		{"trace cache bytes", cfg.TraceCacheBytes, 1 << 20},
		{"L1I bytes", cfg.Mem.L1I.SizeBytes, 64 << 10},
		{"L1D bytes", cfg.Mem.L1D.SizeBytes, 64 << 10},
		{"L1 ways", cfg.Mem.L1D.Ways, 4},
		{"line bytes", cfg.Mem.L1D.LineBytes, 64},
		{"L2 bytes", cfg.Mem.L2.SizeBytes, 4 << 20},
		{"L2 ways", cfg.Mem.L2.Ways, 8},
		{"L1 latency", int(cfg.Mem.L1Latency), 1},
		{"L2 latency", int(cfg.Mem.L2Latency), 6},
		{"DRAM latency", int(cfg.Mem.DRAMLatency), 200},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("Table 4 %s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestTable3HardwareEstimates(t *testing.T) {
	h := core.EstimateHWCost(core.DefaultConfig(4))
	// Paper Table 3 values at the default configuration.
	if h.InstWinITIDBits != 4*256 {
		t.Errorf("ITID bits = %d", h.InstWinITIDBits)
	}
	if h.FHBBits != 32*32*4 {
		t.Errorf("FHB bits = %d", h.FHBBits)
	}
	if h.RSTBits != 11*50 {
		t.Errorf("RST bits = %d", h.RSTBits)
	}
	if h.RegStateBits != 256*4 {
		t.Errorf("RegState bits = %d", h.RegStateBits)
	}
	if h.LVIPBytes != 4*4096 {
		t.Errorf("LVIP bytes = %d", h.LVIPBytes)
	}
	if h.TrackRegBits != 4*50*9 {
		t.Errorf("TrackReg bits = %d", h.TrackRegBits)
	}
	if h.TotalBits() <= 0 {
		t.Error("total bits")
	}
	if s := h.String(); !strings.Contains(s, "FHB CAM") {
		t.Errorf("String output %q", s)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean = %f", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
}

func TestRunSingleApp(t *testing.T) {
	app, _ := workloads.ByName("libsvm")
	r, err := Run(app, PresetMMTFXR, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.TotalCommitted() == 0 || r.IPC() <= 0 {
		t.Error("empty run")
	}
	if r.Energy.Total() <= 0 || r.EnergyPerJob <= 0 {
		t.Error("no energy accounted")
	}
	if r.App != "libsvm" || r.Preset != PresetMMTFXR || r.Threads != 2 {
		t.Errorf("result metadata %+v", r)
	}
}

func TestRunByName(t *testing.T) {
	if _, err := RunByName("nosuch", PresetBase, 2, nil); err == nil {
		t.Error("unknown app accepted")
	}
	r, err := RunByName("twolf", PresetBase, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Committed[0] == 0 {
		t.Error("no instructions committed")
	}
}

func TestMutateHook(t *testing.T) {
	app, _ := workloads.ByName("libsvm")
	small, err := Run(app, PresetMMTFXR, 2, func(c *core.Config) { c.FHBSize = 8 })
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats.Cycles == 0 {
		t.Error("mutated run empty")
	}
}

func TestSpeedupAndLimitOrdering(t *testing.T) {
	// On an ME app with near-identical instances, Limit >= FXR speedup is
	// expected (identical inputs give strictly more sharing).
	app, _ := workloads.ByName("vpr")
	base, err := Run(app, PresetBase, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	fxr, err := Run(app, PresetMMTFXR, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	limit, err := Run(app, PresetLimit, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sFXR, sLim := Speedup(base, fxr), Speedup(base, limit)
	if sLim < sFXR {
		t.Errorf("Limit %.3f below FXR %.3f for vpr", sLim, sFXR)
	}
	// vpr has a large untapped potential (paper §6.1).
	if sLim < 1.1 {
		t.Errorf("vpr Limit speedup %.3f, want substantial", sLim)
	}
}

func TestFigure1SmokeTest(t *testing.T) {
	apps := pick(t, "ammp", "twolf")
	rows, err := Figure1(NewSerial(), apps, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := r.ExecIdent + r.FetchIdent + r.NotIdent
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s fractions sum to %f", r.App, sum)
		}
	}
	// ammp's redundancy far exceeds twolf's divergent remainder.
	if rows[0].ExecIdent < rows[1].NotIdent {
		t.Logf("fig1 rows: %+v", rows)
	}
	out := FormatFig1(rows)
	if !strings.Contains(out, "ammp") || !strings.Contains(out, "average") {
		t.Errorf("format output missing rows:\n%s", out)
	}
}

func TestFigure2SmokeTest(t *testing.T) {
	apps := pick(t, "equake", "twolf")
	rows, err := Figure2(NewSerial(), apps, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Divergences == 0 {
			t.Errorf("%s: no divergences found", r.App)
		}
		// Cumulative fractions are monotonic.
		for i := 1; i < len(r.Cumulative); i++ {
			if r.Cumulative[i] < r.Cumulative[i-1] {
				t.Errorf("%s: cumulative not monotonic %v", r.App, r.Cumulative)
			}
		}
	}
	// twolf's divergences are short; equake has long ones (paper Fig. 2).
	var eq, tw Fig2Row
	for _, r := range rows {
		if r.App == "equake" {
			eq = r
		} else {
			tw = r
		}
	}
	if tw.Cumulative[0] < 0.85 {
		t.Errorf("twolf within-16 = %f, want > 0.85", tw.Cumulative[0])
	}
	if eq.Cumulative[0] > tw.Cumulative[0] {
		t.Errorf("equake (%f) should have longer divergences than twolf (%f)",
			eq.Cumulative[0], tw.Cumulative[0])
	}
	_ = FormatFig2(rows)
}

func pick(t *testing.T, names ...string) []workloads.App {
	t.Helper()
	var out []workloads.App
	for _, n := range names {
		a, ok := workloads.ByName(n)
		if !ok {
			t.Fatalf("missing app %s", n)
		}
		out = append(out, a)
	}
	return out
}

func TestFigure5SmokeTest(t *testing.T) {
	apps := pick(t, "swaptions", "blackscholes")
	rows, gm, err := Figure5Speedups(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || gm.App != "geomean" {
		t.Fatalf("rows %v gm %v", rows, gm)
	}
	for _, r := range rows {
		if r.FXR <= 0 || r.Limit <= 0 {
			t.Errorf("%s: non-positive speedups %+v", r.App, r)
		}
	}
	_ = FormatFig5(rows, gm, 2)
}

func TestFigure5bAnd5dSmokeTest(t *testing.T) {
	apps := pick(t, "water-ns")
	b5, err := Figure5b(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b5[0].ExecIdent < 0.4 {
		t.Errorf("water-ns exec-ident = %f", b5[0].ExecIdent)
	}
	d5, err := Figure5d(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d5[0].Merge < 0.9 {
		t.Errorf("water-ns MERGE = %f", d5[0].Merge)
	}
	_ = FormatFig5b(b5)
	_ = FormatFig5d(d5)
}

func TestFigure6SmokeTest(t *testing.T) {
	apps := pick(t, "swaptions")
	rows, err := Figure6(NewSerial(), apps)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.SMT2 != 1.0 {
		t.Errorf("normalization broken: %+v", r)
	}
	// MMT must not cost more energy per job than SMT at equal threads.
	if r.MMT2 > r.SMT2*1.01 || r.MMT4 > r.SMT4*1.01 {
		t.Errorf("MMT energy above SMT: %+v", r)
	}
	// Overhead is small (paper: < 2%).
	if r.OverheadFrac > 0.02 {
		t.Errorf("overhead fraction %f", r.OverheadFrac)
	}
	_ = FormatFig6(rows)
}

func TestFigure7SweepsSmokeTest(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	apps := pick(t, "equake")
	a7, err := Figure7a(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a7[0].Speedups) != len(FHBSizes) {
		t.Errorf("7a speedups %v", a7[0].Speedups)
	}
	c7, err := Figure7c(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c7[0].Merge) != len(FHBSizes) {
		t.Errorf("7c lengths")
	}
	b7, err := Figure7b(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b7) != len(LSPortCounts) {
		t.Errorf("7b points %v", b7)
	}
	d7, err := Figure7d(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d7) != len(FetchWidths) {
		t.Errorf("7d points %v", d7)
	}
	_ = FormatFig7a(a7)
	_ = FormatFig7c(c7)
	_ = FormatSweep("7b", LSPortCounts, b7)
	_ = FormatSweep("7d", FetchWidths, d7)
}

func TestRemergeWithin512(t *testing.T) {
	apps := pick(t, "ammp")
	m, err := RemergeWithin512(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m["ammp"] < 0.5 {
		t.Errorf("ammp remerge-within-512 = %f", m["ammp"])
	}
}
