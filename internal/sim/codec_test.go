package sim

import (
	"encoding/json"
	"testing"

	"mmt/internal/core"
	"mmt/internal/workloads"
)

func specApp(t *testing.T, name string) workloads.App {
	t.Helper()
	a, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("missing app %s", name)
	}
	return a
}

// TestTaskSpecKeyMatchesMutateClosure is the anti-drift proof: a wire
// TaskSpec with a ConfigOverride must resolve to the exact content-
// addressed key of a hand-built Task whose Mutate closure has the same
// effect — otherwise the server and the persistent cache would disagree
// about identity.
func TestTaskSpecKeyMatchesMutateClosure(t *testing.T) {
	spec := TaskSpec{
		App:     "libsvm",
		Preset:  PresetBase,
		Threads: 2,
		Config:  &ConfigOverride{FHBSize: 64, MaxInsts: 20000},
	}
	st, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	specKey, err := st.Key()
	if err != nil {
		t.Fatal(err)
	}

	direct := Task{
		App:     specApp(t, "libsvm"),
		Preset:  PresetBase,
		Threads: 2,
		Mutate: func(c *core.Config) {
			c.FHBSize = 64
			c.MaxInsts = 20000
		},
	}
	directKey, err := direct.Key()
	if err != nil {
		t.Fatal(err)
	}
	if specKey != directKey {
		t.Errorf("spec key %s != closure key %s", specKey, directKey)
	}
}

func TestTaskSpecJSONRoundTrip(t *testing.T) {
	specs := []TaskSpec{
		{App: "ammp"}, // defaults: MMT-FXR, 2 threads
		{App: "equake", Preset: PresetMMTF, Threads: 4,
			Config: &ConfigOverride{FetchWidth: 16, LSPorts: 4}},
		{App: "libsvm", Profile: true, MaxInsts: 5000},
		{App: "twolf", Preset: PresetBase, Equ: map[string]int64{"MOVES": 10}},
	}
	for _, spec := range specs {
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back TaskSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		t1, err := spec.Task()
		if err != nil {
			t.Fatalf("%s: %v", spec.App, err)
		}
		t2, err := back.Task()
		if err != nil {
			t.Fatalf("%s after round trip: %v", spec.App, err)
		}
		k1, err1 := t1.Key()
		k2, err2 := t2.Key()
		if err1 != nil || err2 != nil {
			t.Fatalf("keying: %v %v", err1, err2)
		}
		if k1 != k2 {
			t.Errorf("%s: key changed across JSON round trip", spec.App)
		}
	}
}

func TestTaskSpecRejectsBadInput(t *testing.T) {
	if _, err := (TaskSpec{App: "no-such-app"}).Task(); err == nil {
		t.Error("unknown application accepted")
	}
	if _, err := (TaskSpec{App: "ammp", Preset: Preset("Bogus")}).Task(); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestOutcomeCodecRoundTrip(t *testing.T) {
	spec := TaskSpec{App: "libsvm", Preset: PresetBase, Threads: 2,
		Config: &ConfigOverride{MaxInsts: 20000}}
	task, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	out, err := task.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalOutcome(out)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-compare the re-encoding: any field the codec drops or mangles
	// would diverge here.
	b2, err := MarshalOutcome(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("outcome changed across a codec round trip")
	}
	if back.Result == nil || back.Result.Stats.Cycles != out.Result.Stats.Cycles {
		t.Error("decoded outcome lost its statistics")
	}
}

func TestOutcomeValidate(t *testing.T) {
	cases := []struct {
		name string
		o    *Outcome
	}{
		{"nil", nil},
		{"empty", &Outcome{}},
		{"result without stats", &Outcome{Result: &Result{}}},
	}
	for _, c := range cases {
		if err := c.o.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	if _, err := MarshalOutcome(&Outcome{}); err == nil {
		t.Error("empty outcome marshaled")
	}
	if _, err := UnmarshalOutcome([]byte(`{}`)); err == nil {
		t.Error("empty outcome decoded")
	}
	if _, err := UnmarshalOutcome([]byte(`{garbage`)); err == nil {
		t.Error("garbage decoded")
	}
}
