package sim

import (
	"encoding/json"
	"testing"

	"mmt/internal/core"
	"mmt/internal/workloads"
)

func specApp(t *testing.T, name string) workloads.App {
	t.Helper()
	a, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("missing app %s", name)
	}
	return a
}

// TestTaskSpecKeyMatchesMutateClosure is the anti-drift proof: a wire
// TaskSpec with a ConfigOverride must resolve to the exact content-
// addressed key of a hand-built Task whose Mutate closure has the same
// effect — otherwise the server and the persistent cache would disagree
// about identity.
func TestTaskSpecKeyMatchesMutateClosure(t *testing.T) {
	spec := TaskSpec{
		App:     "libsvm",
		Preset:  PresetBase,
		Threads: 2,
		Config:  &ConfigOverride{FHBSize: 64, MaxInsts: 20000},
	}
	st, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	specKey, err := st.Key()
	if err != nil {
		t.Fatal(err)
	}

	direct := Task{
		App:     specApp(t, "libsvm"),
		Preset:  PresetBase,
		Threads: 2,
		Mutate: func(c *core.Config) {
			c.FHBSize = 64
			c.MaxInsts = 20000
		},
	}
	directKey, err := direct.Key()
	if err != nil {
		t.Fatal(err)
	}
	if specKey != directKey {
		t.Errorf("spec key %s != closure key %s", specKey, directKey)
	}
}

func TestTaskSpecJSONRoundTrip(t *testing.T) {
	specs := []TaskSpec{
		{App: "ammp"}, // defaults: MMT-FXR, 2 threads
		{App: "equake", Preset: PresetMMTF, Threads: 4,
			Config: &ConfigOverride{FetchWidth: 16, LSPorts: 4}},
		{App: "libsvm", Profile: true, MaxInsts: 5000},
		{App: "twolf", Preset: PresetBase, Equ: map[string]int64{"MOVES": 10}},
	}
	for _, spec := range specs {
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back TaskSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		t1, err := spec.Task()
		if err != nil {
			t.Fatalf("%s: %v", spec.App, err)
		}
		t2, err := back.Task()
		if err != nil {
			t.Fatalf("%s after round trip: %v", spec.App, err)
		}
		k1, err1 := t1.Key()
		k2, err2 := t2.Key()
		if err1 != nil || err2 != nil {
			t.Fatalf("keying: %v %v", err1, err2)
		}
		if k1 != k2 {
			t.Errorf("%s: key changed across JSON round trip", spec.App)
		}
	}
}

func TestTaskSpecRejectsBadInput(t *testing.T) {
	if _, err := (TaskSpec{App: "no-such-app"}).Task(); err == nil {
		t.Error("unknown application accepted")
	}
	if _, err := (TaskSpec{App: "ammp", Preset: Preset("Bogus")}).Task(); err == nil {
		t.Error("unknown preset accepted")
	}
}

// TestConfigOverrideRejectsUnknownFields: space specs and submissions are
// user-authored, so a misspelled knob must be a decode error, not a
// silently ignored field simulating the default machine.
func TestConfigOverrideRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"fhb_sz": 64}`,                  // typo
		`{"fhb_size": 64, "bogus": true}`, // extra field
		`{"FHBSize": 64}`,                 // Go name instead of wire name
	}
	for _, c := range cases {
		var o ConfigOverride
		if err := json.Unmarshal([]byte(c), &o); err == nil {
			t.Errorf("decoded %s without error", c)
		}
	}
	// The rejection must hold when the override is nested in a TaskSpec —
	// the path every wire submission takes.
	var spec TaskSpec
	bad := `{"app":"libsvm","config":{"fhb_size":64,"fetch_widht":4}}`
	if err := json.Unmarshal([]byte(bad), &spec); err == nil {
		t.Error("TaskSpec decoded an override with an unknown field")
	}
}

// TestConfigOverrideRejectsOutOfRange: negative or absurd knob values fail
// at decode time with the field named.
func TestConfigOverrideRejectsOutOfRange(t *testing.T) {
	cases := []string{
		`{"fhb_size": -1}`,
		`{"fhb_size": 4096}`,
		`{"fetch_width": -8}`,
		`{"fetch_width": 1000}`,
		`{"ls_ports": 17}`,
		`{"lvip_size": -4}`,
		`{"fetch_queue": -1}`,
		`{"iq_size": 100000}`,
		`{"rob_size": -256}`,
		`{"lsq_size": 1000000}`,
		`{"reg_merge_ports": -2}`,
		`{"sync_policy": "speculative"}`,
		`{"l1_kb": 48}`,    // not a power of two
		`{"l2_kb": -1024}`, // negative
		`{"l2_kb": 4}`,     // below the minimum L2
	}
	for _, c := range cases {
		var o ConfigOverride
		if err := json.Unmarshal([]byte(c), &o); err == nil {
			t.Errorf("decoded %s without error", c)
		}
	}
	// In-process construction skips the JSON decoder; TaskSpec resolution
	// must apply the same validation.
	spec := TaskSpec{App: "libsvm", Config: &ConfigOverride{FHBSize: -3}}
	if _, err := spec.Task(); err == nil {
		t.Error("TaskSpec resolved a negative fhb_size")
	}
}

// TestConfigOverrideAppliesNewKnobs: each new knob must land in the
// resolved configuration (a knob that validates but does not apply would
// silently sweep nothing).
func TestConfigOverrideAppliesNewKnobs(t *testing.T) {
	spec := TaskSpec{App: "libsvm", Config: &ConfigOverride{
		LVIPSize: 1024, FetchQueue: 16, IQSize: 32, ROBSize: 128,
		LSQSize: 32, RegMergePorts: 4, SyncPolicy: "hints", L1KB: 32, L2KB: 2048,
	}}
	task, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := task.ResolvedConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LVIPSize != 1024 || cfg.FetchQueue != 16 || cfg.IQSize != 32 ||
		cfg.ROBSize != 128 || cfg.LSQSize != 32 || cfg.RegMergePorts != 4 {
		t.Errorf("queue/table knobs not applied: %+v", cfg)
	}
	if cfg.Sync != core.SyncHints {
		t.Errorf("sync policy not applied: %v", cfg.Sync)
	}
	if cfg.Mem.L1I.SizeBytes != 32<<10 || cfg.Mem.L1D.SizeBytes != 32<<10 || cfg.Mem.L2.SizeBytes != 2048<<10 {
		t.Errorf("cache geometry not applied: %+v", cfg.Mem)
	}
}

func TestOutcomeCodecRoundTrip(t *testing.T) {
	spec := TaskSpec{App: "libsvm", Preset: PresetBase, Threads: 2,
		Config: &ConfigOverride{MaxInsts: 20000}}
	task, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	out, err := task.Execute()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalOutcome(out)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-compare the re-encoding: any field the codec drops or mangles
	// would diverge here.
	b2, err := MarshalOutcome(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("outcome changed across a codec round trip")
	}
	if back.Result == nil || back.Result.Stats.Cycles != out.Result.Stats.Cycles {
		t.Error("decoded outcome lost its statistics")
	}
}

func TestOutcomeValidate(t *testing.T) {
	cases := []struct {
		name string
		o    *Outcome
	}{
		{"nil", nil},
		{"empty", &Outcome{}},
		{"result without stats", &Outcome{Result: &Result{}}},
	}
	for _, c := range cases {
		if err := c.o.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	if _, err := MarshalOutcome(&Outcome{}); err == nil {
		t.Error("empty outcome marshaled")
	}
	if _, err := UnmarshalOutcome([]byte(`{}`)); err == nil {
		t.Error("empty outcome decoded")
	}
	if _, err := UnmarshalOutcome([]byte(`{garbage`)); err == nil {
		t.Error("garbage decoded")
	}
}
