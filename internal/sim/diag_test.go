package sim

import (
	"testing"

	"mmt/internal/workloads"
)

// TestDiagFigure5 prints the full Fig. 5 speedup tables; a diagnostic for
// retuning workloads, skipped unless run with -v:
//
//	go test ./internal/sim -run TestDiagFigure5 -v
func TestDiagFigure5(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	for _, n := range []int{2, 4} {
		rows, gm, err := Figure5Speedups(NewSerial(), workloads.All(), n)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", FormatFig5(rows, gm, n))
	}
}
