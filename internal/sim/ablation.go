package sim

import (
	"fmt"
	"strings"

	"mmt/internal/core"
	"mmt/internal/workloads"
)

// Ablation studies for the design choices DESIGN.md calls out. Each run
// compares MMT-FXR variants against the same Base, so rows are directly
// comparable with Fig. 5.

// AblationRow is one application's speedup over Base for each variant.
type AblationRow struct {
	App      string
	Speedups []float64 // parallel to the study's variant list
}

// ablate runs every app at the given thread count once per variant.
func ablate(ex Exec, apps []workloads.App, threads int, variants []func(*core.Config)) ([]AblationRow, []float64, error) {
	var tasks []Task
	for _, a := range apps {
		tasks = append(tasks, Task{App: a, Preset: PresetBase, Threads: threads})
		for _, v := range variants {
			tasks = append(tasks, Task{App: a, Preset: PresetMMTFXR, Threads: threads, Mutate: v})
		}
	}
	ex.Schedule(tasks...)

	rows := make([]AblationRow, 0, len(apps))
	per := make([][]float64, len(variants))
	for _, a := range apps {
		base, err := runPoint(ex, a, PresetBase, threads, nil)
		if err != nil {
			return nil, nil, err
		}
		row := AblationRow{App: a.Name}
		for vi, v := range variants {
			r, err := runPoint(ex, a, PresetMMTFXR, threads, v)
			if err != nil {
				return nil, nil, err
			}
			s := Speedup(base, r)
			row.Speedups = append(row.Speedups, s)
			per[vi] = append(per[vi], s)
		}
		rows = append(rows, row)
	}
	gms := make([]float64, len(variants))
	for vi := range variants {
		gms[vi] = Geomean(per[vi])
	}
	return rows, gms, nil
}

// SyncPolicyNames labels the synchronization ablation variants.
var SyncPolicyNames = []string{"FHB+CATCHUP", "hints (TF)", "none"}

// AblationSyncPolicy compares the paper's hardware remerge detector
// against the Thread Fusion software-hints baseline [36] and against no
// remerge detection at all.
func AblationSyncPolicy(ex Exec, apps []workloads.App, threads int) ([]AblationRow, []float64, error) {
	return ablate(ex, apps, threads, []func(*core.Config){
		func(c *core.Config) { c.Sync = core.SyncFHB },
		func(c *core.Config) { c.Sync = core.SyncHints },
		func(c *core.Config) { c.Sync = core.SyncNone },
	})
}

// LVIPModeNames labels the LVIP ablation variants.
var LVIPModeNames = []string{"predict", "off", "oracle"}

// AblationLVIP compares the paper's load-value-identical predictor against
// no prediction (always split) and a value oracle (the upper bound).
func AblationLVIP(ex Exec, apps []workloads.App, threads int) ([]AblationRow, []float64, error) {
	return ablate(ex, apps, threads, []func(*core.Config){
		func(c *core.Config) { c.LVIP = core.LVIPPredict },
		func(c *core.Config) { c.LVIP = core.LVIPOff },
		func(c *core.Config) { c.LVIP = core.LVIPOracle },
	})
}

// AheadDuties is the CATCHUP ahead-thread duty-cycle sweep (0 = fully
// gated; N = the ahead thread fetches every Nth cycle).
var AheadDuties = []uint64{0, 2, 4, 8}

// AblationAheadDuty sweeps the catchup priority policy.
func AblationAheadDuty(ex Exec, apps []workloads.App, threads int) ([]AblationRow, []float64, error) {
	var variants []func(*core.Config)
	for _, d := range AheadDuties {
		d := d
		variants = append(variants, func(c *core.Config) { c.AheadDuty = d })
	}
	return ablate(ex, apps, threads, variants)
}

// RegMergePortCounts is the register-merge read-port sweep (0 disables the
// value comparisons entirely while keeping the rest of MMT-FXR).
var RegMergePortCounts = []int{0, 1, 2, 4}

// AblationRegMergePorts sweeps the commit-time comparison bandwidth.
func AblationRegMergePorts(ex Exec, apps []workloads.App, threads int) ([]AblationRow, []float64, error) {
	var variants []func(*core.Config)
	for _, p := range RegMergePortCounts {
		p := p
		variants = append(variants, func(c *core.Config) { c.RegMergePorts = p })
	}
	return ablate(ex, apps, threads, variants)
}

// FormatAblation renders one ablation study.
func FormatAblation(title string, names []string, rows []AblationRow, gms []float64) string {
	var b strings.Builder
	header(&b, title)
	fmt.Fprintf(&b, "%-14s", "app")
	for _, n := range names {
		fmt.Fprintf(&b, " %12s", n)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.App)
		for _, s := range r.Speedups {
			fmt.Fprintf(&b, " %12.3f", s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "geomean")
	for _, g := range gms {
		fmt.Fprintf(&b, " %12.3f", g)
	}
	b.WriteByte('\n')
	return b.String()
}

// ablatePaired runs Base and MMT-FXR under the same mutation per variant
// (machine-scale and trace-cache studies, where the baseline must shrink
// with the MMT machine).
func ablatePaired(ex Exec, apps []workloads.App, threads int, variants []func(*core.Config)) ([]AblationRow, []float64, error) {
	var tasks []Task
	for _, a := range apps {
		for _, v := range variants {
			for _, p := range []Preset{PresetBase, PresetMMTFXR} {
				tasks = append(tasks, Task{App: a, Preset: p, Threads: threads, Mutate: v})
			}
		}
	}
	ex.Schedule(tasks...)

	rows := make([]AblationRow, 0, len(apps))
	per := make([][]float64, len(variants))
	for _, a := range apps {
		row := AblationRow{App: a.Name}
		for vi, v := range variants {
			base, err := runPoint(ex, a, PresetBase, threads, v)
			if err != nil {
				return nil, nil, err
			}
			r, err := runPoint(ex, a, PresetMMTFXR, threads, v)
			if err != nil {
				return nil, nil, err
			}
			s := Speedup(base, r)
			row.Speedups = append(row.Speedups, s)
			per[vi] = append(per[vi], s)
		}
		rows = append(rows, row)
	}
	gms := make([]float64, len(variants))
	for vi := range variants {
		gms[vi] = Geomean(per[vi])
	}
	return rows, gms, nil
}

// MachineScales are the §5 machine-scale variants ("the speedups of our
// system increase as the system is scaled down, so we chose an aggressive
// baseline").
var MachineScaleNames = []string{"8-wide (Table 4)", "4-wide", "2-wide"}

func machineScaleVariants() []func(*core.Config) {
	shrink := func(c *core.Config, width, alus, fpus, ports int) {
		c.FetchWidth, c.IssueWidth, c.CommitWidth, c.RenameWidth = width, width, width, width
		c.IntALUs, c.FPUs, c.LSPorts = alus, fpus, ports
	}
	return []func(*core.Config){
		func(c *core.Config) {},
		func(c *core.Config) { shrink(c, 4, 3, 2, 2) },
		func(c *core.Config) { shrink(c, 2, 2, 1, 1) },
	}
}

// AblationMachineScale verifies the §5 claim by shrinking the machine.
// Base and MMT use the same shrunken machine per column.
func AblationMachineScale(ex Exec, apps []workloads.App, threads int) ([]AblationRow, []float64, error) {
	return ablatePaired(ex, apps, threads, machineScaleVariants())
}

// TraceCacheNames labels the §5 trace-cache check ("we found that the
// trace cache actually had a negligible effect on the results").
var TraceCacheNames = []string{"with TC", "without TC"}

// AblationTraceCache compares MMT-FXR speedups with and without the trace
// cache (Base and MMT matched per column).
func AblationTraceCache(ex Exec, apps []workloads.App, threads int) ([]AblationRow, []float64, error) {
	return ablatePaired(ex, apps, threads, []func(*core.Config){
		func(c *core.Config) {},
		func(c *core.Config) { c.TraceCacheBytes = 0 },
	})
}
