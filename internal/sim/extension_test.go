package sim

import (
	"strings"
	"testing"

	"mmt/internal/asm"
	"mmt/internal/core"
	"mmt/internal/prog"
	"mmt/internal/workloads"
)

func TestExtensionMP(t *testing.T) {
	rows, err := ExtensionMP(NewSerial())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %f", r.App, r.Speedup)
		}
		if r.Merge < 0.5 {
			t.Errorf("%s: MERGE %f — SPMD ranks should mostly merge", r.App, r.Merge)
		}
	}
	// The all-reduce's gather is rank-independent: it must be the most
	// mergeable and the biggest winner.
	var all MPRow
	for _, r := range rows {
		if r.App == "allreduce-mp" {
			all = r
		}
	}
	if all.Speedup < 1.3 {
		t.Errorf("allreduce speedup = %f", all.Speedup)
	}
	if !strings.Contains(FormatMP(rows), "allreduce-mp") {
		t.Error("format output incomplete")
	}
}

func TestExtensionCoschedule(t *testing.T) {
	rows, err := ExtensionCoschedule(NewSerial())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(CoschedulePairs) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: speedup %f", r.Pair, r.Speedup)
		}
		// Gangs of two can merge at most pairwise; some merged
		// execution must survive the mixed workload.
		if r.ExecIdent == 0 {
			t.Errorf("%s: no merged execution", r.Pair)
		}
	}
	// The high-sharing pair outruns the annealing pair.
	byPair := map[string]CoschedRow{}
	for _, r := range rows {
		byPair[r.Pair] = r
	}
	if byPair["equake+mcf"].Speedup < byPair["libsvm+vpr"].Speedup {
		t.Errorf("pair ordering unexpected: %+v", rows)
	}
	_ = FormatCoschedule(rows)
}

func TestCoscheduleRejectsMTApps(t *testing.T) {
	a, _ := workloads.ByName("ammp")
	mt, _ := workloads.ByName("lu")
	if _, err := buildCoschedule(a, mt); err == nil {
		t.Error("MT app accepted for co-scheduling")
	}
}

func TestAblationSyncPolicy(t *testing.T) {
	apps := pick(t, "water-ns", "twolf")
	rows, gms, err := AblationSyncPolicy(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(gms) != len(SyncPolicyNames) {
		t.Fatalf("shape: %d rows, %d gms", len(rows), len(gms))
	}
	// water-ns depends on the FHB mechanism: the hardware detector must
	// beat both the hints baseline and no detection.
	var wn AblationRow
	for _, r := range rows {
		if r.App == "water-ns" {
			wn = r
		}
	}
	if wn.Speedups[0] <= wn.Speedups[1] {
		t.Errorf("water-ns: FHB %.3f vs hints %.3f — hardware detection should win", wn.Speedups[0], wn.Speedups[1])
	}
	out := FormatAblation("t", SyncPolicyNames, rows, gms)
	if !strings.Contains(out, "geomean") {
		t.Error("format output incomplete")
	}
}

func TestAblationLVIP(t *testing.T) {
	apps := pick(t, "libsvm", "ammp")
	rows, gms, err := AblationLVIP(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
	// predict ≈ oracle >= off: the predictor recovers nearly all the
	// oracle's value, and both beat always-splitting.
	predict, off, oracle := gms[0], gms[1], gms[2]
	if predict < off {
		t.Errorf("predictor (%.3f) below always-split (%.3f)", predict, off)
	}
	if oracle < off {
		t.Errorf("oracle (%.3f) below always-split (%.3f)", oracle, off)
	}
	if predict < 0.9*oracle {
		t.Errorf("predictor (%.3f) far below oracle (%.3f)", predict, oracle)
	}
}

func TestAblationSweepShapes(t *testing.T) {
	apps := pick(t, "equake")
	rows, gms, err := AblationAheadDuty(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Speedups) != len(AheadDuties) || len(gms) != len(AheadDuties) {
		t.Error("duty sweep shape")
	}
	rows, gms, err = AblationRegMergePorts(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Speedups) != len(RegMergePortCounts) || len(gms) != len(RegMergePortCounts) {
		t.Error("port sweep shape")
	}
}

func TestSyncPolicyConfigs(t *testing.T) {
	// The policies are distinct behaviours on a divergent app.
	app, _ := workloads.ByName("twolf")
	get := func(p core.SyncPolicy) *core.Stats {
		r, err := Run(app, PresetMMTFXR, 2, func(c *core.Config) { c.Sync = p })
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	fhb := get(core.SyncFHB)
	hints := get(core.SyncHints)
	none := get(core.SyncNone)
	if fhb.CatchupsStarted == 0 {
		t.Error("FHB policy never entered catchup")
	}
	if hints.HintParks == 0 {
		t.Error("hints policy never parked")
	}
	if none.CatchupsStarted != 0 || none.HintParks != 0 {
		t.Error("none policy used a detector")
	}
	if none.FetchedByMode[core.FetchCatchup] != 0 {
		t.Error("none policy recorded CATCHUP instructions")
	}
}

func TestPermuteRegistersPreservesSemantics(t *testing.T) {
	for _, name := range DiversityApps {
		a, _ := workloads.ByName(name)
		variant := permuteRegisters(a.Source)
		if variant == a.Source {
			t.Errorf("%s: permutation changed nothing", name)
		}
		// Specials are preserved.
		for _, tok := range []string{"r0", "r4", "tid"} {
			if strings.Contains(a.Source, tok) && !strings.Contains(variant, tok) {
				t.Errorf("%s: token %q lost", name, tok)
			}
		}
		pa, err := asm.Assemble(name, a.Source)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := asm.AssembleAt(name+"-v", variant, altCodeBase, altDataBase)
		if err != nil {
			t.Fatalf("%s variant: %v", name, err)
		}
		if len(pa.Insts) != len(pb.Insts) {
			t.Fatalf("%s: instruction counts differ: %d vs %d", name, len(pa.Insts), len(pb.Insts))
		}
		// Semantically identical: the variant runs the same dynamic path.
		run := func(p *prog.Program) uint64 {
			sys, err := prog.NewMultiSystem([]*prog.Program{p}, func(ctx int, mem *prog.Memory) {
				if a.Init != nil {
					a.Init(p, 0, mem, false)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunFunctional(3_000_000); err != nil {
				t.Fatalf("%s: %v", p.Name, err)
			}
			return sys.Contexts[0].DynCount
		}
		if da, db := run(pa), run(pb); da != db {
			t.Errorf("%s: dynamic paths diverge: %d vs %d instructions", name, da, db)
		}
	}
}

func TestExtensionDiversity(t *testing.T) {
	rows, err := ExtensionDiversity(NewSerial())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DiversityApps) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Uniform <= 0 || r.Diverse <= 0 {
			t.Errorf("%s: non-positive speedups %+v", r.App, r)
		}
	}
	// In aggregate, diversity reduces what MMT can merge: the uniform
	// geomean exceeds the diversified one.
	var u, d []float64
	for _, r := range rows {
		u = append(u, r.Uniform)
		d = append(d, r.Diverse)
	}
	if Geomean(u) <= Geomean(d) {
		t.Errorf("diversity did not reduce gains: uniform %.3f vs diverse %.3f", Geomean(u), Geomean(d))
	}
	_ = FormatDiversity(rows)
}

func TestExtensionScaling(t *testing.T) {
	rows, err := ExtensionScaling(NewSerial(), pick(t, "water-ns", "swaptions", "twolf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Threads != 1 || rows[0].Geomean < 0.99 || rows[0].Geomean > 1.01 {
		t.Errorf("1-thread speedup = %f, want ~1.0", rows[0].Geomean)
	}
	// The advantage grows with threads on this sharing-heavy subset.
	if rows[3].Geomean <= rows[1].Geomean {
		t.Errorf("no scaling: %+v", rows)
	}
	_ = FormatScaling(rows)
}

func TestAblationMachineScaleShapes(t *testing.T) {
	apps := pick(t, "swaptions", "ammp")
	rows, gms, err := AblationMachineScale(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gms) != len(MachineScaleNames) || len(rows) != 2 {
		t.Fatal("shape")
	}
	for i, g := range gms {
		if g <= 0.5 {
			t.Errorf("variant %d geomean %f", i, g)
		}
	}
}

func TestAblationTraceCacheShapes(t *testing.T) {
	apps := pick(t, "ammp")
	rows, gms, err := AblationTraceCache(NewSerial(), apps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gms) != 2 || len(rows[0].Speedups) != 2 {
		t.Fatal("shape")
	}
	// MMT still wins on the high-sharing app without a trace cache.
	if gms[1] < 1.0 {
		t.Errorf("without-TC geomean %f on ammp", gms[1])
	}
}

func TestMemoCachesByResolvedConfig(t *testing.T) {
	app, ok := workloads.ByName("libsvm")
	if !ok {
		t.Fatal("missing app libsvm")
	}
	m := NewMemo()
	point := Task{App: app, Preset: PresetBase, Threads: 2}
	r1, err := m.Do(point)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Do(point)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("second identical run not cached")
	}
	if m.Len() != 1 {
		t.Errorf("cache size %d", m.Len())
	}
	// A mutated run keys on its resolved configuration: distinct from the
	// unmutated point, but shared between equivalent closures.
	mutated := Task{App: app, Preset: PresetBase, Threads: 2, Mutate: func(c *core.Config) { c.FHBSize = 8 }}
	r3, err := m.Do(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 || m.Len() != 2 {
		t.Errorf("mutated run shared the unmutated key (len %d)", m.Len())
	}
	sameEffect := Task{App: app, Preset: PresetBase, Threads: 2, Mutate: func(c *core.Config) { c.FHBSize = 8 }}
	r4, err := m.Do(sameEffect)
	if err != nil {
		t.Fatal(err)
	}
	if r4 != r3 || m.Len() != 2 {
		t.Errorf("equivalent mutation missed the cache (len %d)", m.Len())
	}
	// A no-op mutation resolves to the unmutated configuration.
	noop := Task{App: app, Preset: PresetBase, Threads: 2, Mutate: func(c *core.Config) {}}
	r5, err := m.Do(noop)
	if err != nil {
		t.Fatal(err)
	}
	if r5 != r1 {
		t.Error("no-op mutation missed the cache")
	}
	if _, err := m.Do(Task{App: app, Preset: Preset("Bogus"), Threads: 2}); err == nil {
		t.Error("unknown preset accepted")
	}
}
