package sim

import (
	"mmt/internal/core"
	"mmt/internal/trace"
	"mmt/internal/workloads"
)

// This file implements one driver per evaluation artifact. Each returns
// structured rows so cmd/mmtbench, the benchmark harness and EXPERIMENTS.md
// share a single source of truth.
//
// Every driver follows the same two-phase shape: enumerate the simulation
// points it will need and announce them to the executor with Schedule (a
// parallel executor starts them all immediately), then assemble the rows in
// a fixed order by collecting each outcome with Do. The assembly order never
// depends on completion order, so the output is byte-identical whether the
// executor is serial or parallel.

// ---------------------------------------------------------------- Fig. 1

// Fig1Row is one application's instruction-sharing breakdown (§3.2).
type Fig1Row struct {
	App        string
	ExecIdent  float64
	FetchIdent float64 // fetch-identical but not execute-identical
	NotIdent   float64
}

// profileTasks enumerates the two-context trace-alignment points shared by
// Fig. 1 and Fig. 2.
func profileTasks(apps []workloads.App, maxInsts int) []Task {
	tasks := make([]Task, 0, len(apps))
	for _, a := range apps {
		tasks = append(tasks, Task{App: a, Threads: 2, Profile: true, MaxInsts: maxInsts})
	}
	return tasks
}

// Figure1 profiles instruction redundancy for every application with two
// contexts, using the trace-alignment methodology.
func Figure1(ex Exec, apps []workloads.App, maxInsts int) ([]Fig1Row, error) {
	ex.Schedule(profileTasks(apps, maxInsts)...)
	var rows []Fig1Row
	for _, a := range apps {
		prof, err := profilePoint(ex, a, maxInsts)
		if err != nil {
			return nil, err
		}
		x, f, n := prof.Fractions()
		rows = append(rows, Fig1Row{App: a.Name, ExecIdent: x, FetchIdent: f, NotIdent: n})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 2

// Fig2Row is one application's divergence-length-difference histogram,
// cumulative by bucket (≤16, ≤32, … taken branches), as fractions.
type Fig2Row struct {
	App         string
	Cumulative  [6]float64 // ≤16, ≤32, ≤64, ≤128, ≤256, ≤512
	Divergences uint64
}

// Figure2 measures the difference in length of divergent execution paths.
func Figure2(ex Exec, apps []workloads.App, maxInsts int) ([]Fig2Row, error) {
	ex.Schedule(profileTasks(apps, maxInsts)...)
	var rows []Fig2Row
	for _, a := range apps {
		prof, err := profilePoint(ex, a, maxInsts)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{App: a.Name, Divergences: prof.Divergences}
		for i, b := range trace.DistBuckets {
			row.Cumulative[i] = prof.DiffWithin(b)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ------------------------------------------------------- Fig. 5(a)/(c)

// SpeedupRow is one application's speedups over Base for each MMT preset
// at one thread count.
type SpeedupRow struct {
	App   string
	F     float64
	FX    float64
	FXR   float64
	Limit float64
}

// Figure5Speedups runs every preset for every app at the given thread
// count; Fig. 5(a) is threads=2, Fig. 5(c) is threads=4.
func Figure5Speedups(ex Exec, apps []workloads.App, threads int) ([]SpeedupRow, SpeedupRow, error) {
	var tasks []Task
	for _, a := range apps {
		for _, p := range Presets() {
			tasks = append(tasks, Task{App: a, Preset: p, Threads: threads})
		}
	}
	ex.Schedule(tasks...)

	var rows []SpeedupRow
	for _, a := range apps {
		base, err := runPoint(ex, a, PresetBase, threads, nil)
		if err != nil {
			return nil, SpeedupRow{}, err
		}
		row := SpeedupRow{App: a.Name}
		for _, p := range []Preset{PresetMMTF, PresetMMTFX, PresetMMTFXR, PresetLimit} {
			r, err := runPoint(ex, a, p, threads, nil)
			if err != nil {
				return nil, SpeedupRow{}, err
			}
			s := Speedup(base, r)
			switch p {
			case PresetMMTF:
				row.F = s
			case PresetMMTFX:
				row.FX = s
			case PresetMMTFXR:
				row.FXR = s
			case PresetLimit:
				row.Limit = s
			}
		}
		rows = append(rows, row)
	}
	gm := SpeedupRow{App: "geomean"}
	var f, fx, fxr, lim []float64
	for _, r := range rows {
		f = append(f, r.F)
		fx = append(fx, r.FX)
		fxr = append(fxr, r.FXR)
		lim = append(lim, r.Limit)
	}
	gm.F, gm.FX, gm.FXR, gm.Limit = Geomean(f), Geomean(fx), Geomean(fxr), Geomean(lim)
	return rows, gm, nil
}

// ---------------------------------------------------------------- Fig. 5(b)

// Fig5bRow is the fraction of committed per-thread instructions the MMT
// hardware identified in each category.
type Fig5bRow struct {
	App               string
	ExecIdent         float64
	ExecIdentRegMerge float64
	FetchIdent        float64
	NotIdent          float64
}

// fxrTasks enumerates the single MMT-FXR point per app that Fig. 5(b),
// Fig. 5(d) and §6.3 share.
func fxrTasks(apps []workloads.App, threads int) []Task {
	tasks := make([]Task, 0, len(apps))
	for _, a := range apps {
		tasks = append(tasks, Task{App: a, Preset: PresetMMTFXR, Threads: threads})
	}
	return tasks
}

// Figure5b runs MMT-FXR and reports the identified-identical breakdown.
func Figure5b(ex Exec, apps []workloads.App, threads int) ([]Fig5bRow, error) {
	ex.Schedule(fxrTasks(apps, threads)...)
	var rows []Fig5bRow
	for _, a := range apps {
		r, err := runPoint(ex, a, PresetMMTFXR, threads, nil)
		if err != nil {
			return nil, err
		}
		x, xr, f, n := r.Stats.IdenticalFractions()
		rows = append(rows, Fig5bRow{
			App: a.Name, ExecIdent: x, ExecIdentRegMerge: xr, FetchIdent: f, NotIdent: n,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 5(d)

// Fig5dRow is the instruction breakdown by fetch mode.
type Fig5dRow struct {
	App     string
	Merge   float64
	Detect  float64
	Catchup float64
}

// Figure5d runs MMT-FXR and reports fetch-mode residency.
func Figure5d(ex Exec, apps []workloads.App, threads int) ([]Fig5dRow, error) {
	ex.Schedule(fxrTasks(apps, threads)...)
	var rows []Fig5dRow
	for _, a := range apps {
		r, err := runPoint(ex, a, PresetMMTFXR, threads, nil)
		if err != nil {
			return nil, err
		}
		m, d, c := r.Stats.FetchModeFractions()
		rows = append(rows, Fig5dRow{App: a.Name, Merge: m, Detect: d, Catchup: c})
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Row is one application's energy per job for the four bars of Fig. 6,
// normalized to SMT-2T, with the MMT-4T breakdown.
type Fig6Row struct {
	App  string
	SMT2 float64
	MMT2 float64
	SMT4 float64
	MMT4 float64
	// Breakdown fractions of the MMT-4T bar.
	CacheFrac    float64
	OverheadFrac float64
	OtherFrac    float64
}

// Figure6 compares energy per job across SMT/MMT at 2 and 4 threads.
func Figure6(ex Exec, apps []workloads.App) ([]Fig6Row, error) {
	var tasks []Task
	for _, a := range apps {
		for _, p := range []Preset{PresetBase, PresetMMTFXR} {
			for _, n := range []int{2, 4} {
				tasks = append(tasks, Task{App: a, Preset: p, Threads: n})
			}
		}
	}
	ex.Schedule(tasks...)

	var rows []Fig6Row
	for _, a := range apps {
		get := func(p Preset, n int) (*Result, error) { return runPoint(ex, a, p, n, nil) }
		smt2, err := get(PresetBase, 2)
		if err != nil {
			return nil, err
		}
		mmt2, err := get(PresetMMTFXR, 2)
		if err != nil {
			return nil, err
		}
		smt4, err := get(PresetBase, 4)
		if err != nil {
			return nil, err
		}
		mmt4, err := get(PresetMMTFXR, 4)
		if err != nil {
			return nil, err
		}
		norm := smt2.EnergyPerJob
		row := Fig6Row{
			App:  a.Name,
			SMT2: 1.0,
			MMT2: mmt2.EnergyPerJob / norm,
			SMT4: smt4.EnergyPerJob / norm,
			MMT4: mmt4.EnergyPerJob / norm,
		}
		tot := mmt4.Energy.Total()
		if tot > 0 {
			row.CacheFrac = mmt4.Energy.Cache / tot
			row.OverheadFrac = mmt4.Energy.Overhead / tot
			row.OtherFrac = mmt4.Energy.Other / tot
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig. 7

// FHBSizes is the sweep of Fig. 7(a)/(c).
var FHBSizes = []int{8, 16, 32, 64, 128}

// fhbMutate returns the Fig. 7(a)/(c) configuration hook for one size.
func fhbMutate(size int) func(*core.Config) {
	return func(c *core.Config) { c.FHBSize = size }
}

// Fig7aRow is one application's speedup over Base per FHB size.
type Fig7aRow struct {
	App      string
	Speedups []float64 // parallel to FHBSizes
}

// Figure7a sweeps the Fetch History Buffer size.
func Figure7a(ex Exec, apps []workloads.App, threads int) ([]Fig7aRow, error) {
	var tasks []Task
	for _, a := range apps {
		tasks = append(tasks, Task{App: a, Preset: PresetBase, Threads: threads})
		for _, size := range FHBSizes {
			tasks = append(tasks, Task{App: a, Preset: PresetMMTFXR, Threads: threads, Mutate: fhbMutate(size)})
		}
	}
	ex.Schedule(tasks...)

	var rows []Fig7aRow
	for _, a := range apps {
		base, err := runPoint(ex, a, PresetBase, threads, nil)
		if err != nil {
			return nil, err
		}
		row := Fig7aRow{App: a.Name}
		for _, size := range FHBSizes {
			r, err := runPoint(ex, a, PresetMMTFXR, threads, fhbMutate(size))
			if err != nil {
				return nil, err
			}
			row.Speedups = append(row.Speedups, Speedup(base, r))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7cRow is the fetch-mode residency per FHB size.
type Fig7cRow struct {
	App     string
	Merge   []float64
	Detect  []float64
	Catchup []float64
}

// Figure7c sweeps the FHB size and reports mode residency.
func Figure7c(ex Exec, apps []workloads.App, threads int) ([]Fig7cRow, error) {
	var tasks []Task
	for _, a := range apps {
		for _, size := range FHBSizes {
			tasks = append(tasks, Task{App: a, Preset: PresetMMTFXR, Threads: threads, Mutate: fhbMutate(size)})
		}
	}
	ex.Schedule(tasks...)

	var rows []Fig7cRow
	for _, a := range apps {
		row := Fig7cRow{App: a.Name}
		for _, size := range FHBSizes {
			r, err := runPoint(ex, a, PresetMMTFXR, threads, fhbMutate(size))
			if err != nil {
				return nil, err
			}
			m, d, c := r.Stats.FetchModeFractions()
			row.Merge = append(row.Merge, m)
			row.Detect = append(row.Detect, d)
			row.Catchup = append(row.Catchup, c)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LSPortCounts is the sweep of Fig. 7(b); MSHRs scale with the ports, as
// in the paper.
var LSPortCounts = []int{2, 4, 6, 8, 12}

// lsPortMutate returns the Fig. 7(b) configuration hook for one port count.
func lsPortMutate(ports int) func(*core.Config) {
	return func(c *core.Config) {
		c.LSPorts = ports
		c.Mem.MSHRs = 4 * ports
	}
}

// Figure7b sweeps load/store ports and returns the geomean MMT speedup
// over Base at each point.
func Figure7b(ex Exec, apps []workloads.App, threads int) ([]float64, error) {
	var tasks []Task
	for _, ports := range LSPortCounts {
		for _, a := range apps {
			for _, p := range []Preset{PresetBase, PresetMMTFXR} {
				tasks = append(tasks, Task{App: a, Preset: p, Threads: threads, Mutate: lsPortMutate(ports)})
			}
		}
	}
	ex.Schedule(tasks...)

	var out []float64
	for _, ports := range LSPortCounts {
		mutate := lsPortMutate(ports)
		var sp []float64
		for _, a := range apps {
			base, err := runPoint(ex, a, PresetBase, threads, mutate)
			if err != nil {
				return nil, err
			}
			r, err := runPoint(ex, a, PresetMMTFXR, threads, mutate)
			if err != nil {
				return nil, err
			}
			sp = append(sp, Speedup(base, r))
		}
		out = append(out, Geomean(sp))
	}
	return out, nil
}

// FetchWidths is the sweep of Fig. 7(d).
var FetchWidths = []int{4, 8, 16, 32}

// fetchWidthMutate returns the Fig. 7(d) configuration hook for one width.
func fetchWidthMutate(w int) func(*core.Config) {
	return func(c *core.Config) { c.FetchWidth = w }
}

// Figure7d sweeps the fetch width and returns the geomean MMT speedup over
// Base at each point.
func Figure7d(ex Exec, apps []workloads.App, threads int) ([]float64, error) {
	var tasks []Task
	for _, w := range FetchWidths {
		for _, a := range apps {
			for _, p := range []Preset{PresetBase, PresetMMTFXR} {
				tasks = append(tasks, Task{App: a, Preset: p, Threads: threads, Mutate: fetchWidthMutate(w)})
			}
		}
	}
	ex.Schedule(tasks...)

	var out []float64
	for _, w := range FetchWidths {
		mutate := fetchWidthMutate(w)
		var sp []float64
		for _, a := range apps {
			base, err := runPoint(ex, a, PresetBase, threads, mutate)
			if err != nil {
				return nil, err
			}
			r, err := runPoint(ex, a, PresetMMTFXR, threads, mutate)
			if err != nil {
				return nil, err
			}
			sp = append(sp, Speedup(base, r))
		}
		out = append(out, Geomean(sp))
	}
	return out, nil
}

// ---------------------------------------------------------------- §6.3

// RemergeWithin512 runs MMT-FXR and returns the fraction of remerges found
// within 512 taken branches, per app (the paper reports ~90% overall).
func RemergeWithin512(ex Exec, apps []workloads.App, threads int) (map[string]float64, error) {
	ex.Schedule(fxrTasks(apps, threads)...)
	out := make(map[string]float64, len(apps))
	for _, a := range apps {
		r, err := runPoint(ex, a, PresetMMTFXR, threads, nil)
		if err != nil {
			return nil, err
		}
		out[a.Name] = r.Stats.RemergeWithin(512)
	}
	return out, nil
}

// ------------------------------------------------- Extension: MP suite

// MPRow is one message-passing application's result (the paper lists this
// class as future work in §7; this is the repository's extension study).
type MPRow struct {
	App     string
	Ranks   int
	Speedup float64 // MMT-FXR over Base
	Merge   float64 // MERGE-mode residency under MMT-FXR
	ExecId  float64 // execute-identical fraction under MMT-FXR
}

// mpRanks returns the rank count for one message-passing app: pairwise
// kernels at 2, the all-reduce at 4.
func mpRanks(a workloads.App) int {
	if a.Name == "allreduce-mp" {
		return 4
	}
	return 2
}

// ExtensionMP runs the message-passing suite.
func ExtensionMP(ex Exec) ([]MPRow, error) {
	apps := workloads.MP()
	var tasks []Task
	for _, a := range apps {
		for _, p := range []Preset{PresetBase, PresetMMTFXR} {
			tasks = append(tasks, Task{App: a, Preset: p, Threads: mpRanks(a)})
		}
	}
	ex.Schedule(tasks...)

	var rows []MPRow
	for _, a := range apps {
		ranks := mpRanks(a)
		base, err := runPoint(ex, a, PresetBase, ranks, nil)
		if err != nil {
			return nil, err
		}
		fxr, err := runPoint(ex, a, PresetMMTFXR, ranks, nil)
		if err != nil {
			return nil, err
		}
		m, _, _ := fxr.Stats.FetchModeFractions()
		x, xr, _, _ := fxr.Stats.IdenticalFractions()
		rows = append(rows, MPRow{
			App: a.Name, Ranks: ranks,
			Speedup: Speedup(base, fxr), Merge: m, ExecId: x + xr,
		})
	}
	return rows, nil
}

// --------------------------------------------- Extension: thread scaling

// ScalingRow is the geomean MMT-FXR speedup over Base at each thread
// count (the paper evaluates 2 and 4; the curve shows the trend).
type ScalingRow struct {
	Threads int
	Geomean float64
}

// ExtensionScaling sweeps hardware thread count 1–4 over all sixteen
// applications.
func ExtensionScaling(ex Exec, apps []workloads.App) ([]ScalingRow, error) {
	var tasks []Task
	for n := 1; n <= 4; n++ {
		for _, a := range apps {
			for _, p := range []Preset{PresetBase, PresetMMTFXR} {
				tasks = append(tasks, Task{App: a, Preset: p, Threads: n})
			}
		}
	}
	ex.Schedule(tasks...)

	var rows []ScalingRow
	for n := 1; n <= 4; n++ {
		var sp []float64
		for _, a := range apps {
			base, err := runPoint(ex, a, PresetBase, n, nil)
			if err != nil {
				return nil, err
			}
			fxr, err := runPoint(ex, a, PresetMMTFXR, n, nil)
			if err != nil {
				return nil, err
			}
			sp = append(sp, Speedup(base, fxr))
		}
		rows = append(rows, ScalingRow{Threads: n, Geomean: Geomean(sp)})
	}
	return rows, nil
}
