package sim

import (
	"testing"

	"mmt/internal/prof"
)

// TestAttributionKeyAndKeyCompat: attribution distinguishes keys, and a
// plain task's key is byte-identical whether or not the Attribution field
// exists in this build (omitempty keeps pre-profiler cache entries valid).
func TestAttributionKeyAndKeyCompat(t *testing.T) {
	spec := TaskSpec{App: "libsvm", Preset: PresetBase, Threads: 2,
		Config: &ConfigOverride{MaxInsts: 20000}}
	plain, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	spec.Attribution = true
	attributed, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	kPlain, err := plain.Key()
	if err != nil {
		t.Fatal(err)
	}
	kAttr, err := attributed.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kPlain == kAttr {
		t.Error("attributed and plain runs share a key; their outcomes differ, so they must not share cache entries")
	}
}

// TestAttributionOutcomeRoundTrip: an attributed outcome's profile
// survives the canonical wire/cache encoding intact.
func TestAttributionOutcomeRoundTrip(t *testing.T) {
	spec := TaskSpec{App: "libsvm", Preset: PresetBase, Threads: 2,
		Config: &ConfigOverride{MaxInsts: 20000}, Attribution: true}
	task, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	if !task.Attribution {
		t.Fatal("spec.Attribution not carried onto the task")
	}
	out, err := task.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if out.Attribution == nil {
		t.Fatal("attributed execution produced no profile")
	}
	if err := out.Attribution.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.Attribution.Cycles != out.Result.Stats.Cycles {
		t.Errorf("profile covers %d cycles, run took %d", out.Attribution.Cycles, out.Result.Stats.Cycles)
	}

	b, err := MarshalOutcome(out)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOutcome(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Attribution == nil {
		t.Fatal("profile lost across the codec")
	}
	b2, err := MarshalOutcome(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Error("attributed outcome changed across a codec round trip")
	}
	if back.Attribution.Schema != prof.SchemaVersion {
		t.Errorf("decoded profile schema %d", back.Attribution.Schema)
	}
}

// TestAttributionRejectsProfileTasks: the §3 trace-alignment study has no
// timing core to probe, so the combination is a spec error.
func TestAttributionRejectsProfileTasks(t *testing.T) {
	spec := TaskSpec{App: "libsvm", Profile: true, MaxInsts: 5000, Attribution: true}
	if _, err := spec.Task(); err == nil {
		t.Error("attribution accepted on a trace-alignment task")
	}
}

// TestValidateRejectsOrphanAttribution: a profile can only accompany a
// timing result.
func TestValidateRejectsOrphanAttribution(t *testing.T) {
	o := &Outcome{Attribution: &prof.Profile{Schema: prof.SchemaVersion}}
	if err := o.Validate(); err == nil {
		t.Error("attribution without a result validated")
	}
}
