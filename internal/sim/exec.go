package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mmt/internal/core"
	"mmt/internal/obs"
	"mmt/internal/power"
	"mmt/internal/prof"
	"mmt/internal/prog"
	"mmt/internal/trace"
	"mmt/internal/workloads"
)

// KeySchema salts every task key. Bump it whenever the Result/Profile
// serialization or the simulator's semantics change incompatibly: persistent
// cache entries written by older binaries then stop matching their keys and
// the points are re-simulated instead of being served stale.
//
// Schema history: 2 renamed core.Stats.FetchUops to FetchAccesses (entries
// written by schema-1 binaries would decode with zero fetch counts);
// 3 profiles gained remerge edges (prof schema 2) — older cached outcomes
// would fail profile validation and lack cross-validation data.
const KeySchema = 3

// Task fully describes one unit of experiment work: a timing simulation of
// one (app, preset, threads) point — possibly with a configuration mutation
// or a custom-built system — or a §3 trace-alignment profile. Tasks are
// content-addressed: Key folds every input that can change the outcome into
// a canonical hash, which the in-memory memo and the persistent result
// cache share.
type Task struct {
	// App is the workload. Its name and a hash of its assembly source
	// enter the key; ignored when Build is set.
	App workloads.App
	// Preset selects the Table 5 design point (unused by Profile tasks).
	Preset Preset
	// Threads is the hardware thread count (context count for Profile
	// tasks).
	Threads int
	// Mutate optionally adjusts the configuration before the run. It is
	// folded into the key by hashing the fully resolved configuration, so
	// two distinct closures with the same effect share one key.
	Mutate func(*core.Config)
	// Variant names a custom-built system (co-scheduling pairs, diversity
	// builds). It must uniquely describe what Build constructs, because
	// the build closure itself cannot be hashed. Empty for standard
	// points.
	Variant string
	// Build overrides the standard system construction when non-nil.
	Build func() (*prog.System, error)
	// Profile switches the task from a timing simulation to the trace-
	// alignment study of Fig. 1/2; MaxInsts bounds per-context dynamic
	// instructions.
	Profile  bool
	MaxInsts int
	// Trace, when non-nil, is attached to the simulated core, which then
	// emits discrete events plus one cycle sample every SampleEvery
	// cycles (0 disables sampling). Tracing never changes the simulated
	// outcome, so it is NOT part of the key — but executors that serve
	// outcomes from a cache or memo never replay the event stream, so
	// traced tasks must Execute directly. Ignored by Profile tasks.
	Trace       obs.Recorder
	SampleEvery uint64
	// Attribution attaches a per-PC attribution profiler (internal/prof)
	// to the run and embeds its snapshot in the outcome. Unlike Trace,
	// the profile is part of the serialized outcome, so attributed tasks
	// cache normally — Attribution IS part of the key (an attributed and
	// a plain run of the same point are distinct cache entries). Ignored
	// by Profile (trace-alignment) tasks.
	Attribution bool
	// TraceID is the job-scoped correlation id stamped onto the runner's
	// obs events for this task (serve mints one per job; local drivers
	// may set their own). Purely observational, NOT part of the key.
	TraceID string
	// SpanParent is the serialized distributed-span context ("traceparent"
	// form) under which the runner opens its scheduling/cache/exec spans
	// for this task. Purely observational, NOT part of the key.
	SpanParent string
	// Phase, when non-nil, observes the coarse execution phases: Execute
	// calls Phase(name) entering a phase ("build", "run") and the returned
	// func leaving it. The runner bridges it to span children. Never
	// changes the outcome, NOT part of the key.
	Phase func(name string) func()
}

// Outcome is a task's product: exactly one of Result (timing simulation)
// or Profile (trace alignment) is non-nil. Attribution accompanies a
// Result when the task requested it (Task.Attribution) and travels with
// the outcome through the cache and the serving API.
type Outcome struct {
	Result      *Result        `json:"result,omitempty"`
	Profile     *trace.Profile `json:"profile,omitempty"`
	Attribution *prof.Profile  `json:"attribution,omitempty"`
}

// Name returns a short human-readable label for progress displays, e.g.
// "ammp/MMT-FXR/2T" or "profile:ammp/2C".
func (t Task) Name() string {
	id := t.App.Name
	if t.Variant != "" {
		id = t.Variant
	}
	if t.Profile {
		return fmt.Sprintf("profile:%s/%dC", id, t.Threads)
	}
	return fmt.Sprintf("%s/%s/%dT", id, t.Preset, t.Threads)
}

// ResolvedConfig returns the task's full core configuration: the preset's
// Table 4/5 machine with Mutate applied.
func (t Task) ResolvedConfig() (core.Config, error) {
	cfg, err := Configure(t.Preset, t.Threads)
	if err != nil {
		return core.Config{}, err
	}
	if t.Mutate != nil {
		t.Mutate(&cfg)
	}
	return cfg, nil
}

// taskKeyBlob is the canonical serialized identity a task key hashes.
type taskKeyBlob struct {
	Schema     int
	App        string
	SourceHash string `json:",omitempty"`
	Variant    string `json:",omitempty"`
	Preset     Preset `json:",omitempty"`
	Threads    int
	Profile    bool               `json:",omitempty"`
	MaxInsts   int                `json:",omitempty"`
	Align      *trace.AlignConfig `json:",omitempty"`
	Config     *core.Config       `json:",omitempty"`
	// Attribution distinguishes attributed runs: their outcomes carry a
	// profile, so they must not share cache entries with plain runs.
	// omitempty keeps every pre-existing (non-attributed) key unchanged.
	Attribution bool `json:",omitempty"`
}

// Key returns the task's canonical content-addressed identity: a hex
// SHA-256 over the schema version, the workload identity (name + source
// hash), the variant, and either the fully resolved core configuration
// (timing tasks — this is what makes Mutate hooks cacheable) or the
// alignment parameters (profile tasks).
func (t Task) Key() (string, error) {
	blob := taskKeyBlob{
		Schema:      KeySchema,
		App:         t.App.Name,
		Variant:     t.Variant,
		Preset:      t.Preset,
		Threads:     t.Threads,
		Profile:     t.Profile,
		MaxInsts:    t.MaxInsts,
		Attribution: t.Attribution && !t.Profile,
	}
	if t.App.Source != "" {
		sum := sha256.Sum256([]byte(t.App.Source))
		blob.SourceHash = hex.EncodeToString(sum[:8])
	}
	if t.Profile {
		ac := trace.DefaultAlignConfig()
		blob.Align = &ac
	} else {
		cfg, err := t.ResolvedConfig()
		if err != nil {
			return "", err
		}
		blob.Config = &cfg
	}
	b, err := json.Marshal(blob)
	if err != nil {
		return "", fmt.Errorf("sim: keying %s: %w", t.Name(), err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// phase enters a named execution phase, returning the leave func (a no-op
// without a Phase observer).
func (t Task) phase(name string) func() {
	if t.Phase == nil {
		return func() {}
	}
	return t.Phase(name)
}

// Execute runs the task to completion on the calling goroutine.
func (t Task) Execute() (*Outcome, error) {
	build := t.Build
	if build == nil {
		app, threads, ident := t.App, t.Threads, t.Preset.IdenticalInputs()
		build = func() (*prog.System, error) { return app.Build(threads, ident) }
	}
	if t.Profile {
		leave := t.phase("build")
		sys, err := build()
		leave()
		if err != nil {
			return nil, err
		}
		leave = t.phase("run")
		prof, err := trace.ProfileSystem(sys, t.MaxInsts, trace.DefaultAlignConfig())
		leave()
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", t.Name(), err)
		}
		return &Outcome{Profile: prof}, nil
	}
	cfg, err := t.ResolvedConfig()
	if err != nil {
		return nil, err
	}
	leave := t.phase("build")
	sys, err := build()
	leave()
	if err != nil {
		return nil, err
	}
	c, err := core.New(cfg, sys)
	if err != nil {
		return nil, err
	}
	if t.Trace != nil {
		c.Attach(t.Trace, t.SampleEvery)
	}
	var profiler *prof.Profiler
	if t.Attribution {
		profiler = prof.New()
		c.AttachProbe(profiler)
	}
	leave = t.phase("run")
	st, err := c.Run()
	leave()
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", t.Name(), err)
	}
	name := t.App.Name
	if t.Variant != "" {
		name = t.Variant
	}
	model := power.NewModel()
	res := &Result{
		App:     name,
		Preset:  t.Preset,
		Threads: t.Threads,
		Stats:   st,
		Mem:     c.MemEvents(),
		Energy:  model.Energy(st, c.MemEvents()),
	}
	res.EnergyPerJob = model.EnergyPerJob(st, c.MemEvents())
	o := &Outcome{Result: res}
	if profiler != nil {
		o.Attribution = profiler.Snapshot()
	}
	return o, nil
}

// Exec executes simulation tasks for the experiment drivers. The drivers
// enumerate every point they will need, announce them with Schedule, then
// assemble their tables in deterministic order by collecting each outcome
// with Do — so a parallel executor overlaps the simulations while the
// assembled output stays byte-identical to a serial run.
type Exec interface {
	// Schedule announces tasks whose outcomes will later be collected
	// with Do, letting parallel executors start them immediately.
	// Implementations may ignore it; scheduling is never required before
	// Do. The error (e.g. a closed executor refusing work) is advisory
	// for drivers that collect every outcome with Do, because Do reports
	// the same condition per task.
	Schedule(tasks ...Task) error
	// Do returns the task's outcome, executing it if it is not already
	// available. Tasks with equal keys share one outcome.
	Do(t Task) (*Outcome, error)
}

// Serial is the inline executor: it runs tasks on the calling goroutine and
// memoizes outcomes, so artifacts sharing points (Fig. 5a/5b/5d/6 all need
// the Base and MMT-FXR runs) simulate each point once.
type Serial struct{ memo *Memo }

// NewSerial returns a serial executor with a fresh memo.
func NewSerial() *Serial { return &Serial{memo: NewMemo()} }

// Schedule is a no-op: serial execution happens at Do time.
func (s *Serial) Schedule(tasks ...Task) error { return nil }

// Do executes the task inline, serving repeats from the memo.
func (s *Serial) Do(t Task) (*Outcome, error) { return s.memo.Do(t) }

// runPoint collects one standard timing point through an executor.
func runPoint(ex Exec, a workloads.App, p Preset, threads int, mutate func(*core.Config)) (*Result, error) {
	out, err := ex.Do(Task{App: a, Preset: p, Threads: threads, Mutate: mutate})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// profilePoint collects one trace-alignment profile through an executor.
func profilePoint(ex Exec, a workloads.App, maxInsts int) (*trace.Profile, error) {
	out, err := ex.Do(Task{App: a, Threads: 2, Profile: true, MaxInsts: maxInsts})
	if err != nil {
		return nil, err
	}
	return out.Profile, nil
}
