package sim

import "sync"

// Memo is the in-memory result cache: task outcomes keyed by their
// content-addressed Task.Key. Because the key covers the fully resolved
// configuration, mutated runs (sensitivity sweeps) memoize just as safely
// as the Table 4 points. The memo is an injected dependency of the
// executors — there is no package-global cache, so tests and parallel
// batches never share state implicitly.
type Memo struct {
	mu sync.Mutex
	m  map[string]*Outcome
}

// NewMemo returns an empty cache.
func NewMemo() *Memo { return &Memo{m: make(map[string]*Outcome)} }

// Do returns the task's outcome, executing it on the calling goroutine if
// it is not cached. Errors are not cached; a failed task re-executes on the
// next Do.
func (mm *Memo) Do(t Task) (*Outcome, error) {
	key, err := t.Key()
	if err != nil {
		return nil, err
	}
	mm.mu.Lock()
	out, ok := mm.m[key]
	mm.mu.Unlock()
	if ok {
		return out, nil
	}
	out, err = t.Execute()
	if err != nil {
		return nil, err
	}
	mm.mu.Lock()
	mm.m[key] = out
	mm.mu.Unlock()
	return out, nil
}

// Len reports the number of cached outcomes.
func (mm *Memo) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}
