package sim

import (
	"fmt"
	"sync"

	"mmt/internal/core"
	"mmt/internal/workloads"
)

// Memo caches simulation results keyed by (app, preset, threads) for the
// unmodified Table 4 configuration. The experiment drivers re-run the same
// Base and MMT-FXR points many times (Fig. 5a/5b/5d/6 share them); memoizing
// those cuts a full mmtbench run roughly in half. Runs with a mutate hook
// are never cached (the hook's effect is not part of the key).
type Memo struct {
	mu sync.Mutex
	m  map[string]*Result
}

// NewMemo returns an empty cache.
func NewMemo() *Memo { return &Memo{m: make(map[string]*Result)} }

// Run is Run with caching for unmutated configurations.
func (mm *Memo) Run(appName string, p Preset, threads int, mutate func(*core.Config)) (*Result, error) {
	if mutate != nil {
		return RunByName(appName, p, threads, mutate)
	}
	key := fmt.Sprintf("%s/%s/%d", appName, p, threads)
	mm.mu.Lock()
	if r, ok := mm.m[key]; ok {
		mm.mu.Unlock()
		return r, nil
	}
	mm.mu.Unlock()
	r, err := RunByName(appName, p, threads, nil)
	if err != nil {
		return nil, err
	}
	mm.mu.Lock()
	mm.m[key] = r
	mm.mu.Unlock()
	return r, nil
}

// Len reports the number of cached results.
func (mm *Memo) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}

// activeMemo, when set by EnableMemo, caches unmutated runs across
// experiment drivers: Fig. 5(a)/(b)/(d), Fig. 6, §6.3 and the scaling
// study share Base/MMT-FXR points, so one mmtbench invocation avoids
// re-simulating them. Benchmarks and tests leave it disabled.
var activeMemo *Memo

// EnableMemo turns on cross-experiment caching of unmutated runs for the
// remainder of the process (used by cmd/mmtbench).
func EnableMemo() { activeMemo = NewMemo() }

// memoRun routes unmutated runs through the active memo, if any.
func memoRun(a workloads.App, p Preset, threads int, mutate func(*core.Config)) (*Result, error) {
	if activeMemo != nil && mutate == nil {
		return activeMemo.Run(a.Name, p, threads, nil)
	}
	return Run(a, p, threads, mutate)
}
