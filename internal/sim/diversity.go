package sim

import (
	"fmt"
	"strings"

	"mmt/internal/asm"
	"mmt/internal/prog"
	"mmt/internal/workloads"
)

// Software-diversity study (paper §7: "different workloads, such as
// software diversity in the security domain, have similar execution but
// different executables, requiring a new, but similar, approach"). Two
// diversified builds of the same program — permuted register allocation
// and a different code layout — run two instances each on a 4-thread MMT.
// Because the binaries share no PCs, the ITID mechanism cannot merge
// across variants, and the measured gain quantifies exactly what the
// paper's future-work item would need to recover.

// permuteRegisters renames general-purpose registers in an assembly source
// (a crude register re-allocator producing a semantically identical but
// differently encoded executable). r0–r4 are preserved: r0/ra/sp are
// special and r4 conventionally holds tid/input pointers.
func permuteRegisters(src string) string {
	// A fixed permutation of r5..r28 (cycle shifted by 7). The scan is a
	// single pass over the input, so replacements are written directly.
	perm := make(map[string]string)
	const lo, hi = 5, 28
	for r := lo; r <= hi; r++ {
		to := lo + (r-lo+7)%(hi-lo+1)
		perm[fmt.Sprintf("r%d", r)] = fmt.Sprintf("r%d", to)
	}
	var b strings.Builder
	i := 0
	for i < len(src) {
		c := src[i]
		if c == ';' { // comments verbatim to end of line
			j := strings.IndexByte(src[i:], '\n')
			if j < 0 {
				b.WriteString(src[i:])
				break
			}
			b.WriteString(src[i : i+j])
			i += j
			continue
		}
		if c == 'r' && (i == 0 || !isWordByte(src[i-1])) {
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			if j > i+1 && (j == len(src) || !isWordByte(src[j])) {
				if to, ok := perm[src[i:j]]; ok {
					b.WriteString(to)
					i = j
					continue
				}
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// DiversityRow compares one application run as four uniform instances
// against two instances each of two diversified builds.
type DiversityRow struct {
	App     string
	Uniform float64 // MMT-FXR speedup, 4 identical binaries
	Diverse float64 // MMT-FXR speedup, 2+2 diversified binaries
}

// DiversityApps is the study's application set.
var DiversityApps = []string{"ammp", "mcf", "equake"}

// diversityTask describes one build/preset point as a custom-build task.
func diversityTask(a workloads.App, kind string, build sysBuilder, p Preset) Task {
	return Task{
		Variant: "diversity:" + a.Name + ":" + kind,
		Preset:  p,
		Threads: 4,
		Build:   build,
	}
}

// ExtensionDiversity runs the software-diversity study.
func ExtensionDiversity(ex Exec) ([]DiversityRow, error) {
	type study struct {
		app    workloads.App
		builds [2]sysBuilder // uniform, diverse
	}
	var studies []study
	var tasks []Task
	for _, name := range DiversityApps {
		a, ok := workloads.ByName(name)
		if !ok {
			return nil, fmt.Errorf("sim: unknown app %q", name)
		}
		s := study{app: a, builds: [2]sysBuilder{buildUniform(a), buildDiverse(a)}}
		studies = append(studies, s)
		for ki, kind := range diversityKinds {
			for _, p := range []Preset{PresetBase, PresetMMTFXR} {
				tasks = append(tasks, diversityTask(a, kind, s.builds[ki], p))
			}
		}
	}
	ex.Schedule(tasks...)

	var rows []DiversityRow
	for _, s := range studies {
		var speedups [2]float64
		for ki, kind := range diversityKinds {
			base, err := ex.Do(diversityTask(s.app, kind, s.builds[ki], PresetBase))
			if err != nil {
				return nil, fmt.Errorf("diversity %s %s: %w", s.app.Name, kind, err)
			}
			fxr, err := ex.Do(diversityTask(s.app, kind, s.builds[ki], PresetMMTFXR))
			if err != nil {
				return nil, fmt.Errorf("diversity %s %s: %w", s.app.Name, kind, err)
			}
			speedups[ki] = Speedup(base.Result, fxr.Result)
		}
		rows = append(rows, DiversityRow{App: s.app.Name, Uniform: speedups[0], Diverse: speedups[1]})
	}
	return rows, nil
}

// diversityKinds labels the two builds; the strings enter the task keys.
var diversityKinds = [2]string{"uniform", "2+2"}

type sysBuilder func() (*prog.System, error)

func buildUniform(a workloads.App) sysBuilder {
	return func() (*prog.System, error) {
		return a.Build(4, false)
	}
}

func buildDiverse(a workloads.App) sysBuilder {
	return func() (*prog.System, error) {
		pa, err := asm.Assemble(a.Name, a.Source)
		if err != nil {
			return nil, err
		}
		pb, err := asm.AssembleAt(a.Name+"-variant", permuteRegisters(a.Source), altCodeBase, altDataBase)
		if err != nil {
			return nil, err
		}
		init := func(ctx int, mem *prog.Memory) {
			if a.Init == nil {
				return
			}
			if ctx < 2 {
				a.Init(pa, ctx, mem, false)
			} else {
				a.Init(pb, ctx-2, mem, false)
			}
		}
		return prog.NewMultiSystem([]*prog.Program{pa, pa, pb, pb}, init)
	}
}

// FormatDiversity renders the study.
func FormatDiversity(rows []DiversityRow) string {
	var b strings.Builder
	header(&b, "Extension (paper §7): software diversity — 4 uniform vs 2+2 diversified builds")
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "app", "uniform", "diversified")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12.3f %12.3f\n", r.App, r.Uniform, r.Diverse)
	}
	return b.String()
}
