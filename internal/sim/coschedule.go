package sim

import (
	"fmt"
	"strings"

	"mmt/internal/asm"
	"mmt/internal/prog"
	"mmt/internal/workloads"
)

// Multi-programmed co-scheduling (paper §4.4: "The scheduler needs to gang
// schedule the threads in pairs or larger groups"): two instances each of
// two different applications share one 4-thread core. The programs occupy
// disjoint text segments, so MMT can only merge within each gang — the
// experiment measures how much of the two-thread benefit survives a mixed
// workload.

// altCodeBase/altDataBase place the second program clear of the first.
const (
	altCodeBase = 0x0008_0000
	altDataBase = 0x0030_0000
)

// CoschedRow is one pair's result.
type CoschedRow struct {
	Pair      string
	Speedup   float64 // MMT-FXR over Base, both co-scheduled
	Merge     float64 // MERGE residency under MMT-FXR
	ExecIdent float64
}

// CoschedulePairs is the mixed-workload set: one high-sharing and one
// low-sharing application per pair.
var CoschedulePairs = [][2]string{
	{"ammp", "twolf"},
	{"equake", "mcf"},
	{"libsvm", "vpr"},
}

// buildCoschedule assembles a at the default bases and b at the alternate
// bases, and builds a 4-context system: contexts 0,1 run a (instances 0,1)
// and contexts 2,3 run b (instances 0,1).
func buildCoschedule(a, b workloads.App) (*prog.System, error) {
	if a.Mode != prog.ModeME || b.Mode != prog.ModeME {
		return nil, fmt.Errorf("sim: co-scheduling is defined for multi-execution apps (got %s/%s)", a.Mode, b.Mode)
	}
	pa, err := asm.Assemble(a.Name, a.Source)
	if err != nil {
		return nil, err
	}
	pb, err := asm.AssembleAt(b.Name, b.Source, altCodeBase, altDataBase)
	if err != nil {
		return nil, err
	}
	init := func(ctx int, mem *prog.Memory) {
		switch {
		case ctx < 2 && a.Init != nil:
			a.Init(pa, ctx, mem, false)
		case ctx >= 2 && b.Init != nil:
			b.Init(pb, ctx-2, mem, false)
		}
	}
	return prog.NewMultiSystem([]*prog.Program{pa, pa, pb, pb}, init)
}

// coschedTask describes one pair/preset point as a custom-build task; the
// Variant string carries the pair identity into the content-addressed key.
func coschedTask(a, b workloads.App, p Preset) Task {
	return Task{
		Variant: "cosched:" + a.Name + "+" + b.Name,
		Preset:  p,
		Threads: 4,
		Build:   func() (*prog.System, error) { return buildCoschedule(a, b) },
	}
}

// ExtensionCoschedule runs the mixed-workload study.
func ExtensionCoschedule(ex Exec) ([]CoschedRow, error) {
	pairs := make([][2]workloads.App, 0, len(CoschedulePairs))
	var tasks []Task
	for _, pair := range CoschedulePairs {
		a, ok := workloads.ByName(pair[0])
		if !ok {
			return nil, fmt.Errorf("sim: unknown app %q", pair[0])
		}
		b, ok := workloads.ByName(pair[1])
		if !ok {
			return nil, fmt.Errorf("sim: unknown app %q", pair[1])
		}
		pairs = append(pairs, [2]workloads.App{a, b})
		tasks = append(tasks, coschedTask(a, b, PresetBase), coschedTask(a, b, PresetMMTFXR))
	}
	ex.Schedule(tasks...)

	var rows []CoschedRow
	for _, pair := range pairs {
		a, b := pair[0], pair[1]
		baseOut, err := ex.Do(coschedTask(a, b, PresetBase))
		if err != nil {
			return nil, err
		}
		fxrOut, err := ex.Do(coschedTask(a, b, PresetMMTFXR))
		if err != nil {
			return nil, err
		}
		base, fxr := baseOut.Result, fxrOut.Result
		m, _, _ := fxr.Stats.FetchModeFractions()
		x, xr, _, _ := fxr.Stats.IdenticalFractions()
		rows = append(rows, CoschedRow{
			Pair:      a.Name + "+" + b.Name,
			Speedup:   Speedup(base, fxr),
			Merge:     m,
			ExecIdent: x + xr,
		})
	}
	return rows, nil
}

// FormatCoschedule renders the mixed-workload study.
func FormatCoschedule(rows []CoschedRow) string {
	var b strings.Builder
	header(&b, "Extension (paper §4.4): gang-scheduled mixed workloads, 4 threads")
	fmt.Fprintf(&b, "%-16s %9s %8s %12s\n", "pair (2+2)", "speedup", "MERGE", "exec-ident")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %9.3f %7.1f%% %11.1f%%\n",
			r.Pair, r.Speedup, 100*r.Merge, 100*r.ExecIdent)
	}
	return b.String()
}
