// Package sim wires the substrates together: it builds the paper's
// configurations (Table 5) around the Table 4 machine, runs workloads on
// the core, attaches the energy model, and implements one driver per
// table/figure of the evaluation (§6), which cmd/mmtbench and the
// benchmark suite reuse.
package sim

import (
	"fmt"
	"math"

	"mmt/internal/cache"
	"mmt/internal/core"
	"mmt/internal/power"
	"mmt/internal/workloads"
)

// Preset names the design points of Table 5.
type Preset string

const (
	// PresetBase is the traditional SMT with a trace cache.
	PresetBase Preset = "Base"
	// PresetMMTF adds shared fetch only (always splitting at decode).
	PresetMMTF Preset = "MMT-F"
	// PresetMMTFX adds shared execution.
	PresetMMTFX Preset = "MMT-FX"
	// PresetMMTFXR adds register merging.
	PresetMMTFXR Preset = "MMT-FXR"
	// PresetLimit is MMT-FXR running instances with identical inputs —
	// the upper bound on attainable sharing.
	PresetLimit Preset = "Limit"
)

// Presets lists the Table 5 configurations in presentation order.
func Presets() []Preset {
	return []Preset{PresetBase, PresetMMTF, PresetMMTFX, PresetMMTFXR, PresetLimit}
}

// Configure returns the core configuration for a preset at the given
// thread count (Table 4 parameters otherwise).
func Configure(p Preset, threads int) (core.Config, error) {
	cfg := core.DefaultConfig(threads)
	switch p {
	case PresetBase:
		cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = false, false, false
	case PresetMMTF:
		cfg.SharedExec, cfg.RegMerge = false, false
	case PresetMMTFX:
		cfg.RegMerge = false
	case PresetMMTFXR, PresetLimit:
		// all mechanisms on
	default:
		return core.Config{}, fmt.Errorf("sim: unknown preset %q", p)
	}
	// Guard against runaway experiments; generously above any workload's
	// real cycle count.
	cfg.MaxCycles = 500_000_000
	return cfg, nil
}

// IdenticalInputs reports whether the preset runs instances with identical
// inputs (the Limit setup).
func (p Preset) IdenticalInputs() bool { return p == PresetLimit }

// Result is one finished simulation.
type Result struct {
	App     string
	Preset  Preset
	Threads int
	Stats   *core.Stats
	Mem     cache.Events
	Energy  power.Breakdown
	// EnergyPerJob is total energy / committed per-thread instructions
	// (the paper's per-job metric).
	EnergyPerJob float64
}

// IPC returns the run's aggregate IPC.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// Run simulates one application under one preset. mutate, when non-nil,
// can adjust the configuration before the run (used by the sensitivity
// studies).
func Run(app workloads.App, p Preset, threads int, mutate func(*core.Config)) (*Result, error) {
	out, err := (Task{App: app, Preset: p, Threads: threads, Mutate: mutate}).Execute()
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RunByName resolves the application by name and runs it.
func RunByName(name string, p Preset, threads int, mutate func(*core.Config)) (*Result, error) {
	app, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("sim: unknown application %q", name)
	}
	return Run(app, p, threads, mutate)
}

// Speedup returns base cycles / this run's cycles. Both runs must perform
// the same work (same app, same thread count).
func Speedup(base, opt *Result) float64 {
	if opt.Stats.Cycles == 0 {
		return 0
	}
	return float64(base.Stats.Cycles) / float64(opt.Stats.Cycles)
}

// Geomean of a slice of positive numbers.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
