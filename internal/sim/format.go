package sim

import (
	"fmt"
	"strings"
)

// Text-table rendering shared by cmd/mmtbench and the experiment log.

func header(b *strings.Builder, title string) {
	b.WriteString(title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(title)))
	b.WriteByte('\n')
}

// FormatFig1 renders the Fig. 1 breakdown.
func FormatFig1(rows []Fig1Row) string {
	var b strings.Builder
	header(&b, "Figure 1: instruction sharing breakdown (2 contexts)")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "app", "exec-ident", "fetch-ident", "not-ident")
	var xs, fs []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %11.1f%% %11.1f%% %11.1f%%\n",
			r.App, 100*r.ExecIdent, 100*r.FetchIdent, 100*r.NotIdent)
		xs = append(xs, r.ExecIdent)
		fs = append(fs, r.ExecIdent+r.FetchIdent)
	}
	fmt.Fprintf(&b, "%-14s %11.1f%% %11.1f%%  (arithmetic means: exec-ident, total fetchable)\n",
		"average", 100*mean(xs), 100*mean(fs))
	return b.String()
}

// FormatFig2 renders the divergence-length histogram.
func FormatFig2(rows []Fig2Row) string {
	var b strings.Builder
	header(&b, "Figure 2: divergent path length difference (cumulative, taken branches)")
	fmt.Fprintf(&b, "%-14s %7s %7s %7s %7s %7s %7s %8s\n",
		"app", "<=16", "<=32", "<=64", "<=128", "<=256", "<=512", "divs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %8d\n",
			r.App, 100*r.Cumulative[0], 100*r.Cumulative[1], 100*r.Cumulative[2],
			100*r.Cumulative[3], 100*r.Cumulative[4], 100*r.Cumulative[5], r.Divergences)
	}
	return b.String()
}

// FormatFig5 renders a speedup table (Fig. 5(a) or 5(c)).
func FormatFig5(rows []SpeedupRow, gm SpeedupRow, threads int) string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Figure 5: speedup over Base SMT, %d threads", threads))
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s\n", "app", "MMT-F", "MMT-FX", "MMT-FXR", "Limit")
	for _, r := range append(rows, gm) {
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f %8.3f\n", r.App, r.F, r.FX, r.FXR, r.Limit)
	}
	return b.String()
}

// FormatFig5b renders the identified-identical breakdown.
func FormatFig5b(rows []Fig5bRow) string {
	var b strings.Builder
	header(&b, "Figure 5(b): identical instructions identified (MMT-FXR)")
	fmt.Fprintf(&b, "%-14s %11s %13s %12s %11s\n", "app", "exec-ident", "exec+regmerge", "fetch-ident", "not-ident")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.1f%% %12.1f%% %11.1f%% %10.1f%%\n",
			r.App, 100*r.ExecIdent, 100*r.ExecIdentRegMerge, 100*r.FetchIdent, 100*r.NotIdent)
	}
	return b.String()
}

// FormatFig5d renders fetch-mode residency.
func FormatFig5d(rows []Fig5dRow) string {
	var b strings.Builder
	header(&b, "Figure 5(d): instruction breakdown by fetch mode (MMT-FXR)")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s\n", "app", "MERGE", "DETECT", "CATCHUP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %7.1f%% %7.1f%% %7.1f%%\n",
			r.App, 100*r.Merge, 100*r.Detect, 100*r.Catchup)
	}
	return b.String()
}

// FormatFig6 renders the energy comparison.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	header(&b, "Figure 6: energy per job, normalized to SMT-2T")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %24s\n",
		"app", "SMT-2T", "MMT-2T", "SMT-4T", "MMT-4T", "MMT-4T cache/ovh/other")
	var ratios []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f %8.3f    %5.1f%% /%5.2f%% /%5.1f%%\n",
			r.App, r.SMT2, r.MMT2, r.SMT4, r.MMT4,
			100*r.CacheFrac, 100*r.OverheadFrac, 100*r.OtherFrac)
		if r.SMT4 > 0 {
			ratios = append(ratios, r.MMT4/r.SMT4)
		}
	}
	fmt.Fprintf(&b, "%-14s MMT-4T/SMT-4T geomean = %.3f\n", "summary", Geomean(ratios))
	return b.String()
}

// FormatFig7a renders the FHB size sweep.
func FormatFig7a(rows []Fig7aRow) string {
	var b strings.Builder
	header(&b, "Figure 7(a): speedup over Base vs FHB size")
	fmt.Fprintf(&b, "%-14s", "app")
	for _, s := range FHBSizes {
		fmt.Fprintf(&b, " %7d", s)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.App)
		for _, s := range r.Speedups {
			fmt.Fprintf(&b, " %7.3f", s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFig7c renders the FHB-size mode residency sweep.
func FormatFig7c(rows []Fig7cRow) string {
	var b strings.Builder
	header(&b, "Figure 7(c): MERGE residency vs FHB size (CATCHUP in parens)")
	fmt.Fprintf(&b, "%-14s", "app")
	for _, s := range FHBSizes {
		fmt.Fprintf(&b, " %15d", s)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.App)
		for i := range FHBSizes {
			fmt.Fprintf(&b, "  %5.1f%% (%4.1f%%)", 100*r.Merge[i], 100*r.Catchup[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatSweep renders a geomean-speedup sweep (Fig. 7(b)/(d)).
func FormatSweep(title string, points []int, speedups []float64) string {
	var b strings.Builder
	header(&b, title)
	for i, p := range points {
		fmt.Fprintf(&b, "%6d: %.3f\n", p, speedups[i])
	}
	return b.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FormatMP renders the message-passing extension study.
func FormatMP(rows []MPRow) string {
	var b strings.Builder
	header(&b, "Extension (paper §7 future work): message-passing workloads")
	fmt.Fprintf(&b, "%-14s %6s %9s %8s %12s\n", "app", "ranks", "speedup", "MERGE", "exec-ident")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6d %9.3f %7.1f%% %11.1f%%\n",
			r.App, r.Ranks, r.Speedup, 100*r.Merge, 100*r.ExecId)
	}
	return b.String()
}

// FormatScaling renders the thread-count sweep.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	header(&b, "Extension: MMT-FXR geomean speedup vs hardware thread count")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d threads: %.3f\n", r.Threads, r.Geomean)
	}
	return b.String()
}
