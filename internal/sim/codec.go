package sim

import (
	"encoding/json"
	"fmt"

	"mmt/internal/core"
	"mmt/internal/workloads"
)

// This file is the canonical JSON codec for the experiment subsystem's two
// wire types. TaskSpec is the declarative, serializable description of a
// Task — everything a remote caller may express, nothing that requires a
// closure — and MarshalOutcome/UnmarshalOutcome are the single encoding of
// a task's product. The persistent result cache, the job server's HTTP
// API, and mmtsim's -out files all go through these functions, so the
// serving layer can never drift from the cache-key schema: a TaskSpec
// resolves to a Task whose Key is the same content-addressed hash the
// cache files embed.

// ConfigOverride is the declarative counterpart of Task.Mutate: the
// configuration knobs a remote submission may adjust. Zero fields leave
// the preset's Table 4/5 value in place. The overrides enter the resolved
// configuration and therefore the task key, exactly like a Mutate closure
// with the same effect.
type ConfigOverride struct {
	// FHBSize overrides the Fetch History Buffer entries (Fig. 7(a) knob).
	FHBSize int `json:"fhb_size,omitempty"`
	// FetchWidth overrides the fetch width (Fig. 7(d) knob).
	FetchWidth int `json:"fetch_width,omitempty"`
	// LSPorts overrides the load/store ports; MSHRs scale with the ports
	// as in Fig. 7(b).
	LSPorts int `json:"ls_ports,omitempty"`
	// MaxInsts bounds per-thread committed instructions — the knob for
	// cheap bounded jobs (load tests, smoke runs). 0 = no bound.
	MaxInsts uint64 `json:"max_insts,omitempty"`
}

// zero reports whether the override changes nothing.
func (o *ConfigOverride) zero() bool {
	return o == nil || *o == ConfigOverride{}
}

// apply folds the overrides into a resolved configuration.
func (o *ConfigOverride) apply(c *core.Config) {
	if o.FHBSize > 0 {
		c.FHBSize = o.FHBSize
	}
	if o.FetchWidth > 0 {
		c.FetchWidth = o.FetchWidth
	}
	if o.LSPorts > 0 {
		c.LSPorts = o.LSPorts
		c.Mem.MSHRs = 4 * o.LSPorts
	}
	if o.MaxInsts > 0 {
		c.MaxInsts = o.MaxInsts
	}
}

// TaskSpec is the JSON-serializable subset of Task: what a job submission
// on the wire may describe. It cannot express Build/Mutate closures or an
// attached trace recorder — those exist only in-process. Resolve with
// Task; the resolved task's Key is the identity the server, the runner,
// and the persistent cache all share.
type TaskSpec struct {
	// App names the workload (workloads.ByName).
	App string `json:"app"`
	// Equ rebinds `.equ` constants in the workload's assembly source
	// (workloads.App.Override) — the knob for scaling iteration counts.
	Equ map[string]int64 `json:"equ,omitempty"`
	// Preset selects the Table 5 design point; empty means MMT-FXR.
	Preset Preset `json:"preset,omitempty"`
	// Threads is the hardware thread count; 0 means 2.
	Threads int `json:"threads,omitempty"`
	// Profile switches to the §3 trace-alignment study; MaxInsts bounds
	// per-context dynamic instructions for it.
	Profile  bool `json:"profile,omitempty"`
	MaxInsts int  `json:"max_insts,omitempty"`
	// Attribution requests a per-PC attribution profile embedded in the
	// outcome (timing tasks only; rejected for Profile tasks).
	Attribution bool `json:"attribution,omitempty"`
	// Config optionally adjusts the resolved configuration.
	Config *ConfigOverride `json:"config,omitempty"`
}

// Task resolves the spec into an executable Task, applying defaults
// (MMT-FXR, 2 threads) and validating the workload and preset eagerly so
// a bad submission fails at admission rather than on a worker.
func (s TaskSpec) Task() (Task, error) {
	app, ok := workloads.ByName(s.App)
	if !ok {
		return Task{}, fmt.Errorf("sim: unknown application %q", s.App)
	}
	if len(s.Equ) > 0 {
		app = app.Override(s.Equ)
	}
	preset := s.Preset
	if preset == "" {
		preset = PresetMMTFXR
	}
	threads := s.Threads
	if threads == 0 {
		threads = 2
	}
	if s.Attribution && s.Profile {
		return Task{}, fmt.Errorf("sim: attribution requires a timing simulation, not a trace-alignment profile")
	}
	t := Task{
		App:         app,
		Preset:      preset,
		Threads:     threads,
		Profile:     s.Profile,
		MaxInsts:    s.MaxInsts,
		Attribution: s.Attribution,
	}
	if ov := s.Config; !ov.zero() {
		o := *ov // copy, so the closure does not alias caller memory
		t.Mutate = o.apply
	}
	if !s.Profile {
		// Validates the preset and the override's interaction with it.
		if _, err := t.ResolvedConfig(); err != nil {
			return Task{}, err
		}
	}
	return t, nil
}

// Name returns the resolved task's display label without building the
// workload (for error paths where Task() already failed).
func (s TaskSpec) Name() string {
	t := Task{App: workloads.App{Name: s.App}, Preset: s.Preset, Threads: s.Threads,
		Profile: s.Profile}
	if t.Preset == "" {
		t.Preset = PresetMMTFXR
	}
	if t.Threads == 0 {
		t.Threads = 2
	}
	return t.Name()
}

// Validate checks the outcome's shape: exactly one of Result or Profile
// is set, a Result carries its statistics, and an attribution profile
// only ever accompanies a Result (and is internally consistent). Both
// codec directions enforce it, so a torn or hand-edited blob is rejected
// instead of decoding into an empty outcome.
func (o *Outcome) Validate() error {
	switch {
	case o == nil:
		return fmt.Errorf("sim: nil outcome")
	case o.Result != nil && o.Profile != nil:
		return fmt.Errorf("sim: outcome has both a result and a profile")
	case o.Result == nil && o.Profile == nil:
		return fmt.Errorf("sim: outcome has neither a result nor a profile")
	case o.Result != nil && o.Result.Stats == nil:
		return fmt.Errorf("sim: result outcome without statistics")
	case o.Attribution != nil && o.Result == nil:
		return fmt.Errorf("sim: attribution profile without a timing result")
	}
	if o.Attribution != nil {
		if err := o.Attribution.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MarshalOutcome renders the canonical JSON encoding of an outcome — the
// one format shared by the persistent result cache, the serving API, and
// -out files.
func MarshalOutcome(o *Outcome) ([]byte, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(o)
}

// UnmarshalOutcome decodes and validates a canonical outcome blob.
func UnmarshalOutcome(b []byte) (*Outcome, error) {
	var o Outcome
	if err := json.Unmarshal(b, &o); err != nil {
		return nil, fmt.Errorf("sim: decoding outcome: %w", err)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &o, nil
}
