package sim

import (
	"bytes"
	"encoding/json"
	"fmt"

	"mmt/internal/core"
	"mmt/internal/workloads"
)

// This file is the canonical JSON codec for the experiment subsystem's two
// wire types. TaskSpec is the declarative, serializable description of a
// Task — everything a remote caller may express, nothing that requires a
// closure — and MarshalOutcome/UnmarshalOutcome are the single encoding of
// a task's product. The persistent result cache, the job server's HTTP
// API, and mmtsim's -out files all go through these functions, so the
// serving layer can never drift from the cache-key schema: a TaskSpec
// resolves to a Task whose Key is the same content-addressed hash the
// cache files embed.

// ConfigOverride is the declarative counterpart of Task.Mutate: the
// configuration knobs a remote submission may adjust. Zero fields leave
// the preset's Table 4/5 value in place. The overrides enter the resolved
// configuration and therefore the task key, exactly like a Mutate closure
// with the same effect.
//
// Specs are user-authored (mmtdse space files, HTTP submissions), so the
// codec fails fast: JSON decoding rejects unknown fields, and Validate
// rejects out-of-range values at decode/resolve time instead of letting a
// typo silently simulate the default machine.
type ConfigOverride struct {
	// FHBSize overrides the Fetch History Buffer entries (Fig. 7(a) knob).
	FHBSize int `json:"fhb_size,omitempty"`
	// FetchWidth overrides the fetch width (Fig. 7(d) knob).
	FetchWidth int `json:"fetch_width,omitempty"`
	// LSPorts overrides the load/store ports; MSHRs scale with the ports
	// as in Fig. 7(b).
	LSPorts int `json:"ls_ports,omitempty"`
	// MaxInsts bounds per-thread committed instructions — the knob for
	// cheap bounded jobs (load tests, smoke runs). 0 = no bound.
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// LVIPSize overrides the Load-Value-Identical-Predictor table entries
	// (Table 4: 4096; the core rounds up to a power of two).
	LVIPSize int `json:"lvip_size,omitempty"`
	// Queue depths: fetch queue, issue queue, reorder buffer, load/store
	// queue (Table 4: 32/64/256/64).
	FetchQueue int `json:"fetch_queue,omitempty"`
	IQSize     int `json:"iq_size,omitempty"`
	ROBSize    int `json:"rob_size,omitempty"`
	LSQSize    int `json:"lsq_size,omitempty"`
	// RegMergePorts bounds register-merge value comparisons per cycle.
	RegMergePorts int `json:"reg_merge_ports,omitempty"`
	// SyncPolicy selects the remerge/RST-driven synchronization policy:
	// "fhb" (the paper's mechanism), "hints" (Thread Fusion baseline) or
	// "none". Empty keeps the preset's policy.
	SyncPolicy string `json:"sync_policy,omitempty"`
	// L1KB resizes both L1 caches and L2KB the shared L2 (kilobytes,
	// power of two; Table 4: 64 and 4096). Ways and line size keep their
	// Table 4 values.
	L1KB int `json:"l1_kb,omitempty"`
	L2KB int `json:"l2_kb,omitempty"`
}

// zero reports whether the override changes nothing.
func (o *ConfigOverride) zero() bool {
	return o == nil || *o == ConfigOverride{}
}

// overrideRange bounds one integer knob: 0 always means "keep the preset
// value"; a non-zero setting must land in [lo, hi].
type overrideRange struct {
	name    string
	v       int
	lo, hi  int
	pow2    bool
	applied string // extra requirement text for the error
}

// Validate rejects out-of-range knob values. It is called on every JSON
// decode and on TaskSpec resolution, so a bad override fails at admission
// (or space-spec load) time with a message naming the field, never
// silently and never on a worker.
func (o *ConfigOverride) Validate() error {
	if o == nil {
		return nil
	}
	for _, r := range []overrideRange{
		{name: "fhb_size", v: o.FHBSize, lo: 1, hi: 1024},
		{name: "fetch_width", v: o.FetchWidth, lo: 1, hi: 64},
		{name: "ls_ports", v: o.LSPorts, lo: 1, hi: 16},
		{name: "lvip_size", v: o.LVIPSize, lo: 1, hi: 1 << 20},
		{name: "fetch_queue", v: o.FetchQueue, lo: 1, hi: 4096},
		{name: "iq_size", v: o.IQSize, lo: 1, hi: 4096},
		{name: "rob_size", v: o.ROBSize, lo: 1, hi: 16384},
		{name: "lsq_size", v: o.LSQSize, lo: 1, hi: 4096},
		{name: "reg_merge_ports", v: o.RegMergePorts, lo: 1, hi: 16},
		{name: "l1_kb", v: o.L1KB, lo: 1, hi: 4096, pow2: true},
		{name: "l2_kb", v: o.L2KB, lo: 64, hi: 1 << 20, pow2: true},
	} {
		if r.v == 0 {
			continue
		}
		if r.v < r.lo || r.v > r.hi {
			return fmt.Errorf("sim: config override %s = %d outside %d–%d", r.name, r.v, r.lo, r.hi)
		}
		if r.pow2 && r.v&(r.v-1) != 0 {
			return fmt.Errorf("sim: config override %s = %d is not a power of two", r.name, r.v)
		}
	}
	if o.SyncPolicy != "" {
		if _, err := core.ParseSyncPolicy(o.SyncPolicy); err != nil {
			return fmt.Errorf("sim: config override sync_policy: %w", err)
		}
	}
	return nil
}

// UnmarshalJSON decodes an override strictly: unknown fields and
// out-of-range values are decode-time errors. Space specs and job
// submissions are user-authored, so a misspelled knob must not be
// silently dropped (the simulation would quietly measure the wrong
// machine).
func (o *ConfigOverride) UnmarshalJSON(b []byte) error {
	type plain ConfigOverride // no methods: avoids recursing into this decoder
	var p plain
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return fmt.Errorf("sim: config override: %w", err)
	}
	*o = ConfigOverride(p)
	return o.Validate()
}

// apply folds the overrides into a resolved configuration. The override
// must have passed Validate; apply itself never fails.
func (o *ConfigOverride) apply(c *core.Config) {
	if o.FHBSize > 0 {
		c.FHBSize = o.FHBSize
	}
	if o.FetchWidth > 0 {
		c.FetchWidth = o.FetchWidth
	}
	if o.LSPorts > 0 {
		c.LSPorts = o.LSPorts
		c.Mem.MSHRs = 4 * o.LSPorts
	}
	if o.MaxInsts > 0 {
		c.MaxInsts = o.MaxInsts
	}
	if o.LVIPSize > 0 {
		c.LVIPSize = o.LVIPSize
	}
	if o.FetchQueue > 0 {
		c.FetchQueue = o.FetchQueue
	}
	if o.IQSize > 0 {
		c.IQSize = o.IQSize
	}
	if o.ROBSize > 0 {
		c.ROBSize = o.ROBSize
	}
	if o.LSQSize > 0 {
		c.LSQSize = o.LSQSize
	}
	if o.RegMergePorts > 0 {
		c.RegMergePorts = o.RegMergePorts
	}
	if o.SyncPolicy != "" {
		if p, err := core.ParseSyncPolicy(o.SyncPolicy); err == nil {
			c.Sync = p
		}
	}
	if o.L1KB > 0 {
		c.Mem.L1I.SizeBytes = o.L1KB << 10
		c.Mem.L1D.SizeBytes = o.L1KB << 10
	}
	if o.L2KB > 0 {
		c.Mem.L2.SizeBytes = o.L2KB << 10
	}
}

// TaskSpec is the JSON-serializable subset of Task: what a job submission
// on the wire may describe. It cannot express Build/Mutate closures or an
// attached trace recorder — those exist only in-process. Resolve with
// Task; the resolved task's Key is the identity the server, the runner,
// and the persistent cache all share.
type TaskSpec struct {
	// App names the workload (workloads.ByName).
	App string `json:"app"`
	// Equ rebinds `.equ` constants in the workload's assembly source
	// (workloads.App.Override) — the knob for scaling iteration counts.
	Equ map[string]int64 `json:"equ,omitempty"`
	// Preset selects the Table 5 design point; empty means MMT-FXR.
	Preset Preset `json:"preset,omitempty"`
	// Threads is the hardware thread count; 0 means 2.
	Threads int `json:"threads,omitempty"`
	// Profile switches to the §3 trace-alignment study; MaxInsts bounds
	// per-context dynamic instructions for it.
	Profile  bool `json:"profile,omitempty"`
	MaxInsts int  `json:"max_insts,omitempty"`
	// Attribution requests a per-PC attribution profile embedded in the
	// outcome (timing tasks only; rejected for Profile tasks).
	Attribution bool `json:"attribution,omitempty"`
	// Config optionally adjusts the resolved configuration.
	Config *ConfigOverride `json:"config,omitempty"`
}

// Task resolves the spec into an executable Task, applying defaults
// (MMT-FXR, 2 threads) and validating the workload and preset eagerly so
// a bad submission fails at admission rather than on a worker.
func (s TaskSpec) Task() (Task, error) {
	app, ok := workloads.ByName(s.App)
	if !ok {
		return Task{}, fmt.Errorf("sim: unknown application %q", s.App)
	}
	if len(s.Equ) > 0 {
		app = app.Override(s.Equ)
	}
	preset := s.Preset
	if preset == "" {
		preset = PresetMMTFXR
	}
	threads := s.Threads
	if threads == 0 {
		threads = 2
	}
	if s.Attribution && s.Profile {
		return Task{}, fmt.Errorf("sim: attribution requires a timing simulation, not a trace-alignment profile")
	}
	t := Task{
		App:         app,
		Preset:      preset,
		Threads:     threads,
		Profile:     s.Profile,
		MaxInsts:    s.MaxInsts,
		Attribution: s.Attribution,
	}
	if ov := s.Config; !ov.zero() {
		// Validate here too: specs built in-process never pass through the
		// strict JSON decoder.
		if err := ov.Validate(); err != nil {
			return Task{}, err
		}
		o := *ov // copy, so the closure does not alias caller memory
		t.Mutate = o.apply
	}
	if !s.Profile {
		// Validates the preset and the override's interaction with it.
		if _, err := t.ResolvedConfig(); err != nil {
			return Task{}, err
		}
	}
	return t, nil
}

// Name returns the resolved task's display label without building the
// workload (for error paths where Task() already failed).
func (s TaskSpec) Name() string {
	t := Task{App: workloads.App{Name: s.App}, Preset: s.Preset, Threads: s.Threads,
		Profile: s.Profile}
	if t.Preset == "" {
		t.Preset = PresetMMTFXR
	}
	if t.Threads == 0 {
		t.Threads = 2
	}
	return t.Name()
}

// Validate checks the outcome's shape: exactly one of Result or Profile
// is set, a Result carries its statistics, and an attribution profile
// only ever accompanies a Result (and is internally consistent). Both
// codec directions enforce it, so a torn or hand-edited blob is rejected
// instead of decoding into an empty outcome.
func (o *Outcome) Validate() error {
	switch {
	case o == nil:
		return fmt.Errorf("sim: nil outcome")
	case o.Result != nil && o.Profile != nil:
		return fmt.Errorf("sim: outcome has both a result and a profile")
	case o.Result == nil && o.Profile == nil:
		return fmt.Errorf("sim: outcome has neither a result nor a profile")
	case o.Result != nil && o.Result.Stats == nil:
		return fmt.Errorf("sim: result outcome without statistics")
	case o.Attribution != nil && o.Result == nil:
		return fmt.Errorf("sim: attribution profile without a timing result")
	}
	if o.Attribution != nil {
		if err := o.Attribution.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MarshalOutcome renders the canonical JSON encoding of an outcome — the
// one format shared by the persistent result cache, the serving API, and
// -out files.
func MarshalOutcome(o *Outcome) ([]byte, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(o)
}

// UnmarshalOutcome decodes and validates a canonical outcome blob.
func UnmarshalOutcome(b []byte) (*Outcome, error) {
	var o Outcome
	if err := json.Unmarshal(b, &o); err != nil {
		return nil, fmt.Errorf("sim: decoding outcome: %w", err)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &o, nil
}
