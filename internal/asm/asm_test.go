package asm

import (
	"math/rand"
	"strings"
	"testing"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; sum the integers 1..10 into r5
        .equ  N, 10
start:  li    r5, 0
        li    r6, N
loop:   add   r5, r5, r6
        addi  r6, r6, -1
        bnez  r6, loop
        halt
`
	p, err := Assemble("sum", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != prog.CodeBase {
		t.Errorf("entry = %#x", p.Entry)
	}
	if len(p.Insts) != 6 {
		t.Fatalf("got %d instructions", len(p.Insts))
	}
	if _, ok := p.Symbol("loop"); !ok {
		t.Error("label loop not in symbol table")
	}
	sys, err := prog.NewSystem(p, prog.ModeME, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFunctional(1000); err != nil {
		t.Fatal(err)
	}
	if got := sys.Contexts[0].State.Reg[5]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestAssembleDataSection(t *testing.T) {
	src := `
        li    r4, vec
        ld    r5, 0(r4)
        ld    r6, 8(r4)
        add   r7, r5, r6
        li    r4, pi
        ld    r8, 0(r4)
        halt
        .data
vec:    .word 40, 2, vec
pi:     .double 3.5
buf:    .space 64
end:
`
	p, err := Assemble("data", src)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := p.Symbol("vec")
	if vec != prog.DataBase {
		t.Errorf("vec = %#x", vec)
	}
	if got := p.Data.Read64(vec + 16); got != vec {
		t.Errorf("vec[2] = %#x, want label value %#x", got, vec)
	}
	bufSym, _ := p.Symbol("buf")
	endSym, _ := p.Symbol("end")
	if endSym-bufSym != 64 {
		t.Errorf(".space sized %d", endSym-bufSym)
	}
	sys, err := prog.NewSystem(p, prog.ModeME, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	st := sys.Contexts[0].State
	if st.Reg[7] != 42 {
		t.Errorf("r7 = %d", st.Reg[7])
	}
	if f := st.Reg[8]; f != p.Data.Read64(prog.DataBase+24) {
		t.Errorf("double load mismatch")
	}
}

func TestAssemblePseudoInstructions(t *testing.T) {
	src := `
        li    r5, 7
        mv    r6, r5
        not   r7, r0
        neg   r8, r5
        li    r9, 0x123456789a   ; needs lui+ori
        j     over
        halt
over:   call  fn
        li    r20, 1
        halt
fn:     li    r10, 99
        ret
`
	p, err := Assemble("pseudo", src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := prog.NewSystem(p, prog.ModeME, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	st := sys.Contexts[0].State
	if st.Reg[6] != 7 {
		t.Errorf("mv: r6 = %d", st.Reg[6])
	}
	if st.Reg[7] != ^uint64(0) {
		t.Errorf("not: r7 = %#x", st.Reg[7])
	}
	if int64(st.Reg[8]) != -7 {
		t.Errorf("neg: r8 = %d", int64(st.Reg[8]))
	}
	if st.Reg[9] != 0x123456789a {
		t.Errorf("big li: r9 = %#x", st.Reg[9])
	}
	if st.Reg[10] != 99 || st.Reg[20] != 1 {
		t.Errorf("call/ret: r10=%d r20=%d", st.Reg[10], st.Reg[20])
	}
}

func TestAssembleBranchPseudos(t *testing.T) {
	src := `
        li   r5, 3
        li   r6, 5
        bgt  r6, r5, a      ; 5 > 3: taken
        halt
a:      ble  r5, r6, b      ; 3 <= 5: taken
        halt
b:      li   r10, 1
        halt
`
	p := MustAssemble("br", src)
	sys, _ := prog.NewSystem(p, prog.ModeME, 1, nil)
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	if sys.Contexts[0].State.Reg[10] != 1 {
		t.Error("branch pseudos took wrong path")
	}
}

func TestAssembleEntryDirective(t *testing.T) {
	src := `
        .entry main
helper: halt
main:   li r5, 1
        halt
`
	p := MustAssemble("entry", src)
	main, _ := p.Symbol("main")
	if p.Entry != main {
		t.Errorf("entry = %#x, want %#x", p.Entry, main)
	}
}

func TestAssembleExpressions(t *testing.T) {
	src := `
        .equ  A, 6
        .equ  B, A*7
        li    r5, B
        li    r6, (A+2)*4
        li    r7, 1<<10
        li    r8, 0xff
        li    r9, -A
        li    r10, 100/7
        li    r11, 100%7
        halt
        .data
        .org  0x300000
tab:    .word A, B
`
	p := MustAssemble("expr", src)
	sys, _ := prog.NewSystem(p, prog.ModeME, 1, nil)
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	st := sys.Contexts[0].State
	checks := map[int]int64{5: 42, 6: 32, 7: 1024, 8: 255, 9: -6, 10: 14, 11: 2}
	for r, want := range checks {
		if int64(st.Reg[r]) != want {
			t.Errorf("r%d = %d, want %d", r, int64(st.Reg[r]), want)
		}
	}
	if tab, _ := p.Symbol("tab"); tab != 0x300000 {
		t.Errorf(".org: tab = %#x", tab)
	}
	if got := p.Data.Read64(0x300008); got != 42 {
		t.Errorf("tab[1] = %d", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown-inst", "frob r1, r2", "unknown instruction"},
		{"bad-register", "add r1, r2, r99", "bad register"},
		{"undefined-symbol", "li r1, nowhere", "undefined symbol"},
		{"dup-label", "a: nop\na: nop", "redefined"},
		{"inst-in-data", ".data\nadd r1, r2, r3", "data section"},
		{"word-in-text", ".word 4", "outside data"},
		{"org-in-text", ".org 0x5000", "only supported in the data section"},
		{"wrong-arity", "add r1, r2", "wants 3 operands"},
		{"bad-directive", ".bogus 1", "unknown directive"},
		{"trailing-junk", "li r1, 2 3", "trailing junk"},
		{"div-zero", "li r1, 4/0", "division by zero"},
		{"neg-space", ".data\n.space -8", "negative size"},
		{"bad-entry", ".entry 42", ".entry wants a label"},
		{"missing-entry", ".entry nope\nnop", "undefined"},
		{"bad-float", ".data\n.double 1.2.3", "bad float"},
		{"unclosed-paren", "li r1, (2+3", "missing ')'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.name, c.src)
			if err == nil {
				t.Fatalf("assembled successfully, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("x", "nop\nnop\nfrob r1\n")
	asmErr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if asmErr.Line != 3 {
		t.Errorf("line = %d, want 3", asmErr.Line)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble on bad source did not panic")
		}
	}()
	MustAssemble("bad", "frob")
}

func TestMemOperandForms(t *testing.T) {
	src := `
        li   r2, 0x2000
        li   r5, 77
        st   r5, 8(r2)
        ld   r6, 8(r2)
        st   r5, (r2)
        ld   r7, (r2)
        st   r5, 0x3000
        ld   r8, 0x3000
        halt
`
	p := MustAssemble("mem", src)
	sys, _ := prog.NewSystem(p, prog.ModeME, 1, nil)
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	st := sys.Contexts[0].State
	for _, r := range []int{6, 7, 8} {
		if st.Reg[r] != 77 {
			t.Errorf("r%d = %d, want 77", r, st.Reg[r])
		}
	}
}

func TestTidInstruction(t *testing.T) {
	p := MustAssemble("tid", "tid r5\nhalt\n")
	sys, _ := prog.NewSystem(p, prog.ModeMT, 3, nil)
	if err := sys.RunFunctional(10); err != nil {
		t.Fatal(err)
	}
	for i, c := range sys.Contexts {
		if c.State.Reg[5] != uint64(i) {
			t.Errorf("ctx %d: tid = %d", i, c.State.Reg[5])
		}
	}
}

// TestAllInstructionsAssemble round-trips every hardware mnemonic through
// the assembler at least once.
func TestAllInstructionsAssemble(t *testing.T) {
	src := `
        add r1, r2, r3
        sub r1, r2, r3
        mul r1, r2, r3
        div r1, r2, r3
        rem r1, r2, r3
        and r1, r2, r3
        or  r1, r2, r3
        xor r1, r2, r3
        sll r1, r2, r3
        srl r1, r2, r3
        sra r1, r2, r3
        slt r1, r2, r3
        sltu r1, r2, r3
        addi r1, r2, 5
        andi r1, r2, 5
        ori r1, r2, 5
        xori r1, r2, 5
        slli r1, r2, 5
        srli r1, r2, 5
        srai r1, r2, 5
        slti r1, r2, 5
        lui r1, 5
        fadd r1, r2, r3
        fsub r1, r2, r3
        fmul r1, r2, r3
        fdiv r1, r2, r3
        fsqrt r1, r2
        fneg r1, r2
        fabs r1, r2
        fmin r1, r2, r3
        fmax r1, r2, r3
        fcvt r1, r2
        fcvti r1, r2
        flt r1, r2, r3
        fle r1, r2, r3
        feq r1, r2, r3
        ld  r1, 8(r2)
        st  r1, 8(r2)
tgt:    beq r1, r2, tgt
        bne r1, r2, tgt
        blt r1, r2, tgt
        bge r1, r2, tgt
        bltu r1, r2, tgt
        bgeu r1, r2, tgt
        jal r1, tgt
        jalr r1, 0(r2)
        nop
        tid r1
        halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[isa.Op]bool{}
	for _, in := range p.Insts {
		seen[in.Op] = true
	}
	if len(seen) != isa.NumOps {
		t.Errorf("covered %d ops, want %d", len(seen), isa.NumOps)
	}
}

func TestAssembleAtRelocation(t *testing.T) {
	src := `
start:  li    r5, vec
        ld    r6, 0(r5)
loop:   addi  r6, r6, -1
        bnez  r6, loop
        halt
        .data
vec:    .word 3
`
	p, err := AssembleAt("reloc", src, 0x80000, 0x300000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x80000 || p.Entry != 0x80000 {
		t.Errorf("base/entry = %#x/%#x", p.Base, p.Entry)
	}
	if v, _ := p.Symbol("vec"); v != 0x300000 {
		t.Errorf("vec = %#x", v)
	}
	if l, _ := p.Symbol("loop"); l != 0x80000+2*4 {
		t.Errorf("loop = %#x", l)
	}
	// Branch targets are absolute in the relocated range.
	sys, err := prog.NewMultiSystem([]*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	if sys.Contexts[0].State.Reg[6] != 0 {
		t.Errorf("r6 = %d", sys.Contexts[0].State.Reg[6])
	}
}

// TestInstStringAssembles is the printer/parser round trip: every valid
// instruction's assembler rendering must re-assemble to the same
// instruction. (Branch/jump targets print as absolute addresses, which the
// assembler accepts as plain numbers.)
func TestInstStringAssembles(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for n := 0; n < 3000; n++ {
		in := isa.Inst{
			Op:  isa.Op(1 + r.Intn(isa.NumOps)),
			Rd:  uint8(r.Intn(isa.NumRegs)),
			Rs1: uint8(r.Intn(isa.NumRegs)),
			Rs2: uint8(r.Intn(isa.NumRegs)),
		}
		// Immediates: keep them in ranges the printer renders exactly.
		switch in.Op.Class() {
		case isa.ClassBranch, isa.ClassJump:
			in.Imm = int64(r.Intn(1 << 20))
		default:
			in.Imm = int64(r.Intn(1<<16)) - 1<<15
		}
		// Normalize fields the instruction doesn't use, as the printer
		// omits them and the parser zeroes them.
		srcs, ns := in.Sources()
		switch ns {
		case 0:
			in.Rs1, in.Rs2 = 0, 0
		case 1:
			if srcs[0] == in.Rs1 {
				in.Rs2 = 0
			}
		}
		if !in.Op.HasDest() {
			in.Rd = 0
		}
		switch in.Op {
		case isa.OpNop, isa.OpHalt:
			in.Imm = 0
		case isa.OpTid:
			in.Rs1, in.Rs2, in.Imm = 0, 0, 0
		case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
			isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSll, isa.OpSrl, isa.OpSra,
			isa.OpSlt, isa.OpSltu, isa.OpFadd, isa.OpFsub, isa.OpFmul,
			isa.OpFdiv, isa.OpFmin, isa.OpFmax, isa.OpFlt, isa.OpFle, isa.OpFeq:
			in.Imm = 0
		case isa.OpFsqrt, isa.OpFneg, isa.OpFabs, isa.OpFcvt, isa.OpFcvti:
			in.Imm = 0
			in.Rs2 = 0
		case isa.OpLui:
			in.Rs1, in.Rs2 = 0, 0
		case isa.OpLd:
			in.Rs2 = 0
		case isa.OpJal:
			in.Rs1, in.Rs2 = 0, 0
		case isa.OpJalr:
			in.Rs2 = 0
		case isa.OpSt:
			in.Rd = 0
		}
		text := in.String()
		p, err := Assemble("rt", text+"\n")
		if err != nil {
			t.Fatalf("%q did not assemble: %v", text, err)
		}
		if len(p.Insts) != 1 {
			t.Fatalf("%q assembled to %d instructions", text, len(p.Insts))
		}
		if p.Insts[0] != in {
			t.Fatalf("round trip: %q -> %+v, want %+v", text, p.Insts[0], in)
		}
	}
}
