package asm

import (
	"strings"

	"mmt/internal/isa"
)

// Pseudo-instruction mnemonics accepted in addition to the hardware ops.
//
//	li   rd, expr       load (possibly 64-bit) immediate
//	la   rd, label      load address (same as li)
//	mv   rd, rs         addi rd, rs, 0
//	not  rd, rs         xori rd, rs, -1
//	neg  rd, rs         sub  rd, r0, rs
//	j    target         jal  r0, target
//	call target         jal  ra, target
//	ret                 jalr r0, 0(ra)
//	beqz rs, target     beq  rs, r0, target
//	bnez rs, target     bne  rs, r0, target
//	bgt  a, b, target   blt  b, a, target
//	ble  a, b, target   bge  b, a, target

// liFits reports whether v encodes in the signed 36-bit immediate field.
func liFits(v int64) bool {
	const bound = int64(1) << 35
	return v >= -bound && v < bound
}

// instLen returns how many hardware instructions the (possibly pseudo)
// mnemonic expands to. Pass 1 uses it for layout, so it may only depend on
// operand *values* that are already resolvable; symbolic li operands are
// assumed to be addresses, which always fit in one instruction.
func (a *assembler) instLen(line int, mnem string, ops []string) (int, error) {
	switch mnem {
	case "li", "la":
		if len(ops) != 2 {
			return 0, errf(line, "%s wants rd, value", mnem)
		}
		if v, err := a.eval(line, ops[1]); err == nil && !liFits(v) {
			return 2, nil // lui + ori
		}
		return 1, nil
	default:
		if _, isPseudo := pseudoArity[mnem]; isPseudo {
			return 1, nil
		}
		if _, ok := isa.OpByName(mnem); !ok {
			return 0, errf(line, "unknown instruction %q", mnem)
		}
		return 1, nil
	}
}

var pseudoArity = map[string]int{
	"li": 2, "la": 2, "mv": 2, "not": 2, "neg": 2,
	"j": 1, "call": 1, "ret": 0,
	"beqz": 2, "bnez": 2, "bgt": 3, "ble": 3,
}

func (a *assembler) reg(line int, s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n := 0
		for _, c := range s[1:] {
			if c < '0' || c > '9' {
				return 0, errf(line, "bad register %q", s)
			}
			n = n*10 + int(c-'0')
		}
		if n < isa.NumRegs {
			return uint8(n), nil
		}
	}
	return 0, errf(line, "bad register %q", s)
}

// memOperand parses "disp(reg)" or "(reg)" or "disp" (base r0).
func (a *assembler) memOperand(line int, s string) (base uint8, disp int64, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		d, err := a.eval(line, s)
		return isa.RegZero, d, err
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, errf(line, "bad memory operand %q", s)
	}
	base, err = a.reg(line, s[open+1:len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr == "" {
		return base, 0, nil
	}
	disp, err = a.eval(line, dispStr)
	return base, disp, err
}

func (a *assembler) encodeInst(it item) ([]isa.Inst, error) {
	line, mnem, ops := it.line, it.mnem, it.ops

	need := func(n int) error {
		if len(ops) != n {
			return errf(line, "%s wants %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch mnem {
	case "li", "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(line, ops[1])
		if err != nil {
			return nil, err
		}
		if liFits(v) {
			return []isa.Inst{{Op: isa.OpAddi, Rd: rd, Rs1: isa.RegZero, Imm: v}}, nil
		}
		return []isa.Inst{
			{Op: isa.OpLui, Rd: rd, Imm: v >> 32},
			{Op: isa.OpOri, Rd: rd, Rs1: rd, Imm: v & 0xffffffff},
		}, nil
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpAddi, Rd: rd, Rs1: rs}}, nil
	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpXori, Rd: rd, Rs1: rs, Imm: -1}}, nil
	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpSub, Rd: rd, Rs1: isa.RegZero, Rs2: rs}}, nil
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.eval(line, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJal, Rd: isa.RegZero, Imm: tgt}}, nil
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		tgt, err := a.eval(line, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJal, Rd: isa.RegRA, Imm: tgt}}, nil
	case "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA}}, nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		tgt, err := a.eval(line, ops[1])
		if err != nil {
			return nil, err
		}
		op := isa.OpBeq
		if mnem == "bnez" {
			op = isa.OpBne
		}
		return []isa.Inst{{Op: op, Rs1: rs, Rs2: isa.RegZero, Imm: tgt}}, nil
	case "bgt", "ble":
		if err := need(3); err != nil {
			return nil, err
		}
		ra, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rb, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		tgt, err := a.eval(line, ops[2])
		if err != nil {
			return nil, err
		}
		op := isa.OpBlt
		if mnem == "ble" {
			op = isa.OpBge
		}
		return []isa.Inst{{Op: op, Rs1: rb, Rs2: ra, Imm: tgt}}, nil
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		return nil, errf(line, "unknown instruction %q", mnem)
	}

	switch op.Class() {
	case isa.ClassLoad: // ld rd, disp(base)
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		base, disp, err := a.memOperand(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: base, Imm: disp}}, nil
	case isa.ClassStore: // st rs2, disp(base)
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		base, disp, err := a.memOperand(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rs1: base, Rs2: rs2, Imm: disp}}, nil
	case isa.ClassBranch: // beq rs1, rs2, target
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(line, ops[1])
		if err != nil {
			return nil, err
		}
		tgt, err := a.eval(line, ops[2])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rs1: rs1, Rs2: rs2, Imm: tgt}}, nil
	case isa.ClassJump:
		if op == isa.OpJal { // jal rd, target
			if err := need(2); err != nil {
				return nil, err
			}
			rd, err := a.reg(line, ops[0])
			if err != nil {
				return nil, err
			}
			tgt, err := a.eval(line, ops[1])
			if err != nil {
				return nil, err
			}
			return []isa.Inst{{Op: op, Rd: rd, Imm: tgt}}, nil
		}
		// jalr rd, disp(base)
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		base, disp, err := a.memOperand(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd, Rs1: base, Imm: disp}}, nil
	}

	switch op {
	case isa.OpNop, isa.OpHalt:
		if err := need(0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op}}, nil
	case isa.OpTid:
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd}}, nil
	case isa.OpLui:
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := a.reg(line, ops[0])
		if err != nil {
			return nil, err
		}
		v, err := a.eval(line, ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: op, Rd: rd, Imm: v}}, nil
	}

	// Generic register/immediate forms: rd, rs1[, rs2|imm] or rd, rs1.
	inst := isa.Inst{Op: op}
	hasRs2 := false
	hasImm := false
	switch op {
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpSlli, isa.OpSrli, isa.OpSrai, isa.OpSlti:
		hasImm = true
	case isa.OpFsqrt, isa.OpFneg, isa.OpFabs, isa.OpFcvt, isa.OpFcvti:
		// rd, rs1 only
	default:
		hasRs2 = true
	}
	wantOps := 2
	if hasRs2 || hasImm {
		wantOps = 3
	}
	if err := need(wantOps); err != nil {
		return nil, err
	}
	rd, err := a.reg(line, ops[0])
	if err != nil {
		return nil, err
	}
	rs1, err := a.reg(line, ops[1])
	if err != nil {
		return nil, err
	}
	inst.Rd, inst.Rs1 = rd, rs1
	if hasRs2 {
		rs2, err := a.reg(line, ops[2])
		if err != nil {
			return nil, err
		}
		inst.Rs2 = rs2
	}
	if hasImm {
		v, err := a.eval(line, ops[2])
		if err != nil {
			return nil, err
		}
		inst.Imm = v
	}
	return []isa.Inst{inst}, nil
}
