// Package asm implements a two-pass assembler for the simulator's textual
// assembly language. Workloads (internal/workloads), examples and tests are
// written in this language.
//
// Syntax overview:
//
//	; comment           # comment
//	        .equ  N, 64          ; named constant
//	        .text                ; switch to text section (default)
//	start:  li    r5, N*8        ; labels, pseudo-instructions, expressions
//	loop:   addi  r5, r5, -1
//	        bne   r5, r0, loop
//	        halt
//	        .data
//	vec:    .word 1, 2, vec      ; 64-bit words (labels allowed)
//	        .double 3.5, -0.25   ; float64 constants
//	buf:    .space 256           ; zeroed bytes
//	        .org  0x200000       ; move the data location counter
//
// Registers are written r0–r31 or by alias (zero, ra, sp). Memory operands
// use displacement syntax: "ld r5, 16(r2)". Branch and jump targets are
// labels or expressions evaluating to absolute instruction addresses.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

// Error is a source-located assembly error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

var regAliases = map[string]uint8{
	"zero": isa.RegZero,
	"ra":   isa.RegRA,
	"sp":   isa.RegSP,
}

type section int

const (
	secText section = iota
	secData
)

// item is one parsed source statement scheduled for pass 2.
type item struct {
	line    int
	sec     section
	addr    uint64
	mnem    string   // instruction mnemonic ("" for data items)
	ops     []string // operand strings
	words   []string // .word expressions
	doubles []float64
	space   uint64
	size    uint64 // bytes this item occupies
}

// Assembler assembles one source file into a Program.
type assembler struct {
	name     string
	syms     map[string]uint64
	items    []item
	codeBase uint64
	textPos  uint64
	dataPos  uint64
	entry    string // entry label from .entry, or ""
}

// Assemble assembles src into a loaded Program named name at the default
// text and data bases.
func Assemble(name, src string) (*prog.Program, error) {
	return AssembleAt(name, src, prog.CodeBase, prog.DataBase)
}

// AssembleAt assembles src with the given segment bases. Distinct bases
// let several programs coexist in one simulated machine (multi-program
// co-scheduling): branch targets are absolute, so placement happens at
// assembly time.
func AssembleAt(name, src string, codeBase, dataBase uint64) (*prog.Program, error) {
	a := &assembler{
		name:     name,
		syms:     make(map[string]uint64),
		codeBase: codeBase,
		textPos:  codeBase,
		dataPos:  dataBase,
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

// MustAssemble is Assemble but panics on error; for known-good embedded
// sources (workloads, tests).
func MustAssemble(name, src string) *prog.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func splitComment(line string) string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		return line[:i]
	}
	return line
}

func (a *assembler) define(lineNo int, name string, val uint64) error {
	if _, dup := a.syms[name]; dup {
		return errf(lineNo, "symbol %q redefined", name)
	}
	a.syms[name] = val
	return nil
}

// pass1 parses, lays out addresses, and records symbols.
func (a *assembler) pass1(src string) error {
	sec := secText
	for lineNo, raw := range strings.Split(src, "\n") {
		lineNo++ // 1-based
		line := strings.TrimSpace(splitComment(raw))
		// Peel off leading labels.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				break
			}
			pos := a.textPos
			if sec == secData {
				pos = a.dataPos
			}
			if err := a.define(lineNo, label, pos); err != nil {
				return err
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnem := strings.ToLower(strings.TrimSpace(fields[0]))
		rest := ""
		if len(fields) == 2 {
			rest = strings.TrimSpace(fields[1])
		}

		if strings.HasPrefix(mnem, ".") {
			if err := a.directive(lineNo, &sec, mnem, rest); err != nil {
				return err
			}
			continue
		}

		// Instruction (possibly pseudo). Determine its size in pass 1.
		if sec != secText {
			return errf(lineNo, "instruction %q in data section", mnem)
		}
		ops := splitOperands(rest)
		n, err := a.instLen(lineNo, mnem, ops)
		if err != nil {
			return err
		}
		a.items = append(a.items, item{
			line: lineNo, sec: secText, addr: a.textPos,
			mnem: mnem, ops: ops, size: uint64(n) * isa.InstBytes,
		})
		a.textPos += uint64(n) * isa.InstBytes
	}
	return nil
}

func (a *assembler) directive(lineNo int, sec *section, mnem, rest string) error {
	switch mnem {
	case ".text":
		*sec = secText
	case ".data":
		*sec = secData
	case ".entry":
		a.entry = strings.TrimSpace(rest)
		if !isIdent(a.entry) {
			return errf(lineNo, ".entry wants a label, got %q", rest)
		}
	case ".equ":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return errf(lineNo, ".equ wants name, value")
		}
		if !isIdent(parts[0]) {
			return errf(lineNo, ".equ name %q invalid", parts[0])
		}
		v, err := a.eval(lineNo, parts[1])
		if err != nil {
			return err
		}
		if err := a.define(lineNo, parts[0], uint64(v)); err != nil {
			return err
		}
	case ".org":
		v, err := a.eval(lineNo, rest)
		if err != nil {
			return err
		}
		if *sec == secText {
			return errf(lineNo, ".org is only supported in the data section (text must stay contiguous)")
		}
		a.dataPos = uint64(v)
	case ".word":
		if *sec != secData {
			return errf(lineNo, ".word outside data section")
		}
		exprs := splitOperands(rest)
		if len(exprs) == 0 {
			return errf(lineNo, ".word wants at least one value")
		}
		a.items = append(a.items, item{
			line: lineNo, sec: secData, addr: a.dataPos,
			words: exprs, size: uint64(len(exprs)) * 8,
		})
		a.dataPos += uint64(len(exprs)) * 8
	case ".double":
		if *sec != secData {
			return errf(lineNo, ".double outside data section")
		}
		var vals []float64
		for _, s := range splitOperands(rest) {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return errf(lineNo, ".double: bad float %q", s)
			}
			vals = append(vals, f)
		}
		if len(vals) == 0 {
			return errf(lineNo, ".double wants at least one value")
		}
		a.items = append(a.items, item{
			line: lineNo, sec: secData, addr: a.dataPos,
			doubles: vals, size: uint64(len(vals)) * 8,
		})
		a.dataPos += uint64(len(vals)) * 8
	case ".space":
		if *sec != secData {
			return errf(lineNo, ".space outside data section")
		}
		v, err := a.eval(lineNo, rest)
		if err != nil {
			return err
		}
		if v < 0 {
			return errf(lineNo, ".space: negative size")
		}
		a.items = append(a.items, item{
			line: lineNo, sec: secData, addr: a.dataPos, space: uint64(v), size: uint64(v),
		})
		a.dataPos += uint64(v)
	default:
		return errf(lineNo, "unknown directive %q", mnem)
	}
	return nil
}

// pass2 encodes instructions and materializes data.
func (a *assembler) pass2() (*prog.Program, error) {
	p := &prog.Program{
		Name:    a.name,
		Base:    a.codeBase,
		Entry:   a.codeBase,
		Data:    prog.NewMemory(),
		Symbols: a.syms,
	}
	if a.entry != "" {
		addr, ok := a.syms[a.entry]
		if !ok {
			return nil, fmt.Errorf("asm: .entry label %q undefined", a.entry)
		}
		p.Entry = addr
	}
	for _, it := range a.items {
		switch {
		case it.mnem != "":
			insts, err := a.encodeInst(it)
			if err != nil {
				return nil, err
			}
			want := (it.addr - p.Base) / isa.InstBytes
			if uint64(len(p.Insts)) != want {
				return nil, errf(it.line, "internal: text layout mismatch")
			}
			p.Insts = append(p.Insts, insts...)
		case it.words != nil:
			for k, expr := range it.words {
				v, err := a.eval(it.line, expr)
				if err != nil {
					return nil, err
				}
				p.Data.Write64(it.addr+uint64(k)*8, uint64(v))
			}
		case it.doubles != nil:
			for k, f := range it.doubles {
				p.Data.Write64(it.addr+uint64(k)*8, math.Float64bits(f))
			}
		case it.space > 0:
			// Zero by construction; touch the first word so the
			// footprint reflects reserved space.
			p.Data.Write64(it.addr, 0)
		}
	}
	return p, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}
