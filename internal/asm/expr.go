package asm

import (
	"strconv"
	"strings"
)

// eval evaluates a constant expression: integers (decimal, 0x hex, 0b
// binary), symbols (labels and .equ constants), unary minus, binary
// + - * / % << >>, and parentheses. Precedence (high to low):
// unary -, then * / % << >>, then + -.
func (a *assembler) eval(line int, s string) (int64, error) {
	p := &exprParser{a: a, line: line, src: s}
	v, err := p.parseSum()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, errf(line, "trailing junk in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	a    *assembler
	line int
	src  string
	pos  int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *exprParser) parseSum() (int64, error) {
	v, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			w, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v += w
		case '-':
			p.pos++
			w, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v -= w
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseTerm() (int64, error) {
	v, err := p.parseFactor()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch {
		case p.peek() == '*':
			p.pos++
			w, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			v *= w
		case p.peek() == '/':
			p.pos++
			w, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, errf(p.line, "division by zero in expression")
			}
			v /= w
		case p.peek() == '%':
			p.pos++
			w, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			if w == 0 {
				return 0, errf(p.line, "modulo by zero in expression")
			}
			v %= w
		case strings.HasPrefix(p.src[p.pos:], "<<"):
			p.pos += 2
			w, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			v <<= uint64(w) & 63
		case strings.HasPrefix(p.src[p.pos:], ">>"):
			p.pos += 2
			w, err := p.parseFactor()
			if err != nil {
				return 0, err
			}
			v >>= uint64(w) & 63
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseFactor() (int64, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '-':
		p.pos++
		v, err := p.parseFactor()
		return -v, err
	case c == '(':
		p.pos++
		v, err := p.parseSum()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, errf(p.line, "missing ')' in expression %q", p.src)
		}
		p.pos++
		return v, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && isNumChar(p.src[p.pos]) {
			p.pos++
		}
		lit := p.src[start:p.pos]
		v, err := strconv.ParseInt(lit, 0, 64)
		if err != nil {
			// Try unsigned for full-range hex constants.
			u, uerr := strconv.ParseUint(lit, 0, 64)
			if uerr != nil {
				return 0, errf(p.line, "bad number %q", lit)
			}
			return int64(u), nil
		}
		return v, nil
	case c == '_' || c == '.' || (c|0x20) >= 'a' && (c|0x20) <= 'z':
		start := p.pos
		for p.pos < len(p.src) && isIdentChar(p.src[p.pos]) {
			p.pos++
		}
		name := p.src[start:p.pos]
		v, ok := p.a.syms[name]
		if !ok {
			return 0, errf(p.line, "undefined symbol %q", name)
		}
		return int64(v), nil
	default:
		return 0, errf(p.line, "unexpected %q in expression %q", string(c), p.src)
	}
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || (c|0x20) >= 'a' && (c|0x20) <= 'f' || c == 'x' || c == 'X' || c == 'b' || c == 'B'
}

func isIdentChar(c byte) bool {
	return c >= '0' && c <= '9' || (c|0x20) >= 'a' && (c|0x20) <= 'z' || c == '_' || c == '.'
}
