package doctor

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
)

// Write lays the bundle out on disk under dir:
//
//	MANIFEST.json            sweep metadata: nodes reached, errors, version
//	cluster.json             the router's /v1/cluster snapshot (when routed)
//	triage.txt, triage.json  the distilled report
//	nodes/<service>/
//	    flight.json          the node's flight ring (mmtdoctor -from-dump renders it)
//	    metrics.json         the node's in-process metrics time series
//	    profiles.json        continuous-profiler capture index
//	    cpu-merged.json      merged top-frames report over recent CPU captures
//	    cpu.pprof            newest raw CPU capture (feed to `go tool pprof`)
//	    config.json          the node's resolved flags
//	traces/<id>.json         each stitched slow trace's spans
//
// Everything is plain JSON (plus raw pprof bytes), so a bundle stays
// diffable and greppable years later.
func (b *Bundle) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeJSONFile(filepath.Join(dir, "MANIFEST.json"), b); err != nil {
		return err
	}
	if b.Cluster != nil {
		if err := writeJSONFile(filepath.Join(dir, "cluster.json"), b.Cluster); err != nil {
			return err
		}
	}
	used := make(map[string]bool)
	for _, n := range b.Nodes {
		nd := filepath.Join(dir, "nodes", nodeDirName(n, used))
		if err := os.MkdirAll(nd, 0o755); err != nil {
			return err
		}
		parts := []struct {
			name string
			v    any
		}{
			{"flight.json", n.Flight},
			{"metrics.json", n.Metrics},
			{"profiles.json", n.Profiles},
			{"cpu-merged.json", n.CPUMerged},
			{"config.json", n.Config},
		}
		for _, p := range parts {
			if isNil(p.v) {
				continue
			}
			if err := writeJSONFile(filepath.Join(nd, p.name), p.v); err != nil {
				return err
			}
		}
		if len(n.CPURaw) > 0 {
			if err := os.WriteFile(filepath.Join(nd, "cpu.pprof"), n.CPURaw, 0o644); err != nil {
				return err
			}
		}
	}
	if len(b.Traces) > 0 {
		td := filepath.Join(dir, "traces")
		if err := os.MkdirAll(td, 0o755); err != nil {
			return err
		}
		for _, tr := range b.Traces {
			if err := writeJSONFile(filepath.Join(td, sanitize(tr.ID)+".json"), tr); err != nil {
				return err
			}
		}
	}
	if b.Triage != nil {
		if err := writeJSONFile(filepath.Join(dir, "triage.json"), b.Triage); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, "triage.txt"))
		if err != nil {
			return err
		}
		b.Triage.WriteReport(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// nodeDirName names one node's directory after its service label,
// uniquified when two nodes report the same one.
func nodeDirName(n *NodeDiag, used map[string]bool) string {
	name := sanitize(n.Service)
	if name == "" {
		name = sanitize(n.Base)
	}
	if name == "" {
		name = "node"
	}
	for i := 2; used[name]; i++ {
		name = fmt.Sprintf("%s-%d", sanitize(n.Service), i)
	}
	used[name] = true
	return name
}

// sanitize flattens a service label or trace id into one path element.
func sanitize(s string) string {
	return strings.NewReplacer(":", "_", "/", "_", "\\", "_", "..", "_").Replace(s)
}

func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// isNil reports whether v is nil, including a typed-nil pointer boxed in
// an interface (e.g. (*flight.Dump)(nil)).
func isNil(v any) bool {
	if v == nil {
		return true
	}
	if raw, ok := v.(json.RawMessage); ok {
		return len(raw) == 0
	}
	rv := reflect.ValueOf(v)
	return rv.Kind() == reflect.Pointer && rv.IsNil()
}
