package doctor

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/obs/flight"
	"mmt/internal/obs/history"
	"mmt/internal/obs/profiled"
	"mmt/internal/obs/span"
	"mmt/internal/serve"
)

// fakeNode serves one synthetic debug surface: a real flight ring plus
// hand-rolled history, profile, config and span endpoints.
func fakeNode(t *testing.T, service string, withPanic bool) *httptest.Server {
	t.Helper()
	fl := flight.New(service, 32)
	fl.Mark("process start")
	fl.Admit("job-1", "queued", "t-slow")
	fl.Complete("job-1", "t-slow", 50*time.Millisecond, "")
	if withPanic {
		fl.Panic("task", "sha256:abc", "t-crash", "boom")
	}

	// The first sample predates any job, so the lazily-created latency
	// metric is absent from it — triage must still see the pair.
	base := time.Now().Add(-10 * time.Second).UnixNano()
	hist := history.Response{Service: service, EveryMS: 1000, Samples: []history.Sample{
		{UNS: base, Values: map[string]float64{
			"mmt_serve_jobs_completed_total": 0}},
		{UNS: base + 1e9, Values: map[string]float64{
			"mmt_serve_jobs_completed_total":    10,
			"mmt_serve_job_latency_seconds_sum": 0.01, "mmt_serve_job_latency_seconds_count": 10}},
		{UNS: base + 2e9, Values: map[string]float64{
			"mmt_serve_jobs_completed_total":    200,
			"mmt_serve_job_latency_seconds_sum": 1.01, "mmt_serve_job_latency_seconds_count": 20}},
	}}

	mux := http.NewServeMux()
	mux.Handle("GET /v1/debug/flight", fl)
	mux.HandleFunc("GET /v1/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(hist) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/debug/profiles", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		switch {
		case q.Get("id") != "":
			w.Write([]byte("pprof-bytes")) //nolint:errcheck
		case q.Get("merge") == "cpu":
			json.NewEncoder(w).Encode(profiled.TopReport{ //nolint:errcheck
				Kind: "cpu", Unit: "nanoseconds", Captures: 2, Total: 100,
				Frames: []profiled.Frame{{Function: "mmt/internal/sim.run", Flat: 80, Cum: 90}},
			})
		default:
			json.NewEncoder(w).Encode(profiled.IndexResponse{ //nolint:errcheck
				Service: service, EveryMS: 1000,
				Captures: []profiled.Capture{{ID: 1, Kind: "cpu", Size: 11}, {ID: 2, Kind: "heap"}},
			})
		}
	})
	mux.HandleFunc("GET /v1/debug/config", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"service": service}) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/spans", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("trace") == "t-slow" {
			json.NewEncoder(w).Encode(span.SpansResponse{Service: service, Spans: []span.Record{ //nolint:errcheck
				{TraceID: "t-slow", SpanID: "s1", Name: "router.submit", Service: service,
					StartUNS: base, DurNS: 50e6},
				{TraceID: "t-slow", SpanID: "s2", ParentID: "s1", Name: "serve.run", Service: service,
					StartUNS: base + 1e6, DurNS: 45e6},
			}})
			return
		}
		json.NewEncoder(w).Encode(span.TracesResponse{Service: service, Traces: []span.TraceSummary{ //nolint:errcheck
			{TraceID: "t-slow", Root: "router.submit", Spans: 2, StartUNS: base, DurMS: 50},
		}})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// withCluster wraps a fake node with a /v1/cluster that reports the given
// backends, making it look like a router.
func withCluster(t *testing.T, inner http.Handler, nodes ...string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, _ *http.Request) {
		cs := cluster.ClusterStats{}
		for i, u := range nodes {
			cs.Nodes = append(cs.Nodes, cluster.NodeStatus{
				Node:  cluster.Node{Name: "node" + string(rune('A'+i)), URL: u},
				State: "healthy",
			})
		}
		json.NewEncoder(w).Encode(cs) //nolint:errcheck
	})
	mux.Handle("/", inner)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestCollectAndWriteBundle(t *testing.T) {
	node := fakeNode(t, "mmtserved@127.0.0.1:1", true)
	extra := fakeNode(t, "mmtcached@127.0.0.1:2", false)
	routerInner := fakeNode(t, "mmtrouter@127.0.0.1:3", false)
	router := withCluster(t, routerInner.Config.Handler, node.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	b, err := Collect(ctx, Options{
		Server:  router.URL,
		Sources: []string{extra.URL, "http://127.0.0.1:1/nothing-here"},
		Version: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(b.Nodes))
	}
	if b.Cluster == nil || len(b.Cluster.Nodes) != 1 {
		t.Errorf("cluster snapshot missing: %+v", b.Cluster)
	}
	if len(b.Unreachable) != 1 {
		t.Errorf("unreachable = %v, want the bogus source", b.Unreachable)
	}
	if len(b.Traces) == 0 || b.Traces[0].ID != "t-slow" {
		t.Fatalf("traces = %+v, want t-slow stitched", b.Traces)
	}
	// The same trace served by several rings dedups in the stitcher.
	if b.Traces[0].Spans != 2 {
		t.Errorf("stitched spans = %d, want 2 after dedup", b.Traces[0].Spans)
	}

	tr := b.Triage
	if tr.SlowestTrace != "t-slow" {
		t.Errorf("slowest trace = %q", tr.SlowestTrace)
	}
	if len(tr.Panics) != 1 || tr.Panics[0].Err != "boom" || tr.Panics[0].Trace != "t-crash" {
		t.Errorf("panics = %+v", tr.Panics)
	}
	var regressed bool
	for _, l := range tr.Latency {
		if l.Metric == "mmt_serve_job_latency_seconds" && l.Regressed {
			regressed = true
		}
	}
	if !regressed {
		t.Errorf("job latency regression not flagged: %+v", tr.Latency)
	}
	var hot bool
	for _, f := range tr.HotFrames {
		if f.Function == "mmt/internal/sim.run" {
			hot = true
		}
	}
	if !hot {
		t.Errorf("hot frames = %+v", tr.HotFrames)
	}

	dir := filepath.Join(t.TempDir(), "bundle")
	if err := b.Write(dir); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		"MANIFEST.json", "cluster.json", "triage.txt", "triage.json",
		"nodes/mmtserved@127.0.0.1_1/flight.json",
		"nodes/mmtserved@127.0.0.1_1/metrics.json",
		"nodes/mmtserved@127.0.0.1_1/cpu-merged.json",
		"nodes/mmtserved@127.0.0.1_1/cpu.pprof",
		"nodes/mmtserved@127.0.0.1_1/config.json",
		"nodes/mmtcached@127.0.0.1_2/flight.json",
		"traces/t-slow.json",
	} {
		if _, err := os.Stat(filepath.Join(dir, p)); err != nil {
			t.Errorf("bundle missing %s: %v", p, err)
		}
	}
	txt, err := os.ReadFile(filepath.Join(dir, "triage.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"slowest trace: t-slow", "PANICS", "mmt/internal/sim.run", "latency regressions"} {
		if !strings.Contains(string(txt), want) {
			t.Errorf("triage.txt missing %q:\n%s", want, txt)
		}
	}
	// The bundled flight dump stays renderable by -from-dump.
	d, err := flight.ReadDump(filepath.Join(dir, "nodes/mmtserved@127.0.0.1_1/flight.json"))
	if err != nil {
		t.Fatalf("bundled flight.json not a readable dump: %v", err)
	}
	if len(d.Panics()) != 1 {
		t.Errorf("bundled dump panics = %d", len(d.Panics()))
	}
}

func TestCollectNoNodes(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := Collect(ctx, Options{Server: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("collect against nothing succeeded")
	}
}

func TestCheckStats(t *testing.T) {
	st := serve.Stats{JobP99MS: 1500, QueueDepth: 10, Completed: 90, Failed: 10}
	th := Thresholds{MaxJobP99: time.Second, MaxQueue: 5, MaxFailedRate: 0.05}
	vs := CheckStats("n1", st, th)
	if len(vs) != 3 {
		t.Fatalf("violations = %+v, want 3", vs)
	}
	for _, v := range vs {
		if v.Node != "n1" || !strings.Contains(v.String(), "exceeds") {
			t.Errorf("violation = %+v", v)
		}
	}
	if vs := CheckStats("n1", st, Thresholds{}); len(vs) != 0 {
		t.Errorf("zero thresholds still fired: %+v", vs)
	}
	if !th.Enabled() || (Thresholds{}).Enabled() {
		t.Error("Enabled() wrong")
	}
}

func TestProbe(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(cluster.ClusterStats{ //nolint:errcheck
			Fleet: serve.Stats{QueueDepth: 3},
			Nodes: []cluster.NodeStatus{
				{Node: cluster.Node{Name: "a"}, State: "healthy", Stats: serve.Stats{JobP99MS: 5000}},
				{Node: cluster.Node{Name: "b"}, State: "down"},
			},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	vs, err := Probe(context.Background(), Options{Server: srv.URL},
		Thresholds{MaxJobP99: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var p99, down bool
	for _, v := range vs {
		if v.Node == "a" && v.Check == "job p99" {
			p99 = true
		}
		if v.Node == "b" && v.Check == "state" {
			down = true
		}
	}
	if !p99 || !down {
		t.Errorf("violations = %+v", vs)
	}

	// A single node without /v1/cluster answers via /v1/stats.
	single := http.NewServeMux()
	single.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(serve.Stats{QueueDepth: 100}) //nolint:errcheck
	})
	ssrv := httptest.NewServer(single)
	defer ssrv.Close()
	vs, err = Probe(context.Background(), Options{Server: ssrv.URL}, Thresholds{MaxQueue: 10})
	if err != nil || len(vs) != 1 || vs[0].Check != "queue depth" {
		t.Errorf("single-node probe = %+v, %v", vs, err)
	}
}
