// Package doctor is the fleet diagnostics engine behind mmtdoctor: it
// discovers every process in an mmt fleet, pulls each one's flight ring,
// span ring, metrics history, continuous-profiler captures and resolved
// configuration into a single reproducible bundle, and distills a triage
// report — which metrics moved, which traces were slowest and where their
// time went, what was hot on-CPU, and whether any process recorded a
// panic. The collector is read-only: it only issues GETs against the
// debug surface every daemon already serves.
package doctor

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/obs/flight"
	"mmt/internal/obs/history"
	"mmt/internal/obs/profiled"
	"mmt/internal/obs/span"
)

// BundleSchema versions the on-disk bundle manifest.
const BundleSchema = 1

// Options configures one collection sweep.
type Options struct {
	// Server is the entry point: a router (its /v1/cluster expands to the
	// whole fleet) or a single mmtserved.
	Server string
	// Sources are extra base URLs to collect from (e.g. an mmtcached,
	// which no /v1/cluster reports).
	Sources []string
	// Client is the HTTP client (nil = a default client; the caller's
	// context bounds the sweep).
	Client *http.Client
	// SlowTraces is how many of the slowest recent traces to stitch into
	// the bundle (<= 0 means 3).
	SlowTraces int
	// TopFrames bounds each merged profile report (<= 0 means 10).
	TopFrames int
	// ProfileLast merges only the newest N CPU captures (<= 0 means 4).
	ProfileLast int
	// Version labels the manifest with the collecting tool's version.
	Version string
	// Progress, when non-nil, receives one line per endpoint and warning.
	Progress io.Writer
}

func (o *Options) defaults() {
	if o.SlowTraces <= 0 {
		o.SlowTraces = 3
	}
	if o.TopFrames <= 0 {
		o.TopFrames = 10
	}
	if o.ProfileLast <= 0 {
		o.ProfileLast = 4
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Progress == nil {
		o.Progress = io.Discard
	}
}

// NodeDiag is everything collected from one process.
type NodeDiag struct {
	Base    string `json:"base"`
	Service string `json:"service"` // the process's own label, e.g. "mmtserved@127.0.0.1:8377"

	Flight    *flight.Dump            `json:"-"` // written as nodes/<node>/flight.json
	Metrics   *history.Response       `json:"-"` // nodes/<node>/metrics.json
	Profiles  *profiled.IndexResponse `json:"-"` // nodes/<node>/profiles.json
	CPUMerged *profiled.TopReport     `json:"-"` // nodes/<node>/cpu-merged.json
	CPURaw    []byte                  `json:"-"` // nodes/<node>/cpu.pprof (newest capture)
	Config    json.RawMessage         `json:"-"` // nodes/<node>/config.json

	// Errors lists per-endpoint fetch failures; a node with no flight
	// ring at all is dropped instead.
	Errors []string `json:"errors,omitempty"`
}

// TraceDiag is one stitched slow trace.
type TraceDiag struct {
	ID      string        `json:"id"`
	Root    string        `json:"root"`
	DurMS   float64       `json:"dur_ms"`
	Spans   int           `json:"spans"`
	Procs   int           `json:"procs"`
	Records []span.Record `json:"records"`
}

// Bundle is one collection sweep's result, held in memory until Write.
type Bundle struct {
	Schema   int    `json:"schema"`
	Version  string `json:"version,omitempty"`
	Server   string `json:"server"`
	TakenUNS int64  `json:"taken_uns"`

	Cluster *cluster.ClusterStats `json:"-"` // cluster.json, when the server is a router
	Nodes   []*NodeDiag           `json:"nodes"`
	Traces  []TraceDiag           `json:"-"` // traces/<id>.json
	Triage  *Triage               `json:"-"` // triage.json + triage.txt

	// Unreachable lists endpoints that answered nothing at all.
	Unreachable []string `json:"unreachable,omitempty"`
}

// Collect sweeps the fleet once. It degrades rather than fails: a node
// missing one endpoint records the error and keeps the rest; only a sweep
// that reaches no flight ring at all errors out.
func Collect(ctx context.Context, opts Options) (*Bundle, error) {
	opts.defaults()
	b := &Bundle{Schema: BundleSchema, Version: opts.Version, Server: opts.Server,
		TakenUNS: time.Now().UnixNano()}

	eps := discover(ctx, &opts, b)
	for _, ep := range eps {
		n := collectNode(ctx, &opts, ep)
		if n == nil {
			b.Unreachable = append(b.Unreachable, ep)
			fmt.Fprintf(opts.Progress, "doctor: %s: unreachable (no flight ring), skipping\n", ep)
			continue
		}
		fmt.Fprintf(opts.Progress, "doctor: collected %s (%s)\n", n.Service, n.Base)
		b.Nodes = append(b.Nodes, n)
	}
	if len(b.Nodes) == 0 {
		return nil, fmt.Errorf("doctor: no node reachable (tried %s)", strings.Join(eps, ", "))
	}

	collectTraces(ctx, &opts, b, eps)
	b.Triage = triage(b, opts.TopFrames)
	return b, nil
}

// discover expands -server via its /v1/cluster (when it is a router) and
// appends the extra sources; order is stable and duplicates collapse. A
// successful cluster fetch also lands in the bundle.
func discover(ctx context.Context, opts *Options, b *Bundle) []string {
	seen := make(map[string]bool)
	var eps []string
	add := func(base string) {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if base == "" || seen[base] {
			return
		}
		seen[base] = true
		eps = append(eps, base)
	}
	add(opts.Server)
	if cs, err := cluster.FetchClusterStats(ctx, opts.Client, opts.Server); err == nil {
		b.Cluster = &cs
		for _, n := range cs.Nodes {
			add(n.Node.URL)
		}
	} else {
		fmt.Fprintf(opts.Progress, "doctor: no cluster behind %s (%v); treating it as a single node\n",
			opts.Server, err)
	}
	for _, s := range opts.Sources {
		add(s)
	}
	return eps
}

// collectNode pulls one process's whole debug surface. The flight ring is
// the liveness probe: without it the node is reported unreachable.
func collectNode(ctx context.Context, opts *Options, base string) *NodeDiag {
	d, err := flight.FetchDump(ctx, opts.Client, base)
	if err != nil {
		return nil
	}
	n := &NodeDiag{Base: base, Service: d.Service, Flight: &d}
	record := func(what string, err error) {
		n.Errors = append(n.Errors, what+": "+err.Error())
		fmt.Fprintf(opts.Progress, "doctor: %s: %s: %v\n", base, what, err)
	}

	var hist history.Response
	if err := fetchJSON(ctx, opts.Client, base+"/v1/debug/metrics", &hist); err != nil {
		record("metrics history", err)
	} else {
		n.Metrics = &hist
	}

	var idx profiled.IndexResponse
	if err := fetchJSON(ctx, opts.Client, base+"/v1/debug/profiles", &idx); err != nil {
		record("profile index", err)
	} else {
		n.Profiles = &idx
		cpu := 0
		newest := 0
		for _, c := range idx.Captures {
			if c.Kind == "cpu" {
				cpu++
				newest = c.ID
			}
		}
		if cpu > 0 {
			var rep profiled.TopReport
			url := fmt.Sprintf("%s/v1/debug/profiles?merge=cpu&last=%d&top=%d",
				base, opts.ProfileLast, opts.TopFrames)
			if err := fetchJSON(ctx, opts.Client, url, &rep); err != nil {
				record("cpu merge", err)
			} else {
				n.CPUMerged = &rep
			}
			raw, err := fetchBytes(ctx, opts.Client, fmt.Sprintf("%s/v1/debug/profiles?id=%d", base, newest))
			if err != nil {
				record("cpu capture", err)
			} else {
				n.CPURaw = raw
			}
		}
	}

	var cfg json.RawMessage
	if err := fetchJSON(ctx, opts.Client, base+"/v1/debug/config", &cfg); err != nil {
		record("config", err)
	} else {
		n.Config = cfg
	}
	return n
}

// fleetTrace is one trace's summaries merged across processes.
type fleetTrace struct {
	id        string
	root      string
	rootStart int64
	spans     int
	procs     int
	start     int64
	end       int64
}

// collectTraces merges every process's recent-trace summaries, ranks them
// by fleet-wide duration, and stitches the slowest into the bundle.
func collectTraces(ctx context.Context, opts *Options, b *Bundle, eps []string) {
	merged := make(map[string]*fleetTrace)
	for _, ep := range eps {
		tr, err := span.FetchTraces(ctx, opts.Client, ep, 100)
		if err != nil {
			continue
		}
		for _, s := range tr.Traces {
			m := merged[s.TraceID]
			if m == nil {
				m = &fleetTrace{id: s.TraceID, start: s.StartUNS}
				merged[s.TraceID] = m
			}
			m.spans += s.Spans
			m.procs++
			if s.StartUNS < m.start {
				m.start = s.StartUNS
			}
			if end := s.StartUNS + int64(s.DurMS*1e6); end > m.end {
				m.end = end
			}
			if m.root == "" || s.StartUNS < m.rootStart {
				m.root, m.rootStart = s.Root, s.StartUNS
			}
		}
	}
	list := make([]*fleetTrace, 0, len(merged))
	for _, m := range merged { // mmtvet:ok — sorted below
		list = append(list, m)
	}
	sort.Slice(list, func(i, j int) bool {
		if di, dj := list[i].end-list[i].start, list[j].end-list[j].start; di != dj {
			return di > dj
		}
		return list[i].id < list[j].id
	})
	if len(list) > opts.SlowTraces {
		list = list[:opts.SlowTraces]
	}
	for _, m := range list {
		var records []span.Record
		for _, ep := range eps {
			sr, err := span.FetchSpans(ctx, opts.Client, ep, m.id)
			if err != nil {
				continue
			}
			records = append(records, sr.Spans...)
		}
		tree := span.Stitch(records)
		if tree.Count == 0 {
			continue
		}
		start, end := tree.Window()
		b.Traces = append(b.Traces, TraceDiag{
			ID:      m.id,
			Root:    m.root,
			DurMS:   float64(end-start) / 1e6,
			Spans:   tree.Count,
			Procs:   len(tree.Services),
			Records: records,
		})
	}
}

func fetchJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	raw, err := fetchBytes(ctx, hc, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

func fetchBytes(ctx context.Context, hc *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}
