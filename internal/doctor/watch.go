package doctor

import (
	"context"
	"fmt"
	"time"

	"mmt/internal/cluster"
	"mmt/internal/serve"
)

// Thresholds are the -watch health gates. Zero values disable a check.
type Thresholds struct {
	// MaxJobP99 bounds any node's job latency p99.
	MaxJobP99 time.Duration
	// MaxQueue bounds any node's admitted-and-waiting queue depth.
	MaxQueue int
	// MaxFailedRate bounds failed/(completed+failed) fleet-wide, 0..1.
	MaxFailedRate float64
}

// Enabled reports whether any check is configured.
func (th Thresholds) Enabled() bool {
	return th.MaxJobP99 > 0 || th.MaxQueue > 0 || th.MaxFailedRate > 0
}

// Violation is one threshold breach.
type Violation struct {
	Node  string `json:"node"` // "" for fleet-wide checks
	Check string `json:"check"`
	Got   string `json:"got"`
	Limit string `json:"limit"`
}

func (v Violation) String() string {
	where := v.Node
	if where == "" {
		where = "fleet"
	}
	return fmt.Sprintf("%s: %s = %s exceeds %s", where, v.Check, v.Got, v.Limit)
}

// CheckStats evaluates the thresholds against one node's serving stats.
func CheckStats(node string, st serve.Stats, th Thresholds) []Violation {
	var out []Violation
	if th.MaxJobP99 > 0 && st.JobP99MS > float64(th.MaxJobP99.Milliseconds()) {
		out = append(out, Violation{Node: node, Check: "job p99",
			Got: fmt.Sprintf("%.1fms", st.JobP99MS), Limit: th.MaxJobP99.String()})
	}
	if th.MaxQueue > 0 && st.QueueDepth > th.MaxQueue {
		out = append(out, Violation{Node: node, Check: "queue depth",
			Got: fmt.Sprint(st.QueueDepth), Limit: fmt.Sprint(th.MaxQueue)})
	}
	if th.MaxFailedRate > 0 {
		if done := st.Completed + st.Failed; done > 0 {
			if rate := float64(st.Failed) / float64(done); rate > th.MaxFailedRate {
				out = append(out, Violation{Node: node, Check: "failure rate",
					Got: fmt.Sprintf("%.3f", rate), Limit: fmt.Sprintf("%.3f", th.MaxFailedRate)})
			}
		}
	}
	return out
}

// Probe fetches the entry point's health once and evaluates the
// thresholds: per node when the server is a router, else on the single
// node's own stats.
func Probe(ctx context.Context, opts Options, th Thresholds) ([]Violation, error) {
	opts.defaults()
	if cs, err := cluster.FetchClusterStats(ctx, opts.Client, opts.Server); err == nil {
		var out []Violation
		out = append(out, CheckStats("", cs.Fleet, th)...)
		for _, n := range cs.Nodes {
			out = append(out, CheckStats(n.Node.Name, n.Stats, th)...)
			if n.State == "down" {
				out = append(out, Violation{Node: n.Node.Name, Check: "state", Got: n.State, Limit: "healthy"})
			}
		}
		return out, nil
	}
	var st serve.Stats
	if err := fetchJSON(ctx, opts.Client, opts.Server+"/v1/stats", &st); err != nil {
		return nil, fmt.Errorf("doctor: %s serves neither /v1/cluster nor /v1/stats: %w", opts.Server, err)
	}
	return CheckStats(opts.Server, st, th), nil
}
