package doctor

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// LatencyShift is one histogram/timer pair's early-vs-late average over a
// node's metrics history window.
type LatencyShift struct {
	Node    string  `json:"node"`
	Metric  string  `json:"metric"` // base name, without _sum/_count
	EarlyMS float64 `json:"early_ms"`
	LateMS  float64 `json:"late_ms"`
	// Regressed marks a late average at least 1.5x the early one (and
	// above 1ms, so idle noise never pages anyone).
	Regressed bool `json:"regressed"`
}

// CounterMover is one counter whose rate changed across the window.
type CounterMover struct {
	Node      string  `json:"node"`
	Metric    string  `json:"metric"`
	EarlyRate float64 `json:"early_rate"` // per second
	LateRate  float64 `json:"late_rate"`
}

// SlowTraceNote summarizes one stitched slow trace for the report.
type SlowTraceNote struct {
	ID       string  `json:"id"`
	Root     string  `json:"root"`
	DurMS    float64 `json:"dur_ms"`
	Spans    int     `json:"spans"`
	Procs    int     `json:"procs"`
	Hotspot  string  `json:"hotspot"` // the longest single span
	HotMS    float64 `json:"hot_ms"`
	HotOwner string  `json:"hot_owner"`
}

// HotFrame is one merged-CPU frame on one node.
type HotFrame struct {
	Node     string `json:"node"`
	Function string `json:"function"`
	Flat     int64  `json:"flat"`
	Unit     string `json:"unit"`
}

// PanicNote is one captured worker panic.
type PanicNote struct {
	Node  string `json:"node"`
	Task  string `json:"task"`
	Trace string `json:"trace,omitempty"`
	Err   string `json:"err"`
}

// Triage is the distilled report: what an operator reads first.
type Triage struct {
	SlowestTrace string          `json:"slowest_trace,omitempty"`
	Latency      []LatencyShift  `json:"latency,omitempty"`
	Movers       []CounterMover  `json:"movers,omitempty"`
	SlowTraces   []SlowTraceNote `json:"slow_traces,omitempty"`
	HotFrames    []HotFrame      `json:"hot_frames,omitempty"`
	Panics       []PanicNote     `json:"panics,omitempty"`
	Notes        []string        `json:"notes,omitempty"`
}

// triage distills the collected bundle.
func triage(b *Bundle, topFrames int) *Triage {
	t := &Triage{}
	for _, n := range b.Nodes {
		t.nodeMetrics(n)
		t.nodeFrames(n, topFrames)
		t.nodePanics(n)
		if n.Flight != nil && n.Flight.Dropped > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: flight ring overwrote %d older entries",
				n.Service, n.Flight.Dropped))
		}
		for _, e := range n.Errors {
			t.Notes = append(t.Notes, n.Service+": "+e)
		}
	}
	// Per-fleet: keep only the biggest rate movers.
	sort.Slice(t.Movers, func(i, j int) bool {
		di := abs(t.Movers[i].LateRate - t.Movers[i].EarlyRate)
		dj := abs(t.Movers[j].LateRate - t.Movers[j].EarlyRate)
		if di != dj {
			return di > dj
		}
		return t.Movers[i].Node+t.Movers[i].Metric < t.Movers[j].Node+t.Movers[j].Metric
	})
	if len(t.Movers) > 8 {
		t.Movers = t.Movers[:8]
	}
	sort.Slice(t.Latency, func(i, j int) bool {
		if t.Latency[i].Regressed != t.Latency[j].Regressed {
			return t.Latency[i].Regressed
		}
		if t.Latency[i].LateMS != t.Latency[j].LateMS {
			return t.Latency[i].LateMS > t.Latency[j].LateMS
		}
		return t.Latency[i].Node+t.Latency[i].Metric < t.Latency[j].Node+t.Latency[j].Metric
	})

	for _, tr := range b.Traces {
		note := SlowTraceNote{ID: tr.ID, Root: tr.Root, DurMS: tr.DurMS, Spans: tr.Spans, Procs: tr.Procs}
		for _, r := range tr.Records {
			if ms := float64(r.DurNS) / 1e6; ms > note.HotMS {
				note.HotMS, note.Hotspot, note.HotOwner = ms, r.Name, r.Service
			}
		}
		t.SlowTraces = append(t.SlowTraces, note)
	}
	if len(t.SlowTraces) > 0 {
		t.SlowestTrace = t.SlowTraces[0].ID
	}
	for _, ep := range b.Unreachable {
		t.Notes = append(t.Notes, "unreachable: "+ep)
	}
	return t
}

// nodeMetrics derives latency shifts and counter movers from one node's
// history ring, comparing the first half of the window against the second.
func (t *Triage) nodeMetrics(n *NodeDiag) {
	if n.Metrics == nil || len(n.Metrics.Samples) < 3 {
		return
	}
	s := n.Metrics.Samples
	first, mid, last := s[0], s[len(s)/2], s[len(s)-1]
	early := seconds(mid.UNS - first.UNS)
	late := seconds(last.UNS - mid.UNS)
	if early <= 0 || late <= 0 {
		return
	}
	// Iterate the LAST sample's keys: the registry creates metrics lazily,
	// so one born after boot (when load first arrived — exactly the
	// interesting kind) is absent from the first samples. A missing early
	// value really was 0.
	for name, vl := range last.Values { // mmtvet:ok — results sorted by callers
		if strings.HasSuffix(name, "_count") || strings.HasSuffix(name, "_sum") {
			continue // handled as pairs below
		}
		v0, vm := first.Values[name], mid.Values[name]
		er, lr := (vm-v0)/early, (vl-vm)/late
		if er == lr {
			continue
		}
		t.Movers = append(t.Movers, CounterMover{Node: n.Service, Metric: name, EarlyRate: er, LateRate: lr})
	}
	for name := range last.Values { // mmtvet:ok — results sorted by callers
		base, ok := strings.CutSuffix(name, "_sum")
		if !ok {
			continue
		}
		cnt := base + "_count"
		if _, ok := last.Values[cnt]; !ok {
			continue
		}
		ea := window(first.Values[name], mid.Values[name], first.Values[cnt], mid.Values[cnt])
		la := window(mid.Values[name], last.Values[name], mid.Values[cnt], last.Values[cnt])
		if ea < 0 && la < 0 {
			continue // no observations in either half
		}
		shift := LatencyShift{Node: n.Service, Metric: base,
			EarlyMS: max0(ea) * 1000, LateMS: max0(la) * 1000}
		shift.Regressed = ea >= 0 && la > 1.5*ea && shift.LateMS > 1
		t.Latency = append(t.Latency, shift)
	}
}

// window returns the average observed value between two samples of a
// _sum/_count pair, or -1 when no observation landed in the window.
func window(sum0, sum1, cnt0, cnt1 float64) float64 {
	if cnt1 <= cnt0 {
		return -1
	}
	return (sum1 - sum0) / (cnt1 - cnt0)
}

func (t *Triage) nodeFrames(n *NodeDiag, limit int) {
	if n.CPUMerged == nil {
		return
	}
	frames := n.CPUMerged.Frames
	if limit > 0 && len(frames) > limit {
		frames = frames[:limit]
	}
	for _, f := range frames {
		t.HotFrames = append(t.HotFrames, HotFrame{
			Node: n.Service, Function: f.Function, Flat: f.Flat, Unit: n.CPUMerged.Unit,
		})
	}
}

func (t *Triage) nodePanics(n *NodeDiag) {
	if n.Flight == nil {
		return
	}
	for _, e := range n.Flight.Panics() {
		t.Panics = append(t.Panics, PanicNote{Node: n.Service, Task: e.Name, Trace: e.Trace, Err: e.Err})
	}
}

// WriteReport renders the triage as text, the bundle's triage.txt and the
// CLI's default output.
func (t *Triage) WriteReport(w io.Writer) {
	fmt.Fprintln(w, "== mmtdoctor triage ==")
	if len(t.Panics) > 0 {
		fmt.Fprintf(w, "\nPANICS (%d):\n", len(t.Panics))
		for _, p := range t.Panics {
			fmt.Fprintf(w, "  %s: task %s trace=%s: %s\n", p.Node, p.Task, p.Trace, p.Err)
		}
	}
	var regressed []LatencyShift
	for _, l := range t.Latency {
		if l.Regressed {
			regressed = append(regressed, l)
		}
	}
	if len(regressed) > 0 {
		fmt.Fprintf(w, "\nlatency regressions (late half vs early half of the history window):\n")
		for _, l := range regressed {
			fmt.Fprintf(w, "  %-40s %-44s %.2fms -> %.2fms\n", l.Node, l.Metric, l.EarlyMS, l.LateMS)
		}
	} else if len(t.Latency) > 0 {
		fmt.Fprintf(w, "\nno latency regressions; steadiest-to-busiest averages:\n")
		for i, l := range t.Latency {
			if i == 4 {
				break
			}
			fmt.Fprintf(w, "  %-40s %-44s %.2fms -> %.2fms\n", l.Node, l.Metric, l.EarlyMS, l.LateMS)
		}
	}
	if len(t.Movers) > 0 {
		fmt.Fprintf(w, "\ntop metric movers (rate/s, early half -> late half):\n")
		for _, m := range t.Movers {
			fmt.Fprintf(w, "  %-40s %-44s %.2f/s -> %.2f/s\n", m.Node, m.Metric, m.EarlyRate, m.LateRate)
		}
	}
	if len(t.SlowTraces) > 0 {
		fmt.Fprintf(w, "\nslowest traces:\n")
		for _, s := range t.SlowTraces {
			fmt.Fprintf(w, "  %-36s %10.3fms %3d spans %2d procs  root=%s\n",
				s.ID, s.DurMS, s.Spans, s.Procs, s.Root)
			if s.Hotspot != "" {
				fmt.Fprintf(w, "  %36s hotspot: %s on %s (%.3fms)\n", "", s.Hotspot, s.HotOwner, s.HotMS)
			}
		}
		fmt.Fprintf(w, "slowest trace: %s (render it with `mmttrace -trace %s`)\n",
			t.SlowestTrace, t.SlowestTrace)
	} else {
		fmt.Fprintln(w, "\nno recent traces (the span rings are bounded; drive some load first)")
	}
	if len(t.HotFrames) > 0 {
		fmt.Fprintf(w, "\nhottest frames (merged continuous-profiler CPU captures):\n")
		for _, f := range t.HotFrames {
			fmt.Fprintf(w, "  %-40s %12d %-12s %s\n", f.Node, f.Flat, f.Unit, f.Function)
		}
	}
	if len(t.Notes) > 0 {
		fmt.Fprintf(w, "\nnotes:\n")
		for _, n := range t.Notes {
			fmt.Fprintf(w, "  %s\n", n)
		}
	}
}

func seconds(ns int64) float64 { return float64(ns) / 1e9 }

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func max0(f float64) float64 {
	if f < 0 {
		return 0
	}
	return f
}
