package static

import (
	"testing"

	"mmt/internal/prof"
)

// crossSrc is the diamond-in-a-loop every cross-validation case can be
// phrased against: the bnez at "head" diverges, both arms rejoin at
// "join", and the loop branch at the bottom closes the cycle.
const crossSrc = `
        tid  r4
        li   r7, 8
head:   bnez r4, odd
        addi r5, r0, 1
        j    join
odd:    addi r5, r0, 2
join:   addi r7, r7, -1
        bnez r7, head
        halt
`

// Insts: 0 tid, 1 li, 2 bnez(head), 3 addi, 4 j, 5 addi(odd),
// 6 addi(join), 7 bnez, 8 halt.

func TestCrossValidateClean(t *testing.T) {
	a := mustAnalyze(t, crossSrc)
	p := &prof.Profile{
		Schema: prof.SchemaVersion,
		Sites: []prof.SiteStats{
			{PC: pcAt(2), Divergences: 3, Remerges: 3},
		},
		RemergeEdges: []prof.RemergeEdge{
			{DivergePC: pcAt(2), RemergePC: pcAt(6), Count: 3},
		},
	}
	if fs := a.CrossValidate(p); len(fs) != 0 {
		t.Errorf("clean profile produced findings: %v", fs)
	}
}

func TestCrossValidateRemergeNonPostdom(t *testing.T) {
	// A loop-free diamond: a remerge inside one arm shares no cycle with
	// the branch, so the loop-carried escape hatch cannot excuse it.
	a := mustAnalyze(t, `
        tid  r4
        bnez r4, odd
        addi r5, r0, 1
        j    join
odd:    addi r5, r0, 2
join:   addi r6, r5, 1
        halt
`)
	// Insts: 0 tid, 1 bnez, 2 addi, 3 j, 4 addi(odd), 5 addi(join),
	// 6 halt. A remerge at the odd arm (inst 4) does not post-dominate
	// the branch at inst 1 — the even path never passes through it.
	p := &prof.Profile{
		Schema: prof.SchemaVersion,
		Sites:  []prof.SiteStats{{PC: pcAt(1), Divergences: 1, Remerges: 1}},
		RemergeEdges: []prof.RemergeEdge{
			{DivergePC: pcAt(1), RemergePC: pcAt(4), Count: 1},
		},
	}
	fs := a.CrossValidate(p)
	if !hasCode(fs, CodeRemergeNonPD) {
		t.Errorf("non-post-dominator remerge not flagged: %v", fs)
	}
	if got, _ := maxSeverity(fs); got != SevError {
		t.Errorf("max severity = %v, want error", got)
	}
	// The predicted reconvergence point was never observed either.
	if !hasCode(fs, CodeReconvMissed) {
		t.Errorf("missed predicted reconvergence not reported: %v", fs)
	}
}

func TestCrossValidateLoopCarried(t *testing.T) {
	a := mustAnalyze(t, crossSrc)
	// The loop branch at inst 7 diverging and remerging at the head
	// (inst 2) is a loop-carried remerge: not a post-dominator, but on a
	// common cycle with the branch — legal, informational.
	p := &prof.Profile{
		Schema: prof.SchemaVersion,
		Sites:  []prof.SiteStats{{PC: pcAt(7), Divergences: 2, Remerges: 2}},
		RemergeEdges: []prof.RemergeEdge{
			{DivergePC: pcAt(7), RemergePC: pcAt(2), Count: 2},
		},
	}
	fs := a.CrossValidate(p)
	if !hasCode(fs, CodeRemergeLoop) {
		t.Errorf("loop-carried remerge not classified: %v", fs)
	}
	if hasCode(fs, CodeRemergeNonPD) {
		t.Errorf("loop-carried remerge misflagged as invariant violation: %v", fs)
	}
	if got, _ := maxSeverity(fs); got != SevInfo {
		t.Errorf("max severity = %v, want info", got)
	}
}

func TestCrossValidateOutOfTextSites(t *testing.T) {
	a := mustAnalyze(t, crossSrc)
	p := &prof.Profile{
		Schema: prof.SchemaVersion,
		Sites:  []prof.SiteStats{{PC: 0x40, Divergences: 2}},
		RemergeEdges: []prof.RemergeEdge{
			{DivergePC: 0x40, RemergePC: pcAt(6), Count: 1},
			{DivergePC: pcAt(2), RemergePC: 0x9999, Count: 1},
		},
	}
	fs := a.CrossValidate(p)
	n := 0
	for _, f := range fs {
		if f.Code == CodeProfileSite {
			n++
		}
	}
	if n != 3 {
		t.Errorf("out-of-text findings = %d, want 3 (edge diverge, edge remerge, site): %v", n, fs)
	}
}

func TestCrossValidateDivergeNeverRemerged(t *testing.T) {
	a := mustAnalyze(t, crossSrc)
	p := &prof.Profile{
		Schema: prof.SchemaVersion,
		Sites:  []prof.SiteStats{{PC: pcAt(2), Divergences: 5}},
	}
	fs := a.CrossValidate(p)
	if !hasCode(fs, CodeDivergeNoJoin) {
		t.Errorf("never-remerged site not flagged: %v", fs)
	}
	if got, _ := maxSeverity(fs); got != SevWarning {
		t.Errorf("max severity = %v, want warning", got)
	}
}
