package static

import (
	"testing"

	"mmt/internal/asm"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// TestCrossValidateSeedWorkloads is the end-to-end invariant check: run
// seed workloads on the real core with attribution attached, then join
// the observed remerge edges against the static post-dominator tree.
// Every dynamically observed remerge must be structurally explicable:
// a forward remerge lands at a static post-dominator of its divergence
// branch, and a loop-carried remerge lands on a common cycle with it
// (the groups re-met on a later iteration). The FHB/CATCHUP machinery
// finding a join the CFG says cannot be one would be a simulator bug,
// not a workload property.
func TestCrossValidateSeedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	sawEdges := false
	for _, name := range []string{"libsvm", "equake", "ocean"} {
		t.Run(name, func(t *testing.T) {
			app, ok := workloads.ByName(name)
			if !ok {
				t.Fatalf("unknown workload %q", name)
			}
			p, err := asm.Assemble(app.Name, app.Source)
			if err != nil {
				t.Fatal(err)
			}
			a := Analyze(p)

			// MMT-FXR: shared fetch on, so the FHB/CATCHUP machinery
			// actually diverges and remerges (Base never merges at all).
			spec := sim.TaskSpec{App: name, Preset: sim.PresetMMTFXR, Threads: 2,
				Config: &sim.ConfigOverride{MaxInsts: 20000}, Attribution: true}
			task, err := spec.Task()
			if err != nil {
				t.Fatal(err)
			}
			out, err := task.Execute()
			if err != nil {
				t.Fatal(err)
			}
			profile := out.Attribution
			if profile == nil {
				t.Fatal("attributed run produced no profile")
			}
			if len(profile.RemergeEdges) > 0 {
				sawEdges = true
			}

			// The invariant, asserted directly on the raw edges...
			for _, e := range profile.RemergeEdges {
				db, rb := a.BlockAt(e.DivergePC), a.BlockAt(e.RemergePC)
				loopCarried := a.canReach(rb, db) && a.canReach(db, rb)
				if !a.PostDominates(e.RemergePC, e.DivergePC) && !loopCarried {
					t.Errorf("remerge at %#x (%d times) is neither a post-dominator of nor loop-carried from the divergence at %#x",
						e.RemergePC, e.Count, e.DivergePC)
				}
			}
			// ...and through the joined verdict: no error findings.
			for _, f := range a.CrossValidate(profile) {
				if f.Sev == SevError {
					t.Errorf("cross-validation: %s", f)
				}
			}
		})
	}
	if !sawEdges {
		t.Error("no workload produced remerge edges; the invariant was never exercised")
	}
}
