package static

import (
	"math/bits"

	"mmt/internal/isa"
)

// Register-initialization dataflow: a forward must-write analysis over
// the reachable CFG. IN[b] is the set of registers written on *every*
// path reaching b; a block's upward-exposed read of a register outside
// that set can observe the loader's implicit zero — legal on this
// machine, but almost always a program bug (SPMD kernels derive all
// state from tid, sp and memory), so it is reported as a warning.
//
// Registers defined before the first instruction: r0 (hard-wired) and sp
// (set by the loader). Call edges propagate the call site's OUT plus the
// linked return address into the callee, so intraprocedural reads of ra
// after a call verify cleanly.

type regMask uint32

const initialRegs = regMask(1<<isa.RegZero | 1<<isa.RegSP)

// instReads returns the source registers i reads; instWrites the
// destination it defines, if any.
func instReads(i isa.Inst) regMask {
	var m regMask
	srcs, n := i.Sources()
	for k := 0; k < n; k++ {
		m |= 1 << srcs[k]
	}
	return m
}

func instWrites(i isa.Inst) regMask {
	if d, ok := i.Dest(); ok {
		return 1 << d
	}
	return 0
}

// checkDataflow reports registers read before any write reaches them on
// some path from the entry.
func (a *Analysis) checkDataflow() {
	n := len(a.Blocks)
	if n == 0 || a.Entry < 0 {
		return
	}
	p := a.Prog

	// Per-block write summaries.
	written := make([]regMask, n)
	for bi := range a.Blocks {
		b := &a.Blocks[bi]
		for k := 0; k < b.N; k++ {
			in := p.Insts[b.First+k]
			if !in.Op.Valid() {
				break
			}
			written[bi] |= instWrites(in)
		}
	}

	// Must-write fixpoint. IN starts full (top) everywhere but the
	// roots; edges are CFG successors plus call edges (the callee sees
	// the call site's OUT plus the link register).
	const top = ^regMask(0)
	in := make([]regMask, n)
	for i := range in {
		in[i] = top
	}
	in[a.Entry] = initialRegs
	for changed := true; changed; {
		changed = false
		for bi := 0; bi < n; bi++ {
			if !a.Reachable[bi] {
				continue
			}
			b := &a.Blocks[bi]
			out := in[bi] | written[bi]
			if in[bi] == top {
				out = written[bi] // not yet reached by a real path
			}
			flow := func(to int, extra regMask) {
				if to < 0 {
					return
				}
				nv := in[to] & (out | extra)
				if in[to] == top {
					nv = out | extra
				}
				if nv != in[to] {
					in[to] = nv
					changed = true
				}
			}
			for _, s := range b.Succs {
				flow(s, 0)
			}
			if b.Callee >= 0 {
				// jal wrote the link register before entry.
				flow(b.Callee, instWrites(p.Insts[b.First+b.N-1]))
			}
		}
	}

	// Report: walk each reachable block, tracking intra-block writes, and
	// flag the first offending read of each register per block.
	for bi := range a.Blocks {
		if !a.Reachable[bi] || in[bi] == top {
			continue
		}
		b := &a.Blocks[bi]
		have := in[bi] | initialRegs
		for k := 0; k < b.N; k++ {
			inst := p.Insts[b.First+k]
			if !inst.Op.Valid() {
				break
			}
			if miss := instReads(inst) &^ have; miss != 0 {
				for miss != 0 {
					r := bits.TrailingZeros32(uint32(miss))
					miss &^= 1 << r
					a.addFinding(SevWarning, CodeReadBeforeWr, a.pcOf(b.First+k),
						"r%d may be read before any write reaches it (%s)", r, inst)
				}
				// One report per register per block: treat it as defined
				// from here on.
				have |= instReads(inst)
			}
			have |= instWrites(inst)
		}
	}
}

// checkStores runs a per-block constant propagation (r0 plus values
// built from lui/li/addi chains) and flags stores whose statically known
// address lands inside the text segment — self-modifying code the
// simulator's fetch path would never observe.
func (a *Analysis) checkStores() {
	p := a.Prog
	textLo := p.Base
	textHi := p.Base + uint64(len(p.Insts))*isa.InstBytes
	for bi := range a.Blocks {
		if !a.Reachable[bi] {
			continue
		}
		b := &a.Blocks[bi]
		var known regMask = 1 << isa.RegZero
		var vals [isa.NumRegs]uint64
		get := func(r uint8) (uint64, bool) { return vals[r], known&(1<<r) != 0 }
		set := func(r uint8, v uint64, ok bool) {
			if r == isa.RegZero {
				return
			}
			if ok {
				known |= 1 << r
				vals[r] = v
			} else {
				known &^= 1 << r
			}
		}
		for k := 0; k < b.N; k++ {
			in := p.Insts[b.First+k]
			if !in.Op.Valid() {
				break
			}
			switch in.Op {
			case isa.OpSt:
				if base, ok := get(in.Rs1); ok {
					if addr := base + uint64(in.Imm); addr >= textLo && addr < textHi {
						a.addFinding(SevError, CodeStoreToText, a.pcOf(b.First+k),
							"store to %#x overwrites program text [%#x,%#x)", addr, textLo, textHi)
					}
				}
			case isa.OpAddi:
				v, ok := get(in.Rs1)
				set(in.Rd, v+uint64(in.Imm), ok)
			case isa.OpOri:
				v, ok := get(in.Rs1)
				set(in.Rd, v|uint64(in.Imm), ok)
			case isa.OpLui:
				set(in.Rd, uint64(in.Imm)<<32, true)
			case isa.OpAdd:
				v1, ok1 := get(in.Rs1)
				v2, ok2 := get(in.Rs2)
				set(in.Rd, v1+v2, ok1 && ok2)
			case isa.OpSlli:
				v, ok := get(in.Rs1)
				set(in.Rd, v<<(uint64(in.Imm)&63), ok)
			default:
				if d, ok := in.Dest(); ok {
					set(d, 0, false)
				}
			}
		}
	}
}
