package absint

import (
	"sort"

	"mmt/internal/asm"
	"mmt/internal/prog"
	"mmt/internal/static"
	"mmt/internal/workloads"
)

// OptionsForApp derives the interpretation context of one workload: the
// initial stack-pointer value set for its execution mode and the
// thread-varying input regions discovered by diffing the per-context
// initial images.
func OptionsForApp(p *prog.Program, a workloads.App, threads int) Options {
	if threads <= 0 {
		threads = 2
	}
	opts := Options{Threads: threads}
	switch a.Mode {
	case prog.ModeMT:
		// Shared memory, one stack carve-out per context: SP is a strided
		// thread-dependent set (context i starts at StackTop - i*StackSize).
		lo := int64(prog.StackTop - uint64(threads-1)*prog.StackSize)
		opts.SP = Range(lo, int64(prog.StackTop), prog.StackSize, DepThread)
	default:
		// Private images: every context's SP starts at StackTop.
		opts.SP = Const(int64(prog.StackTop))
	}
	if a.Mode != prog.ModeMT && a.Init != nil && threads > 1 {
		opts.Varying = initImageDiff(p, a)
	}
	if a.Mode == prog.ModeMP {
		// Ranks exchange data through the mailbox window; everything in it
		// is cross-thread by construction.
		opts.Varying = append(opts.Varying, AddrRange{Lo: prog.MboxBase, Hi: prog.MboxBase + prog.MboxSize})
	}
	return opts
}

// initImageDiff runs the workload's Init for two contexts against fresh
// images and coalesces the differing words into address ranges: the
// memory whose initial contents depend on the thread identity.
func initImageDiff(p *prog.Program, a workloads.App) []AddrRange {
	m0, m1 := prog.NewMemory(), prog.NewMemory()
	a.Init(p, 0, m0, false)
	a.Init(p, 1, m1, false)

	pageSet := map[uint64]bool{}
	for _, pg := range m0.Pages() {
		pageSet[pg] = true
	}
	for _, pg := range m1.Pages() {
		pageSet[pg] = true
	}
	pages := make([]uint64, 0, len(pageSet))
	for pg := range pageSet { // mmtvet:ok — sorted immediately below
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	var out []AddrRange
	for _, pg := range pages {
		for off := uint64(0); off < prog.PageBytes; off += 8 {
			addr := pg + off
			if m0.Read64(addr) == m1.Read64(addr) {
				continue
			}
			if n := len(out); n > 0 && out[n-1].Hi == addr {
				out[n-1].Hi = addr + 8
			} else {
				out = append(out, AddrRange{Lo: addr, Hi: addr + 8})
			}
		}
	}
	return out
}

// AnalyzeApp assembles a workload and runs the abstract interpretation
// with its mode-derived options.
func AnalyzeApp(a workloads.App, threads int) (*Result, error) {
	p, err := asm.Assemble(a.Name, a.Source)
	if err != nil {
		return nil, err
	}
	sa := static.Analyze(p)
	return Run(sa, OptionsForApp(p, a, threads)), nil
}

// EstimateApp produces the static cost model of one workload.
func EstimateApp(a workloads.App, threads int) (*Estimate, error) {
	r, err := AnalyzeApp(a, threads)
	if err != nil {
		return nil, err
	}
	return EstimateOf(r), nil
}
