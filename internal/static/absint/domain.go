// Package absint is the abstract-interpretation layer on top of the
// internal/static CFG: a dataflow engine that runs the guest ISA's
// transfer functions over an interval/stride ("value set") domain per
// basic block to fixpoint. Where internal/static answers *structural*
// questions (what dominates what, where branches reconverge), absint
// answers *value* questions: which addresses can this load touch, can
// this divisor be zero, how many times does this loop run, and — the
// question MMT cares about — which instructions compute thread-invariant
// values and therefore commit merged across contexts.
//
// Three surfaces are built on the engine: value-powered lints for
// cmd/mmtcheck (out-of-bounds accesses, dead stores, unbounded loops,
// zero divisors), the static cost model Estimate that ranks design
// points for internal/dse before any simulation is spent, and a
// cross-validation join against dynamic profiles (internal/prof) that
// keeps the estimator honest in CI.
package absint

import (
	"fmt"
	"math"
	"math/bits"
)

// Dep is the thread-dependence half of the domain: whether a value is
// provably identical across hardware contexts (uniform) or may differ
// (derived from tid, a per-thread stack pointer, or thread-varying
// memory). Uniform values are exactly the ones MMT can fetch and execute
// once for all threads (PAPER.md §2), so Dep is what the redundancy
// estimate is made of.
type Dep uint8

const (
	// DepUniform: the value is the same in every context.
	DepUniform Dep = iota
	// DepThread: the value may differ between contexts.
	DepThread
)

func (d Dep) String() string {
	if d == DepThread {
		return "thread"
	}
	return "uniform"
}

func maxDep(a, b Dep) Dep {
	if b > a {
		return b
	}
	return a
}

// AbsVal abstracts one 64-bit register value: signed interval bounds on
// the bit pattern, an optional stride (congruence) for value-set
// analysis of addresses, and the thread-dependence flag.
//
// Invariants: Lo <= Hi; Stride == 0 iff Lo == Hi (a constant); when
// Stride > 1 every concrete value v satisfies v ≡ Lo (mod Stride).
type AbsVal struct {
	Lo, Hi int64
	Stride uint64
	Dep    Dep
}

// Const returns the singleton abstract value.
func Const(v int64) AbsVal { return AbsVal{Lo: v, Hi: v} }

// Top returns the unconstrained value with the given dependence.
func Top(dep Dep) AbsVal {
	return AbsVal{Lo: math.MinInt64, Hi: math.MaxInt64, Stride: 1, Dep: dep}
}

// Range returns the interval [lo, hi] with the given stride (0 or 1 for
// no congruence information).
func Range(lo, hi int64, stride uint64, dep Dep) AbsVal {
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: stride, Dep: dep})
}

// norm restores the representation invariants.
func norm(v AbsVal) AbsVal {
	if v.Lo == v.Hi {
		v.Stride = 0
	} else if v.Stride == 0 {
		v.Stride = 1
	}
	return v
}

// IsConst reports whether v is a singleton, returning the value.
func (v AbsVal) IsConst() (int64, bool) { return v.Lo, v.Lo == v.Hi }

// IsTop reports whether the interval carries no bound at all.
func (v AbsVal) IsTop() bool { return v.Lo == math.MinInt64 && v.Hi == math.MaxInt64 }

// Contains reports whether concrete value x (as a signed bit pattern) is
// admitted by v — the soundness relation the fuzzer checks.
func (v AbsVal) Contains(x int64) bool {
	if x < v.Lo || x > v.Hi {
		return false
	}
	if v.Stride > 1 {
		// The wrapped difference equals the true difference: Lo <= x.
		return (uint64(x)-uint64(v.Lo))%v.Stride == 0
	}
	return true
}

func (v AbsVal) String() string {
	if c, ok := v.IsConst(); ok {
		return fmt.Sprintf("{%d %s}", c, v.Dep)
	}
	if v.IsTop() && v.Stride <= 1 {
		return fmt.Sprintf("{⊤ %s}", v.Dep)
	}
	if v.Stride > 1 {
		return fmt.Sprintf("{[%d,%d]/%d %s}", v.Lo, v.Hi, v.Stride, v.Dep)
	}
	return fmt.Sprintf("{[%d,%d] %s}", v.Lo, v.Hi, v.Dep)
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// join is the lattice least upper bound: widest bounds, the coarsest
// congruence both sides satisfy (gcd of the strides and the anchor
// distance), and the stronger dependence.
func join(a, b AbsVal) AbsVal {
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	var d uint64
	if a.Lo >= b.Lo {
		d = uint64(a.Lo) - uint64(b.Lo)
	} else {
		d = uint64(b.Lo) - uint64(a.Lo)
	}
	s := gcd(gcd(a.Stride, b.Stride), d)
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: s, Dep: maxDep(a.Dep, b.Dep)})
}

// widen jumps any still-moving bound to infinity so chains of joins
// terminate: prev is the last stable state, next the freshly joined one.
func widen(prev, next AbsVal) AbsVal {
	lo, hi := next.Lo, next.Hi
	if lo < prev.Lo {
		lo = math.MinInt64
	}
	if hi > prev.Hi {
		hi = math.MaxInt64
	}
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: next.Stride, Dep: next.Dep})
}

// meetBounds refines v to [lo, hi], snapping the result onto v's
// congruence grid. ok is false when the refinement is infeasible (the
// branch edge cannot be taken with these operand values).
func (v AbsVal) meetBounds(lo, hi int64) (AbsVal, bool) {
	if lo < v.Lo {
		lo = v.Lo
	}
	if hi > v.Hi {
		hi = v.Hi
	}
	if v.Stride > 1 && lo <= hi {
		if d := (uint64(lo) - uint64(v.Lo)) % v.Stride; d != 0 {
			nl := uint64(lo) + (v.Stride - d)
			// Snapping past MaxInt64 wraps negative; the lo > hi check below
			// then rejects the (genuinely infeasible) refinement.
			lo = int64(nl)
		}
		hi = int64(uint64(hi) - (uint64(hi)-uint64(v.Lo))%v.Stride)
	}
	if lo > hi {
		return AbsVal{}, false
	}
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: v.Stride, Dep: v.Dep}), true
}

// Overflow-checked corner arithmetic. Any overflowing corner makes the
// abstract operation give up (Top) rather than model the wrap.

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subOv(a, b int64) (int64, bool) {
	s := a - b
	if (b < 0 && s < a) || (b > 0 && s > a) {
		return 0, false
	}
	return s, true
}

func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// strideOf treats constants as stride 0, so gcd composes anchors
// correctly (gcd(0, s) == s).
func strideOf(v AbsVal) uint64 { return v.Stride }

func addVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	lo, ok1 := addOv(a.Lo, b.Lo)
	hi, ok2 := addOv(a.Hi, b.Hi)
	if !ok1 || !ok2 {
		return Top(dep)
	}
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: gcd(strideOf(a), strideOf(b)), Dep: dep})
}

func subVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	lo, ok1 := subOv(a.Lo, b.Hi)
	hi, ok2 := subOv(a.Hi, b.Lo)
	if !ok1 || !ok2 {
		return Top(dep)
	}
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: gcd(strideOf(a), strideOf(b)), Dep: dep})
}

func mulVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	corners := [4][2]int64{{a.Lo, b.Lo}, {a.Lo, b.Hi}, {a.Hi, b.Lo}, {a.Hi, b.Hi}}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, c := range corners {
		p, ok := mulOv(c[0], c[1])
		if !ok {
			return Top(dep)
		}
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	// Stride survives multiplication by a constant: {l, l+s, ...} * c has
	// stride |c|*s anchored at a corner.
	var stride uint64
	if c, ok := a.IsConst(); ok && c != 0 {
		stride = mulStride(strideOf(b), c)
	} else if c, ok := b.IsConst(); ok && c != 0 {
		stride = mulStride(strideOf(a), c)
	} else if lo != hi {
		stride = 1
	}
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: stride, Dep: dep})
}

func mulStride(s uint64, c int64) uint64 {
	if s == 0 {
		return 0
	}
	m := uint64(c)
	if c < 0 {
		m = uint64(-c)
	}
	hi, lo := bits.Mul64(s, m)
	if hi != 0 {
		return 1
	}
	return lo
}

// divVal models the ISA's trap-free signed division: divisor zero yields
// all-ones (-1), and MinInt64/-1 wraps (Go semantics, matched by Exec).
func divVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	zero := b.Contains(0)
	if c, ok := b.IsConst(); ok && c == 0 {
		return AbsVal{Lo: -1, Hi: -1, Dep: dep}
	}
	if a.Lo == math.MinInt64 && b.Contains(-1) {
		return Top(dep) // MinInt64 / -1 wraps
	}
	var q AbsVal
	switch {
	case b.Lo >= 1 || b.Hi <= -1:
		// Divisor sign is known; quotient extremes are at the corners
		// (truncated division is monotone in each argument on these boxes).
		lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
		for _, x := range [2]int64{a.Lo, a.Hi} {
			for _, y := range [2]int64{b.Lo, b.Hi} {
				if y == 0 {
					continue
				}
				p := x / y
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		}
		q = norm(AbsVal{Lo: lo, Hi: hi, Stride: 1, Dep: dep})
	default:
		// Divisor interval spans zero: |q| <= max(|a.Lo|, |a.Hi|) since
		// every nonzero divisor has magnitude >= 1.
		m := a.Hi
		if a.Lo != math.MinInt64 && -a.Lo > m {
			m = -a.Lo
		}
		if m < 0 {
			m = 0
		}
		q = norm(AbsVal{Lo: -m, Hi: m, Stride: 1, Dep: dep})
	}
	if zero {
		q = join(q, AbsVal{Lo: -1, Hi: -1, Dep: dep})
	}
	return q
}

// remVal models trap-free remainder: divisor zero yields the dividend.
func remVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	if c, ok := b.IsConst(); ok && c == 0 {
		return norm(AbsVal{Lo: a.Lo, Hi: a.Hi, Stride: a.Stride, Dep: dep})
	}
	// |r| < max(|b.Lo|, |b.Hi|), sign follows the dividend.
	m := b.Hi
	if b.Lo != math.MinInt64 && -b.Lo > m {
		m = -b.Lo
	}
	if m == math.MinInt64 || m <= 0 {
		return Top(dep)
	}
	lo, hi := -(m - 1), m-1
	if a.Lo >= 0 {
		lo = 0
		if a.Hi < hi {
			hi = a.Hi
		}
	} else if a.Hi <= 0 {
		hi = 0
		if a.Lo > lo {
			lo = a.Lo
		}
	}
	r := norm(AbsVal{Lo: lo, Hi: hi, Stride: 1, Dep: dep})
	if b.Contains(0) {
		r = join(r, norm(AbsVal{Lo: a.Lo, Hi: a.Hi, Stride: a.Stride, Dep: dep}))
	}
	return r
}

func andVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	if x, ok := a.IsConst(); ok {
		if y, ok := b.IsConst(); ok {
			return AbsVal{Lo: int64(uint64(x) & uint64(y)), Hi: int64(uint64(x) & uint64(y)), Dep: dep}
		}
	}
	// A mask with a clear sign bit clears the result's sign bit.
	switch {
	case a.Lo >= 0 && b.Lo >= 0:
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		return norm(AbsVal{Lo: 0, Hi: hi, Stride: 1, Dep: dep})
	case a.Lo >= 0:
		return norm(AbsVal{Lo: 0, Hi: a.Hi, Stride: 1, Dep: dep})
	case b.Lo >= 0:
		return norm(AbsVal{Lo: 0, Hi: b.Hi, Stride: 1, Dep: dep})
	}
	return Top(dep)
}

// maskAbove returns the all-ones bound covering x (x >= 0): the smallest
// 2^k - 1 >= x.
func maskAbove(x int64) int64 {
	n := bits.Len64(uint64(x))
	if n >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<n - 1
}

func orVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	if x, ok := a.IsConst(); ok {
		if y, ok := b.IsConst(); ok {
			v := int64(uint64(x) | uint64(y))
			return AbsVal{Lo: v, Hi: v, Dep: dep}
		}
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		lo := a.Lo
		if b.Lo > lo {
			lo = b.Lo
		}
		return norm(AbsVal{Lo: lo, Hi: maskAbove(a.Hi | b.Hi), Stride: 1, Dep: dep})
	}
	return Top(dep)
}

func xorVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	if x, ok := a.IsConst(); ok {
		if y, ok := b.IsConst(); ok {
			v := int64(uint64(x) ^ uint64(y))
			return AbsVal{Lo: v, Hi: v, Dep: dep}
		}
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		return norm(AbsVal{Lo: 0, Hi: maskAbove(a.Hi | b.Hi), Stride: 1, Dep: dep})
	}
	return Top(dep)
}

func sllVal(a, sh AbsVal) AbsVal {
	dep := maxDep(a.Dep, sh.Dep)
	if c, ok := sh.IsConst(); ok {
		k := uint(uint64(c) & 63)
		if k == 0 {
			return norm(AbsVal{Lo: a.Lo, Hi: a.Hi, Stride: a.Stride, Dep: dep})
		}
		if x, ok := a.IsConst(); ok {
			v := int64(uint64(x) << k)
			return AbsVal{Lo: v, Hi: v, Dep: dep}
		}
		if a.Lo >= 0 && a.Hi <= math.MaxInt64>>k {
			s := strideOf(a)
			if s<<k>>k == s {
				s <<= k
			} else {
				s = 1
			}
			return norm(AbsVal{Lo: a.Lo << k, Hi: a.Hi << k, Stride: s, Dep: dep})
		}
		return Top(dep)
	}
	if x, ok := a.IsConst(); ok && x == 0 {
		return AbsVal{Dep: dep}
	}
	return Top(dep)
}

func srlVal(a, sh AbsVal) AbsVal {
	dep := maxDep(a.Dep, sh.Dep)
	if c, ok := sh.IsConst(); ok {
		k := uint(uint64(c) & 63)
		if k == 0 {
			return norm(AbsVal{Lo: a.Lo, Hi: a.Hi, Stride: a.Stride, Dep: dep})
		}
		if x, ok := a.IsConst(); ok {
			v := int64(uint64(x) >> k)
			return AbsVal{Lo: v, Hi: v, Dep: dep}
		}
		if a.Lo >= 0 {
			return norm(AbsVal{Lo: a.Lo >> k, Hi: a.Hi >> k, Stride: 1, Dep: dep})
		}
		// A negative bit pattern shifts to a large positive value.
		return norm(AbsVal{Lo: 0, Hi: math.MaxInt64, Stride: 1, Dep: dep})
	}
	if a.Lo >= 0 {
		return norm(AbsVal{Lo: 0, Hi: a.Hi, Stride: 1, Dep: dep})
	}
	return Top(dep)
}

func sraVal(a, sh AbsVal) AbsVal {
	dep := maxDep(a.Dep, sh.Dep)
	if c, ok := sh.IsConst(); ok {
		k := uint(uint64(c) & 63)
		return norm(AbsVal{Lo: a.Lo >> k, Hi: a.Hi >> k, Stride: 1, Dep: dep})
	}
	// Arithmetic shifts move toward 0 (positive) or -1 (negative).
	lo := a.Lo
	if lo > 0 {
		lo = 0
	}
	hi := a.Hi
	if hi < -1 {
		hi = -1
	}
	return norm(AbsVal{Lo: lo, Hi: hi, Stride: 1, Dep: dep})
}

func sltVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	switch {
	case a.Hi < b.Lo:
		return AbsVal{Lo: 1, Hi: 1, Dep: dep}
	case a.Lo >= b.Hi:
		return AbsVal{Dep: dep}
	}
	return norm(AbsVal{Lo: 0, Hi: 1, Stride: 1, Dep: dep})
}

func sltuVal(a, b AbsVal) AbsVal {
	dep := maxDep(a.Dep, b.Dep)
	// Unsigned order matches signed order when both operands share a sign
	// bit state: both non-negative, or both negative bit patterns.
	if (a.Lo >= 0 && b.Lo >= 0) || (a.Hi < 0 && b.Hi < 0) {
		return sltVal(AbsVal{Lo: a.Lo, Hi: a.Hi, Stride: a.Stride, Dep: dep}, b)
	}
	return norm(AbsVal{Lo: 0, Hi: 1, Stride: 1, Dep: dep})
}

// boolInterval is the result of any comparison with an unknown outcome.
func boolInterval(dep Dep) AbsVal {
	return norm(AbsVal{Lo: 0, Hi: 1, Stride: 1, Dep: dep})
}
