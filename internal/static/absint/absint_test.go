package absint

import (
	"testing"

	"mmt/internal/workloads"
)

// TestEstimateKernels runs the interpreter to fixpoint over every
// built-in workload and sanity-checks the cost model's invariants.
func TestEstimateKernels(t *testing.T) {
	for _, a := range workloads.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			e, err := EstimateApp(a, 2)
			if err != nil {
				t.Fatalf("estimate: %v", err)
			}
			if e.StaticInsts == 0 {
				t.Fatal("no reachable instructions")
			}
			if e.Redundancy < 0 || e.Redundancy > 1 {
				t.Fatalf("redundancy %v out of [0,1]", e.Redundancy)
			}
			if e.LVIPPotential < 0 || e.LVIPPotential > 1 {
				t.Fatalf("lvip potential %v out of [0,1]", e.LVIPPotential)
			}
			if e.DynInsts < float64(e.StaticInsts) {
				t.Fatalf("dynamic estimate %v below static count %d", e.DynInsts, e.StaticInsts)
			}
			tp, en := e.Score(32, 8, 4096)
			if tp < 0 || en <= 0 {
				t.Fatalf("score (%v, %v) out of range", tp, en)
			}
			t.Logf("insts=%d dyn=%.0f redundancy=%.3f lvip=%.3f divsites=%d",
				e.StaticInsts, e.DynInsts, e.Redundancy, e.LVIPPotential, len(e.Divergence))
		})
	}
}
