package absint

import (
	"math"
	"sort"

	"mmt/internal/isa"
	"mmt/internal/prog"
	"mmt/internal/static"
)

// Options configures one abstract interpretation.
type Options struct {
	// Threads is the hardware context count the dependence model assumes
	// (default 2, the paper's configuration).
	Threads int
	// SP is the initial stack pointer. The zero value means the uniform
	// prog.StackTop every non-MT context starts with; MT systems pass the
	// per-thread strided set (see OptionsForApp).
	SP AbsVal
	// Varying lists address ranges whose initial contents differ between
	// contexts (ME/MP input regions). Loads overlapping them produce
	// thread-dependent values.
	Varying []AddrRange
}

// AddrRange is a half-open byte range [Lo, Hi).
type AddrRange struct {
	Lo, Hi uint64
}

func (o Options) threads() int {
	if o.Threads <= 0 {
		return 2
	}
	return o.Threads
}

func (o Options) sp() AbsVal {
	if o.SP == (AbsVal{}) {
		return Const(int64(prog.StackTop))
	}
	return o.SP
}

// state is the per-block-entry abstract register file.
type state struct {
	ok   bool
	regs [isa.NumRegs]AbsVal
}

func (s *state) get(r uint8) AbsVal {
	if r == isa.RegZero {
		return Const(0)
	}
	return s.regs[r]
}

func (s *state) set(r uint8, v AbsVal) {
	if r != isa.RegZero {
		s.regs[r] = v
	}
}

func joinState(a, b *state) state {
	if !a.ok {
		return *b
	}
	if !b.ok {
		return *a
	}
	out := state{ok: true}
	for i := range out.regs {
		out.regs[i] = join(a.regs[i], b.regs[i])
	}
	return out
}

func widenState(prev, next *state) state {
	out := state{ok: true}
	for i := range out.regs {
		out.regs[i] = widen(prev.regs[i], next.regs[i])
	}
	return out
}

func stateEq(a, b *state) bool {
	if a.ok != b.ok {
		return false
	}
	return a.regs == b.regs
}

// Access is one load or store site with its abstract address set.
type Access struct {
	PC    uint64
	Store bool
	// Addr is the abstract address (base register + displacement).
	Addr AbsVal
	// Unbounded marks an address interval too wide to classify.
	Unbounded bool
	// Classes are the indices into Result.Regions the access can touch,
	// ascending (nil when Unbounded).
	Classes []int
	// Val is the stored value (stores) or the abstract loaded value
	// (loads); its Dep is the access's thread dependence.
	Val AbsVal
}

// BranchFact is the divergence-relevant view of one conditional branch.
type BranchFact struct {
	PC               uint64
	Op               isa.Op
	CanTake, CanFall bool
	// Dep is the condition's thread dependence: DepThread marks a
	// potential divergence site.
	Dep     Dep
	TakenPC uint64
	FallPC  uint64
}

// DivSite is one div/rem instruction with its abstract divisor.
type DivSite struct {
	PC      uint64
	Op      isa.Op
	Divisor AbsVal
}

// LoopBound augments one static.Loop with inferred trip information.
type LoopBound struct {
	HeadPC, BackPC uint64
	// Trip is the inferred iteration count (> 0), or 0 when no bound
	// could be established.
	Trip int64
	// Infinite marks a loop whose body has no path out (neither an exit
	// edge nor a halting terminator).
	Infinite bool
	// ExitPC is the loop-exit branch the bound was read from (when
	// Trip > 0).
	ExitPC uint64
}

// Result is the fixpoint of one abstract interpretation.
type Result struct {
	A    *static.Analysis
	Opts Options
	// Regions partition the address space for alias-class analysis.
	Regions []Region
	// VaryingClass marks regions whose contents may differ across
	// contexts (seeded from Options.Varying, extended by thread-dependent
	// stores to fixpoint).
	VaryingClass []bool
	// Accesses, Branches and Divs are the per-site facts, in PC order.
	Accesses []Access
	Branches []BranchFact
	Divs     []DivSite
	// Loops parallels A.Loops.
	Loops []LoopBound

	in         []state
	loopBodies []map[int]bool
	anyVarying bool
}

const (
	widenAfter = 4    // joins at one block before widening kicks in
	maxSweeps  = 4096 // hard backstop; the lattice converges far earlier
)

// Run interprets the program underlying a to fixpoint.
func Run(a *static.Analysis, opts Options) *Result {
	r := &Result{A: a, Opts: opts}
	r.buildRegions()
	r.seedVarying()
	// Outer fixpoint over the varying-region set: thread-dependent stores
	// discovered in one pass poison loads in the next. The set only
	// grows, so this terminates within len(Regions) rounds.
	for {
		before := append([]bool(nil), r.VaryingClass...)
		r.fixpoint()
		same := true
		for i := range before {
			if before[i] != r.VaryingClass[i] {
				same = false
				break
			}
		}
		if same {
			break
		}
	}
	r.collectFacts()
	r.inferLoopBounds()
	return r
}

// EntryState returns a copy of the abstract register file at the entry
// of the block containing pc (ok=false when the engine never reached
// it). Exposed for the soundness fuzzer.
func (r *Result) EntryState(pc uint64) ([isa.NumRegs]AbsVal, bool) {
	b := r.A.BlockAt(pc)
	if b < 0 || b >= len(r.in) || !r.in[b].ok || r.A.Blocks[b].Start != pc {
		return [isa.NumRegs]AbsVal{}, false
	}
	return r.in[b].regs, true
}

func (r *Result) initState() state {
	st := state{ok: true}
	for i := range st.regs {
		st.regs[i] = Const(0)
	}
	st.regs[isa.RegSP] = r.Opts.sp()
	return st
}

// topState is the all-unknown state used for callee roots and post-call
// continuations: values and dependences alike are unknown, so DepThread
// keeps the divergence model honest.
func topState() state {
	st := state{ok: true}
	for i := range st.regs {
		st.regs[i] = Top(DepThread)
	}
	st.regs[isa.RegZero] = Const(0)
	return st
}

func (r *Result) fixpoint() {
	a := r.A
	n := len(a.Blocks)
	r.in = make([]state, n)
	visits := make([]int, n)
	dirty := make([]bool, n)
	if a.Entry >= 0 && a.Entry < n {
		r.in[a.Entry] = r.initState()
		dirty[a.Entry] = true
	}
	for _, root := range a.Roots {
		if root != a.Entry {
			r.in[root] = topState()
			dirty[root] = true
		}
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for b := 0; b < n; b++ {
			if !dirty[b] {
				continue
			}
			dirty[b] = false
			changed = true
			st := r.in[b]
			r.execBlock(b, &st, nil)
			r.propagateOut(b, &st, visits, dirty)
		}
		if !changed {
			break
		}
	}
}

// facts collects the per-site observations of the final recording pass.
type facts struct {
	accesses []Access
	branches []BranchFact
	divs     []DivSite
}

// execBlock runs the transfer function over block b's instructions,
// mutating st in place. When f is non-nil the walk records per-site
// facts (the final pass); during fixpoint iteration it only tracks
// varying-region growth.
func (r *Result) execBlock(b int, st *state, f *facts) {
	blk := &r.A.Blocks[b]
	for i := 0; i < blk.N; i++ {
		in := r.A.Prog.Insts[blk.First+i]
		if !in.Op.Valid() {
			return
		}
		pc := blk.Start + uint64(i)*isa.InstBytes
		r.step(st, in, pc, f)
	}
}

// step is the abstract transfer function for one instruction, mirroring
// isa.Exec's semantics (including trap-free div/rem and wrapping
// shifts).
func (r *Result) step(st *state, in isa.Inst, pc uint64, f *facts) {
	a := st.get(in.Rs1)
	b := st.get(in.Rs2)
	imm := Const(in.Imm)
	switch in.Op {
	case isa.OpAdd:
		st.set(in.Rd, addVal(a, b))
	case isa.OpSub:
		st.set(in.Rd, subVal(a, b))
	case isa.OpMul:
		st.set(in.Rd, mulVal(a, b))
	case isa.OpDiv:
		if f != nil {
			f.divs = append(f.divs, DivSite{PC: pc, Op: in.Op, Divisor: b})
		}
		st.set(in.Rd, divVal(a, b))
	case isa.OpRem:
		if f != nil {
			f.divs = append(f.divs, DivSite{PC: pc, Op: in.Op, Divisor: b})
		}
		st.set(in.Rd, remVal(a, b))
	case isa.OpAnd:
		st.set(in.Rd, andVal(a, b))
	case isa.OpOr:
		st.set(in.Rd, orVal(a, b))
	case isa.OpXor:
		st.set(in.Rd, xorVal(a, b))
	case isa.OpSll:
		st.set(in.Rd, sllVal(a, b))
	case isa.OpSrl:
		st.set(in.Rd, srlVal(a, b))
	case isa.OpSra:
		st.set(in.Rd, sraVal(a, b))
	case isa.OpSlt:
		st.set(in.Rd, sltVal(a, b))
	case isa.OpSltu:
		st.set(in.Rd, sltuVal(a, b))

	case isa.OpAddi:
		st.set(in.Rd, addVal(a, imm))
	case isa.OpAndi:
		st.set(in.Rd, andVal(a, imm))
	case isa.OpOri:
		st.set(in.Rd, orVal(a, imm))
	case isa.OpXori:
		st.set(in.Rd, xorVal(a, imm))
	case isa.OpSlli:
		st.set(in.Rd, sllVal(a, imm))
	case isa.OpSrli:
		st.set(in.Rd, srlVal(a, imm))
	case isa.OpSrai:
		st.set(in.Rd, sraVal(a, imm))
	case isa.OpSlti:
		st.set(in.Rd, sltVal(a, imm))
	case isa.OpLui:
		st.set(in.Rd, Const(int64(uint64(in.Imm)<<32)))

	case isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv, isa.OpFmin, isa.OpFmax:
		st.set(in.Rd, Top(maxDep(a.Dep, b.Dep)))
	case isa.OpFsqrt, isa.OpFneg, isa.OpFabs, isa.OpFcvt, isa.OpFcvti:
		st.set(in.Rd, Top(a.Dep))
	case isa.OpFlt, isa.OpFle, isa.OpFeq:
		st.set(in.Rd, boolInterval(maxDep(a.Dep, b.Dep)))

	case isa.OpLd:
		addr := addVal(a, imm)
		classes, unbounded := r.classesOf(addr)
		dep := addr.Dep
		if unbounded {
			if r.anyVarying {
				dep = DepThread
			}
		} else {
			for _, c := range classes {
				if r.VaryingClass[c] {
					dep = DepThread
					break
				}
			}
		}
		val := Top(dep)
		st.set(in.Rd, val)
		if f != nil {
			f.accesses = append(f.accesses, Access{
				PC: pc, Addr: addr, Unbounded: unbounded, Classes: classes, Val: val,
			})
		}
	case isa.OpSt:
		addr := addVal(a, imm)
		classes, unbounded := r.classesOf(addr)
		if addr.Dep == DepThread || b.Dep == DepThread {
			r.markVarying(classes, unbounded)
		}
		if f != nil {
			f.accesses = append(f.accesses, Access{
				PC: pc, Store: true, Addr: addr, Unbounded: unbounded, Classes: classes, Val: b,
			})
		}

	case isa.OpJal, isa.OpJalr:
		st.set(in.Rd, Const(int64(pc+isa.InstBytes)))

	case isa.OpTid:
		t := r.Opts.threads()
		if t > 1 {
			st.set(in.Rd, Range(0, int64(t-1), 1, DepThread))
		} else {
			st.set(in.Rd, Const(0))
		}

	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltu, isa.OpBgeu:
		if f != nil {
			f.branches = append(f.branches, r.branchFact(st, in, pc))
		}
	case isa.OpNop, isa.OpHalt:
		// no register effect
	}
}

// branchFact evaluates the feasibility and dependence of one branch.
func (r *Result) branchFact(st *state, in isa.Inst, pc uint64) BranchFact {
	a := st.get(in.Rs1)
	b := st.get(in.Rs2)
	bf := BranchFact{
		PC: pc, Op: in.Op, Dep: maxDep(a.Dep, b.Dep),
		TakenPC: uint64(in.Imm), FallPC: pc + isa.InstBytes,
	}
	self := in.Rs1 == in.Rs2
	eqPossible := func() bool {
		if self {
			return true
		}
		_, ok1 := a.meetBounds(b.Lo, b.Hi)
		_, ok2 := b.meetBounds(a.Lo, a.Hi)
		return ok1 && ok2
	}
	nePossible := func() bool {
		if self {
			return false
		}
		ca, oka := a.IsConst()
		cb, okb := b.IsConst()
		return !(oka && okb && ca == cb)
	}
	ltPossible := func() bool { return !self && a.Lo < b.Hi }
	gePossible := func() bool { return self || a.Hi >= b.Lo }
	sameSign := (a.Lo >= 0 && b.Lo >= 0) || (a.Hi < 0 && b.Hi < 0)
	switch in.Op {
	case isa.OpBeq:
		bf.CanTake, bf.CanFall = eqPossible(), nePossible()
	case isa.OpBne:
		bf.CanTake, bf.CanFall = nePossible(), eqPossible()
	case isa.OpBlt:
		bf.CanTake, bf.CanFall = ltPossible(), gePossible()
	case isa.OpBge:
		bf.CanTake, bf.CanFall = gePossible(), ltPossible()
	case isa.OpBltu:
		if self {
			bf.CanTake, bf.CanFall = false, true
		} else if sameSign {
			bf.CanTake, bf.CanFall = ltPossible(), gePossible()
		} else {
			bf.CanTake, bf.CanFall = true, true
		}
	case isa.OpBgeu:
		if self {
			bf.CanTake, bf.CanFall = true, false
		} else if sameSign {
			bf.CanTake, bf.CanFall = gePossible(), ltPossible()
		} else {
			bf.CanTake, bf.CanFall = true, true
		}
	}
	return bf
}

// refineBranch returns st narrowed by the branch outcome (taken or
// fall-through). ok=false means the outcome is infeasible under st.
func refineBranch(st *state, in isa.Inst, taken bool) (state, bool) {
	out := *st
	a := st.get(in.Rs1)
	b := st.get(in.Rs2)
	self := in.Rs1 == in.Rs2

	// Normalize to one of four predicates over (a, b).
	type pred uint8
	const (
		pEq pred = iota
		pNe
		pLt // signed a < b
		pGe // signed a >= b
		pNone
	)
	p := pNone
	switch in.Op {
	case isa.OpBeq:
		if taken {
			p = pEq
		} else {
			p = pNe
		}
	case isa.OpBne:
		if taken {
			p = pNe
		} else {
			p = pEq
		}
	case isa.OpBlt, isa.OpBltu:
		if taken {
			p = pLt
		} else {
			p = pGe
		}
	case isa.OpBge, isa.OpBgeu:
		if taken {
			p = pGe
		} else {
			p = pLt
		}
	}
	unsigned := in.Op == isa.OpBltu || in.Op == isa.OpBgeu
	if unsigned && (p == pLt || p == pGe) {
		if self {
			// a < a is false, a >= a is true.
			return out, p == pGe
		}
		// Unsigned order only matches the signed domain when both
		// operands share a sign-bit state; otherwise skip refinement.
		if !((a.Lo >= 0 && b.Lo >= 0) || (a.Hi < 0 && b.Hi < 0)) {
			return out, true
		}
	}

	switch p {
	case pEq:
		if self {
			return out, true
		}
		na, ok1 := a.meetBounds(b.Lo, b.Hi)
		nb, ok2 := b.meetBounds(a.Lo, a.Hi)
		if !ok1 || !ok2 {
			return out, false
		}
		out.set(in.Rs1, na)
		out.set(in.Rs2, nb)
	case pNe:
		if self {
			return out, false
		}
		if ca, ok := a.IsConst(); ok {
			if cb, ok2 := b.IsConst(); ok2 && ca == cb {
				return out, false
			}
		}
		// Trim an endpoint when the other side is a constant.
		if c, ok := b.IsConst(); ok {
			if na, ok2 := trimNe(a, c); ok2 {
				out.set(in.Rs1, na)
			} else {
				return out, false
			}
		}
		if c, ok := a.IsConst(); ok {
			if nb, ok2 := trimNe(b, c); ok2 {
				out.set(in.Rs2, nb)
			} else {
				return out, false
			}
		}
	case pLt:
		if self {
			return out, false
		}
		if b.Hi == math.MinInt64 || a.Lo == math.MaxInt64 {
			return out, false // a < b needs some b above some a
		}
		na, ok1 := a.meetBounds(math.MinInt64, b.Hi-1)
		nb, ok2 := b.meetBounds(a.Lo+1, math.MaxInt64)
		if !ok1 || !ok2 {
			return out, false
		}
		out.set(in.Rs1, na)
		out.set(in.Rs2, nb)
	case pGe:
		if self {
			return out, true
		}
		na, ok1 := a.meetBounds(b.Lo, math.MaxInt64)
		nb, ok2 := b.meetBounds(math.MinInt64, a.Hi)
		if !ok1 || !ok2 {
			return out, false
		}
		out.set(in.Rs1, na)
		out.set(in.Rs2, nb)
	}
	return out, true
}

// trimNe removes constant c from v when it sits on an endpoint.
func trimNe(v AbsVal, c int64) (AbsVal, bool) {
	if lo, hi := v.Lo, v.Hi; lo == hi {
		if lo == c {
			return AbsVal{}, false
		}
		return v, true
	}
	if v.Lo == c && c != math.MaxInt64 {
		return v.meetBounds(c+1, v.Hi)
	}
	if v.Hi == c && c != math.MinInt64 {
		return v.meetBounds(v.Lo, c-1)
	}
	return v, true
}

// propagateOut pushes block b's out-state along its CFG edges.
func (r *Result) propagateOut(b int, st *state, visits []int, dirty []bool) {
	a := r.A
	blk := &a.Blocks[b]
	last := a.Prog.Insts[blk.First+blk.N-1]
	switch blk.Term {
	case static.TermBranch:
		fall := -1
		if b+1 < len(a.Blocks) {
			fall = b + 1
		}
		taken := -1
		if tgt, ok := last.ControlTarget(); ok {
			taken = a.BlockAt(tgt)
		}
		// A branch whose target is its own fall-through has one successor;
		// either refinement result may reach it.
		for _, edge := range []struct {
			to      int
			isTaken bool
		}{{fall, false}, {taken, true}} {
			if edge.to < 0 {
				continue
			}
			if ns, ok := refineBranch(st, last, edge.isTaken); ok {
				r.propagate(edge.to, &ns, visits, dirty)
			}
		}
	case static.TermJump, static.TermFall:
		for _, s := range blk.Succs {
			r.propagate(s, st, visits, dirty)
		}
	case static.TermCall:
		// Intraprocedural: the callee clobbers everything; its own root
		// state is seeded in fixpoint().
		clobbered := topState()
		for _, s := range blk.Succs {
			r.propagate(s, &clobbered, visits, dirty)
		}
	}
}

func (r *Result) propagate(to int, st *state, visits []int, dirty []bool) {
	if !st.ok {
		return
	}
	cur := &r.in[to]
	if !cur.ok {
		r.in[to] = *st
		dirty[to] = true
		return
	}
	joined := joinState(cur, st)
	visits[to]++
	if visits[to] > widenAfter {
		joined = widenState(cur, &joined)
	}
	if !stateEq(cur, &joined) {
		r.in[to] = joined
		dirty[to] = true
	}
}

// collectFacts runs the recording pass over every reached block and
// sorts the site tables into PC order.
func (r *Result) collectFacts() {
	var f facts
	for b := range r.A.Blocks {
		if b >= len(r.in) || !r.in[b].ok {
			continue
		}
		st := r.in[b]
		r.execBlock(b, &st, &f)
	}
	sort.Slice(f.accesses, func(i, j int) bool { return f.accesses[i].PC < f.accesses[j].PC })
	sort.Slice(f.branches, func(i, j int) bool { return f.branches[i].PC < f.branches[j].PC })
	sort.Slice(f.divs, func(i, j int) bool { return f.divs[i].PC < f.divs[j].PC })
	r.Accesses = f.accesses
	r.Branches = f.branches
	r.Divs = f.divs
}

// walkBlock replays block b from its fixpoint entry state, calling
// visit with the state *before* each instruction. Used by the lints.
func (r *Result) walkBlock(b int, visit func(pc uint64, in isa.Inst, st *state)) {
	if b >= len(r.in) || !r.in[b].ok {
		return
	}
	st := r.in[b]
	blk := &r.A.Blocks[b]
	for i := 0; i < blk.N; i++ {
		in := r.A.Prog.Insts[blk.First+i]
		if !in.Op.Valid() {
			return
		}
		pc := blk.Start + uint64(i)*isa.InstBytes
		visit(pc, in, &st)
		r.step(&st, in, pc, nil)
	}
}
