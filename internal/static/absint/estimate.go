package absint

import (
	"math"
	"sort"

	"mmt/internal/isa"
	"mmt/internal/static"
)

// Trip handling for the frequency model: unknown bounds get a default,
// everything is capped so one hot inner loop cannot drown the profile.
const (
	defaultTrip = 16
	maxTrip     = 4096
)

// DivergenceSite is one predicted divergence point: a feasible
// conditional branch whose condition is thread-dependent, annotated with
// the structural reconvergence distance (PR 5's post-dominator span) and
// the estimated execution frequency.
type DivergenceSite struct {
	BranchPC uint64 `json:"branch_pc"`
	ReconvPC uint64 `json:"reconv_pc,omitempty"`
	// SpanInsts is the instruction distance from branch to join (absolute
	// value of the report's span; 0 when no reconvergence point exists).
	SpanInsts int64 `json:"span_insts"`
	// Freq is the site's estimated executions per program run.
	Freq float64 `json:"freq"`
}

// Estimate is the static cost model of one workload: how much of its
// dynamic instruction stream the analysis predicts MMT can merge, and
// where it diverges. Score turns an Estimate into a relative rank for a
// concrete configuration.
type Estimate struct {
	App string `json:"app,omitempty"`
	// StaticInsts counts reachable instructions; DynInsts is the
	// frequency-weighted dynamic estimate.
	StaticInsts int     `json:"static_insts"`
	DynInsts    float64 `json:"dyn_insts"`
	// Redundancy is the predicted merged-commit fraction with an
	// unbounded FHB: the probability-weighted share of dynamic
	// instructions whose inputs are thread-invariant.
	Redundancy float64 `json:"redundancy"`
	// LVIPPotential is the dynamic fraction of loads with a uniform
	// address into thread-varying memory — exactly the accesses the load
	// value identity predictor can still merge when values happen to
	// match.
	LVIPPotential float64 `json:"lvip_potential"`
	// LVIPLoadPCs counts the distinct static load sites behind
	// LVIPPotential (how many predictor entries the workload wants).
	LVIPLoadPCs int `json:"lvip_load_pcs"`
	// Divergence lists the predicted divergence sites, by branch PC.
	Divergence []DivergenceSite `json:"divergence"`

	// perPC is the per-instruction predicted merged probability,
	// PC-ascending (kept out of the JSON surface; the crossval join and
	// the profile correlation use it).
	perPC []pcProb
}

type pcProb struct {
	pc     uint64
	merged float64
	freq   float64
}

// divergeProb is the assumed probability that one execution of a
// thread-dependent branch actually splits the thread group.
const divergeProb = 0.5

// EstimateOf condenses an interpretation result into the cost model.
func EstimateOf(r *Result) *Estimate {
	a := r.A
	e := &Estimate{App: a.Prog.Name}

	freq := blockFreqs(r)

	// Reconvergence spans from the structural report.
	spans := map[uint64]static.ReconvEntry{}
	for _, entry := range a.BuildReport().Reconv {
		spans[entry.BranchPC] = entry
	}

	// Divergence shadows: blocks on the diverged paths of each
	// thread-dependent branch (to its reconvergence block) see their
	// merge probability scaled by divergeProb.
	shadow := make([]float64, len(a.Blocks))
	for i := range shadow {
		shadow[i] = 1.0
	}
	for _, bf := range r.Branches {
		if bf.Dep != DepThread || !bf.CanTake || !bf.CanFall {
			continue
		}
		b := a.BlockAt(bf.PC)
		if b < 0 {
			continue
		}
		stop := -1
		if rc, ok := a.Reconv[bf.PC]; ok {
			stop = a.BlockAt(rc)
		}
		for _, sb := range shadowBlocks(a, b, stop) {
			shadow[sb] *= 1 - divergeProb
		}
	}

	// Per-instruction classification pass.
	var totalW, mergedW, lvipW float64
	lvipPCs := map[uint64]bool{}
	accessAt := map[uint64]*Access{}
	for i := range r.Accesses {
		accessAt[r.Accesses[i].PC] = &r.Accesses[i]
	}
	for b := range a.Blocks {
		if !a.Reachable[b] {
			continue
		}
		f := freq[b]
		if f <= 0 {
			continue
		}
		sh := shadow[b]
		r.walkBlock(b, func(pc uint64, in isa.Inst, st *state) {
			e.StaticInsts++
			base, lvip := mergedBase(r, in, st, accessAt[pc])
			p := base * sh
			totalW += f
			mergedW += f * p
			if lvip {
				lvipW += f * sh
				lvipPCs[pc] = true
			}
			e.perPC = append(e.perPC, pcProb{pc: pc, merged: p, freq: f})
		})
	}
	e.DynInsts = totalW
	if totalW > 0 {
		e.Redundancy = mergedW / totalW
		e.LVIPPotential = lvipW / totalW
	}
	e.LVIPLoadPCs = len(lvipPCs)

	// Divergence profile.
	for _, bf := range r.Branches {
		if bf.Dep != DepThread || !bf.CanTake || !bf.CanFall {
			continue
		}
		b := a.BlockAt(bf.PC)
		if b < 0 || freq[b] <= 0 {
			continue
		}
		site := DivergenceSite{BranchPC: bf.PC, Freq: freq[b]}
		if entry, ok := spans[bf.PC]; ok {
			site.ReconvPC = entry.ReconvPC
			site.SpanInsts = entry.Span
			if site.SpanInsts < 0 {
				site.SpanInsts = -site.SpanInsts
			}
		}
		e.Divergence = append(e.Divergence, site)
	}
	sort.Slice(e.Divergence, func(i, j int) bool { return e.Divergence[i].BranchPC < e.Divergence[j].BranchPC })
	sort.Slice(e.perPC, func(i, j int) bool { return e.perPC[i].pc < e.perPC[j].pc })
	return e
}

// mergedBase classifies one instruction: 1 when every input is
// thread-invariant (MMT commits it merged), else 0. lvip marks the
// uniform-address/varying-value loads the LVIP can still rescue.
func mergedBase(r *Result, in isa.Inst, st *state, acc *Access) (base float64, lvip bool) {
	if in.Op == isa.OpTid && r.Opts.threads() > 1 {
		return 0, false
	}
	if in.Op == isa.OpLd && acc != nil {
		if acc.Addr.Dep == DepThread {
			return 0, false
		}
		if acc.Val.Dep == DepThread {
			// Uniform address, varying contents: split unless the LVIP
			// verifies matching values.
			return 0, true
		}
		return 1, false
	}
	srcs, n := in.Sources()
	for i := 0; i < n; i++ {
		if st.get(srcs[i]).Dep == DepThread {
			return 0, false
		}
	}
	return 1, false
}

// shadowBlocks returns the blocks reachable from branch block b without
// passing through the reconvergence block stop (the diverged region).
func shadowBlocks(a *static.Analysis, b, stop int) []int {
	seen := make([]bool, len(a.Blocks))
	var out []int
	var stack []int
	for _, s := range a.Blocks[b].Succs {
		if s != stop && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		for _, s := range a.Blocks[x].Succs {
			if s != stop && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	sort.Ints(out)
	return out
}

// blockFreqs estimates per-block execution counts: single-pass
// propagation over the acyclic CFG (back edges removed), 50/50 branch
// splits unless feasibility proves a side dead, then multiplication by
// the loop trip counts of every containing loop.
func blockFreqs(r *Result) []float64 {
	a := r.A
	n := len(a.Blocks)
	freq := make([]float64, n)
	if n == 0 {
		return freq
	}

	dominates := func(v, u int) bool {
		for x := u; x >= 0; x = a.IDom[x] {
			if x == v {
				return true
			}
		}
		return false
	}
	isBack := func(from, to int) bool { return dominates(to, from) }

	// Kahn topological order of the forward edges.
	indeg := make([]int, n)
	for b := 0; b < n; b++ {
		for _, s := range a.Blocks[b].Succs {
			if !isBack(b, s) {
				indeg[s]++
			}
		}
		if c := a.Blocks[b].Callee; c >= 0 && !isBack(b, c) {
			indeg[c]++
		}
	}
	if a.Entry >= 0 {
		freq[a.Entry] = 1
	}
	var queue []int
	for b := 0; b < n; b++ {
		if indeg[b] == 0 {
			queue = append(queue, b)
		}
	}
	branchAt := map[uint64]BranchFact{}
	for _, bf := range r.Branches {
		branchAt[bf.PC] = bf
	}
	for len(queue) > 0 {
		sort.Ints(queue) // deterministic processing order
		b := queue[0]
		queue = queue[1:]
		f := freq[b]
		blk := &a.Blocks[b]
		push := func(s int, w float64) {
			if isBack(b, s) {
				return
			}
			freq[s] += f * w
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
		switch blk.Term {
		case static.TermBranch:
			pTaken := 0.5
			if bf, ok := branchAt[blk.TermPC]; ok {
				switch {
				case !bf.CanFall && bf.CanTake:
					pTaken = 1
				case !bf.CanTake && bf.CanFall:
					pTaken = 0
				}
			}
			fall := -1
			if b+1 < n {
				fall = b + 1
			}
			taken := -1
			if tgt, ok := a.Prog.Insts[blk.First+blk.N-1].ControlTarget(); ok {
				taken = a.BlockAt(tgt)
			}
			if taken == fall {
				if fall >= 0 {
					push(fall, 1)
				}
			} else {
				if fall >= 0 {
					push(fall, 1-pTaken)
				}
				if taken >= 0 {
					push(taken, pTaken)
				}
			}
		default:
			for _, s := range blk.Succs {
				push(s, 1)
			}
			if c := blk.Callee; c >= 0 {
				push(c, 1)
			}
		}
	}

	// Loop multipliers.
	for i, lb := range r.Loops {
		trip := lb.Trip
		if trip <= 0 {
			trip = defaultTrip
		}
		if trip > maxTrip {
			trip = maxTrip
		}
		for b := range r.loopBodies[i] {
			freq[b] *= float64(trip)
		}
	}
	for b := 0; b < n; b++ {
		if !a.Reachable[b] {
			freq[b] = 0
		} else if freq[b] == 0 {
			// Reachable but missed by the DAG pass (e.g. entered only via a
			// back edge from an irreducible region): count it once.
			freq[b] = 1
		}
	}
	return freq
}

// Score ranks one configuration for this workload: a relative
// throughput score (higher is better) and a relative energy cost
// (lower is better). The throughput score combines a fetch-bandwidth
// term (wider fetch feeds the backend faster, log2 for diminishing
// returns) with the predicted merged fraction the configuration can
// actually bank: divergence sites whose reconvergence span overflows
// the FHB forfeit their shadowed redundancy, and LVIP recovery scales
// with predictor capacity. Without the bandwidth term the merge terms
// saturate on short-span kernels and the energy tiebreak would rank
// narrow-fetch machines first — backwards, since real IPC rises with
// width. These are ordering signals for the DSE ranker, not absolute
// IPC or joules.
func (e *Estimate) Score(fhbSize, fetchWidth, lvipSize int) (throughput, energy float64) {
	if fhbSize <= 0 {
		fhbSize = 32 // Table 4 defaults when the dimension is not swept
	}
	if fetchWidth <= 0 {
		fetchWidth = 8
	}
	if lvipSize <= 0 {
		lvipSize = 4096
	}
	cover := 1.0
	var totalF, coveredF float64
	for _, d := range e.Divergence {
		totalF += d.Freq
		blocks := (d.SpanInsts + int64(fetchWidth) - 1) / int64(fetchWidth)
		if d.SpanInsts > 0 && blocks <= int64(fhbSize) {
			coveredF += d.Freq
		}
	}
	if totalF > 0 {
		cover = coveredF / totalF
	}
	lvipFrac := 1.0
	if need := e.LVIPLoadPCs * 64; need > 0 && lvipSize < need {
		lvipFrac = float64(lvipSize) / float64(need)
	}
	throughput = 0.25*math.Log2(float64(fetchWidth)) +
		e.Redundancy*cover + divergeProb*e.LVIPPotential*lvipFrac
	// Relative structure cost: FHB entries store fetch blocks, the LVIP
	// stores value/PC pairs. log2 keeps doublings comparable.
	energy = math.Log2(float64(fhbSize*fetchWidth)) + 0.25*math.Log2(float64(lvipSize))
	return throughput, energy
}
