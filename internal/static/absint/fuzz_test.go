package absint

import (
	"encoding/binary"
	"testing"

	"mmt/internal/isa"
	"mmt/internal/prog"
	"mmt/internal/static"
)

// decodeFuzzProgram turns arbitrary bytes into a program: 12 bytes per
// instruction (opcode, three register fields, 8-byte immediate). The cap
// is tighter than the CFG fuzzer's — the interpreter runs every block to
// fixpoint, which is superlinear in pathological back-edge tangles.
func decodeFuzzProgram(data []byte) *prog.Program {
	const perInst = 12
	n := len(data) / perInst
	if n > 256 {
		n = 256
	}
	insts := make([]isa.Inst, n)
	for i := 0; i < n; i++ {
		d := data[i*perInst:]
		insts[i] = isa.Inst{
			Op:  isa.Op(d[0]),
			Rd:  d[1] % isa.NumRegs,
			Rs1: d[2] % isa.NumRegs,
			Rs2: d[3] % isa.NumRegs,
			Imm: int64(binary.LittleEndian.Uint64(d[4:12])),
		}
	}
	return &prog.Program{Name: "fuzz", Entry: prog.CodeBase, Base: prog.CodeBase, Insts: insts}
}

// mapMem is a sparse concrete memory for the oracle interpreter: wild
// fuzzer addresses must not allocate page structures.
type mapMem map[uint64]uint64

func (m mapMem) Read64(addr uint64) uint64 { return m[addr] }
func (m mapMem) Write64(addr, val uint64)  { m[addr] = val }

// concreteRun executes the program with isa.Exec from the entry and
// checks, at every basic-block boundary the engine reached, that each
// concrete register value lies inside the abstract one. The run stops at
// the first halt, invalid opcode, jalr (the engine treats returns and
// indirect jumps as exit edges, so paths beyond them are unmodeled), or
// out-of-text PC.
func concreteRun(t *testing.T, r *Result, ctx uint8, maxSteps int) {
	t.Helper()
	p := r.A.Prog
	st := &isa.State{PC: p.Entry, CtxID: ctx}
	st.Reg[isa.RegSP] = prog.StackTop
	mem := mapMem{}
	for step := 0; step < maxSteps && !st.Halted; step++ {
		if st.PC < p.Base || (st.PC-p.Base)%isa.InstBytes != 0 {
			return
		}
		idx := (st.PC - p.Base) / isa.InstBytes
		if idx >= uint64(len(p.Insts)) {
			return
		}
		if regs, ok := r.EntryState(st.PC); ok {
			for ri := range regs {
				if !regs[ri].Contains(int64(st.Reg[ri])) {
					t.Fatalf("ctx %d pc %#x step %d: r%d = %#x (%d) outside abstract %v",
						ctx, st.PC, step, ri, st.Reg[ri], int64(st.Reg[ri]), regs[ri])
				}
			}
		}
		in := p.Insts[idx]
		if in.Op == isa.OpJalr {
			return
		}
		if _, err := isa.Exec(in, st, mem); err != nil {
			return
		}
	}
}

// FuzzRunSound: the interpreter must reach fixpoint without panicking on
// arbitrary instruction streams, and the fixpoint must be sound — a
// concrete execution (per hardware context) never produces a register
// value outside the abstract state at a block entry the engine analyzed.
func FuzzRunSound(f *testing.F) {
	enc := func(insts ...isa.Inst) []byte {
		out := make([]byte, 0, 12*len(insts))
		for _, in := range insts {
			var d [12]byte
			d[0], d[1], d[2], d[3] = byte(in.Op), in.Rd, in.Rs1, in.Rs2
			binary.LittleEndian.PutUint64(d[4:], uint64(in.Imm))
			out = append(out, d[:]...)
		}
		return out
	}
	f.Add([]byte{})
	// tid-dependent branch with a reconvergent diamond.
	f.Add(enc(
		isa.Inst{Op: isa.OpTid, Rd: 4},
		isa.Inst{Op: isa.OpBeq, Rs1: 4, Rs2: 0, Imm: int64(prog.CodeBase + 4*isa.InstBytes)},
		isa.Inst{Op: isa.OpAddi, Rd: 5, Rs1: 0, Imm: 7},
		isa.Inst{Op: isa.OpNop},
		isa.Inst{Op: isa.OpHalt},
	))
	// Counted loop with an induction variable.
	f.Add(enc(
		isa.Inst{Op: isa.OpAddi, Rd: 4, Rs1: 0, Imm: 0},
		isa.Inst{Op: isa.OpAddi, Rd: 4, Rs1: 4, Imm: 1},
		isa.Inst{Op: isa.OpSlti, Rd: 5, Rs1: 4, Imm: 8},
		isa.Inst{Op: isa.OpBne, Rs1: 5, Rs2: 0, Imm: int64(prog.CodeBase + isa.InstBytes)},
		isa.Inst{Op: isa.OpHalt},
	))
	// Division by a register that may be zero, then by a constant zero.
	f.Add(enc(
		isa.Inst{Op: isa.OpTid, Rd: 4},
		isa.Inst{Op: isa.OpAddi, Rd: 5, Rs1: 0, Imm: 100},
		isa.Inst{Op: isa.OpDiv, Rd: 6, Rs1: 5, Rs2: 4},
		isa.Inst{Op: isa.OpDiv, Rd: 7, Rs1: 5, Rs2: 0},
		isa.Inst{Op: isa.OpHalt},
	))
	// Store then load through the stack pointer.
	f.Add(enc(
		isa.Inst{Op: isa.OpAddi, Rd: 4, Rs1: 0, Imm: 42},
		isa.Inst{Op: isa.OpSt, Rs1: isa.RegSP, Rs2: 4, Imm: -8},
		isa.Inst{Op: isa.OpLd, Rd: 5, Rs1: isa.RegSP, Imm: -8},
		isa.Inst{Op: isa.OpHalt},
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeFuzzProgram(data)
		a := static.Analyze(p)
		r := Run(a, Options{})

		// Site tables come out PC-sorted.
		for i := 1; i < len(r.Accesses); i++ {
			if r.Accesses[i-1].PC > r.Accesses[i].PC {
				t.Fatalf("accesses unsorted at %d", i)
			}
		}
		for i := 1; i < len(r.Branches); i++ {
			if r.Branches[i-1].PC > r.Branches[i].PC {
				t.Fatalf("branches unsorted at %d", i)
			}
		}
		if len(r.Loops) != len(a.Loops) {
			t.Fatalf("Loops = %d entries, want %d (parallel to A.Loops)", len(r.Loops), len(a.Loops))
		}
		// The cost model and the lints must also survive any fixpoint.
		e := EstimateOf(r)
		if e.Redundancy < 0 || e.Redundancy > 1 || e.LVIPPotential < 0 || e.LVIPPotential > 1 {
			t.Fatalf("estimate out of range: %+v", e)
		}
		Lint(r)

		// Soundness against the functional oracle, one run per context.
		for ctx := uint8(0); ctx < 2; ctx++ {
			concreteRun(t, r, ctx, 1500)
		}
	})
}
