package absint

import (
	"fmt"
	"math"
	"sort"

	"mmt/internal/isa"
	"mmt/internal/prog"
	"mmt/internal/static"
)

// Lint codes produced by the abstract-interpretation checks, extending
// the static package's structural codes.
const (
	// CodeOOBAccess: a load/store whose abstract address set lies entirely
	// outside the mapped data space [DataBase, StackTop).
	CodeOOBAccess = "oob-access"
	// CodeDeadStore: a store definitely overwritten by a later store to
	// the same address with no possible intervening read.
	CodeDeadStore = "dead-store"
	// CodeUnboundedLoop: a natural loop with no exit path (error) or one
	// whose trip count the induction analysis cannot bound (info).
	CodeUnboundedLoop = "unbounded-loop"
	// CodeDivByZero: a div/rem whose abstract divisor is exactly zero
	// (error) or an interval containing zero (info).
	CodeDivByZero = "div-by-zero"
)

// Lint derives findings from a finished interpretation: value-set
// out-of-bounds accesses, statically-dead stores, loops that cannot
// terminate or cannot be bounded, and divisions by (possibly) zero.
// Findings come back sorted by PC then code, matching the static
// package's convention.
func Lint(r *Result) []static.Finding {
	var out []static.Finding
	out = append(out, lintOOB(r)...)
	out = append(out, lintDeadStores(r)...)
	out = append(out, lintLoops(r)...)
	out = append(out, lintDivZero(r)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Code < out[j].Code
	})
	return out
}

// LintProgram is the convenience entry: analyze, interpret with default
// options, lint.
func LintProgram(p *prog.Program) []static.Finding {
	return Lint(Run(static.Analyze(p), Options{}))
}

// lintOOB flags accesses whose entire address interval misses the mapped
// data space. Intervals touching the space (or too wide to bound) pass:
// value-set analysis over-approximates, so only a certain miss is a
// finding.
func lintOOB(r *Result) []static.Finding {
	var out []static.Finding
	for _, acc := range r.Accesses {
		a := acc.Addr
		if a.Lo == math.MinInt64 || a.Hi == math.MaxInt64 {
			continue // unbounded: not a provable miss
		}
		oob := false
		switch {
		case a.Hi < 0:
			oob = true // the whole interval is above the address space
		case a.Lo >= 0 && (uint64(a.Hi)+8 <= prog.DataBase || uint64(a.Lo) >= prog.StackTop):
			oob = true
		}
		if !oob {
			continue
		}
		kind := "load"
		if acc.Store {
			kind = "store"
		}
		out = append(out, static.Finding{
			Sev: static.SevError, Code: CodeOOBAccess, PC: acc.PC,
			Msg: fmt.Sprintf("%s address %s is entirely outside the data space [%#x, %#x)",
				kind, a, prog.DataBase, prog.StackTop),
		})
	}
	return out
}

// lintDeadStores finds stores to an exactly-known address that a later
// store in the same block definitely overwrites, with no load in between
// that could observe the value. Block-local on purpose: across blocks a
// path might read the value.
func lintDeadStores(r *Result) []static.Finding {
	accessAt := map[uint64]*Access{}
	for i := range r.Accesses {
		accessAt[r.Accesses[i].PC] = &r.Accesses[i]
	}
	mayAlias := func(x, y *Access) bool {
		if x.Unbounded || y.Unbounded {
			return true
		}
		i, j := 0, 0
		for i < len(x.Classes) && j < len(y.Classes) {
			switch {
			case x.Classes[i] == y.Classes[j]:
				return true
			case x.Classes[i] < y.Classes[j]:
				i++
			default:
				j++
			}
		}
		return false
	}
	var out []static.Finding
	for b := range r.A.Blocks {
		if !r.A.Reachable[b] {
			continue
		}
		// pending maps an exact (8-byte aligned) address to the PC of the
		// last store to it that nothing has read yet.
		pending := map[uint64]uint64{}
		r.walkBlock(b, func(pc uint64, in isa.Inst, st *state) {
			acc := accessAt[pc]
			if acc == nil {
				return
			}
			if !acc.Store {
				// A load kills every pending store it may alias.
				for addr, spc := range pending {
					prev := accessAt[spc]
					if prev == nil || mayAlias(acc, prev) {
						delete(pending, addr)
					}
				}
				return
			}
			if c, ok := acc.Addr.IsConst(); ok && c >= 0 {
				addr := uint64(c) &^ 7
				if spc, dup := pending[addr]; dup {
					out = append(out, static.Finding{
						Sev: static.SevError, Code: CodeDeadStore, PC: spc,
						Msg: fmt.Sprintf("store to %#x is dead: overwritten at %#x before any load", addr, pc),
					})
				}
				pending[addr] = pc
			}
		})
	}
	return out
}

// lintLoops flags loops that provably cannot exit (error) and loops the
// bound inference cannot count (info — most data-dependent loops are
// fine, but the DSE cost model falls back to a default trip for them).
func lintLoops(r *Result) []static.Finding {
	var out []static.Finding
	for _, lb := range r.Loops {
		switch {
		case lb.Infinite:
			out = append(out, static.Finding{
				Sev: static.SevError, Code: CodeUnboundedLoop, PC: lb.HeadPC,
				Msg: fmt.Sprintf("loop with back edge at %#x has no exit path", lb.BackPC),
			})
		case lb.Trip == 0:
			out = append(out, static.Finding{
				Sev: static.SevInfo, Code: CodeUnboundedLoop, PC: lb.HeadPC,
				Msg: fmt.Sprintf("loop with back edge at %#x has no statically inferable bound", lb.BackPC),
			})
		}
	}
	return out
}

// lintDivZero flags div/rem sites by their abstract divisor: exactly
// zero is an error (the quotient is architecturally -1, never what the
// program meant); an interval straddling zero is informational.
func lintDivZero(r *Result) []static.Finding {
	var out []static.Finding
	for _, d := range r.Divs {
		if c, ok := d.Divisor.IsConst(); ok {
			if c == 0 {
				out = append(out, static.Finding{
					Sev: static.SevError, Code: CodeDivByZero, PC: d.PC,
					Msg: fmt.Sprintf("%s divisor is exactly zero", d.Op),
				})
			}
			continue
		}
		if d.Divisor.Contains(0) {
			out = append(out, static.Finding{
				Sev: static.SevInfo, Code: CodeDivByZero, PC: d.PC,
				Msg: fmt.Sprintf("%s divisor %s may be zero", d.Op, d.Divisor),
			})
		}
	}
	return out
}
