package absint

import (
	"mmt/internal/isa"
	"mmt/internal/static"
)

// inferLoopBounds derives trip counts for the natural loops the CFG
// analysis found. The inference pattern-matches the dominant kernel
// idiom — an induction register stepped by one addi per iteration,
// compared against a loop-invariant bound at the exit branch — and
// falls back to "unknown" (Trip == 0) for anything fancier. Loops whose
// bodies have no way out at all are flagged Infinite.
func (r *Result) inferLoopBounds() {
	a := r.A
	r.Loops = make([]LoopBound, len(a.Loops))
	r.loopBodies = make([]map[int]bool, len(a.Loops))
	for i, l := range a.Loops {
		lb := LoopBound{HeadPC: l.HeadPC, BackPC: l.BackPC}
		head := a.BlockAt(l.HeadPC)
		back := a.BlockAt(l.BackPC)
		body := loopBody(a, head, back)
		r.loopBodies[i] = body
		if body != nil {
			if !hasExit(a, body) {
				lb.Infinite = true
			} else {
				lb.Trip, lb.ExitPC = r.inferTrip(head, back, body)
			}
		}
		r.Loops[i] = lb
	}
}

// loopBody recomputes the natural-loop body of the back edge back->head
// (the header plus every block reaching the back block without passing
// through the header).
func loopBody(a *static.Analysis, head, back int) map[int]bool {
	if head < 0 || back < 0 {
		return nil
	}
	body := map[int]bool{head: true, back: true}
	var stack []int
	if back != head {
		stack = append(stack, back)
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range a.Blocks[x].Preds {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return body
}

// hasExit reports whether any body block can leave the loop: an edge to
// a block outside the body, or a terminator that exits the program.
func hasExit(a *static.Analysis, body map[int]bool) bool {
	for b := range body {
		blk := &a.Blocks[b]
		switch blk.Term {
		case static.TermRet, static.TermHalt, static.TermIndirect:
			return true
		}
		for _, s := range blk.Succs {
			if !body[s] {
				return true
			}
		}
	}
	return false
}

// inferTrip attempts the induction-variable bound inference. It returns
// (trip, exitBranchPC) on success, (0, 0) otherwise.
func (r *Result) inferTrip(head, back int, body map[int]bool) (int64, uint64) {
	a := r.A
	// The exit branch: prefer the back-edge block's terminator (do-while
	// shape), then the header's (while shape).
	for _, cand := range []int{back, head} {
		blk := &a.Blocks[cand]
		if blk.Term != static.TermBranch {
			continue
		}
		last := a.Prog.Insts[blk.First+blk.N-1]
		tgt, ok := last.ControlTarget()
		if !ok {
			continue
		}
		takenB := a.BlockAt(tgt)
		fallB := -1
		if cand+1 < len(a.Blocks) {
			fallB = cand + 1
		}
		takenIn := takenB >= 0 && body[takenB]
		fallIn := fallB >= 0 && body[fallB]
		if takenIn == fallIn {
			continue // both sides stay in (nested test) or both leave
		}
		if trip, ok := r.tripFromBranch(cand, last, takenIn, head, body); ok {
			return trip, blk.TermPC
		}
	}
	return 0, 0
}

// tripFromBranch solves the iteration count of the continue condition.
// contTaken says whether the taken side continues the loop.
func (r *Result) tripFromBranch(b int, br isa.Inst, contTaken bool, head int, body map[int]bool) (int64, bool) {
	a := r.A
	// State at the branch: replay the block.
	if b >= len(r.in) || !r.in[b].ok {
		return 0, false
	}
	st := r.in[b]
	blk := &a.Blocks[b]
	for i := 0; i < blk.N-1; i++ {
		in := a.Prog.Insts[blk.First+i]
		if !in.Op.Valid() {
			return 0, false
		}
		r.step(&st, in, blk.Start+uint64(i)*isa.InstBytes, nil)
	}

	// Identify the induction register (stepped by exactly one addi in the
	// body) and the invariant bound register (never written in the body).
	indReg, step, ok := inductionOf(a, body, br.Rs1)
	bndReg := br.Rs2
	swapped := false
	if !ok {
		indReg, step, ok = inductionOf(a, body, br.Rs2)
		bndReg = br.Rs1
		swapped = true
	}
	if !ok || writesIn(a, body, bndReg) {
		return 0, false
	}
	bound, isConst := st.get(bndReg).IsConst()
	if !isConst {
		return 0, false
	}

	// Initial induction value: the loop-entry state (header predecessors
	// outside the body).
	init, ok := r.entryConst(head, body, indReg)
	if !ok {
		return 0, false
	}

	// Normalize the continue condition to a predicate ind ? bound.
	// contTaken selects the branch predicate, otherwise its negation;
	// swapped means the induction sits in Rs2.
	type rel uint8
	const (
		rLt rel = iota // ind < bound continues
		rGe            // ind >= bound continues
		rNe            // ind != bound continues
		rBad
	)
	cond := rBad
	switch br.Op {
	case isa.OpBne:
		if contTaken {
			cond = rNe
		}
	case isa.OpBeq:
		if !contTaken {
			cond = rNe
		}
	case isa.OpBlt, isa.OpBltu:
		if br.Op == isa.OpBltu && (init < 0 || bound < 0) {
			break
		}
		if contTaken != swapped {
			cond = rLt // ind < bound (or bound > ind when swapped+fall)
		} else {
			cond = rGe
		}
		if swapped {
			// bound < ind continues (taken) -> ind > bound -> treat as
			// ind >= bound+1; approximate with rGe on adjusted bound.
			if contTaken {
				cond = rGe
				if bound == int64(^uint64(0)>>1) {
					return 0, false
				}
				bound++
			} else {
				// bound >= ind continues -> ind <= bound -> ind < bound+1
				cond = rLt
				if bound == int64(^uint64(0)>>1) {
					return 0, false
				}
				bound++
			}
		}
	case isa.OpBge, isa.OpBgeu:
		if br.Op == isa.OpBgeu && (init < 0 || bound < 0) {
			break
		}
		if contTaken != swapped {
			cond = rGe
		} else {
			cond = rLt
		}
		if swapped {
			if contTaken {
				// bound >= ind continues -> ind <= bound -> ind < bound+1
				cond = rLt
				if bound == int64(^uint64(0)>>1) {
					return 0, false
				}
				bound++
			} else {
				// bound < ind continues -> ind >= bound+1
				cond = rGe
				if bound == int64(^uint64(0)>>1) {
					return 0, false
				}
				bound++
			}
		}
	}
	if cond == rBad {
		return 0, false
	}

	var trip int64
	switch cond {
	case rLt: // runs while ind < bound, ind += step each iteration
		d, ok := subOv(bound, init)
		if step <= 0 || d <= 0 || !ok {
			return 0, false
		}
		trip = (d-1)/step + 1
	case rGe: // runs while ind >= bound, counting down
		d, ok := subOv(init, bound)
		if step >= 0 || step == -step || d < 0 || !ok {
			return 0, false // step == -step guards MinInt64 negation
		}
		trip = d/(-step) + 1
	case rNe: // runs until ind == bound exactly
		d, ok := subOv(bound, init)
		if step == 0 || !ok {
			return 0, false
		}
		if step > 0 && d > 0 && d%step == 0 {
			trip = d / step
		} else if step < 0 && d < 0 && d%step == 0 {
			trip = d / step
		} else {
			return 0, false
		}
	}
	if trip <= 0 {
		return 0, false
	}
	return trip, true
}

// inductionOf checks that reg is written exactly once in the body, by an
// addi reg, reg, step, and returns the step.
func inductionOf(a *static.Analysis, body map[int]bool, reg uint8) (uint8, int64, bool) {
	if reg == isa.RegZero {
		return 0, 0, false
	}
	var step int64
	writes := 0
	for b := range body {
		blk := &a.Blocks[b]
		for i := 0; i < blk.N; i++ {
			in := a.Prog.Insts[blk.First+i]
			if d, ok := in.Dest(); ok && d == reg {
				writes++
				if in.Op != isa.OpAddi || in.Rs1 != reg {
					return 0, 0, false
				}
				step = in.Imm
			}
		}
	}
	if writes != 1 {
		return 0, 0, false
	}
	return reg, step, true
}

// writesIn reports whether any body instruction writes reg.
func writesIn(a *static.Analysis, body map[int]bool, reg uint8) bool {
	for b := range body {
		blk := &a.Blocks[b]
		for i := 0; i < blk.N; i++ {
			if d, ok := a.Prog.Insts[blk.First+i].Dest(); ok && d == reg {
				return true
			}
		}
	}
	return false
}

// entryConst returns the constant value of reg on loop entry: the join
// of the out-states of the header's predecessors outside the body.
func (r *Result) entryConst(head int, body map[int]bool, reg uint8) (int64, bool) {
	a := r.A
	var v AbsVal
	seen := false
	for _, p := range a.Blocks[head].Preds {
		if body[p] || p >= len(r.in) || !r.in[p].ok {
			continue
		}
		st := r.in[p]
		r.execBlock(p, &st, nil)
		if !seen {
			v = st.get(reg)
			seen = true
		} else {
			v = join(v, st.get(reg))
		}
	}
	if !seen {
		return 0, false
	}
	return v.IsConst()
}
