package absint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mmt/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden estimate file")

// TestGoldenEstimates pins the cost model's per-kernel outputs: any
// change to the domain, the transfer functions, the region partition or
// the frequency model shows up as a diff here and must be committed
// deliberately (run with -update to regenerate).
func TestGoldenEstimates(t *testing.T) {
	var buf bytes.Buffer
	for _, a := range workloads.All() {
		e, err := EstimateApp(a, 2)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		fmt.Fprintf(&buf, "%s static=%d dyn=%.1f red=%.6f lvip=%.6f loads=%d divsites=%d\n",
			a.Name, e.StaticInsts, e.DynInsts, e.Redundancy, e.LVIPPotential,
			e.LVIPLoadPCs, len(e.Divergence))
	}
	path := filepath.Join("testdata", "estimates.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("estimates drifted from %s (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			path, buf.Bytes(), want)
	}
}
