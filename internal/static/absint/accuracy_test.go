package absint

import (
	"testing"

	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// minRankCorrelation is the committed accuracy floor of the static cost
// model: the Spearman rank correlation between predicted and simulated
// per-workload redundancy across the full kernel suite. The DSE ranker
// only needs ordering, so rank correlation (not absolute error) is the
// contract.
const minRankCorrelation = 0.5

// observedRedundancy simulates one workload on MMT-FXR and returns the
// committed merged fraction (executed-identical plus register-merged).
func observedRedundancy(t *testing.T, name string, maxInsts uint64) float64 {
	t.Helper()
	spec := sim.TaskSpec{App: name, Preset: sim.PresetMMTFXR, Threads: 2,
		Config: &sim.ConfigOverride{MaxInsts: maxInsts}}
	task, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	out, err := task.Execute()
	if err != nil {
		t.Fatal(err)
	}
	ei, eirm, _, _ := out.Result.Stats.IdenticalFractions()
	return ei + eirm
}

// TestRedundancyRankCorrelation is the acceptance gate: the static
// estimate must rank the 16 kernels' redundancy consistently with the
// simulator (Spearman >= minRankCorrelation).
func TestRedundancyRankCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	var pred, obs []float64
	for _, a := range workloads.All() {
		e, err := EstimateApp(a, 2)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		o := observedRedundancy(t, a.Name, 20_000)
		pred = append(pred, e.Redundancy)
		obs = append(obs, o)
		t.Logf("%-14s predicted=%.3f observed=%.3f", a.Name, e.Redundancy, o)
	}
	rho := Spearman(pred, obs)
	t.Logf("spearman over %d kernels: %.3f", len(pred), rho)
	if rho < minRankCorrelation {
		t.Fatalf("rank correlation %.3f below committed floor %.2f", rho, minRankCorrelation)
	}
}
