package absint

import (
	"testing"

	"mmt/internal/workloads"
)

// TestKernelsLintClean: the shipped kernels must stay below the CI
// fail-on threshold (no warnings or errors) under the new lints.
func TestKernelsLintClean(t *testing.T) {
	apps := append(workloads.All(), workloads.MP()...)
	for _, a := range apps {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			r, err := AnalyzeApp(a, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range Lint(r) {
				if f.Sev > 0 { // info findings are fine
					t.Errorf("%s", f)
				} else {
					t.Logf("%s", f)
				}
			}
		})
	}
}
