package absint

import (
	"math"
	"sort"

	"mmt/internal/prof"
)

// CrossPoint is one joined (static prediction, dynamic observation)
// sample: a PC the profiler attributed commits to, paired with the
// abstract interpreter's predicted merged probability at the same PC.
type CrossPoint struct {
	PC uint64 `json:"pc"`
	// Predicted is the static merged probability of the instruction.
	Predicted float64 `json:"predicted"`
	// Observed is the profiled merged-commit fraction
	// merged / (merged + split + solo) at the PC.
	Observed float64 `json:"observed"`
	// Commits weights the sample (total commits attributed to the PC).
	Commits uint64 `json:"commits"`
}

// CrossValidation is the joined static-vs-profile comparison of one
// workload run.
type CrossValidation struct {
	App string `json:"app,omitempty"`
	// Points is the per-PC join, PC ascending. Only PCs present in both
	// the estimate and the profile participate.
	Points []CrossPoint `json:"points"`
	// Spearman is the rank correlation of Predicted vs Observed over
	// Points (0 when fewer than 3 points or either side is constant).
	Spearman float64 `json:"spearman"`
	// PredictedRedundancy and ObservedRedundancy compare the headline
	// numbers: the static estimate's merged fraction vs the profile's
	// commit-weighted merged fraction over the joined PCs.
	PredictedRedundancy float64 `json:"predicted_redundancy"`
	ObservedRedundancy  float64 `json:"observed_redundancy"`
}

// CrossValidate joins a static estimate against a simulated profile.
func CrossValidate(e *Estimate, p *prof.Profile) *CrossValidation {
	cv := &CrossValidation{App: e.App, PredictedRedundancy: e.Redundancy}
	pred := map[uint64]float64{}
	for _, pp := range e.perPC {
		pred[pp.pc] = pp.merged
	}
	var obsW, totW float64
	for i := range p.Sites {
		s := &p.Sites[i]
		total := s.Merged + s.Split + s.Solo
		if total == 0 {
			continue
		}
		pr, ok := pred[s.PC]
		if !ok {
			continue
		}
		obs := float64(s.Merged) / float64(total)
		cv.Points = append(cv.Points, CrossPoint{PC: s.PC, Predicted: pr, Observed: obs, Commits: total})
		obsW += float64(s.Merged)
		totW += float64(total)
	}
	sort.Slice(cv.Points, func(i, j int) bool { return cv.Points[i].PC < cv.Points[j].PC })
	if totW > 0 {
		cv.ObservedRedundancy = obsW / totW
	}
	xs := make([]float64, len(cv.Points))
	ys := make([]float64, len(cv.Points))
	for i, pt := range cv.Points {
		xs[i] = pt.Predicted
		ys[i] = pt.Observed
	}
	cv.Spearman = Spearman(xs, ys)
	return cv
}

// Spearman computes the Spearman rank correlation of two equal-length
// samples, with average ranks for ties (Pearson over the rank vectors).
// It returns 0 for fewer than 3 points or when either side is constant.
func Spearman(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 3 {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += rx[i]
		my += ry[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		a, b := rx[i]-mx, ry[i]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// ranks assigns 1-based average ranks (ties share the mean rank).
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j+2) / 2 // ranks are 1-based
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
