package absint

import (
	"math"
	"sort"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

// RegionKind classifies one alias-class partition of the address space.
type RegionKind uint8

const (
	// RegionText covers the program's instruction bytes.
	RegionText RegionKind = iota
	// RegionData is a data-segment slice, one per leading symbol.
	RegionData
	// RegionMbox is the MP mailbox window.
	RegionMbox
	// RegionStack is the stack carve-out of every context.
	RegionStack
)

func (k RegionKind) String() string {
	switch k {
	case RegionText:
		return "text"
	case RegionData:
		return "data"
	case RegionMbox:
		return "mbox"
	case RegionStack:
		return "stack"
	}
	return "region(?)"
}

// Region is one alias class: a named, non-overlapping address range
// [Lo, Hi). Two accesses may alias only when their class sets intersect
// (or either is unbounded).
type Region struct {
	Name string
	Kind RegionKind
	Lo   uint64
	Hi   uint64 // exclusive
}

// buildRegions partitions the address space: the text segment, one data
// class per leading symbol (value-set analysis resolves most addresses
// to symbol+offset), the MP mailbox window, and the stack carve-out.
func (r *Result) buildRegions() {
	p := r.A.Prog
	textEnd := p.Base + uint64(len(p.Insts))*isa.InstBytes
	if len(p.Insts) > 0 {
		r.Regions = append(r.Regions, Region{Name: "text", Kind: RegionText, Lo: p.Base, Hi: textEnd})
	}

	stackLo := prog.StackTop - uint64(r.Opts.threads())*prog.StackSize

	// Partition [DataBase, stackLo) at every data-symbol address and at
	// the mailbox window's edges.
	cutsSet := map[uint64]bool{prog.DataBase: true, prog.MboxBase: true, prog.MboxBase + prog.MboxSize: true}
	symAt := map[uint64]string{}
	for _, name := range p.SortedSymbols() {
		addr := p.Symbols[name]
		if addr >= prog.DataBase && addr < stackLo {
			cutsSet[addr] = true
			if _, taken := symAt[addr]; !taken {
				symAt[addr] = name
			}
		}
	}
	cuts := make([]uint64, 0, len(cutsSet)+1)
	for c := range cutsSet { // mmtvet:ok — sorted immediately below
		if c >= prog.DataBase && c < stackLo {
			cuts = append(cuts, c)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = append(cuts, stackLo)
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		kind, name := RegionData, "data"
		if lo >= prog.MboxBase && lo < prog.MboxBase+prog.MboxSize {
			kind, name = RegionMbox, "mbox"
		} else if s, ok := symAt[lo]; ok {
			name = s
		}
		r.Regions = append(r.Regions, Region{Name: name, Kind: kind, Lo: lo, Hi: hi})
	}
	r.Regions = append(r.Regions, Region{Name: "stack", Kind: RegionStack, Lo: stackLo, Hi: prog.StackTop})
	r.VaryingClass = make([]bool, len(r.Regions))
}

// classesOf maps an abstract address onto the region partitions it can
// touch. unbounded is true when the interval is too wide to be a useful
// value set (it spans beyond the mapped address space on either side).
func (r *Result) classesOf(addr AbsVal) (classes []int, unbounded bool) {
	if addr.Lo == math.MinInt64 || addr.Hi == math.MaxInt64 || addr.Lo < 0 {
		return nil, true
	}
	lo, hi := uint64(addr.Lo), uint64(addr.Hi)
	for i := range r.Regions {
		reg := &r.Regions[i]
		// An access reads/writes 8 bytes, so [lo, hi+8) is the touched span.
		if hi+8 > reg.Lo && lo < reg.Hi {
			classes = append(classes, i)
		}
	}
	return classes, false
}

// markVarying records that a thread-dependent store may write these
// classes; loads from them become thread-dependent. Text is exempt
// (instruction fetch does not read the data image).
func (r *Result) markVarying(classes []int, unbounded bool) {
	if unbounded {
		for i := range r.Regions {
			if r.Regions[i].Kind != RegionText {
				r.setVarying(i)
			}
		}
		return
	}
	for _, c := range classes {
		if r.Regions[c].Kind != RegionText {
			r.setVarying(c)
		}
	}
}

func (r *Result) setVarying(class int) {
	if !r.VaryingClass[class] {
		r.VaryingClass[class] = true
		r.anyVarying = true
	}
}

// seedVarying marks the classes overlapping the option-supplied
// thread-varying input ranges.
func (r *Result) seedVarying() {
	for _, rg := range r.Opts.Varying {
		if rg.Hi <= rg.Lo {
			continue
		}
		for i := range r.Regions {
			reg := &r.Regions[i]
			if rg.Hi > reg.Lo && rg.Lo < reg.Hi && reg.Kind != RegionText {
				r.setVarying(i)
			}
		}
	}
}
