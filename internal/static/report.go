package static

import (
	"fmt"
	"io"
	"sort"

	"mmt/internal/isa"
)

// Report is the static redundancy summary of one program: the structural
// facts that bound how much MMT's dynamic machinery can possibly share.
// Straight-line regions are the instruction runs every thread executes
// identically once reconverged; loops bound how often those regions
// repeat; the reconvergence table is the per-branch join point CATCHUP
// should steer diverged groups back to.
type Report struct {
	// Program shape.
	Insts  int `json:"insts"`
	Blocks int `json:"blocks"`
	// Reachability.
	ReachableBlocks   int `json:"reachable_blocks"`
	UnreachableBlocks int `json:"unreachable_blocks"`
	UnreachableInsts  int `json:"unreachable_insts"`
	// Branch structure.
	Branches      int `json:"branches"`
	IndirectSites int `json:"indirect_sites"`
	// Straight-line shareable regions: maximal runs of consecutive
	// single-entry single-exit fall-through blocks. Every thread that
	// enters such a region executes the same instructions in the same
	// order, so MMT can share all of them.
	Regions       []Region `json:"regions"`
	ShareableInst int      `json:"shareable_insts"`
	// Reconvergence table, sorted by branch PC.
	Reconv []ReconvEntry `json:"reconv"`
	// Loops, sorted by header PC.
	Loops []Loop `json:"loops"`
	// Finding tallies.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
}

// Region is one maximal straight-line shareable region.
type Region struct {
	StartPC uint64 `json:"start_pc"`
	EndPC   uint64 `json:"end_pc"` // exclusive
	Insts   int    `json:"insts"`
	Blocks  int    `json:"blocks"`
}

// ReconvEntry is one row of the reconvergence table.
type ReconvEntry struct {
	BranchPC uint64 `json:"branch_pc"`
	ReconvPC uint64 `json:"reconv_pc"`
	// Span is the instruction distance from the branch to the
	// reconvergence point (how far apart the diverged paths can get
	// before the structure forces them back together). Negative spans
	// mean the join point is behind the branch (loop exits).
	Span int64 `json:"span"`
}

// BuildReport condenses the analysis into its redundancy summary.
func (a *Analysis) BuildReport() *Report {
	r := &Report{Insts: len(a.Prog.Insts), Blocks: len(a.Blocks), Loops: a.Loops}
	for bi := range a.Blocks {
		b := &a.Blocks[bi]
		if a.Reachable[bi] {
			r.ReachableBlocks++
		} else {
			r.UnreachableBlocks++
			r.UnreachableInsts += b.N
			continue
		}
		switch b.Term {
		case TermBranch:
			r.Branches++
		case TermIndirect:
			r.IndirectSites++
		}
	}

	// Straight-line regions: chase chains of blocks where each link is a
	// fall-through into a block with exactly one predecessor.
	inRegion := make([]bool, len(a.Blocks))
	for bi := range a.Blocks {
		if inRegion[bi] || !a.Reachable[bi] {
			continue
		}
		// Only start a region at a block that is not the straight-line
		// continuation of another block.
		if len(a.Blocks[bi].Preds) == 1 {
			p := a.Blocks[bi].Preds[0]
			if a.Reachable[p] && a.Blocks[p].Term == TermFall {
				continue
			}
		}
		end, insts, blocks := bi, 0, 0
		for {
			inRegion[end] = true
			insts += a.Blocks[end].N
			blocks++
			if a.Blocks[end].Term != TermFall {
				break
			}
			next := end + 1
			if next >= len(a.Blocks) || len(a.Blocks[next].Preds) != 1 {
				break
			}
			end = next
		}
		r.Regions = append(r.Regions, Region{
			StartPC: a.Blocks[bi].Start,
			EndPC:   a.Blocks[end].End,
			Insts:   insts,
			Blocks:  blocks,
		})
		r.ShareableInst += insts
	}
	sort.Slice(r.Regions, func(i, j int) bool { return r.Regions[i].StartPC < r.Regions[j].StartPC })

	for pc, rc := range a.Reconv { // mmtvet:ok — sorted immediately below
		r.Reconv = append(r.Reconv, ReconvEntry{
			BranchPC: pc,
			ReconvPC: rc,
			Span:     (int64(rc) - int64(pc)) / isa.InstBytes,
		})
	}
	sort.Slice(r.Reconv, func(i, j int) bool { return r.Reconv[i].BranchPC < r.Reconv[j].BranchPC })

	r.Errors, r.Warnings, r.Infos = CountBySeverity(a.Findings)
	return r
}

// WriteText renders the report for terminals.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "program: %d instructions, %d blocks (%d reachable)\n",
		r.Insts, r.Blocks, r.ReachableBlocks)
	if r.UnreachableBlocks > 0 {
		fmt.Fprintf(w, "  unreachable: %d blocks, %d instructions\n",
			r.UnreachableBlocks, r.UnreachableInsts)
	}
	fmt.Fprintf(w, "branches: %d conditional, %d indirect escape sites\n",
		r.Branches, r.IndirectSites)
	pct := 0.0
	if r.Insts > 0 {
		pct = 100 * float64(r.ShareableInst) / float64(r.Insts)
	}
	fmt.Fprintf(w, "straight-line shareable: %d instructions (%.1f%%) in %d regions\n",
		r.ShareableInst, pct, len(r.Regions))
	for _, g := range r.Regions {
		fmt.Fprintf(w, "  [%#06x,%#06x) %3d insts / %d blocks\n", g.StartPC, g.EndPC, g.Insts, g.Blocks)
	}
	if len(r.Reconv) > 0 {
		fmt.Fprintf(w, "reconvergence (branch -> predicted join):\n")
		for _, e := range r.Reconv {
			fmt.Fprintf(w, "  %#06x -> %#06x (span %+d)\n", e.BranchPC, e.ReconvPC, e.Span)
		}
	}
	if len(r.Loops) > 0 {
		fmt.Fprintf(w, "loops:\n")
		for _, l := range r.Loops {
			fmt.Fprintf(w, "  head %#06x back %#06x: %d blocks / %d insts, depth %d\n",
				l.HeadPC, l.BackPC, l.Blocks, l.Insts, l.Depth)
		}
	}
	fmt.Fprintf(w, "findings: %d errors, %d warnings, %d infos\n", r.Errors, r.Warnings, r.Infos)
}
