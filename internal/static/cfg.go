package static

import (
	"sort"

	"mmt/internal/isa"
)

// TermKind classifies how a basic block ends.
type TermKind uint8

const (
	// TermFall: the last instruction is ordinary; control falls into the
	// next block.
	TermFall TermKind = iota
	// TermBranch: conditional branch — fall-through plus taken target.
	TermBranch
	// TermJump: unconditional direct jump (jal discarding the link).
	TermJump
	// TermCall: direct call (jal linking a return address). The analyzer
	// is intraprocedural: the block's CFG successor is the fall-through
	// after the callee returns; the callee entry becomes a root.
	TermCall
	// TermRet: conventional return (jalr through ra); an exit edge.
	TermRet
	// TermIndirect: jalr whose targets the analyzer cannot know; treated
	// as an exit edge and reported as an escape-site finding.
	TermIndirect
	// TermHalt: halt; an exit edge.
	TermHalt
	// TermFallOff: the block would run past the end of the text segment —
	// an abnormal exit, reported as an error finding.
	TermFallOff
	// TermInvalid: the block ends at an undecodable instruction — an
	// abnormal exit, reported as an error finding.
	TermInvalid
)

var termNames = [...]string{
	TermFall: "fall", TermBranch: "branch", TermJump: "jump", TermCall: "call",
	TermRet: "ret", TermIndirect: "indirect", TermHalt: "halt",
	TermFallOff: "falls-off-end", TermInvalid: "invalid",
}

func (t TermKind) String() string {
	if int(t) < len(termNames) {
		return termNames[t]
	}
	return "term(?)"
}

// exits reports whether the terminator leaves the program (normally or
// abnormally) rather than transferring to another block.
func (t TermKind) exits() bool {
	switch t {
	case TermRet, TermIndirect, TermHalt, TermFallOff, TermInvalid:
		return true
	}
	return false
}

// Block is one basic block: a maximal straight-line instruction run with
// one entry (the leader) and one terminator.
type Block struct {
	// Index is the block's position in Analysis.Blocks (address order).
	Index int
	// Start is the leader's PC; End is the PC just past the last
	// instruction ([Start, End) in steps of isa.InstBytes).
	Start, End uint64
	// First and N locate the block's instructions in Prog.Insts.
	First, N int
	// Term classifies the terminator; TermPC is the PC of the last
	// instruction.
	Term   TermKind
	TermPC uint64
	// Succs and Preds are CFG edges as block indices, ascending. Call
	// edges to callee entries are NOT successors (see TermCall); they are
	// recorded in Callee.
	Succs, Preds []int
	// Callee is the callee entry block for TermCall blocks, else -1.
	Callee int
}

// buildCFG decodes the instruction stream into basic blocks and edges,
// recording structural findings (invalid targets, falls-off-end paths,
// indirect escapes) along the way.
func (a *Analysis) buildCFG() {
	p := a.Prog
	n := len(p.Insts)
	if n == 0 {
		a.addFinding(SevError, CodeEntry, p.Entry, "program has an empty text segment")
		return
	}

	// Pass 1: leaders. Instruction 0, the entry, every decodable control
	// instruction's in-range target, and every instruction following a
	// control instruction or an undecodable one.
	leader := make([]bool, n)
	leader[0] = true
	if ei := a.indexOf(p.Entry); ei >= 0 {
		leader[ei] = true
	} else {
		a.addFinding(SevError, CodeEntry, p.Entry,
			"entry PC %#x outside the text segment [%#x,%#x)", p.Entry, p.Base, p.Base+uint64(n)*isa.InstBytes)
	}
	for i, in := range p.Insts {
		if !in.Op.Valid() {
			if i+1 < n {
				leader[i+1] = true
			}
			continue
		}
		if !in.Op.IsControl() {
			continue
		}
		if i+1 < n {
			leader[i+1] = true
		}
		if tgt, ok := in.ControlTarget(); ok {
			if ti := a.indexOf(tgt); ti >= 0 {
				leader[ti] = true
			}
		}
	}

	// Pass 2: blocks in address order.
	for i := 0; i < n; {
		b := Block{Index: len(a.Blocks), Start: a.pcOf(i), First: i, Callee: -1}
		j := i
		for {
			j++
			if j >= n || leader[j] {
				break
			}
		}
		b.N = j - i
		b.End = a.pcOf(j)
		b.TermPC = a.pcOf(j - 1)
		a.Blocks = append(a.Blocks, b)
		i = j
	}

	// Pass 3: terminators and edges.
	for bi := range a.Blocks {
		b := &a.Blocks[bi]
		last := p.Insts[b.First+b.N-1]
		fallTo := func() int {
			if bi+1 < len(a.Blocks) {
				return bi + 1
			}
			return -1
		}
		addSucc := func(t int) {
			b.Succs = append(b.Succs, t)
		}
		target := func() int {
			tgt, ok := last.ControlTarget()
			if !ok {
				return -1
			}
			ti := a.indexOf(tgt)
			if ti < 0 {
				a.addFinding(SevError, CodeBranchTarget, b.TermPC,
					"%s target %#x outside the text segment or misaligned", last.Op, tgt)
				return -1
			}
			return a.BlockAt(a.pcOf(ti))
		}
		switch {
		case !last.Op.Valid():
			b.Term = TermInvalid
			a.addFinding(SevError, CodeInvalidOp, b.TermPC, "undecodable opcode %d on an executable path", uint8(last.Op))
		case last.Op == isa.OpHalt:
			b.Term = TermHalt
		case last.IsReturn():
			b.Term = TermRet
		case last.Op == isa.OpJalr:
			b.Term = TermIndirect
			a.addFinding(SevInfo, CodeIndirect, b.TermPC,
				"indirect jump %s: targets unknown to static analysis", last)
		case last.IsCall():
			b.Term = TermCall
			if t := target(); t >= 0 {
				b.Callee = t
			}
			if ft := fallTo(); ft >= 0 {
				addSucc(ft)
			} else {
				b.Term = TermFallOff
				a.addFinding(SevError, CodeFallsOffEnd, b.TermPC,
					"call return path runs past the end of the text segment")
			}
		case last.Op == isa.OpJal: // plain jump
			b.Term = TermJump
			if t := target(); t >= 0 {
				addSucc(t)
			}
		case last.Op.IsBranch():
			b.Term = TermBranch
			ft := fallTo()
			if ft >= 0 {
				addSucc(ft)
			} else {
				a.addFinding(SevError, CodeFallsOffEnd, b.TermPC,
					"branch fall-through runs past the end of the text segment")
			}
			if t := target(); t >= 0 && t != ft {
				addSucc(t)
			}
		default:
			if ft := fallTo(); ft >= 0 {
				b.Term = TermFall
				addSucc(ft)
			} else {
				b.Term = TermFallOff
				a.addFinding(SevError, CodeFallsOffEnd, b.TermPC,
					"execution runs past the end of the text segment")
			}
		}
		sort.Ints(b.Succs)
	}

	// Pass 4: predecessors.
	for bi := range a.Blocks {
		for _, s := range a.Blocks[bi].Succs {
			a.Blocks[s].Preds = append(a.Blocks[s].Preds, bi)
		}
	}

	if ei := a.indexOf(p.Entry); ei >= 0 {
		a.Entry = a.BlockAt(p.Entry)
	} else if len(a.Blocks) > 0 {
		// Fall back to the first block so the rest of the analysis still
		// produces something useful next to the bad-entry finding.
		a.Entry = 0
	}
}

// computeReachability floods from the entry and from every called
// function entry, following CFG successors plus call edges, and reports
// unreachable blocks.
func (a *Analysis) computeReachability() {
	a.Reachable = make([]bool, len(a.Blocks))
	if a.Entry < 0 || len(a.Blocks) == 0 {
		return
	}
	var stack []int
	visit := func(b int) {
		if b >= 0 && !a.Reachable[b] {
			a.Reachable[b] = true
			stack = append(stack, b)
		}
	}
	isRoot := make([]bool, len(a.Blocks))
	isRoot[a.Entry] = true
	visit(a.Entry)
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range a.Blocks[b].Succs {
			visit(s)
		}
		if c := a.Blocks[b].Callee; c >= 0 {
			isRoot[c] = true
			visit(c)
		}
	}
	for b, r := range isRoot {
		if r {
			a.Roots = append(a.Roots, b)
		}
	}
	for bi := range a.Blocks {
		if !a.Reachable[bi] {
			a.addFinding(SevWarning, CodeUnreachable, a.Blocks[bi].Start,
				"unreachable block (%d instructions)", a.Blocks[bi].N)
		}
	}
}

// canReach reports whether block `to` is reachable from block `from`
// along CFG edges (calls excluded; from reaches itself). Blocks are few
// enough that a per-query BFS beats precomputing the closure.
func (a *Analysis) canReach(from, to int) bool {
	if from < 0 || to < 0 {
		return false
	}
	if from == to {
		return true
	}
	seen := make([]bool, len(a.Blocks))
	seen[from] = true
	stack := []int{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range a.Blocks[b].Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// findLoops detects natural loops via back edges (an edge whose target
// dominates its source) and measures their bodies and nesting.
func (a *Analysis) findLoops() {
	if len(a.Blocks) == 0 || a.IDom == nil {
		return
	}
	dominates := func(v, u int) bool {
		for b := u; b >= 0; b = a.IDom[b] {
			if b == v {
				return true
			}
		}
		return false
	}
	type natLoop struct {
		head, back int
		body       map[int]bool
	}
	var loops []natLoop
	for u := range a.Blocks {
		if !a.Reachable[u] {
			continue
		}
		for _, v := range a.Blocks[u].Succs {
			if !dominates(v, u) {
				continue
			}
			// Natural loop of back edge u->v: v plus all blocks that
			// reach u without passing through v. The header's own
			// predecessors stay outside (v is already in body, so the
			// walk never expands through it; for a self-loop there is
			// nothing to walk at all).
			body := map[int]bool{v: true, u: true}
			var stack []int
			if u != v {
				stack = append(stack, u)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range a.Blocks[x].Preds {
					if !body[p] {
						body[p] = true
						stack = append(stack, p)
					}
				}
			}
			loops = append(loops, natLoop{head: v, back: u, body: body})
		}
	}
	// Nesting depth: loops containing this loop's header (strictly larger
	// bodies that include it).
	for i, l := range loops {
		depth := 1
		for j, o := range loops {
			if i != j && o.body[l.head] && o.body[l.back] && len(o.body) > len(l.body) {
				depth++
			}
		}
		insts := 0
		for b := range l.body {
			insts += a.Blocks[b].N
		}
		a.Loops = append(a.Loops, Loop{
			HeadPC: a.Blocks[l.head].Start,
			BackPC: a.Blocks[l.back].TermPC,
			Blocks: len(l.body),
			Insts:  insts,
			Depth:  depth,
		})
	}
	sort.Slice(a.Loops, func(i, j int) bool {
		if a.Loops[i].HeadPC != a.Loops[j].HeadPC {
			return a.Loops[i].HeadPC < a.Loops[j].HeadPC
		}
		return a.Loops[i].BackPC < a.Loops[j].BackPC
	})
}
