package static

// Dominator and post-dominator trees via the Cooper-Harvey-Kennedy
// iterative algorithm ("A Simple, Fast Dominance Algorithm"): number the
// nodes in reverse postorder from the root, then iterate
// idom[b] = intersect over processed predecessors until fixpoint, where
// intersect walks the two candidates up the current tree by postorder
// number. The CFG is small (hundreds of blocks), so the O(N^2) worst
// case is irrelevant and the constant factor beats Lengauer-Tarjan.

// chk computes immediate dominators for a multi-rooted graph of n real
// nodes by adding a virtual super-root (node n) with an edge to every
// root. The result maps each real node to its immediate dominator, with
// -1 both for nodes unreachable from every root and for nodes dominated
// only by the virtual root (the roots themselves, and merge points of
// disjoint root regions).
func chk(n int, roots []int, succs func(int) []int) []int {
	virtual := n
	allSuccs := func(u int) []int {
		if u == virtual {
			return roots
		}
		return succs(u)
	}

	// Postorder from the virtual root (iterative DFS; fuzzed programs can
	// produce long fall-through chains, so no recursion).
	order := make([]int, 0, n+1)
	state := make([]uint8, n+1) // 0 unvisited, 1 expanding, 2 done
	type frame struct {
		u    int
		next int
	}
	stack := []frame{{u: virtual}}
	state[virtual] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := allSuccs(f.u)
		if f.next < len(ss) {
			v := ss[f.next]
			f.next++
			if state[v] == 0 {
				state[v] = 1
				stack = append(stack, frame{u: v})
			}
			continue
		}
		state[f.u] = 2
		order = append(order, f.u)
		stack = stack[:len(stack)-1]
	}
	rpoNum := make([]int, n+1) // higher = earlier in reverse postorder
	for i, u := range order {
		rpoNum[u] = i
	}

	// Predecessors restricted to reachable nodes.
	preds := make([][]int, n+1)
	for _, u := range order {
		for _, v := range allSuccs(u) {
			if state[v] == 2 {
				preds[v] = append(preds[v], u)
			}
		}
	}

	idom := make([]int, n+1)
	for i := range idom {
		idom[i] = -1
	}
	idom[virtual] = virtual

	intersect := func(b1, b2 int) int {
		for b1 != b2 {
			for rpoNum[b1] < rpoNum[b2] {
				b1 = idom[b1]
			}
			for rpoNum[b2] < rpoNum[b1] {
				b2 = idom[b2]
			}
		}
		return b1
	}

	for changed := true; changed; {
		changed = false
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == virtual {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue // predecessor not processed yet
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}

	// Externalize: drop the virtual root.
	out := idom[:n]
	for i := range out {
		if out[i] == virtual {
			out[i] = -1
		}
	}
	return out
}

// computeDominators fills IDom (forward, rooted at entry + callee
// entries) and IPDom (reverse, rooted at the exit blocks).
func (a *Analysis) computeDominators() {
	n := len(a.Blocks)
	a.IDom = make([]int, n)
	a.IPDom = make([]int, n)
	for i := range a.IDom {
		a.IDom[i], a.IPDom[i] = -1, -1
	}
	if n == 0 || a.Entry < 0 {
		return
	}

	a.IDom = chk(n, a.Roots, func(u int) []int { return a.Blocks[u].Succs })

	// Post-dominators: reverse the graph, rooted at every exit block.
	var exits []int
	for bi := range a.Blocks {
		if a.Reachable[bi] && a.Blocks[bi].Term.exits() {
			exits = append(exits, bi)
		}
	}
	if len(exits) == 0 {
		return // no path reaches exit (e.g. a pure infinite loop)
	}
	a.IPDom = chk(n, exits, func(u int) []int { return a.Blocks[u].Preds })
}

// computeReconvergence derives the predicted reconvergence PC of every
// conditional branch: the first instruction of the branch block's
// immediate post-dominator. This is the static point MMT's FHB/CATCHUP
// machinery should dynamically re-join diverged thread groups at.
func (a *Analysis) computeReconvergence() {
	for bi := range a.Blocks {
		b := &a.Blocks[bi]
		if b.Term != TermBranch || !a.Reachable[bi] {
			continue
		}
		if pd := a.IPDom[bi]; pd >= 0 {
			a.Reconv[b.TermPC] = a.Blocks[pd].Start
		}
	}
}
