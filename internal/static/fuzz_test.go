package static

import (
	"encoding/binary"
	"testing"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

// decodeFuzzProgram turns arbitrary bytes into a program: 12 bytes per
// instruction (opcode, three register fields, 8-byte immediate), with the
// leading byte also perturbing the entry PC so bad-entry handling gets
// fuzzed too. Register and opcode fields are taken as-is — out-of-range
// values are exactly what the analyzer must survive.
func decodeFuzzProgram(data []byte) *prog.Program {
	const perInst = 12
	// Cap the stream: loop-body discovery is quadratic in back edges, and
	// a fuzzer-crafted all-backward-branch program at the full site cap
	// burns seconds per exec without exercising anything new.
	n := len(data) / perInst
	if n > 768 {
		n = 768
	}
	insts := make([]isa.Inst, n)
	for i := 0; i < n; i++ {
		d := data[i*perInst:]
		insts[i] = isa.Inst{
			Op:  isa.Op(d[0]),
			Rd:  d[1] % isa.NumRegs,
			Rs1: d[2] % isa.NumRegs,
			Rs2: d[3] % isa.NumRegs,
			Imm: int64(binary.LittleEndian.Uint64(d[4:12])),
		}
	}
	entry := uint64(prog.CodeBase)
	if len(data) > 0 {
		// Sometimes misaligned, sometimes past the end: both must only
		// produce findings, never panics.
		entry += uint64(data[0])
	}
	return &prog.Program{Name: "fuzz", Entry: entry, Base: prog.CodeBase, Insts: insts}
}

// FuzzAnalyze: the analyzer must terminate without panicking on arbitrary
// instruction streams, and its structural outputs must stay internally
// consistent.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	// A tiny branchy program: beq forward then halt.
	seed := make([]byte, 24)
	seed[0] = byte(isa.OpBeq)
	binary.LittleEndian.PutUint64(seed[4:], uint64(prog.CodeBase)+4)
	seed[12] = byte(isa.OpHalt)
	f.Add(seed)
	// An invalid opcode mid-stream.
	bad := make([]byte, 36)
	bad[0] = byte(isa.OpAddi)
	bad[12] = 0xff
	bad[24] = byte(isa.OpHalt)
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeFuzzProgram(data)
		a := Analyze(p)

		// Blocks partition the instruction stream.
		next := 0
		for i, b := range a.Blocks {
			if b.First != next || b.N < 1 {
				t.Fatalf("block %d = %+v does not continue partition at inst %d", i, b, next)
			}
			next = b.First + b.N
		}
		if next != len(p.Insts) {
			t.Fatalf("blocks cover %d of %d instructions", next, len(p.Insts))
		}
		// Dominator trees stay in range and acyclic-by-construction
		// (walking up must terminate within n steps).
		for i := range a.Blocks {
			for name, tree := range map[string][]int{"idom": a.IDom, "ipdom": a.IPDom} {
				steps := 0
				for b := i; b >= 0; b = tree[b] {
					if tree[b] >= len(a.Blocks) {
						t.Fatalf("%s[%d] = %d out of range", name, b, tree[b])
					}
					if steps++; steps > len(a.Blocks)+1 {
						t.Fatalf("%s chain from %d does not terminate", name, i)
					}
				}
			}
		}
		// Reconvergence PCs must land inside the text segment.
		for br, rc := range a.Reconv {
			if a.BlockAt(br) < 0 || a.BlockAt(rc) < 0 {
				t.Fatalf("reconv edge %#x->%#x outside the program", br, rc)
			}
		}
		// The report renderer must also survive anything Analyze produced.
		a.BuildReport()
	})
}
