package static

import (
	"reflect"
	"testing"

	"mmt/internal/asm"
	"mmt/internal/isa"
	"mmt/internal/prog"
)

// mustAnalyze assembles src at the default bases and analyzes it.
func mustAnalyze(t *testing.T, src string) *Analysis {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Analyze(p)
}

// progOf builds a raw program from hand-written instructions (for
// fixtures the assembler would refuse to emit).
func progOf(insts ...isa.Inst) *prog.Program {
	return &prog.Program{Name: "raw", Entry: prog.CodeBase, Base: prog.CodeBase, Insts: insts}
}

// pcAt returns the address of instruction index i at the default base.
func pcAt(i int) uint64 { return prog.CodeBase + uint64(i)*isa.InstBytes }

func findingCodes(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Code)
	}
	return out
}

func hasCode(fs []Finding, code string) bool {
	for _, f := range fs {
		if f.Code == code {
			return true
		}
	}
	return false
}

// TestDiamond hand-checks the canonical if/else diamond: four blocks,
// entry dominating everything, the join post-dominating everything, and
// the branch's predicted reconvergence at the join.
func TestDiamond(t *testing.T) {
	a := mustAnalyze(t, `
        tid  r4
        bnez r4, odd
        addi r5, r0, 1     ; even arm
        j    join
odd:    addi r5, r0, 2
join:   addi r6, r5, 1
        halt
`)
	// Insts: 0 tid, 1 bnez, 2 addi, 3 j, 4 addi, 5 addi, 6 halt.
	if got := len(a.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4 (%v)", got, a.Blocks)
	}
	wantTerm := []TermKind{TermBranch, TermJump, TermFall, TermHalt}
	for i, w := range wantTerm {
		if a.Blocks[i].Term != w {
			t.Errorf("block %d terminator = %v, want %v", i, a.Blocks[i].Term, w)
		}
	}
	if got := a.Blocks[0].Succs; !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("entry succs = %v, want [1 2]", got)
	}
	if want := []int{-1, 0, 0, 0}; !reflect.DeepEqual(a.IDom, want) {
		t.Errorf("IDom = %v, want %v", a.IDom, want)
	}
	if want := []int{3, 3, 3, -1}; !reflect.DeepEqual(a.IPDom, want) {
		t.Errorf("IPDom = %v, want %v", a.IPDom, want)
	}
	// The bnez at inst 1 must reconverge at the join (inst 5).
	if want := map[uint64]uint64{pcAt(1): pcAt(5)}; !reflect.DeepEqual(a.Reconv, want) {
		t.Errorf("Reconv = %#v, want %#v", a.Reconv, want)
	}
	if len(a.Findings) != 0 {
		t.Errorf("clean diamond produced findings: %v", a.Findings)
	}
	if len(a.Loops) != 0 {
		t.Errorf("diamond has loops: %v", a.Loops)
	}
}

// TestLoop hand-checks a single counted loop: the back edge, the loop
// body, and the branch reconverging at the loop exit.
func TestLoop(t *testing.T) {
	a := mustAnalyze(t, `
        li   r4, 4
loop:   addi r4, r4, -1
        bnez r4, loop
        halt
`)
	// Insts: 0 li, 1 addi, 2 bnez, 3 halt.
	// Blocks: 0 [li], 1 [addi bnez], 2 [halt].
	if got := len(a.Blocks); got != 3 {
		t.Fatalf("blocks = %d, want 3", got)
	}
	if want := []int{-1, 0, 1}; !reflect.DeepEqual(a.IDom, want) {
		t.Errorf("IDom = %v, want %v", a.IDom, want)
	}
	if want := []int{1, 2, -1}; !reflect.DeepEqual(a.IPDom, want) {
		t.Errorf("IPDom = %v, want %v", a.IPDom, want)
	}
	if len(a.Loops) != 1 {
		t.Fatalf("loops = %v, want one", a.Loops)
	}
	l := a.Loops[0]
	if l.HeadPC != pcAt(1) || l.BackPC != pcAt(2) || l.Blocks != 1 || l.Insts != 2 || l.Depth != 1 {
		t.Errorf("loop = %+v", l)
	}
	// The loop branch reconverges past the loop, at the halt.
	if want := map[uint64]uint64{pcAt(2): pcAt(3)}; !reflect.DeepEqual(a.Reconv, want) {
		t.Errorf("Reconv = %#v, want %#v", a.Reconv, want)
	}
}

// TestNestedLoop checks nesting depth and body accounting for a loop
// inside a loop.
func TestNestedLoop(t *testing.T) {
	a := mustAnalyze(t, `
        li   r4, 3
outer:  li   r5, 5
inner:  addi r5, r5, -1
        bnez r5, inner
        addi r4, r4, -1
        bnez r4, outer
        halt
`)
	if len(a.Loops) != 2 {
		t.Fatalf("loops = %v, want two", a.Loops)
	}
	// Sorted by head PC: outer (head at inst 1) before inner (head inst 2).
	outer, inner := a.Loops[0], a.Loops[1]
	if outer.HeadPC != pcAt(1) || outer.Depth != 1 {
		t.Errorf("outer loop = %+v", outer)
	}
	if inner.HeadPC != pcAt(2) || inner.Depth != 2 {
		t.Errorf("inner loop = %+v", inner)
	}
	if inner.Insts >= outer.Insts {
		t.Errorf("inner body (%d insts) not smaller than outer (%d)", inner.Insts, outer.Insts)
	}
}

// TestIndirectBranch: a jalr the analyzer cannot follow becomes an exit
// edge plus an info finding, never an error.
func TestIndirectBranch(t *testing.T) {
	a := mustAnalyze(t, `
        li   r4, target
        jalr r5, 0(r4)
target: halt
`)
	var ind *Block
	for i := range a.Blocks {
		if a.Blocks[i].Term == TermIndirect {
			ind = &a.Blocks[i]
		}
	}
	if ind == nil {
		t.Fatalf("no indirect terminator in %+v", a.Blocks)
	}
	if !hasCode(a.Findings, CodeIndirect) {
		t.Errorf("missing %s finding: %v", CodeIndirect, a.Findings)
	}
	if sev, ok := a.MaxSeverity(); !ok || sev != SevWarning {
		// The halt block is unreachable (the analyzer cannot follow jalr),
		// which warns; nothing should reach error severity.
		t.Errorf("max severity = %v/%v, want warning", sev, ok)
	}
}

// TestCallRet: a call's fall-through is its CFG successor, the callee
// entry is a reachability root, and ret is an exit edge.
func TestCallRet(t *testing.T) {
	a := mustAnalyze(t, `
        call fn
        halt
fn:     addi r4, r0, 7
        ret
`)
	// Blocks: 0 [call], 1 [halt], 2 [addi ret].
	if got := len(a.Blocks); got != 3 {
		t.Fatalf("blocks = %d, want 3", got)
	}
	b0 := a.Blocks[0]
	if b0.Term != TermCall || b0.Callee != 2 || !reflect.DeepEqual(b0.Succs, []int{1}) {
		t.Errorf("call block = %+v", b0)
	}
	if a.Blocks[2].Term != TermRet {
		t.Errorf("callee terminator = %v, want ret", a.Blocks[2].Term)
	}
	if want := []int{0, 2}; !reflect.DeepEqual(a.Roots, want) {
		t.Errorf("roots = %v, want %v", a.Roots, want)
	}
	for i, r := range a.Reachable {
		if !r {
			t.Errorf("block %d unreachable", i)
		}
	}
	if len(a.Findings) != 0 {
		t.Errorf("clean call/ret produced findings: %v", a.Findings)
	}
}

// TestBranchTargetOutOfRange: a branch to an address outside the text
// segment is an error finding.
func TestBranchTargetOutOfRange(t *testing.T) {
	a := Analyze(progOf(
		isa.Inst{Op: isa.OpBeq, Rs1: 4, Rs2: 0, Imm: 0x9_0000},
		isa.Inst{Op: isa.OpHalt},
	))
	if !hasCode(a.Findings, CodeBranchTarget) {
		t.Fatalf("missing %s: %v", CodeBranchTarget, a.Findings)
	}
	if sev, _ := a.MaxSeverity(); sev != SevError {
		t.Errorf("max severity = %v, want error", sev)
	}
}

// TestMisalignedTarget: a target inside the segment but off the 4-byte
// grid is also an error.
func TestMisalignedTarget(t *testing.T) {
	a := Analyze(progOf(
		isa.Inst{Op: isa.OpBeq, Rs1: 4, Rs2: 0, Imm: int64(prog.CodeBase + 2)},
		isa.Inst{Op: isa.OpHalt},
	))
	if !hasCode(a.Findings, CodeBranchTarget) {
		t.Fatalf("missing %s: %v", CodeBranchTarget, a.Findings)
	}
}

// TestUnreachable: a block nothing jumps to warns.
func TestUnreachable(t *testing.T) {
	a := mustAnalyze(t, `
        j    end
        addi r4, r0, 1     ; dead
end:    halt
`)
	if !hasCode(a.Findings, CodeUnreachable) {
		t.Fatalf("missing %s: %v", CodeUnreachable, a.Findings)
	}
	if a.Reachable[1] {
		t.Error("dead block marked reachable")
	}
}

// TestFallsOffEnd: a path running past the last instruction errors.
func TestFallsOffEnd(t *testing.T) {
	a := mustAnalyze(t, `
        addi r4, r0, 1
        addi r5, r4, 1
`)
	if !hasCode(a.Findings, CodeFallsOffEnd) {
		t.Fatalf("missing %s: %v", CodeFallsOffEnd, a.Findings)
	}
}

// TestReadBeforeWrite: a register read on a path no write reaches warns;
// reads of sp/tid-derived and properly initialized registers stay quiet.
func TestReadBeforeWrite(t *testing.T) {
	a := mustAnalyze(t, `
        tid  r4
        bnez r4, skip
        addi r9, r0, 5     ; r9 written only on the fall-through arm
skip:   addi r5, r9, 1     ; read of maybe-uninitialized r9
        halt
`)
	if !hasCode(a.Findings, CodeReadBeforeWr) {
		t.Fatalf("missing %s: %v", CodeReadBeforeWr, a.Findings)
	}
	var f Finding
	for _, x := range a.Findings {
		if x.Code == CodeReadBeforeWr {
			f = x
		}
	}
	if f.PC != pcAt(3) {
		t.Errorf("read-before-write at %#x, want %#x", f.PC, pcAt(3))
	}

	clean := mustAnalyze(t, `
        tid  r4
        addi r5, sp, -8
        addi r6, r4, 1
        halt
`)
	if hasCode(clean.Findings, CodeReadBeforeWr) {
		t.Errorf("false positive on initialized registers: %v", clean.Findings)
	}
}

// TestStoreToText: a store whose constant-propagated address lands in the
// text segment errors; a store to the data segment does not.
func TestStoreToText(t *testing.T) {
	a := Analyze(progOf(
		isa.Inst{Op: isa.OpAddi, Rd: 4, Rs1: 0, Imm: int64(prog.CodeBase)},
		isa.Inst{Op: isa.OpSt, Rs1: 4, Rs2: 5, Imm: 4},
		isa.Inst{Op: isa.OpHalt},
	))
	if !hasCode(a.Findings, CodeStoreToText) {
		t.Fatalf("missing %s: %v", CodeStoreToText, a.Findings)
	}

	clean := Analyze(progOf(
		isa.Inst{Op: isa.OpAddi, Rd: 4, Rs1: 0, Imm: int64(prog.DataBase)},
		isa.Inst{Op: isa.OpSt, Rs1: 4, Rs2: 5, Imm: 0},
		isa.Inst{Op: isa.OpHalt},
	))
	if hasCode(clean.Findings, CodeStoreToText) {
		t.Errorf("false positive on data store: %v", clean.Findings)
	}
}

// TestInvalidOpcode: an undecodable instruction on an executable path
// errors.
func TestInvalidOpcode(t *testing.T) {
	a := Analyze(progOf(
		isa.Inst{Op: isa.Op(200)},
	))
	if !hasCode(a.Findings, CodeInvalidOp) {
		t.Fatalf("missing %s: %v", CodeInvalidOp, a.Findings)
	}
}

// TestBadEntry: an entry PC outside the text segment errors but the
// analysis still proceeds from block 0.
func TestBadEntry(t *testing.T) {
	p := progOf(isa.Inst{Op: isa.OpHalt})
	p.Entry = 0x4
	a := Analyze(p)
	if !hasCode(a.Findings, CodeEntry) {
		t.Fatalf("missing %s: %v", CodeEntry, a.Findings)
	}
	if a.Entry != 0 {
		t.Errorf("fallback entry = %d, want 0", a.Entry)
	}
}

// TestEmptyProgram: no instructions at all.
func TestEmptyProgram(t *testing.T) {
	a := Analyze(progOf())
	if !hasCode(a.Findings, CodeEntry) {
		t.Fatalf("missing %s on empty program: %v", CodeEntry, a.Findings)
	}
}

// TestInfiniteLoop: a program with no path to exit has an empty
// post-dominator tree and no reconvergence entries, without errors from
// the dominator machinery itself.
func TestInfiniteLoop(t *testing.T) {
	a := mustAnalyze(t, `
loop:   addi r4, r4, 1
        j    loop
`)
	for i, pd := range a.IPDom {
		if pd != -1 {
			t.Errorf("IPDom[%d] = %d, want -1 (no exits)", i, pd)
		}
	}
	if len(a.Reconv) != 0 {
		t.Errorf("Reconv = %v, want empty", a.Reconv)
	}
	if len(a.Loops) != 1 {
		t.Errorf("loops = %v, want the infinite loop", a.Loops)
	}
}

// TestPostDominates exercises the instruction-granularity test both
// within and across blocks.
func TestPostDominates(t *testing.T) {
	a := mustAnalyze(t, `
        tid  r4
        bnez r4, odd
        addi r5, r0, 1
        j    join
odd:    addi r5, r0, 2
join:   addi r6, r5, 1
        halt
`)
	cases := []struct {
		pc, q uint64
		want  bool
	}{
		{pcAt(5), pcAt(1), true},  // join pdoms the branch
		{pcAt(6), pcAt(0), true},  // halt pdoms the entry
		{pcAt(2), pcAt(1), false}, // one arm does not pdom the branch
		{pcAt(1), pcAt(0), true},  // later in same block
		{pcAt(0), pcAt(1), false}, // earlier in same block
		{pcAt(5), 0x4, false},     // outside the text
	}
	for _, c := range cases {
		if got := a.PostDominates(c.pc, c.q); got != c.want {
			t.Errorf("PostDominates(%#x, %#x) = %v, want %v", c.pc, c.q, got, c.want)
		}
	}
}

// TestReport sanity-checks the redundancy summary on the diamond.
func TestReport(t *testing.T) {
	a := mustAnalyze(t, `
        tid  r4
        bnez r4, odd
        addi r5, r0, 1
        j    join
odd:    addi r5, r0, 2
join:   addi r6, r5, 1
        halt
`)
	r := a.BuildReport()
	if r.Insts != 7 || r.Blocks != 4 || r.ReachableBlocks != 4 {
		t.Errorf("shape = %d insts / %d blocks / %d reachable", r.Insts, r.Blocks, r.ReachableBlocks)
	}
	if r.Branches != 1 {
		t.Errorf("branches = %d, want 1", r.Branches)
	}
	if len(r.Reconv) != 1 || r.Reconv[0].BranchPC != pcAt(1) || r.Reconv[0].ReconvPC != pcAt(5) {
		t.Errorf("reconv table = %+v", r.Reconv)
	}
	if r.Reconv[0].Span != 4 {
		t.Errorf("span = %d, want 4", r.Reconv[0].Span)
	}
	if r.ShareableInst != r.Insts {
		// Every block is part of some straight-line region; the diamond's
		// regions cover all instructions.
		t.Errorf("shareable = %d, want %d", r.ShareableInst, r.Insts)
	}
}

// TestAnalysisFindingsSorted: findings come out ordered by PC then code,
// whatever order the passes emitted them in.
func TestAnalysisFindingsSorted(t *testing.T) {
	a := Analyze(progOf(
		isa.Inst{Op: isa.OpBeq, Rs1: 4, Rs2: 0, Imm: 0x9_0000},
		isa.Inst{Op: isa.Op(99)},
		isa.Inst{Op: isa.OpHalt},
	))
	for i := 1; i < len(a.Findings); i++ {
		p, q := a.Findings[i-1], a.Findings[i]
		if p.PC > q.PC || (p.PC == q.PC && p.Code > q.Code) {
			t.Fatalf("findings out of order: %v before %v", p, q)
		}
	}
}
