package static

import (
	"fmt"
	"sort"

	"mmt/internal/prof"
)

// Cross-validation joins the static analysis against a dynamic
// attribution profile (internal/prof) of the same program. The core's
// FHB/CATCHUP machinery discovers reconvergence with no knowledge of the
// CFG; the post-dominator tree says where reconvergence is structurally
// possible. Checking one against the other catches bugs on both sides:
// a core that remerges at a non-post-dominator has unified groups whose
// futures can still differ (an attribution bug at best, a correctness
// bug at worst), and a profile charging PCs outside the program text has
// corrupted bookkeeping.
//
// The FHB merges groups wherever their fetch PCs coincide, so the sound
// structural invariant has two legal shapes: a *forward* remerge must
// land at a post-dominator of the divergence branch (the structural
// join), while a *loop-carried* remerge may land at any PC sharing a
// cycle with the branch — the groups re-met on a later iteration, most
// often at the loop header, before reaching the branch's immediate
// post-dominator. Anything else means the machinery unified groups at a
// point the program's structure cannot explain.
//
// Verdict severities:
//
//   - remerge-non-postdom (error): an observed forward remerge PC does
//     not post-dominate its divergence site (and shares no cycle with
//     it) — the structural invariant the dynamic machinery must uphold.
//   - remerge-loop-carried (info): the remerge PC and the divergence
//     branch lie on a common cycle; the groups re-met on a later loop
//     iteration. Legal and common for divergence inside loops.
//   - profile-site (error): the profile attributes divergence or remerge
//     to a PC outside the program text.
//   - diverge-never-remerged (warning): a site diverged but no remerge
//     was ever attributed to it — threads drained apart, or CATCHUP gave
//     up every time; worth a look but legal.
//   - reconv-never-observed (info): a branch diverged and remerged, but
//     never at its predicted (immediate post-dominator) PC. The groups
//     met earlier or later than the structural join; expected for
//     branches inside loops, so informational only.

// CrossValidate checks profile p against the analysis and returns the
// joined findings, sorted by PC then code. The analysis's own static
// findings are not repeated.
func (a *Analysis) CrossValidate(p *prof.Profile) []Finding {
	var fs []Finding
	add := func(sev Severity, code string, pc uint64, format string, args ...any) {
		fs = append(fs, Finding{Sev: sev, Code: code, PC: pc, Msg: fmt.Sprintf(format, args...)})
	}
	inText := func(pc uint64) bool { return a.indexOf(pc) >= 0 }

	// Remerge edges: the post-dominance invariant.
	remergedAt := make(map[uint64]map[uint64]bool) // divergePC -> set of observed remerge PCs
	for _, e := range p.RemergeEdges {
		switch {
		case !inText(e.DivergePC):
			add(SevError, CodeProfileSite, e.DivergePC,
				"profile remerge edge diverges at %#x, outside the program text", e.DivergePC)
			continue
		case !inText(e.RemergePC):
			add(SevError, CodeProfileSite, e.RemergePC,
				"profile remerge edge rejoins at %#x, outside the program text", e.RemergePC)
			continue
		}
		set := remergedAt[e.DivergePC]
		if set == nil {
			set = make(map[uint64]bool)
			remergedAt[e.DivergePC] = set
		}
		set[e.RemergePC] = true
		if !a.PostDominates(e.RemergePC, e.DivergePC) {
			db, rb := a.BlockAt(e.DivergePC), a.BlockAt(e.RemergePC)
			if a.canReach(rb, db) && a.canReach(db, rb) {
				add(SevInfo, CodeRemergeLoop, e.DivergePC,
					"loop-carried remerge at %#x (%d times): the groups re-met on a later iteration instead of the structural join",
					e.RemergePC, e.Count)
			} else {
				add(SevError, CodeRemergeNonPD, e.DivergePC,
					"observed remerge at %#x (%d times) does not post-dominate the divergence at %#x",
					e.RemergePC, e.Count, e.DivergePC)
			}
		}
	}

	// Site-level checks: divergence attributed to valid branch sites, and
	// every diverging site eventually remerging somewhere.
	for i := range p.Sites {
		s := &p.Sites[i]
		if s.Divergences == 0 {
			continue
		}
		if !inText(s.PC) {
			add(SevError, CodeProfileSite, s.PC,
				"profile attributes %d divergences to %#x, outside the program text", s.Divergences, s.PC)
			continue
		}
		if s.Remerges == 0 && len(remergedAt[s.PC]) == 0 {
			add(SevWarning, CodeDivergeNoJoin, s.PC,
				"site diverged %d times but no remerge was ever attributed to it", s.Divergences)
			continue
		}
		if want, ok := a.Reconv[s.PC]; ok && !remergedAt[s.PC][want] {
			add(SevInfo, CodeReconvMissed, s.PC,
				"predicted reconvergence at %#x never observed (remerges landed elsewhere)", want)
		}
	}

	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].PC != fs[j].PC {
			return fs[i].PC < fs[j].PC
		}
		return fs[i].Code < fs[j].Code
	})
	return fs
}
