// Package static is the control-flow analyzer for assembled programs.
// Where the MMT core discovers reconvergence *dynamically* — the FHB spots
// a remerge target in another thread's fetch history, CATCHUP drives the
// behind group to it — this package computes what the program's structure
// says *should* happen: basic blocks, dominator and post-dominator trees
// (Cooper-Harvey-Kennedy), and the immediate post-dominator of every
// conditional branch, which is the structural reconvergence point SPMD
// threads re-join at.
//
// On top of the CFG the analyzer derives correctness findings (invalid
// branch targets, unreachable code, paths that fall off the end of the
// text segment, registers read before any write reaches them, stores that
// overwrite program text, indirect-branch escape sites) and a static
// redundancy report (straight-line shareable regions, loop structure,
// per-branch reconvergence distances). cmd/mmtcheck is the pre-flight
// linter over these findings; CrossValidate joins the static predictions
// against a dynamic attribution profile (internal/prof) as an invariant
// check on the FHB/CATCHUP machinery itself.
package static

import (
	"fmt"
	"sort"

	"mmt/internal/isa"
	"mmt/internal/prog"
)

// Severity ranks a finding. Text and JSON encodings are stable strings.
type Severity uint8

const (
	// SevInfo: worth knowing, never a failure (e.g. an indirect branch
	// the analyzer cannot follow).
	SevInfo Severity = iota
	// SevWarning: almost certainly a program bug, but execution stays
	// defined (unreachable code, a register read before any write).
	SevWarning
	// SevError: the program can leave the text segment, execute an
	// undecodable instruction, or corrupt its own code.
	SevError
)

var severityNames = [...]string{SevInfo: "info", SevWarning: "warning", SevError: "error"}

func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// ParseSeverity maps a stable severity name back to its value.
func ParseSeverity(name string) (Severity, error) {
	for i, n := range severityNames {
		if n == name {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("static: unknown severity %q (want info, warning or error)", name)
}

// MarshalJSON encodes the severity as its stable name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("static: bad severity %s", b)
	}
	v, err := ParseSeverity(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Finding codes. Stable identifiers for CI consumers; the set may grow.
const (
	CodeEntry         = "bad-entry"         // entry PC outside the text segment
	CodeInvalidOp     = "invalid-opcode"    // undecodable instruction on an executable path
	CodeBranchTarget  = "branch-target"     // branch/jump target invalid, out of range or misaligned
	CodeFallsOffEnd   = "falls-off-end"     // an executable path runs past the end of the text segment
	CodeUnreachable   = "unreachable"       // block no execution path reaches
	CodeReadBeforeWr  = "read-before-write" // register read before any write reaches it on some path
	CodeStoreToText   = "store-to-text"     // store whose statically known address hits the text segment
	CodeIndirect      = "indirect-branch"   // jalr escape site: targets unknown to the analyzer
	CodeRemergeNonPD  = "remerge-non-postdom"
	CodeRemergeLoop   = "remerge-loop-carried"
	CodeReconvMissed  = "reconv-never-observed"
	CodeDivergeNoJoin = "diverge-never-remerged"
	CodeProfileSite   = "profile-site" // profile attribution at a PC outside the program text
)

// Finding is one analyzer diagnostic, attached to a static PC.
type Finding struct {
	Sev  Severity `json:"severity"`
	Code string   `json:"code"`
	PC   uint64   `json:"pc"`
	Msg  string   `json:"msg"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %#x: %s: %s", f.Sev, f.PC, f.Code, f.Msg)
}

// Analysis is the full static view of one program.
type Analysis struct {
	Prog   *prog.Program
	Blocks []Block
	// Entry is the entry block index (-1 if the entry PC is invalid).
	Entry int
	// Roots are the reachability roots: the entry block plus every called
	// function entry, in block order.
	Roots []int
	// Reachable marks blocks some execution path can reach.
	Reachable []bool
	// IDom and IPDom are the immediate (post)dominator trees as block
	// indices; -1 marks a root, an unreachable block, or (for IPDom) a
	// block no path connects to program exit.
	IDom, IPDom []int
	// Reconv maps every conditional branch PC to its predicted
	// reconvergence PC — the first instruction of the branch block's
	// immediate post-dominator. Branches with no post-dominator path to
	// exit (e.g. both arms halt) are absent.
	Reconv map[uint64]uint64
	// Loops are the natural loops found via back edges, outermost first.
	Loops []Loop
	// Findings are the analyzer diagnostics, sorted by PC then code.
	Findings []Finding
}

// Loop is one natural loop (back edge whose target dominates its source).
type Loop struct {
	// HeadPC is the loop header's first instruction.
	HeadPC uint64 `json:"head_pc"`
	// BackPC is the PC of the branch/jump forming the back edge.
	BackPC uint64 `json:"back_pc"`
	// Blocks and Insts measure the loop body (header included).
	Blocks int `json:"blocks"`
	Insts  int `json:"insts"`
	// Depth is the nesting depth (1 = outermost).
	Depth int `json:"depth"`
}

// Analyze builds the full static view of p. It never fails: structural
// problems become findings, and the analysis is as complete as the
// program allows (an empty text segment yields an empty CFG with an
// error finding).
func Analyze(p *prog.Program) *Analysis {
	a := &Analysis{Prog: p, Entry: -1, Reconv: make(map[uint64]uint64)}
	a.buildCFG()
	a.computeReachability()
	a.computeDominators()
	a.computeReconvergence()
	a.findLoops()
	a.checkDataflow()
	a.checkStores()
	sort.SliceStable(a.Findings, func(i, j int) bool {
		if a.Findings[i].PC != a.Findings[j].PC {
			return a.Findings[i].PC < a.Findings[j].PC
		}
		return a.Findings[i].Code < a.Findings[j].Code
	})
	return a
}

// Check analyzes p and returns an error listing the error-severity
// findings, or nil when the program is structurally sound. It is the
// shared admission gate behind mmtsim/mmtbench -precheck and the job
// server's Precheck option; warnings and infos never block execution
// here (run mmtcheck for the full report).
func Check(p *prog.Program) error {
	a := Analyze(p)
	errs, _, _ := CountBySeverity(a.Findings)
	if errs == 0 {
		return nil
	}
	msg := fmt.Sprintf("program %s has %d error findings:", p.Name, errs)
	for _, f := range a.Findings {
		if f.Sev == SevError {
			msg += "\n  " + f.String()
		}
	}
	return fmt.Errorf("%s", msg)
}

// addFinding appends a diagnostic.
func (a *Analysis) addFinding(sev Severity, code string, pc uint64, format string, args ...any) {
	a.Findings = append(a.Findings, Finding{Sev: sev, Code: code, PC: pc, Msg: fmt.Sprintf(format, args...)})
}

// MaxSeverity returns the highest severity among the findings, and false
// if there are none.
func (a *Analysis) MaxSeverity() (Severity, bool) {
	return maxSeverity(a.Findings)
}

func maxSeverity(fs []Finding) (Severity, bool) {
	if len(fs) == 0 {
		return 0, false
	}
	max := SevInfo
	for _, f := range fs {
		if f.Sev > max {
			max = f.Sev
		}
	}
	return max, true
}

// CountBySeverity tallies findings at least as severe as each level.
func CountBySeverity(fs []Finding) (errors, warnings, infos int) {
	for _, f := range fs {
		switch f.Sev {
		case SevError:
			errors++
		case SevWarning:
			warnings++
		default:
			infos++
		}
	}
	return
}

// pcOf returns the address of instruction index i.
func (a *Analysis) pcOf(i int) uint64 {
	return a.Prog.Base + uint64(i)*isa.InstBytes
}

// indexOf returns the instruction index of pc, or -1 if pc is outside the
// text segment or misaligned.
func (a *Analysis) indexOf(pc uint64) int {
	if pc < a.Prog.Base || (pc-a.Prog.Base)%isa.InstBytes != 0 {
		return -1
	}
	idx := (pc - a.Prog.Base) / isa.InstBytes
	if idx >= uint64(len(a.Prog.Insts)) {
		return -1
	}
	return int(idx)
}

// BlockAt returns the index of the block containing pc, or -1.
func (a *Analysis) BlockAt(pc uint64) int {
	i := sort.Search(len(a.Blocks), func(i int) bool { return a.Blocks[i].End > pc })
	if i < len(a.Blocks) && a.Blocks[i].Start <= pc && pc < a.Blocks[i].End {
		return i
	}
	return -1
}

// PostDominates reports whether the instruction at pc post-dominates the
// instruction at q: every execution path from q to program exit passes
// through pc. Within one block it is straight-line order; across blocks
// it is ancestry in the post-dominator tree.
func (a *Analysis) PostDominates(pc, q uint64) bool {
	bp, bq := a.BlockAt(pc), a.BlockAt(q)
	if bp < 0 || bq < 0 {
		return false
	}
	if bp == bq {
		return pc >= q
	}
	// Walk q's post-dominator chain looking for pc's block.
	for b := a.IPDom[bq]; b >= 0; b = a.IPDom[b] {
		if b == bp {
			return true
		}
	}
	return false
}
