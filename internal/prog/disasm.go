package prog

import (
	"fmt"
	"sort"
	"strings"

	"mmt/internal/isa"
)

// Disassemble renders the program's text segment with addresses, label
// annotations from the symbol table, and symbolic branch targets.
func Disassemble(p *Program) string {
	// Invert the symbol table for label lookup.
	labels := make(map[uint64][]string)
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for _, names := range labels {
		sort.Strings(names)
	}
	symFor := func(addr uint64) string {
		if names, ok := labels[addr]; ok {
			return names[0]
		}
		return ""
	}

	var b strings.Builder
	fmt.Fprintf(&b, "; %s: %d instructions at %#x, entry %#x\n", p.Name, len(p.Insts), p.Base, p.Entry)
	for i, in := range p.Insts {
		pc := p.Base + uint64(i)*isa.InstBytes
		for _, name := range labels[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		text := in.String()
		// Rewrite absolute control-flow targets symbolically.
		if in.Op.IsControl() && in.Op != isa.OpJalr {
			if s := symFor(uint64(in.Imm)); s != "" {
				if idx := strings.LastIndex(text, "0x"); idx >= 0 {
					text = text[:idx] + s
				}
			}
		}
		fmt.Fprintf(&b, "  %#06x  %s\n", pc, text)
	}
	return b.String()
}

// DisassembleRange renders instructions around pc (for diagnostics): n
// instructions before and after.
func DisassembleRange(p *Program, pc uint64, n int) string {
	if len(p.Insts) == 0 {
		return ""
	}
	idx := int64(pc-p.Base) / isa.InstBytes
	lo := idx - int64(n)
	if lo < 0 {
		lo = 0
	}
	hi := idx + int64(n) + 1
	if hi > int64(len(p.Insts)) {
		hi = int64(len(p.Insts))
	}
	var b strings.Builder
	for i := lo; i < hi; i++ {
		at := p.Base + uint64(i)*isa.InstBytes
		marker := "  "
		if at == pc {
			marker = "=>"
		}
		fmt.Fprintf(&b, "%s %#06x  %s\n", marker, at, p.Insts[i])
	}
	return b.String()
}
