package prog

import (
	"fmt"
	"sort"
	"strings"

	"mmt/internal/isa"
)

// Disassemble renders the program's text segment with addresses, label
// annotations from the symbol table, and symbolic branch targets.
func Disassemble(p *Program) string {
	// Invert the symbol table for label lookup.
	labels := make(map[uint64][]string)
	for name, addr := range p.Symbols { // mmtvet:ok — per-address lists sorted below
		labels[addr] = append(labels[addr], name)
	}
	for _, names := range labels { // mmtvet:ok — independent per-entry sort
		sort.Strings(names)
	}
	symFor := func(addr uint64) string {
		if names, ok := labels[addr]; ok {
			return names[0]
		}
		return ""
	}
	// Sorted symbol addresses, for nearest-preceding-label annotation of
	// targets that fall between labels.
	addrs := make([]uint64, 0, len(labels))
	for addr := range labels { // mmtvet:ok — sorted below, lookup only
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	annotate := func(addr uint64) string {
		if s := symFor(addr); s != "" {
			return s
		}
		i := sort.Search(len(addrs), func(i int) bool { return addrs[i] > addr })
		if i > 0 {
			base := addrs[i-1]
			return fmt.Sprintf("%s+%#x", symFor(base), addr-base)
		}
		return ""
	}

	var b strings.Builder
	fmt.Fprintf(&b, "; %s: %d instructions at %#x, entry %#x\n", p.Name, len(p.Insts), p.Base, p.Entry)
	for i, in := range p.Insts {
		pc := p.Base + uint64(i)*isa.InstBytes
		for _, name := range labels[pc] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		text := in.String()
		// Rewrite absolute control-flow targets symbolically. Target
		// resolution goes through isa.ControlTarget — the same definition
		// the static analyzer builds its CFG from — so the listing and
		// the analysis cannot disagree about where a branch goes.
		if tgt, ok := in.ControlTarget(); ok {
			if s := annotate(tgt); s != "" {
				if idx := strings.LastIndex(text, "0x"); idx >= 0 {
					text = text[:idx] + s
				}
			}
		}
		fmt.Fprintf(&b, "  %#06x  %s\n", pc, text)
	}
	return b.String()
}

// DisassembleRange renders instructions around pc (for diagnostics): n
// instructions before and after.
func DisassembleRange(p *Program, pc uint64, n int) string {
	if len(p.Insts) == 0 {
		return ""
	}
	idx := int64(pc-p.Base) / isa.InstBytes
	lo := idx - int64(n)
	if lo < 0 {
		lo = 0
	}
	hi := idx + int64(n) + 1
	if hi > int64(len(p.Insts)) {
		hi = int64(len(p.Insts))
	}
	var b strings.Builder
	for i := lo; i < hi; i++ {
		at := p.Base + uint64(i)*isa.InstBytes
		marker := "  "
		if at == pc {
			marker = "=>"
		}
		fmt.Fprintf(&b, "%s %#06x  %s\n", marker, at, p.Insts[i])
	}
	return b.String()
}
