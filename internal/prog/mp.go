package prog

import "fmt"

// Message-passing support (the paper's third SPMD class, §3.1, left as
// future work in §7): ranks run in private address spaces like
// multi-execution instances, but a fixed window of the address space is
// shared — an MPI-style shared-memory transport. Stores to the window are
// visible to every rank; everything else stays private.

// Window is the shared mailbox region of a message-passing system.
const (
	// MboxBase is the first byte of the shared window.
	MboxBase uint64 = 0x0040_0000
	// MboxSize is the window's extent.
	MboxSize uint64 = 0x0004_0000
)

// InMbox reports whether addr falls inside the shared window.
func InMbox(addr uint64) bool {
	return addr >= MboxBase && addr < MboxBase+MboxSize
}

// mpMemory routes window accesses to the shared image and everything else
// to the rank's private image.
type mpMemory struct {
	priv   *Memory
	shared *Memory
}

func (m *mpMemory) Read64(addr uint64) uint64 {
	if InMbox(addr) {
		return m.shared.Read64(addr)
	}
	return m.priv.Read64(addr)
}

func (m *mpMemory) Write64(addr uint64, val uint64) {
	if InMbox(addr) {
		m.shared.Write64(addr, val)
		return
	}
	m.priv.Write64(addr, val)
}

// NewMPSystem builds n message-passing ranks of p: private cloned images
// (inputs seeded per rank by init) plus one shared mailbox window.
// Ranks identify themselves with tid, like MT threads.
func NewMPSystem(p *Program, n int, init InitFunc) (*System, error) {
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("prog: rank count %d outside 1–4", n)
	}
	shared := NewMemory()
	s := &System{Prog: p, Mode: ModeMP}
	for i := 0; i < n; i++ {
		priv := p.Data.Clone()
		if init != nil {
			init(i, priv)
		}
		c := &Context{ID: uint8(i), Prog: p}
		c.State.PC = p.Entry
		c.State.CtxID = uint8(i)
		c.State.Reg[2] = StackTop // isa.RegSP; ranks start identical
		c.Mem = &mpMemory{priv: priv, shared: shared}
		s.Contexts = append(s.Contexts, c)
	}
	return s, nil
}
