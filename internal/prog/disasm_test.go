package prog

import (
	"strings"
	"testing"

	"mmt/internal/isa"
)

func TestDisassemble(t *testing.T) {
	p := testProgram()
	out := Disassemble(p)
	if !strings.Contains(out, "loop:") {
		t.Errorf("missing label:\n%s", out)
	}
	// The branch target is rewritten symbolically.
	if !strings.Contains(out, "bne r5, r0, loop") {
		t.Errorf("branch target not symbolic:\n%s", out)
	}
	if !strings.Contains(out, "halt") || !strings.Contains(out, "0x001000") {
		t.Errorf("body incomplete:\n%s", out)
	}
	// Header mentions the program name and entry.
	if !strings.Contains(out, "test: 4 instructions") {
		t.Errorf("header wrong:\n%s", out)
	}
}

func TestDisassembleUnlabeledTarget(t *testing.T) {
	p := &Program{
		Name: "x", Base: CodeBase, Entry: CodeBase,
		Insts: []isa.Inst{
			{Op: isa.OpJal, Rd: 0, Imm: 0x9999}, // target outside symbols
			{Op: isa.OpHalt},
		},
		Data:    NewMemory(),
		Symbols: map[string]uint64{},
	}
	out := Disassemble(p)
	if !strings.Contains(out, "0x9999") {
		t.Errorf("unlabeled target lost:\n%s", out)
	}
}

func TestDisassembleTargetBetweenLabels(t *testing.T) {
	// A branch into the middle of a labeled region annotates as the
	// nearest preceding label plus an offset.
	p := &Program{
		Name: "x", Base: CodeBase, Entry: CodeBase,
		Insts: []isa.Inst{
			{Op: isa.OpBne, Rs1: 5, Imm: int64(CodeBase + 2*isa.InstBytes)},
			{Op: isa.OpNop},
			{Op: isa.OpNop},
			{Op: isa.OpHalt},
		},
		Data:    NewMemory(),
		Symbols: map[string]uint64{"body": CodeBase + isa.InstBytes},
	}
	out := Disassemble(p)
	if !strings.Contains(out, "bne r5, r0, body+0x4") {
		t.Errorf("between-labels target not annotated:\n%s", out)
	}
}

func TestDisassembleRange(t *testing.T) {
	p := testProgram()
	out := DisassembleRange(p, CodeBase+8, 1)
	if !strings.Contains(out, "=>") {
		t.Errorf("no marker:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Errorf("window lines = %d:\n%s", lines, out)
	}
	// Clamping at the edges.
	out = DisassembleRange(p, CodeBase, 10)
	if strings.Count(out, "\n") != 4 {
		t.Errorf("clamped window wrong:\n%s", out)
	}
	if DisassembleRange(&Program{Data: NewMemory()}, 0, 3) != "" {
		t.Error("empty program disassembly nonempty")
	}
}
