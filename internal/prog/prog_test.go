package prog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mmt/internal/isa"
)

func testProgram() *Program {
	// li r5, 3; loop: addi r5, r5, -1; bnez; halt
	insts := []isa.Inst{
		{Op: isa.OpAddi, Rd: 5, Rs1: 0, Imm: 3},
		{Op: isa.OpAddi, Rd: 5, Rs1: 5, Imm: -1},
		{Op: isa.OpBne, Rs1: 5, Rs2: 0, Imm: CodeBase + 1*isa.InstBytes},
		{Op: isa.OpHalt},
	}
	return &Program{
		Name: "test", Base: CodeBase, Entry: CodeBase,
		Insts: insts, Data: NewMemory(),
		Symbols: map[string]uint64{"loop": CodeBase + 4},
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read64(0x5000) != 0 {
		t.Error("unwritten memory not zero")
	}
	m.Write64(0x5000, 42)
	if m.Read64(0x5000) != 42 {
		t.Error("write lost")
	}
	// Unaligned addresses truncate to the containing word.
	if m.Read64(0x5003) != 42 {
		t.Error("unaligned read did not truncate")
	}
	m.Write64(0x5008, 7)
	if m.Read64(0x5000) != 42 || m.Read64(0x5008) != 7 {
		t.Error("adjacent words interfere")
	}
}

func TestMemoryZeroValueUsable(t *testing.T) {
	var m Memory
	if m.Read64(16) != 0 {
		t.Error("zero-value read")
	}
	m.Write64(16, 5)
	if m.Read64(16) != 5 {
		t.Error("zero-value write")
	}
}

func TestMemoryCloneIsDeep(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1000, 1)
	c := m.Clone()
	c.Write64(0x1000, 2)
	c.Write64(0x99000, 3)
	if m.Read64(0x1000) != 1 {
		t.Error("clone aliased original page")
	}
	if m.Read64(0x99000) != 0 {
		t.Error("clone write leaked to original")
	}
	if c.Read64(0x1000) != 2 {
		t.Error("clone lost its write")
	}
}

func TestMemorySparseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMemory()
		ref := map[uint64]uint64{}
		for i := 0; i < 200; i++ {
			addr := uint64(r.Intn(1<<20)) &^ 7
			if r.Intn(2) == 0 {
				v := r.Uint64()
				m.Write64(addr, v)
				ref[addr] = v
			} else if m.Read64(addr) != ref[addr] {
				return false
			}
		}
		for a, v := range ref {
			if m.Read64(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemoryFootprint(t *testing.T) {
	m := NewMemory()
	if m.Footprint() != 0 {
		t.Error("empty footprint nonzero")
	}
	m.Write64(0, 1)
	m.Write64(100, 1) // same page
	if m.Footprint() != pageBytes {
		t.Errorf("footprint = %d", m.Footprint())
	}
	m.Write64(pageBytes, 1)
	if m.Footprint() != 2*pageBytes {
		t.Errorf("footprint = %d", m.Footprint())
	}
}

func TestInstAt(t *testing.T) {
	p := testProgram()
	if _, ok := p.InstAt(CodeBase - 4); ok {
		t.Error("InstAt before base succeeded")
	}
	if _, ok := p.InstAt(CodeBase + uint64(len(p.Insts))*isa.InstBytes); ok {
		t.Error("InstAt past end succeeded")
	}
	if _, ok := p.InstAt(CodeBase + 2); ok {
		t.Error("InstAt misaligned succeeded")
	}
	in, ok := p.InstAt(CodeBase + 4)
	if !ok || in.Op != isa.OpAddi || in.Imm != -1 {
		t.Errorf("InstAt = %v/%v", in, ok)
	}
}

func TestNewSystemMT(t *testing.T) {
	sys, err := NewSystem(testProgram(), ModeMT, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := sys.Contexts[0], sys.Contexts[1]
	if c0.Mem != c1.Mem {
		t.Error("MT contexts do not share memory")
	}
	if c0.State.Reg[isa.RegSP] == c1.State.Reg[isa.RegSP] {
		t.Error("MT stack pointers identical")
	}
	// All other registers identical.
	for r := 0; r < isa.NumRegs; r++ {
		if r == isa.RegSP {
			continue
		}
		if c0.State.Reg[r] != c1.State.Reg[r] {
			t.Errorf("MT reg %d differs at start", r)
		}
	}
	// Shared memory is visible across contexts.
	c0.Mem.Write64(0x4000, 9)
	if c1.Mem.Read64(0x4000) != 9 {
		t.Error("MT store not visible to sibling")
	}
}

func TestNewSystemME(t *testing.T) {
	init := func(ctx int, mem *Memory) {
		mem.Write64(DataBase, uint64(100+ctx))
	}
	sys, err := NewSystem(testProgram(), ModeME, 3, init)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range sys.Contexts {
		if got := c.Mem.Read64(DataBase); got != uint64(100+i) {
			t.Errorf("ctx %d input = %d", i, got)
		}
	}
	// ME: all registers identical, including SP (§3.1).
	if sys.Contexts[0].State != func() isa.State {
		s := sys.Contexts[1].State
		s.CtxID = 0
		return s
	}() {
		t.Error("ME register state differs beyond CtxID")
	}
	// Memory is private.
	sys.Contexts[0].Mem.Write64(0x4000, 9)
	if sys.Contexts[1].Mem.Read64(0x4000) != 0 {
		t.Error("ME store leaked to sibling")
	}
}

func TestNewSystemBounds(t *testing.T) {
	if _, err := NewSystem(testProgram(), ModeMT, 0, nil); err == nil {
		t.Error("0 contexts accepted")
	}
	if _, err := NewSystem(testProgram(), ModeMT, 5, nil); err == nil {
		t.Error("5 contexts accepted")
	}
}

func TestRunFunctional(t *testing.T) {
	sys, _ := NewSystem(testProgram(), ModeME, 2, nil)
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	if !sys.AllHalted() {
		t.Error("not all halted")
	}
	for _, c := range sys.Contexts {
		if c.State.Reg[5] != 0 {
			t.Errorf("ctx %d: r5 = %d", c.ID, c.State.Reg[5])
		}
		// 1 li + 3*(addi+bne) + halt = 8
		if c.DynCount != 8 {
			t.Errorf("ctx %d: dyn = %d", c.ID, c.DynCount)
		}
	}
}

func TestRunFunctionalInstLimit(t *testing.T) {
	p := &Program{
		Name: "spin", Base: CodeBase, Entry: CodeBase,
		Insts: []isa.Inst{{Op: isa.OpJal, Rd: 0, Imm: CodeBase}},
		Data:  NewMemory(),
	}
	sys, _ := NewSystem(p, ModeME, 1, nil)
	if err := sys.RunFunctional(50); err == nil {
		t.Error("infinite loop not caught")
	}
}

func TestStepOutsideText(t *testing.T) {
	sys, _ := NewSystem(testProgram(), ModeME, 1, nil)
	sys.Contexts[0].State.PC = 0x10
	if _, _, err := sys.Contexts[0].Step(); err == nil {
		t.Error("step outside text succeeded")
	}
}

func TestModeString(t *testing.T) {
	if ModeMT.String() != "MT" || ModeME.String() != "ME" {
		t.Error("mode strings")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestSortedSymbols(t *testing.T) {
	p := testProgram()
	p.Symbols["a"] = 100
	p.Symbols["b"] = 50
	got := p.SortedSymbols()
	if len(got) != 3 || got[0] != "b" {
		t.Errorf("sorted = %v", got)
	}
}

func TestNewMultiSystem(t *testing.T) {
	pa := testProgram()
	// A second program with a distinct base.
	pb := &Program{
		Name: "b", Base: 0x80000, Entry: 0x80000,
		Insts: []isa.Inst{
			{Op: isa.OpAddi, Rd: 6, Rs1: 0, Imm: 9},
			{Op: isa.OpHalt},
		},
		Data: NewMemory(),
	}
	sys, err := NewMultiSystem([]*Program{pa, pb}, func(ctx int, mem *Memory) {
		mem.Write64(DataBase, uint64(ctx+1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Contexts[0].Prog != pa || sys.Contexts[1].Prog != pb {
		t.Error("program assignment wrong")
	}
	if err := sys.RunFunctional(100); err != nil {
		t.Fatal(err)
	}
	if sys.Contexts[0].State.Reg[5] != 0 {
		t.Errorf("ctx0 r5 = %d", sys.Contexts[0].State.Reg[5])
	}
	if sys.Contexts[1].State.Reg[6] != 9 {
		t.Errorf("ctx1 r6 = %d", sys.Contexts[1].State.Reg[6])
	}
	// Private inputs stayed private.
	if sys.Contexts[0].Mem.Read64(DataBase) != 1 || sys.Contexts[1].Mem.Read64(DataBase) != 2 {
		t.Error("per-context inputs wrong")
	}
	if _, err := NewMultiSystem(nil, nil); err == nil {
		t.Error("empty program list accepted")
	}
}

func TestNewMPSystemSharedWindow(t *testing.T) {
	p := testProgram()
	sys, err := NewMPSystem(p, 2, func(ctx int, mem *Memory) {
		mem.Write64(DataBase, uint64(ctx))
	})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := sys.Contexts[0], sys.Contexts[1]
	// Private memory is private.
	if c0.Mem.Read64(DataBase) != 0 || c1.Mem.Read64(DataBase) != 1 {
		t.Error("private inputs wrong")
	}
	c0.Mem.Write64(DataBase+64, 7)
	if c1.Mem.Read64(DataBase+64) != 0 {
		t.Error("private store leaked")
	}
	// The mailbox window is shared.
	c0.Mem.Write64(MboxBase+16, 42)
	if c1.Mem.Read64(MboxBase+16) != 42 {
		t.Error("mailbox store not shared")
	}
	if !InMbox(MboxBase) || !InMbox(MboxBase+MboxSize-8) || InMbox(MboxBase+MboxSize) || InMbox(0) {
		t.Error("InMbox bounds wrong")
	}
	if sys.Mode != ModeMP || ModeMP.String() != "MP" {
		t.Error("mode metadata")
	}
	if _, err := NewMPSystem(p, 9, nil); err == nil {
		t.Error("9 ranks accepted")
	}
}
