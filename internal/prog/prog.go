// Package prog provides loaded programs and the architectural (functional)
// machine state the timing simulator executes against: sparse paged memory
// images, per-context register state, and the construction of
// multi-threaded (shared memory) and multi-execution (private memory)
// systems of contexts, mirroring §3.1 of the MMT paper.
package prog

import (
	"fmt"
	"sort"

	"mmt/internal/isa"
)

// Memory layout conventions used by the assembler and workloads. These are
// conventions, not architectural requirements.
const (
	CodeBase  = 0x0000_1000 // default start of the text segment
	DataBase  = 0x0010_0000 // default start of the data segment
	StackTop  = 0x0080_0000 // initial stack pointer of context 0
	StackSize = 0x0001_0000 // per-context stack carve-out (MT mode)
)

const (
	pageShift = 12
	pageBytes = 1 << pageShift
	pageWords = pageBytes / 8
)

// Memory is a sparse, paged, 64-bit-word-addressable memory image.
// The zero value is an empty image ready to use.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]uint64)}
}

func (m *Memory) page(addr uint64, create bool) *[pageWords]uint64 {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[pageWords]uint64)
	}
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageWords]uint64)
		m.pages[pn] = p
	}
	return p
}

// Read64 returns the 64-bit word at addr. Unwritten memory reads as zero.
// addr is truncated to 8-byte alignment.
func (m *Memory) Read64(addr uint64) uint64 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr>>3&(pageWords-1)]
}

// Write64 stores a 64-bit word at addr (truncated to 8-byte alignment).
func (m *Memory) Write64(addr uint64, val uint64) {
	p := m.page(addr, true)
	p[addr>>3&(pageWords-1)] = val
}

// Clone returns a deep copy of the image. Multi-execution systems clone the
// program image once per context so that no memory is shared (§3.1).
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for pn, p := range m.pages { // mmtvet:ok — rebuilds a map, order-insensitive
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Footprint returns the number of bytes of allocated (touched) memory.
func (m *Memory) Footprint() uint64 {
	return uint64(len(m.pages)) * pageBytes
}

// Pages returns the base addresses of every allocated page, ascending.
// Static analyses use this to walk an image without knowing its extent.
func (m *Memory) Pages() []uint64 {
	out := make([]uint64, 0, len(m.pages))
	for pn := range m.pages { // mmtvet:ok — sorted immediately below
		out = append(out, pn<<pageShift)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PageBytes is the allocation granule of Memory, exported for analyses
// that walk Pages().
const PageBytes = pageBytes

var _ isa.Memory = (*Memory)(nil)

// Program is a loaded executable: a contiguous text segment plus an initial
// data image and the symbol table the assembler produced.
type Program struct {
	Name    string
	Entry   uint64
	Base    uint64 // address of Insts[0]
	Insts   []isa.Inst
	Data    *Memory
	Symbols map[string]uint64
}

// InstAt returns the instruction at pc, or false if pc falls outside the
// text segment.
func (p *Program) InstAt(pc uint64) (isa.Inst, bool) {
	if pc < p.Base || (pc-p.Base)%isa.InstBytes != 0 {
		return isa.Inst{}, false
	}
	idx := (pc - p.Base) / isa.InstBytes
	if idx >= uint64(len(p.Insts)) {
		return isa.Inst{}, false
	}
	return p.Insts[idx], true
}

// Symbol returns the address of a label defined by the program source.
func (p *Program) Symbol(name string) (uint64, bool) {
	v, ok := p.Symbols[name]
	return v, ok
}

// SortedSymbols returns symbol names in address order, for disassembly and
// debugging output.
func (p *Program) SortedSymbols() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols { // mmtvet:ok — sorted by address below
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Mode distinguishes the two workload categories of §3.1.
type Mode uint8

const (
	// ModeMT is a multi-threaded workload: all contexts share one memory
	// image; stack pointers differ; loads to the same virtual address
	// return the same value.
	ModeMT Mode = iota
	// ModeME is a multi-execution workload: each context is a separate
	// process with a private copy of the image; all registers (including
	// SP) start identical; inputs differ in memory.
	ModeME
	// ModeMP is a message-passing workload: private images like ModeME
	// plus one shared mailbox window (MboxBase..MboxBase+MboxSize)
	// through which ranks exchange messages. Built by NewMPSystem.
	ModeMP
)

func (m Mode) String() string {
	switch m {
	case ModeMT:
		return "MT"
	case ModeME:
		return "ME"
	case ModeMP:
		return "MP"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Context is one hardware context: a thread of an MT program, an instance
// of an ME program, or a rank of an MP program.
type Context struct {
	ID    uint8
	State isa.State
	Mem   isa.Memory
	Prog  *Program
	// DynCount counts functionally executed (committed-path) instructions.
	DynCount uint64
}

// Halted reports whether the context has executed halt.
func (c *Context) Halted() bool { return c.State.Halted }

// Step fetches the instruction at the context's PC, executes it
// functionally, and returns it with its effect. It is the simulator's
// oracle: the timing model calls Step exactly once per committed-path
// dynamic instruction, in fetch order.
func (c *Context) Step() (isa.Inst, isa.Effect, error) {
	inst, ok := c.Prog.InstAt(c.State.PC)
	if !ok {
		return isa.Inst{}, isa.Effect{}, fmt.Errorf("prog: context %d: PC %#x outside text segment", c.ID, c.State.PC)
	}
	eff, err := isa.Exec(inst, &c.State, c.Mem)
	if err != nil {
		return inst, eff, err
	}
	c.DynCount++
	return inst, eff, nil
}

// System is a set of contexts running one program in one mode.
type System struct {
	Prog     *Program
	Mode     Mode
	Contexts []*Context
}

// InitFunc prepares the initial data image for one context before the
// system starts: it is how workloads give each thread/instance its input.
// In MT mode it is called once per context against the single shared image
// (writing per-thread input regions); in ME mode it is called against each
// context's private clone.
type InitFunc func(ctx int, mem *Memory)

// NewSystem builds a system of n contexts for p in the given mode.
// init may be nil.
func NewSystem(p *Program, mode Mode, n int, init InitFunc) (*System, error) {
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("prog: context count %d outside 1–4 (MMT ITID is a 4-bit mask)", n)
	}
	s := &System{Prog: p, Mode: mode}
	var shared *Memory
	if mode == ModeMT {
		shared = p.Data.Clone()
		for i := 0; i < n; i++ {
			if init != nil {
				init(i, shared)
			}
		}
	}
	for i := 0; i < n; i++ {
		c := &Context{ID: uint8(i), Prog: p}
		c.State.PC = p.Entry
		c.State.CtxID = uint8(i)
		switch mode {
		case ModeMT:
			c.Mem = shared
			// Threads start with identical registers except SP (§3.1).
			c.State.Reg[isa.RegSP] = StackTop - uint64(i)*StackSize
		case ModeME:
			priv := p.Data.Clone()
			if init != nil {
				init(i, priv)
			}
			c.Mem = priv
			// Instances begin with all registers identical (§3.1).
			c.State.Reg[isa.RegSP] = StackTop
		default:
			return nil, fmt.Errorf("prog: unknown mode %v", mode)
		}
		s.Contexts = append(s.Contexts, c)
	}
	return s, nil
}

// NewMultiSystem builds a heterogeneous multi-programmed system: one
// private-memory context per entry of programs (multi-execution
// semantics). Programs must occupy disjoint text segments (assemble them
// with distinct bases via asm.AssembleAt); contexts of the same program
// can merge under MMT, contexts of different programs never share PCs.
// init, when non-nil, seeds each context's private image.
func NewMultiSystem(programs []*Program, init InitFunc) (*System, error) {
	n := len(programs)
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("prog: context count %d outside 1–4", n)
	}
	s := &System{Mode: ModeME}
	for i, p := range programs {
		priv := p.Data.Clone()
		if init != nil {
			init(i, priv)
		}
		c := &Context{ID: uint8(i), Prog: p}
		c.State.PC = p.Entry
		c.State.CtxID = uint8(i)
		c.State.Reg[isa.RegSP] = StackTop
		c.Mem = priv
		s.Contexts = append(s.Contexts, c)
	}
	return s, nil
}

// NewIdenticalSystem builds the paper's Limit setup (Table 5): n contexts
// whose dynamic instruction streams are *identical* — identical inputs,
// identical stack pointers, identical context ids. For ME programs the
// contexts are instances with cloned images; for MT programs they remain
// threads of one shared-memory process (all performing thread 0's work,
// which is the upper bound on sharing). This is what "running two
// instances with identical inputs" bounds: every instruction can be
// fetched and executed once for all contexts.
func NewIdenticalSystem(p *Program, mode Mode, n int, init InitFunc) (*System, error) {
	s, err := NewSystem(p, mode, n, init)
	if err != nil {
		return nil, err
	}
	for _, c := range s.Contexts {
		// All contexts observe id 0 (and thread 0's stack), so every
		// derived value matches across contexts.
		c.State.CtxID = 0
		c.State.Reg[isa.RegSP] = StackTop
	}
	return s, nil
}

// AllHalted reports whether every context has halted.
func (s *System) AllHalted() bool {
	for _, c := range s.Contexts {
		if !c.Halted() {
			return false
		}
	}
	return true
}

// RunFunctional executes the whole system functionally (round-robin, one
// instruction per context per turn) until all contexts halt or any context
// exceeds maxInsts dynamic instructions. It is used by tests and the
// trace profiler; the timing simulator drives contexts itself.
func (s *System) RunFunctional(maxInsts uint64) error {
	for !s.AllHalted() {
		for _, c := range s.Contexts {
			if c.Halted() {
				continue
			}
			if c.DynCount >= maxInsts {
				return fmt.Errorf("prog: context %d exceeded %d instructions without halting", c.ID, maxInsts)
			}
			if _, _, err := c.Step(); err != nil {
				return err
			}
		}
	}
	return nil
}
