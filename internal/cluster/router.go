package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"time"

	"mmt/internal/obs"
	"mmt/internal/obs/flight"
	"mmt/internal/obs/span"
	"mmt/internal/serve"
	"mmt/internal/serve/client"
	"mmt/internal/sim"
)

// RouterOptions configures a Router.
type RouterOptions struct {
	// Nodes is the backend membership (see ParseNodes). Required.
	Nodes []Node
	// ProbeEvery is the health/stats probe cadence (default 1s).
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe or stats fan-out request (default 2s).
	ProbeTimeout time.Duration
	// StealThreshold is the queue depth at which a node counts as hot:
	// new keys it owns are then diverted to the least-loaded healthy node
	// whose depth is at most StealMax (default 8).
	StealThreshold int
	// StealMax is the maximum queue depth of a steal target (default 1 —
	// only genuinely idle nodes pull work from hot ones).
	StealMax int
	// PlacementTTL bounds how long a key's placement stays pinned to the
	// node that received it (default 5m). Pinning keeps every submission
	// of a live key on one node so single-flight dedup holds fleet-wide
	// even under stealing; the TTL lets cold keys re-home.
	PlacementTTL time.Duration
	// Resolve maps a wire TaskSpec to an executable task for key
	// computation (default sim.TaskSpec.Task). Tests interpose here.
	Resolve func(sim.TaskSpec) (sim.Task, error)
	// HTTPClient issues probes, stats fan-outs and submit forwards; nil
	// uses a client without a global timeout (per-request contexts bound
	// probes; submits inherit the caller's context).
	HTTPClient *http.Client
	// Metrics, when non-nil, receives the mmt_cluster_* instruments.
	Metrics *obs.Registry
	// Tracer, when non-nil, records the router's hop spans (submit,
	// per-try route/forward, job proxying) and serves them at GET
	// /v1/spans. The router also pins the distributed trace id onto every
	// submission it forwards (minting one when the client brought none),
	// so re-routed and work-stolen jobs keep one trace id end-to-end.
	Tracer *span.Tracer
	// Log, when non-nil, receives structured request-scoped log lines
	// stamped with trace/span ids. Nil discards them.
	Log *slog.Logger
	// Flight, when non-nil, is the router's flight recorder: routing edges
	// (forwards, re-routes, backends marked down) land in its ring and it
	// is served at GET /v1/debug/flight.
	Flight *flight.Recorder
	// Debug, when non-nil, is mounted under GET /v1/debug/ — continuous
	// profiles, metrics history, resolved config. The flight ring's exact
	// route wins over this prefix.
	Debug http.Handler
}

// nodeState is a backend's probed lifecycle position.
type nodeState int

const (
	stateUnknown nodeState = iota
	stateHealthy
	stateDraining
	stateDown
)

func (s nodeState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDraining:
		return "draining"
	case stateDown:
		return "down"
	default:
		return "unknown"
	}
}

// backend is one ring node plus its probed state and per-node counters.
type backend struct {
	node  Node
	cli   *client.Client         // submit forwarding; retries stay with the end client
	proxy *httputil.ReverseProxy // GET /v1/jobs/{id} and its SSE stream

	mu         sync.Mutex
	state      nodeState
	queueDepth int
	stats      serve.Stats
	statsOK    bool
	lastErr    string
	routed     uint64
	stolen     uint64
}

func (b *backend) snapshotState() (nodeState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.queueDepth
}

func (b *backend) markDown(err error) {
	b.mu.Lock()
	b.state = stateDown
	b.lastErr = err.Error()
	b.mu.Unlock()
}

// placement pins a key to the backend that received its first submission.
type placement struct {
	b  *backend
	at time.Time
}

// jobRoute remembers where a job landed and under which trace id, so
// later GET/SSE proxying joins the job's trace.
type jobRoute struct {
	b     *backend
	trace string
}

// Router is the fleet coordinator: an http.Handler speaking the mmtserved
// /v1 job API that consistent-hashes each submission's task cache key
// onto the backend ring. Construct with NewRouter; Close stops the
// probers.
type Router struct {
	opts  RouterOptions
	ring  *Ring
	mux   *http.ServeMux
	hc    *http.Client
	met   *routerMetrics
	log   *slog.Logger
	start time.Time

	mu         sync.Mutex
	backends   []*backend
	byName     map[string]*backend
	jobs       map[string]jobRoute
	placements map[string]placement
	counts     routerCounts

	stop      chan struct{}
	probers   sync.WaitGroup
	closeOnce sync.Once
}

// routerCounts are the router's own counters (guarded by Router.mu).
type routerCounts struct {
	routed   uint64 // submissions forwarded to a backend
	rerouted uint64 // placements that skipped a draining/down ring owner
	stolen   uint64 // submissions diverted off a hot owner to an idle node
	errors   uint64 // forwarding failures (transport errors, proxy errors)
}

// NewRouter builds the router, probes every backend once so routing
// decisions start informed, and launches the probe loop.
func NewRouter(opts RouterOptions) (*Router, error) {
	ring, err := NewRing(opts.Nodes)
	if err != nil {
		return nil, err
	}
	if opts.ProbeEvery <= 0 {
		opts.ProbeEvery = time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.StealThreshold <= 0 {
		opts.StealThreshold = 8
	}
	if opts.StealMax <= 0 {
		opts.StealMax = 1
	}
	if opts.PlacementTTL <= 0 {
		opts.PlacementTTL = 5 * time.Minute
	}
	if opts.Resolve == nil {
		opts.Resolve = func(s sim.TaskSpec) (sim.Task, error) { return s.Task() }
	}
	rt := &Router{
		opts:       opts,
		ring:       ring,
		hc:         opts.HTTPClient,
		start:      time.Now(),
		byName:     make(map[string]*backend),
		jobs:       make(map[string]jobRoute),
		placements: make(map[string]placement),
		stop:       make(chan struct{}),
	}
	rt.log = opts.Log
	if rt.log == nil {
		rt.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if rt.hc == nil {
		rt.hc = &http.Client{} // no global timeout: SSE proxying streams indefinitely
	}
	if opts.Metrics != nil {
		rt.met = newRouterMetrics(opts.Metrics)
	}
	for _, n := range ring.Nodes() {
		target, err := url.Parse(n.URL)
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %s: %w", n.Name, err)
		}
		b := &backend{node: n}
		b.cli = client.New(n.URL, rt.hc)
		b.cli.Retries = 0 // retry policy belongs to the end client
		b.proxy = httputil.NewSingleHostReverseProxy(target)
		b.proxy.FlushInterval = -1 // SSE: flush every chunk
		b.proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			rt.countError()
			writeError(w, http.StatusBadGateway, 0, "backend %s: %v", b.node.Name, err)
		}
		rt.backends = append(rt.backends, b)
		rt.byName[n.Name] = b
	}
	rt.mux = rt.routes()
	rt.probeAll()
	rt.probers.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Close stops the probe loop. In-flight proxied requests finish on their
// own; the router holds no other resources.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		close(rt.stop)
		rt.probers.Wait()
	})
}

// Owner returns the ring owner for a task cache key (ignoring health and
// placements) — introspection for tests and operators.
func (rt *Router) Owner(key string) Node { return rt.ring.Owner(key) }

func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobProxy)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", rt.handleJobProxy)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	if rt.opts.Tracer != nil {
		mux.Handle("GET /v1/spans", rt.opts.Tracer)
	}
	if rt.opts.Metrics != nil {
		mux.Handle("GET /metrics", rt.opts.Metrics)
	}
	if rt.opts.Debug != nil {
		mux.Handle("GET /v1/debug/", rt.opts.Debug)
	}
	if rt.opts.Flight != nil {
		// The exact route wins over the Debug prefix above.
		mux.Handle("GET /v1/debug/flight", rt.opts.Flight)
	}
	return mux
}

// ServeHTTP serves the fleet API.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) countError() {
	rt.mu.Lock()
	rt.counts.errors++
	rt.mu.Unlock()
	if rt.met != nil {
		rt.met.errors.Inc()
	}
}

// routeInfo describes how a placement was chosen.
type routeInfo struct {
	pinned   bool // an existing live placement was reused
	rerouted bool // the ring owner was skipped (draining or down)
	stolen   bool // diverted off a hot owner to an idle node
}

// place picks the backend for a key: a pinned live placement if one
// exists, else the first healthy node clockwise from the ring owner, with
// hot owners relieved by the least-loaded idle node. The new placement is
// recorded so subsequent submissions of the same key follow it.
func (rt *Router) place(key string) (*backend, routeInfo, error) {
	now := time.Now()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if pl, ok := rt.placements[key]; ok {
		if st, _ := pl.b.snapshotState(); st == stateHealthy && now.Sub(pl.at) < rt.opts.PlacementTTL {
			return pl.b, routeInfo{pinned: true}, nil
		}
		delete(rt.placements, key)
	}
	var info routeInfo
	var owner *backend
	for _, n := range rt.ring.Successors(key, len(rt.backends)) {
		b := rt.byName[n.Name]
		if st, _ := b.snapshotState(); st == stateHealthy {
			owner = b
			break
		}
		info.rerouted = true
	}
	if owner == nil {
		return nil, info, errors.New("no healthy backends")
	}
	chosen := owner
	if _, depth := owner.snapshotState(); depth >= rt.opts.StealThreshold {
		// The owner's queue runs hot: let the least-loaded idle node pull
		// this key instead. The placement pin keeps later submissions of
		// the key on the thief, so fleet-wide dedup still holds.
		var idle *backend
		idleDepth := rt.opts.StealMax + 1
		for _, b := range rt.backends {
			if b == owner {
				continue
			}
			if st, d := b.snapshotState(); st == stateHealthy && d < idleDepth {
				idle, idleDepth = b, d
			}
		}
		if idle != nil {
			chosen = idle
			info.stolen = true
		}
	}
	rt.placements[key] = placement{b: chosen, at: now}
	if rt.met != nil {
		rt.met.placements.Set(int64(len(rt.placements)))
	}
	return chosen, info, nil
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req serve.SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, 0, "decoding request: %v", err)
		return
	}
	task, err := rt.opts.Resolve(req.Task)
	if err != nil {
		writeError(w, http.StatusBadRequest, 0, "resolving task: %v", err)
		return
	}
	key, err := task.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, 0, "keying task: %v", err)
		return
	}

	// Pin the distributed trace id here, before any placement decision:
	// an incoming traceparent wins, then the body's trace_id, then a
	// minted id. Every forward — including re-routes after a transport
	// failure and work-steals — then carries the same id end-to-end.
	parent := span.Extract(r.Header)
	if parent.TraceID == "" {
		parent.TraceID = req.TraceID
	}
	sub := rt.opts.Tracer.Start(parent, "router.submit")
	defer sub.End()
	if req.TraceID == "" {
		req.TraceID = sub.TraceID()
	}
	if req.TraceID == "" { // tracer disabled: still pin one id per submission
		req.TraceID = span.NewTraceID()
	}

	start := time.Now()
	// Walk candidates until one accepts: a backend that fails at the
	// transport level is marked down (the prober will rehabilitate it)
	// and the key re-places on the next healthy node.
	for tries := 0; tries < len(rt.backends); tries++ {
		rsp := rt.opts.Tracer.Start(sub.Context(), "router.route")
		b, info, perr := rt.place(key)
		if perr != nil {
			rsp.SetAttr("error", perr.Error())
			rsp.End()
			sub.SetAttr("error", perr.Error())
			writeError(w, http.StatusServiceUnavailable, 0, "%v", perr)
			return
		}
		rsp.SetAttr("node", b.node.Name)
		if info.pinned {
			rsp.SetAttr("pinned", "true")
		}
		if info.rerouted {
			rsp.SetAttr("rerouted", "true")
		}
		if info.stolen {
			rsp.SetAttr("stolen", "true")
		}
		rsp.End()

		fsp := rt.opts.Tracer.Start(sub.Context(), "router.forward")
		fsp.SetAttr("node", b.node.Name)
		ctx := r.Context()
		if fsp != nil {
			ctx = span.ContextWith(ctx, fsp.Context())
		}
		st, err := b.cli.Submit(ctx, req)
		if err != nil {
			fsp.SetAttr("error", err.Error())
		}
		fsp.End()
		if err == nil {
			rt.recordSubmit(b, st.ID, st.TraceID, info)
			sub.SetAttr("job", st.ID)
			sub.SetAttr("node", b.node.Name)
			if rt.met != nil {
				rt.met.submitLatency.ObserveWithExemplar(time.Since(start), st.TraceID)
			}
			rt.opts.Flight.Admit(st.ID, routeVerdict(b.node.Name, info), st.TraceID)
			rt.log.Info("job routed", "job", st.ID, "node", b.node.Name,
				"pinned", info.pinned, "rerouted", info.rerouted, "stolen", info.stolen,
				"trace", st.TraceID, "span", sub.Context().SpanID)
			w.Header().Set("Location", "/v1/jobs/"+st.ID)
			w.Header().Set("X-MMT-Node", b.node.Name)
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		var se *client.StatusError
		if errors.As(err, &se) {
			// The backend answered: pass its verdict (400, 429+Retry-After,
			// 503, ...) through untouched.
			sub.SetAttr("error", se.Message)
			rt.log.Warn("submit refused by backend", "node", b.node.Name,
				"status", se.Code, "error", se.Message, "trace", req.TraceID)
			writeError(w, se.Code, se.RetryAfter, "%s", se.Message)
			return
		}
		if r.Context().Err() != nil {
			return // client went away mid-forward
		}
		rt.countError()
		b.markDown(err)
		rt.dropPlacement(key, b)
		rt.opts.Flight.MarkErr("backend down, re-placing: "+b.node.Name, err.Error())
		rt.log.Warn("backend down, re-placing", "node", b.node.Name,
			"error", err.Error(), "trace", req.TraceID)
	}
	sub.SetAttr("error", "all backends unreachable")
	writeError(w, http.StatusBadGateway, 0, "all backends unreachable")
}

// routeVerdict renders a forward's placement decision for the flight
// ring's admission slot: "routed:node", plus rerouted/stolen markers.
func routeVerdict(node string, info routeInfo) string {
	v := "routed:" + node
	if info.rerouted {
		v += " rerouted"
	}
	if info.stolen {
		v += " stolen"
	}
	return v
}

// recordSubmit books a successful forward: job routing (with the job's
// trace id, for proxy spans), placement counters, and the route-kind
// counters.
func (rt *Router) recordSubmit(b *backend, jobID, trace string, info routeInfo) {
	rt.mu.Lock()
	rt.jobs[jobID] = jobRoute{b: b, trace: trace}
	rt.counts.routed++
	if info.rerouted {
		rt.counts.rerouted++
	}
	if info.stolen {
		rt.counts.stolen++
	}
	rt.mu.Unlock()
	b.mu.Lock()
	b.routed++
	if info.stolen {
		b.stolen++
	}
	b.mu.Unlock()
	if rt.met != nil {
		rt.met.routed.Inc()
		if info.rerouted {
			rt.met.rerouted.Inc()
		}
		if info.stolen {
			rt.met.stolen.Inc()
		}
	}
}

// dropPlacement removes key's placement if it still points at b.
func (rt *Router) dropPlacement(key string, b *backend) {
	rt.mu.Lock()
	if pl, ok := rt.placements[key]; ok && pl.b == b {
		delete(rt.placements, key)
	}
	rt.mu.Unlock()
}

// handleJobProxy forwards GET /v1/jobs/{id} and its SSE stream to the
// backend that accepted the job. Jobs on a draining node stay reachable
// until the node finishes its drain and exits.
func (rt *Router) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	jr, ok := rt.jobs[id]
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, 0, "no such job: %s (not routed through this router)", id)
		return
	}
	if jr.trace != "" {
		psp := rt.opts.Tracer.Start(span.SpanContext{TraceID: jr.trace}, "router.proxy")
		psp.SetAttr("job", id)
		psp.SetAttr("node", jr.b.node.Name)
		defer psp.End()
	}
	jr.b.proxy.ServeHTTP(w, r)
}

// RouterHealth is the GET /v1/healthz body: serve.Health-compatible, with
// fleet membership counts alongside.
type RouterHealth struct {
	Status   string `json:"status"` // "ok" while >= 1 backend is healthy
	UptimeMS int64  `json:"uptime_ms"`
	Healthy  int    `json:"healthy"`
	Draining int    `json:"draining"`
	Down     int    `json:"down"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := RouterHealth{UptimeMS: time.Since(rt.start).Milliseconds()}
	for _, b := range rt.backends {
		switch st, _ := b.snapshotState(); st {
		case stateHealthy:
			h.Healthy++
		case stateDraining:
			h.Draining++
		default:
			h.Down++
		}
	}
	status := http.StatusOK
	h.Status = "ok"
	if h.Healthy == 0 {
		h.Status = "unhealthy"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleStats serves an aggregated serve.Stats, so tools written against
// one mmtserved (mmtload's before/after accounting, dashboards) work
// unchanged against the whole fleet. Counters sum across nodes; latency
// quantiles report the fleet-worst node.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	fleet, _ := rt.fleetStats(r.Context())
	fleet.UptimeMS = time.Since(rt.start).Milliseconds()
	writeJSON(w, http.StatusOK, fleet)
}

// fleetStats fans a fresh /v1/stats request out to every non-down backend
// (falling back to the last probed snapshot) and sums the counters. The
// per-node snapshots are returned alongside for /v1/cluster.
func (rt *Router) fleetStats(ctx context.Context) (serve.Stats, []serve.Stats) {
	per := make([]serve.Stats, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		st, _ := b.snapshotState()
		if st == stateDown || st == stateUnknown {
			b.mu.Lock()
			per[i] = b.stats // possibly stale; zero value if never probed
			b.mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			per[i] = rt.fetchStats(ctx, b)
		}(i, b)
	}
	wg.Wait()
	var fleet serve.Stats
	for _, s := range per {
		fleet.QueueDepth += s.QueueDepth
		fleet.Admitted += s.Admitted
		fleet.Submitted += s.Submitted
		fleet.Deduped += s.Deduped
		fleet.Rejected += s.Rejected
		fleet.Expired += s.Expired
		fleet.Completed += s.Completed
		fleet.Failed += s.Failed
		fleet.Simulated += s.Simulated
		fleet.FromCache += s.FromCache
		fleet.Streams += s.Streams
		fleet.RequestP50MS = maxf(fleet.RequestP50MS, s.RequestP50MS)
		fleet.RequestP99MS = maxf(fleet.RequestP99MS, s.RequestP99MS)
		fleet.JobP50MS = maxf(fleet.JobP50MS, s.JobP50MS)
		fleet.JobP99MS = maxf(fleet.JobP99MS, s.JobP99MS)
	}
	return fleet, per
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// NodeStatus is one backend's row in ClusterStats.
type NodeStatus struct {
	Node
	State      string      `json:"state"`
	QueueDepth int         `json:"queue_depth"`
	Routed     uint64      `json:"routed"`
	Stolen     uint64      `json:"stolen"`
	Error      string      `json:"error,omitempty"`
	Stats      serve.Stats `json:"stats"`
}

// ClusterStats is the GET /v1/cluster body: the router's own routing
// counters, the fleet-summed serving stats, and a per-node breakdown.
type ClusterStats struct {
	UptimeMS   int64        `json:"uptime_ms"`
	Routed     uint64       `json:"routed"`
	Rerouted   uint64       `json:"rerouted"`
	Stolen     uint64       `json:"stolen"`
	Errors     uint64       `json:"errors"`
	Placements int          `json:"placements"`
	Fleet      serve.Stats  `json:"fleet"`
	Nodes      []NodeStatus `json:"nodes"`
	// DedupRatio is the fraction of completed jobs that did not cost a
	// fresh simulation — the fleet-wide analogue of the paper's fetch
	// redundancy: (completed - simulated) / completed.
	DedupRatio float64 `json:"dedup_ratio"`
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	fleet, per := rt.fleetStats(r.Context())
	cs := ClusterStats{
		UptimeMS: time.Since(rt.start).Milliseconds(),
		Fleet:    fleet,
	}
	rt.mu.Lock()
	cs.Routed = rt.counts.routed
	cs.Rerouted = rt.counts.rerouted
	cs.Stolen = rt.counts.stolen
	cs.Errors = rt.counts.errors
	cs.Placements = len(rt.placements)
	rt.mu.Unlock()
	for i, b := range rt.backends {
		b.mu.Lock()
		cs.Nodes = append(cs.Nodes, NodeStatus{
			Node:       b.node,
			State:      b.state.String(),
			QueueDepth: b.queueDepth,
			Routed:     b.routed,
			Stolen:     b.stolen,
			Error:      b.lastErr,
			Stats:      per[i],
		})
		b.mu.Unlock()
	}
	if cs.Fleet.Completed > 0 {
		cs.DedupRatio = float64(cs.Fleet.Completed-cs.Fleet.Simulated) / float64(cs.Fleet.Completed)
	}
	writeJSON(w, http.StatusOK, cs)
}
