package cluster

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"mmt/internal/obs"
	"mmt/internal/obs/flight"
	"mmt/internal/obs/span"
	"mmt/internal/runner"
)

// maxEntryBytes bounds one cache entry on the wire. Outcomes are small
// JSON documents (statistics plus an optional attribution profile); 16MB
// leaves an order of magnitude of headroom.
const maxEntryBytes = 16 << 20

// CacheServerOptions configures a CacheServer.
type CacheServerOptions struct {
	// Dir is the entry directory. Required.
	Dir string
	// MaxBytes caps the store's disk footprint with LRU eviction
	// (0 = unlimited).
	MaxBytes int64
	// Metrics, when non-nil, receives the mmt_cached_* instruments.
	Metrics *obs.Registry
	// Tracer, when non-nil, records a span per traced get/put — only for
	// requests that arrive with a traceparent header, so untraced traffic
	// (warm-up scripts, curl) does not fill the ring — and serves them at
	// GET /v1/spans.
	Tracer *span.Tracer
	// Log, when non-nil, receives request-scoped structured log lines
	// stamped with trace and span ids. Nil discards.
	Log *slog.Logger
	// Flight, when non-nil, is the process flight recorder: entry rejects
	// land in its ring as marks and it is served at GET /v1/debug/flight.
	Flight *flight.Recorder
	// Debug, when non-nil, is mounted under GET /v1/debug/ — continuous
	// profiles, metrics history, resolved config. The flight ring's exact
	// route wins over this prefix.
	Debug http.Handler
}

// CacheServer is the content-addressed remote result cache behind
// cmd/mmtcached: the runner's persistent cache tiers into it, so every
// node in a fleet — and every CI run pointed at the same service — shares
// one pool of simulated outcomes. Entries are the disk-cache format
// verbatim; PutRaw validation means a misbehaving client cannot poison
// the store.
//
// The HTTP surface:
//
//	GET  /v1/cache/{key}  fetch an entry (200 raw blob | 404)
//	PUT  /v1/cache/{key}  store an entry (204 | 400 on invalid blobs)
//	GET  /v1/healthz      liveness
//	GET  /v1/stats        hit/miss/store counters, entry count, bytes, evictions
type CacheServer struct {
	store  *runner.Cache
	mux    *http.ServeMux
	met    *cacheMetrics
	tracer *span.Tracer
	flight *flight.Recorder
	log    *slog.Logger
	start  time.Time

	mu     sync.Mutex
	counts cacheCounts
}

// cacheCounts are the serving counters behind /v1/stats.
type cacheCounts struct {
	hits    uint64
	misses  uint64
	stores  uint64
	rejects uint64
}

// cacheMetrics are the cache service instruments.
type cacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	stores    *obs.Counter
	rejects   *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
	bytes     *obs.Gauge
}

// NewCacheServer opens the store and builds the handler.
func NewCacheServer(opts CacheServerOptions) (*CacheServer, error) {
	store, err := runner.OpenCache(opts.Dir, opts.MaxBytes)
	if err != nil {
		return nil, err
	}
	s := &CacheServer{store: store, tracer: opts.Tracer, flight: opts.Flight, log: opts.Log, start: time.Now()}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.Metrics != nil {
		s.met = &cacheMetrics{
			hits:      opts.Metrics.Counter("mmt_cached_hits_total", "Entry fetches that hit."),
			misses:    opts.Metrics.Counter("mmt_cached_misses_total", "Entry fetches that missed."),
			stores:    opts.Metrics.Counter("mmt_cached_stores_total", "Entries stored."),
			rejects:   opts.Metrics.Counter("mmt_cached_rejects_total", "Invalid entries refused."),
			evictions: opts.Metrics.Counter("mmt_cache_evictions_total", "Entries evicted by the byte budget."),
			entries:   opts.Metrics.Gauge("mmt_cached_entries", "Entries currently stored."),
			bytes:     opts.Metrics.Gauge("mmt_cached_bytes", "Bytes currently stored."),
		}
		store.SetEvictHook(s.met.evictions.Inc)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/{key}", s.handleGet)
	mux.HandleFunc("PUT /v1/cache/{key}", s.handlePut)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	if s.tracer != nil {
		mux.Handle("GET /v1/spans", s.tracer)
	}
	if opts.Metrics != nil {
		mux.Handle("GET /metrics", opts.Metrics)
	}
	if opts.Debug != nil {
		mux.Handle("GET /v1/debug/", opts.Debug)
	}
	if opts.Flight != nil {
		// The exact route wins over the Debug prefix above.
		mux.Handle("GET /v1/debug/flight", opts.Flight)
	}
	s.mux = mux
	return s, nil
}

// startSpan opens a hop span for a request that arrived with a valid
// trace context; nil (a no-op) otherwise.
func (s *CacheServer) startSpan(r *http.Request, name string) *span.Span {
	if s.tracer == nil {
		return nil
	}
	parent := span.Extract(r.Header)
	if !parent.Valid() {
		return nil
	}
	sp := s.tracer.Start(parent, name)
	sp.SetAttr("key", short(r.PathValue("key")))
	return sp
}

// short truncates a cache key for logs and span attributes — the 8-char
// prefix is what every other surface (errors, mmtload) prints.
func short(key string) string {
	if len(key) > 8 {
		return key[:8]
	}
	return key
}

// ServeHTTP serves the cache API.
func (s *CacheServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
	if s.met != nil {
		s.met.entries.Set(int64(s.store.Len()))
		s.met.bytes.Set(s.store.Bytes())
	}
}

// Store exposes the underlying cache (entry count and bytes feed the
// daemon's shutdown report).
func (s *CacheServer) Store() *runner.Cache { return s.store }

func (s *CacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	sp := s.startSpan(r, "cached.get")
	defer sp.End()
	raw, ok := s.store.GetRaw(key)
	s.log.Debug("cache get", "key", short(key), "hit", ok,
		"trace", sp.Context().TraceID, "span", sp.Context().SpanID)
	if !ok {
		sp.SetAttr("result", "miss")
		s.count(func(c *cacheCounts) { c.misses++ })
		if s.met != nil {
			s.met.misses.Inc()
		}
		writeError(w, http.StatusNotFound, 0, "no entry for key %.8s", key)
		return
	}
	sp.SetAttr("result", "hit")
	s.count(func(c *cacheCounts) { c.hits++ })
	if s.met != nil {
		s.met.hits.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw) //nolint:errcheck // client went away; nothing to do
}

func (s *CacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	sp := s.startSpan(r, "cached.put")
	defer sp.End()
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
	if err != nil {
		sp.SetAttr("result", "rejected")
		s.reject(w, http.StatusBadRequest, "reading entry: %v", err)
		return
	}
	if err := s.store.PutRaw(key, raw); err != nil {
		sp.SetAttr("result", "rejected")
		s.reject(w, http.StatusBadRequest, "%v", err)
		return
	}
	sp.SetAttr("result", "stored")
	s.log.Info("entry stored", "key", short(key), "bytes", len(raw),
		"trace", sp.Context().TraceID, "span", sp.Context().SpanID)
	s.count(func(c *cacheCounts) { c.stores++ })
	if s.met != nil {
		s.met.stores.Inc()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *CacheServer) reject(w http.ResponseWriter, status int, format string, args ...any) {
	s.count(func(c *cacheCounts) { c.rejects++ })
	if s.met != nil {
		s.met.rejects.Inc()
	}
	s.flight.MarkErr("cache entry rejected", fmt.Sprintf(format, args...))
	writeError(w, status, 0, format, args...)
}

func (s *CacheServer) count(f func(*cacheCounts)) {
	s.mu.Lock()
	f(&s.counts)
	s.mu.Unlock()
}

func (s *CacheServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// CacheStats is the GET /v1/stats body.
type CacheStats struct {
	UptimeMS  int64  `json:"uptime_ms"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Evictions uint64 `json:"evictions"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Stores    uint64 `json:"stores"`
	Rejects   uint64 `json:"rejects"`
}

func (s *CacheServer) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c := s.counts
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, CacheStats{
		UptimeMS:  time.Since(s.start).Milliseconds(),
		Entries:   s.store.Len(),
		Bytes:     s.store.Bytes(),
		Evictions: s.store.Evictions(),
		Hits:      c.hits,
		Misses:    c.misses,
		Stores:    c.stores,
		Rejects:   c.rejects,
	})
}
