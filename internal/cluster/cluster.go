// Package cluster turns N independent mmtserved daemons into one
// horizontally scalable simulation fleet. It is MMT's core idea applied
// at datacenter scale: just as the paper's fetch-history buffer notices
// that concurrent threads are about to execute the same instructions and
// pays for them once, the cluster notices that concurrent clients are
// about to run the same simulation and pays for it once — fleet-wide.
//
// Three pieces compose:
//
//   - Ring: a weighted consistent-hash ring over the backend nodes.
//     Jobs are placed by their content-addressed cache key (the same
//     canonical key the memo, the persistent cache and serve's
//     single-flight dedup share), so identical submissions land on the
//     same node and per-node single-flight dedup becomes fleet-wide
//     dedup. Membership changes move a minimal key fraction.
//
//   - Router: the coordinator daemon behind cmd/mmtrouter. It speaks the
//     same /v1 job API as mmtserved — clients cannot tell them apart —
//     and adds node lifecycle: health probes against /v1/healthz,
//     drain-aware routing (a SIGTERM-draining node stops receiving new
//     keys, which re-route to its ring successor while its in-flight
//     jobs finish and stay reachable through the router), and
//     work-stealing rebalance at the routing layer (when a node's
//     queue-depth gauge runs hot, idle nodes pull the new work that
//     would otherwise queue behind it; placements are pinned per key so
//     stealing never splits one key across two nodes mid-flight).
//
//   - CacheServer/CacheClient: a content-addressed remote result cache
//     (cmd/mmtcached) the runner's persistent cache tiers into — checked
//     on local miss, written through on store. Any node, and any CI run,
//     gets warm hits; a cold-restarted node serves previously simulated
//     results without re-simulating.
//
// cmd/mmtload's -cluster mode drives a router and reports per-node
// throughput and the fleet dedup ratio.
package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"
)

// errorBody mirrors serve's JSON error envelope, so clients decode router
// and backend errors identically.
type errorBody struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, retryAfter time.Duration, format string, args ...any) {
	body := errorBody{Error: fmt.Sprintf(format, args...)}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(math.Ceil(retryAfter.Seconds()))))
		body.RetryAfterMS = retryAfter.Milliseconds()
	}
	writeJSON(w, status, body)
}
