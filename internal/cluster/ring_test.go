package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

func testNodes(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Name: fmt.Sprintf("n%d", i), URL: fmt.Sprintf("http://10.0.0.%d:8377", i+1), Weight: 1}
	}
	return nodes
}

// testKey is a realistic cache key: 64 lowercase hex characters.
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingDistributionUniform checks that equal-weight nodes receive
// near-equal key shares: with 160 virtual nodes each, every node should
// land within ±30% of the fair share.
func TestRingDistributionUniform(t *testing.T) {
	const nodes, keys = 5, 20000
	r, err := NewRing(testNodes(nodes))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(testKey(i)).Name]++
	}
	fair := float64(keys) / nodes
	for name, c := range counts {
		if ratio := float64(c) / fair; ratio < 0.7 || ratio > 1.3 {
			t.Errorf("node %s owns %d keys (%.2fx fair share, outside ±30%%)", name, c, ratio)
		}
	}
	if len(counts) != nodes {
		t.Errorf("only %d/%d nodes own keys", len(counts), nodes)
	}
}

// TestRingWeightProportional checks that a weight-3 node receives roughly
// three times the keys of a weight-1 node.
func TestRingWeightProportional(t *testing.T) {
	nodes := testNodes(2)
	nodes[0].Weight = 3
	r, err := NewRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		counts[r.Owner(testKey(i)).Name]++
	}
	ratio := float64(counts["n0"]) / float64(counts["n1"])
	if ratio < 2.2 || ratio > 3.8 {
		t.Errorf("weight-3 node owns %.2fx the weight-1 node's keys, want ~3x (n0=%d n1=%d)",
			ratio, counts["n0"], counts["n1"])
	}
}

// TestRingMinimalMovementOnJoin checks consistent hashing's defining
// property: adding a node to a 4-node ring moves only the keys the new
// node takes over — about 1/5 of them, never a wholesale reshuffle — and
// every moved key moves TO the new node.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	const keys = 10000
	before, err := NewRing(testNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(testNodes(5))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		k := testKey(i)
		was, is := before.Owner(k), after.Owner(k)
		if was.Name == is.Name {
			continue
		}
		moved++
		if is.Name != "n4" {
			t.Fatalf("key %.8s moved %s -> %s: joins must only move keys to the new node", k, was.Name, is.Name)
		}
	}
	// Fair share for the new node is 1/5 = 20%; allow hashing variance.
	if frac := float64(moved) / keys; frac > 0.30 {
		t.Errorf("join moved %.0f%% of keys, want ~20%%", 100*frac)
	} else if moved == 0 {
		t.Error("join moved no keys: new node is not participating")
	}
}

// TestRingMinimalMovementOnLeave checks the converse: removing a node
// only re-homes the keys it owned.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	const keys = 10000
	before, err := NewRing(testNodes(5))
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(testNodes(4)) // n4 leaves
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		k := testKey(i)
		was, is := before.Owner(k), after.Owner(k)
		if was.Name != "n4" && was.Name != is.Name {
			t.Fatalf("key %.8s moved %s -> %s though its owner never left", k, was.Name, is.Name)
		}
		if was.Name == "n4" && is.Name == "n4" {
			t.Fatalf("key %.8s still owned by removed node", k)
		}
	}
}

// TestRingSuccessorsDistinct checks the fallback walk: Successors returns
// distinct nodes starting at the owner.
func TestRingSuccessorsDistinct(t *testing.T) {
	r, err := NewRing(testNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := testKey(i)
		succ := r.Successors(k, 4)
		if len(succ) != 4 {
			t.Fatalf("Successors(%q, 4) returned %d nodes", k, len(succ))
		}
		if succ[0].Name != r.Owner(k).Name {
			t.Fatalf("Successors[0] = %s, want owner %s", succ[0].Name, r.Owner(k).Name)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n.Name] {
				t.Fatalf("Successors returned %s twice", n.Name)
			}
			seen[n.Name] = true
		}
	}
}

// TestRingRejectsDuplicates checks membership validation.
func TestRingRejectsDuplicates(t *testing.T) {
	nodes := testNodes(2)
	nodes[1].Name = nodes[0].Name
	if _, err := NewRing(nodes); err == nil {
		t.Fatal("NewRing accepted duplicate node names")
	}
	if _, err := NewRing(nil); err == nil {
		t.Fatal("NewRing accepted an empty membership")
	}
}

// TestParseNodes checks the -backends flag grammar.
func TestParseNodes(t *testing.T) {
	nodes, err := ParseNodes("http://10.0.0.1:8377*2, http://10.0.0.2:8377")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(nodes))
	}
	if nodes[0].Name != "10.0.0.1:8377" || nodes[0].Weight != 2 {
		t.Errorf("node 0 = %+v, want name 10.0.0.1:8377 weight 2", nodes[0])
	}
	if nodes[1].Weight != 1 {
		t.Errorf("node 1 weight = %d, want default 1", nodes[1].Weight)
	}
	for _, bad := range []string{"", "not-a-url", "http://a*0", "http://a*x"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Errorf("ParseNodes(%q) accepted invalid input", bad)
		}
	}
}
