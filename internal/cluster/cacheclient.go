package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"mmt/internal/obs/span"
)

// CacheClient implements runner.RemoteCache against a CacheServer. A nil
// *CacheClient is a valid no-op tier; transport errors surface to the
// caller, which treats them as misses.
type CacheClient struct {
	base string
	hc   *http.Client
}

// NewCacheClient points a client at an mmtcached base URL, e.g.
// "http://127.0.0.1:8380". The client performs single attempts — the
// runner already bounds each call with its RemoteTimeout, and a flaky
// cache tier must never slow the simulate path down.
func NewCacheClient(baseURL string, hc *http.Client) *CacheClient {
	if hc == nil {
		hc = &http.Client{}
	}
	return &CacheClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// Load fetches the entry for key. A 404 is a miss, not an error.
func (c *CacheClient) Load(ctx context.Context, key string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	if sc, ok := span.FromContext(ctx); ok {
		span.Inject(req.Header, sc)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
		if err != nil {
			return nil, false, err
		}
		return raw, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("remote cache load: status %d", resp.StatusCode)
	}
}

// Store uploads the raw entry for key. The server re-validates the blob,
// so a 400 here means the entry was malformed, not that the tier is down.
func (c *CacheClient) Store(ctx context.Context, key string, raw []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/cache/"+key, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc, ok := span.FromContext(ctx); ok {
		span.Inject(req.Header, sc)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // drain for reuse
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote cache store: status %d", resp.StatusCode)
	}
	return nil
}

// FetchClusterStats GETs a router's /v1/cluster snapshot. mmtload's
// -cluster mode diffs two of these around a run to report per-node
// throughput and the fleet dedup ratio.
func FetchClusterStats(ctx context.Context, hc *http.Client, baseURL string) (ClusterStats, error) {
	var cs ClusterStats
	if hc == nil {
		hc = &http.Client{}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(baseURL, "/")+"/v1/cluster", nil)
	if err != nil {
		return cs, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return cs, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cs, fmt.Errorf("cluster stats: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&cs)
	return cs, err
}
