package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"mmt/internal/runner"
)

func startCacheServer(t *testing.T, opts CacheServerOptions) (*CacheServer, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := NewCacheServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

// runPool builds a one-off runner pool, runs the spec once, and returns
// the outcome source counters.
func runPool(t *testing.T, opts runner.Options) (fromCache bool, executed int) {
	t.Helper()
	opts.Workers = 1
	var comp runner.Completion
	done := make(chan struct{})
	opts.OnComplete = func(c runner.Completion) {
		comp = c
		close(done)
	}
	p, err := runner.New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	task, err := cheapSpec(2000).Task()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Do(task); err != nil {
		t.Fatal(err)
	}
	<-done
	return comp.FromCache, p.Summary().Executed
}

// TestCacheServerRoundTrip checks the wire contract: a stored entry comes
// back byte-identical, unknown keys 404, and invalid blobs are refused
// with 400 so a bad client cannot poison the shared store.
func TestCacheServerRoundTrip(t *testing.T) {
	srv, hs := startCacheServer(t, CacheServerOptions{})
	cli := NewCacheClient(hs.URL, nil)
	ctx := context.Background()

	task, err := cheapSpec(2000).Task()
	if err != nil {
		t.Fatal(err)
	}
	key, err := task.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Miss first.
	if _, ok, err := cli.Load(ctx, key); err != nil || ok {
		t.Fatalf("empty store: Load = ok=%v err=%v, want miss", ok, err)
	}

	// A real entry: simulate once through a pool that writes through.
	if _, executed := runPool(t, runner.Options{CacheDir: t.TempDir(), RemoteCache: cli}); executed != 1 {
		t.Fatalf("seed pool executed %d simulations, want 1", executed)
	}
	raw, ok, err := cli.Load(ctx, key)
	if err != nil || !ok {
		t.Fatalf("after write-through: Load = ok=%v err=%v, want hit", ok, err)
	}

	// Stored entry is served verbatim.
	again, ok, err := cli.Load(ctx, key)
	if err != nil || !ok || !bytes.Equal(raw, again) {
		t.Fatal("repeated Load returned a different blob")
	}

	// Poison attempts bounce.
	if err := cli.Store(ctx, key, []byte("{not json")); err == nil {
		t.Error("Store accepted a torn blob")
	}
	if err := cli.Store(ctx, "nothex", raw); err == nil {
		t.Error("Store accepted a malformed key")
	}
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.Store().Len() != 1 {
		t.Errorf("store holds %d entries, want 1", srv.Store().Len())
	}
}

// TestColdRestartServedFromRemote is the acceptance scenario: node A
// simulates and writes through to mmtcached; node B — a cold restart
// with an empty local cache — serves the same task from the remote tier
// without re-simulating.
func TestColdRestartServedFromRemote(t *testing.T) {
	_, hs := startCacheServer(t, CacheServerOptions{})
	cli := NewCacheClient(hs.URL, nil)

	if fromCache, executed := runPool(t, runner.Options{CacheDir: t.TempDir(), RemoteCache: cli}); fromCache || executed != 1 {
		t.Fatalf("warm-up pool: fromCache=%v executed=%d, want a fresh simulation", fromCache, executed)
	}
	// Fresh local cache dir = a cold node. Same remote tier.
	fromCache, executed := runPool(t, runner.Options{CacheDir: t.TempDir(), RemoteCache: cli})
	if !fromCache || executed != 0 {
		t.Fatalf("cold node: fromCache=%v executed=%d, want a remote cache hit and zero simulations", fromCache, executed)
	}
}
