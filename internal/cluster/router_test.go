package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mmt/internal/serve"
	"mmt/internal/sim"
)

// cheapSpec is a real but bounded simulation; varying maxInsts varies the
// cache key, which is how tests steer a spec onto a chosen ring owner.
func cheapSpec(maxInsts uint64) sim.TaskSpec {
	return sim.TaskSpec{App: "libsvm", Config: &sim.ConfigOverride{MaxInsts: maxInsts}}
}

func specKey(t *testing.T, spec sim.TaskSpec) string {
	t.Helper()
	task, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	key, err := task.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// specOwnedBy searches bounded variants for one whose key the ring places
// on the named node.
func specOwnedBy(t *testing.T, rt *Router, name string) sim.TaskSpec {
	t.Helper()
	for i := uint64(0); i < 256; i++ {
		spec := cheapSpec(2000 + 16*i)
		if rt.Owner(specKey(t, spec)).Name == name {
			return spec
		}
	}
	t.Fatalf("no cheap spec hashes onto node %s", name)
	return sim.TaskSpec{}
}

// fakeNode is a scriptable mmtserved stand-in: health status and queue
// depth are settable, and submissions are acknowledged without running
// anything.
type fakeNode struct {
	name    string
	status  atomic.Value // string: "ok" | "draining"
	depth   atomic.Int64
	submits atomic.Int64
	srv     *httptest.Server
}

func newFakeNode(t *testing.T, name string) *fakeNode {
	t.Helper()
	f := &fakeNode{name: name}
	f.status.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := f.status.Load().(string)
		code := http.StatusOK
		if st != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, serve.Health{Status: st})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, serve.Stats{QueueDepth: int(f.depth.Load())})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		n := f.submits.Add(1)
		writeJSON(w, http.StatusAccepted, serve.JobStatus{ID: fmt.Sprintf("%s-%d", f.name, n)})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func newTestRouter(t *testing.T, opts RouterOptions) *Router {
	t.Helper()
	if opts.ProbeEvery == 0 {
		opts.ProbeEvery = 20 * time.Millisecond
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// submitVia posts a spec through the router and returns the accepting
// node (the X-MMT-Node header) and response status.
func submitVia(t *testing.T, base string, spec sim.TaskSpec) (string, int) {
	t.Helper()
	body, err := json.Marshal(serve.SubmitRequest{Task: spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.Header.Get("X-MMT-Node"), resp.StatusCode
}

func clusterSnapshot(t *testing.T, base string) ClusterStats {
	t.Helper()
	cs, err := FetchClusterStats(context.Background(), nil, base)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// waitRouter polls the router until pred holds (probe loops need a beat
// to observe backend state changes).
func waitRouter(t *testing.T, pred func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("router never %s", what)
}

// TestRouterRoutesByRingOwner checks the core contract: submissions land
// on their key's ring owner, so identical submissions share a node.
func TestRouterRoutesByRingOwner(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	rt := newTestRouter(t, RouterOptions{Nodes: []Node{
		{Name: "a", URL: a.srv.URL}, {Name: "b", URL: b.srv.URL},
	}})
	front := httptest.NewServer(rt)
	defer front.Close()

	for i := uint64(0); i < 8; i++ {
		spec := cheapSpec(2000 + 16*i)
		want := rt.Owner(specKey(t, spec)).Name
		got, code := submitVia(t, front.URL, spec)
		if code != http.StatusAccepted || got != want {
			t.Errorf("spec %d: routed to %q (status %d), ring owner is %q", i, got, code, want)
		}
		// Resubmitting must not move the key.
		if again, _ := submitVia(t, front.URL, spec); again != got {
			t.Errorf("spec %d: resubmission moved %q -> %q", i, got, again)
		}
	}
	if a.submits.Load() == 0 || b.submits.Load() == 0 {
		t.Errorf("expected both nodes to receive work (a=%d b=%d)", a.submits.Load(), b.submits.Load())
	}
}

// TestRouterDrainReroute checks drain-aware routing: once a node starts
// draining, new keys it owns re-route to its ring successor, while the
// fleet health view reports the drain.
func TestRouterDrainReroute(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	rt := newTestRouter(t, RouterOptions{Nodes: []Node{
		{Name: "a", URL: a.srv.URL}, {Name: "b", URL: b.srv.URL},
	}})
	front := httptest.NewServer(rt)
	defer front.Close()

	spec := specOwnedBy(t, rt, "a")
	if node, _ := submitVia(t, front.URL, spec); node != "a" {
		t.Fatalf("before drain: routed to %q, want owner a", node)
	}

	a.status.Store("draining")
	waitRouter(t, func() bool {
		cs := clusterSnapshot(t, front.URL)
		for _, n := range cs.Nodes {
			if n.Name == "a" && n.State == "draining" {
				return true
			}
		}
		return false
	}, "observed node a draining")

	before := clusterSnapshot(t, front.URL)
	node, code := submitVia(t, front.URL, spec)
	if code != http.StatusAccepted || node != "b" {
		t.Fatalf("during drain: routed to %q (status %d), want successor b", node, code)
	}
	after := clusterSnapshot(t, front.URL)
	if after.Rerouted <= before.Rerouted {
		t.Errorf("rerouted counter did not move (%d -> %d)", before.Rerouted, after.Rerouted)
	}

	// Recovery: the drained node comes back and owns its keys again.
	a.status.Store("ok")
	waitRouter(t, func() bool {
		var h RouterHealth
		resp, err := http.Get(front.URL + "/v1/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return false
		}
		return h.Healthy == 2
	}, "saw node a healthy again")
}

// TestRouterWorkStealing checks the rebalance path: when a key's owner
// runs a hot queue, the idle node pulls the work instead — and the
// placement pin keeps later submissions of that key on the thief, so
// fleet-wide dedup is preserved.
func TestRouterWorkStealing(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	rt := newTestRouter(t, RouterOptions{
		Nodes:          []Node{{Name: "a", URL: a.srv.URL}, {Name: "b", URL: b.srv.URL}},
		StealThreshold: 4,
	})
	front := httptest.NewServer(rt)
	defer front.Close()

	spec := specOwnedBy(t, rt, "a")
	a.depth.Store(20) // owner runs hot
	waitRouter(t, func() bool {
		for _, n := range clusterSnapshot(t, front.URL).Nodes {
			if n.Name == "a" && n.QueueDepth == 20 {
				return true
			}
		}
		return false
	}, "observed the hot queue")

	node, code := submitVia(t, front.URL, spec)
	if code != http.StatusAccepted || node != "b" {
		t.Fatalf("hot owner: routed to %q (status %d), want idle node b", node, code)
	}
	if cs := clusterSnapshot(t, front.URL); cs.Stolen == 0 {
		t.Error("stolen counter did not move")
	}
	// The pin holds: the same key keeps landing on the thief even though
	// the ring still says a.
	for i := 0; i < 3; i++ {
		if node, _ := submitVia(t, front.URL, spec); node != "b" {
			t.Fatalf("resubmission %d left the pinned thief: %q", i, node)
		}
	}
	stolen := clusterSnapshot(t, front.URL).Stolen
	if stolen != 1 {
		t.Errorf("pinned resubmissions re-stole (stolen=%d, want 1)", stolen)
	}
}

// TestRouterDownBackendFailsOver checks transport-level failover: a dead
// backend is marked down on first contact and the submission retries on
// the survivor.
func TestRouterDownBackendFailsOver(t *testing.T) {
	a, b := newFakeNode(t, "a"), newFakeNode(t, "b")
	rt := newTestRouter(t, RouterOptions{
		Nodes:      []Node{{Name: "a", URL: a.srv.URL}, {Name: "b", URL: b.srv.URL}},
		ProbeEvery: time.Hour, // only the initial probe: the kill below stays unobserved
	})
	front := httptest.NewServer(rt)
	defer front.Close()

	spec := specOwnedBy(t, rt, "a")
	a.srv.Close() // dies after the initial probe saw it healthy
	node, code := submitVia(t, front.URL, spec)
	if code != http.StatusAccepted || node != "b" {
		t.Fatalf("dead owner: routed to %q (status %d), want failover to b", node, code)
	}
}
