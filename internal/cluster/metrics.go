package cluster

import "mmt/internal/obs"

// routerMetrics are the router's instruments, registered under
// mmt_cluster_* when the router is given a registry.
type routerMetrics struct {
	routed        *obs.Counter
	rerouted      *obs.Counter
	stolen        *obs.Counter
	errors        *obs.Counter
	probeFailures *obs.Counter

	healthy    *obs.Gauge
	draining   *obs.Gauge
	down       *obs.Gauge
	placements *obs.Gauge

	submitLatency *obs.Histogram
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	return &routerMetrics{
		routed:        reg.Counter("mmt_cluster_routed_total", "Submissions forwarded to a backend."),
		rerouted:      reg.Counter("mmt_cluster_rerouted_total", "Placements that skipped a draining or down ring owner."),
		stolen:        reg.Counter("mmt_cluster_stolen_total", "Submissions diverted off a hot owner to an idle node."),
		errors:        reg.Counter("mmt_cluster_errors_total", "Forwarding and proxy failures."),
		probeFailures: reg.Counter("mmt_cluster_probe_failures_total", "Probe rounds that classified a node as down."),
		healthy:       reg.Gauge("mmt_cluster_nodes_healthy", "Backends currently routable."),
		draining:      reg.Gauge("mmt_cluster_nodes_draining", "Backends finishing in-flight work after SIGTERM."),
		down:          reg.Gauge("mmt_cluster_nodes_down", "Backends failing health probes."),
		placements:    reg.Gauge("mmt_cluster_placements", "Live key-to-node placement pins."),
		submitLatency: reg.Histogram("mmt_cluster_submit_latency_seconds", "Submission forwarding latency, including placement."),
	}
}
