package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mmt/internal/obs/span"
	"mmt/internal/prog"
	"mmt/internal/serve"
	"mmt/internal/serve/client"
	"mmt/internal/sim"
)

// echoNode is a fake mmtserved that records the trace id each submission
// arrived with — both the body's trace_id and the traceparent header —
// and echoes it back, like the real server does.
type echoNode struct {
	name       string
	status     atomic.Value // string
	depth      atomic.Int64
	bodyTrace  atomic.Value // string: last SubmitRequest.TraceID
	headerCtx  atomic.Value // span.SpanContext: last traceparent
	srv        *httptest.Server
	submission atomic.Int64
}

func newEchoNode(t *testing.T, name string) *echoNode {
	t.Helper()
	f := &echoNode{name: name}
	f.status.Store("ok")
	f.bodyTrace.Store("")
	f.headerCtx.Store(span.SpanContext{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, serve.Health{Status: f.status.Load().(string)})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, serve.Stats{QueueDepth: int(f.depth.Load())})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req serve.SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, 0, "%v", err)
			return
		}
		f.bodyTrace.Store(req.TraceID)
		f.headerCtx.Store(span.Extract(r.Header))
		n := f.submission.Add(1)
		writeJSON(w, http.StatusAccepted, serve.JobStatus{
			ID: fmt.Sprintf("%s-%d", f.name, n), TraceID: req.TraceID,
		})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// TestStolenJobKeepsCreatorTraceID is the regression test for trace-id
// continuity on rebalanced placements: when a submission is work-stolen
// (or re-routed off a draining owner), the job must run under the trace
// id pinned at the router, not a fresh one minted by the accepting node —
// otherwise the fleet waterfall loses the hop where latency went.
func TestStolenJobKeepsCreatorTraceID(t *testing.T) {
	a, b := newEchoNode(t, "a"), newEchoNode(t, "b")
	tracer := span.NewTracer("router-under-test", 256)
	rt := newTestRouter(t, RouterOptions{
		Nodes:          []Node{{Name: "a", URL: a.srv.URL}, {Name: "b", URL: b.srv.URL}},
		StealThreshold: 4,
		Tracer:         tracer,
	})
	front := httptest.NewServer(rt)
	defer front.Close()

	spec := specOwnedBy(t, rt, "a")
	a.depth.Store(20) // the ring owner runs hot; b must steal the key
	waitRouter(t, func() bool {
		for _, n := range clusterSnapshot(t, front.URL).Nodes {
			if n.Name == "a" && n.QueueDepth == 20 {
				return true
			}
		}
		return false
	}, "observed the hot queue")

	// No client-chosen trace id: the router must mint one and the thief
	// must receive it, in the body and in the traceparent header.
	body, err := json.Marshal(serve.SubmitRequest{Task: spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-MMT-Node") != "b" {
		t.Fatalf("submission landed on %q, want stolen by b", resp.Header.Get("X-MMT-Node"))
	}
	if st.TraceID == "" {
		t.Fatal("router did not mint a trace id")
	}
	if got := b.bodyTrace.Load().(string); got != st.TraceID {
		t.Errorf("thief received body trace %q, want the router-pinned %q", got, st.TraceID)
	}
	if got := b.headerCtx.Load().(span.SpanContext); got.TraceID != st.TraceID {
		t.Errorf("thief received traceparent %q, want trace %q", got.TraceID, st.TraceID)
	}
	// The router's own route span marks the steal in that same trace.
	route := findRec(t, tracer.Records(st.TraceID), "router.route")
	if route.Attrs["stolen"] != "true" || route.Attrs["node"] != "b" {
		t.Errorf("router.route attrs = %v, want stolen=true node=b", route.Attrs)
	}

	// Re-route case: the owner drains, and a client-chosen id survives
	// the diversion to the ring successor.
	a.depth.Store(0)
	a.status.Store("draining")
	waitRouter(t, func() bool {
		for _, n := range clusterSnapshot(t, front.URL).Nodes {
			if n.Name == "a" && n.State == "draining" {
				return true
			}
		}
		return false
	}, "observed node a draining")
	spec2 := cheapSpec(900000) // a fresh key, unpinned by the steal above
	body2, err := json.Marshal(serve.SubmitRequest{Task: spec2, TraceID: "tr-reroute"})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(body2))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := b.bodyTrace.Load().(string); got != "tr-reroute" {
		t.Errorf("re-routed submission carried trace %q, want tr-reroute", got)
	}
	if got := b.headerCtx.Load().(span.SpanContext); got.TraceID != "tr-reroute" {
		t.Errorf("re-routed traceparent trace %q, want tr-reroute", got.TraceID)
	}
}

func findRec(t *testing.T, recs []span.Record, name string) span.Record {
	t.Helper()
	for _, r := range recs {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no %q span in %d records", name, len(recs))
	return span.Record{}
}

// gatedResolve blocks every real simulation build until release is
// called, so a second identical submission reliably joins the in-flight
// first one (the cluster-side twin of the serve package's gate).
func gatedResolve(t *testing.T) (func(sim.TaskSpec) (sim.Task, error), func()) {
	t.Helper()
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	resolve := func(spec sim.TaskSpec) (sim.Task, error) {
		task, err := spec.Task()
		if err != nil {
			return sim.Task{}, err
		}
		app, threads, ident := task.App, task.Threads, task.Preset.IdenticalInputs()
		task.Build = func() (*prog.System, error) {
			<-gate
			return app.Build(threads, ident)
		}
		return task, nil
	}
	return resolve, release
}

// TestFleetStitchedTrace is the tentpole acceptance test: a router and
// two real mmtserved nodes, each with its own span ring, produce traces
// that stitch into one tree spanning all three processes — including a
// dedup joiner whose span links back to the creator's flight — and the
// waterfall renders it.
func TestFleetStitchedTrace(t *testing.T) {
	resolve, release := gatedResolve(t)
	trA := span.NewTracer("node-a", 512)
	trB := span.NewTracer("node-b", 512)
	_, hsA := startBackend(t, serve.Options{Resolve: resolve, Tracer: trA})
	_, hsB := startBackend(t, serve.Options{Resolve: resolve, Tracer: trB})
	trR := span.NewTracer("router", 512)
	rt := newTestRouter(t, RouterOptions{
		Nodes:  []Node{{Name: "a", URL: hsA.URL}, {Name: "b", URL: hsB.URL}},
		Tracer: trR,
	})
	front := httptest.NewServer(rt)
	defer front.Close()

	specA := specOwnedBy(t, rt, "a")
	specB := specOwnedBy(t, rt, "b")
	c := client.New(front.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	creator, err := c.Submit(ctx, serve.SubmitRequest{Task: specA, TraceID: "fleet-1"})
	if err != nil {
		t.Fatal(err)
	}
	joiner, err := c.Submit(ctx, serve.SubmitRequest{Task: specA, TraceID: "fleet-2"})
	if err != nil {
		t.Fatal(err)
	}
	if !joiner.Dedup {
		t.Fatal("second identical submission did not join the in-flight first")
	}
	other, err := c.Submit(ctx, serve.SubmitRequest{Task: specB, TraceID: "fleet-3"})
	if err != nil {
		t.Fatal(err)
	}
	release()
	for _, id := range []string{creator.ID, joiner.ID, other.ID} {
		if st, err := c.Wait(ctx, id, nil); err != nil || st.State != serve.StateDone {
			t.Fatalf("job %s: %v (state %v)", id, err, st.State)
		}
	}

	// Gather all three traces from all three processes, exactly as
	// mmttrace does, and stitch.
	var records []span.Record
	for _, base := range []string{front.URL, hsA.URL, hsB.URL} {
		for _, id := range []string{"fleet-1", "fleet-2", "fleet-3"} {
			sr, err := span.FetchSpans(ctx, nil, base, id)
			if err != nil {
				t.Fatalf("fetching %s from %s: %v", id, base, err)
			}
			records = append(records, sr.Spans...)
		}
	}
	tree := span.Stitch(records)
	if want := []string{"node-a", "node-b", "router"}; strings.Join(tree.Services, ",") != strings.Join(want, ",") {
		t.Fatalf("stitched services = %v, want %v", tree.Services, want)
	}

	// Children never start before their parent, across processes too
	// (same machine clock; the parent's Start always precedes the RPC).
	tree.Walk(func(n *span.Node, _ int) {
		for _, ch := range n.Children {
			if ch.StartUNS < n.StartUNS-int64(2*time.Millisecond) {
				t.Errorf("span %s (%s) starts before its parent %s (%s)", ch.Name, ch.Service, n.Name, n.Service)
			}
		}
	})

	// The joined trace links to the creator's flight span on node a.
	join := findRec(t, trA.Records("fleet-2"), "serve.join")
	flight := findRec(t, trA.Records("fleet-1"), "serve.flight")
	if join.LinkTrace != "fleet-1" || join.LinkSpan != flight.SpanID {
		t.Errorf("joiner links %s@%s, want the creator flight %s@fleet-1", join.LinkSpan, join.LinkTrace, flight.SpanID)
	}
	// Within the stitched tree no link dangles: the creator trace is
	// present, so the joiner's edge resolves.
	if links := tree.Links(); len(links) != 0 {
		t.Errorf("stitched tree dangles links: %v", links)
	}

	// Every hop is attributed: the trace that crossed router -> node a
	// carries both processes' spans.
	perService := make(map[string]bool)
	for _, r := range records {
		if r.TraceID == "fleet-1" {
			perService[r.Service] = true
		}
	}
	if !perService["router"] || !perService["node-a"] {
		t.Errorf("trace fleet-1 spans services %v, want router and node-a", perService)
	}

	// And the waterfall renders all of it.
	var buf bytes.Buffer
	tree.WriteWaterfall(&buf)
	out := buf.String()
	if !strings.Contains(out, "from 3 processes") {
		t.Errorf("waterfall header missing process count:\n%s", out)
	}
	for _, want := range []string{"router.submit", "serve.exec", "sim.run", "serve.join", "link="} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
}
