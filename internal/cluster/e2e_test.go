package cluster

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mmt/internal/runner"
	"mmt/internal/serve"
	"mmt/internal/serve/client"
)

// startBackend brings up a real in-process mmtserved node.
func startBackend(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	if opts.Runner.Workers == 0 {
		opts.Runner.Workers = 2
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 64
	}
	s, err := serve.New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

// TestFleetWideDedup is the tentpole acceptance test: with two real
// backends behind the router, N identical submissions — arriving
// concurrently from many clients — cost exactly one simulation
// fleet-wide. Consistent hashing lands every copy on one node, where
// single-flight dedup and the result cache absorb the rest.
func TestFleetWideDedup(t *testing.T) {
	_, hsA := startBackend(t, serve.Options{Runner: runner.Options{CacheDir: t.TempDir()}})
	_, hsB := startBackend(t, serve.Options{Runner: runner.Options{CacheDir: t.TempDir()}})
	rt := newTestRouter(t, RouterOptions{Nodes: []Node{
		{Name: "a", URL: hsA.URL}, {Name: "b", URL: hsB.URL},
	}})
	front := httptest.NewServer(rt)
	defer front.Close()

	const n = 8
	spec := cheapSpec(2000)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.New(front.URL, nil)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			_, _, err := c.Run(ctx, serve.SubmitRequest{Task: spec})
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	cs := clusterSnapshot(t, front.URL)
	if cs.Fleet.Completed != n {
		t.Errorf("fleet completed %d jobs, want %d", cs.Fleet.Completed, n)
	}
	if cs.Fleet.Simulated != 1 {
		t.Errorf("fleet ran %d simulations for %d identical submissions, want exactly 1", cs.Fleet.Simulated, n)
	}
	want := float64(n-1) / float64(n)
	if cs.DedupRatio < want-1e-9 {
		t.Errorf("dedup ratio %.3f, want >= %.3f", cs.DedupRatio, want)
	}
	// All copies must have landed on one node.
	busy := 0
	for _, node := range cs.Nodes {
		if node.Routed > 0 {
			busy++
			if node.Routed != n {
				t.Errorf("node %s accepted %d submissions, want all %d on one node", node.Name, node.Routed, n)
			}
		}
	}
	if busy != 1 {
		t.Errorf("%d nodes accepted submissions, want exactly 1", busy)
	}
}

// TestRouterProxiesJobsOnDrainingNode checks the lifecycle guarantee that
// jobs accepted before a drain stay reachable through the router while
// the node finishes them.
func TestRouterProxiesJobsOnDrainingNode(t *testing.T) {
	srvA, hsA := startBackend(t, serve.Options{})
	_, hsB := startBackend(t, serve.Options{})
	rt := newTestRouter(t, RouterOptions{Nodes: []Node{
		{Name: "a", URL: hsA.URL}, {Name: "b", URL: hsB.URL},
	}})
	front := httptest.NewServer(rt)
	defer front.Close()

	spec := specOwnedBy(t, rt, "a")
	c := client.New(front.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, serve.SubmitRequest{Task: spec})
	if err != nil {
		t.Fatal(err)
	}

	// Drain the accepting node; its in-flight job must finish and stay
	// pollable through the router the whole time.
	drained := make(chan error, 1)
	go func() { drained <- srvA.Drain(ctx) }()

	final, err := c.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatalf("waiting through router during drain: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
