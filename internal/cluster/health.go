package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"mmt/internal/serve"
)

// probeLoop re-probes the fleet on the configured cadence and sweeps
// expired placements between rounds.
func (rt *Router) probeLoop() {
	defer rt.probers.Done()
	ticker := time.NewTicker(rt.opts.ProbeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeAll()
			rt.sweepPlacements()
		}
	}
}

// probeAll probes every backend concurrently and refreshes the node-state
// gauges.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			rt.probeOne(b)
		}(b)
	}
	wg.Wait()
	if rt.met == nil {
		return
	}
	var healthy, draining, down int64
	for _, b := range rt.backends {
		switch st, _ := b.snapshotState(); st {
		case stateHealthy:
			healthy++
		case stateDraining:
			draining++
		default:
			down++
		}
	}
	rt.met.healthy.Set(healthy)
	rt.met.draining.Set(draining)
	rt.met.down.Set(down)
}

// probeOne classifies one backend — healthy, draining (the node answered
// /v1/healthz with a draining status, i.e. it took a SIGTERM and is
// finishing in-flight work) or down — and refreshes its queue-depth
// gauge from /v1/stats.
func (rt *Router) probeOne(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	state := stateDown
	var perr error
	h, err := rt.fetchHealth(ctx, b)
	switch {
	case err != nil:
		perr = err
	case h.Status == "draining":
		state = stateDraining
	case h.Status == "ok":
		state = stateHealthy
	default:
		perr = fmt.Errorf("healthz status %q", h.Status)
	}

	var stats serve.Stats
	statsOK := false
	if state != stateDown {
		if s, err := rt.statsRequest(ctx, b); err == nil {
			stats, statsOK = s, true
		}
	}

	b.mu.Lock()
	prev := b.state
	b.state = state
	if perr != nil {
		b.lastErr = perr.Error()
	} else {
		b.lastErr = ""
	}
	if statsOK {
		b.stats = stats
		b.statsOK = true
		b.queueDepth = stats.QueueDepth
	}
	b.mu.Unlock()

	if prev == stateHealthy && state != stateHealthy {
		// The node left the routable set: unpin its keys so the next
		// submission of each re-routes to a ring successor immediately
		// instead of waiting out the placement TTL.
		rt.unplaceBackend(b)
	}
	if state == stateDown && rt.met != nil {
		rt.met.probeFailures.Inc()
	}
}

// fetchHealth GETs a backend's /v1/healthz without retries. A 503 body
// still decodes — that is how a draining node announces itself.
func (rt *Router) fetchHealth(ctx context.Context, b *backend) (serve.Health, error) {
	var h serve.Health
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.node.URL+"/v1/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return h, err
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("decoding healthz (%d): %w", resp.StatusCode, err)
	}
	return h, nil
}

// statsRequest GETs a backend's /v1/stats without retries.
func (rt *Router) statsRequest(ctx context.Context, b *backend) (serve.Stats, error) {
	var s serve.Stats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.node.URL+"/v1/stats", nil)
	if err != nil {
		return s, err
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("stats returned %d", resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&s)
	return s, err
}

// fetchStats returns a fresh stats snapshot for the fleet fan-out,
// falling back to the last probed snapshot on error.
func (rt *Router) fetchStats(ctx context.Context, b *backend) serve.Stats {
	rctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	defer cancel()
	if s, err := rt.statsRequest(rctx, b); err == nil {
		b.mu.Lock()
		b.stats = s
		b.statsOK = true
		b.queueDepth = s.QueueDepth
		b.mu.Unlock()
		return s
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// unplaceBackend drops every placement pinned to b.
func (rt *Router) unplaceBackend(b *backend) {
	rt.mu.Lock()
	for key, pl := range rt.placements {
		if pl.b == b {
			delete(rt.placements, key)
		}
	}
	if rt.met != nil {
		rt.met.placements.Set(int64(len(rt.placements)))
	}
	rt.mu.Unlock()
}

// sweepPlacements expires placements past their TTL.
func (rt *Router) sweepPlacements() {
	now := time.Now()
	rt.mu.Lock()
	for key, pl := range rt.placements {
		if now.Sub(pl.at) >= rt.opts.PlacementTTL {
			delete(rt.placements, key)
		}
	}
	if rt.met != nil {
		rt.met.placements.Set(int64(len(rt.placements)))
	}
	rt.mu.Unlock()
}
