package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Node is one mmtserved backend on the ring.
type Node struct {
	// Name is the node's stable identity on the ring (it seeds the
	// node's virtual points, so renaming a node moves its keys). Derived
	// from the URL's host:port when constructed by ParseNodes.
	Name string `json:"name"`
	// URL is the backend's base URL, e.g. "http://10.0.0.7:8377".
	URL string `json:"url"`
	// Weight scales the node's share of the key space (default 1). A
	// weight-2 node owns roughly twice the keys of a weight-1 node.
	Weight int `json:"weight,omitempty"`
}

// vnodesPerWeight is how many virtual points one unit of weight places on
// the ring. 160 keeps per-node share within a few percent of proportional
// while the ring stays small enough to rebuild on every membership change.
const vnodesPerWeight = 160

// ringPoint is one virtual node position.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is a consistent-hash ring over a fixed node set: Owner maps a task
// cache key to the node responsible for it, and key movement on
// membership change is minimal — adding a node only claims ~1/N of each
// existing node's keys, removing one only re-homes its own keys. The ring
// is immutable after New; the router rebuilds it on membership changes.
type Ring struct {
	nodes  []Node
	points []ringPoint
}

// NewRing builds a ring over the nodes. Weights <= 0 are treated as 1;
// duplicate names are an error because they would alias ring points.
func NewRing(nodes []Node) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{nodes: make([]Node, len(nodes))}
	for i, n := range nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node %d has no name", i)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if n.Weight <= 0 {
			n.Weight = 1
		}
		r.nodes[i] = n
		for v := 0; v < n.Weight*vnodesPerWeight; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n.Name, v), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// pointHash positions one virtual node: the first 8 bytes of
// SHA-256("name#v").
func pointHash(name string, v int) uint64 {
	sum := sha256.Sum256([]byte(name + "#" + strconv.Itoa(v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a task cache key on the ring. Keys are already hex
// SHA-256, but re-hashing keeps the placement independent of the key
// encoding.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's membership in construction order.
func (r *Ring) Nodes() []Node { return r.nodes }

// Owner returns the node responsible for key: the first virtual point
// clockwise from the key's position.
func (r *Ring) Owner(key string) Node {
	return r.nodes[r.points[r.search(key)].node]
}

// search returns the index of key's owning point (caller guarantees a
// non-empty ring, which NewRing enforces).
func (r *Ring) search(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the top arc
	}
	return i
}

// Successors returns up to n distinct nodes in ring order starting at
// key's owner — the fallback sequence a router walks when the owner is
// draining or down. n > len(nodes) is clamped.
func (r *Ring) Successors(key string, n int) []Node {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]Node, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// ParseNodes parses a comma-separated backend list into ring nodes. Each
// element is a base URL with an optional "*weight" suffix:
//
//	http://10.0.0.7:8377,http://10.0.0.8:8377*2
//
// Node names are derived from the URL's host:port.
func ParseNodes(s string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		weight := 1
		if i := strings.LastIndex(part, "*"); i >= 0 {
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("cluster: bad weight in %q", part)
			}
			weight, part = w, part[:i]
		}
		u, err := url.Parse(part)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: backend %q is not a base URL (want e.g. http://host:port)", part)
		}
		nodes = append(nodes, Node{Name: u.Host, URL: strings.TrimRight(part, "/"), Weight: weight})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no backends given")
	}
	return nodes, nil
}
