package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mmt/internal/obs"
	"mmt/internal/prog"
	"mmt/internal/runner"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// cheapSpec is a real but bounded simulation: libsvm capped at 20k
// committed instructions finishes in well under a second.
func cheapSpec(maxInsts uint64) sim.TaskSpec {
	return sim.TaskSpec{App: "libsvm", Config: &sim.ConfigOverride{MaxInsts: maxInsts}}
}

// gatedResolve wraps the default spec resolution so every system build
// blocks until release is called, and counts builds (= simulations
// actually run; cache hits never build). The task key is unchanged — the
// gate builds exactly the standard system.
func gatedResolve(t *testing.T) (resolve func(sim.TaskSpec) (sim.Task, error), builds *atomic.Int32, order *buildLog, release func()) {
	t.Helper()
	gate := make(chan struct{})
	var n atomic.Int32
	log := &buildLog{}
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release) // never leave a dispatcher blocked at teardown
	resolve = func(spec sim.TaskSpec) (sim.Task, error) {
		task, err := spec.Task()
		if err != nil {
			return sim.Task{}, err
		}
		app, threads, ident := task.App, task.Threads, task.Preset.IdenticalInputs()
		task.Build = func() (*prog.System, error) {
			n.Add(1)
			log.add(spec)
			<-gate
			return app.Build(threads, ident)
		}
		return task, nil
	}
	return resolve, &n, log, release
}

type buildLog struct {
	mu    sync.Mutex
	specs []sim.TaskSpec
}

func (l *buildLog) add(s sim.TaskSpec) {
	l.mu.Lock()
	l.specs = append(l.specs, s)
	l.mu.Unlock()
}

func (l *buildLog) list() []sim.TaskSpec {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]sim.TaskSpec(nil), l.specs...)
}

func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postJob(t *testing.T, base string, req SubmitRequest) (JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding accepted job: %v", err)
		}
	}
	return st, resp
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: %s", id, resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStats(t *testing.T, base string) Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, base, id string, pred func(JobStatus) bool, what string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, base, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, what)
	return JobStatus{}
}

func waitDone(t *testing.T, base, id string) JobStatus {
	return waitState(t, base, id, func(s JobStatus) bool { return s.State.Terminal() }, "a terminal state")
}

// TestDedupSingleFlight is the dedup proof: eight concurrent identical
// submissions run exactly one simulation, and every waiter receives the
// same outcome.
func TestDedupSingleFlight(t *testing.T) {
	resolve, builds, _, release := gatedResolve(t)
	reg := obs.NewRegistry()
	_, hs := startServer(t, Options{
		Runner:      runner.Options{Workers: 2},
		MaxQueue:    16,
		Dispatchers: 2,
		Resolve:     resolve,
		Metrics:     reg,
	})

	const n = 8
	spec := cheapSpec(20000)
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := postJob(t, hs.URL, SubmitRequest{Task: spec})
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submission %d: %s", i, resp.Status)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	release()

	var outcomes [][]byte
	for _, id := range ids {
		st := waitDone(t, hs.URL, id)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s (error %q)", id, st.State, st.Error)
		}
		if st.Source != "simulated" {
			t.Errorf("job %s: source %q, want simulated", id, st.Source)
		}
		if _, err := st.DecodeOutcome(); err != nil {
			t.Errorf("job %s outcome: %v", id, err)
		}
		outcomes = append(outcomes, st.Outcome)
	}
	for i := 1; i < len(outcomes); i++ {
		if !bytes.Equal(outcomes[0], outcomes[i]) {
			t.Errorf("job %d outcome differs from job 0", i)
		}
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("simulations run = %d, want exactly 1", got)
	}

	st := getStats(t, hs.URL)
	if st.Submitted != n || st.Deduped != n-1 || st.Completed != n || st.Simulated != 1 {
		t.Errorf("stats = submitted %d deduped %d completed %d simulated %d, want %d/%d/%d/1",
			st.Submitted, st.Deduped, st.Completed, st.Simulated, n, n-1, n)
	}
	snap := reg.Snapshot()
	if snap["mmt_serve_jobs_deduped_total"] != uint64(n-1) {
		t.Errorf("dedup metric = %v", snap["mmt_serve_jobs_deduped_total"])
	}
	if snap["mmt_serve_job_latency_seconds_count"] != uint64(n) {
		t.Errorf("job latency count = %v", snap["mmt_serve_job_latency_seconds_count"])
	}
}

// TestWarmRestartServedFromCache proves the persistent cache extends
// dedup across server restarts: a fresh server over the same cache
// directory serves a repeated submission without re-simulating.
func TestWarmRestartServedFromCache(t *testing.T) {
	dir := t.TempDir()
	spec := cheapSpec(20000)

	srvA, err := New(context.Background(), Options{Runner: runner.Options{Workers: 1, CacheDir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	hsA := httptest.NewServer(srvA)
	stA, resp := postJob(t, hsA.URL, SubmitRequest{Task: spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	cold := waitDone(t, hsA.URL, stA.ID)
	if cold.State != StateDone || cold.Source != "simulated" {
		t.Fatalf("cold job: state %s source %q", cold.State, cold.Source)
	}
	hsA.Close()
	srvA.Close()

	_, hsB := startServer(t, Options{Runner: runner.Options{Workers: 1, CacheDir: dir}})
	stB, resp := postJob(t, hsB.URL, SubmitRequest{Task: spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("warm submit: %s", resp.Status)
	}
	warm := waitDone(t, hsB.URL, stB.ID)
	if warm.State != StateDone {
		t.Fatalf("warm job: state %s (error %q)", warm.State, warm.Error)
	}
	if warm.Source != "cache" {
		t.Errorf("warm job source = %q, want cache", warm.Source)
	}
	if !bytes.Equal(cold.Outcome, warm.Outcome) {
		t.Error("warm outcome differs from cold outcome")
	}
	if st := getStats(t, hsB.URL); st.FromCache != 1 || st.Simulated != 0 {
		t.Errorf("warm stats: from_cache %d simulated %d, want 1/0", st.FromCache, st.Simulated)
	}
}

// TestAdmissionBackpressure fills the queue and checks the 429 +
// Retry-After contract, and that dedup joins bypass admission control.
func TestAdmissionBackpressure(t *testing.T) {
	resolve, _, _, release := gatedResolve(t)
	_, hs := startServer(t, Options{
		Runner:      runner.Options{Workers: 1},
		MaxQueue:    1,
		Dispatchers: 1,
		Resolve:     resolve,
	})

	// A occupies the sole dispatcher (its build blocks on the gate).
	a, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %s", resp.Status)
	}
	waitState(t, hs.URL, a.ID, func(s JobStatus) bool { return s.State == StateRunning }, "running")

	// B fills the one queue slot.
	b, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(30000)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %s", resp.Status)
	}
	if b.State != StateQueued || b.QueuePosition != 1 {
		t.Errorf("B: state %s position %d, want queued at 1", b.State, b.QueuePosition)
	}

	// B' duplicates B: a dedup join, admitted despite the full queue.
	bDup, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(30000)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B': %s", resp.Status)
	}
	if !bDup.Dedup {
		t.Error("B' not marked dedup")
	}

	// C is novel work against a full queue: 429 with a Retry-After hint.
	_, resp = postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(40000)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit C: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive integer", ra)
	}

	release()
	for _, id := range []string{a.ID, b.ID, bDup.ID} {
		if st := waitDone(t, hs.URL, id); st.State != StateDone {
			t.Errorf("job %s: state %s (error %q)", id, st.State, st.Error)
		}
	}
	if st := getStats(t, hs.URL); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
}

// TestPriorityDispatchOrder: a higher-priority later submission overtakes
// queued work.
func TestPriorityDispatchOrder(t *testing.T) {
	resolve, _, order, release := gatedResolve(t)
	_, hs := startServer(t, Options{
		Runner:      runner.Options{Workers: 1},
		MaxQueue:    8,
		Dispatchers: 1,
		Resolve:     resolve,
	})

	a, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	waitState(t, hs.URL, a.ID, func(s JobStatus) bool { return s.State == StateRunning }, "running")
	low, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(30000), Priority: 0})
	high, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(40000), Priority: 5})
	if st := getJob(t, hs.URL, high.ID); st.QueuePosition != 1 {
		t.Errorf("high-priority queue position = %d, want 1", st.QueuePosition)
	}

	release()
	waitDone(t, hs.URL, low.ID)
	waitDone(t, hs.URL, high.ID)

	specs := order.list()
	if len(specs) != 3 {
		t.Fatalf("builds = %d, want 3", len(specs))
	}
	if specs[1].Config.MaxInsts != 40000 || specs[2].Config.MaxInsts != 30000 {
		t.Errorf("dispatch order = %d then %d, want the priority-5 job first",
			specs[1].Config.MaxInsts, specs[2].Config.MaxInsts)
	}
}

// TestQueuedDeadlineExpires: a job not dispatched by its deadline fails
// fast with StateExpired and never simulates.
func TestQueuedDeadlineExpires(t *testing.T) {
	resolve, builds, _, release := gatedResolve(t)
	_, hs := startServer(t, Options{
		Runner:      runner.Options{Workers: 1},
		MaxQueue:    8,
		Dispatchers: 1,
		Resolve:     resolve,
	})

	a, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	waitState(t, hs.URL, a.ID, func(s JobStatus) bool { return s.State == StateRunning }, "running")
	b, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(30000), DeadlineMS: 30})
	st := waitState(t, hs.URL, b.ID, func(s JobStatus) bool { return s.State.Terminal() }, "terminal")
	if st.State != StateExpired {
		t.Fatalf("B state = %s, want expired", st.State)
	}
	if st.Error == "" {
		t.Error("expired job carries no error message")
	}

	release()
	waitDone(t, hs.URL, a.ID)
	if got := builds.Load(); got != 1 {
		t.Errorf("builds = %d, want 1 (the expired job must not simulate)", got)
	}
	if stats := getStats(t, hs.URL); stats.Expired != 1 {
		t.Errorf("expired = %d, want 1", stats.Expired)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data JobStatus
}

func readSSE(t *testing.T, r *bufio.Reader) sseEvent {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
				t.Fatalf("decoding SSE data: %v", err)
			}
		case line == "" && ev.name != "":
			return ev
		}
	}
}

// TestStreamDeliversOutcome follows a job over SSE from submission to its
// final outcome event.
func TestStreamDeliversOutcome(t *testing.T) {
	resolve, _, _, release := gatedResolve(t)
	_, hs := startServer(t, Options{
		Runner:         runner.Options{Workers: 1},
		MaxQueue:       4,
		Dispatchers:    1,
		HeartbeatEvery: 20 * time.Millisecond,
		Resolve:        resolve,
	})

	st, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	first := readSSE(t, br)
	if first.name != eventState {
		t.Fatalf("first event = %q, want state", first.name)
	}
	if first.data.State.Terminal() {
		t.Fatalf("first event already terminal: %s", first.data.State)
	}

	// Collect at least one heartbeat while the build is gated, then the
	// outcome after release.
	sawProgress := false
	release2 := sync.OnceFunc(release)
	for {
		ev := readSSE(t, br)
		switch ev.name {
		case eventProgress:
			sawProgress = true
			release2()
		case eventOutcome:
			if !sawProgress {
				t.Error("no progress heartbeat before the outcome")
			}
			if ev.data.State != StateDone {
				t.Fatalf("outcome state = %s (error %q)", ev.data.State, ev.data.Error)
			}
			if _, err := ev.data.DecodeOutcome(); err != nil {
				t.Fatalf("stream outcome: %v", err)
			}
			// The stream ends after the outcome.
			if _, err := br.ReadByte(); err == nil {
				t.Error("stream kept going after the outcome event")
			}
			return
		default:
			t.Fatalf("unexpected event %q", ev.name)
		}
	}
}

// TestStreamOfFinishedJob gets the outcome immediately.
func TestStreamOfFinishedJob(t *testing.T) {
	_, hs := startServer(t, Options{Runner: runner.Options{Workers: 1}})
	st, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	waitDone(t, hs.URL, st.ID)

	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ev := readSSE(t, bufio.NewReader(resp.Body))
	if ev.name != eventOutcome || ev.data.State != StateDone {
		t.Fatalf("event %q state %s, want an immediate done outcome", ev.name, ev.data.State)
	}
}

// TestDrainAndClose: draining rejects new work with 503 while in-flight
// work completes; Close strands nothing.
func TestDrainAndClose(t *testing.T) {
	resolve, _, _, release := gatedResolve(t)
	s, hs := startServer(t, Options{
		Runner:      runner.Options{Workers: 1},
		MaxQueue:    4,
		Dispatchers: 1,
		Resolve:     resolve,
	})

	a, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	waitState(t, hs.URL, a.ID, func(st JobStatus) bool { return st.State == StateRunning }, "running")

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining flips healthz and refuses new submissions.
	waitHealth := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		json.NewDecoder(resp.Body).Decode(&h) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && h.Status == "draining" {
			break
		}
		if time.Now().After(waitHealth) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(30000)}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: %s, want 503", resp.Status)
	}

	release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := getJob(t, hs.URL, a.ID); st.State != StateDone {
		t.Errorf("job A after drain: %s", st.State)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseStrandsQueuedJobs: queued-but-undispatched jobs fail with the
// shutdown error instead of hanging.
func TestCloseStrandsQueuedJobs(t *testing.T) {
	resolve, _, _, release := gatedResolve(t)
	s, hs := startServer(t, Options{
		Runner:      runner.Options{Workers: 1},
		MaxQueue:    4,
		Dispatchers: 1,
		Resolve:     resolve,
	})
	a, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	waitState(t, hs.URL, a.ID, func(st JobStatus) bool { return st.State == StateRunning }, "running")
	b, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(30000)})

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	st := waitState(t, hs.URL, b.ID, func(st JobStatus) bool { return st.State.Terminal() }, "terminal")
	if st.State != StateFailed || !strings.Contains(st.Error, "shutting down") {
		t.Errorf("stranded job: state %s error %q", st.State, st.Error)
	}
	release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBadSubmissions: malformed and invalid payloads fail at admission
// with 400, unknown jobs with 404.
func TestBadSubmissions(t *testing.T) {
	_, hs := startServer(t, Options{Runner: runner.Options{Workers: 1}})

	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %s, want 400", resp.Status)
	}

	if _, resp := postJob(t, hs.URL, SubmitRequest{Task: sim.TaskSpec{App: "no-such-app"}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown app: %s, want 400", resp.Status)
	}

	r2, err := http.Get(hs.URL + "/v1/jobs/j999999-missing")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %s, want 404", r2.Status)
	}
}

func TestServeMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := startServer(t, Options{Runner: runner.Options{Workers: 1}, Metrics: reg})
	st, _ := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	waitDone(t, hs.URL, st.ID)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"mmt_serve_jobs_submitted_total 1",
		"mmt_serve_jobs_completed_total 1",
		"mmt_serve_queue_depth 0",
		"# TYPE mmt_serve_request_latency_seconds histogram",
		"# TYPE mmt_serve_job_latency_seconds histogram",
		"mmt_serve_job_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(out, "mmt_runner_") {
		t.Error("pool metrics not shared into the serve registry")
	}
}

// TestPrecheckAdmissionGate proves the static admission gate: a
// submission whose resolved program carries error-severity findings is
// rejected with 400 before it consumes a queue slot (and the memoized
// verdict answers resubmissions), while a sound program is admitted and
// runs to completion on the same server.
func TestPrecheckAdmissionGate(t *testing.T) {
	// No halt and no branch: execution falls off the end of the text
	// segment, an error-severity static finding.
	const badSrc = `
        tid  r4
        addi r5, r4, 1
`
	resolve := func(spec sim.TaskSpec) (sim.Task, error) {
		task, err := cheapSpec(20000).Task()
		if err != nil {
			return sim.Task{}, err
		}
		if spec.App == "broken" {
			task.App = workloads.App{Name: "broken", Source: badSrc}
		}
		return task, nil
	}
	_, hs := startServer(t, Options{
		Runner:   runner.Options{Workers: 1},
		MaxQueue: 4,
		Precheck: true,
		Resolve:  resolve,
	})

	for i := 0; i < 2; i++ { // the second round answers from the memo
		_, resp := postJob(t, hs.URL, SubmitRequest{Task: sim.TaskSpec{App: "broken"}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad program round %d: %s, want 400", i, resp.Status)
		}
	}

	st, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sound program: %s, want 202", resp.Status)
	}
	if got := waitDone(t, hs.URL, st.ID); got.State != StateDone {
		t.Fatalf("sound program job: %s (error %q)", got.State, got.Error)
	}
	if stats := getStats(t, hs.URL); stats.Submitted != 1 {
		t.Errorf("submitted = %d, want 1 (rejections must not count)", stats.Submitted)
	}
}
