package serve

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"mmt/internal/asm"
	"mmt/internal/sim"
	"mmt/internal/static"
)

// The Precheck admission gate: before a submitted task is admitted, its
// program is assembled and statically analyzed (internal/static), and
// error-severity findings reject the job with 400 instead of burning a
// worker on a program that falls off its text segment or overwrites its
// own code. Analyses are memoized by the source hash — a busy server
// sees the same handful of programs over and over, so each distinct
// source is analyzed exactly once for the server's lifetime.

type prechecker struct {
	mu   sync.Mutex
	seen map[[sha256.Size]byte]error
}

func newPrechecker() *prechecker {
	return &prechecker{seen: make(map[[sha256.Size]byte]error)}
}

// check returns the cached or freshly computed static verdict for the
// task's program. Tasks built without a workload source (custom Build
// hooks from an embedder's Resolve) are not checkable and pass.
func (pc *prechecker) check(task sim.Task) error {
	if task.App.Source == "" {
		return nil
	}
	h := sha256.New()
	h.Write([]byte(task.App.Name))
	h.Write([]byte{0})
	h.Write([]byte(task.App.Source))
	var key [sha256.Size]byte
	h.Sum(key[:0])

	pc.mu.Lock()
	verdict, ok := pc.seen[key]
	pc.mu.Unlock()
	if ok {
		return verdict
	}

	p, err := asm.Assemble(task.App.Name, task.App.Source)
	if err != nil {
		verdict = fmt.Errorf("assembling %s: %w", task.App.Name, err)
	} else {
		verdict = static.Check(p)
	}
	pc.mu.Lock()
	pc.seen[key] = verdict
	pc.mu.Unlock()
	return verdict
}
