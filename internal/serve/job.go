package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"mmt/internal/sim"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: admitted, waiting for a dispatch slot.
	StateQueued State = "queued"
	// StateRunning: its flight is executing on the pool.
	StateRunning State = "running"
	// StateDone: finished successfully; the outcome is available.
	StateDone State = "done"
	// StateFailed: finished with an error (Error holds it).
	StateFailed State = "failed"
	// StateExpired: missed its queued-deadline before dispatch.
	StateExpired State = "expired"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateExpired
}

// Job is one accepted submission. Distinct submissions of the same task
// get distinct jobs that share a flight (and therefore one simulation);
// every field after the identity block is guarded by Server.mu.
type Job struct {
	id       string
	key      string
	name     string
	spec     sim.TaskSpec
	priority int
	deadline time.Time // zero = none; queued-deadline only
	dedup    bool      // joined an existing flight at submission
	// traceID is the job-scoped correlation id: the client's, or minted
	// from the job id. The flight's creator's id is stamped on the
	// runner's obs events for the execution.
	traceID string

	submitted time.Time
	started   time.Time
	finished  time.Time
	state     State
	source    string // "simulated" or "cache" once done
	errMsg    string
	outcome   []byte // canonical outcome JSON (sim.MarshalOutcome)

	done chan struct{} // closed exactly once, on any terminal transition
}

// SubmitRequest is the POST /v1/jobs payload.
type SubmitRequest struct {
	// Task is the simulation to run (or join, if an identical one is
	// already queued, running, or cached).
	Task sim.TaskSpec `json:"task"`
	// Priority orders dispatch: higher runs first (default 0). Joining a
	// queued flight raises that flight to the joiner's priority.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the time from submission to dispatch in
	// milliseconds; a job still queued past it fails with StateExpired
	// (0 = the server's default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// TraceID is an optional client-chosen correlation id for the job
	// (printable, at most 128 characters). Empty lets the server mint
	// one from the job id. The id is echoed in every JobStatus and
	// stamped on the runner's obs events for the job's execution, so one
	// job is filterable in a busy server's Perfetto trace.
	TraceID string `json:"trace_id,omitempty"`
}

// JobStatus is the wire snapshot of a job, returned by POST /v1/jobs and
// GET /v1/jobs/{id} and carried in every SSE event.
type JobStatus struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Name     string `json:"name"`
	State    State  `json:"state"`
	Priority int    `json:"priority,omitempty"`
	// Dedup marks a submission that joined an already-admitted flight.
	Dedup bool `json:"dedup,omitempty"`
	// TraceID is the job's correlation id (client-chosen or minted).
	TraceID string `json:"trace_id,omitempty"`
	// Source reports how the outcome was produced: "simulated" or
	// "cache" (the persistent result cache). Empty until terminal.
	Source string `json:"source,omitempty"`
	// QueuePosition is the 1-based dispatch rank while queued.
	QueuePosition int `json:"queue_position,omitempty"`
	// WaitMS is submission→dispatch (or →now while queued); RunMS is
	// dispatch→finish (or →now while running).
	WaitMS int64  `json:"wait_ms"`
	RunMS  int64  `json:"run_ms,omitempty"`
	Error  string `json:"error,omitempty"`
	// Outcome is the canonical sim outcome encoding, present once done.
	Outcome json.RawMessage `json:"outcome,omitempty"`
}

// DecodeOutcome decodes the status's outcome blob.
func (js *JobStatus) DecodeOutcome() (*sim.Outcome, error) {
	if len(js.Outcome) == 0 {
		return nil, fmt.Errorf("serve: job %s has no outcome (state %s)", js.ID, js.State)
	}
	return sim.UnmarshalOutcome(js.Outcome)
}

// newJobLocked creates and registers a job (caller holds mu). An empty
// traceID mints one from the job id.
func (s *Server) newJobLocked(task sim.Task, spec sim.TaskSpec, key string, prio int, deadline time.Time, dedup bool, traceID string, now time.Time) *Job {
	s.seq++
	j := &Job{
		id:        fmt.Sprintf("j%06d-%.8s", s.seq, key),
		key:       key,
		name:      task.Name(),
		spec:      spec,
		priority:  prio,
		deadline:  deadline,
		dedup:     dedup,
		traceID:   traceID,
		submitted: now,
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	if j.traceID == "" {
		j.traceID = "t-" + j.id
	}
	s.jobs[j.id] = j
	return j
}

// snapshotLocked renders a job's wire status (caller holds mu). It also
// performs the lazy queued-deadline check, so an expired job reports
// StateExpired the first time anyone looks at it.
func (s *Server) snapshotLocked(j *Job, now time.Time) JobStatus {
	if j.state == StateQueued && !j.deadline.IsZero() && now.After(j.deadline) {
		s.expireLocked(j, now)
	}
	st := JobStatus{
		ID:       j.id,
		Key:      j.key,
		Name:     j.name,
		State:    j.state,
		Priority: j.priority,
		Dedup:    j.dedup,
		TraceID:  j.traceID,
		Source:   j.source,
		Error:    j.errMsg,
		Outcome:  j.outcome,
	}
	switch {
	case j.state == StateQueued:
		st.WaitMS = now.Sub(j.submitted).Milliseconds()
		st.QueuePosition = s.queuePositionLocked(j.key)
	case j.state == StateRunning:
		st.WaitMS = j.started.Sub(j.submitted).Milliseconds()
		st.RunMS = now.Sub(j.started).Milliseconds()
	default: // terminal
		end := j.started
		if end.IsZero() {
			end = j.finished
		}
		st.WaitMS = end.Sub(j.submitted).Milliseconds()
		if !j.started.IsZero() {
			st.RunMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	return st
}

// expireLocked fails a queued job that missed its deadline (caller holds
// mu). Its flight stays admitted — other joiners may still be live; a
// flight whose members all expired is released at dispatch time.
func (s *Server) expireLocked(j *Job, now time.Time) {
	j.state = StateExpired
	j.errMsg = fmt.Sprintf("deadline exceeded before dispatch (queued %s)", now.Sub(j.submitted).Round(time.Millisecond))
	j.finished = now
	s.counts.expired++
	if s.met != nil {
		s.met.expired.Inc()
	}
	s.opts.Flight.Complete(j.id, j.traceID, now.Sub(j.submitted), j.errMsg)
	close(j.done)
}
