package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"mmt/internal/obs"
	obsflight "mmt/internal/obs/flight"
	"mmt/internal/obs/span"
)

// TestDebugEndpointsUnderConcurrentLoad hammers /metrics, /v1/spans and
// /v1/debug/flight while jobs flow through the server. Run under -race
// this is the regression test for scrape-vs-serve data races.
func TestDebugEndpointsUnderConcurrentLoad(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := span.NewTracer("serve-test", 512)
	fl := obsflight.New("serve-test", 256)
	_, hs := startServer(t, Options{
		Metrics: reg,
		Tracer:  tracer,
		Flight:  fl,
		Debug: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"ok":true}`)) //nolint:errcheck
		}),
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	scrape := func(path string, check func(t *testing.T, body []byte)) {
		defer wg.Done()
		for ctx.Err() == nil {
			resp, err := http.Get(hs.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: %d: %s", path, resp.StatusCode, body)
				return
			}
			if check != nil {
				check(t, body)
			}
		}
	}
	wg.Add(3)
	go scrape("/metrics", func(t *testing.T, body []byte) {
		if !strings.Contains(string(body), "mmt_serve_jobs_submitted_total") {
			t.Error("/metrics missing serve counters")
		}
	})
	go scrape("/v1/spans", nil)
	go scrape("/v1/debug/flight", nil)

	// Drive load while the scrapers run: distinct tasks plus duplicates.
	var ids []string
	for i := 0; i < 6; i++ {
		st, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000 + uint64(i%3)*1000)})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitDone(t, hs.URL, id)
	}
	// Let the scrapers observe the fully-settled state at least once more.
	time.Sleep(20 * time.Millisecond)
	cancel()
	wg.Wait()

	// The flight ring saw every admission and completion edge.
	var admits, completes int
	for _, e := range fl.Entries() {
		switch e.Kind {
		case obsflight.KindAdmit:
			admits++
		case obsflight.KindComplete:
			completes++
		}
	}
	if admits < 6 || completes < 6 {
		t.Errorf("flight edges: %d admits, %d completes, want >= 6 each", admits, completes)
	}

	// The live endpoint serves a renderable dump.
	resp, err := http.Get(hs.URL + "/v1/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d obsflight.Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Service != "serve-test" || len(d.Entries) == 0 {
		t.Errorf("flight dump = service %q, %d entries", d.Service, len(d.Entries))
	}

	// The Debug prefix handler is mounted and the exact flight route wins.
	resp2, err := http.Get(hs.URL + "/v1/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body), `"ok":true`) {
		t.Errorf("debug prefix body = %s", body)
	}
}
