// Package serve turns the experiment subsystem into a long-running
// simulation-as-a-service daemon. It accepts simulation jobs over HTTP as
// declarative sim.TaskSpec payloads and layers real serving machinery on
// the internal/runner pool:
//
//   - a bounded admission queue with 429 + Retry-After backpressure, so a
//     traffic burst degrades into polite retries instead of unbounded
//     memory growth;
//   - single-flight deduplication keyed by the simulation's content-
//     addressed cache key — N concurrent identical submissions run one
//     simulation and fan the outcome out to every waiter, the MMT "fetch
//     once, share the stream" idea applied at the serving layer (the
//     persistent result cache then extends the sharing across restarts);
//   - per-job priorities (higher dispatches first) and queued-deadlines
//     (a job not dispatched by its deadline fails fast instead of
//     occupying the queue);
//   - Server-Sent Events streaming of job progress and the final outcome;
//   - graceful drain: stop admitting, finish in-flight work, then close.
//
// The HTTP surface:
//
//	POST /v1/jobs             submit a job (SubmitRequest -> JobStatus, 202)
//	GET  /v1/jobs/{id}        poll a job (JobStatus; outcome when done)
//	GET  /v1/jobs/{id}/stream SSE: state / progress events, final outcome
//	GET  /v1/healthz          liveness; 503 while draining
//	GET  /v1/stats            serving counters, queue depth, latency quantiles
//
// internal/serve/client is the Go client; cmd/mmtserved and cmd/mmtload
// are the daemon and the load generator.
package serve

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"mmt/internal/obs"
	obsflight "mmt/internal/obs/flight"
	"mmt/internal/obs/span"
	"mmt/internal/runner"
	"mmt/internal/sim"
)

// Options configures a Server.
type Options struct {
	// Runner configures the underlying pool. The server chains its own
	// completion bookkeeping onto Runner.OnComplete (a caller-provided
	// hook still runs) and shares Metrics with the pool when Runner's is
	// unset.
	Runner runner.Options
	// MaxQueue bounds flights admitted but not yet dispatched; beyond it
	// submissions get 429 + Retry-After (default 64). Deduplicated
	// submissions never consume queue slots.
	MaxQueue int
	// Dispatchers bounds concurrently dispatched flights (default: the
	// pool's worker count) — the queue drains in priority order this many
	// at a time.
	Dispatchers int
	// DefaultDeadline is applied to submissions that carry none: the job
	// must be dispatched within it or it fails fast (0 = no deadline).
	DefaultDeadline time.Duration
	// HeartbeatEvery is the SSE progress cadence (default 1s).
	HeartbeatEvery time.Duration
	// RetryAfterMin floors the 429 Retry-After hint (default 1s).
	RetryAfterMin time.Duration
	// Resolve maps a wire TaskSpec to an executable task (default
	// sim.TaskSpec.Task). Tests and embedders can interpose validation or
	// synthetic tasks here.
	Resolve func(sim.TaskSpec) (sim.Task, error)
	// Precheck statically analyzes each submitted task's program
	// (internal/static) and rejects jobs whose programs carry
	// error-severity findings with 400 before they reach the queue.
	// Analyses are memoized by source hash for the server's lifetime.
	Precheck bool
	// Metrics, when non-nil, receives the serving counters, queue depth
	// gauge and latency histograms for the /metrics endpoint.
	Metrics *obs.Registry
	// Tracer, when non-nil, records distributed spans for every hop of a
	// job's life (admission, queueing, dedup joins, execution) and serves
	// them at GET /v1/spans. It is shared with the runner pool unless the
	// pool brings its own. Span trace ids unify with job trace ids: an
	// incoming traceparent header wins, then the submission's trace_id,
	// then a minted id stamped back into the job.
	Tracer *span.Tracer
	// Log, when non-nil, receives structured request-scoped log lines
	// stamped with trace/span ids. Nil discards them.
	Log *slog.Logger
	// Flight, when non-nil, is the process flight recorder: admission and
	// completion edges land in its ring and it is served at
	// GET /v1/debug/flight. It is shared with the runner pool (for panic
	// capture) unless the pool brings its own.
	Flight *obsflight.Recorder
	// Debug, when non-nil, is mounted under GET /v1/debug/ — continuous
	// profiles, metrics history, resolved config. The flight ring's exact
	// route wins over this prefix.
	Debug http.Handler
}

// Server is the job server. It implements http.Handler; the caller owns
// the listener.
type Server struct {
	opts  Options
	pool  *runner.Pool
	mux   *http.ServeMux
	met   *metrics
	pre   *prechecker // non-nil when Options.Precheck is set
	log   *slog.Logger
	start time.Time

	// reqLatency and jobLatency always exist (registered when a registry
	// is configured), so /v1/stats can report quantiles either way.
	reqLatency *obs.Histogram
	jobLatency *obs.Histogram

	mu          sync.Mutex
	cond        *sync.Cond // signals dispatchers when the queue grows or the server closes
	jobs        map[string]*Job
	flights     map[string]*flight
	queue       flightQueue
	completions map[string]runner.Completion
	admitted    int // flights admitted and not yet finished
	seq         uint64
	draining    bool
	closed      bool
	counts      counts
	runSum      time.Duration // executed-flight wall clock, for Retry-After estimation
	runN        int

	dispatchers sync.WaitGroup
}

// counts are the serving counters behind /v1/stats (guarded by Server.mu).
type counts struct {
	submitted uint64 // accepted submissions (including dedup joins)
	deduped   uint64 // submissions that joined an existing flight
	rejected  uint64 // submissions refused by admission control
	expired   uint64 // jobs that missed their queued-deadline
	completed uint64 // jobs finished successfully
	failed    uint64 // jobs finished with an error
	simulated uint64 // flights resolved by running the simulation
	fromCache uint64 // flights resolved by the persistent result cache
	streams   int    // live SSE streams
}

// New starts a server and its dispatcher goroutines. ctx is the pool's
// hard-abort context: canceling it fails in-flight jobs (used when a
// drain deadline expires); prefer Drain + Close for an orderly stop.
func New(ctx context.Context, opts Options) (*Server, error) {
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = time.Second
	}
	if opts.RetryAfterMin <= 0 {
		opts.RetryAfterMin = time.Second
	}
	if opts.Resolve == nil {
		opts.Resolve = func(s sim.TaskSpec) (sim.Task, error) { return s.Task() }
	}
	if opts.Metrics != nil && opts.Runner.Metrics == nil {
		opts.Runner.Metrics = opts.Metrics
	}
	if opts.Tracer != nil && opts.Runner.Tracer == nil {
		opts.Runner.Tracer = opts.Tracer
	}
	if opts.Flight != nil && opts.Runner.Flight == nil {
		opts.Runner.Flight = opts.Flight
	}
	if opts.Log == nil {
		opts.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	s := &Server{
		opts:        opts,
		log:         opts.Log,
		start:       time.Now(),
		jobs:        make(map[string]*Job),
		flights:     make(map[string]*flight),
		completions: make(map[string]runner.Completion),
	}
	if opts.Precheck {
		s.pre = newPrechecker()
	}
	s.cond = sync.NewCond(&s.mu)
	if opts.Metrics != nil {
		s.met = newMetrics(opts.Metrics)
		s.reqLatency = s.met.reqLatency
		s.jobLatency = s.met.jobLatency
	} else {
		s.reqLatency = obs.NewHistogram(nil)
		s.jobLatency = obs.NewHistogram(nil)
	}

	userHook := opts.Runner.OnComplete
	opts.Runner.OnComplete = func(c runner.Completion) {
		s.noteCompletion(c)
		if userHook != nil {
			userHook(c)
		}
	}
	pool, err := runner.New(ctx, opts.Runner)
	if err != nil {
		return nil, err
	}
	s.pool = pool

	if s.opts.Dispatchers <= 0 {
		s.opts.Dispatchers = pool.Summary().Workers
	}
	s.mux = s.routes()
	for i := 0; i < s.opts.Dispatchers; i++ {
		s.dispatchers.Add(1)
		go s.dispatch()
	}
	return s, nil
}

// ServeHTTP serves the API, observing per-request latency. Requests that
// arrive with a trace context leave their trace id as the latency
// bucket's exemplar, so a spiked bucket names a concrete trace.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mux.ServeHTTP(w, r)
	s.reqLatency.ObserveWithExemplar(time.Since(start), span.Extract(r.Header).TraceID)
}

// Pool exposes the underlying runner pool (its Summary feeds /v1/stats).
func (s *Server) Pool() *runner.Pool { return s.pool }

// noteCompletion records how the pool resolved a key. The pool fires the
// hook before Do returns, so completeFlight's lookup always finds it.
func (s *Server) noteCompletion(c runner.Completion) {
	s.mu.Lock()
	s.completions[c.Key] = c
	s.mu.Unlock()
}

// takeCompletion consumes a recorded completion, bounding the map.
func (s *Server) takeCompletion(key string) (runner.Completion, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.completions[key]
	if ok {
		delete(s.completions, key)
	}
	return c, ok
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission (submissions get 503, healthz flips to draining)
// and waits until every admitted job has finished or ctx expires. Safe to
// call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	for {
		s.mu.Lock()
		n := s.admitted
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d jobs still in flight: %w", n, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Close stops the dispatchers and the pool. Queued flights that were
// never dispatched fail with a shutdown error; in-flight simulations are
// waited for (abort them by canceling the New ctx first). Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	var stranded []*flight
	for len(s.queue) > 0 {
		stranded = append(stranded, s.popFlightLocked())
	}
	now := time.Now()
	for _, f := range stranded {
		s.resolveFlightLocked(f, nil, errShutdown, "", now)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	s.dispatchers.Wait()
	s.pool.Close()
	return nil
}

var errShutdown = fmt.Errorf("serve: server shutting down before dispatch")
