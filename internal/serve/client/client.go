// Package client is the Go client for the mmtserved job server. It wraps
// the HTTP API with exponential-backoff retries (full jitter, Retry-After
// aware), context cancellation, and SSE stream consumption. Submissions
// are content-addressed on the server, so retrying a POST is idempotent:
// a duplicate lands as a dedup join or a cache hit, never a second
// simulation.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"mmt/internal/obs/span"
	"mmt/internal/serve"
	"mmt/internal/sim"
)

// Client talks to one mmtserved instance. The zero value is not usable;
// construct with New.
type Client struct {
	base string
	http *http.Client

	// Tracer, when non-nil, opens a client-side root span per Submit/Run
	// (named "client.submit", in the submission's trace when it carries a
	// trace id) so the waterfall starts at the caller. Independently of
	// the tracer, any span context already on the request context is
	// always propagated as a traceparent header.
	Tracer *span.Tracer

	// Retries is how many extra attempts a retryable request gets
	// (default 4). 429, 5xx and transport errors are retryable; other 4xx
	// are not.
	Retries int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 5s). A 429's Retry-After overrides the computed
	// delay when larger.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// sleep and jitter are test seams: sleep waits (honoring ctx) and
	// jitter picks uniformly in [0, d).
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(d time.Duration) time.Duration
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8377").
// httpc may be nil for http.DefaultClient.
func New(base string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{
		base:      base,
		http:      httpc,
		Retries:   4,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  5 * time.Second,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
		jitter: func(d time.Duration) time.Duration {
			return time.Duration(rand.Int63n(int64(d) + 1))
		},
	}
}

// StatusError is a non-2xx response that was not retried to success.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter time.Duration // from a 429's Retry-After, if any
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

// retryable reports whether an attempt's failure may resolve on retry.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// backoff computes the wait before retry attempt i (0-based): full-jitter
// exponential backoff, floored by any server-provided Retry-After.
func (c *Client) backoff(i int, retryAfter time.Duration) time.Duration {
	d := c.BaseDelay << uint(i)
	if d > c.MaxDelay || d <= 0 {
		d = c.MaxDelay
	}
	d = c.jitter(d)
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// do runs one request with retries. path is relative ("/v1/jobs"); body
// non-nil for POST. The decoded JSON lands in out when non-nil.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	var last error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if sc, ok := span.FromContext(ctx); ok {
			span.Inject(req.Header, sc)
		}
		var retryAfter time.Duration
		resp, err := c.http.Do(req)
		if err != nil {
			last = err
		} else {
			b, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if rerr != nil {
				last = rerr
			} else if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				if out == nil {
					return nil
				}
				return json.Unmarshal(b, out)
			} else {
				se := &StatusError{Code: resp.StatusCode, Message: errorMessage(b)}
				if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
					se.RetryAfter = time.Duration(s) * time.Second
				}
				if !retryable(resp.StatusCode) {
					return se
				}
				last = se
				retryAfter = se.RetryAfter
			}
		}
		if attempt >= c.Retries {
			return fmt.Errorf("client: %s %s: giving up after %d attempts: %w",
				method, path, attempt+1, last)
		}
		// Check ctx before computing and serving the backoff: a cancelled
		// caller must not sit out a multi-second delay (or a Retry-After)
		// just to learn it was cancelled.
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return err
		}
	}
}

// errorMessage extracts the server's error envelope, falling back to the
// raw body.
func errorMessage(b []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(bytes.TrimSpace(b))
}

// startSpan opens a client-side root span for a submission when the
// client has a tracer and ctx does not already carry a span (an embedder
// with its own tracing wins). The returned ctx propagates the context;
// end is nil-safe.
func (c *Client) startSpan(ctx context.Context, name, trace string) (context.Context, *span.Span) {
	if c.Tracer == nil {
		return ctx, nil
	}
	if _, ok := span.FromContext(ctx); ok {
		return ctx, nil
	}
	sp := c.Tracer.Start(span.SpanContext{TraceID: trace}, name)
	return span.ContextWith(ctx, sp.Context()), sp
}

// Submit posts a job. Safe to retry: identical submissions share one
// simulation server-side.
func (c *Client) Submit(ctx context.Context, req serve.SubmitRequest) (serve.JobStatus, error) {
	ctx, sp := c.startSpan(ctx, "client.submit", req.TraceID)
	defer sp.End()
	var st serve.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	if sp != nil && err == nil {
		sp.SetAttr("job", st.ID)
	}
	return st, err
}

// Job polls one job's status.
func (c *Client) Job(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Health fetches /v1/healthz. A draining server reports an error (503)
// with the body still decoded when possible.
func (c *Client) Health(ctx context.Context) (serve.Health, error) {
	var h serve.Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (serve.Stats, error) {
	var st serve.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Wait follows the job's SSE stream until it turns terminal and returns
// the final status. onEvent, when non-nil, sees every event (state,
// progress, outcome) as it arrives. A dropped stream reconnects with the
// same backoff schedule as requests, honoring the server's Retry-After;
// ctx cancels the wait immediately, even mid-backoff. When reconnects run
// out, the returned error wraps the last *StatusError, so errors.As
// recovers the server's final Retry-After.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(event string, st serve.JobStatus)) (serve.JobStatus, error) {
	var last error
	var retryAfter time.Duration
	for attempt := 0; ; attempt++ {
		st, err := c.stream(ctx, id, onEvent)
		if err == nil {
			return st, nil
		}
		if ctx.Err() != nil {
			return serve.JobStatus{}, ctx.Err()
		}
		var se *StatusError
		if asStatusError(err, &se) {
			if !retryable(se.Code) {
				return serve.JobStatus{}, err
			}
			retryAfter = se.RetryAfter
		} else {
			retryAfter = 0
		}
		last = err
		if attempt >= c.Retries {
			return serve.JobStatus{}, fmt.Errorf("client: streaming job %s: giving up after %d attempts: %w",
				id, attempt+1, last)
		}
		// Same contract as do(): never enter a backoff sleep once the
		// caller has cancelled.
		if err := ctx.Err(); err != nil {
			return serve.JobStatus{}, err
		}
		if err := c.sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return serve.JobStatus{}, err
		}
	}
}

// Run submits the task and waits for its outcome — the one-call client
// path mmtload and scripts use.
func (c *Client) Run(ctx context.Context, req serve.SubmitRequest) (*sim.Outcome, serve.JobStatus, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, serve.JobStatus{}, err
	}
	if !st.State.Terminal() {
		if st, err = c.Wait(ctx, st.ID, nil); err != nil {
			return nil, serve.JobStatus{}, err
		}
	}
	if st.Error != "" {
		return nil, st, fmt.Errorf("client: job %s %s: %s", st.ID, st.State, st.Error)
	}
	out, err := st.DecodeOutcome()
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}
