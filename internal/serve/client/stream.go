package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mmt/internal/serve"
)

// stream consumes one SSE connection for a job. It returns the final
// status when an outcome event arrives, or an error if the stream drops
// first (callers retry through Wait).
func (c *Client) stream(ctx context.Context, id string, onEvent func(string, serve.JobStatus)) (serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return serve.JobStatus{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return serve.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		se := &StatusError{Code: resp.StatusCode, Message: errorMessage(b)}
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			se.RetryAfter = time.Duration(s) * time.Second
		}
		return serve.JobStatus{}, se
	}

	br := bufio.NewReader(resp.Body)
	var event string
	var data []byte
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if ctx.Err() != nil {
				return serve.JobStatus{}, ctx.Err()
			}
			return serve.JobStatus{}, fmt.Errorf("client: stream for job %s ended without an outcome: %w", id, err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if event == "" {
				continue // comment or heartbeat padding
			}
			var st serve.JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				return serve.JobStatus{}, fmt.Errorf("client: decoding %s event: %w", event, err)
			}
			if onEvent != nil {
				onEvent(event, st)
			}
			if st.State.Terminal() {
				return st, nil
			}
			event, data = "", nil
		}
	}
}

// asStatusError unwraps err into *StatusError.
func asStatusError(err error, out **StatusError) bool {
	return errors.As(err, out)
}
