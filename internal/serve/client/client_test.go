package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mmt/internal/runner"
	"mmt/internal/serve"
	"mmt/internal/sim"
)

// testClient pins the retry seams: sleeps are recorded instead of taken,
// and jitter is the identity so backoff durations are deterministic.
func testClient(base string) (*Client, *[]time.Duration) {
	c := New(base, nil)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slept = append(slept, d)
		return nil
	}
	c.jitter = func(d time.Duration) time.Duration { return d }
	return c, &slept
}

func accept(w http.ResponseWriter, st serve.JobStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(st) //nolint:errcheck
}

func TestSubmitRetriesThrough503(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
			return
		}
		accept(w, serve.JobStatus{ID: "j000001-abc", State: serve.StateQueued})
	}))
	defer hs.Close()

	c, slept := testClient(hs.URL)
	st, err := c.Submit(context.Background(), serve.SubmitRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000001-abc" {
		t.Errorf("job id = %q", st.ID)
	}
	if calls.Load() != 3 {
		t.Errorf("requests = %d, want 3", calls.Load())
	}
	// Full-jitter backoff with identity jitter: base, then base*2.
	if want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}; len(*slept) != 2 ||
		(*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", *slept, want)
	}
}

func TestSubmitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"admission queue full"}`, http.StatusTooManyRequests)
			return
		}
		accept(w, serve.JobStatus{ID: "j000002-def", State: serve.StateQueued})
	}))
	defer hs.Close()

	c, slept := testClient(hs.URL)
	if _, err := c.Submit(context.Background(), serve.SubmitRequest{}); err != nil {
		t.Fatal(err)
	}
	// The server's 2s hint beats the 100ms computed backoff.
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Errorf("sleeps = %v, want [2s]", *slept)
	}
}

func TestSubmitDoesNotRetryBadRequest(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown application"}`, http.StatusBadRequest)
	}))
	defer hs.Close()

	c, slept := testClient(hs.URL)
	_, err := c.Submit(context.Background(), serve.SubmitRequest{})
	var se *StatusError
	if !asStatusError(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if !strings.Contains(se.Message, "unknown application") {
		t.Errorf("message = %q", se.Message)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Errorf("requests = %d sleeps = %v, want one attempt and no sleeps", calls.Load(), *slept)
	}
}

func TestSubmitGivesUp(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer hs.Close()

	c, _ := testClient(hs.URL)
	c.Retries = 2
	_, err := c.Submit(context.Background(), serve.SubmitRequest{})
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if calls.Load() != 3 {
		t.Errorf("requests = %d, want 3", calls.Load())
	}
}

// sseWrite emits one SSE event and flushes.
func sseWrite(w http.ResponseWriter, event string, st serve.JobStatus) {
	b, _ := json.Marshal(st)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	w.(http.Flusher).Flush()
}

func TestWaitFollowsStream(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		sseWrite(w, "state", serve.JobStatus{ID: "j1", State: serve.StateQueued})
		sseWrite(w, "progress", serve.JobStatus{ID: "j1", State: serve.StateRunning})
		sseWrite(w, "outcome", serve.JobStatus{ID: "j1", State: serve.StateDone, Source: "simulated"})
	}))
	defer hs.Close()

	c, _ := testClient(hs.URL)
	var events []string
	st, err := c.Wait(context.Background(), "j1", func(ev string, _ serve.JobStatus) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone || st.Source != "simulated" {
		t.Errorf("final = %s/%s", st.State, st.Source)
	}
	if want := []string{"state", "progress", "outcome"}; len(events) != 3 ||
		events[0] != want[0] || events[1] != want[1] || events[2] != want[2] {
		t.Errorf("events = %v, want %v", events, want)
	}
}

func TestWaitContextCancelMidStream(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		sseWrite(w, "state", serve.JobStatus{ID: "j1", State: serve.StateRunning})
		<-r.Context().Done() // hold the stream open until the client hangs up
	}))
	defer hs.Close()

	c, _ := testClient(hs.URL)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := c.Wait(ctx, "j1", nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWaitReconnectsAfterDrop(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First connection dies mid-stream without an outcome.
			w.Header().Set("Content-Type", "text/event-stream")
			sseWrite(w, "state", serve.JobStatus{ID: "j1", State: serve.StateRunning})
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		sseWrite(w, "outcome", serve.JobStatus{ID: "j1", State: serve.StateDone})
	}))
	defer hs.Close()

	c, slept := testClient(hs.URL)
	st, err := c.Wait(context.Background(), "j1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Errorf("final state = %s", st.State)
	}
	if calls.Load() != 2 || len(*slept) != 1 {
		t.Errorf("connections = %d sleeps = %v, want a single backoff reconnect", calls.Load(), *slept)
	}
}

func TestWaitReconnectHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error":"stream quota"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		sseWrite(w, "outcome", serve.JobStatus{ID: "j1", State: serve.StateDone})
	}))
	defer hs.Close()

	c, slept := testClient(hs.URL)
	st, err := c.Wait(context.Background(), "j1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Errorf("final state = %s", st.State)
	}
	// The server's 3s hint beats the 100ms computed reconnect backoff.
	if len(*slept) != 1 || (*slept)[0] != 3*time.Second {
		t.Errorf("sleeps = %v, want [3s]", *slept)
	}
}

func TestWaitSurfacesRetryAfterOnGiveUp(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"stream quota"}`, http.StatusTooManyRequests)
	}))
	defer hs.Close()

	c, _ := testClient(hs.URL)
	c.Retries = 1
	_, err := c.Wait(context.Background(), "j1", nil)
	if err == nil {
		t.Fatal("Wait succeeded against a permanent 429")
	}
	var se *StatusError
	if !asStatusError(err, &se) {
		t.Fatalf("err = %v, want a wrapped StatusError", err)
	}
	if se.Code != http.StatusTooManyRequests || se.RetryAfter != 7*time.Second {
		t.Errorf("surfaced StatusError = code %d retryAfter %s, want 429 with 7s", se.Code, se.RetryAfter)
	}
}

// TestWaitCancelSkipsBackoff checks the cancellation contract: once the
// caller's context is done, Wait returns without serving another backoff
// sleep — even with a sleep seam that would ignore the context.
func TestWaitCancelSkipsBackoff(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer hs.Close()

	c := New(hs.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var sleeps atomic.Int32
	c.sleep = func(_ context.Context, d time.Duration) error {
		// A sleep that ignores its context: the pre-sleep ctx check must
		// keep this from running again after the cancel below.
		sleeps.Add(1)
		cancel()
		return nil
	}
	c.jitter = func(d time.Duration) time.Duration { return d }
	_, err := c.Wait(ctx, "j1", nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sleeps.Load() != 1 {
		t.Errorf("slept %d times after cancellation, want the loop to stop at 1", sleeps.Load())
	}
}

// TestDefaultSleepHonorsContext checks the production sleep seam: a
// cancellation mid-backoff returns immediately instead of finishing the
// full delay.
func TestDefaultSleepHonorsContext(t *testing.T) {
	c := New("http://unused", nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.sleep(ctx, 10*time.Second)
	if err != context.Canceled {
		t.Fatalf("sleep = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("sleep held the full backoff (%s) after cancellation", waited)
	}
}

// TestRunAgainstRealServer is the end-to-end path: a real serve.Server, a
// real (bounded) simulation, the one-call Run API.
func TestRunAgainstRealServer(t *testing.T) {
	s, err := serve.New(context.Background(), serve.Options{Runner: runner.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	c := New(hs.URL, nil)
	spec := sim.TaskSpec{App: "libsvm", Config: &sim.ConfigOverride{MaxInsts: 20000}}
	out, st, err := c.Run(context.Background(), serve.SubmitRequest{Task: spec})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != serve.StateDone {
		t.Errorf("state = %s", st.State)
	}
	if out.Result == nil || out.Result.Stats == nil {
		t.Error("outcome missing simulation result")
	}

	// An identical resubmission resolves without a second simulation.
	_, st2, err := c.Run(context.Background(), serve.SubmitRequest{Task: spec})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != serve.StateDone {
		t.Errorf("resubmission state = %s", st2.State)
	}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Simulated != 1 {
		t.Errorf("simulated = %d, want 1 (memo or cache must serve the repeat)", stats.Simulated)
	}
}
