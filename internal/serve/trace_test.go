package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mmt/internal/obs"
	"mmt/internal/runner"
)

// collectRecorder is a mutex-guarded obs.Recorder for asserting on the
// runner's event stream from tests.
type collectRecorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *collectRecorder) Event(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}
func (r *collectRecorder) Sample(obs.Sample) {}
func (r *collectRecorder) Close() error      { return nil }

func (r *collectRecorder) byKind(k obs.EventKind) []obs.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []obs.Event
	for _, e := range r.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestTraceIDMintingAndEcho: the server echoes a client-chosen
// correlation id, mints one from the job id otherwise, and rejects ids
// that would corrupt logs.
func TestTraceIDMintingAndEcho(t *testing.T) {
	_, hs := startServer(t, Options{Runner: runner.Options{Workers: 1}})

	st, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000), TraceID: "exp-42"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if st.TraceID != "exp-42" {
		t.Errorf("client trace id not echoed: %q", st.TraceID)
	}
	if done := waitDone(t, hs.URL, st.ID); done.TraceID != "exp-42" {
		t.Errorf("trace id lost on the way to terminal: %q", done.TraceID)
	}

	minted, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(21000)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if minted.TraceID != "t-"+minted.ID {
		t.Errorf("minted trace id = %q, want t-%s", minted.TraceID, minted.ID)
	}

	for _, bad := range []string{strings.Repeat("x", maxTraceIDLen+1), "has space", "ctrl\x01char", "unicode-é"} {
		if _, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000), TraceID: bad}); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("trace id %q accepted with %s", bad, resp.Status)
		}
	}
}

// TestTraceIDIsolationUnderConcurrency is the cross-contamination check
// (run with -race): concurrent jobs with distinct specs and unique trace
// ids must each stamp their own id on exactly one EvJob event — an id
// showing up twice (or not at all) would mean jobs shared correlation
// state.
func TestTraceIDIsolationUnderConcurrency(t *testing.T) {
	rec := &collectRecorder{}
	_, hs := startServer(t, Options{
		Runner:   runner.Options{Workers: 4, Trace: rec},
		MaxQueue: 64,
	})

	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("race-%d", i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct instruction bounds make every spec a distinct key,
			// so nothing dedups and each job runs its own simulation.
			st, resp := postJob(t, hs.URL, SubmitRequest{
				Task:    cheapSpec(uint64(20000 + 64*i)),
				TraceID: ids[i],
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: %s", i, resp.Status)
				return
			}
			if done := waitDone(t, hs.URL, st.ID); done.State != StateDone {
				t.Errorf("job %d: %s (%s)", i, done.State, done.Error)
			}
		}(i)
	}
	wg.Wait()

	seen := map[string]int{}
	for _, e := range rec.byKind(obs.EvJob) {
		seen[e.Trace]++
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("trace id %q on %d EvJob events, want exactly 1 (all: %v)", id, seen[id], seen)
		}
	}
	if len(seen) != n {
		t.Errorf("%d distinct trace ids on EvJob events, want %d: %v", len(seen), n, seen)
	}
}

// TestDedupSharesCreatorTraceOnEvents: a dedup joiner keeps its own id in
// its JobStatus, but the single shared execution is stamped with the
// flight creator's id.
func TestDedupSharesCreatorTraceOnEvents(t *testing.T) {
	rec := &collectRecorder{}
	resolve, _, _, release := gatedResolve(t)
	_, hs := startServer(t, Options{
		Runner:  runner.Options{Workers: 1, Trace: rec},
		Resolve: resolve,
	})

	first, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(23000), TraceID: "creator"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	joiner, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(23000), TraceID: "joiner"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if !joiner.Dedup {
		t.Fatalf("second submission did not dedup: %+v", joiner)
	}
	if joiner.TraceID != "joiner" {
		t.Errorf("joiner's own trace id = %q", joiner.TraceID)
	}
	release()
	waitDone(t, hs.URL, first.ID)
	waitDone(t, hs.URL, joiner.ID)

	jobs := rec.byKind(obs.EvJob)
	if len(jobs) != 1 {
		t.Fatalf("%d EvJob events for a deduped pair, want 1", len(jobs))
	}
	if jobs[0].Trace != "creator" {
		t.Errorf("shared execution stamped %q, want the creator's id", jobs[0].Trace)
	}
}
