package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleStream is GET /v1/jobs/{id}/stream: a Server-Sent Events feed of
// the job's life. Events:
//
//	state    initial snapshot on connect
//	progress heartbeat snapshots while queued/running (HeartbeatEvery)
//	outcome  final snapshot with the result (or error), then EOF
//
// Every event's data is a JobStatus JSON object.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeHTTPError(w, &httpError{status: http.StatusNotFound, msg: "no such job: " + id})
		return
	}
	st := s.snapshotLocked(j, time.Now())
	s.counts.streams++
	s.mu.Unlock()

	flusher, ok := w.(http.Flusher)
	if !ok {
		s.streamClosed()
		writeHTTPError(w, &httpError{status: http.StatusInternalServerError, msg: "response writer cannot stream"})
		return
	}
	defer s.streamClosed()
	if s.met != nil {
		s.met.streams.Add(1)
		defer s.met.streams.Add(-1)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v JobStatus) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	}

	if st.State.Terminal() {
		send(eventOutcome, st) //nolint:errcheck // terminating anyway
		return
	}
	if err := send(eventState, st); err != nil {
		return
	}

	ticker := time.NewTicker(s.opts.HeartbeatEvery)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			s.mu.Lock()
			final := s.snapshotLocked(j, time.Now())
			s.mu.Unlock()
			send(eventOutcome, final) //nolint:errcheck // terminating anyway
			return
		case <-ticker.C:
			s.mu.Lock()
			snap := s.snapshotLocked(j, time.Now())
			s.mu.Unlock()
			if snap.State.Terminal() {
				// Lazy deadline expiry can turn the job terminal on this
				// snapshot itself; j.done is closed, finish on that arm.
				continue
			}
			if err := send(eventProgress, snap); err != nil {
				return
			}
		}
	}
}

// SSE event names.
const (
	eventState    = "state"
	eventProgress = "progress"
	eventOutcome  = "outcome"
)

func (s *Server) streamClosed() {
	s.mu.Lock()
	s.counts.streams--
	s.mu.Unlock()
}
