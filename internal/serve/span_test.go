package serve

import (
	"context"
	"net/http"
	"testing"

	"mmt/internal/obs/span"
	"mmt/internal/runner"
)

// names collects the distinct span names in a record set.
func names(recs []span.Record) map[string]bool {
	out := make(map[string]bool, len(recs))
	for _, r := range recs {
		out[r.Name] = true
	}
	return out
}

// find returns the first record with the given name, failing the test
// when absent.
func find(t *testing.T, recs []span.Record, name string) span.Record {
	t.Helper()
	for _, r := range recs {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no %q span in %d records", name, len(recs))
	return span.Record{}
}

// TestSubmitSpansFullChain: one traced submission produces the whole hop
// chain — admission, flight, queue wait, dispatch, runner scheduling and
// cache probe, execution with the simulator's build/run phases — all in
// the submission's trace, stitched into a single tree under serve.submit.
func TestSubmitSpansFullChain(t *testing.T) {
	tracer := span.NewTracer("test-node", 256)
	_, hs := startServer(t, Options{
		Runner: runner.Options{Workers: 1},
		Tracer: tracer,
	})

	st, resp := postJob(t, hs.URL, SubmitRequest{Task: cheapSpec(20000), TraceID: "tr-chain-1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if st.TraceID != "tr-chain-1" {
		t.Fatalf("trace id = %q, want the client's", st.TraceID)
	}
	waitDone(t, hs.URL, st.ID)

	recs := tracer.Records("tr-chain-1")
	got := names(recs)
	for _, want := range []string{
		"serve.submit", "serve.flight", "serve.queue", "serve.exec",
		"runner.schedule", "runner.cache", "runner.exec",
		"sim.build", "sim.run", "runner.store",
	} {
		if !got[want] {
			t.Errorf("missing %q span (have %v)", want, got)
		}
	}

	// The chain stitches into trees whose children never start before
	// their parent (all spans share this process's clock).
	tree := span.Stitch(recs)
	tree.Walk(func(n *span.Node, _ int) {
		for _, c := range n.Children {
			if c.StartUNS < n.StartUNS {
				t.Errorf("span %s starts %dns before its parent %s", c.Name, n.StartUNS-c.StartUNS, n.Name)
			}
		}
	})
	// sim phases hang off the execution span, which hangs off serve.exec.
	if b := find(t, recs, "sim.build"); b.ParentID != find(t, recs, "runner.exec").SpanID {
		t.Errorf("sim.build parent = %s, want the runner.exec span", b.ParentID)
	}
	if e := find(t, recs, "runner.exec"); e.ParentID != find(t, recs, "serve.exec").SpanID {
		t.Errorf("runner.exec parent = %s, want the serve.exec span", e.ParentID)
	}

	// The ring is served over HTTP for mmttrace to fetch.
	sr, err := span.FetchSpans(context.Background(), nil, hs.URL, "tr-chain-1")
	if err != nil {
		t.Fatalf("GET /v1/spans: %v", err)
	}
	if sr.Service != "test-node" || len(sr.Spans) != len(recs) {
		t.Errorf("served %d spans for %q, want %d for test-node", len(sr.Spans), sr.Service, len(recs))
	}
}

// TestDedupJoinerSpanLinksCreator: a submission that joins an in-flight
// identical job records a serve.join span in its own trace, linked to the
// creator's flight span — the edge mmttrace follows so the joined trace
// shows the execution that actually produced its result.
func TestDedupJoinerSpanLinksCreator(t *testing.T) {
	resolve, _, _, release := gatedResolve(t)
	tracer := span.NewTracer("test-node", 256)
	_, hs := startServer(t, Options{
		Runner:  runner.Options{Workers: 1},
		Resolve: resolve,
		Tracer:  tracer,
	})

	spec := cheapSpec(20000)
	creator, resp := postJob(t, hs.URL, SubmitRequest{Task: spec, TraceID: "tr-creator"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("creator submit: %s", resp.Status)
	}
	joiner, resp := postJob(t, hs.URL, SubmitRequest{Task: spec, TraceID: "tr-joiner"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("joiner submit: %s", resp.Status)
	}
	if !joiner.Dedup {
		t.Fatal("second submission did not join the in-flight job")
	}
	release()
	waitDone(t, hs.URL, creator.ID)
	waitDone(t, hs.URL, joiner.ID)

	flight := find(t, tracer.Records("tr-creator"), "serve.flight")
	join := find(t, tracer.Records("tr-joiner"), "serve.join")
	if join.LinkTrace != "tr-creator" || join.LinkSpan != flight.SpanID {
		t.Errorf("joiner links %s@%s, want %s@tr-creator", join.LinkSpan, join.LinkTrace, flight.SpanID)
	}
	if join.Attrs["creator_trace"] != "tr-creator" {
		t.Errorf("joiner creator_trace attr = %q", join.Attrs["creator_trace"])
	}
	if join.Attrs["job"] != joiner.ID {
		t.Errorf("joiner job attr = %q, want its own job %s", join.Attrs["job"], joiner.ID)
	}

	// Stitching both traces together keeps the joined trace's link
	// discoverable (the creator trace present, so no dangling links).
	both := append(tracer.Records("tr-creator"), tracer.Records("tr-joiner")...)
	if links := span.Stitch(both).Links(); len(links) != 0 {
		t.Errorf("combined tree still dangles links: %v", links)
	}
	if links := span.Stitch(tracer.Records("tr-joiner")).Links(); len(links) != 1 || links[0].TraceID != "tr-creator" {
		t.Errorf("joiner-only tree links = %v, want one to tr-creator", links)
	}
}
