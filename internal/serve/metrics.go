package serve

import "mmt/internal/obs"

// metrics are the serving instruments, registered under mmt_serve_* when
// the server is given a registry.
type metrics struct {
	submitted   *obs.Counter
	deduped     *obs.Counter
	rejected    *obs.Counter
	expired     *obs.Counter
	completed   *obs.Counter
	failed      *obs.Counter
	simulated   *obs.Counter
	cacheServed *obs.Counter

	queueDepth *obs.Gauge
	running    *obs.Gauge
	streams    *obs.Gauge

	reqLatency *obs.Histogram
	jobLatency *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		submitted:   reg.Counter("mmt_serve_jobs_submitted_total", "Submissions accepted, including dedup joins."),
		deduped:     reg.Counter("mmt_serve_jobs_deduped_total", "Submissions absorbed by an in-flight identical job."),
		rejected:    reg.Counter("mmt_serve_jobs_rejected_total", "Submissions refused by admission control (429)."),
		expired:     reg.Counter("mmt_serve_jobs_expired_total", "Jobs that missed their queued-deadline before dispatch."),
		completed:   reg.Counter("mmt_serve_jobs_completed_total", "Jobs finished successfully."),
		failed:      reg.Counter("mmt_serve_jobs_failed_total", "Jobs finished with an error."),
		simulated:   reg.Counter("mmt_serve_flights_simulated_total", "Flights resolved by running the simulation."),
		cacheServed: reg.Counter("mmt_serve_flights_cache_total", "Flights resolved by the persistent result cache."),
		queueDepth:  reg.Gauge("mmt_serve_queue_depth", "Flights admitted and awaiting dispatch."),
		running:     reg.Gauge("mmt_serve_jobs_running", "Flights currently executing on the pool."),
		streams:     reg.Gauge("mmt_serve_streams_active", "Open SSE job streams."),
		reqLatency:  reg.Histogram("mmt_serve_request_latency_seconds", "HTTP request handling latency."),
		jobLatency:  reg.Histogram("mmt_serve_job_latency_seconds", "Job latency, submission to terminal state."),
	}
}
