package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"mmt/internal/obs/span"
)

// httpError is a handler failure carrying its status code and, for 429,
// the Retry-After hint.
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterMS mirrors the Retry-After header for clients that prefer
	// the body.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeHTTPError(w http.ResponseWriter, e *httpError) {
	body := errorBody{Error: e.msg}
	if e.retryAfter > 0 {
		secs := int64(math.Ceil(e.retryAfter.Seconds()))
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		body.RetryAfterMS = e.retryAfter.Milliseconds()
	}
	writeJSON(w, e.status, body)
}

// routes builds the API mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	if s.opts.Tracer != nil {
		mux.Handle("GET /v1/spans", s.opts.Tracer)
	}
	if s.opts.Metrics != nil {
		mux.Handle("GET /metrics", s.opts.Metrics)
	}
	if s.opts.Debug != nil {
		mux.Handle("GET /v1/debug/", s.opts.Debug)
	}
	if s.opts.Flight != nil {
		// The exact route wins over the Debug prefix above.
		mux.Handle("GET /v1/debug/flight", s.opts.Flight)
	}
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeHTTPError(w, badRequest("decoding request: %v", err))
		return
	}
	// Unify the span trace with the job's correlation id: an incoming
	// traceparent header wins, then the body's trace_id; with a tracer and
	// neither, mint one and stamp it back into the job so mmttrace can
	// find it by the id the client sees.
	parent := span.Extract(r.Header)
	if parent.TraceID == "" {
		parent.TraceID = req.TraceID
	}
	sp := s.opts.Tracer.Start(parent, "serve.submit")
	if req.TraceID == "" {
		req.TraceID = sp.TraceID()
	}
	st, herr := s.submit(req, sp.Context())
	if herr != nil {
		sp.SetAttr("error", herr.msg)
		sp.End()
		s.log.Warn("submit rejected", "status", herr.status, "error", herr.msg,
			"trace", req.TraceID, "span", sp.Context().SpanID)
		writeHTTPError(w, herr)
		return
	}
	sp.SetAttr("job", st.ID)
	if st.Dedup {
		sp.SetAttr("dedup", "true")
	}
	sp.End()
	s.log.Info("job submitted", "job", st.ID, "state", st.State, "dedup", st.Dedup,
		"priority", st.Priority, "trace", st.TraceID, "span", sp.Context().SpanID)
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeHTTPError(w, &httpError{status: http.StatusNotFound, msg: "no such job: " + id})
		return
	}
	st := s.snapshotLocked(j, time.Now())
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// Health is the GET /v1/healthz body.
type Health struct {
	Status   string `json:"status"` // "ok" or "draining"
	UptimeMS int64  `json:"uptime_ms"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", UptimeMS: time.Since(s.start).Milliseconds()}
	status := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// Stats is the GET /v1/stats body.
type Stats struct {
	UptimeMS   int64 `json:"uptime_ms"`
	QueueDepth int   `json:"queue_depth"`
	Admitted   int   `json:"admitted"` // flights admitted and not yet finished

	Submitted uint64 `json:"submitted"`
	Deduped   uint64 `json:"deduped"`
	Rejected  uint64 `json:"rejected"`
	Expired   uint64 `json:"expired"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Simulated uint64 `json:"simulated"`
	FromCache uint64 `json:"from_cache"`
	Streams   int    `json:"streams"`

	// Latency quantiles in milliseconds, from the serving histograms.
	RequestP50MS float64 `json:"request_p50_ms"`
	RequestP99MS float64 `json:"request_p99_ms"`
	JobP50MS     float64 `json:"job_p50_ms"`
	JobP99MS     float64 `json:"job_p99_ms"`

	// Pool is the underlying runner pool summary.
	Pool any `json:"pool"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{
		UptimeMS:   time.Since(s.start).Milliseconds(),
		QueueDepth: len(s.queue),
		Admitted:   s.admitted,
		Submitted:  s.counts.submitted,
		Deduped:    s.counts.deduped,
		Rejected:   s.counts.rejected,
		Expired:    s.counts.expired,
		Completed:  s.counts.completed,
		Failed:     s.counts.failed,
		Simulated:  s.counts.simulated,
		FromCache:  s.counts.fromCache,
		Streams:    s.counts.streams,
	}
	s.mu.Unlock()
	st.RequestP50MS = s.reqLatency.Quantile(0.5) * 1e3
	st.RequestP99MS = s.reqLatency.Quantile(0.99) * 1e3
	st.JobP50MS = s.jobLatency.Quantile(0.5) * 1e3
	st.JobP99MS = s.jobLatency.Quantile(0.99) * 1e3
	st.Pool = s.pool.Summary()
	writeJSON(w, http.StatusOK, st)
}
