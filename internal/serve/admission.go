package serve

import (
	"container/heap"
	"fmt"
	"math"
	"net/http"
	"time"

	"mmt/internal/obs/span"
	"mmt/internal/sim"
)

// maxTraceIDLen bounds client-chosen correlation ids.
const maxTraceIDLen = 128

// validateTraceID rejects ids that would corrupt logs or trace files:
// over-long strings and control or non-ASCII characters.
func validateTraceID(id string) error {
	if len(id) > maxTraceIDLen {
		return fmt.Errorf("trace_id longer than %d bytes", maxTraceIDLen)
	}
	for _, r := range id {
		if r < 0x21 || r > 0x7e {
			return fmt.Errorf("trace_id contains non-printable or non-ASCII character %q", r)
		}
	}
	return nil
}

// flight is one admitted simulation: the single execution shared by every
// job whose task resolved to the same content-addressed key. A flight in
// s.flights is joinable (queued or running); it leaves the map when it
// resolves, after which identical submissions admit a fresh flight that
// the pool then serves from its caches.
type flight struct {
	key      string
	task     sim.Task
	priority int    // max over its jobs'
	seq      uint64 // admission order, the priority tiebreak
	index    int    // heap position; -1 once dispatched
	running  bool
	jobs     []*Job
	// span covers admission to resolution in the creator's trace; dedup
	// joiners link to it from their own traces. queueSpan covers the
	// admission-to-dispatch wait. Both are nil without a tracer.
	span      *span.Span
	queueSpan *span.Span
}

// flightQueue is a max-heap: higher priority first, then earlier
// admission.
type flightQueue []*flight

func (q flightQueue) Len() int { return len(q) }
func (q flightQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}
func (q flightQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *flightQueue) Push(x any) {
	f := x.(*flight)
	f.index = len(*q)
	*q = append(*q, f)
}
func (q *flightQueue) Pop() any {
	old := *q
	f := old[len(old)-1]
	old[len(old)-1] = nil
	f.index = -1
	*q = old[:len(old)-1]
	return f
}

// popFlightLocked removes the next flight to dispatch (caller holds mu).
func (s *Server) popFlightLocked() *flight {
	f := heap.Pop(&s.queue).(*flight)
	if s.met != nil {
		s.met.queueDepth.Set(int64(len(s.queue)))
	}
	return f
}

// queuePositionLocked is a job's 1-based dispatch rank (caller holds mu).
func (s *Server) queuePositionLocked(key string) int {
	f, ok := s.flights[key]
	if !ok || f.index < 0 {
		return 0
	}
	rank := 1
	for _, g := range s.queue {
		if g != f && (g.priority > f.priority || (g.priority == f.priority && g.seq < f.seq)) {
			rank++
		}
	}
	return rank
}

// submit admits, deduplicates, or rejects one submission. parent is the
// handler's span context (zero without a tracer). A *httpError return
// carries the status code (and Retry-After for 429).
func (s *Server) submit(req SubmitRequest, parent span.SpanContext) (JobStatus, *httpError) {
	if err := validateTraceID(req.TraceID); err != nil {
		return JobStatus{}, badRequest("%v", err)
	}
	task, err := s.opts.Resolve(req.Task)
	if err != nil {
		return JobStatus{}, badRequest("resolving task: %v", err)
	}
	if s.pre != nil {
		if err := s.pre.check(task); err != nil {
			return JobStatus{}, badRequest("precheck: %v", err)
		}
	}
	key, err := task.Key()
	if err != nil {
		return JobStatus{}, badRequest("keying task: %v", err)
	}
	now := time.Now()
	var deadline time.Time
	switch {
	case req.DeadlineMS > 0:
		deadline = now.Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	case s.opts.DefaultDeadline > 0:
		deadline = now.Add(s.opts.DefaultDeadline)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return JobStatus{}, &httpError{status: http.StatusServiceUnavailable,
			msg: "server is draining; not accepting new jobs"}
	}
	s.counts.submitted++
	if s.met != nil {
		s.met.submitted.Inc()
	}

	// Single-flight dedup: identical work in flight absorbs the
	// submission without consuming a queue slot.
	if f, ok := s.flights[key]; ok {
		j := s.newJobLocked(task, req.Task, key, req.Priority, deadline, true, req.TraceID, now)
		f.jobs = append(f.jobs, j)
		// The joiner's trace records a serve.join span linked to the
		// creator's flight span: mmttrace chases that edge to show which
		// execution this submission actually rode.
		if jsp := s.opts.Tracer.Start(parent, "serve.join"); jsp != nil {
			jsp.SetAttr("job", j.id)
			jsp.SetAttr("creator_trace", f.task.TraceID)
			jsp.Link(f.span.Context())
			jsp.End()
		}
		if j.priority > f.priority {
			f.priority = j.priority
			if f.index >= 0 {
				heap.Fix(&s.queue, f.index)
			}
		}
		if f.running {
			j.state = StateRunning
			j.started = now
		}
		s.counts.deduped++
		if s.met != nil {
			s.met.deduped.Inc()
		}
		s.opts.Flight.Admit(j.id, "dedup", j.traceID)
		return s.snapshotLocked(j, now), nil
	}

	if len(s.queue) >= s.opts.MaxQueue {
		s.counts.rejected++
		if s.met != nil {
			s.met.rejected.Inc()
		}
		s.opts.Flight.Admit("", "rejected", req.TraceID)
		return JobStatus{}, &httpError{
			status:     http.StatusTooManyRequests,
			msg:        "admission queue full",
			retryAfter: s.retryAfterLocked(),
		}
	}

	j := s.newJobLocked(task, req.Task, key, req.Priority, deadline, false, req.TraceID, now)
	s.seq++
	// The flight's execution is observed under its creator's correlation
	// id: the runner stamps it on the EvJob/EvCacheHit events, so dedup
	// joiners share the creator's timeline (they share its simulation).
	task.TraceID = j.traceID
	f := &flight{key: key, task: task, priority: req.Priority, seq: s.seq, jobs: []*Job{j}}
	f.span = s.opts.Tracer.Start(parent, "serve.flight")
	f.span.SetAttr("job", j.id)
	f.queueSpan = s.opts.Tracer.Start(f.span.Context(), "serve.queue")
	s.flights[key] = f
	heap.Push(&s.queue, f)
	s.admitted++
	if s.met != nil {
		s.met.queueDepth.Set(int64(len(s.queue)))
	}
	s.opts.Flight.Admit(j.id, "queued", j.traceID)
	s.cond.Signal()
	return s.snapshotLocked(j, now), nil
}

// retryAfterLocked estimates when a queue slot will free: queue length
// over dispatch parallelism times the average executed-flight duration,
// floored at RetryAfterMin and capped at a minute (caller holds mu).
func (s *Server) retryAfterLocked() time.Duration {
	est := s.opts.RetryAfterMin
	if s.runN > 0 {
		avg := s.runSum / time.Duration(s.runN)
		waves := math.Ceil(float64(len(s.queue)) / float64(s.opts.Dispatchers))
		if d := time.Duration(waves) * avg; d > est {
			est = d
		}
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// dispatch is one dispatcher goroutine: it drains the flight queue in
// priority order, runs each flight on the pool, and fans the outcome out
// to the flight's jobs.
func (s *Server) dispatch() {
	defer s.dispatchers.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		f := s.popFlightLocked()
		f.running = true
		f.queueSpan.End()
		now := time.Now()
		live := 0
		for _, j := range f.jobs {
			if j.state != StateQueued {
				continue // expired via a lazy snapshot check
			}
			if !j.deadline.IsZero() && now.After(j.deadline) {
				s.expireLocked(j, now)
				continue
			}
			j.state = StateRunning
			j.started = now
			live++
		}
		if live == 0 {
			// Every member expired in the queue: release the admission
			// slot without running anything.
			s.resolveFlightLocked(f, nil, nil, "", now)
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()

		if s.met != nil {
			s.met.running.Add(1)
		}
		// The execution span parents everything the runner and simulator
		// record for this flight; its context rides the task over the
		// pool boundary in serialized traceparent form.
		esp := s.opts.Tracer.Start(f.span.Context(), "serve.exec")
		f.task.SpanParent = esp.Context().Traceparent()
		started := time.Now()
		out, err := s.pool.Do(f.task)
		dur := time.Since(started)
		if s.met != nil {
			s.met.running.Add(-1)
		}

		// The pool fires OnComplete before Do returns, so if this dispatch
		// made the pool finalize the key, its completion is recorded. No
		// completion means the pool's in-memory memo answered — an earlier
		// flight already finalized the key — which is a cache hit too.
		comp, haveComp := s.takeCompletion(f.key)
		source := "cache"
		if haveComp && !comp.FromCache {
			source = "simulated"
		}
		esp.SetAttr("source", source)
		if err != nil {
			esp.SetAttr("error", err.Error())
		}
		esp.End()
		var raw []byte
		if err == nil {
			raw, err = sim.MarshalOutcome(out)
		}

		s.mu.Lock()
		if err == nil {
			if source == "cache" {
				s.counts.fromCache++
				if s.met != nil {
					s.met.cacheServed.Inc()
				}
			} else {
				s.counts.simulated++
				s.runSum += dur
				s.runN++
				if s.met != nil {
					s.met.simulated.Inc()
				}
			}
		}
		s.resolveFlightLocked(f, raw, err, source, time.Now())
		s.mu.Unlock()
	}
}

// resolveFlightLocked finishes a flight: every non-expired member job
// turns terminal and its waiters wake (caller holds mu).
func (s *Server) resolveFlightLocked(f *flight, raw []byte, err error, source string, now time.Time) {
	delete(s.flights, f.key)
	s.admitted--
	f.queueSpan.End() // idempotent; covers never-dispatched flights
	if source != "" {
		f.span.SetAttr("source", source)
	}
	if err != nil {
		f.span.SetAttr("error", err.Error())
	}
	f.span.End()
	for _, j := range f.jobs {
		if j.state.Terminal() {
			continue
		}
		j.finished = now
		if err != nil {
			j.state = StateFailed
			j.errMsg = err.Error()
			s.counts.failed++
			if s.met != nil {
				s.met.failed.Inc()
			}
		} else {
			j.state = StateDone
			j.outcome = raw
			j.source = source
			s.counts.completed++
			if s.met != nil {
				s.met.completed.Inc()
			}
		}
		s.jobLatency.ObserveWithExemplar(now.Sub(j.submitted), j.traceID)
		s.opts.Flight.Complete(j.id, j.traceID, now.Sub(j.submitted), j.errMsg)
		close(j.done)
	}
}
