// Package runner is the experiment-execution subsystem: it schedules
// simulation tasks across a bounded worker pool with cancellation, per-job
// timeouts, panic capture and bounded retry, layers a persistent on-disk
// result cache over the in-memory memo, and reports live progress plus a
// post-run summary. With Options.Metrics it feeds a live metrics registry
// (cache hit/miss counters, worker utilization, queue/run timings) for the
// -metrics-addr endpoint, and with Options.Trace it emits a per-worker
// job-execution timeline in the obs event stream.
//
// The Pool implements sim.Exec, so the experiment drivers in internal/sim
// are oblivious to whether they run serially or across N workers: they
// enumerate their simulation points with Schedule and assemble rows in a
// fixed order with Do. Jobs are deduplicated by the tasks' content-
// addressed keys, so points shared between artifacts (Fig. 5a/5b/5d/6 all
// need the Base and MMT-FXR runs) simulate once per process — and, with a
// cache directory, once ever until the configuration changes.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"mmt/internal/obs"
	"mmt/internal/obs/flight"
	"mmt/internal/obs/span"
	"mmt/internal/sim"
)

// ErrClosed is returned by Do and Schedule on a pool whose Close has been
// called. The post-Close contract: no new work is accepted, every job
// accepted before Close still resolves, and callers distinguish "pool
// shut down" (ErrClosed) from "batch canceled" (the context's error).
// The job server's drain path relies on this being a stable sentinel.
var ErrClosed = errors.New("runner: pool closed")

// Completion describes one resolved job, delivered to Options.OnComplete.
type Completion struct {
	// Key is the task's content-addressed identity; Name its display label.
	Key, Name string
	// FromCache reports the outcome was served from the persistent result
	// cache rather than simulated.
	FromCache bool
	// Dur is the executed simulation's wall clock (zero for cache hits
	// and cancellations).
	Dur time.Duration
	// Err is the job's final error, nil on success.
	Err error
}

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrent simulations; <= 0 means runtime.NumCPU().
	Workers int
	// CacheDir, when non-empty, enables the persistent result cache.
	CacheDir string
	// CacheMaxBytes caps the persistent cache's disk footprint; beyond it
	// least-recently-used entries are evicted (0 = unlimited).
	CacheMaxBytes int64
	// RemoteCache, when non-nil, is the shared result-cache tier checked
	// on a local cache miss and written through on store (see RemoteCache;
	// internal/cluster provides the HTTP client for cmd/mmtcached).
	RemoteCache RemoteCache
	// RemoteTimeout bounds one remote cache load or store (default 2s).
	RemoteTimeout time.Duration
	// Timeout bounds one attempt's wall clock (0 = none). The simulator
	// is not interruptible, so a timed-out attempt's goroutine is
	// abandoned and the attempt reported failed.
	Timeout time.Duration
	// Retries is how many extra attempts a failed (errored, panicked or
	// timed-out) job gets before its error is reported.
	Retries int
	// Progress, when non-nil, receives live progress lines (one per
	// refresh with changed counts) — point it at stderr so artifact
	// output on stdout stays byte-identical across worker counts.
	Progress io.Writer
	// ProgressEvery is the live-progress refresh period (default 2s).
	ProgressEvery time.Duration
	// Metrics, when non-nil, receives the pool's live counters and
	// gauges — scheduled/executed jobs, cache hits and misses, failures,
	// retries, busy workers, queue depth, and queue/run wall-clock
	// timings — for the -metrics-addr /metrics endpoint.
	Metrics *obs.Registry
	// Trace, when non-nil, receives the job-execution timeline: one span
	// per executed job on its worker's track, instants for cache hits and
	// retries, and periodic worker-utilization counter samples, all
	// timestamped in microseconds since pool start. The caller owns the
	// recorder and closes it after Close.
	Trace obs.Recorder
	// TraceSampleEvery is the utilization sampling period for Trace
	// (default 250ms).
	TraceSampleEvery time.Duration
	// Tracer, when non-nil, records distributed spans for jobs that carry
	// a span parent or a correlation id (sim.Task.SpanParent / TraceID):
	// pool queue wait, cache probes (local and remote tiers), the
	// execution with its sim build/run phases, and the store-through.
	// Untraced jobs record nothing.
	Tracer *span.Tracer
	// OnComplete, when non-nil, is called once per job when its outcome
	// becomes final — after the result is recorded but before waiters
	// blocked in Do unblock, so a caller that observes Do returning is
	// guaranteed the hook already ran for that key. It executes on the
	// worker (or cancellation-watcher) goroutine: keep it fast and do not
	// call back into the pool.
	OnComplete func(Completion)
	// Flight, when non-nil, is the process's black-box ring: a captured
	// worker panic is recorded there with the offending job's task key
	// and trace id, and — when FlightDumpDir is set — the whole ring is
	// dumped to disk so the moments leading up to the panic survive the
	// process. Fan the same recorder into Trace (obs.Multi) to keep the
	// job timeline in the ring too.
	Flight *flight.Recorder
	// FlightDumpDir is where panic-triggered flight dumps land (empty
	// disables dumping; the ring entry is still recorded).
	FlightDumpDir string
}

// job is one scheduled task and its future outcome.
type job struct {
	task sim.Task
	key  string

	enqueuedAt time.Time // for the queue-latency metric

	done chan struct{} // closed when out/err are final
	out  *sim.Outcome
	err  error
}

// Pool executes simulation tasks across a bounded worker pool.
type Pool struct {
	ctx   context.Context
	opts  Options
	cache *Cache
	met   *poolMetrics // nil when Options.Metrics is unset

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*job
	jobs     map[string]*job
	closed   bool
	canceled bool
	stats    counters

	start        time.Time
	wall         time.Duration
	workers      sync.WaitGroup
	stopWatch    chan struct{}
	stopProgress chan struct{}
	stopUtil     chan struct{}
	closeOnce    sync.Once
}

// counters aggregates the summary statistics (guarded by Pool.mu).
type counters struct {
	executed    int // simulations actually run to completion or failure
	cacheHits   int // jobs served from the persistent cache
	failed      int // jobs that finished with an error
	retries     int // extra attempts consumed
	invalidated int // corrupt/mismatched cache entries deleted
	busyWorkers int // workers currently inside run()
	simTime     time.Duration
	timings     []JobTiming
}

// compile-time check: the pool is a drop-in executor for the sim drivers.
var _ sim.Exec = (*Pool)(nil)

// New starts a pool. Close must be called to release its workers; ctx
// cancellation fails every pending job with ctx.Err().
func New(ctx context.Context, opts Options) (*Pool, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 2 * time.Second
	}
	if opts.TraceSampleEvery <= 0 {
		opts.TraceSampleEvery = 250 * time.Millisecond
	}
	p := &Pool{
		ctx:          ctx,
		opts:         opts,
		jobs:         make(map[string]*job),
		start:        time.Now(),
		stopWatch:    make(chan struct{}),
		stopProgress: make(chan struct{}),
		stopUtil:     make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	if opts.Metrics != nil {
		p.met = newPoolMetrics(opts.Metrics)
	}
	if opts.CacheDir != "" {
		c, err := OpenCache(opts.CacheDir, opts.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
		if p.met != nil {
			c.SetEvictHook(p.met.evictions.Inc)
		}
		p.cache = c
	}
	if opts.RemoteTimeout <= 0 {
		p.opts.RemoteTimeout = 2 * time.Second
	}
	for i := 0; i < opts.Workers; i++ {
		p.workers.Add(1)
		go p.worker(i)
	}
	go p.watchCancel()
	if opts.Progress != nil {
		go p.progressLoop()
	}
	if opts.Trace != nil {
		go p.utilLoop()
	}
	return p, nil
}

// Schedule enqueues tasks for the workers; tasks whose key is already
// known are deduplicated. Scheduling is asynchronous — collect outcomes
// with Do. It returns ErrClosed on a closed pool, the context's error
// after cancellation, or the first keying error; drivers that collect
// every outcome with Do may ignore it, because Do reports the same
// condition per task.
func (p *Pool) Schedule(tasks ...sim.Task) error {
	var first error
	for _, t := range tasks {
		if _, err := p.ensure(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Do returns the task's outcome, scheduling it if it is not already
// queued, running or finished. It blocks until the job completes or the
// pool's context is canceled.
func (p *Pool) Do(t sim.Task) (*sim.Outcome, error) {
	j, err := p.ensure(t)
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
	case <-p.ctx.Done():
		// The job may have completed in the same instant; prefer its
		// real outcome.
		select {
		case <-j.done:
		default:
			return nil, p.ctx.Err()
		}
	}
	return j.out, j.err
}

// ensure returns the job for the task's key, creating and enqueueing it if
// new. A closed pool refuses new keys with ErrClosed and a canceled pool
// with its context's error — existing keys still resolve, so late Do calls
// collecting an already-scheduled batch keep working after Close.
func (p *Pool) ensure(t sim.Task) (*job, error) {
	key, err := t.Key()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if j, ok := p.jobs[key]; ok {
		return j, nil
	}
	if p.canceled {
		return nil, p.ctx.Err()
	}
	if p.closed {
		return nil, ErrClosed
	}
	j := &job{task: t, key: key, done: make(chan struct{}), enqueuedAt: time.Now()}
	p.jobs[key] = j
	p.queue = append(p.queue, j)
	if p.met != nil {
		p.met.scheduled.Inc()
		p.met.queued.Add(1)
	}
	p.cond.Signal()
	return j, nil
}

// worker drains the queue until the pool closes or is canceled. id is the
// worker's track in the job-timeline trace and utilization accounting.
func (p *Pool) worker(id int) {
	defer p.workers.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed && !p.canceled {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		j := p.queue[0]
		p.queue = p.queue[1:]
		p.stats.busyWorkers++
		p.mu.Unlock()
		if p.met != nil {
			p.met.queued.Add(-1)
			p.met.queueTime.Observe(time.Since(j.enqueuedAt))
			p.met.busy.Add(1)
		}
		p.run(j, id)
		p.mu.Lock()
		p.stats.busyWorkers--
		p.mu.Unlock()
		if p.met != nil {
			p.met.busy.Add(-1)
		}
	}
}

// watchCancel fails every queued job the moment the context is canceled,
// so Do callers unblock promptly even with all workers busy.
func (p *Pool) watchCancel() {
	select {
	case <-p.ctx.Done():
	case <-p.stopWatch:
		return
	}
	p.mu.Lock()
	p.canceled = true
	failed := p.queue
	p.queue = nil
	p.stats.failed += len(failed)
	if p.met != nil {
		p.met.queued.Set(0)
		p.met.failed.Add(uint64(len(failed)))
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	// Resolve the failed jobs outside the lock: the completion hook runs
	// before each job's waiters unblock, same as the worker path.
	for _, j := range failed {
		j.err = p.ctx.Err()
		if p.opts.OnComplete != nil {
			p.opts.OnComplete(Completion{Key: j.key, Name: j.task.Name(), Err: j.err})
		}
		close(j.done)
	}
}

// spanParent resolves a job's distributed-span parent: the serving
// layer's serialized traceparent when present, else the bare correlation
// id (locally traced jobs root their own subtree). Zero for untraced
// jobs, which suppresses every runner span.
func (j *job) spanParent() span.SpanContext {
	if parent := span.Parse(j.task.SpanParent); parent.TraceID != "" {
		return parent
	}
	if j.task.TraceID != "" {
		return span.SpanContext{TraceID: j.task.TraceID}
	}
	return span.SpanContext{}
}

// run executes one job on worker wid: cache lookup, bounded attempts,
// cache store.
func (p *Pool) run(j *job, wid int) {
	if err := p.ctx.Err(); err != nil {
		p.finish(j, nil, false, 0, err)
		return
	}
	tracer := p.opts.Tracer
	parent := j.spanParent()
	if parent.TraceID == "" {
		tracer = nil
	}
	// The schedule span back-dates to enqueue time: its duration IS the
	// pool's queue wait for this job.
	tracer.StartAt(parent, "runner.schedule", j.enqueuedAt).End()

	csp := tracer.Start(parent, "runner.cache")
	if p.cache != nil {
		out, ok, invalidated := p.cache.load(j.key, j.task)
		if invalidated {
			p.mu.Lock()
			p.stats.invalidated++
			p.mu.Unlock()
			if p.met != nil {
				p.met.invalidated.Inc()
			}
		}
		if ok {
			csp.SetAttr("local", "hit")
			csp.End()
			p.traceEvent(obs.Event{TS: p.sinceStart(time.Now()), Kind: obs.EvCacheHit,
				Track: int32(wid), Name: j.task.Name(), Trace: j.task.TraceID})
			p.finish(j, out, true, 0, nil)
			return
		}
		csp.SetAttr("local", "miss")
		if p.met != nil {
			p.met.cacheMisses.Inc()
		}
	} else {
		csp.SetAttr("local", "off")
	}
	if out, ok := p.remoteLoad(j, csp.Context()); ok {
		csp.SetAttr("remote", "hit")
		csp.End()
		p.traceEvent(obs.Event{TS: p.sinceStart(time.Now()), Kind: obs.EvCacheHit,
			Track: int32(wid), Name: j.task.Name(), Trace: j.task.TraceID})
		p.finish(j, out, true, 0, nil)
		return
	}
	if p.opts.RemoteCache != nil {
		csp.SetAttr("remote", "miss")
	}
	csp.End()

	esp := tracer.Start(parent, "runner.exec")
	task := j.task
	if esp != nil {
		esp.SetAttr("worker", strconv.Itoa(wid))
		esp.SetAttr("name", task.Name())
		// Bridge the simulator's phase observer onto exec-span children,
		// so the waterfall decomposes exec into sim.build and sim.run.
		execCtx := esp.Context()
		task.Phase = func(name string) func() {
			return tracer.Start(execCtx, "sim."+name).End
		}
	}
	start := time.Now()
	var out *sim.Outcome
	var err error
	retries := 0
	for attempt := 0; ; attempt++ {
		out, err = p.attempt(task, j.key)
		if err == nil || attempt >= p.opts.Retries || p.ctx.Err() != nil {
			break
		}
		retries++
		p.mu.Lock()
		p.stats.retries++
		p.mu.Unlock()
		if p.met != nil {
			p.met.retries.Inc()
		}
		p.traceEvent(obs.Event{TS: p.sinceStart(time.Now()), Kind: obs.EvJobRetry,
			Track: int32(wid), Name: j.task.Name(), Trace: j.task.TraceID})
	}
	dur := time.Since(start)
	if retries > 0 {
		esp.SetAttr("retries", strconv.Itoa(retries))
	}
	if err != nil {
		esp.SetAttr("error", err.Error())
	}
	esp.End()
	p.traceEvent(obs.Event{TS: p.sinceStart(start), Kind: obs.EvJob, Track: int32(wid),
		Name: j.task.Name(), Dur: uint64(dur.Microseconds()), Arg: uint64(retries),
		Trace: j.task.TraceID})
	if err == nil {
		ssp := tracer.Start(parent, "runner.store")
		p.storeOutcome(j, out, ssp.Context())
		ssp.End()
	}
	p.finish(j, out, false, dur, err)
}

// storeOutcome persists a freshly simulated outcome: into the local disk
// cache, and through to the remote shared tier when one is configured.
// Both writes are best-effort — a failed store only costs a future
// re-simulation. sc rides the remote store's context so mmtcached can
// record its side of the hop.
func (p *Pool) storeOutcome(j *job, out *sim.Outcome, sc span.SpanContext) {
	var raw []byte
	if p.cache != nil {
		var err error
		if raw, err = p.cache.store(j.key, j.task, out); err != nil {
			if p.opts.Progress != nil {
				fmt.Fprintf(p.opts.Progress, "runner: cache write for %s failed: %v\n", j.task.Name(), err)
			}
			raw = nil
		}
	}
	if p.opts.RemoteCache == nil {
		return
	}
	if raw == nil {
		var err error
		if raw, err = encodeEntry(j.key, j.task, out); err != nil {
			return
		}
	}
	ctx, cancel := context.WithTimeout(span.ContextWith(context.Background(), sc), p.opts.RemoteTimeout)
	defer cancel()
	if err := p.opts.RemoteCache.Store(ctx, j.key, raw); err != nil {
		if p.opts.Progress != nil {
			fmt.Fprintf(p.opts.Progress, "runner: remote cache write for %s failed: %v\n", j.task.Name(), err)
		}
		return
	}
	if p.met != nil {
		p.met.remoteStores.Inc()
	}
}

// remoteLoad consults the remote shared cache tier after a local miss.
// Hits are validated like disk entries and copied into the local cache,
// so the next restart answers locally; any error degrades into a miss.
// sc rides the request context so mmtcached can record its side.
func (p *Pool) remoteLoad(j *job, sc span.SpanContext) (*sim.Outcome, bool) {
	if p.opts.RemoteCache == nil {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(span.ContextWith(p.ctx, sc), p.opts.RemoteTimeout)
	defer cancel()
	raw, ok, err := p.opts.RemoteCache.Load(ctx, j.key)
	if err != nil || !ok {
		if p.met != nil {
			p.met.remoteMisses.Inc()
		}
		return nil, false
	}
	out, derr := decodeEntry(raw, j.key, j.task)
	if derr != nil {
		if p.met != nil {
			p.met.remoteMisses.Inc()
		}
		return nil, false
	}
	if p.cache != nil {
		p.cache.PutRaw(j.key, raw) //nolint:errcheck // warming the local tier is best-effort
	}
	if p.met != nil {
		p.met.remoteHits.Inc()
	}
	return out, true
}

// attempt runs the task once on a fresh goroutine, converting panics into
// errors and enforcing the per-attempt timeout. key is the task's
// content-addressed identity, recorded with the panic so the flight dump
// names the exact experiment to replay.
func (p *Pool) attempt(t sim.Task, key string) (*sim.Outcome, error) {
	type result struct {
		out *sim.Outcome
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.notePanic(t, key, r)
				ch <- result{nil, fmt.Errorf("runner: job %s panicked: %v\n%s", t.Name(), r, debug.Stack())}
			}
		}()
		out, err := t.Execute()
		ch <- result{out, err}
	}()
	var timeout <-chan time.Time
	if p.opts.Timeout > 0 {
		timer := time.NewTimer(p.opts.Timeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case r := <-ch:
		return r.out, r.err
	case <-timeout:
		return nil, fmt.Errorf("runner: job %s timed out after %v (simulation goroutine abandoned)", t.Name(), p.opts.Timeout)
	case <-p.ctx.Done():
		return nil, p.ctx.Err()
	}
}

// notePanic lands a captured worker panic in the flight ring — with the
// offending job's task key and trace id — and dumps the ring to disk so
// the black box survives even if the process goes down next. Best-effort:
// panic capture must never introduce a second failure mode.
func (p *Pool) notePanic(t sim.Task, key string, r any) {
	fl := p.opts.Flight
	if fl == nil {
		return
	}
	fl.Panic(t.Name(), key, t.TraceID, fmt.Sprint(r))
	if p.opts.FlightDumpDir == "" {
		return
	}
	path := flight.DumpPath(p.opts.FlightDumpDir, fl.Service(), os.Getpid())
	if err := fl.WriteDump(path, "panic in job "+t.Name()); err != nil {
		if p.opts.Progress != nil {
			fmt.Fprintf(p.opts.Progress, "runner: flight dump for panicked job %s failed: %v\n", t.Name(), err)
		}
		return
	}
	if p.opts.Progress != nil {
		fmt.Fprintf(p.opts.Progress, "runner: job %s panicked; flight dump written to %s\n", t.Name(), path)
	}
}

// finish records a job's outcome and wakes its waiters.
func (p *Pool) finish(j *job, out *sim.Outcome, fromCache bool, dur time.Duration, err error) {
	p.mu.Lock()
	switch {
	case err != nil:
		p.stats.failed++
	case fromCache:
		p.stats.cacheHits++
	default:
		p.stats.executed++
	}
	if !fromCache && dur > 0 {
		p.stats.simTime += dur
		p.stats.timings = append(p.stats.timings, JobTiming{Name: j.task.Name(), Duration: dur})
	}
	p.mu.Unlock()
	if p.met != nil {
		switch {
		case err != nil:
			p.met.failed.Inc()
		case fromCache:
			p.met.cacheHits.Inc()
		default:
			p.met.executed.Inc()
		}
		if !fromCache && dur > 0 {
			p.met.runTime.Observe(dur)
		}
	}
	j.out, j.err = out, err
	if p.opts.OnComplete != nil {
		p.opts.OnComplete(Completion{Key: j.key, Name: j.task.Name(),
			FromCache: fromCache, Dur: dur, Err: err})
	}
	close(j.done)
}

// Close stops accepting work, waits for in-flight jobs, and stops the
// progress and cancellation watchers. It is idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
		p.workers.Wait()
		close(p.stopWatch)
		close(p.stopProgress)
		close(p.stopUtil)
		p.wall = time.Since(p.start)
	})
}

// progressLoop periodically emits a one-line status while jobs are moving.
func (p *Pool) progressLoop() {
	ticker := time.NewTicker(p.opts.ProgressEvery)
	defer ticker.Stop()
	var last string
	for {
		select {
		case <-p.stopProgress:
			return
		case <-ticker.C:
			line := p.progressLine()
			if line != "" && line != last {
				fmt.Fprintln(p.opts.Progress, line)
				last = line
			}
		}
	}
}

// progressLine renders the current counts; empty when nothing is scheduled.
func (p *Pool) progressLine() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := len(p.jobs)
	if total == 0 {
		return ""
	}
	done := p.stats.executed + p.stats.cacheHits + p.stats.failed
	return fmt.Sprintf("runner: %d/%d jobs done (%d simulated, %d cached, %d failed)",
		done, total, p.stats.executed, p.stats.cacheHits, p.stats.failed)
}
