package runner

import (
	"bytes"
	"context"
	"testing"
	"time"

	"mmt/internal/obs"
)

// TestPoolMetricsAndTrace drives a cold run and a warm restart through an
// instrumented pool and checks the metric counters and the trace event
// stream against what actually happened.
func TestPoolMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	task := cheapTask(t, "libsvm", 20000)

	var cold bytes.Buffer
	reg := obs.NewRegistry()
	rec := obs.NewJSONL(&cold, nil)
	p := newPool(t, context.Background(), Options{
		Workers: 2, CacheDir: dir,
		Metrics: reg, Trace: rec, TraceSampleEvery: 5 * time.Millisecond,
	})
	if _, err := p.Do(task); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"mmt_runner_jobs_scheduled_total": 1,
		"mmt_runner_jobs_executed_total":  1,
		"mmt_runner_cache_misses_total":   1,
		"mmt_runner_cache_hits_total":     0,
		"mmt_runner_jobs_failed_total":    0,
	} {
		if snap[name] != want {
			t.Errorf("cold %s = %v, want %d", name, snap[name], want)
		}
	}

	lines, err := obs.DecodeJSONL(&cold)
	if err != nil {
		t.Fatal(err)
	}
	var jobs int
	for _, l := range lines {
		if l.Event != nil && l.Event.Kind == obs.EvJob {
			jobs++
			if l.Event.Name != task.Name() || l.Event.Dur == 0 {
				t.Errorf("job span: %+v", *l.Event)
			}
		}
	}
	if jobs != 1 {
		t.Errorf("cold trace has %d job spans, want 1", jobs)
	}

	// Warm restart against the same cache directory: the job must be a
	// cache hit, traced as such, with nothing executed.
	var warm bytes.Buffer
	reg2 := obs.NewRegistry()
	rec2 := obs.NewJSONL(&warm, nil)
	p2 := newPool(t, context.Background(), Options{
		Workers: 1, CacheDir: dir, Metrics: reg2, Trace: rec2,
	})
	if _, err := p2.Do(task); err != nil {
		t.Fatal(err)
	}
	p2.Close()
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}

	snap2 := reg2.Snapshot()
	for name, want := range map[string]uint64{
		"mmt_runner_cache_hits_total":    1,
		"mmt_runner_jobs_executed_total": 0,
	} {
		if snap2[name] != want {
			t.Errorf("warm %s = %v, want %d", name, snap2[name], want)
		}
	}
	warmLines, err := obs.DecodeJSONL(&warm)
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, l := range warmLines {
		if l.Event != nil && l.Event.Kind == obs.EvCacheHit {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("warm trace has %d cache-hit events, want 1", hits)
	}

	// Queue/run timers observed something plausible.
	if snap["mmt_runner_run_seconds_count"] != uint64(1) {
		t.Errorf("run timer count = %v", snap["mmt_runner_run_seconds_count"])
	}
}

// TestPoolUninstrumented: a pool with no registry and no trace must run
// exactly as before — the instrumentation is nil-guarded throughout.
func TestPoolUninstrumented(t *testing.T) {
	p := newPool(t, context.Background(), Options{Workers: 1})
	if _, err := p.Do(cheapTask(t, "libsvm", 20000)); err != nil {
		t.Fatal(err)
	}
}
