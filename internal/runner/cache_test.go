package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmt/internal/core"
	"mmt/internal/sim"
)

// testEntry builds a valid raw cache entry for a synthetic key, padded to
// roughly size bytes so eviction tests can reason about the byte budget.
func testEntry(t *testing.T, i, size int) (key string, raw []byte) {
	t.Helper()
	sum := sha256.Sum256([]byte(fmt.Sprintf("cache-test-%d", i)))
	key = hex.EncodeToString(sum[:])
	out := &sim.Outcome{Result: &sim.Result{App: strings.Repeat("x", size), Stats: &core.Stats{}}}
	oraw, err := sim.MarshalOutcome(out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = json.Marshal(entry{Schema: sim.KeySchema, Key: key, Task: "test", Outcome: oraw})
	if err != nil {
		t.Fatal(err)
	}
	return key, raw
}

func TestCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	k0, r0 := testEntry(t, 0, 64)
	budget := int64(3*len(r0) + len(r0)/2) // room for ~3 entries
	c, err := OpenCache(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	evicted := 0
	c.SetEvictHook(func() { evicted++ })

	keys := []string{k0}
	if err := c.PutRaw(k0, r0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		k, r := testEntry(t, i, 64)
		keys = append(keys, k)
		// Touch entry 0 before each insert: it stays hot and must survive.
		if _, ok := c.GetRaw(k0); !ok {
			t.Fatalf("hot entry evicted before insert %d", i)
		}
		if err := c.PutRaw(k, r); err != nil {
			t.Fatal(err)
		}
	}
	if c.Evictions() == 0 || evicted == 0 {
		t.Fatalf("no evictions under a %d-byte budget after 5 inserts (bytes=%d)", budget, c.Bytes())
	}
	if int(c.Evictions()) != evicted {
		t.Errorf("evict hook fired %d times, counter says %d", evicted, c.Evictions())
	}
	if c.Bytes() > budget {
		t.Errorf("cache holds %d bytes, budget %d", c.Bytes(), budget)
	}
	if _, ok := c.GetRaw(k0); !ok {
		t.Error("most-recently-used entry was evicted")
	}
	// The coldest non-touched entry (1) must be gone.
	if _, ok := c.GetRaw(keys[1]); ok {
		t.Error("least-recently-used entry survived eviction")
	}
}

func TestCacheReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < 3; i++ {
		k, r := testEntry(t, i, 32)
		if err := c.PutRaw(k, r); err != nil {
			t.Fatal(err)
		}
		total += int64(len(r))
	}
	// Stray files are ignored by the index.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 3 || re.Bytes() != total {
		t.Errorf("reopened cache indexed %d entries / %d bytes, want 3 / %d", re.Len(), re.Bytes(), total)
	}
	// Reopening under a tight budget trims immediately.
	tight, err := OpenCache(dir, total-1)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Evictions() == 0 || tight.Bytes() > total-1 {
		t.Errorf("tight reopen: %d evictions, %d bytes (budget %d)", tight.Evictions(), tight.Bytes(), total-1)
	}
}

func TestCachePutRawRejectsBadEntries(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	k, r := testEntry(t, 0, 16)
	if err := c.PutRaw("not-a-key", r); err == nil {
		t.Error("malformed key accepted")
	}
	other, _ := testEntry(t, 1, 16)
	if err := c.PutRaw(other, r); err == nil {
		t.Error("entry stored under a key it does not embed")
	}
	if err := c.PutRaw(k, []byte("{")); err == nil {
		t.Error("torn JSON accepted")
	}
	var e entry
	if err := json.Unmarshal(r, &e); err != nil {
		t.Fatal(err)
	}
	e.Schema = sim.KeySchema + 1
	stale, _ := json.Marshal(e)
	if err := c.PutRaw(k, stale); err == nil {
		t.Error("wrong-schema entry accepted")
	}
	if c.Len() != 0 {
		t.Errorf("rejected entries left %d index records", c.Len())
	}
	if err := c.PutRaw(k, r); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	got, ok := c.GetRaw(k)
	if !ok || string(got) != string(r) {
		t.Error("round trip lost the entry bytes")
	}
}
