package runner

import (
	"time"

	"mmt/internal/obs"
)

// poolMetrics holds the registry handles the pool updates while running;
// nil when Options.Metrics is unset, so instrumented sites cost one nil
// check.
type poolMetrics struct {
	scheduled    *obs.Counter
	executed     *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	failed       *obs.Counter
	retries      *obs.Counter
	invalidated  *obs.Counter
	evictions    *obs.Counter
	remoteHits   *obs.Counter
	remoteMisses *obs.Counter
	remoteStores *obs.Counter
	busy         *obs.Gauge
	queued       *obs.Gauge
	queueTime    *obs.Timer
	runTime      *obs.Timer
}

func newPoolMetrics(r *obs.Registry) *poolMetrics {
	return &poolMetrics{
		scheduled:    r.Counter("mmt_runner_jobs_scheduled_total", "Distinct jobs scheduled on the pool."),
		executed:     r.Counter("mmt_runner_jobs_executed_total", "Simulations run to completion."),
		cacheHits:    r.Counter("mmt_runner_cache_hits_total", "Jobs served from the persistent result cache."),
		cacheMisses:  r.Counter("mmt_runner_cache_misses_total", "Persistent-cache lookups that missed."),
		failed:       r.Counter("mmt_runner_jobs_failed_total", "Jobs that finished with an error."),
		retries:      r.Counter("mmt_runner_retries_total", "Extra attempts consumed by failed jobs."),
		invalidated:  r.Counter("mmt_runner_cache_invalidated_total", "Corrupt or mismatched cache entries deleted."),
		evictions:    r.Counter("mmt_cache_evictions_total", "Entries evicted from the persistent cache by its byte budget."),
		remoteHits:   r.Counter("mmt_runner_remote_cache_hits_total", "Jobs served from the remote shared cache tier."),
		remoteMisses: r.Counter("mmt_runner_remote_cache_misses_total", "Remote cache lookups that missed or failed."),
		remoteStores: r.Counter("mmt_runner_remote_cache_stores_total", "Outcomes written through to the remote cache tier."),
		busy:         r.Gauge("mmt_runner_workers_busy", "Workers currently executing a job."),
		queued:       r.Gauge("mmt_runner_queue_depth", "Jobs waiting for a worker."),
		queueTime:    r.Timer("mmt_runner_queue", "Time jobs spent queued before a worker picked them up."),
		runTime:      r.Timer("mmt_runner_run", "Wall-clock time of executed simulations."),
	}
}

// sinceStart converts a pool-relative instant into the trace time domain
// (microseconds since pool start).
func (p *Pool) sinceStart(t time.Time) uint64 {
	d := t.Sub(p.start)
	if d < 0 {
		return 0
	}
	return uint64(d.Microseconds())
}

// traceEvent emits one event on the pool's trace recorder, if any.
func (p *Pool) traceEvent(e obs.Event) {
	if p.opts.Trace != nil {
		p.opts.Trace.Event(e)
	}
}

// utilLoop periodically emits worker-utilization and queue-depth counter
// samples onto the trace while it is attached.
func (p *Pool) utilLoop() {
	ticker := time.NewTicker(p.opts.TraceSampleEvery)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopUtil:
			return
		case <-ticker.C:
			p.mu.Lock()
			busy := p.stats.busyWorkers
			queued := len(p.queue)
			p.mu.Unlock()
			ts := p.sinceStart(time.Now())
			p.traceEvent(obs.Event{TS: ts, Kind: obs.EvCounter, Track: obs.TrackMachine,
				Name: "workers busy", Arg: uint64(busy)})
			p.traceEvent(obs.Event{TS: ts, Kind: obs.EvCounter, Track: obs.TrackMachine,
				Name: "queue depth", Arg: uint64(queued)})
		}
	}
}
