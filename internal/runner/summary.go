package runner

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// JobTiming is one executed job's wall-clock duration.
type JobTiming struct {
	Name     string
	Duration time.Duration
}

// Summary is the pool's post-run report.
type Summary struct {
	Jobs        int // distinct jobs scheduled
	Executed    int // simulations actually run
	CacheHits   int // served from the persistent cache
	Failed      int
	Retries     int
	Invalidated int // corrupt/mismatched cache entries deleted
	Workers     int
	Wall        time.Duration // pool lifetime (New to Close)
	SimTime     time.Duration // aggregate simulation time across workers
	Slowest     []JobTiming   // top executed jobs by duration
}

// maxSlowest bounds how many slow jobs the summary names.
const maxSlowest = 5

// Summary snapshots the pool's counters. Call it after Close for a final
// wall-clock figure.
func (p *Pool) Summary() Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Summary{
		Jobs:        len(p.jobs),
		Executed:    p.stats.executed,
		CacheHits:   p.stats.cacheHits,
		Failed:      p.stats.failed,
		Retries:     p.stats.retries,
		Invalidated: p.stats.invalidated,
		Workers:     p.opts.Workers,
		Wall:        p.wall,
		SimTime:     p.stats.simTime,
	}
	if s.Wall == 0 {
		s.Wall = time.Since(p.start)
	}
	timings := append([]JobTiming(nil), p.stats.timings...)
	sort.Slice(timings, func(i, j int) bool { return timings[i].Duration > timings[j].Duration })
	if len(timings) > maxSlowest {
		timings = timings[:maxSlowest]
	}
	s.Slowest = timings
	return s
}

// Format renders the summary as the multi-line block mmtbench prints to
// stderr.
func (s Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d jobs — %d simulated, %d cached, %d failed",
		s.Jobs, s.Executed, s.CacheHits, s.Failed)
	if s.Retries > 0 {
		fmt.Fprintf(&b, " (%d retries)", s.Retries)
	}
	if s.Invalidated > 0 {
		fmt.Fprintf(&b, " (%d cache entries invalidated)", s.Invalidated)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "runner: wall %s, simulation time %s across %d workers",
		s.Wall.Round(time.Millisecond), s.SimTime.Round(time.Millisecond), s.Workers)
	if s.Wall > 0 && s.SimTime > 0 {
		fmt.Fprintf(&b, " (%.1fx)", float64(s.SimTime)/float64(s.Wall))
	}
	b.WriteByte('\n')
	if len(s.Slowest) > 0 {
		b.WriteString("runner: slowest jobs:")
		for _, jt := range s.Slowest {
			fmt.Fprintf(&b, " %s %s;", jt.Name, jt.Duration.Round(time.Millisecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
