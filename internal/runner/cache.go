package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mmt/internal/sim"
)

// diskCache is the persistent result cache: one JSON file per task key
// under the cache directory. Writes go through a temp file and an atomic
// rename, so a killed run never leaves a torn entry; reads validate the
// schema version and the embedded key and delete anything corrupt or
// mismatched (it then simply re-simulates).
type diskCache struct {
	dir string
}

// entry is the on-disk format. Task is a human-readable label for people
// inspecting the cache directory; only Schema, Key and Outcome are load-
// bearing.
type entry struct {
	Schema  int          `json:"schema"`
	Key     string       `json:"key"`
	Task    string       `json:"task"`
	Outcome *sim.Outcome `json:"outcome"`
}

// openDiskCache creates the directory if needed.
func openDiskCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

// path returns the entry file for a key. Keys are hex SHA-256, so they are
// always safe file names.
func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the cached outcome and whether it hit; invalidated reports
// that a corrupt or mismatched entry was found and deleted.
func (c *diskCache) load(key string, t sim.Task) (out *sim.Outcome, ok, invalidated bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || !c.valid(&e, key, t) {
		os.Remove(c.path(key))
		return nil, false, true
	}
	return e.Outcome, true, false
}

// valid checks an entry against the key and the task's expected shape.
func (c *diskCache) valid(e *entry, key string, t sim.Task) bool {
	if e.Schema != sim.KeySchema || e.Key != key || e.Outcome == nil {
		return false
	}
	if t.Profile {
		return e.Outcome.Profile != nil
	}
	return e.Outcome.Result != nil && e.Outcome.Result.Stats != nil
}

// store writes an entry atomically (temp file + rename).
func (c *diskCache) store(key string, t sim.Task, out *sim.Outcome) error {
	b, err := json.Marshal(entry{Schema: sim.KeySchema, Key: key, Task: t.Name(), Outcome: out})
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
