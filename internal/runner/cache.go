package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mmt/internal/sim"
)

// diskCache is the persistent result cache: one JSON file per task key
// under the cache directory. Writes go through a temp file and an atomic
// rename, so a killed run never leaves a torn entry; reads validate the
// schema version and the embedded key and delete anything corrupt or
// mismatched (it then simply re-simulates).
type diskCache struct {
	dir string
}

// entry is the on-disk format. Task is a human-readable label for people
// inspecting the cache directory; only Schema, Key and Outcome are load-
// bearing. Outcome is the canonical encoding from sim.MarshalOutcome —
// the same bytes the serving API ships — kept raw here so the envelope
// never re-interprets it.
type entry struct {
	Schema  int             `json:"schema"`
	Key     string          `json:"key"`
	Task    string          `json:"task"`
	Outcome json.RawMessage `json:"outcome"`
}

// openDiskCache creates the directory if needed.
func openDiskCache(dir string) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &diskCache{dir: dir}, nil
}

// path returns the entry file for a key. Keys are hex SHA-256, so they are
// always safe file names.
func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the cached outcome and whether it hit; invalidated reports
// that a corrupt or mismatched entry was found and deleted.
func (c *diskCache) load(key string, t sim.Task) (out *sim.Outcome, ok, invalidated bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Schema != sim.KeySchema || e.Key != key {
		os.Remove(c.path(key))
		return nil, false, true
	}
	out, err = sim.UnmarshalOutcome(e.Outcome)
	if err != nil || !shapeMatches(out, t) {
		os.Remove(c.path(key))
		return nil, false, true
	}
	return out, true, false
}

// shapeMatches checks the decoded outcome against the task's expected
// kind (the codec already validated internal consistency).
func shapeMatches(out *sim.Outcome, t sim.Task) bool {
	if t.Profile {
		return out.Profile != nil
	}
	return out.Result != nil
}

// store writes an entry atomically (temp file + rename).
func (c *diskCache) store(key string, t sim.Task, out *sim.Outcome) error {
	raw, err := sim.MarshalOutcome(out)
	if err != nil {
		return err
	}
	b, err := json.Marshal(entry{Schema: sim.KeySchema, Key: key, Task: t.Name(), Outcome: raw})
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
