package runner

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mmt/internal/sim"
)

// Cache is the persistent result cache: one JSON file per task key under
// the cache directory. Writes go through a temp file and an atomic
// rename, so a killed run never leaves a torn entry; reads validate the
// schema version and the embedded key and delete anything corrupt or
// mismatched (the pool then simply re-simulates).
//
// With a non-zero byte budget the cache evicts least-recently-used
// entries once the budget is exceeded, so long soaks — and the remote
// cache node cmd/mmtcached builds on this same type — never grow disk
// unboundedly. Recency is tracked in memory (file mtime orders entries at
// open); the entry most recently written or read is never evicted, even
// when it alone exceeds the budget.
//
// The raw Get/Put surface exposes entries as opaque validated blobs: it
// is the wire format of the remote shared cache tier (internal/cluster),
// which is therefore byte-identical to the local disk format.
type Cache struct {
	dir string
	max int64 // byte budget; 0 = unlimited

	mu        sync.Mutex
	index     map[string]*list.Element // key -> lru element
	lru       *list.List               // of *centry; front = most recently used
	bytes     int64
	evictions uint64
	onEvict   func() // optional metric hook, called once per evicted entry
}

// centry is one tracked cache file.
type centry struct {
	key  string
	size int64
}

// entry is the on-disk (and remote-cache wire) format. Task is a human-
// readable label for people inspecting the cache directory; only Schema,
// Key and Outcome are load-bearing. Outcome is the canonical encoding
// from sim.MarshalOutcome — the same bytes the serving API ships — kept
// raw here so the envelope never re-interprets it.
type entry struct {
	Schema  int             `json:"schema"`
	Key     string          `json:"key"`
	Task    string          `json:"task"`
	Outcome json.RawMessage `json:"outcome"`
}

// OpenCache opens (creating if needed) a cache directory with the given
// byte budget (0 = unlimited). Existing entries are indexed oldest-first
// by file modification time and trimmed to the budget immediately.
func OpenCache(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	c := &Cache{
		dir:   dir,
		max:   maxBytes,
		index: make(map[string]*list.Element),
		lru:   list.New(),
	}
	if err := c.scan(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
	return c, nil
}

// scan indexes the directory's entry files, oldest modification first so
// the LRU list's back holds the stalest entry.
func (c *Cache) scan() error {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("runner: scanning cache dir: %w", err)
	}
	type onDisk struct {
		key  string
		size int64
		mod  int64
	}
	var files []onDisk
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(name, ".json")
		if !validCacheKey(key) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, onDisk{key: key, size: info.Size(), mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for _, f := range files {
		c.index[f.key] = c.lru.PushFront(&centry{key: f.key, size: f.size})
		c.bytes += f.size
	}
	return nil
}

// validCacheKey reports whether key is a hex SHA-256 — the only shape
// task keys take, and (for the remote cache service) the guard against
// path-traversal names.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		b := key[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// SetEvictHook installs a callback invoked once per evicted entry (for
// the pool's mmt_cache_evictions_total counter). Call before concurrent
// use.
func (c *Cache) SetEvictHook(fn func()) { c.onEvict = fn }

// Len returns the number of indexed entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the indexed entries' total size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions returns how many entries the byte budget has evicted.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// path returns the entry file for a key. Keys are hex SHA-256, so they are
// always safe file names.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// GetRaw returns the raw entry blob for key and bumps its recency. The
// blob is returned as stored; use decodeEntry (or the typed load) to
// validate it.
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	if !validCacheKey(key) {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		c.dropLocked(key)
		return nil, false
	}
	c.touchLocked(key, int64(len(b)))
	return b, true
}

// PutRaw validates and stores a raw entry blob under key, then enforces
// the byte budget. The blob must be a well-formed entry whose embedded
// key and schema match — the remote cache service calls this directly, so
// a misbehaving client cannot poison the store.
func (c *Cache) PutRaw(key string, raw []byte) error {
	if !validCacheKey(key) {
		return fmt.Errorf("runner: cache key %q is not a hex SHA-256", key)
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return fmt.Errorf("runner: cache entry for %.8s: %w", key, err)
	}
	if e.Schema != sim.KeySchema {
		return fmt.Errorf("runner: cache entry for %.8s has schema %d, want %d", key, e.Schema, sim.KeySchema)
	}
	if e.Key != key {
		return fmt.Errorf("runner: cache entry embeds key %.8s, stored under %.8s", e.Key, key)
	}
	if _, err := sim.UnmarshalOutcome(e.Outcome); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeLocked(key, raw); err != nil {
		return err
	}
	c.touchLocked(key, int64(len(raw)))
	c.evictLocked()
	return nil
}

// touchLocked records key as most-recently-used with the given size
// (caller holds mu).
func (c *Cache) touchLocked(key string, size int64) {
	if el, ok := c.index[key]; ok {
		ce := el.Value.(*centry)
		c.bytes += size - ce.size
		ce.size = size
		c.lru.MoveToFront(el)
		return
	}
	c.index[key] = c.lru.PushFront(&centry{key: key, size: size})
	c.bytes += size
}

// dropLocked removes key from the index without touching disk (caller
// holds mu; used when the file is already gone or about to be removed).
func (c *Cache) dropLocked(key string) {
	if el, ok := c.index[key]; ok {
		c.bytes -= el.Value.(*centry).size
		c.lru.Remove(el)
		delete(c.index, key)
	}
}

// removeLocked deletes an entry's file and index record (caller holds mu).
func (c *Cache) removeLocked(key string) {
	os.Remove(c.path(key))
	c.dropLocked(key)
}

// evictLocked enforces the byte budget by evicting least-recently-used
// entries (caller holds mu). The most recent entry is never evicted, so a
// single oversized result still caches.
func (c *Cache) evictLocked() {
	if c.max <= 0 {
		return
	}
	for c.bytes > c.max && c.lru.Len() > 1 {
		back := c.lru.Back()
		c.removeLocked(back.Value.(*centry).key)
		c.evictions++
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// writeLocked writes an entry file atomically (temp file + rename; caller
// holds mu).
func (c *Cache) writeLocked(key string, b []byte) error {
	f, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// encodeEntry renders the canonical entry blob for a task's outcome — the
// format both the disk cache and the remote cache tier store.
func encodeEntry(key string, t sim.Task, out *sim.Outcome) ([]byte, error) {
	raw, err := sim.MarshalOutcome(out)
	if err != nil {
		return nil, err
	}
	return json.Marshal(entry{Schema: sim.KeySchema, Key: key, Task: t.Name(), Outcome: raw})
}

// decodeEntry validates a raw entry blob against the key and task it is
// supposed to resolve and returns the decoded outcome.
func decodeEntry(b []byte, key string, t sim.Task) (*sim.Outcome, error) {
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, fmt.Errorf("runner: cache entry for %.8s: %w", key, err)
	}
	if e.Schema != sim.KeySchema || e.Key != key {
		return nil, fmt.Errorf("runner: cache entry for %.8s has schema %d key %.8s", key, e.Schema, e.Key)
	}
	out, err := sim.UnmarshalOutcome(e.Outcome)
	if err != nil {
		return nil, err
	}
	if !shapeMatches(out, t) {
		return nil, fmt.Errorf("runner: cache entry for %.8s does not match the task's outcome kind", key)
	}
	return out, nil
}

// load returns the cached outcome and whether it hit; invalidated reports
// that a corrupt or mismatched entry was found and deleted.
func (c *Cache) load(key string, t sim.Task) (out *sim.Outcome, ok, invalidated bool) {
	b, found := c.GetRaw(key)
	if !found {
		return nil, false, false
	}
	out, err := decodeEntry(b, key, t)
	if err != nil {
		c.mu.Lock()
		c.removeLocked(key)
		c.mu.Unlock()
		return nil, false, true
	}
	return out, true, false
}

// shapeMatches checks the decoded outcome against the task's expected
// kind (the codec already validated internal consistency).
func shapeMatches(out *sim.Outcome, t sim.Task) bool {
	if t.Profile {
		return out.Profile != nil
	}
	return out.Result != nil
}

// store writes an entry and enforces the byte budget, returning the blob
// it wrote so callers can forward the same bytes to a remote tier.
func (c *Cache) store(key string, t sim.Task, out *sim.Outcome) ([]byte, error) {
	b, err := encodeEntry(key, t, out)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.writeLocked(key, b); err != nil {
		return nil, err
	}
	c.touchLocked(key, int64(len(b)))
	c.evictLocked()
	return b, nil
}

// RemoteCache is a shared result-cache tier behind the local disk cache:
// the pool checks it on a local miss and writes through on store, so any
// node in a fleet — and any CI run pointed at the same service — gets
// warm hits. Blobs are raw cache entries (the disk format); the pool
// validates them on load, so a corrupt or stale tier degrades into a
// miss, never a wrong result. internal/cluster.CacheClient is the HTTP
// implementation talking to cmd/mmtcached.
type RemoteCache interface {
	// Load fetches the raw entry for key; ok reports a hit. Errors are
	// treated as misses by the pool.
	Load(ctx context.Context, key string) (raw []byte, ok bool, err error)
	// Store writes the raw entry for key. Best-effort: the pool logs and
	// continues on error.
	Store(ctx context.Context, key string, raw []byte) error
}
