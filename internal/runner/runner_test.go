package runner

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mmt/internal/core"
	"mmt/internal/obs/flight"
	"mmt/internal/prog"
	"mmt/internal/sim"
	"mmt/internal/workloads"
)

// cheapTask returns a fast timing task: a real workload capped to a small
// per-thread instruction budget. The cap enters the resolved configuration,
// so each budget is a distinct cache key.
func cheapTask(t *testing.T, app string, maxInsts uint64) sim.Task {
	t.Helper()
	a, ok := workloads.ByName(app)
	if !ok {
		t.Fatalf("missing app %s", app)
	}
	return sim.Task{
		App:     a,
		Preset:  sim.PresetBase,
		Threads: 2,
		Mutate:  func(c *core.Config) { c.MaxInsts = maxInsts },
	}
}

func newPool(t *testing.T, ctx context.Context, opts Options) *Pool {
	t.Helper()
	p, err := New(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPoolExecutesAndDedupes(t *testing.T) {
	p := newPool(t, context.Background(), Options{Workers: 2})
	task := cheapTask(t, "libsvm", 20000)
	p.Schedule(task, task) // duplicate schedule must not double-run
	out, err := p.Do(task)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || out.Result.Stats.Cycles == 0 {
		t.Fatalf("empty outcome: %+v", out)
	}
	// Same key through a different (equivalent) closure: shared future.
	again, err := p.Do(cheapTask(t, "libsvm", 20000))
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Error("equal-key task did not share the outcome")
	}
	p.Close()
	s := p.Summary()
	if s.Jobs != 1 || s.Executed != 1 || s.CacheHits != 0 || s.Failed != 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.SimTime <= 0 || len(s.Slowest) != 1 {
		t.Errorf("timings missing: %+v", s)
	}
	if !strings.Contains(s.Format(), "1 jobs") {
		t.Errorf("format: %q", s.Format())
	}
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tasks := []sim.Task{cheapTask(t, "libsvm", 20000), cheapTask(t, "twolf", 20000)}

	p1 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	p1.Schedule(tasks...)
	var fresh []*sim.Outcome
	for _, task := range tasks {
		out, err := p1.Do(task)
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, out)
	}
	p1.Close()
	if s := p1.Summary(); s.Executed != 2 || s.CacheHits != 0 {
		t.Fatalf("cold run summary = %+v", s)
	}

	// A second pool over the same directory must execute nothing.
	p2 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	for i, task := range tasks {
		out, err := p2.Do(task)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(fresh[i])
		got, _ := json.Marshal(out)
		if string(want) != string(got) {
			t.Errorf("%s: cached outcome differs from fresh run", task.Name())
		}
	}
	p2.Close()
	if s := p2.Summary(); s.Executed != 0 || s.CacheHits != 2 || s.Invalidated != 0 {
		t.Errorf("warm run summary = %+v", s)
	}
}

func TestDiskCacheCorruptEntryInvalidated(t *testing.T) {
	dir := t.TempDir()
	task := cheapTask(t, "libsvm", 20000)
	key, err := task.Key()
	if err != nil {
		t.Fatal(err)
	}

	p1 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	if _, err := p1.Do(task); err != nil {
		t.Fatal(err)
	}
	p1.Close()

	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	if _, err := p2.Do(task); err != nil {
		t.Fatal(err)
	}
	p2.Close()
	if s := p2.Summary(); s.Invalidated != 1 || s.Executed != 1 || s.CacheHits != 0 {
		t.Errorf("corrupt-entry summary = %+v", s)
	}

	// The re-execution restored a valid entry.
	p3 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	if _, err := p3.Do(task); err != nil {
		t.Fatal(err)
	}
	p3.Close()
	if s := p3.Summary(); s.CacheHits != 1 || s.Executed != 0 {
		t.Errorf("restored-entry summary = %+v", s)
	}
}

func TestDiskCacheKeyMismatchInvalidated(t *testing.T) {
	dir := t.TempDir()
	a := cheapTask(t, "libsvm", 20000)
	b := cheapTask(t, "libsvm", 30000)
	aKey, _ := a.Key()
	bKey, _ := b.Key()
	if aKey == bKey {
		t.Fatal("distinct budgets share a key")
	}

	p1 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	if _, err := p1.Do(a); err != nil {
		t.Fatal(err)
	}
	p1.Close()

	// Masquerade a's entry as b's: the embedded key must expose it.
	blob, err := os.ReadFile(filepath.Join(dir, aKey+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bKey+".json"), blob, 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	out, err := p2.Do(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || out.Result.Stats == nil {
		t.Fatal("empty re-executed outcome")
	}
	p2.Close()
	// Executed==1 (not a cache hit) proves the masqueraded entry was
	// rejected via its embedded key and the point re-simulated.
	if s := p2.Summary(); s.Invalidated != 1 || s.Executed != 1 || s.CacheHits != 0 {
		t.Errorf("mismatch summary = %+v", s)
	}
}

func TestCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	blocker := sim.Task{
		App:     mustApp(t, "libsvm"),
		Preset:  sim.PresetBase,
		Threads: 2,
		Variant: "test:blocker",
		Build: func() (*prog.System, error) {
			<-release
			return nil, errors.New("released")
		},
	}
	queued := cheapTask(t, "twolf", 20000)

	p := newPool(t, ctx, Options{Workers: 1})
	p.Schedule(blocker, queued) // blocker occupies the only worker

	done := make(chan error, 1)
	go func() {
		_, err := p.Do(queued)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	close(release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("queued job error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not unblock on cancellation")
	}
	if _, err := p.Do(blocker); !errors.Is(err, context.Canceled) {
		t.Errorf("running job error = %v, want context.Canceled", err)
	}
	// New work after cancellation fails fast instead of hanging.
	if _, err := p.Do(cheapTask(t, "ammp", 20000)); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel job error = %v, want context.Canceled", err)
	}
	p.Close()
	if s := p.Summary(); s.Failed == 0 {
		t.Errorf("no failures recorded: %+v", s)
	}
}

func TestPanicInJobIsolated(t *testing.T) {
	p := newPool(t, context.Background(), Options{Workers: 2})
	bomb := sim.Task{
		App:     mustApp(t, "libsvm"),
		Preset:  sim.PresetBase,
		Threads: 2,
		Variant: "test:panic",
		Build:   func() (*prog.System, error) { panic("boom") },
	}
	good := cheapTask(t, "libsvm", 20000)
	p.Schedule(bomb, good)

	if _, err := p.Do(bomb); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("panic error = %v", err)
	}
	out, err := p.Do(good)
	if err != nil || out.Result == nil {
		t.Errorf("sibling job poisoned: %v", err)
	}
	p.Close()
	s := p.Summary()
	if s.Failed != 1 || s.Executed != 1 {
		t.Errorf("summary = %+v", s)
	}
	// Retries=0 by default here; a panic consumes no retry budget.
	if s.Retries != 0 {
		t.Errorf("retries = %d", s.Retries)
	}
}

func TestTimeoutAbandonsAttempt(t *testing.T) {
	p := newPool(t, context.Background(), Options{Workers: 1, Timeout: 50 * time.Millisecond})
	slow := sim.Task{
		App:     mustApp(t, "libsvm"),
		Preset:  sim.PresetBase,
		Threads: 2,
		Variant: "test:slow",
		Build: func() (*prog.System, error) {
			time.Sleep(2 * time.Second)
			return nil, errors.New("woke up")
		},
	}
	if _, err := p.Do(slow); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("timeout error = %v", err)
	}
	p.Close()
	if s := p.Summary(); s.Failed != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestRetriesConsumedOnFailure(t *testing.T) {
	p := newPool(t, context.Background(), Options{Workers: 1, Retries: 2})
	bad := sim.Task{
		App:     mustApp(t, "libsvm"),
		Preset:  sim.PresetBase,
		Threads: 2,
		Variant: "test:fails",
		Build:   func() (*prog.System, error) { return nil, errors.New("flaky") },
	}
	if _, err := p.Do(bad); err == nil || !strings.Contains(err.Error(), "flaky") {
		t.Errorf("error = %v", err)
	}
	p.Close()
	if s := p.Summary(); s.Retries != 2 || s.Failed != 1 {
		t.Errorf("summary = %+v", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	dir := t.TempDir()
	fail := true
	flaky := sim.Task{
		App:     mustApp(t, "libsvm"),
		Preset:  sim.PresetBase,
		Threads: 2,
		Variant: "test:recovers",
	}
	flaky.Build = func() (*prog.System, error) {
		if fail {
			return nil, errors.New("transient")
		}
		a := mustApp(t, "libsvm")
		return a.Build(2, sim.PresetBase.IdenticalInputs())
	}

	p1 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	if _, err := p1.Do(flaky); err == nil {
		t.Fatal("first attempt should fail")
	}
	p1.Close()

	fail = false
	p2 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir})
	out, err := p2.Do(flaky)
	if err != nil || out.Result == nil {
		t.Fatalf("recovered run: %v", err)
	}
	p2.Close()
	if s := p2.Summary(); s.Executed != 1 || s.CacheHits != 0 {
		t.Errorf("failure was cached: %+v", s)
	}
}

func TestUnkeyableTaskReported(t *testing.T) {
	p := newPool(t, context.Background(), Options{Workers: 1})
	bogus := sim.Task{App: mustApp(t, "libsvm"), Preset: sim.Preset("Bogus"), Threads: 2}
	p.Schedule(bogus) // must not wedge the pool
	if _, err := p.Do(bogus); err == nil {
		t.Error("unknown preset accepted")
	}
	p.Close()
}

func TestClosedPoolReturnsErrClosed(t *testing.T) {
	p := newPool(t, context.Background(), Options{Workers: 1})
	done := cheapTask(t, "libsvm", 20000)
	out, err := p.Do(done)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	// New keys are refused with the sentinel, by Do and Schedule alike.
	fresh := cheapTask(t, "twolf", 20000)
	if _, err := p.Do(fresh); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close = %v, want ErrClosed", err)
	}
	if err := p.Schedule(fresh); !errors.Is(err, ErrClosed) {
		t.Errorf("Schedule after Close = %v, want ErrClosed", err)
	}
	// Keys resolved before Close still collect: the drain pattern is
	// "stop submitting, then gather what was already accepted".
	again, err := p.Do(done)
	if err != nil || again != out {
		t.Errorf("pre-Close key lost after Close: %v", err)
	}
	// The refused task never entered the accounting.
	if s := p.Summary(); s.Jobs != 1 || s.Failed != 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestOnCompleteHook(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	comps := map[string]Completion{}
	hook := func(c Completion) {
		mu.Lock()
		comps[c.Key] = c
		mu.Unlock()
	}
	task := cheapTask(t, "libsvm", 20000)
	key, err := task.Key()
	if err != nil {
		t.Fatal(err)
	}

	p1 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir, OnComplete: hook})
	if _, err := p1.Do(task); err != nil {
		t.Fatal(err)
	}
	// OnComplete runs before Do returns, so no synchronization beyond the
	// hook's own lock is needed here.
	mu.Lock()
	c, ok := comps[key]
	mu.Unlock()
	if !ok || c.FromCache || c.Err != nil || c.Dur <= 0 || c.Name != task.Name() {
		t.Errorf("cold completion = %+v (ok=%v)", c, ok)
	}
	p1.Close()

	p2 := newPool(t, context.Background(), Options{Workers: 1, CacheDir: dir, OnComplete: hook})
	if _, err := p2.Do(task); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	c = comps[key]
	mu.Unlock()
	if !c.FromCache {
		t.Errorf("warm completion not marked FromCache: %+v", c)
	}
	p2.Close()
}

func mustApp(t *testing.T, name string) workloads.App {
	t.Helper()
	a, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("missing app %s", name)
	}
	return a
}

// TestPanicLandsInFlightRecorder is the regression test for the black-box
// contract: a captured worker panic records the offending job's task key
// and trace id in the flight ring and dumps the ring to disk.
func TestPanicLandsInFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	fl := flight.New("runner-test", 64)
	p := newPool(t, context.Background(), Options{
		Workers:       1,
		Flight:        fl,
		FlightDumpDir: dir,
		Trace:         fl, // the job timeline shares the ring
	})
	bomb := sim.Task{
		App:     mustApp(t, "libsvm"),
		Preset:  sim.PresetBase,
		Threads: 2,
		Variant: "test:flight-panic",
		TraceID: "t-flight-1",
		Build:   func() (*prog.System, error) { panic("flight boom") },
	}
	key, err := bomb.Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Do(bomb); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic error = %v", err)
	}

	var panics []flight.Entry
	for _, e := range fl.Entries() {
		if e.Kind == flight.KindPanic {
			panics = append(panics, e)
		}
	}
	if len(panics) != 1 {
		t.Fatalf("panic entries = %d, want 1", len(panics))
	}
	if panics[0].Trace != "t-flight-1" || !strings.Contains(panics[0].Err, "flight boom") {
		t.Errorf("panic entry = %+v", panics[0])
	}

	path := flight.DumpPath(dir, "runner-test", os.Getpid())
	d, err := flight.ReadDump(path)
	if err != nil {
		t.Fatalf("panic did not leave a flight dump: %v", err)
	}
	if !strings.Contains(d.Reason, "panicked") && !strings.Contains(d.Reason, "panic") {
		t.Errorf("dump reason = %q", d.Reason)
	}
	var keyed bool
	for _, e := range d.Entries {
		if e.Kind == flight.KindMark && strings.Contains(e.Name, key) {
			keyed = true
		}
	}
	if !keyed {
		t.Errorf("dump does not name the panicked task key %s", key)
	}
}
