package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config { return Config{SizeBytes: 1024, Ways: 2, LineBytes: 64} } // 8 sets

func TestConfigValidate(t *testing.T) {
	if err := small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 1000, Ways: 2, LineBytes: 64},
		{SizeBytes: 1024, Ways: 2, LineBytes: 48},
		{SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated", c)
		}
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := New(small())
	if c.Access(0x1000, false).Hit {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false).Hit {
		t.Error("second access missed")
	}
	// Same line, different offset.
	if !c.Access(0x103f, false).Hit {
		t.Error("same-line access missed")
	}
	// Next line misses.
	if c.Access(0x1040, false).Hit {
		t.Error("next line hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	c := New(small()) // 2 ways, 8 sets: lines mapping to set 0 are multiples of 64*8=512
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	res := c.Access(d, false)
	if res.Hit {
		t.Error("conflict access hit")
	}
	if !c.Access(a, false).Hit {
		t.Error("MRU line was evicted")
	}
	if c.Access(b, false).Hit {
		t.Error("LRU line survived")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	c := New(small())
	c.Access(0, true) // dirty
	c.Access(512, false)
	res := c.Access(1024, false) // evicts line 0 (dirty, LRU)
	if !res.Writeback {
		t.Error("dirty eviction did not report writeback")
	}
	if c.Stats.Writebacks != 1 || c.Stats.Evictions != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
	// Clean eviction: no writeback.
	c2 := New(small())
	c2.Access(0, false)
	c2.Access(512, false)
	if c2.Access(1024, false).Writeback {
		t.Error("clean eviction reported writeback")
	}
}

func TestCacheProbeDoesNotDisturb(t *testing.T) {
	c := New(small())
	c.Access(0x40, false)
	h, m := c.Stats.Hits, c.Stats.Misses
	if !c.Probe(0x40) || c.Probe(0x4000) {
		t.Error("probe results wrong")
	}
	if c.Stats.Hits != h || c.Stats.Misses != m {
		t.Error("probe touched stats")
	}
}

// TestCacheMatchesFullyAssociativeModel cross-checks the cache against a
// simple model on single-set geometry (fully associative).
func TestCacheMatchesModel(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ways := 4
		c := New(Config{SizeBytes: 64 * ways, Ways: ways, LineBytes: 64})
		var model []uint64 // LRU order, most recent last
		for i := 0; i < 300; i++ {
			addr := uint64(r.Intn(16)) * 64
			wantHit := false
			for k, v := range model {
				if v == addr {
					wantHit = true
					model = append(model[:k], model[k+1:]...)
					break
				}
			}
			model = append(model, addr)
			if len(model) > ways {
				model = model[1:]
			}
			if got := c.Access(addr, false).Hit; got != wantHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMSHRMerge(t *testing.T) {
	m := NewMSHR(4)
	d1 := m.Allocate(0x1000, 10, 100)
	if d1 != 110 {
		t.Errorf("first fill at %d", d1)
	}
	d2 := m.Allocate(0x1000, 20, 100)
	if d2 != 110 {
		t.Errorf("merged fill at %d, want 110", d2)
	}
	if m.Merges != 1 {
		t.Errorf("merges = %d", m.Merges)
	}
}

func TestMSHRStallWhenFull(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(0x0, 0, 100)  // ready 100
	m.Allocate(0x40, 0, 100) // ready 100
	done := m.Allocate(0x80, 0, 100)
	if done != 200 {
		t.Errorf("stalled fill at %d, want 200", done)
	}
	if m.Stalls != 1 {
		t.Errorf("stalls = %d", m.Stalls)
	}
	if m.Outstanding(50) != 2 {
		t.Errorf("outstanding = %d", m.Outstanding(50))
	}
}

func TestMSHRReuseAfterFree(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(0x0, 0, 10)
	done := m.Allocate(0x40, 20, 10) // register free at 10
	if done != 30 {
		t.Errorf("fill at %d, want 30", done)
	}
	if m.Stalls != 0 {
		t.Errorf("stalls = %d", m.Stalls)
	}
}

func TestHierarchyInstPath(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	// Cold: L1I miss, L2 miss, DRAM.
	done := h.FetchInst(0x1000, 0)
	if done != 1+6+200 {
		t.Errorf("cold fetch done at %d", done)
	}
	// Warm: L1 hit.
	done = h.FetchInst(0x1000, 500)
	if done != 501 {
		t.Errorf("warm fetch done at %d", done)
	}
	if h.Events.L1IAccesses != 2 || h.Events.DRAMAccesses != 1 {
		t.Errorf("events %+v", h.Events)
	}
}

func TestHierarchyDataPath(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	done := h.AccessData(0, 0x2000, false, 0)
	if done != 1+6+200 {
		t.Errorf("cold load done at %d", done)
	}
	done = h.AccessData(0, 0x2000, true, 300)
	if done != 301 {
		t.Errorf("warm store done at %d", done)
	}
	// L2 hit after L1 eviction: touch enough lines to evict 0x2000 from
	// L1D (64KB/4way/64B = 256 sets; conflict stride = 256*64 = 16KB).
	for i := 1; i <= 4; i++ {
		h.AccessData(0, 0x2000+uint64(i)*16384, false, 400)
	}
	done = h.AccessData(0, 0x2000, false, 1000)
	if done != 1000+1+6 {
		t.Errorf("L2 hit done at %d, want %d", done, 1000+1+6)
	}
}

func TestHierarchySpacesDoNotAlias(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.AccessData(0, 0x2000, false, 0)
	done := h.AccessData(1, 0x2000, false, 300)
	if done == 301 {
		t.Error("different address spaces hit the same line")
	}
	// Same space hits.
	if done := h.AccessData(1, 0x2000, false, 900); done != 901 {
		t.Errorf("same space re-access done at %d", done)
	}
}

func TestHierarchySharedSpaceShares(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.AccessData(0, 0x3000, false, 0)
	// MT threads all use space 0: constructive sharing.
	if done := h.AccessData(0, 0x3000, false, 300); done != 301 {
		t.Errorf("shared access done at %d", done)
	}
}

// TestHierarchyMSHRBandwidth checks that a burst of distinct misses is
// serialized by the MSHR file.
func TestHierarchyMSHRBandwidth(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.MSHRs = 2
	h := NewHierarchy(cfg)
	// Four misses to distinct lines at cycle 0: with 2 MSHRs, the third
	// and fourth wait for a free register.
	var dones []uint64
	for i := uint64(0); i < 4; i++ {
		dones = append(dones, h.AccessData(0, 0x10000+i*64, false, 0))
	}
	first := dones[0]
	if dones[1] != first {
		t.Errorf("second miss should overlap: %v", dones)
	}
	if dones[2] <= first || dones[3] <= first {
		t.Errorf("MSHR-limited misses did not serialize: %v", dones)
	}
	if h.MSHRStats().Stalls != 2 {
		t.Errorf("stalls = %d", h.MSHRStats().Stalls)
	}
}

// TestHierarchyL2CapacityEviction drives enough distinct lines through the
// hierarchy to overflow a set in L2 and verifies the re-fetch pays DRAM
// latency again.
func TestHierarchyL2CapacityEviction(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	// Shrink L2 to make the test cheap: 8 sets * 2 ways * 64B.
	cfg.L2 = Config{SizeBytes: 8 * 2 * 64, Ways: 2, LineBytes: 64}
	h := NewHierarchy(cfg)
	set0stride := uint64(8 * 64)
	// Fill set 0 beyond capacity.
	for i := uint64(0); i < 3; i++ {
		h.AccessData(0, i*set0stride, false, 0)
	}
	// Evict from L1D too so the re-access must go to L2.
	for i := uint64(10); i < 16; i++ {
		h.AccessData(0, i*16384, false, 100)
	}
	dram := h.Events.DRAMAccesses
	h.AccessData(0, 0, false, 1000) // line 0 was LRU in L2 set 0: evicted
	if h.Events.DRAMAccesses != dram+1 {
		t.Errorf("expected a DRAM re-fetch after L2 eviction")
	}
}

// TestCacheManySetsProperty cross-checks a multi-set cache against a
// per-set LRU model.
func TestCacheManySetsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: 4 * 2 * 64, Ways: 2, LineBytes: 64}) // 4 sets
		model := make(map[int][]uint64)                                 // set -> LRU order
		for i := 0; i < 400; i++ {
			line := uint64(r.Intn(32))
			addr := line * 64
			set := int(line % 4)
			q := model[set]
			hit := false
			for k, v := range q {
				if v == line {
					hit = true
					q = append(q[:k], q[k+1:]...)
					break
				}
			}
			q = append(q, line)
			if len(q) > 2 {
				q = q[1:]
			}
			model[set] = q
			if got := c.Access(addr, false).Hit; got != hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
