package cache

// HierarchyConfig sizes the full memory system. Defaults follow Table 4 of
// the paper: 64 KB 4-way L1I and L1D with 64 B lines and 1-cycle latency,
// 4 MB 8-way L2 with 6-cycle latency, 200-cycle DRAM.
type HierarchyConfig struct {
	L1I Config
	L1D Config
	L2  Config

	L1Latency   uint64
	L2Latency   uint64
	DRAMLatency uint64

	// MSHRs bounds outstanding L1D misses (scaled with load/store ports
	// in the Fig. 7(b) sensitivity study).
	MSHRs int
}

// DefaultHierarchyConfig returns the Table 4 memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:         Config{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64},
		L1D:         Config{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64},
		L2:          Config{SizeBytes: 4 << 20, Ways: 8, LineBytes: 64},
		L1Latency:   1,
		L2Latency:   6,
		DRAMLatency: 200,
		MSHRs:       8,
	}
}

// Events counts per-structure access events for the energy model.
type Events struct {
	L1IAccesses  uint64
	L1DAccesses  uint64
	L2Accesses   uint64
	DRAMAccesses uint64
}

// Hierarchy is the three-level memory system. Data addresses are qualified
// by an address-space id (0 for shared/MT memory, the context id for
// private ME memory); instruction addresses always use space 0 because all
// contexts run the same binary.
type Hierarchy struct {
	cfg  HierarchyConfig
	l1i  *Cache
	l1d  *Cache
	l2   *Cache
	mshr *MSHR

	Events Events
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		l1i:  New(cfg.L1I),
		l1d:  New(cfg.L1D),
		l2:   New(cfg.L2),
		mshr: NewMSHR(cfg.MSHRs),
	}
}

// spaceTag folds an address-space id into the address above the simulated
// address range so distinct spaces never alias in the tag stores.
func spaceTag(space uint8, addr uint64) uint64 {
	return addr | uint64(space)<<48
}

// FetchInst accesses the instruction path for the line containing pc at
// cycle now and returns the cycle the bytes are available.
func (h *Hierarchy) FetchInst(pc, now uint64) (done uint64) {
	h.Events.L1IAccesses++
	if h.l1i.Access(pc, false).Hit {
		return now + h.cfg.L1Latency
	}
	h.Events.L2Accesses++
	if h.l2.Access(pc, false).Hit {
		return now + h.cfg.L1Latency + h.cfg.L2Latency
	}
	h.Events.DRAMAccesses++
	return now + h.cfg.L1Latency + h.cfg.L2Latency + h.cfg.DRAMLatency
}

// AccessData performs a load (write=false) or store (write=true) in the
// given address space at cycle now and returns the completion cycle.
// Stores are modeled as write-allocate into L1D; dirty evictions charge an
// L2 access.
func (h *Hierarchy) AccessData(space uint8, addr uint64, write bool, now uint64) (done uint64) {
	a := spaceTag(space, addr)
	h.Events.L1DAccesses++
	res := h.l1d.Access(a, write)
	if res.Writeback {
		h.Events.L2Accesses++
		h.l2.Access(a, true) // placeholder line install for the writeback
	}
	if res.Hit {
		return now + h.cfg.L1Latency
	}
	// L1D miss: MSHR-managed fill from L2 or DRAM.
	h.Events.L2Accesses++
	var fill uint64
	if h.l2.Access(a, false).Hit {
		fill = h.cfg.L2Latency
	} else {
		h.Events.DRAMAccesses++
		fill = h.cfg.L2Latency + h.cfg.DRAMLatency
	}
	return h.mshr.Allocate(h.l1d.lineAddr(a), now, h.cfg.L1Latency+fill)
}

// L1I, L1D, L2 expose per-level statistics.
func (h *Hierarchy) L1I() *Stats { return &h.l1i.Stats }
func (h *Hierarchy) L1D() *Stats { return &h.l1d.Stats }
func (h *Hierarchy) L2() *Stats  { return &h.l2.Stats }

// MSHRStats exposes the miss-register file counters.
func (h *Hierarchy) MSHRStats() *MSHR { return h.mshr }
