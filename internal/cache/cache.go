// Package cache implements the memory hierarchy of the simulated core:
// set-associative write-back caches with LRU replacement, miss status
// holding registers (MSHRs), and a three-level hierarchy (L1I, L1D, shared
// L2, DRAM) with the latencies of Table 4 of the MMT paper.
//
// The hierarchy is a timing model only — data values live in the
// functional memory images (internal/prog). Addresses are tagged with an
// address-space id so that multi-execution workloads (separate processes)
// do not alias in the data caches, while instruction fetches of the shared
// binary use one space.
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

func (c Config) sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate checks that the geometry is consistent and power-of-two sized.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line", c.SizeBytes)
	}
	s := c.sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is one set-associative, write-back, write-allocate cache with LRU
// replacement. It is a tag store only.
type Cache struct {
	cfg      Config
	sets     [][]line
	lruClock uint64
	Stats    Stats
}

// New builds a cache; it panics on invalid geometry (configurations are
// program constants).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, sets: make([][]line, cfg.sets())}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// LineBytes returns the block size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// lineAddr reduces an address to its line-aligned form.
func (c *Cache) lineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

func (c *Cache) locate(addr uint64) (setIdx int, tag uint64) {
	la := addr / uint64(c.cfg.LineBytes)
	setIdx = int(la & uint64(len(c.sets)-1))
	tag = la / uint64(len(c.sets))
	return
}

// Result describes the outcome of one access.
type Result struct {
	Hit bool
	// Writeback is set when a dirty victim was evicted; the hierarchy
	// charges an extra access to the next level.
	Writeback bool
}

// Access performs a read (write=false) or write (write=true) of addr,
// allocating on miss and evicting LRU.
func (c *Cache) Access(addr uint64, write bool) Result {
	set, tag := c.locate(addr)
	c.lruClock++
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.lruClock
			if write {
				lines[i].dirty = true
			}
			c.Stats.Hits++
			return Result{Hit: true}
		}
	}
	c.Stats.Misses++
	// Choose victim: invalid first, else LRU.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	res := Result{}
	if lines[victim].valid {
		c.Stats.Evictions++
		if lines[victim].dirty {
			c.Stats.Writebacks++
			res.Writeback = true
		}
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.lruClock}
	return res
}

// Probe reports whether addr is resident without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.locate(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// MSHR models a file of miss status holding registers: a bounded set of
// outstanding misses. Misses to a line already outstanding merge; when all
// registers are busy the new miss is delayed until one frees.
type MSHR struct {
	ready []uint64 // per-register completion cycle
	addr  []uint64 // line address of the outstanding miss
	// Merges counts secondary misses that coalesced onto an existing
	// register; Stalls counts misses delayed by a full file.
	Merges uint64
	Stalls uint64
}

// NewMSHR builds a file with n registers.
func NewMSHR(n int) *MSHR {
	return &MSHR{ready: make([]uint64, n), addr: make([]uint64, n)}
}

// Size returns the number of registers.
func (m *MSHR) Size() int { return len(m.ready) }

// Allocate requests service of a miss to lineAddr issued at cycle now with
// the given service latency, returning the cycle at which the fill
// completes.
func (m *MSHR) Allocate(lineAddr, now, latency uint64) (done uint64) {
	// Merge with an outstanding miss to the same line.
	for i := range m.ready {
		if m.ready[i] > now && m.addr[i] == lineAddr {
			m.Merges++
			return m.ready[i]
		}
	}
	// Find a free register (earliest-ready as fallback).
	best := 0
	for i := range m.ready {
		if m.ready[i] <= now {
			m.ready[i] = now + latency
			m.addr[i] = lineAddr
			return m.ready[i]
		}
		if m.ready[i] < m.ready[best] {
			best = i
		}
	}
	// All busy: wait for the earliest to free, then occupy it.
	m.Stalls++
	start := m.ready[best]
	m.ready[best] = start + latency
	m.addr[best] = lineAddr
	return m.ready[best]
}

// Outstanding reports how many registers are busy at cycle now.
func (m *MSHR) Outstanding(now uint64) int {
	n := 0
	for _, r := range m.ready {
		if r > now {
			n++
		}
	}
	return n
}
