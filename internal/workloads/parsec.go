package workloads

import (
	"mmt/internal/prog"
)

// PARSEC multi-threaded workloads (sim-small-like scaled kernels).

func init() {
	register(App{
		Name:  "swaptions",
		Suite: "PARSEC",
		Mode:  prog.ModeMT,
		About: "HJM Monte-Carlo trials over one shared swaption: the term-structure math is execute-identical, only the trial index is private",
		Source: `
; swaptions kernel: each thread simulates TRIALS paths of the same
; swaption. The forward-curve loads and most of the path arithmetic read
; shared parameters (execute-identical); only the per-thread trial mixing
; is split.
        .equ  TRIALS, 90
        .equ  TERMS, 12
        tid   r4
        li    r20, TRIALS
        li    r27, TERMS
        li    r22, 0             ; trial-mix accumulator
        li    r23, 0
        fcvt  r23, r23           ; mixed path value
trial:  li    r6, 0
        li    r7, curve
        li    r21, 0
        fcvt  r21, r21           ; path value
term:   ld    r8, 0(r7)          ; forward rate (shared)
        ld    r9, vol            ; volatility (shared)
        fmul  r10, r8, r9
        fadd  r11, r8, r10
        fmul  r12, r11, r11
        fadd  r21, r21, r12      ; shared accumulation
; per-thread shock: the trial's random draw depends on the thread's
; trial indices, so this slice of the path math is split
        add   r15, r20, r4
        xor   r16, r15, r6
        addi  r7, r7, 8
        addi  r6, r6, 1
        blt   r6, r27, term
; private trial mixing: tid-dependent, splits
        mul   r13, r20, r4
        add   r22, r22, r13
        fcvt  r14, r13
        fadd  r23, r23, r14
        addi  r20, r20, -1
        bnez  r20, trial
        halt
        .data
vol:    .double 0.04
curve:  .space TERMS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			fillDoubles(mem, sym(p, "curve"), 12, 0x5AA1)
		},
	})

	register(App{
		Name:  "fluidanimate",
		Suite: "PARSEC",
		Mode:  prog.ModeMT,
		About: "SPH neighbor interactions reading a shared particle grid with private density accumulators",
		Source: `
; fluidanimate kernel: FRAMES passes over PARTS particles; density uses
; shared kernel constants and shared neighbor positions; each thread
; writes densities for its own particle range.
        .equ  PARTS, 110
        .equ  FRAMES, 7
        tid   r4
        li    r5, PARTS*8
        mul   r6, r4, r5
        li    r7, dens
        add   r7, r7, r6
        li    r20, FRAMES
        li    r21, 0
        fcvt  r21, r21           ; density accumulator
frame:  li    r8, 0
        li    r9, parts
ploop:  ld    r10, 0(r9)         ; neighbor pos (shared)
        ld    r11, 8(r9)
        ld    r12, hsq           ; kernel constant (shared)
        fsub  r13, r10, r11
        fmul  r14, r13, r13
        flt   r15, r14, r12
        beqz  r15, sparse
        fsub  r16, r12, r14
        fmul  r17, r16, r16
        fmul  r18, r17, r16
        fadd  r21, r21, r18      ; density sum (shared values)
sparse: slli  r19, r8, 3
        add   r19, r7, r19
        st    r21, 0(r19)        ; private density store
        addi  r9, r9, 16
        addi  r8, r8, 1
        slti  r22, r8, PARTS
        bnez  r22, ploop
        addi  r20, r20, -1
        bnez  r20, frame
        halt
        .data
hsq:    .double 0.0004
parts:  .space PARTS*16
dens:   .space 4*PARTS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			fillDoubles(mem, sym(p, "parts"), 2*110, 0xF1D0)
		},
	})

	register(App{
		Name:  "blackscholes",
		Suite: "PARSEC",
		Mode:  prog.ModeMT,
		About: "option pricing over per-thread option chunks: identical formula structure, private data — fetch-identical dominant",
		Source: `
; blackscholes kernel: each thread prices its own OPTS options; every load
; address is thread-private, so the streams are fetch-identical but rarely
; execute-identical (paper: 0-10% gain at 2 threads).
        .equ  OPTS, 130
        .equ  ROUNDS, 5
        tid   r4
        li    r5, OPTS*24
        mul   r6, r4, r5
        li    r7, opts
        add   r7, r7, r6
        li    r20, ROUNDS
        li    r21, 0
        fcvt  r21, r21           ; price accumulator
round:  li    r8, 0
        mv    r9, r7
oloop:  ld    r10, 0(r9)         ; spot (private)
        ld    r11, 8(r9)         ; strike (private)
        ld    r12, 16(r9)        ; vol (private)
        fdiv  r13, r10, r11
        fmul  r14, r12, r12
        fadd  r15, r13, r14
        fsqrt r16, r15
        fmul  r17, r16, r10
        fsub  r18, r17, r11
        fadd  r21, r21, r18
        addi  r9, r9, 24
        addi  r8, r8, 1
        slti  r22, r8, OPTS
        bnez  r22, oloop
        addi  r20, r20, -1
        bnez  r20, round
        halt
        .data
opts:   .space 4*OPTS*24
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			fillDoubles(mem, sym(p, "opts"), 4*130*3, 0xB5C0)
		},
	})

	register(App{
		Name:  "canneal",
		Suite: "PARSEC",
		Mode:  prog.ModeMT,
		About: "random netlist element swaps with per-thread RNG: constant divergence and private pointer loads — the hardest case for MMT",
		Source: `
; canneal kernel: SWAPS random swap evaluations; the RNG is seeded by tid,
; so accept/reject outcomes and the netlist slots touched differ per
; thread nearly every iteration.
        .equ  SWAPS, 1300
        .equ  NETS, 128
        tid   r4
        addi  r5, r4, 9871       ; per-thread RNG state
        li    r6, 6364136223846793005
        li    r7, 1442695040888963407
        li    r24, nets
        li    r25, NETS*8
        mul   r26, r4, r25
        li    r27, moved
        add   r27, r27, r26      ; private accepted-move table
        li    r20, SWAPS
        li    r21, 0             ; accepted-cost accumulator
        li    r22, 0             ; rejected-cost accumulator
swap:   mul   r5, r5, r6
        add   r5, r5, r7
        srli  r8, r5, 31
        andi  r9, r8, NETS-1
        slli  r10, r9, 3
        add   r11, r24, r10
        ld    r12, 0(r11)        ; net cost (random shared slot, read-only)
; wide swap-cost evaluation
        srli  r15, r12, 3
        srli  r16, r12, 17
        xor   r17, r15, r16
        add   r18, r16, r8
        and   r19, r15, r8
        or    r28, r17, r18
        andi  r13, r8, 1
        beqz  r13, reject
        add   r21, r21, r28      ; accept path
        add   r14, r27, r10
        st    r21, 0(r14)        ; record in this thread's table
        j     nextsw
reject: add   r22, r22, r19
        addi  r22, r22, 1
nextsw: addi  r20, r20, -1
        bnez  r20, swap
        halt
        .data
nets:   .space NETS*8
moved:  .space 4*NETS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			fillWords(mem, sym(p, "nets"), 128, 0xCA22)
		},
	})
}
