package workloads

import (
	"mmt/internal/prog"
)

// Message-passing workloads — the paper's third SPMD class (§3.1), listed
// as future work in §7 ("we have not evaluated another application class
// that would benefit greatly from our MMT hardware: message-passing
// applications"). Ranks run in private address spaces and exchange data
// through the shared mailbox window (prog.MboxBase); flag-based channels
// follow a single-writer discipline, so any interleaving is race-free.
//
// These are extension workloads: they are excluded from the sixteen-app
// paper registry (workloads.All) and surfaced through workloads.MP.
//
// pingpong-mp and jacobi-mp use pairwise (XOR-partner) channels and need
// an even rank count; allreduce-mp gathers from four fixed slots and
// needs exactly four ranks.

func init() {
	register(App{
		Name:  "pingpong-mp",
		Suite: "MP",
		Mode:  prog.ModeMP,
		About: "pairwise message exchange through mailbox channels: SPMD send/spin/receive rounds with rank-dependent addresses",
		Source: `
; pingpong-mp: ROUNDS exchanges with the XOR partner. Each rank composes a
; payload, publishes it (payload then flag, single-writer), spins on the
; partner's flag, and consumes the partner's payload.
        .equ  MBOX, 0x400000
        .equ  ROUNDS, 140
        tid   r4
        xori  r5, r4, 1          ; partner rank
        slli  r6, r4, 7
        li    r7, MBOX
        add   r6, r6, r7         ; my channel
        slli  r8, r5, 7
        add   r8, r8, r7         ; partner channel
        li    r20, ROUNDS
        li    r21, 0             ; round number
        li    r22, 0             ; payload sum
        li    r23, 0             ; round sum
        mul   r9, r4, r4         ; rank-specific payload (round-invariant,
        addi  r9, r9, 5          ; so reads are skew-tolerant)
round:  addi  r21, r21, 1
        st    r9, 8(r6)          ; payload
        st    r21, 0(r6)         ; flag = round (release)
; spin until the partner reached at least this round; >= matching keeps
; the handshake wedge-free when one rank races ahead inside the other's
; pipeline stall (skew is bounded at one round by the protocol).
wait:   ld    r12, 0(r8)
        bltu  r12, r21, wait
        ld    r13, 8(r8)         ; partner payload
        add   r22, r22, r13
        add   r23, r23, r21
        addi  r20, r20, -1
        bnez  r20, round
        halt
`,
	})

	register(App{
		Name:  "jacobi-mp",
		Suite: "MP",
		Mode:  prog.ModeMP,
		About: "BSP stencil: per-iteration boundary exchange with the partner rank, then a private grid sweep — mostly fetch/execute-identical compute with brief exchange divergence",
		Source: `
; jacobi-mp: ITERS bulk-synchronous iterations. Publish the local boundary
; cell, spin for the partner's, then sweep the private grid.
        .equ  MBOX, 0x400000
        .equ  ITERS, 30
        .equ  CELLS, 48
        tid   r4
        xori  r5, r4, 1
        slli  r6, r4, 7
        li    r7, MBOX+0x1000
        add   r6, r6, r7         ; my boundary slot
        slli  r8, r5, 7
        add   r8, r8, r7         ; partner boundary slot
        li    r9, grid
        li    r20, ITERS
        li    r21, 0
        li    r22, 0
        fcvt  r22, r22           ; boundary fold accumulator
iter:   addi  r21, r21, 1
        ld    r10, 0(r9)         ; my boundary value
        st    r10, 8(r6)
        st    r21, 0(r6)         ; publish
jwait:  ld    r11, 0(r8)
        bltu  r11, r21, jwait    ; >= matching (see pingpong-mp)
        ld    r12, 8(r8)         ; partner boundary
; private stencil sweep
        li    r13, 0
        mv    r14, r9
cell:   ld    r15, 0(r14)
        ld    r16, 8(r14)
        fadd  r17, r15, r16
        fmul  r18, r17, r15
        st    r18, 0(r14)
        addi  r14, r14, 8
        addi  r13, r13, 1
        slti  r19, r13, CELLS
        bnez  r19, cell
        fadd  r22, r22, r12      ; fold in the received boundary
        addi  r20, r20, -1
        bnez  r20, iter
        halt
        .data
grid:   .space CELLS*8+8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			seed := uint64(0x3AC0)
			if !identical {
				seed += uint64(ctx)
			}
			fillDoubles(mem, sym(p, "grid"), 49, seed)
		},
	})

	register(App{
		Name:  "allreduce-mp",
		Suite: "MP",
		Mode:  prog.ModeMP,
		About: "four-rank all-reduce through fixed mailbox slots: the gather loop's loads are shared-window merged loads (verified, not LVIP-predicted)",
		Source: `
; allreduce-mp: every iteration each rank publishes a partial into its own
; slot, then gathers all four slots. Gather addresses are rank-independent,
; so merged groups perform shared-window merged loads. The flag check
; accepts flags ahead of the local round (skew is at most one iteration),
; which keeps the protocol deadlock-free under any interleaving.
        .equ  MBOX, 0x400000
        .equ  ITERS, 50
        tid   r4
        slli  r6, r4, 4
        li    r7, MBOX+0x2000
        add   r6, r6, r7         ; my slot
        li    r20, ITERS
        li    r21, 0
        li    r23, 0             ; all-reduce checksum
iter:   addi  r21, r21, 1
        mul   r10, r21, r4       ; partial value
        addi  r10, r10, 3
        st    r10, 8(r6)
        st    r21, 0(r6)         ; publish
; gather from the four fixed slots
        li    r11, 0
        li    r22, 0
gather: slli  r12, r11, 4
        add   r12, r12, r7
gwait:  ld    r13, 0(r12)
        bltu  r13, r21, gwait    ; wait until that rank reached this round
        ld    r14, 8(r12)
        add   r22, r22, r14
        addi  r11, r11, 1
        slti  r15, r11, 4
        bnez  r15, gather
        add   r23, r23, r22
        addi  r20, r20, -1
        bnez  r20, iter
        halt
`,
	})
}

// MP returns the message-passing extension workloads.
func MP() []App {
	var out []App
	for _, a := range registry {
		if a.Suite == "MP" {
			out = append(out, a)
		}
	}
	return out
}
