package workloads

import (
	"testing"

	"mmt/internal/core"
)

// TestDebugProfiles prints each application's MMT profile; diagnostic only.
func TestDebugProfiles(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic")
	}
	for _, a := range All() {
		sys, err := a.Build(2, false)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(2)
		cfg.MaxCycles = 20_000_000
		c, err := core.New(cfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		ei, eir, fi, ni := st.IdenticalFractions()
		m, d, cu := st.FetchModeFractions()
		t.Logf("%-14s insts=%7d cyc=%7d ei=%.2f eir=%.2f fi=%.2f ni=%.2f | merge=%.2f detect=%.2f catchup=%.2f | div=%d rem=%d cst=%d cab=%d lvipRb=%d rmHits=%d",
			a.Name, st.TotalCommitted(), st.Cycles, ei, eir, fi, ni, m, d, cu,
			st.Divergences, st.Remerges, st.CatchupsStarted, st.CatchupsAborted,
			st.LVIPRollbacks, st.RegMergeHits)
	}
}
