package workloads

import (
	"testing"

	"mmt/internal/core"
	"mmt/internal/isa"
	"mmt/internal/prog"
)

func TestRegistryComplete(t *testing.T) {
	apps := All()
	if len(apps) != 16 {
		t.Fatalf("registered %d apps, want 16", len(apps))
	}
	for i, name := range Names() {
		if apps[i].Name != name {
			t.Errorf("app %d = %s, want %s (paper order)", i, apps[i].Name, name)
		}
	}
	me, mt := 0, 0
	for _, a := range apps {
		switch a.Mode {
		case prog.ModeME:
			me++
		case prog.ModeMT:
			mt++
		}
		if a.About == "" || a.Suite == "" {
			t.Errorf("%s missing metadata", a.Name)
		}
	}
	if me != 7 || mt != 9 {
		t.Errorf("mode split ME=%d MT=%d, want 7/9", me, mt)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("ammp"); !ok {
		t.Error("ammp not found")
	}
	if _, ok := ByName("doom"); ok {
		t.Error("unknown app found")
	}
}

// TestAllAppsRunFunctionally assembles and functionally executes every
// application with 2 contexts, checking that each halts in a sane
// instruction budget.
func TestAllAppsRunFunctionally(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			sys, err := a.Build(2, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunFunctional(3_000_000); err != nil {
				t.Fatal(err)
			}
			for _, ctx := range sys.Contexts {
				if ctx.DynCount < 5_000 {
					t.Errorf("ctx %d ran only %d instructions — kernel too small to measure", ctx.ID, ctx.DynCount)
				}
				if ctx.DynCount > 1_000_000 {
					t.Errorf("ctx %d ran %d instructions — kernel too big for the harness", ctx.ID, ctx.DynCount)
				}
			}
		})
	}
}

// TestAllAppsOnCore runs every application through the full MMT core at 2
// threads and cross-checks committed counts against the functional oracle.
func TestAllAppsOnCore(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			sys, err := a.Build(2, false)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(2)
			cfg.MaxCycles = 20_000_000
			c, err := core.New(cfg, sys)
			if err != nil {
				t.Fatal(err)
			}
			st, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}

			ref, err := a.Build(2, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.RunFunctional(3_000_000); err != nil {
				t.Fatal(err)
			}
			for i, ctx := range ref.Contexts {
				if st.Committed[i] != ctx.DynCount {
					t.Errorf("thread %d committed %d, oracle %d", i, st.Committed[i], ctx.DynCount)
				}
				for r := 0; r < isa.NumRegs; r++ {
					if got, want := c.CommittedReg(i, uint8(r)), ctx.State.Reg[r]; got != want {
						t.Fatalf("thread %d reg %d: %#x vs oracle %#x", i, r, got, want)
					}
				}
			}
		})
	}
}

// TestAppsOnBaseAndFourThreads exercises the remaining config space at a
// smaller sample: base SMT at 2 threads and full MMT at 4 threads.
func TestAppsOnBaseAndFourThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, mode := range []string{"base2", "mmt4"} {
				var cfg core.Config
				var n int
				if mode == "base2" {
					n = 2
					cfg = core.DefaultConfig(2)
					cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = false, false, false
				} else {
					n = 4
					cfg = core.DefaultConfig(4)
				}
				cfg.MaxCycles = 40_000_000
				sys, err := a.Build(n, false)
				if err != nil {
					t.Fatal(err)
				}
				c, err := core.New(cfg, sys)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.Run(); err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
			}
		})
	}
}

// TestIdenticalInputsLimit verifies that the Limit setup (identical
// inputs) makes multi-execution instances behave identically.
func TestIdenticalInputsLimit(t *testing.T) {
	for _, name := range []string{"twolf", "vortex", "equake"} {
		a, _ := ByName(name)
		sys, err := a.Build(2, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RunFunctional(3_000_000); err != nil {
			t.Fatal(err)
		}
		c0, c1 := sys.Contexts[0], sys.Contexts[1]
		if c0.DynCount != c1.DynCount {
			t.Errorf("%s: identical inputs ran %d vs %d instructions", name, c0.DynCount, c1.DynCount)
		}
	}
}

// TestProfileCharacteristics spot-checks that key applications exhibit the
// redundancy profile the paper reports (Fig. 1 / Fig. 5 shape).
func TestProfileCharacteristics(t *testing.T) {
	run := func(name string) *core.Stats {
		a, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		sys, err := a.Build(2, false)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(2)
		cfg.MaxCycles = 20_000_000
		c, err := core.New(cfg, sys)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	// ammp: execute-identical dominant.
	st := run("ammp")
	ei, eir, _, _ := st.IdenticalFractions()
	if ei+eir < 0.5 {
		t.Errorf("ammp exec-identical = %.2f, want > 0.5", ei+eir)
	}

	// twolf: constant short divergences — low MERGE residency.
	st = run("twolf")
	merge, _, _ := st.FetchModeFractions()
	if merge > 0.6 {
		t.Errorf("twolf MERGE residency = %.2f, want low", merge)
	}
	if st.Divergences < 100 {
		t.Errorf("twolf divergences = %d, want frequent", st.Divergences)
	}

	// blackscholes: fetch-identical but not execute-identical.
	st = run("blackscholes")
	ei, eir, fi, _ := st.IdenticalFractions()
	if fi < 0.3 {
		t.Errorf("blackscholes fetch-identical-only = %.2f, want dominant", fi)
	}
	if ei+eir > fi {
		t.Errorf("blackscholes exec-identical %.2f exceeds fetch-identical %.2f", ei+eir, fi)
	}

	// water-ns: shared-memory loads make it execute-identical-heavy.
	st = run("water-ns")
	ei, eir, _, _ = st.IdenticalFractions()
	if ei+eir < 0.4 {
		t.Errorf("water-ns exec-identical = %.2f, want > 0.4", ei+eir)
	}

	// equake: long divergences must appear in the remerge histogram.
	st = run("equake")
	if st.Remerges == 0 {
		t.Error("equake never remerged")
	}
	var beyond16 uint64
	for i, c := range st.RemergeDistance {
		if i >= 1 {
			beyond16 += c
		}
	}
	if beyond16 == 0 {
		t.Error("equake has no divergences longer than 16 taken branches")
	}
}

func TestOverrideRebindsConstants(t *testing.T) {
	a, _ := ByName("twolf")
	small := a.Override(map[string]int64{"MOVES": 40})
	sys, err := small.Build(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFunctional(1_000_000); err != nil {
		t.Fatal(err)
	}
	big, err := a.Build(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.RunFunctional(3_000_000); err != nil {
		t.Fatal(err)
	}
	if sys.Contexts[0].DynCount >= big.Contexts[0].DynCount {
		t.Errorf("override did not shrink the run: %d vs %d",
			sys.Contexts[0].DynCount, big.Contexts[0].DynCount)
	}
}

func TestOverrideUnknownConstantFailsAtBuild(t *testing.T) {
	a, _ := ByName("twolf")
	bad := a.Override(map[string]int64{"NOPE": 1})
	if _, err := bad.Build(2, false); err == nil {
		t.Error("unknown constant override built successfully")
	}
}

func TestOverrideDoesNotMutateRegistry(t *testing.T) {
	a, _ := ByName("twolf")
	src := a.Source
	_ = a.Override(map[string]int64{"MOVES": 1})
	b, _ := ByName("twolf")
	if b.Source != src {
		t.Error("Override mutated the registered app")
	}
}
