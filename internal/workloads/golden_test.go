package workloads

import "testing"

// goldenDynCounts pins each application's per-context dynamic instruction
// counts (2 contexts, standard inputs). The workloads are calibrated
// against the paper's per-application redundancy profiles (DESIGN.md §2);
// an unintended change to a kernel or its inputs shifts these counts and
// fails here. Update the table deliberately when retuning a kernel.
// Counts retuned when the kernels gained explicit accumulator
// initialization in their prologues (mmtcheck's read-before-write lint):
// each kernel's counts grew by exactly its added prologue instructions.
var goldenDynCounts = map[string][2]uint64{
	"libsvm":       {8127, 8128},
	"ammp":         {41785, 41767},
	"twolf":        {33133, 33135},
	"vortex":       {84833, 85713},
	"vpr":          {27322, 27300},
	"equake":       {24135, 25095},
	"mcf":          {22546, 22518},
	"ocean":        {51139, 51137},
	"lu":           {19867, 19867},
	"fft":          {14465, 14466},
	"water-ns":     {156292, 156292},
	"water-sp":     {23624, 23344},
	"swaptions":    {12787, 12787},
	"fluidanimate": {10901, 10901},
	"blackscholes": {9129, 9129},
	"canneal":      {25969, 25985},
}

func TestGoldenDynamicCounts(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			want, ok := goldenDynCounts[a.Name]
			if !ok {
				t.Fatalf("no golden entry for %s — add one", a.Name)
			}
			sys, err := a.Build(2, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunFunctional(3_000_000); err != nil {
				t.Fatal(err)
			}
			got := [2]uint64{sys.Contexts[0].DynCount, sys.Contexts[1].DynCount}
			if got != want {
				t.Errorf("dynamic counts %v, golden %v — kernel or inputs changed", got, want)
			}
		})
	}
}
