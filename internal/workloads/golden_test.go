package workloads

import "testing"

// goldenDynCounts pins each application's per-context dynamic instruction
// counts (2 contexts, standard inputs). The workloads are calibrated
// against the paper's per-application redundancy profiles (DESIGN.md §2);
// an unintended change to a kernel or its inputs shifts these counts and
// fails here. Update the table deliberately when retuning a kernel.
var goldenDynCounts = map[string][2]uint64{
	"libsvm":       {8126, 8127},
	"ammp":         {41783, 41765},
	"twolf":        {33130, 33132},
	"vortex":       {84830, 85710},
	"vpr":          {27319, 27297},
	"equake":       {24133, 25093},
	"mcf":          {22543, 22515},
	"ocean":        {51137, 51135},
	"lu":           {19867, 19867},
	"fft":          {14465, 14466},
	"water-ns":     {156289, 156289},
	"water-sp":     {23622, 23342},
	"swaptions":    {12784, 12784},
	"fluidanimate": {10899, 10899},
	"blackscholes": {9127, 9127},
	"canneal":      {25967, 25983},
}

func TestGoldenDynamicCounts(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			want, ok := goldenDynCounts[a.Name]
			if !ok {
				t.Fatalf("no golden entry for %s — add one", a.Name)
			}
			sys, err := a.Build(2, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunFunctional(3_000_000); err != nil {
				t.Fatal(err)
			}
			got := [2]uint64{sys.Contexts[0].DynCount, sys.Contexts[1].DynCount}
			if got != want {
				t.Errorf("dynamic counts %v, golden %v — kernel or inputs changed", got, want)
			}
		})
	}
}
