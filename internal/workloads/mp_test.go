package workloads

import (
	"testing"

	"mmt/internal/core"
	"mmt/internal/prog"
)

func TestMPRegistrySeparation(t *testing.T) {
	mp := MP()
	if len(mp) != 3 {
		t.Fatalf("MP suite has %d apps, want 3", len(mp))
	}
	for _, a := range mp {
		if a.Mode != prog.ModeMP {
			t.Errorf("%s mode = %v", a.Name, a.Mode)
		}
	}
	// The paper registry stays at sixteen.
	if len(All()) != 16 {
		t.Errorf("All() = %d apps", len(All()))
	}
}

// TestMPFunctionalProtocols runs each MP kernel functionally and checks
// the channel protocols complete (round-robin functional interleaving).
func TestMPFunctionalProtocols(t *testing.T) {
	for _, a := range MP() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			n := 4
			if a.Name != "allreduce-mp" {
				n = 2
			}
			sys, err := a.Build(n, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunFunctional(3_000_000); err != nil {
				t.Fatal(err)
			}
			for _, ctx := range sys.Contexts {
				if !ctx.Halted() {
					t.Errorf("rank %d did not halt", ctx.ID)
				}
			}
		})
	}
}

// TestMPOnCore runs the MP kernels through the full MMT pipeline; the spin
// loops make instruction counts timing-dependent, so the checks are
// liveness, mode sanity, and channel-sum invariants via committed state.
func TestMPOnCore(t *testing.T) {
	for _, a := range MP() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			n := 4
			if a.Name != "allreduce-mp" {
				n = 2
			}
			for _, preset := range []struct {
				name               string
				fetch, exec, merge bool
			}{
				{"base", false, false, false},
				{"mmt", true, true, true},
			} {
				sys, err := a.Build(n, false)
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.DefaultConfig(n)
				cfg.SharedFetch, cfg.SharedExec, cfg.RegMerge = preset.fetch, preset.exec, preset.merge
				cfg.MaxCycles = 30_000_000
				c, err := core.New(cfg, sys)
				if err != nil {
					t.Fatal(err)
				}
				st, err := c.Run()
				if err != nil {
					t.Fatalf("%s: %v", preset.name, err)
				}
				if st.TotalCommitted() == 0 {
					t.Fatalf("%s: nothing committed", preset.name)
				}
				// Every rank completed all rounds: r20 counted to zero.
				for rank := 0; rank < n; rank++ {
					if got := c.CommittedReg(rank, 20); got != 0 {
						t.Errorf("%s: rank %d round counter = %d", preset.name, rank, got)
					}
				}
			}
		})
	}
}

// TestMPSharesMailboxLoads checks that allreduce's gather produces merged
// shared-window loads under MMT (the extension's headline behaviour).
func TestMPSharesMailboxLoads(t *testing.T) {
	a, _ := ByName("allreduce-mp")
	sys, err := a.Build(4, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(4)
	cfg.MaxCycles = 30_000_000
	c, err := core.New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecIdentical == 0 {
		t.Error("no merged execution in allreduce-mp")
	}
}

// TestMPPingpongSum verifies the exchanged payload arithmetic end to end:
// each rank receives the partner's (round-invariant) payload every round.
func TestMPPingpongSum(t *testing.T) {
	a, _ := ByName("pingpong-mp")
	sys, err := a.Build(2, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(2)
	cfg.MaxCycles = 30_000_000
	c, err := core.New(cfg, sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	const rounds = 140
	for rank := 0; rank < 2; rank++ {
		partner := uint64(rank ^ 1)
		want := rounds * (partner*partner + 5)
		if got := c.CommittedReg(rank, 22); got != want {
			t.Errorf("rank %d payload sum = %d, want %d", rank, got, want)
		}
		// r23 accumulates the round numbers 1..ROUNDS exactly once each.
		if got := c.CommittedReg(rank, 23); got != rounds*(rounds+1)/2 {
			t.Errorf("rank %d round sum = %d", rank, got)
		}
	}
}

func TestMPRejectsTooManyRanks(t *testing.T) {
	a, _ := ByName("pingpong-mp")
	if _, err := a.Build(5, false); err == nil {
		t.Error("5 ranks accepted")
	}
}
