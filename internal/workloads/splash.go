package workloads

import (
	"mmt/internal/prog"
)

// SPLASH-2 multi-threaded workloads (shared memory, prog.ModeMT). Threads
// start with identical registers except the stack pointer and obtain their
// identity with tid; per-thread partition addresses therefore carry split
// register mappings, while shared-data loads (same address, same space)
// stay execute-identical. Control flow driven by shared loop counters
// keeps the threads fetch-identical; data-dependent branches on private
// values introduce the divergences the paper observes.

func init() {
	register(App{
		Name:  "lu",
		Suite: "SPLASH-2",
		Mode:  prog.ModeMT,
		About: "blocked LU elimination over per-thread row blocks: shared loop control, private data — mostly fetch-identical, little execute-identical",
		Source: `
; lu kernel: each thread eliminates its own block of ROWSPT rows against a
; shared pivot row. The pivot loads are shared (execute-identical); the
; row updates touch per-thread addresses (split).
        .equ  ROWSPT, 20
        .equ  COLS, 24
        .equ  SWEEPS, 4
        tid   r4
        li    r5, ROWSPT*COLS*8
        mul   r6, r4, r5
        li    r7, matrix
        add   r7, r7, r6         ; this thread's block
        li    r20, SWEEPS
sweep:  li    r8, 0              ; row in block
rloop:  li    r9, 0              ; col
        mv    r10, r7
        li    r11, pivot
cloop:  ld    r12, 0(r11)        ; pivot[j]   (shared: exec-identical)
        ld    r13, 0(r10)        ; a[i][j]    (private: split)
        fmul  r14, r12, r13
        fsub  r15, r13, r14
        st    r15, 0(r10)
        addi  r10, r10, 8
        addi  r11, r11, 8
        addi  r9, r9, 1
        slti  r16, r9, COLS
        bnez  r16, cloop
        li    r17, COLS*8
        add   r7, r7, r17
        addi  r8, r8, 1
        slti  r16, r8, ROWSPT
        bnez  r16, rloop
        li    r18, ROWSPT*COLS*8
        sub   r7, r7, r5         ; rewind to block start
        addi  r20, r20, -1
        bnez  r20, sweep
        halt
        .data
pivot:  .space COLS*8
matrix: .space 4*ROWSPT*COLS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return // shared image: seed once
			}
			fillDoubles(mem, sym(p, "pivot"), 24, 0x1001)
			fillDoubles(mem, sym(p, "matrix"), 4*20*24, 0x1002)
		},
	})

	register(App{
		Name:  "fft",
		Suite: "SPLASH-2",
		Mode:  prog.ModeMT,
		About: "butterfly stages over per-thread signal partitions with shared twiddle factors",
		Source: `
; fft kernel: STAGES butterfly passes; twiddle factors are shared loads,
; signal data is per-thread.
        .equ  PTS, 128
        .equ  STAGES, 16
        tid   r4
        li    r5, PTS*8
        mul   r6, r4, r5
        li    r7, signal
        add   r7, r7, r6
        li    r20, STAGES
; one-time scaling setup: threads take parity-dependent paths (the real
; code assigns bit-reversal bookkeeping by thread id) but compute the same
; constants - register merging re-unifies them, and every butterfly of
; every stage then reads them merged (Fig. 5b: Exe-Identical+RegMerge).
        andi  r21, r4, 1
        beqz  r21, sceven
        li    r18, 9             ; odd-thread path
        li    r19, 3
        j     scdone
sceven: li    r18, 9             ; even-thread path: same values
        li    r19, 3
scdone:
; bit-reversal table setup: a long straight-line stretch with unique PCs,
; where the parity-divergent threads remerge aligned.
        li    r21, 5
        slli  r22, r21, 2
        xor   r23, r22, r21
        add   r25, r22, r23
        srli  r26, r25, 1
        and   r28, r26, r22
        or    r23, r28, r21
        add   r25, r25, r23
        slli  r26, r23, 1
        sub   r28, r26, r21
        xor   r23, r28, r25
        add   r25, r25, r26
        srli  r26, r25, 3
        and   r28, r26, r23
        or    r23, r28, r25
        add   r25, r25, r28
        slli  r26, r23, 2
        sub   r28, r26, r25
        xor   r23, r28, r26
        add   r25, r25, r23
        srli  r26, r25, 1
        and   r28, r26, r23
        or    r23, r28, r26
        add   r25, r25, r28
        slli  r26, r23, 1
        sub   r28, r26, r23
        xor   r23, r28, r25
        add   r25, r25, r26
        srli  r26, r25, 2
        and   r28, r26, r23
        or    r23, r28, r25
        add   r25, r25, r28
        xor   r23, r25, r28
        add   r25, r25, r23
        srli  r26, r25, 2
        and   r28, r26, r23
        or    r23, r28, r25
        add   r25, r25, r28
stage:  li    r8, 0
        mv    r9, r7
        li    r10, twiddle
bfly:   ld    r11, 0(r10)        ; twiddle (shared)
        ld    r12, 0(r9)         ; a (private)
        ld    r13, 8(r9)         ; b (private)
        fmul  r14, r13, r11
        fadd  r15, r12, r14
        fsub  r16, r12, r14
        st    r15, 0(r9)
        st    r16, 8(r9)
        add   r24, r18, r19      ; stage-scale reads (regmerge-recovered)
        addi  r9, r9, 16
        addi  r10, r10, 8
        addi  r8, r8, 2
        slti  r17, r8, PTS
        bnez  r17, bfly
        addi  r20, r20, -1
        bnez  r20, stage
        halt
        .data
twiddle: .space PTS*4
signal:  .space 4*PTS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			fillDoubles(mem, sym(p, "twiddle"), 64, 0xFF01)
			fillDoubles(mem, sym(p, "signal"), 4*128, 0xFF02)
		},
	})

	register(App{
		Name:  "ocean",
		Suite: "SPLASH-2",
		Mode:  prog.ModeMT,
		About: "red-black stencil relaxation on per-thread grid slabs with a private convergence check: occasional short divergences",
		Source: `
; ocean kernel: ITERS relaxation sweeps over a private slab; every sweep
; ends with a convergence branch on the thread's own residual, which
; diverges occasionally.
        .equ  SLAB, 180
        .equ  ITERS, 22
        tid   r4
        li    r5, SLAB*8
        mul   r6, r4, r5
        li    r7, grid
        add   r7, r7, r6
        li    r20, ITERS
        li    r22, 0             ; converged-sweep count
        li    r23, 0             ; cell-count bookkeeping
iter:   li    r8, 1
        mv    r9, r7
        li    r21, 0
        fcvt  r21, r21           ; residual = 0.0
cell:   ld    r10, 0(r9)
        ld    r11, 8(r9)
        ld    r12, 16(r9)
        fadd  r13, r10, r12
        fmul  r14, r13, r11
        fsub  r15, r14, r11
        fabs  r16, r15
        fadd  r21, r21, r16
        st    r14, 8(r9)
        addi  r9, r9, 8
        addi  r8, r8, 1
        slti  r17, r8, SLAB-1
        bnez  r17, cell
; private convergence check: diverges when slabs differ in roughness
        li    r18, thresh
        ld    r18, 0(r18)
        flt   r19, r21, r18
        beqz  r19, noted
        addi  r22, r22, 1        ; converged-sweep bookkeeping
        add   r23, r23, r8
noted:  addi  r20, r20, -1
        bnez  r20, iter
        halt
        .data
thresh: .double 44.5
grid:   .space 4*SLAB*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			fillDoubles(mem, sym(p, "grid"), 4*180, 0x0CEA)
		},
	})

	register(App{
		Name:  "water-ns",
		Suite: "SPLASH-2",
		Mode:  prog.ModeMT,
		About: "O(n^2) molecular interactions over shared positions: heavy execute-identical load/compute with private force accumulation",
		Source: `
; water-nsquared kernel: every thread walks all molecule pairs reading the
; shared position array (execute-identical loads and force math), then
; stores into its own force slab (split stores only).
        .equ  MOLS, 40
        .equ  TSTEPS, 6
        tid   r4
        li    r5, MOLS*8
        mul   r6, r4, r5
        li    r7, forces
        add   r7, r7, r6         ; private force slab
        li    r20, TSTEPS
        li    r21, 0             ; force accumulator
        li    r26, 0             ; virial checksum
        li    r28, 0             ; virial sum
tstep:
; boundary-molecule bookkeeping is assigned by thread parity: a short
; deterministic divergence whose results are value-identical, recovered
; by register merging for the whole timestep.
        andi  r24, r4, 1
        beqz  r24, weven
        li    r25, 5             ; odd-thread path
        j     wsc
weven:  nop
        li    r25, 5             ; even-thread path: same value
wsc:    li    r8, 0              ; i
iloop:  li    r9, 0              ; j
        li    r10, mol
        slli  r11, r8, 3
        add   r11, r10, r11
        ld    r12, 0(r11)        ; pos[i] (shared)
jloop:  slli  r13, r9, 3
        add   r13, r10, r13
        ld    r14, 0(r13)        ; pos[j] (shared)
        fsub  r15, r12, r14
        fmul  r16, r15, r15
        ld    r17, cut
        flt   r18, r16, r17
        beqz  r18, far
        fmul  r19, r16, r15
        fadd  r21, r21, r19      ; shared-value accumulation
        add   r27, r25, r25      ; timestep-scale reads (regmerge-recovered)
; per-thread virial bookkeeping (split work)
        xor   r26, r26, r4
        add   r28, r28, r26
far:    addi  r9, r9, 1
        slti  r22, r9, MOLS
        bnez  r22, jloop
; private force store for molecule i
        slli  r23, r8, 3
        add   r23, r7, r23
        st    r21, 0(r23)
        addi  r8, r8, 1
        slti  r22, r8, MOLS
        bnez  r22, iloop
        addi  r20, r20, -1
        bnez  r20, tstep
        halt
        .data
cut:    .double 0.95
mol:    .space MOLS*8
forces: .space 4*MOLS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			fillDoubles(mem, sym(p, "mol"), 40, 0x3A7E)
		},
	})

	register(App{
		Name:  "water-sp",
		Suite: "SPLASH-2",
		Mode:  prog.ModeMT,
		About: "cell-list molecular dynamics where per-thread cell occupancy differs: medium-length divergences that stress CATCHUP (regresses at large FHBs)",
		Source: `
; water-spatial kernel: threads process cells; each cell's molecule count
; comes from the thread's own cell table, so the inner-loop trip count
; differs per thread - repeated medium-length divergences.
        .equ  CELLS, 60
        .equ  TSTEPS, 5
        tid   r4
        li    r5, CELLS*8
        mul   r6, r4, r5
        li    r7, counts
        add   r7, r7, r6         ; private cell-occupancy table
        li    r26, TSTEPS
        li    r22, 0             ; bookkeeping accumulator
        li    r23, 0             ; cell-index checksum
tstep:  li    r8, 0              ; cell index
        li    r28, acc
        add   r28, r28, r6       ; private per-cell results
cellL:  slli  r9, r8, 3
        add   r10, r7, r9
        ld    r11, 0(r10)        ; occupancy (mostly equal across threads)
        andi  r11, r11, 15
        addi  r11, r11, 2
        li    r21, 0
        fcvt  r21, r21           ; per-cell accumulator (merged reinit)
molL:   ld    r12, shared        ; shared constants
        ld    r13, shared+8
        fmul  r14, r12, r13
        fadd  r15, r14, r12
        fadd  r21, r21, r15
        addi  r11, r11, -1
        bnez  r11, molL
; store this cell's result privately, identical bookkeeping
        add   r24, r28, r9
        st    r21, 0(r24)
        addi  r22, r22, 3
        xor   r23, r23, r8
        addi  r8, r8, 1
        slti  r16, r8, CELLS
        bnez  r16, cellL
        addi  r26, r26, -1
        bnez  r26, tstep
        halt
        .data
shared: .double 1.5, 2.25
counts: .space 4*CELLS*8
acc:    .space 4*CELLS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			if ctx != 0 {
				return
			}
			base := sym(p, "counts")
			// Most cells have the same occupancy in every thread's
			// table; every eighth cell differs per thread, giving the
			// repeated medium divergences the paper attributes to
			// water-spatial.
			// Occupancies are equal across threads except a run of
			// cells near the end of each sweep; a late divergence
			// leaves most of the sweep merged (the sweep boundary
			// re-unifies the loop registers).
			x := uint64(0x5A7E)
			for cell := 0; cell < 60; cell++ {
				x = lcg(x)
				for th := uint64(0); th < 4; th++ {
					v := x
					if cell >= 52 {
						v = lcg(x + th*977)
					}
					mem.Write64(base+(th*60+uint64(cell))*8, v)
				}
			}
		},
	})
}
