// Package workloads provides the sixteen benchmark kernels of the paper's
// evaluation (Table 1): seven multi-execution programs (SPEC2000 + libsvm)
// and nine multi-threaded programs (SPLASH-2 + PARSEC), written in the
// simulator's assembly language.
//
// The original binaries cannot be run on this ISA, so each application is
// a synthetic kernel that reproduces the *inter-thread redundancy profile*
// the paper reports for that application — the mix of shared vs.
// thread-varying data, the frequency and length of control divergence, and
// the load-value similarity across processes — because those are the only
// properties the MMT mechanisms observe. DESIGN.md §2 records this
// substitution.
package workloads

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mmt/internal/asm"
	"mmt/internal/prog"
)

// InitFunc seeds one context's input data given the assembled program (for
// symbol lookup). identical forces every context to receive context 0's
// inputs (the paper's Limit configuration runs "two instances with
// identical inputs").
type InitFunc func(p *prog.Program, ctx int, mem *prog.Memory, identical bool)

// App is one benchmark.
type App struct {
	Name  string
	Suite string
	Mode  prog.Mode
	// Source is the assembly text.
	Source string
	// Init seeds per-context inputs; nil when the program is self-
	// contained.
	Init InitFunc
	// About summarizes what the kernel models and which redundancy
	// profile it reproduces.
	About string
}

var registry []App

func register(a App) {
	registry = append(registry, a)
}

// All returns the paper's sixteen applications in Figure 1 order:
// multi-execution first, then SPLASH-2, then PARSEC. Extension suites
// (message passing, see MP) are not included.
func All() []App {
	var out []App
	for _, a := range registry {
		if a.Suite != "MP" {
			out = append(out, a)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return appOrder(out[i].Name) < appOrder(out[j].Name)
	})
	return out
}

// paperOrder lists the sixteen applications in presentation order.
var paperOrder = []string{
	"libsvm", "ammp", "twolf", "vortex", "vpr", "equake", "mcf",
	"ocean", "lu", "fft", "water-ns", "water-sp",
	"swaptions", "fluidanimate", "blackscholes", "canneal",
}

func appOrder(name string) int {
	for i, n := range paperOrder {
		if n == name {
			return i
		}
	}
	return len(paperOrder)
}

// Names returns the application names in paper order.
func Names() []string {
	out := make([]string, len(paperOrder))
	copy(out, paperOrder)
	return out
}

// ByName finds an application.
func ByName(name string) (App, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Build assembles the application and creates an n-context system.
// identicalInputs selects the paper's Limit setup (Table 5): n *identical
// instances* — same inputs, same context ids, private address spaces —
// regardless of the application's normal mode.
func (a App) Build(n int, identicalInputs bool) (*prog.System, error) {
	p, err := asm.Assemble(a.Name, a.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", a.Name, err)
	}
	if a.Mode == prog.ModeMP {
		// Message-passing ranks keep their identities even in the
		// identical-inputs setup (the channel protocol requires them);
		// "identical" then means identical private images.
		var init prog.InitFunc
		if a.Init != nil {
			init = func(ctx int, mem *prog.Memory) {
				if identicalInputs {
					ctx = 0
				}
				a.Init(p, ctx, mem, identicalInputs)
			}
		}
		sys, err := prog.NewMPSystem(p, n, init)
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", a.Name, err)
		}
		return sys, nil
	}
	if identicalInputs {
		// Every context gets context 0's inputs.
		var init prog.InitFunc
		if a.Init != nil {
			init = func(_ int, mem *prog.Memory) {
				a.Init(p, 0, mem, true)
			}
		}
		sys, err := prog.NewIdenticalSystem(p, a.Mode, n, init)
		if err != nil {
			return nil, fmt.Errorf("workloads: %s: %w", a.Name, err)
		}
		return sys, nil
	}
	var init prog.InitFunc
	if a.Init != nil {
		init = func(ctx int, mem *prog.Memory) {
			a.Init(p, ctx, mem, false)
		}
	}
	sys, err := prog.NewSystem(p, a.Mode, n, init)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", a.Name, err)
	}
	return sys, nil
}

// sym resolves a label, panicking on absence (programs are compiled-in
// constants; a missing label is a programming error).
func sym(p *prog.Program, name string) uint64 {
	v, ok := p.Symbol(name)
	if !ok {
		panic(fmt.Sprintf("workloads: %s: missing symbol %q", p.Name, name))
	}
	return v
}

// lcg steps a deterministic 64-bit linear congruential generator; used to
// fill input arrays reproducibly.
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// fillWords writes n pseudo-random 64-bit words at base, seeded by seed.
func fillWords(mem *prog.Memory, base uint64, n int, seed uint64) {
	x := seed
	for i := 0; i < n; i++ {
		x = lcg(x)
		mem.Write64(base+uint64(i)*8, x)
	}
}

// fillDoubles writes n pseudo-random doubles in (0,1) at base.
func fillDoubles(mem *prog.Memory, base uint64, n int, seed uint64) {
	x := seed
	for i := 0; i < n; i++ {
		x = lcg(x)
		f := float64(x>>11) / float64(1<<53)
		mem.Write64(base+uint64(i)*8, math.Float64bits(f))
	}
}

// Override returns a copy of the application with the named `.equ`
// constants rebound to new values — the knob for scaling a kernel's
// iteration counts or data sizes without editing its source. Unknown
// names are reported as an error at Build time via the marker below.
func (a App) Override(consts map[string]int64) App {
	src := a.Source
	var missing []string
	for name, val := range consts { // mmtvet:ok — distinct lines edited; missing list sorted below
		idx := findEqu(src, name)
		if idx < 0 {
			missing = append(missing, name)
			continue
		}
		end := idx
		for end < len(src) && src[end] != '\n' {
			end++
		}
		src = src[:idx] + fmt.Sprintf("        .equ  %s, %d", name, val) + src[end:]
	}
	out := a
	out.Source = src
	if len(missing) > 0 {
		sort.Strings(missing)
		// Poison the source so Build reports the problem clearly.
		out.Source = fmt.Sprintf("        .overridemissing %s\n", strings.Join(missing, ",")) + src
	}
	return out
}

// findEqu locates the start of the line defining `.equ name,` in src.
func findEqu(src, name string) int {
	needle := ".equ  " + name + ","
	off := 0
	for {
		i := strings.Index(src[off:], needle)
		if i < 0 {
			return -1
		}
		i += off
		// Back up to the start of the line.
		j := i
		for j > 0 && src[j-1] != '\n' {
			j--
		}
		// The line must contain only whitespace before the directive.
		if strings.TrimSpace(src[j:i]) == "" {
			return j
		}
		off = i + len(needle)
	}
}
