package workloads

import (
	"math"

	"mmt/internal/prog"
)

// The multi-execution workloads (paper Table 1: SPEC2000 + libsvm). Each
// instance runs the same binary with slightly different inputs in its own
// address space (prog.ModeME). The per-application redundancy profiles
// follow the paper's Figs. 1, 2 and 5:
//
//	ammp, equake, mcf — large execute-identical fractions;
//	equake also has long divergences and big register-merging gains.
//	twolf, vpr — input-seeded annealing randomness: constant short
//	divergences that defeat fetch tracking (low MERGE residency).
//	vortex — data-dependent traversal lengths: long divergences.
//	libsvm — shared model, per-instance query: mid exec-identical with a
//	large untracked remainder.

func init() {
	register(App{
		Name:  "ammp",
		Suite: "SPEC2000",
		Mode:  prog.ModeME,
		About: "molecular dynamics force loop; instances differ only in a small perturbed atom region, so most instructions are execute-identical",
		Source: `
; ammp kernel: STEPS sweeps over N shared atoms plus a small per-instance
; perturbed set processed by its own loop (as the real application handles
; the modified molecules in a separate phase). The shared sweep is fully
; execute-identical; the perturbed loop diverges occasionally and its
; loads learn to split via the LVIP without poisoning the hot loop's PCs.
        .equ  N, 216
        .equ  NPERT, 8
        .equ  STEPS, 18
        li    r26, N
        li    r20, STEPS
        li    r24, cutoff
        ld    r24, 0(r24)        ; cutoff distance^2
        li    r21, 0             ; potential accumulator
        li    r23, 0             ; force accumulator
step:   li    r5, 0              ; atom index
        li    r6, pos
inner:  ld    r7, 0(r6)          ; x (identical data)
        ld    r8, 8(r6)          ; y
        fmul  r9, r7, r7
        fmul  r10, r8, r8
        fadd  r11, r9, r10       ; dist^2
        flt   r13, r11, r24
        beqz  r13, skip
        fadd  r21, r21, r11      ; potential accumulation
        fmul  r22, r11, r7
        fadd  r23, r23, r22      ; force accumulation
skip:   addi  r6, r6, 16
        addi  r5, r5, 1
        blt   r5, r26, inner
; perturbed-molecule phase: per-instance data, separate load PCs
        li    r5, 0
        li    r6, pert
ploop:  ld    r7, 0(r6)          ; x (per-instance)
        ld    r8, 8(r6)
        fmul  r9, r7, r7
        fmul  r10, r8, r8
        fadd  r11, r9, r10
        flt   r13, r11, r24
        beqz  r13, pskip
        fadd  r21, r21, r11
pskip:  addi  r6, r6, 16
        addi  r5, r5, 1
        slti  r14, r5, NPERT
        bnez  r14, ploop
; sweep epilogue: energy reduction and neighbor-list bookkeeping. This is
; straight-line code with unique PCs, so a thread catching up after the
; perturbed-phase divergence remerges here *aligned* - exactly how real
; sweep epilogues behave.
        fadd  r15, r21, r23
        fmul  r16, r15, r15
        fadd  r17, r16, r21
        fsub  r18, r17, r23
        li    r14, 7
        slli  r19, r14, 3
        xor   r12, r19, r14
        add   r25, r19, r12
        srli  r27, r25, 2
        and   r28, r27, r19
        or    r12, r28, r14
        add   r25, r25, r12
        slli  r27, r12, 1
        sub   r28, r27, r14
        xor   r12, r28, r25
        add   r25, r25, r27
        srli  r27, r25, 3
        and   r28, r27, r12
        or    r12, r28, r25
        add   r25, r25, r28
        slli  r27, r12, 2
        sub   r28, r27, r25
        xor   r12, r28, r27
        add   r25, r25, r12
        srli  r27, r25, 1
        and   r28, r27, r12
        or    r12, r28, r27
        add   r25, r25, r28
        slli  r27, r12, 1
        sub   r28, r27, r12
        xor   r12, r28, r25
        add   r25, r25, r27
        srli  r27, r25, 2
        and   r28, r27, r12
        or    r12, r28, r25
        add   r25, r25, r28
        addi  r20, r20, -1
        bnez  r20, step
        halt
        .data
cutoff: .double 0.05
pos:    .space N*16
pert:   .space NPERT*16
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			// Shared bulk: identical in every instance.
			fillDoubles(mem, sym(p, "pos"), 2*216, 0xA111)
			// Perturbed molecules: deterministic per-instance
			// coordinates. Atoms 0..7 sit far outside the cutoff in
			// every instance except atom 3, which is inside the cutoff
			// for even instances only — exactly one divergence point
			// per sweep.
			pert := sym(p, "pert")
			for k := 0; k < 8; k++ {
				v := 0.5 + 0.04*float64(k) + 0.01*float64(ctx)
				if k == 3 && !identical && ctx%2 == 0 {
					v = 0.05
				}
				mem.Write64(pert+uint64(k)*16, math.Float64bits(v))
				mem.Write64(pert+uint64(k)*16+8, math.Float64bits(v))
			}
		},
	})

	register(App{
		Name:  "equake",
		Suite: "SPEC2000",
		Mode:  prog.ModeME,
		About: "sparse matrix-vector sweep plus a per-instance relaxation loop: long divergences whose results register-merge back together",
		Source: `
; equake kernel: BLOCKS blocks of RPB sparse rows with identical
; structure. The first row of each block runs a per-instance relaxation
; count (rare, long divergences - paper Fig. 2 shows equake's divergences
; exceed 16 taken branches) and then recomputes the scale registers on the
; still-divergent paths; register merging proves them identical and the
; rest of the block reads them merged (Fig. 5b: Exe-Identical+RegMerge).
; The per-block row counter is re-initialized with a merged write, which
; bounds how long a mis-aligned remerge can persist.
        .equ  BLOCKS, 8
        .equ  RPB, 12
        .equ  NNZ, 24
        li    r26, BLOCKS
        li    r27, NNZ
        li    r4, relax
        ld    r25, 0(r4)         ; per-instance relaxation count
        li    r14, 0             ; scale registers start at zero until the
        li    r15, 0             ; first divergent row recomputes them
blocks: li    r5, 0              ; row within block
rows:   li    r6, 0              ; nz index
        li    r7, mat
        li    r8, vec
        li    r9, 0
        fcvt  r9, r9             ; acc = 0.0
nz:     ld    r10, 0(r7)         ; a[i][j] (identical data)
        ld    r11, 0(r8)         ; x[j]
        fmul  r12, r10, r11
        fadd  r9, r9, r12
        add   r28, r14, r15      ; scale factor: regmerge-recovered reads
        addi  r7, r7, 8
        addi  r8, r8, 8
        addi  r6, r6, 1
        blt   r6, r27, nz
; relaxation: the block's first row runs a per-instance iteration count.
        li    r13, 4
        bnez  r5, relaxgo
        mv    r13, r25           ; per-instance long relaxation
relaxgo:
        li    r18, 3
relaxl: mul   r18, r18, r18
        andi  r18, r18, 1023
        addi  r18, r18, 7
        addi  r13, r13, -1
        bnez  r13, relaxl
; scale recompute on the divergent row only.
        bnez  r5, noscale
        li    r14, 512
        li    r15, 64
noscale:
        add   r16, r14, r15
        add   r17, r16, r5
        addi  r5, r5, 1
        slti  r24, r5, RPB
        bnez  r24, rows
        addi  r26, r26, -1
        bnez  r26, blocks
        halt
        .data
relax:  .word 6
mat:    .space NNZ*8
vec:    .space NNZ*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			fillDoubles(mem, sym(p, "mat"), 24, 0xE001)
			fillDoubles(mem, sym(p, "vec"), 24, 0xE002)
			relax := uint64(6)
			if !identical {
				relax = 6 + uint64(ctx)*24 // 6 vs 30 vs 54 ... iterations
			}
			mem.Write64(sym(p, "relax"), relax)
		},
	})

	register(App{
		Name:  "mcf",
		Suite: "SPEC2000",
		Mode:  prog.ModeME,
		About: "network-simplex arc scan; arc costs are mostly identical with a perturbed tail, giving high execute-identical with occasional short divergences",
		Source: `
; mcf kernel: PASSES scans over ARCS shared arcs (reduced costs are biased
; non-negative, so the pivot branch rarely fires and never diverges), then
; a small per-instance arc list scanned by its own loop, where reduced-
; cost signs differ across instances and divergence happens.
        .equ  ARCS, 176
        .equ  PARCS, 4
        .equ  PASSES, 14
        li    r26, ARCS
        li    r20, PASSES
        li    r22, 0             ; reduced-cost sum
        li    r24, 0             ; scaled-cost sum
        li    r28, 0             ; pivot total
pass:   li    r5, 0
        li    r6, cost
        li    r21, 0             ; pivots this pass
scan:   ld    r7, 0(r6)          ; cost[i] (identical)
        ld    r8, 8(r6)          ; flow[i] (identical)
        sub   r9, r7, r8         ; reduced cost
        slti  r10, r9, 0
        beqz  r10, noimp
        addi  r21, r21, 1        ; candidate found
        add   r22, r22, r9
        srai  r23, r9, 2
        add   r24, r24, r23
noimp:  addi  r6, r6, 16
        addi  r5, r5, 1
        blt   r5, r26, scan
; per-instance arc list: separate load PCs, divergent pivots
        li    r5, 0
        li    r6, pcost
pscan:  ld    r7, 0(r6)
        ld    r8, 8(r6)
        sub   r9, r7, r8
        slti  r10, r9, 0
        beqz  r10, pnoimp
        addi  r21, r21, 1
        add   r22, r22, r9
pnoimp: addi  r6, r6, 16
        addi  r5, r5, 1
        slti  r11, r5, PARCS
        bnez  r11, pscan
        add   r28, r28, r21
        addi  r20, r20, -1
        bnez  r20, pass
        halt
        .data
cost:   .space ARCS*16
pcost:  .space PARCS*16
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			base := sym(p, "cost")
			// Shared arcs: cost > flow, so the pivot branch is biased
			// not-taken (real reduced costs are rarely negative).
			// Shared arcs: ~20% negative reduced costs. Aligned threads
			// branch identically (same data), so this causes no
			// divergence by itself, but it re-diverges mis-aligned
			// threads within a few arcs; alignment is the absorbing
			// state, so the synchronizer heals quickly.
			x := uint64(0x3C01)
			for i := 0; i < 176; i++ {
				x = lcg(x)
				cost := x&0x7fff + 0x2f00
				x = lcg(x)
				flow := x & 0x7fff
				mem.Write64(base+uint64(i)*16, cost)
				mem.Write64(base+uint64(i)*16+8, flow)
			}
			// Per-instance arcs: still biased toward non-negative
			// reduced costs, so pivot signs differ across instances
			// only occasionally (divergence is rare but real).
			pbase := sym(p, "pcost")
			y := uint64(0x3D00)
			if !identical {
				y += uint64(ctx)
			}
			for k := 0; k < 4; k++ {
				y = lcg(y)
				mem.Write64(pbase+uint64(k)*16, y&0x1fff+0x12c0)
				y = lcg(y)
				mem.Write64(pbase+uint64(k)*16+8, y>>16&0x1fff)
			}
		},
	})

	register(App{
		Name:  "twolf",
		Suite: "SPEC2000",
		Mode:  prog.ModeME,
		About: "simulated-annealing accept/reject driven by an input-seeded RNG: instances diverge briefly on almost every move, defeating MERGE tracking",
		Source: `
; twolf kernel: MOVES annealing steps; each step draws from a linear
; congruential generator seeded from the input, and the accept/reject
; branch takes per-instance directions. Divergent paths are only a few
; instructions long, so the profile is fetch-identical-rich but MERGE
; residency is poor (paper Fig. 5d).
        .equ  MOVES, 1700
        li    r4, seed
        ld    r5, 0(r4)          ; per-instance RNG state
        li    r6, 6364136223846793005
        li    r7, 1442695040888963407
        li    r20, MOVES
        li    r21, 0             ; applied-move accumulator
        li    r22, 0             ; move checksum
        li    r23, 0             ; reject count
move:   mul   r5, r5, r6         ; LCG step (differs per instance)
        add   r5, r5, r7
        srli  r8, r5, 33
; wide move-cost evaluation: plenty of independent ALU work per move, so
; the baseline SMT contends for issue and fetch bandwidth
        srli  r10, r8, 7
        srli  r11, r8, 13
        srli  r12, r8, 21
        xor   r13, r10, r11
        add   r14, r11, r12
        and   r15, r10, r12
        or    r16, r13, r14
        sub   r17, r14, r15
        add   r18, r16, r17
        xor   r19, r18, r8
        andi  r9, r8, 3
        beqz  r9, reject
accept: add   r21, r21, r19      ; apply move
        xor   r22, r22, r18
        j     next
reject: addi  r23, r23, 1        ; bookkeeping
next:   addi  r20, r20, -1
        bnez  r20, move
        halt
        .data
seed:   .word 12345
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			s := uint64(12345)
			if !identical {
				s += uint64(ctx) * 7919
			}
			mem.Write64(sym(p, "seed"), s)
		},
	})

	register(App{
		Name:  "vpr",
		Suite: "SPEC2000",
		Mode:  prog.ModeME,
		About: "routing-cost moves with RNG-chosen table lookups: short constant divergence plus split loads at per-instance addresses",
		Source: `
; vpr kernel: like twolf's annealing but each move also loads a routing
; cost from an RNG-dependent table slot, so even the merged stretches
; carry split loads.
        .equ  MOVES, 1300
        .equ  TSIZE, 128
        li    r4, seed
        ld    r5, 0(r4)
        li    r6, 6364136223846793005
        li    r7, 1442695040888963407
        li    r20, MOVES
        li    r24, table
        li    r21, 0             ; congestion-cost accumulator
        li    r22, 0             ; slot-index balance
        li    r23, 0             ; move count
move:   mul   r5, r5, r6
        add   r5, r5, r7
        srli  r8, r5, 30
        andi  r9, r8, TSIZE-1
        slli  r10, r9, 3
        add   r11, r24, r10
        ld    r12, 0(r11)        ; cost[rnd] - address differs per instance
; wide congestion-cost evaluation on the looked-up value
        srli  r14, r12, 5
        srli  r15, r12, 11
        xor   r16, r14, r15
        add   r17, r15, r8
        and   r18, r14, r8
        or    r19, r16, r17
        sub   r25, r17, r18
        add   r26, r19, r25
        andi  r13, r8, 1
        beqz  r13, skipw
        add   r21, r21, r26
        sub   r22, r22, r9
skipw:  addi  r23, r23, 1
        addi  r20, r20, -1
        bnez  r20, move
        halt
        .data
seed:   .word 777
table:  .space TSIZE*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			fillWords(mem, sym(p, "table"), 128, 0x7A01)
			s := uint64(777)
			if !identical {
				s += uint64(ctx) * 104729
			}
			mem.Write64(sym(p, "seed"), s)
		},
	})

	register(App{
		Name:  "vortex",
		Suite: "SPEC2000",
		Mode:  prog.ModeME,
		About: "database lookups chasing a linked chain whose length depends on the per-instance key: long divergences (paper Fig. 2)",
		Source: `
; vortex kernel: LOOKUPS queries; each walks a hash chain until the key
; matches. Chain-walk lengths differ per instance (keys differ), so
; divergent regions span many taken branches before re-joining at the
; bookkeeping tail.
        .equ  LOOKUPS, 240
        .equ  CHAIN, 64
        li    r4, keys
        ld    r25, 0(r4)         ; per-instance key stride
        li    r20, LOOKUPS
        li    r24, nodes
        li    r21, 0             ; bookkeeping accumulator
        li    r22, 0             ; key checksum
        li    r23, 0             ; lookups completed
look:   mv    r6, r24            ; node = head
        li    r7, 0              ; depth
        mul   r8, r20, r25
        andi  r8, r8, CHAIN-1    ; target depth for this key
walk:   ld    r9, 0(r6)          ; node.key
        ld    r10, 8(r6)         ; node.next offset
; key-compare and hash bookkeeping per node (wide, independent)
        xor   r11, r9, r10
        srli  r12, r9, 9
        add   r13, r11, r12
        and   r14, r9, r10
        or    r15, r13, r14
        sub   r16, r13, r12
        addi  r6, r6, 16
        addi  r7, r7, 1
        blt   r7, r8, walk
; found: identical bookkeeping tail
        add   r21, r21, r15
        xor   r22, r22, r16
        addi  r23, r23, 1
        addi  r20, r20, -1
        bnez  r20, look
        halt
        .data
keys:   .word 5
nodes:  .space CHAIN*16
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			fillWords(mem, sym(p, "nodes"), 128, 0xD001)
			stride := uint64(5)
			if !identical {
				stride = 5 + uint64(ctx)*14 // very different chain depths
			}
			mem.Write64(sym(p, "keys"), stride)
		},
	})

	register(App{
		Name:  "libsvm",
		Suite: "SVM",
		Mode:  prog.ModeME,
		About: "SVM kernel evaluations over a shared model with a per-instance query vector: mid execute-identical with a large untracked remainder",
		Source: `
; libsvm kernel: for each of SVS support vectors compute a dot product
; with the query vector (DIM features), scale by alpha, and branch on the
; partial decision value. The model (support vectors, alphas) is identical
; across instances; the query differs, so the dot-product multiplies are
; split while model loads stay execute-identical.
        .equ  SVS, 56
        .equ  DIM, 16
        li    r26, SVS
        li    r27, DIM
        li    r5, 0              ; sv index
        li    r21, 0
        fcvt  r21, r21           ; decision value
        li    r22, 0             ; clipped-margin accumulator
svloop: li    r6, 0
        li    r7, model
        li    r8, query
        li    r9, 0
        fcvt  r9, r9             ; dot = 0.0
dot:    ld    r10, 0(r7)         ; model weight (identical)
        ld    r11, 0(r8)         ; query feature (differs)
        fmul  r12, r10, r11
        fadd  r9, r9, r12
        addi  r7, r7, 8
        addi  r8, r8, 8
        addi  r6, r6, 1
        blt   r6, r27, dot
        li    r13, alphas
        slli  r14, r5, 3
        add   r13, r13, r14
        ld    r15, 0(r13)        ; alpha[sv] (identical)
        fmul  r16, r9, r15
        fadd  r21, r21, r16
        li    r17, margin
        ld    r17, 0(r17)
        flt   r18, r21, r17      ; early-margin branch: can diverge
        beqz  r18, noclip
        fadd  r22, r22, r16
noclip: addi  r5, r5, 1
        blt   r5, r26, svloop
        halt
        .data
margin: .double 1.25
model:  .space DIM*8
query:  .space DIM*8
alphas: .space SVS*8
`,
		Init: func(p *prog.Program, ctx int, mem *prog.Memory, identical bool) {
			fillDoubles(mem, sym(p, "model"), 16, 0x5301)
			fillDoubles(mem, sym(p, "alphas"), 56, 0x5302)
			seed := uint64(0x5400)
			if !identical {
				seed += uint64(ctx)
			}
			fillDoubles(mem, sym(p, "query"), 16, seed)
		},
	})
}
