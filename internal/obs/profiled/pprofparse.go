package profiled

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// This file is a minimal reader for the pprof profile.proto wire format —
// just enough protobuf to turn runtime/pprof output into per-function
// flat/cumulative totals without importing the (unavailable) pprof
// module. The fields consumed:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table (string)
//	ValueType: 1 type (string idx), 2 unit (string idx)
//	Sample:    1 location_id (repeated uint64), 2 value (repeated int64)
//	Location:  1 id, 4 line (Line)
//	Line:      1 function_id
//	Function:  1 id, 2 name (string idx)
//
// Repeated scalar fields arrive packed (length-delimited) from the Go
// runtime but the decoder accepts both encodings.

// Parsed is one decoded profile reduced to per-function totals for a
// single chosen sample value.
type Parsed struct {
	// SampleType and Unit name the chosen value, e.g. "cpu"/"nanoseconds"
	// or "inuse_space"/"bytes".
	SampleType string
	Unit       string
	// Total is the sum of the chosen value across all samples.
	Total int64
	// Flat and Cum hold per-function self and inclusive totals.
	Flat map[string]int64
	Cum  map[string]int64
}

type valueType struct{ typ, unit int64 }

type sample struct {
	locs []uint64
	vals []int64
}

type location struct {
	id    uint64
	funcs []uint64 // function ids innermost-first (inlined frames)
}

type function struct {
	id   uint64
	name int64
}

// Parse decodes a (possibly gzipped) pprof protobuf profile and reduces
// it to per-function totals. The chosen sample value is the last declared
// sample type — for CPU profiles that is cpu/nanoseconds, for heap
// profiles inuse_space/bytes — unless preferType names one present in the
// profile ("" keeps the default).
func Parse(data []byte, preferType string) (*Parsed, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profiled: gunzip: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("profiled: gunzip: %w", err)
		}
	}

	var (
		types   []valueType
		samples []sample
		locs    = make(map[uint64][]uint64) // location id -> function ids
		funcs   = make(map[uint64]int64)    // function id -> name idx
		strs    []string
	)
	err := walkFields(data, func(field int, wire int, varint uint64, payload []byte) error {
		switch field {
		case 1: // sample_type
			var vt valueType
			if err := walkFields(payload, func(f, w int, v uint64, _ []byte) error {
				switch f {
				case 1:
					vt.typ = int64(v)
				case 2:
					vt.unit = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			types = append(types, vt)
		case 2: // sample
			var s sample
			if err := walkFields(payload, func(f, w int, v uint64, p []byte) error {
				switch f {
				case 1:
					if w == 2 {
						return walkPacked(p, func(u uint64) { s.locs = append(s.locs, u) })
					}
					s.locs = append(s.locs, v)
				case 2:
					if w == 2 {
						return walkPacked(p, func(u uint64) { s.vals = append(s.vals, int64(u)) })
					}
					s.vals = append(s.vals, int64(v))
				}
				return nil
			}); err != nil {
				return err
			}
			samples = append(samples, s)
		case 4: // location
			var loc location
			if err := walkFields(payload, func(f, w int, v uint64, p []byte) error {
				switch f {
				case 1:
					loc.id = v
				case 4: // line
					return walkFields(p, func(lf, lw int, lv uint64, _ []byte) error {
						if lf == 1 {
							loc.funcs = append(loc.funcs, lv)
						}
						return nil
					})
				}
				return nil
			}); err != nil {
				return err
			}
			locs[loc.id] = loc.funcs
		case 5: // function
			var fn function
			if err := walkFields(payload, func(f, w int, v uint64, _ []byte) error {
				switch f {
				case 1:
					fn.id = v
				case 2:
					fn.name = int64(v)
				}
				return nil
			}); err != nil {
				return err
			}
			funcs[fn.id] = fn.name
		case 6: // string_table
			strs = append(strs, string(payload))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(types) == 0 || len(strs) == 0 {
		return nil, fmt.Errorf("profiled: no sample types in profile")
	}

	str := func(i int64) string {
		if i >= 0 && int(i) < len(strs) {
			return strs[i]
		}
		return "?"
	}
	// Pick the value column: the last sample type by convention, or the
	// preferred one when present.
	vi := len(types) - 1
	if preferType != "" {
		for i, vt := range types {
			if str(vt.typ) == preferType {
				vi = i
				break
			}
		}
	}

	p := &Parsed{
		SampleType: str(types[vi].typ),
		Unit:       str(types[vi].unit),
		Flat:       make(map[string]int64),
		Cum:        make(map[string]int64),
	}
	seen := make(map[string]bool)
	for _, s := range samples {
		if vi >= len(s.vals) {
			continue
		}
		v := s.vals[vi]
		if v == 0 || len(s.locs) == 0 {
			continue
		}
		p.Total += v
		// Leaf attribution: the first location's innermost frame.
		if fns := locs[s.locs[0]]; len(fns) > 0 {
			p.Flat[funcName(str, funcs, fns[0])] += v
		}
		// Inclusive attribution: every distinct function on the stack.
		clear(seen)
		for _, lid := range s.locs {
			for _, fid := range locs[lid] {
				name := funcName(str, funcs, fid)
				if !seen[name] {
					seen[name] = true
					p.Cum[name] += v
				}
			}
		}
	}
	return p, nil
}

func funcName(str func(int64) string, funcs map[uint64]int64, id uint64) string {
	if idx, ok := funcs[id]; ok {
		return str(idx)
	}
	return fmt.Sprintf("func-%d", id)
}

// walkFields iterates a protobuf message's fields. For varint fields fn
// receives the value in varint; for length-delimited fields the payload
// bytes; fixed32/fixed64 are skipped (the profile fields we read never
// use them).
func walkFields(data []byte, fn func(field, wire int, varint uint64, payload []byte) error) error {
	for len(data) > 0 {
		key, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("profiled: truncated field key")
		}
		data = data[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0: // varint
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("profiled: truncated varint (field %d)", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("profiled: truncated fixed64 (field %d)", field)
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("profiled: truncated bytes (field %d)", field)
			}
			payload := data[n : n+int(l)]
			data = data[n+int(l):]
			if err := fn(field, wire, 0, payload); err != nil {
				return err
			}
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("profiled: truncated fixed32 (field %d)", field)
			}
			data = data[4:]
		default:
			return fmt.Errorf("profiled: unsupported wire type %d (field %d)", wire, field)
		}
	}
	return nil
}

// walkPacked iterates a packed repeated varint payload.
func walkPacked(data []byte, fn func(uint64)) error {
	for len(data) > 0 {
		v, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("profiled: truncated packed varint")
		}
		fn(v)
		data = data[n:]
	}
	return nil
}

// uvarint decodes one base-128 varint; n <= 0 on truncation.
func uvarint(data []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		b := data[i]
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// Frame is one function's row in a merged top-frames report.
type Frame struct {
	Function string `json:"function"`
	Flat     int64  `json:"flat"`
	Cum      int64  `json:"cum"`
}

// TopReport summarizes one or more parsed profiles of the same kind.
type TopReport struct {
	Kind     string  `json:"kind"`
	Unit     string  `json:"unit"`
	Captures int     `json:"captures"`
	Total    int64   `json:"total"`
	Frames   []Frame `json:"frames"`
}

// Top merges parsed profiles (summing per-function values) and returns
// the hottest frames by flat value, at most limit (<= 0 means 30).
func Top(kind string, parsed []*Parsed, limit int) TopReport {
	if limit <= 0 {
		limit = 30
	}
	r := TopReport{Kind: kind, Captures: len(parsed)}
	flat := make(map[string]int64)
	cum := make(map[string]int64)
	for _, p := range parsed {
		if p == nil {
			continue
		}
		r.Unit = p.Unit
		r.Total += p.Total
		for f, v := range p.Flat { // mmtvet:ok — merged into a map, sorted below
			flat[f] += v
		}
		for f, v := range p.Cum { // mmtvet:ok — merged into a map, sorted below
			cum[f] += v
		}
	}
	for f := range cum { // mmtvet:ok — sorted below
		r.Frames = append(r.Frames, Frame{Function: f, Flat: flat[f], Cum: cum[f]})
	}
	sort.Slice(r.Frames, func(i, j int) bool {
		if r.Frames[i].Flat != r.Frames[j].Flat {
			return r.Frames[i].Flat > r.Frames[j].Flat
		}
		if r.Frames[i].Cum != r.Frames[j].Cum {
			return r.Frames[i].Cum > r.Frames[j].Cum
		}
		return r.Frames[i].Function < r.Frames[j].Function
	})
	if len(r.Frames) > limit {
		r.Frames = r.Frames[:limit]
	}
	return r
}
