// Package profiled is the continuous profiler: it periodically captures
// CPU, heap and goroutine pprof profiles into a bounded in-memory ring,
// so "what was hot during the 14:02 p99 spike" is answerable after the
// fact without having had pprof attached. The ring is served at
// GET /v1/debug/profiles (JSON index, raw pprof bytes by id, and merged
// top-frames reports), and mmtdoctor pulls it into diagnosis bundles.
//
// The profiler is deliberately duty-cycled: each round it runs the CPU
// profiler for CPUDuration out of Every, so steady-state overhead stays
// proportional to the duty cycle (the default 5s/60s keeps it under 1%).
// Heap and goroutine snapshots are point-in-time and effectively free.
package profiled

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"
)

// Options configures a Profiler.
type Options struct {
	// Every is the capture round cadence (default 60s).
	Every time.Duration
	// CPUDuration is how long each round's CPU profile runs; it is
	// clamped to at most half of Every (default 5s).
	CPUDuration time.Duration
	// Capacity bounds how many captures of each kind the ring keeps
	// (default 16 — 16 minutes of history at the default cadence).
	Capacity int
	// OnError, when non-nil, receives capture failures (e.g. the CPU
	// profiler already running via /debug/pprof/profile). Failures skip
	// the round; they never stop the loop.
	OnError func(error)
}

// Capture is one stored profile.
type Capture struct {
	ID       int    `json:"id"`
	Kind     string `json:"kind"` // "cpu", "heap" or "goroutine"
	StartUNS int64  `json:"start_uns"`
	DurNS    int64  `json:"dur_ns"` // CPU window; 0 for snapshots
	Size     int    `json:"size"`

	bytes []byte
}

// Bytes returns the raw (gzipped protobuf) pprof profile.
func (c Capture) Bytes() []byte { return c.bytes }

// IndexResponse is the GET /v1/debug/profiles body.
type IndexResponse struct {
	Service  string    `json:"service,omitempty"`
	EveryMS  int64     `json:"every_ms"`
	Captures []Capture `json:"captures"` // oldest first
}

// Profiler runs the capture loop. Close stops it; a nil *Profiler is
// inert, so daemons can wire it unconditionally and gate on a flag.
type Profiler struct {
	service string
	opts    Options

	mu     sync.Mutex
	caps   map[string][]Capture // kind -> ring, oldest first
	nextID int

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Kinds are the capture kinds each round produces.
var Kinds = []string{"cpu", "heap", "goroutine"}

// New starts the capture loop. An immediate heap+goroutine snapshot is
// taken synchronously so a scrape right after boot is never empty; the
// first CPU window starts with the first round.
func New(service string, opts Options) *Profiler {
	if opts.Every <= 0 {
		opts.Every = 60 * time.Second
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = 5 * time.Second
	}
	if opts.CPUDuration > opts.Every/2 {
		opts.CPUDuration = opts.Every / 2
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 16
	}
	p := &Profiler{
		service: service,
		opts:    opts,
		caps:    make(map[string][]Capture),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	p.snapshot("heap")
	p.snapshot("goroutine")
	go p.loop()
	return p
}

// Service returns the profiler's service label ("" on nil).
func (p *Profiler) Service() string {
	if p == nil {
		return ""
	}
	return p.service
}

// Close stops the loop and waits for an in-flight CPU window to finish.
// Idempotent; captures stay readable.
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Profiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.opts.Every)
	defer t.Stop()
	for {
		// The CPU window runs at the top of each round; snapshots follow.
		if err := p.captureCPU(); err != nil && p.opts.OnError != nil {
			p.opts.OnError(err)
		}
		p.snapshot("heap")
		p.snapshot("goroutine")
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
	}
}

// captureCPU runs one CPU profiling window. StartCPUProfile fails when a
// profile is already running (an operator attached via /debug/pprof); the
// round is skipped rather than fought over.
func (p *Profiler) captureCPU() error {
	var buf bytes.Buffer
	start := time.Now()
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return fmt.Errorf("profiled: cpu window skipped: %w", err)
	}
	select {
	case <-p.stop:
	case <-time.After(p.opts.CPUDuration):
	}
	pprof.StopCPUProfile()
	p.store(Capture{
		Kind:     "cpu",
		StartUNS: start.UnixNano(),
		DurNS:    int64(time.Since(start)),
		bytes:    buf.Bytes(),
	})
	return nil
}

// snapshot stores one point-in-time profile of a runtime/pprof named
// profile ("heap", "goroutine").
func (p *Profiler) snapshot(kind string) {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		if p.opts.OnError != nil {
			p.opts.OnError(fmt.Errorf("profiled: %s snapshot: %w", kind, err))
		}
		return
	}
	p.store(Capture{Kind: kind, StartUNS: time.Now().UnixNano(), bytes: buf.Bytes()})
}

func (p *Profiler) store(c Capture) {
	p.mu.Lock()
	p.nextID++
	c.ID = p.nextID
	c.Size = len(c.bytes)
	ring := append(p.caps[c.Kind], c)
	if len(ring) > p.opts.Capacity {
		ring = ring[len(ring)-p.opts.Capacity:]
	}
	p.caps[c.Kind] = ring
	p.mu.Unlock()
}

// Captures lists stored captures of one kind (all kinds for ""), oldest
// first.
func (p *Profiler) Captures(kind string) []Capture {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Capture
	for _, k := range Kinds {
		if kind != "" && k != kind {
			continue
		}
		out = append(out, p.caps[k]...)
	}
	return out
}

// Get returns one capture by id.
func (p *Profiler) Get(id int) (Capture, bool) {
	if p == nil {
		return Capture{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ring := range p.caps { // mmtvet:ok — id lookup, order-free
		for _, c := range ring {
			if c.ID == id {
				return c, true
			}
		}
	}
	return Capture{}, false
}

// Merge parses the newest `last` captures of one kind (0 = all stored)
// and merges them into a top-frames report.
func (p *Profiler) Merge(kind string, last, limit int) (TopReport, error) {
	caps := p.Captures(kind)
	if last > 0 && len(caps) > last {
		caps = caps[len(caps)-last:]
	}
	var parsed []*Parsed
	for _, c := range caps {
		pr, err := Parse(c.bytes, "")
		if err != nil {
			return TopReport{}, fmt.Errorf("capture %d: %w", c.ID, err)
		}
		parsed = append(parsed, pr)
	}
	return Top(kind, parsed, limit), nil
}

// ServeHTTP serves the ring (GET /v1/debug/profiles):
//
//	?             JSON index of stored captures
//	?id=N         one capture's raw pprof bytes (feed to `go tool pprof`)
//	?merge=KIND   merged top-frames JSON (&last=N newest only, &top=N rows)
func (p *Profiler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if ids := q.Get("id"); ids != "" {
		id, err := strconv.Atoi(ids)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		c, ok := p.Get(id)
		if !ok {
			http.Error(w, "no such capture (the ring is bounded; it may have aged out)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%s-%d.pprof", c.Kind, c.ID))
		w.Write(c.bytes) //nolint:errcheck // client went away
		return
	}
	if kind := q.Get("merge"); kind != "" {
		last, _ := strconv.Atoi(q.Get("last"))
		limit, _ := strconv.Atoi(q.Get("top"))
		rep, err := p.Merge(kind, last, limit)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rep)
		return
	}
	writeJSON(w, IndexResponse{
		Service:  p.Service(),
		EveryMS:  p.opts.Every.Milliseconds(),
		Captures: p.Captures(q.Get("kind")),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // client went away
}
