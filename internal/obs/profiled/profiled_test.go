package profiled

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// hotSpin is the function the CPU-profile test expects to find by name.
//
//go:noinline
func hotSpin(until time.Time) int {
	n := 0
	for time.Now().Before(until) {
		for i := 0; i < 1e5; i++ {
			n += i ^ (n << 1)
		}
	}
	return n
}

func TestParseHeapProfile(t *testing.T) {
	// Allocate something attributable, then parse the runtime's own
	// encoding — the parser must handle real output, not fixtures.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	defer func() { _ = sink }()

	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes(), "")
	if err != nil {
		t.Fatal(err)
	}
	if p.SampleType != "inuse_space" || p.Unit != "bytes" {
		t.Errorf("chose sample type %s/%s, want inuse_space/bytes", p.SampleType, p.Unit)
	}
	if p.Total <= 0 || len(p.Flat) == 0 || len(p.Cum) == 0 {
		t.Errorf("parsed profile empty: total=%d flat=%d cum=%d", p.Total, len(p.Flat), len(p.Cum))
	}
	// The preferred-type override picks another declared column.
	p2, err := Parse(buf.Bytes(), "alloc_space")
	if err != nil {
		t.Fatal(err)
	}
	if p2.SampleType != "alloc_space" {
		t.Errorf("prefer alloc_space chose %s", p2.SampleType)
	}
}

func TestParseGoroutineProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(buf.Bytes(), "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Total < 1 {
		t.Errorf("goroutine total = %d, want >= 1", p.Total)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a profile"), ""); err == nil {
		t.Error("garbage parsed without error")
	}
}

func TestCPUCaptureFindsHotFunction(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU window in -short mode")
	}
	p := New("test", Options{Every: time.Hour, CPUDuration: 300 * time.Millisecond})
	defer p.Close()
	// Burn CPU while the profiler's first window is open.
	hotSpin(time.Now().Add(350 * time.Millisecond))
	waitFor(t, func() bool { return len(p.Captures("cpu")) >= 1 })

	rep, err := p.Merge("cpu", 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unit != "nanoseconds" || rep.Captures < 1 {
		t.Errorf("report header = %+v", rep)
	}
	var found bool
	for _, f := range rep.Frames {
		if strings.Contains(f.Function, "hotSpin") {
			found = true
			if f.Flat <= 0 || f.Cum < f.Flat {
				t.Errorf("hotSpin frame = %+v", f)
			}
		}
	}
	if !found {
		t.Errorf("hotSpin not in top frames: %+v", rep.Frames)
	}
}

func TestRingBoundedAndMergeAcrossCaptures(t *testing.T) {
	p := New("test", Options{Every: time.Hour, Capacity: 2})
	defer p.Close()
	for i := 0; i < 5; i++ {
		p.snapshot("heap")
	}
	caps := p.Captures("heap")
	if len(caps) != 2 {
		t.Fatalf("heap captures = %d, want 2 (bounded)", len(caps))
	}
	if caps[0].ID >= caps[1].ID {
		t.Error("captures not oldest-first")
	}
	rep, err := p.Merge("heap", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Captures != 2 {
		t.Errorf("merged %d captures, want 2", rep.Captures)
	}
}

func TestServeHTTP(t *testing.T) {
	p := New("svc", Options{Every: time.Hour})
	defer p.Close()
	waitFor(t, func() bool { return len(p.Captures("heap")) >= 1 })

	rr := httptest.NewRecorder()
	p.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/profiles", nil))
	var idx IndexResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if idx.Service != "svc" || len(idx.Captures) < 2 {
		t.Fatalf("index = %+v", idx)
	}

	// Raw bytes round-trip through the endpoint and still parse.
	var heapID int
	for _, c := range idx.Captures {
		if c.Kind == "heap" {
			heapID = c.ID
		}
	}
	rr = httptest.NewRecorder()
	p.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/profiles?id="+itoa(heapID), nil))
	if rr.Code != 200 {
		t.Fatalf("raw fetch status %d", rr.Code)
	}
	if _, err := Parse(rr.Body.Bytes(), ""); err != nil {
		t.Errorf("served bytes do not parse: %v", err)
	}

	rr = httptest.NewRecorder()
	p.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/profiles?merge=goroutine&top=5", nil))
	var rep TopReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != "goroutine" || len(rep.Frames) == 0 || len(rep.Frames) > 5 {
		t.Errorf("merge report = %+v", rep)
	}

	rr = httptest.NewRecorder()
	p.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/debug/profiles?id=99999", nil))
	if rr.Code != 404 {
		t.Errorf("missing capture status = %d, want 404", rr.Code)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}
