package span

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: "00f067aa0ba902b7"},
		{TraceID: "t-j000001-1700000000000000000", SpanID: "00f067aa0ba902b7"},
		{TraceID: "load-5-0", SpanID: "abcdef0123456789"},
		{TraceID: "x", SpanID: "0000000000000000"},
	}
	for _, sc := range cases {
		h := sc.Traceparent()
		got := Parse(h)
		if got.TraceID != sc.TraceID || got.SpanID != sc.SpanID {
			t.Errorf("Parse(%q) = %+v, want trace=%q span=%q", h, got, sc.TraceID, sc.SpanID)
		}
	}
}

func TestTraceparentHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: "load-5-0", SpanID: "00f067aa0ba902b7"}
	h := make(http.Header)
	Inject(h, sc)
	if got := h.Get(Header); got != "00-load-5-0-00f067aa0ba902b7-01" {
		t.Fatalf("injected header = %q", got)
	}
	got := Extract(h)
	if got.TraceID != sc.TraceID || got.SpanID != sc.SpanID {
		t.Fatalf("Extract = %+v, want %+v", got, sc)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"01-abc-00f067aa0ba902b7-01",       // wrong version
		"00-abc-00f067aa0ba902b7-zz",       // bad flags
		"00-abc-00f067aa0ba902b-01",        // span id too short
		"00-abc-00F067AA0BA902B7-01",       // uppercase span id
		"00--00f067aa0ba902b7-01",          // empty trace id
		"00-has space-00f067aa0ba902b7-01", // space in trace id
		"00-" + strings.Repeat("x", 129) + "-00f067aa0ba902b7-01", // trace id too long
	}
	for _, h := range bad {
		if sc := Parse(h); sc.Valid() {
			t.Errorf("Parse(%q) = %+v, want invalid", h, sc)
		}
	}
}

func TestInjectSkipsInvalid(t *testing.T) {
	h := make(http.Header)
	Inject(h, SpanContext{TraceID: "only-trace"})
	if got := h.Get(Header); got != "" {
		t.Fatalf("Inject of invalid context set header %q", got)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(SpanContext{}, "x")
	if sp != nil {
		t.Fatalf("nil tracer Start = %v, want nil", sp)
	}
	// All nil-span methods must not panic.
	sp.SetAttr("k", "v")
	sp.Link(SpanContext{TraceID: "a", SpanID: "0000000000000000"})
	sp.End()
	if sp.TraceID() != "" || sp.Context().Valid() {
		t.Fatal("nil span should have zero identity")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Records("") != nil || tr.Service() != "" {
		t.Fatal("nil tracer accessors should be zero")
	}
}

func TestSpanParentage(t *testing.T) {
	tr := NewTracer("svc", 16)
	root := tr.Start(SpanContext{}, "root")
	if root.TraceID() == "" {
		t.Fatal("root should mint a trace id")
	}
	child := tr.Start(root.Context(), "child")
	if child.TraceID() != root.TraceID() {
		t.Fatal("child should inherit trace id")
	}
	if child.Context().ParentID != root.Context().SpanID {
		t.Fatal("child parent should be root span id")
	}
	// Trace-only parent (job correlation id, no upstream span).
	sub := tr.Start(SpanContext{TraceID: "load-5-0"}, "sub")
	if sub.TraceID() != "load-5-0" || sub.Context().ParentID != "" {
		t.Fatalf("trace-only parent: got %+v", sub.Context())
	}
	child.End()
	root.End()
	sub.End()
	if tr.Len() != 3 {
		t.Fatalf("ring holds %d spans, want 3", tr.Len())
	}
	recs := tr.Records(root.TraceID())
	if len(recs) != 2 {
		t.Fatalf("Records(trace) = %d, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Service != "svc" {
			t.Fatalf("record service = %q", r.Service)
		}
	}
}

func TestSpanEndIdempotentAndAttrsFrozen(t *testing.T) {
	tr := NewTracer("svc", 16)
	sp := tr.Start(SpanContext{}, "x")
	sp.SetAttr("a", "1")
	sp.End()
	sp.SetAttr("b", "2") // after End: dropped
	sp.End()             // idempotent
	if tr.Len() != 1 {
		t.Fatalf("ring holds %d spans, want 1", tr.Len())
	}
	r := tr.Records("")[0]
	if r.Attrs["a"] != "1" {
		t.Fatalf("attrs = %v", r.Attrs)
	}
	if _, ok := r.Attrs["b"]; ok {
		t.Fatal("attr set after End should be dropped")
	}
}

func TestRingEvictionUnderOverflow(t *testing.T) {
	const capacity = 8
	tr := NewTracer("svc", capacity)
	for i := 0; i < capacity+5; i++ {
		sp := tr.Start(SpanContext{TraceID: "t"}, "s"+string(rune('a'+i)))
		sp.End()
	}
	if tr.Len() != capacity {
		t.Fatalf("ring holds %d, want %d", tr.Len(), capacity)
	}
	if tr.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", tr.Dropped())
	}
	names := make(map[string]bool)
	for _, r := range tr.Records("") {
		names[r.Name] = true
	}
	for i := 0; i < 5; i++ {
		if names["s"+string(rune('a'+i))] {
			t.Fatalf("oldest span %q survived eviction", "s"+string(rune('a'+i)))
		}
	}
	for i := 5; i < capacity+5; i++ {
		if !names["s"+string(rune('a'+i))] {
			t.Fatalf("recent span %q missing", "s"+string(rune('a'+i)))
		}
	}
}

func TestServeHTTPSpansAndSummaries(t *testing.T) {
	tr := NewTracer("mmtserved@x", 16)
	root := tr.Start(SpanContext{TraceID: "job-1"}, "serve.submit")
	child := tr.Start(root.Context(), "serve.exec")
	child.End()
	root.End()
	other := tr.Start(SpanContext{TraceID: "job-2"}, "serve.submit")
	other.End()

	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/spans?trace=job-1", nil))
	var sr SpansResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr.Service != "mmtserved@x" || len(sr.Spans) != 2 {
		t.Fatalf("spans response: service=%q n=%d", sr.Service, len(sr.Spans))
	}

	rec = httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/spans", nil))
	var tl TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tl); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(tl.Traces) != 2 {
		t.Fatalf("trace summaries = %d, want 2", len(tl.Traces))
	}
	for _, s := range tl.Traces {
		if s.Root != "serve.submit" {
			t.Fatalf("summary root = %q", s.Root)
		}
	}
}

func TestStitchTreeAndLinks(t *testing.T) {
	base := time.Now().UnixNano()
	recs := []Record{
		{TraceID: "t1", SpanID: "s1", Name: "router.submit", Service: "mmtrouter@r", StartUNS: base, DurNS: 10e6},
		{TraceID: "t1", SpanID: "s2", ParentID: "s1", Name: "router.forward", Service: "mmtrouter@r", StartUNS: base + 1e6, DurNS: 8e6},
		{TraceID: "t1", SpanID: "s3", ParentID: "s2", Name: "serve.submit", Service: "mmtserved@a", StartUNS: base + 2e6, DurNS: 6e6},
		{TraceID: "t1", SpanID: "s4", ParentID: "s3", Name: "serve.exec", Service: "mmtserved@a", StartUNS: base + 3e6, DurNS: 4e6},
		// Same record fetched twice (two polls of the same ring): deduped.
		{TraceID: "t1", SpanID: "s4", ParentID: "s3", Name: "serve.exec", Service: "mmtserved@a", StartUNS: base + 3e6, DurNS: 4e6},
		// A joiner in another trace linking into t1.
		{TraceID: "t2", SpanID: "j1", Name: "serve.join", Service: "mmtserved@a", StartUNS: base + 5e6, DurNS: 1e6, LinkTrace: "t1", LinkSpan: "s4"},
	}
	tree := Stitch(recs)
	if tree.Count != 5 {
		t.Fatalf("count = %d, want 5 after dedup", tree.Count)
	}
	if len(tree.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(tree.Roots))
	}
	if got := strings.Join(tree.Services, ","); got != "mmtrouter@r,mmtserved@a" {
		t.Fatalf("services = %q", got)
	}
	// Child nesting: s1 -> s2 -> s3 -> s4.
	n := tree.Roots[0]
	for _, want := range []string{"router.submit", "router.forward", "serve.submit", "serve.exec"} {
		if n.Name != want {
			t.Fatalf("chain node = %q, want %q", n.Name, want)
		}
		if len(n.Children) > 0 {
			n = n.Children[0]
		}
	}
	// t1 is present in the tree, so the join link resolves internally.
	if links := tree.Links(); len(links) != 0 {
		t.Fatalf("links = %v, want none (target trace present)", links)
	}
	// Stitch only the joiner: its link now points outside.
	lone := Stitch(recs[5:])
	links := lone.Links()
	if len(links) != 1 || links[0].TraceID != "t1" || links[0].SpanID != "s4" {
		t.Fatalf("lone links = %+v", links)
	}
}

func TestStitchOrphanBecomesRoot(t *testing.T) {
	// Parent evicted from the ring: child must surface as a root, not vanish.
	tree := Stitch([]Record{
		{TraceID: "t1", SpanID: "s9", ParentID: "gone", Name: "runner.exec", StartUNS: 100, DurNS: 5},
	})
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "runner.exec" {
		t.Fatalf("orphan not rooted: %+v", tree.Roots)
	}
}

func TestWriteWaterfall(t *testing.T) {
	base := int64(1_700_000_000_000_000_000)
	tree := Stitch([]Record{
		{TraceID: "t1", SpanID: "s1", Name: "router.submit", Service: "mmtrouter@r", StartUNS: base, DurNS: 10e6, Attrs: map[string]string{"node": "n1"}},
		{TraceID: "t1", SpanID: "s2", ParentID: "s1", Name: "serve.exec", Service: "mmtserved@a", StartUNS: base + 2e6, DurNS: 6e6, LinkTrace: "t0", LinkSpan: "s0"},
	})
	var sb strings.Builder
	tree.WriteWaterfall(&sb)
	out := sb.String()
	for _, want := range []string{
		"2 spans from 2 processes",
		"router.submit node=n1",
		"· serve.exec",
		"link=s0@t0",
		"+10.000ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	Stitch(nil).WriteWaterfall(&empty)
	if !strings.Contains(empty.String(), "no spans") {
		t.Fatalf("empty waterfall = %q", empty.String())
	}
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{TraceID: "t", SpanID: "0123456789abcdef"}
	ctx := ContextWith(context.Background(), sc)
	got, ok := FromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("FromContext = %+v ok=%v", got, ok)
	}
	if _, ok := FromContext(context.Background()); ok {
		t.Fatal("empty context should carry no span")
	}
}

func TestObserverSeesFinishedSpans(t *testing.T) {
	tr := NewTracer("svc", 4)
	var got []Record
	tr.SetObserver(func(r Record) { got = append(got, r) })
	sp := tr.Start(SpanContext{TraceID: "t-obs"}, "work")
	sp.SetAttr("k", "v")
	sp.End()
	sp.End() // idempotent: observer fires once
	if len(got) != 1 {
		t.Fatalf("observer called %d times, want 1", len(got))
	}
	if got[0].Name != "work" || got[0].TraceID != "t-obs" || got[0].Service != "svc" {
		t.Errorf("observed record = %+v", got[0])
	}
	tr.SetObserver(nil)
	tr.Start(SpanContext{}, "more").End()
	if len(got) != 1 {
		t.Error("unregistered observer still called")
	}
	var nilTracer *Tracer
	nilTracer.SetObserver(func(Record) {}) // must not panic
}
