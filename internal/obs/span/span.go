// Package span is the fleet's distributed tracing layer: stdlib-only
// spans propagated across processes as a W3C-style "traceparent" HTTP
// header, so one job's latency decomposes hop by hop — client submit,
// router placement (route/steal/proxy), node admission and queueing,
// dedup joins, runner scheduling and cache probes, and the simulated
// cycle loop itself.
//
// The design deliberately unifies the span trace id with the serving
// layer's job trace id (PR 4): both are free-form printable ASCII, so a
// client-chosen correlation id like "load-5-0" names the whole distributed
// trace, and every surface that already speaks trace ids (obs events,
// Prometheus exemplars, JobStatus) points into the same tree. The
// traceparent codec is therefore tolerant: the trace-id field may contain
// dashes; the parser anchors on the fixed-width span-id field instead.
//
// Each process keeps its finished spans in a bounded in-memory ring
// (oldest overwritten first) served at GET /v1/spans — cmd/mmttrace
// fetches the rings of every fleet process and stitches the tree.
//
// Producers hold a *Tracer and may keep it nil: every method on a nil
// Tracer or nil Span is a no-op, so instrumentation sites need no guards.
package span

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Header is the propagation header name (W3C trace context).
const Header = "traceparent"

const (
	version = "00"
	flags   = "01"
)

// MaxTraceIDLen bounds trace ids, matching the serving layer's limit on
// client-chosen correlation ids.
const MaxTraceIDLen = 128

// SpanContext identifies one span within one trace. ParentID is the
// span's parent within the same trace (empty for roots). The zero value
// is "no context".
type SpanContext struct {
	TraceID  string
	SpanID   string
	ParentID string
}

// Valid reports whether the context identifies a span.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// Traceparent renders the context in wire form:
// "00-<trace-id>-<span-id>-01". Empty when the context is not valid.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return version + "-" + sc.TraceID + "-" + sc.SpanID + "-" + flags
}

// ValidTraceID reports whether s can serve as a trace id: non-empty,
// at most MaxTraceIDLen bytes, printable ASCII with no spaces — the same
// rule the serving layer applies to client-chosen correlation ids, which
// is what makes the two id spaces unifiable.
func ValidTraceID(s string) bool {
	if s == "" || len(s) > MaxTraceIDLen {
		return false
	}
	for _, r := range s {
		if r < 0x21 || r > 0x7e {
			return false
		}
	}
	return true
}

// Parse decodes a traceparent header. Unlike a strict W3C parser it
// accepts free-form trace ids containing dashes: the span-id field is
// fixed-width hex, so the header is parsed from its ends — version first,
// flags last, span id second-to-last — and whatever sits between version
// and span id is the trace id. Returns the zero context on any mismatch.
func Parse(h string) SpanContext {
	parts := strings.Split(h, "-")
	if len(parts) < 4 || parts[0] != version {
		return SpanContext{}
	}
	if !isHex(parts[len(parts)-1], 2) {
		return SpanContext{}
	}
	spanID := parts[len(parts)-2]
	if !isHex(spanID, 16) {
		return SpanContext{}
	}
	traceID := strings.Join(parts[1:len(parts)-2], "-")
	if !ValidTraceID(traceID) {
		return SpanContext{}
	}
	return SpanContext{TraceID: traceID, SpanID: spanID}
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Inject writes the context into an outgoing request's headers.
func Inject(h http.Header, sc SpanContext) {
	if tp := sc.Traceparent(); tp != "" {
		h.Set(Header, tp)
	}
}

// Extract reads the context from an incoming request's headers, zero when
// absent or malformed.
func Extract(h http.Header) SpanContext { return Parse(h.Get(Header)) }

// NewTraceID mints a random 32-hex-character trace id.
func NewTraceID() string { return randHex(16) }

func newSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; a broken entropy
		// source must not take the serving path down over telemetry ids.
		for i := range b {
			b[i] = byte(i*37 + 11)
		}
	}
	return hex.EncodeToString(b)
}

type ctxKey struct{}

// ContextWith returns a context carrying sc, for propagation through
// call chains that end in an outgoing HTTP request (Inject reads it back
// via FromContext at the client).
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Record is one finished span as kept in the ring and served over the
// wire. Times are wall-clock (unix nanoseconds) with the duration taken
// from the monotonic clock.
type Record struct {
	TraceID   string            `json:"trace_id"`
	SpanID    string            `json:"span_id"`
	ParentID  string            `json:"parent_id,omitempty"`
	Name      string            `json:"name"`
	Service   string            `json:"service,omitempty"`
	StartUNS  int64             `json:"start_uns"`
	DurNS     int64             `json:"dur_ns"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	LinkTrace string            `json:"link_trace,omitempty"`
	LinkSpan  string            `json:"link_span,omitempty"`
}

// EndUNS is the span's end time in unix nanoseconds.
func (r Record) EndUNS() int64 { return r.StartUNS + r.DurNS }

// DefaultCapacity is the span ring's default size.
const DefaultCapacity = 4096

// Tracer mints spans for one process (or one service within it) and keeps
// the finished ones in a bounded ring, oldest overwritten first. It
// implements http.Handler for the GET /v1/spans endpoint. A nil *Tracer
// is valid and records nothing.
type Tracer struct {
	service string

	mu       sync.Mutex
	buf      []Record
	next     int // overwrite cursor once the ring is full
	dropped  uint64
	observer func(Record)
}

// NewTracer returns a tracer whose spans carry the given service label
// (e.g. "mmtserved@127.0.0.1:8391"). capacity <= 0 selects
// DefaultCapacity.
func NewTracer(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{service: service, buf: make([]Record, 0, capacity)}
}

// Service returns the tracer's service label.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Start opens a span as a child of parent. A parent with a trace id but
// no span id roots a new subtree within that trace (the serving layer
// does this when a job carries a correlation id but no traceparent); a
// zero parent mints a fresh trace id. Returns nil on a nil tracer.
func (t *Tracer) Start(parent SpanContext, name string) *Span {
	return t.StartAt(parent, name, time.Now())
}

// StartAt is Start with an explicit start time, for spans that began
// before the instrumentation point could run (queue waits).
func (t *Tracer) StartAt(parent SpanContext, name string, at time.Time) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{TraceID: parent.TraceID, ParentID: parent.SpanID, SpanID: newSpanID()}
	if sc.TraceID == "" {
		sc.TraceID = NewTraceID()
	}
	return &Span{tracer: t, sc: sc, name: name, start: at}
}

// SetObserver registers fn to receive every finished span record after it
// lands in the ring — the flight recorder hooks here so span completions
// interleave with events and log lines in the black box. fn runs on the
// goroutine that ended the span and must be fast; nil unregisters.
func (t *Tracer) SetObserver(fn func(Record)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observer = fn
	t.mu.Unlock()
}

// push stores a finished span, overwriting the oldest once full.
func (t *Tracer) push(r Record) {
	r.Service = t.service
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
	} else {
		t.buf[t.next] = r
		t.next = (t.next + 1) % len(t.buf)
		t.dropped++
	}
	fn := t.observer
	t.mu.Unlock()
	if fn != nil {
		fn(r)
	}
}

// Dropped returns how many finished spans the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns how many spans the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Records returns the ring's spans for one trace id (all of them for "").
func (t *Tracer) Records(traceID string) []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, 16)
	for _, r := range t.buf {
		if traceID == "" || r.TraceID == traceID {
			out = append(out, r)
		}
	}
	return out
}

// Span is one in-progress span. All methods are nil-safe; End is
// idempotent and pushes the finished record into the tracer's ring.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	name   string
	start  time.Time

	mu        sync.Mutex
	attrs     map[string]string
	linkTrace string
	linkSpan  string
	ended     bool
}

// Context returns the span's identity (zero on a nil span), for
// propagation to children and over the wire.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace id ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.sc.TraceID
}

// SetAttr attaches a key/value attribute, shown in the waterfall and the
// Chrome export. Calls after End are dropped.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// Link records a causal reference to a span in another trace — a dedup
// joiner links to the creator's execution span. Only the first link is
// kept.
func (s *Span) Link(sc SpanContext) {
	if s == nil || !sc.Valid() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended || s.linkSpan != "" {
		return
	}
	s.linkTrace, s.linkSpan = sc.TraceID, sc.SpanID
}

// End finishes the span and pushes it into the ring. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	linkTrace, linkSpan := s.linkTrace, s.linkSpan
	s.mu.Unlock()
	s.tracer.push(Record{
		TraceID:   s.sc.TraceID,
		SpanID:    s.sc.SpanID,
		ParentID:  s.sc.ParentID,
		Name:      s.name,
		StartUNS:  s.start.UnixNano(),
		DurNS:     int64(time.Since(s.start)),
		Attrs:     attrs,
		LinkTrace: linkTrace,
		LinkSpan:  linkSpan,
	})
}
